module Vec = Repro_util.Vec
module Page_store = Repro_mem.Page_store
module Vaddr = Repro_mem.Vaddr

type impl = Env.t -> int array -> unit

type typ = {
  id : int;
  name : string;
  field_words : int;
  parent : typ option;
  slots : int array;
  mutable gpu_vtable_addr : int; (* -1 until materialized *)
  mutable cpu_vtable_addr : int;
}

type t = {
  heap : Page_store.t;
  types : typ Vec.t;
  impls : impl Vec.t;
  impl_names : string Vec.t;
  mutable is_materialized : bool;
}

let create ~heap =
  {
    heap;
    types = Vec.create ();
    impls = Vec.create ();
    impl_names = Vec.create ();
    is_materialized = false;
  }

let register_impl t ~name impl =
  let id = Vec.length t.impls in
  Vec.push t.impls impl;
  Vec.push t.impl_names name;
  id

let impl_count t = Vec.length t.impls

let define_type t ~name ~field_words ?parent ~slots () =
  if t.is_materialized then
    failwith "Registry.define_type: registry already materialized";
  if field_words < 0 then invalid_arg "Registry.define_type: negative field_words";
  Array.iter
    (fun impl_id ->
      if impl_id < 0 || impl_id >= impl_count t then
        invalid_arg "Registry.define_type: unknown implementation id")
    slots;
  let typ =
    {
      id = Vec.length t.types;
      name;
      field_words;
      parent;
      slots = Array.copy slots;
      gpu_vtable_addr = -1;
      cpu_vtable_addr = -1;
    }
  in
  Vec.push t.types typ;
  typ

let types t = List.of_seq (Array.to_seq (Vec.to_array t.types))

let type_count t = Vec.length t.types

let find_type t id =
  if id < 0 || id >= type_count t then invalid_arg "Registry.find_type: unknown type id";
  Vec.get t.types id

let encode_impl_id id = id + 1

let decode_impl_id v =
  if v <= 0 then failwith "Registry.decode_impl_id: uninitialized vtable slot";
  v - 1

let materialize t ~vtspace ~space =
  if not t.is_materialized then begin
    let total_cpu_bytes =
      Vec.fold_left
        (fun acc typ -> acc + max 1 (Array.length typ.slots) * Vaddr.word_bytes)
        0 t.types
    in
    let cpu_arena =
      Repro_mem.Address_space.reserve space ~name:"cpu-vtables"
        ~size:(max Page_store.page_bytes total_cpu_bytes)
    in
    let cpu_cursor = ref cpu_arena.Repro_mem.Address_space.base in
    Vec.iter
      (fun typ ->
        let n_slots = max 1 (Array.length typ.slots) in
        typ.gpu_vtable_addr <- Vtable_space.alloc vtspace ~n_slots;
        typ.cpu_vtable_addr <- !cpu_cursor;
        cpu_cursor := !cpu_cursor + (n_slots * Vaddr.word_bytes);
        Array.iteri
          (fun slot impl_id ->
            let gpu_slot = Vtable_space.slot_addr ~vtable:typ.gpu_vtable_addr ~slot in
            Page_store.store t.heap gpu_slot (encode_impl_id impl_id);
            let cpu_slot = Vtable_space.slot_addr ~vtable:typ.cpu_vtable_addr ~slot in
            Page_store.store t.heap cpu_slot (encode_impl_id impl_id))
          typ.slots)
      t.types;
    t.is_materialized <- true
  end

let materialized t = t.is_materialized

let type_id typ = typ.id
let type_name typ = typ.name
let field_words typ = typ.field_words
let n_slots typ = Array.length typ.slots
let parent typ = typ.parent

let impl_of_slot typ ~slot =
  if slot < 0 || slot >= Array.length typ.slots then
    invalid_arg "Registry.impl_of_slot: slot out of range";
  typ.slots.(slot)

let require_materialized typ label =
  if typ.gpu_vtable_addr < 0 then
    failwith ("Registry." ^ label ^ ": registry not materialized yet")

let gpu_vtable typ =
  require_materialized typ "gpu_vtable";
  typ.gpu_vtable_addr

let cpu_vtable typ =
  require_materialized typ "cpu_vtable";
  typ.cpu_vtable_addr

let impl t id =
  if id < 0 || id >= impl_count t then invalid_arg "Registry.impl: unknown id";
  Vec.get t.impls id

let impl_name t id =
  if id < 0 || id >= impl_count t then invalid_arg "Registry.impl_name: unknown id";
  Vec.get t.impl_names id

let total_vfunc_slots t = Vec.fold_left (fun acc typ -> acc + Array.length typ.slots) 0 t.types
