type stats = {
  objects : int;
  reserved_bytes : int;
  used_bytes : int;
  alloc_cycles : float;
}

type t = {
  name : string;
  alloc : typ:Registry.typ -> size_bytes:int -> int;
  regions : unit -> Region.t list;
  stats : unit -> stats;
}

let external_fragmentation s =
  if s.reserved_bytes = 0 then 0.
  else 1. -. (float_of_int s.used_bytes /. float_of_int s.reserved_bytes)

let pp_stats ppf s =
  Format.fprintf ppf "objects=%d reserved=%dB used=%dB frag=%.1f%% cycles=%.0f"
    s.objects s.reserved_bytes s.used_bytes
    (100. *. external_fragmentation s)
    s.alloc_cycles
