module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label

type t = {
  ctx : Warp_ctx.t;
  om : Object_model.t;
  vcall : t -> objs:int array -> slot:int -> unit;
  vcall_converged : t -> objs:int array -> slot:int -> unit;
}

let restrict t ctx = { t with ctx }

let field_load t ~objs ~field = Object_model.field_load t.om t.ctx ~objs ~field

let field_store t ~objs ~field values =
  Object_model.field_store t.om t.ctx ~objs ~field values

let compute ?n t = Warp_ctx.compute ?n t.ctx ~label:Label.Body

let compute_blocking ?n t = Warp_ctx.compute ?n ~blocking:true t.ctx ~label:Label.Body
