(** The five virtual-function implementation techniques the paper
    evaluates (Sec. 8): the contemporary CUDA baseline, Intel Concord's
    type-tag switches, the SharedOA allocator with CUDA-style dispatch,
    and the two proposed schemes, COAL and TypePointer. *)

type tp_mode =
  | Prototype  (** The silicon prototype of Sec. 6.3: tag bits are masked
                   out in software at every member reference. *)
  | Hw_mmu     (** The proposed hardware: the MMU ignores tag bits, so
                   member references pay nothing (Accel-Sim runs). *)

type t =
  | Cuda        (** Default allocator, vTable*-chasing dispatch. *)
  | Concord     (** Default allocator, embedded tag + switch dispatch. *)
  | Shared_oa   (** Type-based allocator, vTable*-chasing dispatch. *)
  | Coal        (** Type-based allocator, virtual-range-table lookup. *)
  | Type_pointer of { mode : tp_mode; on_cuda_alloc : bool }
      (** Tagged pointers; [on_cuda_alloc] is the Fig. 11 configuration
          (tags over the default allocator, hardware MMU). *)

val type_pointer : t
(** TypePointer as evaluated on silicon (Sec. 8.1): prototype mode on top
    of SharedOA. *)

val type_pointer_hw : t
(** TypePointer with the hardware MMU, on SharedOA. *)

val type_pointer_on_cuda : t
(** The Fig. 11 configuration: hardware MMU over the default allocator. *)

val all_paper : t list
(** The five silicon configurations of Fig. 6, in the paper's order:
    CUDA, Concord, SharedOA, COAL, TypePointer(prototype). *)

val uses_shared_oa : t -> bool
(** Whether objects are placed by the type-based allocator. *)

val tags_pointers : t -> bool

val strips_in_software : t -> bool
(** True only for the TypePointer prototype. *)

val name : t -> string
(** Short display name ("CUDA", "CON", "SHARD", "COAL", "TP", "TP/CUDA"). *)

val long_name : t -> string

val of_string : string -> (t, string) result
(** Parses the short names (case-insensitive); used by the CLI. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
