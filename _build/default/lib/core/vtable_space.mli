(** The contiguous vTable arena.

    TypePointer requires every GPU vTable to live in one contiguous region
    so that the 15 tag bits can address it: 2^15 bytes = 32 KB, i.e. 4 K
    64-bit function pointers shared by all types (Sec. 6.1). Two encodings
    are supported:

    - [Byte_offset] (default): the tag is the vTable's byte offset into
      the arena. Compact, dispatch is SHR + ADD.
    - [Padded_index]: every vTable is padded to the largest vTable size
      and the tag is an index, multiplied at dispatch by a size register
      (fused multiply-add); supports up to 32 K types at the price of
      padding (Sec. 6.2).

    CUDA appears to allocate vTables contiguously already (Sec. 6.1), so
    the same arena backs dispatch under every technique. *)

type encoding =
  | Byte_offset
  | Padded_index of { padded_slots : int }

type t

val create :
  ?encoding:encoding ->
  heap:Repro_mem.Page_store.t ->
  space:Repro_mem.Address_space.t ->
  unit -> t

val encoding : t -> encoding

val base : t -> int
(** Arena base address ([vTablesStartAddr], the fixed register of
    Fig. 5b). *)

val capacity_slots : t -> int
(** Total function-pointer slots the 15 tag bits can address (4096 for
    byte-offset encoding). *)

val alloc : t -> n_slots:int -> int
(** Reserve a vTable with [n_slots] function-pointer slots; returns its
    address. Raises [Failure] when the arena (or the padded size) is
    exceeded — the condition under which the paper falls back to COAL. *)

val used_slots : t -> int

val tag_of_vtable : t -> vtable:int -> int
(** The 15-bit tag encoding this vTable's location. *)

val vtable_of_tag : t -> tag:int -> int
(** Inverse of {!tag_of_vtable}. *)

val slot_addr : vtable:int -> slot:int -> int
(** Address of function-pointer slot [slot] in a vTable. *)
