(** Flat global-memory arrays of 64-bit words.

    Workloads keep their non-object state — object-pointer tables, CSR
    offsets, frame buffers — in these, so that indexing them from a
    kernel emits real global loads exactly like the object accesses do.
    Host accessors initialize and read them outside the timed region. *)

type t

val alloc :
  space:Repro_mem.Address_space.t -> name:string -> len:int -> t
(** A zero-initialized array of [len] words. *)

val len : t -> int

val base : t -> int

val addr : t -> int -> int
(** Address of element [i]; raises [Invalid_argument] out of bounds. *)

val load :
  t -> Repro_gpu.Warp_ctx.t -> idxs:int array -> int array
(** Emit one warp load of [a.(idx)] per lane (label [Body]). *)

val store :
  t -> Repro_gpu.Warp_ctx.t -> idxs:int array -> int array -> unit

val get : t -> Repro_mem.Page_store.t -> int -> int
(** Untimed host read. *)

val set : t -> Repro_mem.Page_store.t -> int -> int -> unit
(** Untimed host write. *)
