module Vaddr = Repro_mem.Vaddr

type encoding =
  | Byte_offset
  | Padded_index of { padded_slots : int }

type t = {
  encoding : encoding;
  base : int;
  size_bytes : int;
  mutable cursor : int; (* next free byte offset *)
  mutable tables : int; (* vtables handed out (padded-index tags) *)
}

let arena_bytes = 1 lsl Vaddr.tag_bits (* 32 KB: what 15 bits can address *)

let create ?(encoding = Byte_offset) ~heap:_ ~space () =
  let arena =
    Repro_mem.Address_space.reserve space ~name:"vtables" ~size:arena_bytes
  in
  (match encoding with
   | Byte_offset -> ()
   | Padded_index { padded_slots } ->
     if padded_slots <= 0 then
       invalid_arg "Vtable_space.create: padded_slots must be positive");
  { encoding; base = arena.Repro_mem.Address_space.base; size_bytes = arena_bytes;
    cursor = 0; tables = 0 }

let encoding t = t.encoding

let base t = t.base

let capacity_slots t = t.size_bytes / Vaddr.word_bytes

let alloc t ~n_slots =
  if n_slots <= 0 then invalid_arg "Vtable_space.alloc: n_slots must be positive";
  let bytes =
    match t.encoding with
    | Byte_offset -> n_slots * Vaddr.word_bytes
    | Padded_index { padded_slots } ->
      if n_slots > padded_slots then
        failwith "Vtable_space.alloc: vtable larger than the padded size";
      padded_slots * Vaddr.word_bytes
  in
  if t.cursor + bytes > t.size_bytes then
    failwith "Vtable_space.alloc: 32KB vtable arena exhausted (fall back to COAL)";
  let addr = t.base + t.cursor in
  t.cursor <- t.cursor + bytes;
  t.tables <- t.tables + 1;
  addr

let used_slots t = t.cursor / Vaddr.word_bytes

let tag_of_vtable t ~vtable =
  let off = vtable - t.base in
  if off < 0 || off >= t.size_bytes then
    invalid_arg "Vtable_space.tag_of_vtable: address outside the arena";
  match t.encoding with
  | Byte_offset -> off
  | Padded_index { padded_slots } -> off / (padded_slots * Vaddr.word_bytes)

let vtable_of_tag t ~tag =
  if tag < 0 || tag > Vaddr.max_tag then invalid_arg "Vtable_space.vtable_of_tag";
  match t.encoding with
  | Byte_offset -> t.base + tag
  | Padded_index { padded_slots } -> t.base + (tag * padded_slots * Vaddr.word_bytes)

let slot_addr ~vtable ~slot =
  if slot < 0 then invalid_arg "Vtable_space.slot_addr: negative slot";
  vtable + (slot * Vaddr.word_bytes)
