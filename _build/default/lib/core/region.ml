type t = {
  base : int;
  limit : int;
  type_id : int;
}

let make ~base ~limit ~type_id =
  if base >= limit then invalid_arg "Region.make: empty or inverted range";
  if not (Repro_mem.Vaddr.is_canonical base && Repro_mem.Vaddr.is_canonical limit) then
    invalid_arg "Region.make: tagged bound";
  if type_id < 0 then invalid_arg "Region.make: negative type id";
  { base; limit; type_id }

let contains t addr = addr >= t.base && addr < t.limit

let bytes t = t.limit - t.base

let overlap a b = a.base < b.limit && b.base < a.limit

let compare_base a b = compare (a.base, a.limit) (b.base, b.limit)

let pp ppf t = Format.fprintf ppf "[0x%x,0x%x):%d" t.base t.limit t.type_id
