(** A typed address range: the unit of the SharedOA allocator's placement
    and the leaf of COAL's virtual range table. *)

type t = {
  base : int;     (** First byte (canonical). *)
  limit : int;    (** One past the last byte; the range is [\[base, limit)]. *)
  type_id : int;  (** The object type allocated in this range. *)
}

val make : base:int -> limit:int -> type_id:int -> t
(** Raises [Invalid_argument] unless [base < limit] and both are
    canonical. *)

val contains : t -> int -> bool
(** Membership of a canonical address. *)

val bytes : t -> int

val overlap : t -> t -> bool

val compare_base : t -> t -> int

val pp : Format.formatter -> t -> unit
