lib/core/object_model.mli: Repro_gpu Repro_mem Technique
