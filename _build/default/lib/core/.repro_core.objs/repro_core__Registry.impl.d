lib/core/registry.ml: Array Env List Repro_mem Repro_util Vtable_space
