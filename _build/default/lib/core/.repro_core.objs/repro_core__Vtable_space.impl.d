lib/core/vtable_space.ml: Repro_mem
