lib/core/garray.mli: Repro_gpu Repro_mem
