lib/core/registry.mli: Env Repro_mem Vtable_space
