lib/core/env.mli: Object_model Repro_gpu
