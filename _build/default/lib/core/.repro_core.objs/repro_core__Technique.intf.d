lib/core/technique.mli: Format
