lib/core/object_model.ml: Array Repro_gpu Repro_mem Technique
