lib/core/shared_oa.mli: Allocator Repro_mem
