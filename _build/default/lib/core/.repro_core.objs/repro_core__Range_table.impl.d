lib/core/range_table.ml: Array List Printf Region Registry Repro_gpu Repro_mem Repro_util
