lib/core/allocator.ml: Format Region Registry
