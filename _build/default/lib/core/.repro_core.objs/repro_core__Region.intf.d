lib/core/region.mli: Format
