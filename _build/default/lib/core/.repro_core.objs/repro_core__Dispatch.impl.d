lib/core/dispatch.ml: Array Env Object_model Range_table Registry Repro_gpu Repro_mem Technique Vtable_space
