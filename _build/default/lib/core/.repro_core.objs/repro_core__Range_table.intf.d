lib/core/range_table.mli: Region Registry Repro_gpu Repro_mem
