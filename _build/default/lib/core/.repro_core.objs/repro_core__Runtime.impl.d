lib/core/runtime.ml: Allocator Array Cuda_alloc Dispatch Object_model Range_table Registry Repro_gpu Repro_mem Repro_util Shared_oa Technique Vtable_space
