lib/core/env.ml: Object_model Repro_gpu
