lib/core/dispatch.mli: Env Object_model Range_table Registry Repro_gpu Repro_mem Vtable_space
