lib/core/region.ml: Format Repro_mem
