lib/core/shared_oa.ml: Allocator Hashtbl List Printf Region Registry Repro_mem
