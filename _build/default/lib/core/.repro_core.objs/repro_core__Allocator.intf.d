lib/core/allocator.mli: Format Region Registry
