lib/core/cuda_alloc.mli: Allocator Repro_mem
