lib/core/garray.ml: Array Repro_gpu Repro_mem
