lib/core/technique.ml: Format Printf String
