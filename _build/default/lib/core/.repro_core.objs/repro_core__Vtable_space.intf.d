lib/core/vtable_space.mli: Repro_mem
