lib/core/cuda_alloc.ml: Allocator Array Repro_mem
