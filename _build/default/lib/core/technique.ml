type tp_mode =
  | Prototype
  | Hw_mmu

type t =
  | Cuda
  | Concord
  | Shared_oa
  | Coal
  | Type_pointer of { mode : tp_mode; on_cuda_alloc : bool }

let type_pointer = Type_pointer { mode = Prototype; on_cuda_alloc = false }

let type_pointer_hw = Type_pointer { mode = Hw_mmu; on_cuda_alloc = false }

let type_pointer_on_cuda = Type_pointer { mode = Hw_mmu; on_cuda_alloc = true }

let all_paper = [ Cuda; Concord; Shared_oa; Coal; type_pointer ]

let uses_shared_oa = function
  | Shared_oa | Coal -> true
  | Type_pointer { on_cuda_alloc; _ } -> not on_cuda_alloc
  | Cuda | Concord -> false

let tags_pointers = function
  | Type_pointer _ -> true
  | Cuda | Concord | Shared_oa | Coal -> false

let strips_in_software = function
  | Type_pointer { mode = Prototype; _ } -> true
  | Type_pointer { mode = Hw_mmu; _ } | Cuda | Concord | Shared_oa | Coal -> false

let name = function
  | Cuda -> "CUDA"
  | Concord -> "CON"
  | Shared_oa -> "SHARD"
  | Coal -> "COAL"
  | Type_pointer { on_cuda_alloc = true; _ } -> "TP/CUDA"
  | Type_pointer { mode = Hw_mmu; _ } -> "TP-HW"
  | Type_pointer { mode = Prototype; _ } -> "TP"

let long_name = function
  | Cuda -> "contemporary CUDA virtual functions"
  | Concord -> "Concord type-tag switches"
  | Shared_oa -> "SharedOA type-based allocator"
  | Coal -> "COAL (coordinated allocation and lookup)"
  | Type_pointer { on_cuda_alloc = true; _ } ->
    "TypePointer over the default CUDA allocator (hardware MMU)"
  | Type_pointer { mode = Hw_mmu; _ } -> "TypePointer with hardware MMU support"
  | Type_pointer { mode = Prototype; _ } -> "TypePointer silicon prototype"

let of_string s =
  match String.lowercase_ascii s with
  | "cuda" -> Ok Cuda
  | "con" | "concord" -> Ok Concord
  | "shard" | "sharedoa" | "shared-oa" | "shared_oa" -> Ok Shared_oa
  | "coal" -> Ok Coal
  | "tp" | "typepointer" -> Ok type_pointer
  | "tp-hw" | "tp_hw" -> Ok type_pointer_hw
  | "tp/cuda" | "tp-cuda" | "tp_on_cuda" -> Ok type_pointer_on_cuda
  | other -> Error (Printf.sprintf "unknown technique %S" other)

let pp ppf t = Format.pp_print_string ppf (name t)

let equal a b =
  match (a, b) with
  | Cuda, Cuda | Concord, Concord | Shared_oa, Shared_oa | Coal, Coal -> true
  | Type_pointer x, Type_pointer y -> x.mode = y.mode && x.on_cuda_alloc = y.on_cuda_alloc
  | (Cuda | Concord | Shared_oa | Coal | Type_pointer _), _ -> false
