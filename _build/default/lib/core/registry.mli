(** The program's type and virtual-function registry.

    This plays the role of the C++ compiler/runtime metadata: it knows
    every polymorphic type, the implementation bound to each vTable slot,
    and it materializes the vTables into simulated memory (one GPU table
    in the contiguous {!Vtable_space} arena and one CPU table elsewhere —
    [sharedNew] objects carry both pointers, Sec. 4).

    Implementations are OCaml closures; vTable slots in simulated memory
    hold dense implementation ids (stored off-by-one so that uninitialized
    memory is detectable), which the dispatcher loads back and resolves
    through this registry — the moral equivalent of the indirect branch. *)

type impl = Env.t -> int array -> unit
(** A virtual-function body: runs over the environment's active lanes,
    whose per-lane receiver objects are the second argument. *)

type typ

type t

val create : heap:Repro_mem.Page_store.t -> t

val register_impl : t -> name:string -> impl -> int
(** Returns the implementation id. Names are for diagnostics and need not
    be unique. *)

val impl_count : t -> int

val define_type :
  t -> name:string -> field_words:int -> ?parent:typ -> slots:int array -> unit -> typ
(** [slots] binds an implementation id to each virtual slot. All types
    sharing a slot index form an override set (the usual vTable layout
    discipline: slot [i] means the same virtual function in every type of
    a hierarchy). Raises after {!materialize}. *)

val types : t -> typ list

val type_count : t -> int

val find_type : t -> int -> typ
(** By dense id; raises [Invalid_argument] if unknown. *)

val materialize : t -> vtspace:Vtable_space.t -> space:Repro_mem.Address_space.t -> unit
(** Write every type's GPU vTable into the contiguous arena and its CPU
    vTable into a separate arena. Idempotent after the first call. *)

val materialized : t -> bool

(** {2 Type accessors} *)

val type_id : typ -> int
val type_name : typ -> string
val field_words : typ -> int
val n_slots : typ -> int
val parent : typ -> typ option
val impl_of_slot : typ -> slot:int -> int
val gpu_vtable : typ -> int
(** Raises [Failure] before {!materialize}. *)

val cpu_vtable : typ -> int

(** {2 Dispatch support} *)

val encode_impl_id : int -> int
(** The off-by-one encoding stored in vTable memory. *)

val decode_impl_id : int -> int
(** Raises [Failure] on 0 (uninitialized vTable memory — a real dispatch
    bug in the runtime). *)

val impl : t -> int -> impl

val impl_name : t -> int -> string

val total_vfunc_slots : t -> int
(** Sum of slot counts over all types (the Table 2 "vFuncs" column). *)
