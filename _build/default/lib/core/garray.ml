module Vaddr = Repro_mem.Vaddr

type t = {
  base : int;
  len : int;
}

let alloc ~space ~name ~len =
  if len <= 0 then invalid_arg "Garray.alloc: len must be positive";
  let arena =
    Repro_mem.Address_space.reserve space ~name ~size:(len * Vaddr.word_bytes)
  in
  { base = arena.Repro_mem.Address_space.base; len }

let len t = t.len

let base t = t.base

let addr t i =
  if i < 0 || i >= t.len then invalid_arg "Garray.addr: index out of bounds";
  t.base + (i * Vaddr.word_bytes)

let load t ctx ~idxs =
  let addrs = Array.map (addr t) idxs in
  Repro_gpu.Warp_ctx.load ctx ~label:Repro_gpu.Label.Body addrs

let store t ctx ~idxs values =
  let addrs = Array.map (addr t) idxs in
  Repro_gpu.Warp_ctx.store ctx ~label:Repro_gpu.Label.Body addrs values

let get t heap i = Repro_mem.Page_store.load heap (addr t i)

let set t heap i v = Repro_mem.Page_store.store heap (addr t i) v
