(** The allocator interface shared by the default-CUDA model and
    SharedOA.

    Allocators only *place* objects — headers are written by the runtime.
    They also keep the bookkeeping the paper evaluates: the typed regions
    COAL's range table is built from, footprint/fragmentation (Fig. 10b)
    and a modelled host/device allocation cost (the Sec. 8.2 "80× faster
    initialization" comparison). *)

type stats = {
  objects : int;          (** Objects placed. *)
  reserved_bytes : int;   (** Address space reserved for object storage. *)
  used_bytes : int;       (** Bytes actually occupied by objects. *)
  alloc_cycles : float;   (** Modelled cost of the allocation phase. *)
}

type t = {
  name : string;
  alloc : typ:Registry.typ -> size_bytes:int -> int;
      (** Place one object; returns its canonical base address. *)
  regions : unit -> Region.t list;
      (** Current typed regions, sorted by base ([\[\]] for allocators
          that do not segregate by type). *)
  stats : unit -> stats;
}

val external_fragmentation : stats -> float
(** [1 - used/reserved] in [0,1]; [0.] when nothing is reserved. *)

val pp_stats : Format.formatter -> stats -> unit
