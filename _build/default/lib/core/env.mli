(** The execution environment handed to kernel bodies and virtual-function
    implementations.

    It bundles the warp context (for emitting instructions and touching
    the heap), the object model (for member references) and re-entrant
    dispatch closures so that a virtual function body can itself make
    virtual calls. The dispatch closures are installed by {!Dispatch}. *)

type t = {
  ctx : Repro_gpu.Warp_ctx.t;
  om : Object_model.t;
  vcall : t -> objs:int array -> slot:int -> unit;
      (** Dynamic dispatch on per-lane objects ([objs] parallel to the
          active lanes of [ctx]). *)
  vcall_converged : t -> objs:int array -> slot:int -> unit;
      (** A call site the compiler statically proved converged (every
          lane calls on the same object): COAL leaves these
          un-instrumented (Sec. 5). *)
}

val restrict : t -> Repro_gpu.Warp_ctx.t -> t
(** The same environment over a divergent sub-context. *)

val field_load : t -> objs:int array -> field:int -> int array
(** Convenience over {!Object_model.field_load}. *)

val field_store : t -> objs:int array -> field:int -> int array -> unit

val compute : ?n:int -> t -> unit
(** Workload-body ALU work. *)

val compute_blocking : ?n:int -> t -> unit
