lib/util/vec.mli:
