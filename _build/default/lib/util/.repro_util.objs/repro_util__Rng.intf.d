lib/util/rng.mli:
