lib/util/mathx.mli:
