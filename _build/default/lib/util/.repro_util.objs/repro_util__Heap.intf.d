lib/util/heap.mli:
