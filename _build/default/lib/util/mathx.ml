let mean = function
  | [] -> invalid_arg "Mathx.mean: empty list"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> invalid_arg "Mathx.geomean: empty list"
  | xs ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Mathx.geomean: non-positive input";
          acc +. log x)
        0. xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

let ratio a b =
  if b = 0. then invalid_arg "Mathx.ratio: division by zero";
  a /. b

let percent part whole = if whole = 0. then 0. else 100. *. part /. whole

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let round_to digits x =
  let scale = 10. ** float_of_int digits in
  Float.round (x *. scale) /. scale

let ilog2 n =
  if n < 1 then invalid_arg "Mathx.ilog2: n must be >= 1";
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let ceil_pow2 n =
  if n < 1 then invalid_arg "Mathx.ceil_pow2: n must be >= 1";
  let rec go p = if p >= n then p else go (p lsl 1) in
  go 1

let ceil_div a b =
  if b <= 0 then invalid_arg "Mathx.ceil_div: b must be positive";
  (a + b - 1) / b
