(** Small numeric helpers shared by the harness, the report layer and the
    tests. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean, the aggregate the paper uses for cross-workload
    speedups. All inputs must be strictly positive. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], raising [Invalid_argument] when [b = 0.]. *)

val percent : float -> float -> float
(** [percent part whole] is [100 *. part /. whole] ([0.] when [whole = 0.],
    which is convenient for empty counters). *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a value into [\[lo, hi\]]. *)

val round_to : int -> float -> float
(** [round_to digits x] rounds [x] to [digits] decimal places. *)

val ilog2 : int -> int
(** [ilog2 n] is the floor of log2 [n] for [n >= 1]. *)

val ceil_pow2 : int -> int
(** Smallest power of two [>= n] (for [n >= 1]). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the ceiling of [a / b] for positive [b]. *)
