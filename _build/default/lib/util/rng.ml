type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* 61-bit draws: [1 lsl 61] is still a valid OCaml int (max_int is
   2^62 - 1), which the rejection bound below relies on. *)
let draw_bits = 61

let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - draw_bits))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let span = 1 lsl draw_bits in
  if bound > span then invalid_arg "Rng.int: bound exceeds the 61-bit draw range";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = span - (span mod bound) in
  let rec draw () =
    let v = next t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let float t bound =
  let v = next t in
  bound *. (float_of_int v /. float_of_int (1 lsl draw_bits))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = next_int64 t }
