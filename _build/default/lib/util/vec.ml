type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 16) () = { data = [||]; len = -capacity }
(* A negative [len] encodes "empty with desired capacity": we cannot build a
   non-empty ['a array] without a witness value, so growth is deferred to the
   first [push]. *)

let length t = max t.len 0

let is_empty t = length t = 0

let grow t witness =
  let desired = if t.len < 0 then -t.len else max 16 (2 * Array.length t.data) in
  let fresh = Array.make desired witness in
  if t.len > 0 then Array.blit t.data 0 fresh 0 t.len;
  t.data <- fresh;
  if t.len < 0 then t.len <- 0

let push t x =
  if t.len < 0 || t.len >= Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i label =
  if i < 0 || i >= length t then invalid_arg ("Vec." ^ label ^ ": index out of bounds")

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let clear t = if t.len > 0 then t.len <- 0

let iter f t =
  for i = 0 to length t - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to length t - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to length t - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 (length t)

let of_array a =
  let t = create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (push t) a;
  t
