(** Growable arrays, used for instruction trace buffers where the final
    length is unknown and allocation churn must stay low. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** A fresh empty vector. [capacity] pre-sizes the backing store. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append, amortized O(1). *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Raises [Invalid_argument] out of bounds. *)

val clear : 'a t -> unit
(** Logical clear; keeps capacity. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array

val of_array : 'a array -> 'a t
