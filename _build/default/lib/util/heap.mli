(** A mutable binary min-heap keyed by float, used by the timing engine's
    event loop (pop the warp with the earliest ready time). Ties are broken
    by insertion order so simulation is deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element. *)

val peek_key : 'a t -> float option
