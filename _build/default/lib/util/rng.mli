(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    workload setup, graph generation and allocator interleaving are exactly
    reproducible run-to-run. The generator is SplitMix64, which is fast,
    has a 64-bit state and passes BigCrush; determinism matters more here
    than cryptographic quality. *)

type t
(** A mutable generator. Independent generators never share state. *)

val create : seed:int -> t
(** [create ~seed] makes a generator whose entire stream is a function of
    [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val next : t -> int
(** [next t] is a uniformly distributed non-negative 61-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0] or [bound > 2^61]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, advancing [t].
    Use it to give substructures independent streams. *)
