(** Normalization and aggregation helpers for figure data, plus CSV
    emission so every figure's raw numbers can be post-processed. *)

type point = {
  group : string;   (** e.g. the workload. *)
  series : string;  (** e.g. the technique. *)
  value : float;
}

val normalize_to : baseline:string -> point list -> point list
(** Divide every group's points by that group's [baseline]-series value.
    Raises [Failure] when a group lacks the baseline or it is zero. *)

val invert : point list -> point list
(** 1/x on every point (cycles → relative performance). *)

val geomean_row : label:string -> point list -> point list
(** Append one extra group holding the per-series geometric mean
    (the paper's GM column). *)

val by_group : point list -> (string * (string * float) list) list
(** Group points preserving first-appearance order (for charts). *)

val value : point list -> group:string -> series:string -> float
(** Lookup; raises [Not_found]. *)

val to_csv : point list -> string
(** "group,series,value" lines with a header. *)
