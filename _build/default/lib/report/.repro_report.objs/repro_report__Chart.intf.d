lib/report/chart.mli:
