lib/report/table.mli:
