lib/report/chart.ml: Buffer Float List Printf String
