lib/report/series.ml: Buffer List Printf Repro_util
