lib/report/series.mli:
