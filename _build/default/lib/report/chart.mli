(** ASCII bar charts, the closest thing to the paper's figures a terminal
    can render. *)

val bars :
  ?width:int -> ?unit_label:string -> (string * float) list -> string
(** Horizontal bars scaled to the maximum value; one row per entry. *)

val grouped :
  ?width:int ->
  series:string list ->
  (string * float list) list ->
  string
(** Grouped bars (one group per entry, one bar per series member), as in
    the per-workload figures. Raises [Invalid_argument] on ragged
    input. *)
