let bar ~width ~max_value v =
  let n =
    if max_value <= 0. then 0
    else int_of_float (Float.round (float_of_int width *. v /. max_value))
  in
  String.make (max 0 (min width n)) '#'

let bars ?(width = 50) ?(unit_label = "") entries =
  if entries = [] then ""
  else begin
    let max_value = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. entries in
    let label_width =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
    in
    let buf = Buffer.create 256 in
    List.iter
      (fun (label, v) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s %8.2f%s |%s\n" label_width label v unit_label
             (bar ~width ~max_value v)))
      entries;
    Buffer.contents buf
  end

let grouped ?(width = 40) ~series entries =
  List.iter
    (fun (_, vs) ->
      if List.length vs <> List.length series then
        invalid_arg "Chart.grouped: ragged input")
    entries;
  let max_value =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      0. entries
  in
  let series_width =
    List.fold_left (fun acc s -> max acc (String.length s)) 0 series
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (group, vs) ->
      Buffer.add_string buf (group ^ "\n");
      List.iteri
        (fun i v ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %8.2f |%s\n" series_width (List.nth series i) v
               (bar ~width ~max_value v)))
        vs)
    entries;
  Buffer.contents buf
