(** Fixed-width text tables for the figure/table harness output. *)

type align =
  | Left
  | Right

type t

val create : columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the arity differs from [columns]. *)

val add_separator : t -> unit

val render : t -> string
(** The table with a header row, a rule, and all rows, columns padded to
    their widest cell. *)

val cell_f : ?digits:int -> float -> string
(** Format a float cell ([digits] defaults to 2). *)

val cell_pct : float -> string
(** Format a [0,1] fraction as a percentage with one decimal. *)
