type align =
  | Left
  | Right

type row =
  | Cells of string list
  | Separator

type t = {
  columns : (string * align) list;
  mutable rows : row list; (* newest first *)
}

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length header) rows)
      headers
  in
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let render_cells cells =
    String.concat "  "
      (List.mapi
         (fun i cell -> pad (snd (List.nth t.columns i)) (List.nth widths i) cell)
         cells)
  in
  let rule =
    String.concat "--" (List.map (fun w -> String.make w '-') widths)
  in
  let body =
    List.map
      (function Separator -> rule | Cells cells -> render_cells cells)
      rows
  in
  String.concat "\n" ((render_cells headers :: rule :: body) @ [ "" ])

let cell_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let cell_pct v = Printf.sprintf "%.1f%%" (100. *. v)
