(** TRAF: a Nagel–Schreckenberg traffic-flow simulation in the DynaSOAr
    style (Table 2: 1.57 M objects, 6 types, vFuncPKI ≈ 31).

    The road network is a ring of cells. Six polymorphic types interact
    each step: plain [Cell]s, [ProducerCell]s that re-inject parked cars,
    [Car]s that accelerate/brake/move, [TrafficLight]s gating stretches of
    road, [SignalGroup]s coordinating lights, and [Monitor]s sampling
    occupancy — each updated by its own virtual function, one GPU thread
    per object. *)

val workload : Workload.t
