module R = Repro_core
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label

type algorithm =
  | Bfs
  | Cc
  | Pagerank

(* Vertex fields *)
let v_value = 0 (* BFS level / CC label / PR rank *)
let v_next = 1 (* PR accumulator / scratch *)
let v_degree = 2
let v_fields = 3

(* Edge fields *)
let e_src = 0
let e_dst = 1
let e_scratch = 2
let e_fields = 3

let infinity_level = 0x3FFF_FFFF (* fits the 32-bit field slots *)
let pr_scale = 65536
let pr_base = 15 * pr_scale / 100

let algo_name = function Bfs -> "BFS" | Cc -> "CC" | Pagerank -> "PR"

let algo_description = function
  | Bfs -> "breadth-first level propagation over virtual edges"
  | Cc -> "connected components by min-label propagation"
  | Pagerank -> "fixed-point PageRank (damping 0.85, 2^16 scale)"

let default_iterations = function Bfs -> 8 | Cc -> 8 | Pagerank -> 6

let build ~virtual_vertices algorithm (p : Workload.params) =
  let rt = Common.create_runtime p in
  let n_vertices = Workload.scaled p 10_000 in
  let n_edges = Workload.scaled p 60_000 in
  let graph = Graph.generate ~seed:p.Workload.seed ~n_vertices ~n_edges () in
  let iteration = ref 0 in
  (* Pointer tables are set up after allocation; the implementation
     closures capture these refs. *)
  let vptrs = ref None in
  let vertex_ptrs () = Option.get !vptrs in

  (* --- virtual function bodies -------------------------------------- *)
  let load_vertex_field env sub ~idxs ~field =
    let table = vertex_ptrs () in
    let ptrs = R.Garray.load table sub ~idxs in
    (ptrs, R.Env.field_load (R.Env.restrict env sub) ~objs:ptrs ~field)
  in

  (* BFS: relax (src level == iter) edges, setting unreached dst levels. *)
  let bfs_relax (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let iter = !iteration in
    let srcs = R.Env.field_load env ~objs ~field:e_src in
    let dsts = R.Env.field_load env ~objs ~field:e_dst in
    let _, l_src = load_vertex_field env ctx ~idxs:srcs ~field:v_value in
    R.Env.compute env;
    let pred = Array.map (fun l -> l = iter) l_src in
    Warp_ctx.if_ ctx ~label:Label.Body ~pred
      (fun sub idxs ->
        let dsts' = Warp_ctx.gather idxs dsts in
        let dst_ptrs, l_dst = load_vertex_field env sub ~idxs:dsts' ~field:v_value in
        let pred2 = Array.map (fun l -> l > iter + 1) l_dst in
        Warp_ctx.if_ sub ~label:Label.Body ~pred:pred2
          (fun sub2 idxs2 ->
            let ptrs2 = Warp_ctx.gather idxs2 dst_ptrs in
            R.Env.field_store (R.Env.restrict env sub2) ~objs:ptrs2 ~field:v_value
              (Array.make (Array.length idxs2) (iter + 1)))
          None)
      None
  in

  (* CC: dst label becomes min(dst, src); symmetric for undirectedness. *)
  let cc_relax (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let srcs = R.Env.field_load env ~objs ~field:e_src in
    let dsts = R.Env.field_load env ~objs ~field:e_dst in
    let src_ptrs, l_src = load_vertex_field env ctx ~idxs:srcs ~field:v_value in
    let dst_ptrs, l_dst = load_vertex_field env ctx ~idxs:dsts ~field:v_value in
    R.Env.compute env ~n:2;
    let m = Array.init (Array.length l_src) (fun i -> min l_src.(i) l_dst.(i)) in
    R.Env.field_store env ~objs:dst_ptrs ~field:v_value m;
    R.Env.field_store env ~objs:src_ptrs ~field:v_value m
  in

  (* PR: push rank/degree along the edge into the destination's
     accumulator (lockstep last-writer-wins within a warp, identically
     under every technique). *)
  let pr_transfer (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let srcs = R.Env.field_load env ~objs ~field:e_src in
    let dsts = R.Env.field_load env ~objs ~field:e_dst in
    let _, rank = load_vertex_field env ctx ~idxs:srcs ~field:v_value in
    let _, degree = load_vertex_field env ctx ~idxs:srcs ~field:v_degree in
    R.Env.compute env;
    let contrib =
      Array.init (Array.length rank) (fun i -> rank.(i) / max 1 degree.(i))
    in
    let dst_ptrs, next = load_vertex_field env ctx ~idxs:dsts ~field:v_next in
    R.Env.compute env;
    let next = Array.init (Array.length next) (fun i -> next.(i) + contrib.(i)) in
    R.Env.field_store env ~objs:dst_ptrs ~field:v_next next;
    (* Mark the edge processed (keeps a per-edge footprint like the
       real framework's edge data). *)
    R.Env.field_store env ~objs ~field:e_scratch contrib
  in

  (* Vertex update bodies (virtual in vEN, inlined in vE kernels). *)
  let pr_vertex_update (env : R.Env.t) objs =
    let next = R.Env.field_load env ~objs ~field:v_next in
    R.Env.compute env ~n:2;
    let rank = Array.map (fun nx -> pr_base + (85 * nx / 100)) next in
    R.Env.field_store env ~objs ~field:v_value rank;
    R.Env.field_store env ~objs ~field:v_next
      (Array.make (Array.length next) 0)
  in
  let counting_vertex_update (env : R.Env.t) objs =
    (* BFS/CC bookkeeping pass: fold the value into the scratch field,
       the per-iteration "gather" phase of the vertex-centric model. *)
    let value = R.Env.field_load env ~objs ~field:v_value in
    let acc = R.Env.field_load env ~objs ~field:v_next in
    R.Env.compute env;
    let acc =
      Array.init (Array.length acc) (fun i ->
          acc.(i) + (if value.(i) >= infinity_level then 0 else 1))
    in
    R.Env.field_store env ~objs ~field:v_next acc
  in

  let edge_body =
    match algorithm with Bfs -> bfs_relax | Cc -> cc_relax | Pagerank -> pr_transfer
  in
  let vertex_body =
    match algorithm with Bfs | Cc -> counting_vertex_update | Pagerank -> pr_vertex_update
  in

  (* --- types --------------------------------------------------------- *)
  let edge_impl = R.Runtime.register_impl rt ~name:"edge.update" edge_body in
  let vertex_impl = R.Runtime.register_impl rt ~name:"vertex.update" vertex_body in
  let chi_edge =
    R.Runtime.define_type rt ~name:"ChiEdge" ~field_words:e_fields
      ~slots:[| edge_impl |] ()
  in
  let edge_t =
    R.Runtime.define_type rt ~name:"Edge" ~field_words:e_fields ~parent:chi_edge
      ~slots:[| edge_impl |] ()
  in
  let chi_vertex =
    R.Runtime.define_type rt ~name:"ChiVertex" ~field_words:v_fields
      ~slots:[| vertex_impl |] ()
  in
  let vertex_t =
    R.Runtime.define_type rt ~name:"Vertex" ~field_words:v_fields ~parent:chi_vertex
      ~slots:[| vertex_impl |] ()
  in

  (* --- allocation (loader order: vertex, then its out-edges) --------- *)
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let by_src = Array.make n_vertices [] in
  Array.iteri
    (fun e (src, _) -> by_src.(src) <- e :: by_src.(src))
    graph.Graph.edges;
  let vertex_ptr = Array.make n_vertices 0 in
  let edge_ptr = Array.make n_edges 0 in
  for v = 0 to n_vertices - 1 do
    vertex_ptr.(v) <- R.Runtime.new_obj rt vertex_t;
    List.iter
      (fun e -> edge_ptr.(e) <- R.Runtime.new_obj rt edge_t)
      (List.rev by_src.(v))
  done;
  let init_value =
    match algorithm with
    | Bfs -> fun v -> if v = 0 then 0 else infinity_level
    | Cc -> fun v -> v
    | Pagerank -> fun _ -> pr_scale
  in
  Array.iteri
    (fun v ptr ->
      R.Object_model.field_store_host om heap ~ptr ~field:v_value (init_value v);
      R.Object_model.field_store_host om heap ~ptr ~field:v_next 0;
      R.Object_model.field_store_host om heap ~ptr ~field:v_degree
        graph.Graph.out_degree.(v))
    vertex_ptr;
  Array.iteri
    (fun e ptr ->
      let src, dst = graph.Graph.edges.(e) in
      R.Object_model.field_store_host om heap ~ptr ~field:e_src src;
      R.Object_model.field_store_host om heap ~ptr ~field:e_dst dst;
      R.Object_model.field_store_host om heap ~ptr ~field:e_scratch 0)
    edge_ptr;
  let vptr_table = Common.garray_of_ptrs rt ~name:"vptrs" vertex_ptr in
  vptrs := Some vptr_table;
  let eptr_table = Common.garray_of_ptrs rt ~name:"eptrs" edge_ptr in

  (* --- per-iteration kernels ----------------------------------------- *)
  let run_vertex_kernel () =
    if virtual_vertices then
      Common.vcall_all rt ~ptrs:vptr_table ~n:n_vertices ~slot:0
    else
      Common.launch rt ~n:n_vertices (fun env ->
          let tids = Common.lane_tids env in
          let objs = R.Garray.load vptr_table env.R.Env.ctx ~idxs:tids in
          vertex_body env objs)
  in
  let run_iteration i =
    iteration := i;
    Common.vcall_all rt ~ptrs:eptr_table ~n:n_edges ~slot:0;
    match algorithm with
    | Pagerank -> run_vertex_kernel ()
    | Bfs | Cc -> if virtual_vertices then run_vertex_kernel ()
  in
  let result () =
    Array.fold_left
      (fun acc ptr ->
        let v = R.Object_model.field_load_host om heap ~ptr ~field:v_value in
        (acc + min v (1 lsl 20)) land max_int)
      0 vertex_ptr
  in
  {
    Workload.rt;
    iterations = Option.value p.Workload.iterations ~default:(default_iterations algorithm);
    run_iteration;
    result;
  }

let workload ~virtual_vertices algorithm =
  let suite = if virtual_vertices then "GraphChi-vEN" else "GraphChi-vE" in
  {
    Workload.name = algo_name algorithm;
    suite;
    description =
      Printf.sprintf "%s (%s)" (algo_description algorithm)
        (if virtual_vertices then "virtual edges and vertices" else "virtual edges");
    paper_objects = 2_254_419;
    paper_types = 4;
    build = build ~virtual_vertices algorithm;
  }

let all =
  [
    workload ~virtual_vertices:false Bfs;
    workload ~virtual_vertices:false Cc;
    workload ~virtual_vertices:false Pagerank;
    workload ~virtual_vertices:true Bfs;
    workload ~virtual_vertices:true Cc;
    workload ~virtual_vertices:true Pagerank;
  ]
