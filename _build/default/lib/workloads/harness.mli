(** Build-and-measure driver: runs one workload under one technique and
    collects everything the figures need.

    Setup (allocation, initialization) is untimed; counters are reset at
    the measurement boundary, then all compute iterations run, exactly as
    the paper reports kernel time excluding initialization. *)

type run = {
  workload : string;          (** Qualified name. *)
  technique : Repro_core.Technique.t;
  cycles : float;
  stats : Repro_gpu.Stats.t;  (** Snapshot, detached from the device. *)
  checksum : int;             (** Heap checksum (cross-technique equal). *)
  result : int;               (** Workload-level result (ditto). *)
  n_objects : int;
  n_types : int;
  n_vfuncs : int;             (** Total vtable slots. *)
  vfunc_pki : float;
  warp_vcalls : int;
  alloc_stats : Repro_core.Allocator.stats;
}

val run : Workload.t -> Workload.params -> run

val run_techniques :
  Workload.t -> Workload.params -> Repro_core.Technique.t list -> run list
(** Same workload under several techniques (same seed/scale), asserting
    that checksums and results agree across all of them — the paper's
    functional validation. Raises [Failure] on a mismatch. *)

val speedup_vs : baseline:run -> run -> float
(** [cycles baseline / cycles run]: >1 means faster than baseline. *)
