(** Synthetic graph inputs for the GraphChi workloads.

    The paper runs GraphChi's BFS/CC/PageRank over large real graphs; we
    generate deterministic scale-free-ish directed graphs instead
    (preferential attachment over a random base), which preserves what
    matters for the study: skewed degrees, poor locality of neighbor
    accesses, and #edges >> #vertices. Functional validation is done the
    way the paper does it — all five techniques must produce identical
    results — plus algorithmic invariants checked in the tests. *)

type t = {
  n_vertices : int;
  edges : (int * int) array;  (** (src, dst), deterministic given the seed. *)
  out_degree : int array;
}

val generate : ?seed:int -> n_vertices:int -> n_edges:int -> unit -> t
(** Self-loops are avoided; multi-edges may occur (as in real inputs).
    Vertex 0 is guaranteed to have at least one outgoing edge (it is the
    BFS source). *)

val reachable_within : t -> source:int -> hops:int -> bool array
(** Reference reachability by at most [hops] relaxation rounds, used by
    the BFS invariant tests. *)
