(** GOL and GEN: the DynaSOAr cellular-automaton workloads.

    A toroidal grid where every position owns three polymorphic objects —
    a [Cell] holding the state, an [Alive] agent running the survival
    rule, and a [Candidate] agent running the birth rule (the static
    pre-allocation of what DynaSOAr creates and destroys dynamically),
    under an abstract [Agent] base. Each iteration launches the two agent
    kernels and a commit kernel over the cells, all virtual calls.

    GOL is Conway's 23/3 rule; GEN ("Generation") extends it with decaying
    intermediate states (rule 345/2 with 4 states), which adds state
    transitions and divergence, as in the paper's description. *)

val game_of_life : Workload.t

val generation : Workload.t
