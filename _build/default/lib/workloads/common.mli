(** Shared plumbing for workload implementations. *)

module R := Repro_core

val create_runtime : Workload.params -> R.Runtime.t

val garray_of_ptrs : R.Runtime.t -> name:string -> int array -> R.Garray.t
(** Materialize an object-pointer table in global memory. *)

val garray : R.Runtime.t -> name:string -> len:int -> R.Garray.t

val fill : R.Runtime.t -> R.Garray.t -> (int -> int) -> unit
(** Host-side initialization of every element. *)

val to_array : R.Runtime.t -> R.Garray.t -> int array

val vcall_all :
  ?converged:bool -> R.Runtime.t -> ptrs:R.Garray.t -> n:int -> slot:int -> unit
(** The canonical "do-all" kernel: one thread per object; each thread
    loads its receiver pointer from [ptrs] and makes the virtual call. *)

val launch : R.Runtime.t -> n:int -> (R.Env.t -> unit) -> unit

val lane_tids : R.Env.t -> int array

val map_lanes : int array -> (int -> int) -> int array

val const_lanes : R.Env.t -> int -> int array
