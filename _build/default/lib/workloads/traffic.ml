module R = Repro_core
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label

(* Cell / ProducerCell fields *)
let c_occupant = 0 (* car id + 1, or 0 when free *)
let c_gate = 1 (* 1 = go, 0 = red light *)
let c_index = 2
let c_spawn = 3 (* producer spawn counter *)
let cell_fields = 4

(* Car fields *)
let car_cell = 0
let car_vel = 1
let car_active = 2
let car_dist = 3
let car_fields = 4

(* TrafficLight fields *)
let l_timer = 0
let l_phase = 1
let l_first_cell = 2
let light_fields = 3

(* SignalGroup fields *)
let g_first_light = 0
let g_offset = 1
let group_fields = 2

(* Monitor fields *)
let m_acc = 0
let m_first_cell = 1
let m_stride = 2
let monitor_fields = 3

let max_velocity = 3
let cells_per_light = 8
let lights_per_group = 8

let build (p : Workload.params) =
  let rt = Common.create_runtime p in
  let n_cells = Workload.scaled p 61_440 in
  let n_cells = max 400 (n_cells / 40 * 40) in
  let n_cars = n_cells / 4 in
  let n_producers = n_cells / 20 in
  let n_lights = n_cells / 40 in
  let n_groups = max 1 (n_lights / lights_per_group) in
  let n_monitors = max 1 (n_cells / 160) in
  let cells = ref None and cars = ref None and lights = ref None in
  let table t = Option.get !t in

  (* --- virtual function bodies -------------------------------------- *)
  let cell_noop (_ : R.Env.t) (_ : int array) = () in

  let group_update (env : R.Env.t) objs =
    let first = R.Env.field_load env ~objs ~field:g_first_light in
    let offset = R.Env.field_load env ~objs ~field:g_offset in
    R.Env.compute env;
    let pick = Array.init (Array.length first) (fun i -> first.(i) + (offset.(i) mod lights_per_group)) in
    let light_ptrs = R.Garray.load (table lights) env.R.Env.ctx ~idxs:pick in
    (* Nudge the picked light's timer: group-level coordination. *)
    let timers = R.Env.field_load env ~objs:light_ptrs ~field:l_timer in
    R.Env.compute env;
    R.Env.field_store env ~objs:light_ptrs ~field:l_timer (Array.map (fun t -> t + 1) timers);
    R.Env.field_store env ~objs ~field:g_offset (Array.map (fun o -> o + 1) offset)
  in

  let light_update (env : R.Env.t) objs =
    let timer = R.Env.field_load env ~objs ~field:l_timer in
    let first = R.Env.field_load env ~objs ~field:l_first_cell in
    R.Env.compute env ~n:2;
    let timer = Array.map (fun t -> t + 1) timer in
    let phase = Array.map (fun t -> (t / 4) land 1) timer in
    R.Env.field_store env ~objs ~field:l_timer timer;
    R.Env.field_store env ~objs ~field:l_phase phase;
    (* Rotate the gate over the controlled stretch, one cell per step. *)
    let pick = Array.init (Array.length first) (fun i -> (first.(i) + (timer.(i) mod cells_per_light)) mod n_cells) in
    let cell_ptrs = R.Garray.load (table cells) env.R.Env.ctx ~idxs:pick in
    R.Env.field_store env ~objs:cell_ptrs ~field:c_gate phase
  in

  let producer_update (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let tids = Warp_ctx.tids ctx in
    let occupant = R.Env.field_load env ~objs ~field:c_occupant in
    let spawn = R.Env.field_load env ~objs ~field:c_spawn in
    let index = R.Env.field_load env ~objs ~field:c_index in
    R.Env.compute env ~n:2;
    R.Env.field_store env ~objs ~field:c_spawn (Array.map (fun s -> s + 1) spawn);
    let pred = Array.map (fun occ -> occ = 0) occupant in
    Warp_ctx.if_ ctx ~label:Label.Body ~pred
      (fun sub idxs ->
        let env' = R.Env.restrict env sub in
        let tids' = Warp_ctx.gather idxs tids in
        let spawn' = Warp_ctx.gather idxs spawn in
        let index' = Warp_ctx.gather idxs index in
        let objs' = Warp_ctx.gather idxs objs in
        (* Each producer owns two pooled cars; try to re-inject one. *)
        let car_ids = Array.init (Array.length tids') (fun i -> (2 * tids'.(i)) + (spawn'.(i) land 1)) in
        let car_ptrs = R.Garray.load (table cars) sub ~idxs:car_ids in
        let active = R.Env.field_load env' ~objs:car_ptrs ~field:car_active in
        let pred2 = Array.map (fun a -> a = 0) active in
        Warp_ctx.if_ sub ~label:Label.Body ~pred:pred2
          (fun sub2 idxs2 ->
            let env'' = R.Env.restrict env' sub2 in
            let car_ptrs2 = Warp_ctx.gather idxs2 car_ptrs in
            let car_ids2 = Warp_ctx.gather idxs2 car_ids in
            let index2 = Warp_ctx.gather idxs2 index' in
            let objs2 = Warp_ctx.gather idxs2 objs' in
            let ones = Array.make (Array.length idxs2) 1 in
            R.Env.field_store env'' ~objs:car_ptrs2 ~field:car_active ones;
            R.Env.field_store env'' ~objs:car_ptrs2 ~field:car_cell index2;
            R.Env.field_store env'' ~objs:car_ptrs2 ~field:car_vel
              (Array.make (Array.length idxs2) 0);
            R.Env.field_store env'' ~objs:objs2 ~field:c_occupant
              (Array.map (fun id -> id + 1) car_ids2))
          None)
      None
  in

  let car_update (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let tids = Warp_ctx.tids ctx in
    let active = R.Env.field_load env ~objs ~field:car_active in
    let pred = Array.map (fun a -> a = 1) active in
    Warp_ctx.if_ ctx ~label:Label.Body ~pred
      (fun sub idxs ->
        let env' = R.Env.restrict env sub in
        let objs' = Warp_ctx.gather idxs objs in
        let tids' = Warp_ctx.gather idxs tids in
        let pos = R.Env.field_load env' ~objs:objs' ~field:car_cell in
        let vel = R.Env.field_load env' ~objs:objs' ~field:car_vel in
        let n = Array.length idxs in
        (* Nagel-Schreckenberg gap scan: look ahead up to max_velocity
           cells for an occupied cell or a red gate. *)
        let gap = Array.make n max_velocity in
        for k = 1 to max_velocity do
          let ahead = Array.init n (fun i -> (pos.(i) + k) mod n_cells) in
          let cell_ptrs = R.Garray.load (table cells) sub ~idxs:ahead in
          let occ = R.Env.field_load env' ~objs:cell_ptrs ~field:c_occupant in
          let gate = R.Env.field_load env' ~objs:cell_ptrs ~field:c_gate in
          R.Env.compute env' ~n:2;
          for i = 0 to n - 1 do
            if gap.(i) >= k && (occ.(i) <> 0 || gate.(i) = 0) then gap.(i) <- k - 1
          done
        done;
        R.Env.compute env' ~n:3;
        let new_vel = Array.init n (fun i -> min (min (vel.(i) + 1) max_velocity) gap.(i)) in
        let new_pos = Array.init n (fun i -> (pos.(i) + new_vel.(i)) mod n_cells) in
        (* Move: free the old cell, claim the new one. *)
        let old_ptrs = R.Garray.load (table cells) sub ~idxs:pos in
        R.Env.field_store env' ~objs:old_ptrs ~field:c_occupant (Array.make n 0);
        let new_ptrs = R.Garray.load (table cells) sub ~idxs:new_pos in
        R.Env.field_store env' ~objs:new_ptrs ~field:c_occupant
          (Array.map (fun id -> id + 1) tids');
        R.Env.field_store env' ~objs:objs' ~field:car_cell new_pos;
        R.Env.field_store env' ~objs:objs' ~field:car_vel new_vel;
        let dist = R.Env.field_load env' ~objs:objs' ~field:car_dist in
        R.Env.compute env';
        R.Env.field_store env' ~objs:objs' ~field:car_dist
          (Array.init n (fun i -> dist.(i) + new_vel.(i))))
      None
  in

  let monitor_update (env : R.Env.t) objs =
    let acc = R.Env.field_load env ~objs ~field:m_acc in
    let first = R.Env.field_load env ~objs ~field:m_first_cell in
    let stride = R.Env.field_load env ~objs ~field:m_stride in
    let n = Array.length acc in
    let total = Array.copy acc in
    for k = 0 to 7 do
      let pick = Array.init n (fun i -> (first.(i) + (k * stride.(i))) mod n_cells) in
      let cell_ptrs = R.Garray.load (table cells) env.R.Env.ctx ~idxs:pick in
      let occ = R.Env.field_load env ~objs:cell_ptrs ~field:c_occupant in
      R.Env.compute env;
      for i = 0 to n - 1 do
        if occ.(i) <> 0 then total.(i) <- total.(i) + 1
      done
    done;
    R.Env.field_store env ~objs ~field:m_acc total
  in

  (* --- types --------------------------------------------------------- *)
  let i_cell = R.Runtime.register_impl rt ~name:"Cell.update" cell_noop in
  let i_producer = R.Runtime.register_impl rt ~name:"ProducerCell.update" producer_update in
  let i_car = R.Runtime.register_impl rt ~name:"Car.update" car_update in
  let i_light = R.Runtime.register_impl rt ~name:"TrafficLight.update" light_update in
  let i_group = R.Runtime.register_impl rt ~name:"SignalGroup.update" group_update in
  let i_monitor = R.Runtime.register_impl rt ~name:"Monitor.update" monitor_update in
  let cell_t =
    R.Runtime.define_type rt ~name:"Cell" ~field_words:cell_fields ~slots:[| i_cell |] ()
  in
  let producer_t =
    R.Runtime.define_type rt ~name:"ProducerCell" ~field_words:cell_fields
      ~parent:cell_t ~slots:[| i_producer |] ()
  in
  let car_t =
    R.Runtime.define_type rt ~name:"Car" ~field_words:car_fields ~slots:[| i_car |] ()
  in
  let light_t =
    R.Runtime.define_type rt ~name:"TrafficLight" ~field_words:light_fields
      ~slots:[| i_light |] ()
  in
  let group_t =
    R.Runtime.define_type rt ~name:"SignalGroup" ~field_words:group_fields
      ~slots:[| i_group |] ()
  in
  let monitor_t =
    R.Runtime.define_type rt ~name:"Monitor" ~field_words:monitor_fields
      ~slots:[| i_monitor |] ()
  in

  (* --- allocation: street-construction order interleaves the types --- *)
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let cell_ptr = Array.make n_cells 0 in
  let car_ptr = Array.make n_cars 0 in
  let light_ptr = Array.make n_lights 0 in
  let group_ptr = Array.make n_groups 0 in
  let monitor_ptr = Array.make n_monitors 0 in
  let cars_done = ref 0 and lights_done = ref 0 in
  let groups_done = ref 0 and monitors_done = ref 0 in
  for c = 0 to n_cells - 1 do
    let is_producer = c mod 20 = 10 in
    cell_ptr.(c) <- R.Runtime.new_obj rt (if is_producer then producer_t else cell_t);
    if c mod 4 = 1 && !cars_done < n_cars then begin
      car_ptr.(!cars_done) <- R.Runtime.new_obj rt car_t;
      incr cars_done
    end;
    if c mod 40 = 20 && !lights_done < n_lights then begin
      light_ptr.(!lights_done) <- R.Runtime.new_obj rt light_t;
      incr lights_done
    end;
    if c mod (40 * lights_per_group) = 0 && !groups_done < n_groups then begin
      group_ptr.(!groups_done) <- R.Runtime.new_obj rt group_t;
      incr groups_done
    end;
    if c mod 160 = 80 && !monitors_done < n_monitors then begin
      monitor_ptr.(!monitors_done) <- R.Runtime.new_obj rt monitor_t;
      incr monitors_done
    end
  done;
  while !cars_done < n_cars do
    car_ptr.(!cars_done) <- R.Runtime.new_obj rt car_t;
    incr cars_done
  done;
  (* Host-side field initialization (untimed, like the paper's init). *)
  Array.iteri
    (fun c ptr ->
      R.Object_model.field_store_host om heap ~ptr ~field:c_gate 1;
      R.Object_model.field_store_host om heap ~ptr ~field:c_index c)
    cell_ptr;
  Array.iteri
    (fun i ptr ->
      R.Object_model.field_store_host om heap ~ptr ~field:car_cell (i * 4 mod n_cells);
      R.Object_model.field_store_host om heap ~ptr ~field:car_active (i land 1))
    car_ptr;
  Array.iteri
    (fun i ptr ->
      R.Object_model.field_store_host om heap ~ptr ~field:l_first_cell
        (i * cells_per_light * 5 mod n_cells))
    light_ptr;
  Array.iteri
    (fun i ptr ->
      R.Object_model.field_store_host om heap ~ptr ~field:g_first_light
        (i * lights_per_group mod n_lights))
    group_ptr;
  Array.iteri
    (fun i ptr ->
      R.Object_model.field_store_host om heap ~ptr ~field:m_first_cell (i * 160 mod n_cells);
      R.Object_model.field_store_host om heap ~ptr ~field:m_stride 7)
    monitor_ptr;
  cells := Some (Common.garray_of_ptrs rt ~name:"cells" cell_ptr);
  cars := Some (Common.garray_of_ptrs rt ~name:"cars" car_ptr);
  lights := Some (Common.garray_of_ptrs rt ~name:"lights" light_ptr);
  let groups_table = Common.garray_of_ptrs rt ~name:"groups" group_ptr in
  let monitors_table = Common.garray_of_ptrs rt ~name:"monitors" monitor_ptr in
  let producer_ptr = Array.of_list (List.filteri (fun c _ -> c mod 20 = 10) (Array.to_list cell_ptr)) in
  let producers_table = Common.garray_of_ptrs rt ~name:"producers" producer_ptr in

  let run_iteration _ =
    Common.vcall_all rt ~ptrs:groups_table ~n:n_groups ~slot:0;
    Common.vcall_all rt ~ptrs:(table lights) ~n:n_lights ~slot:0;
    Common.vcall_all rt ~ptrs:producers_table ~n:n_producers ~slot:0;
    Common.vcall_all rt ~ptrs:(table cars) ~n:n_cars ~slot:0;
    Common.vcall_all rt ~ptrs:monitors_table ~n:n_monitors ~slot:0
  in
  let result () =
    let dist =
      Array.fold_left
        (fun acc ptr -> acc + R.Object_model.field_load_host om heap ~ptr ~field:car_dist)
        0 car_ptr
    in
    let sampled =
      Array.fold_left
        (fun acc ptr -> acc + R.Object_model.field_load_host om heap ~ptr ~field:m_acc)
        0 monitor_ptr
    in
    dist + (1000 * sampled)
  in
  {
    Workload.rt;
    iterations = Option.value p.Workload.iterations ~default:8;
    run_iteration;
    result;
  }

let workload =
  {
    Workload.name = "TRAF";
    suite = "Dynasoar";
    description = "Nagel-Schreckenberg traffic simulation (streets, cars, lights)";
    paper_objects = 1_573_714;
    paper_types = 6;
    build;
  }
