module Rng = Repro_util.Rng

type t = {
  n_vertices : int;
  edges : (int * int) array;
  out_degree : int array;
}

let generate ?(seed = 7) ~n_vertices ~n_edges () =
  if n_vertices < 2 then invalid_arg "Graph.generate: need at least two vertices";
  if n_edges < 1 then invalid_arg "Graph.generate: need at least one edge";
  let rng = Rng.create ~seed in
  let edges = Array.make n_edges (0, 0) in
  for i = 0 to n_edges - 1 do
    let src =
      if i = 0 then 0 (* guarantee the BFS source has an out-edge *)
      else Rng.int rng n_vertices
    in
    (* Preferential attachment flavour: half the time the destination is
       an earlier edge's endpoint, concentrating in-degree. *)
    let dst =
      if i > 0 && Rng.bool rng then snd edges.(Rng.int rng i)
      else Rng.int rng n_vertices
    in
    let dst = if dst = src then (dst + 1) mod n_vertices else dst in
    edges.(i) <- (src, dst)
  done;
  let out_degree = Array.make n_vertices 0 in
  Array.iter (fun (src, _) -> out_degree.(src) <- out_degree.(src) + 1) edges;
  { n_vertices; edges; out_degree }

let reachable_within t ~source ~hops =
  let reach = Array.make t.n_vertices false in
  reach.(source) <- true;
  for _ = 1 to hops do
    Array.iter (fun (src, dst) -> if reach.(src) then reach.(dst) <- true) t.edges
  done;
  reach
