lib/workloads/structure.ml: Array Common Float List Option Repro_core Repro_gpu Workload
