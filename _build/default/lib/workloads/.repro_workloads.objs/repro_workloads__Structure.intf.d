lib/workloads/structure.mli: Workload
