lib/workloads/traffic.mli: Workload
