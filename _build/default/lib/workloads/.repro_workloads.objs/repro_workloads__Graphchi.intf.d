lib/workloads/graphchi.mli: Workload
