lib/workloads/graph.mli:
