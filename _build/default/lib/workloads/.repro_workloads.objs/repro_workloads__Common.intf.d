lib/workloads/common.mli: Repro_core Workload
