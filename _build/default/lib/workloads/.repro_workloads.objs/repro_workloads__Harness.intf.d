lib/workloads/harness.mli: Repro_core Repro_gpu Workload
