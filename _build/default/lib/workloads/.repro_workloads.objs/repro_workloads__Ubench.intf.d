lib/workloads/ubench.mli: Repro_core Repro_gpu Workload
