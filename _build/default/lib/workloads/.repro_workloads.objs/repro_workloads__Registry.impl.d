lib/workloads/registry.ml: Automata Graphchi List Raytrace String Structure Traffic Workload
