lib/workloads/common.ml: Array Repro_core Repro_gpu Workload
