lib/workloads/raytrace.ml: Array Buffer Common Option Repro_core Repro_gpu Repro_mem Repro_util String Workload
