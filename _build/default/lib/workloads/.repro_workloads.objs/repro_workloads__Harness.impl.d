lib/workloads/harness.ml: List Printf Registry Repro_core Repro_gpu Workload
