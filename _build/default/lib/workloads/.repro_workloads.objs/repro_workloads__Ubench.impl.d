lib/workloads/ubench.ml: Array Common Option Printf Repro_core Repro_gpu Repro_mem Workload
