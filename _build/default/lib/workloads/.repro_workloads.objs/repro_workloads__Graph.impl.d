lib/workloads/graph.ml: Array Repro_util
