lib/workloads/workload.ml: Float Repro_core Repro_gpu
