lib/workloads/graphchi.ml: Array Common Graph List Option Printf Repro_core Repro_gpu Workload
