lib/workloads/automata.mli: Workload
