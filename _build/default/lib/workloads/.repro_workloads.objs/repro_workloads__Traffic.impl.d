lib/workloads/traffic.ml: Array Common List Option Repro_core Repro_gpu Workload
