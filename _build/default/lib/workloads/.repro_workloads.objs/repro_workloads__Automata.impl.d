lib/workloads/automata.ml: Array Common Float Option Repro_core Repro_gpu Repro_util Workload
