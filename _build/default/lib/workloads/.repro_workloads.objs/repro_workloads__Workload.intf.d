lib/workloads/workload.mli: Repro_core Repro_gpu
