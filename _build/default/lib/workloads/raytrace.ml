module R = Repro_core
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label
module Rng = Repro_util.Rng

(* Sphere fields *)
let sp_cx = 0
let sp_cy = 1
let sp_cz = 2
let sp_r = 3
let sp_color = 4
let sphere_fields = 5

(* Plane fields *)
let pl_height = 0
let pl_depth = 1
let pl_color = 2
let plane_fields = 3

let t_max = 1 lsl 30

let width_default = 96
let height_default = 96

(* Per-lane camera ray through the pixel, in fixed-point screen space. *)
let pixel_uv ~width tid =
  let x = tid mod width and y = tid / width in
  (((x - (width / 2)) * 32), ((y - (width / 2)) * 32))
(* The image is square; height equals width for the uv mapping. *)

let build (p : Workload.params) =
  let rt = Common.create_runtime p in
  let width = width_default and height = height_default in
  let n_pixels = width * height in
  let n_objects = max 8 (Workload.scaled p 96) in
  let tbuf = ref None and cbuf = ref None in
  let the t = Option.get !t in

  (* intersect: project the (shared) object, test the lane's ray, keep
     the nearest hit in the frame buffers. *)
  let sphere_intersect (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let tids = Warp_ctx.tids ctx in
    let n = Array.length tids in
    let cx = R.Env.field_load env ~objs ~field:sp_cx in
    let cy = R.Env.field_load env ~objs ~field:sp_cy in
    let cz = R.Env.field_load env ~objs ~field:sp_cz in
    let r = R.Env.field_load env ~objs ~field:sp_r in
    let color = R.Env.field_load env ~objs ~field:sp_color in
    R.Env.compute env ~n:10;
    let told = R.Garray.load (the tbuf) ctx ~idxs:tids in
    let hit = Array.make n false in
    for i = 0 to n - 1 do
      let u, v = pixel_uv ~width tids.(i) in
      let sx = cx.(i) * 1024 / cz.(i) and sy = cy.(i) * 1024 / cz.(i) in
      let sr = r.(i) * 1024 / cz.(i) in
      let du = u - sx and dv = v - sy in
      hit.(i) <- (du * du) + (dv * dv) <= sr * sr && cz.(i) < told.(i)
    done;
    Warp_ctx.if_ ctx ~label:Label.Body ~pred:hit
      (fun sub idxs ->
        let tids' = Warp_ctx.gather idxs tids in
        let cz' = Warp_ctx.gather idxs cz in
        let color' = Warp_ctx.gather idxs color in
        R.Garray.store (the tbuf) sub ~idxs:tids' cz';
        R.Garray.store (the cbuf) sub ~idxs:tids' color')
      None
  in
  let plane_intersect (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let tids = Warp_ctx.tids ctx in
    let n = Array.length tids in
    let hgt = R.Env.field_load env ~objs ~field:pl_height in
    let depth = R.Env.field_load env ~objs ~field:pl_depth in
    let color = R.Env.field_load env ~objs ~field:pl_color in
    R.Env.compute env ~n:8;
    let told = R.Garray.load (the tbuf) ctx ~idxs:tids in
    let hit = Array.make n false in
    let tval = Array.make n 0 in
    let shade = Array.make n 0 in
    for i = 0 to n - 1 do
      let u, v = pixel_uv ~width tids.(i) in
      if v > 8 then begin
        let t = hgt.(i) * 1024 / v in
        tval.(i) <- t;
        (* Checkerboard in world space. *)
        shade.(i) <- color.(i) + (((u * t / 1024 / 256) + (t / 256)) land 1);
        hit.(i) <- t > depth.(i) && t < told.(i)
      end
    done;
    Warp_ctx.if_ ctx ~label:Label.Body ~pred:hit
      (fun sub idxs ->
        let tids' = Warp_ctx.gather idxs tids in
        R.Garray.store (the tbuf) sub ~idxs:tids' (Warp_ctx.gather idxs tval);
        R.Garray.store (the cbuf) sub ~idxs:tids' (Warp_ctx.gather idxs shade))
      None
  in
  (* occludes: darken pixels whose hit point lies in the object's shadow
     (light from the upper left, coarse disc test). *)
  let sphere_occludes (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let tids = Warp_ctx.tids ctx in
    let n = Array.length tids in
    let cx = R.Env.field_load env ~objs ~field:sp_cx in
    let cy = R.Env.field_load env ~objs ~field:sp_cy in
    let cz = R.Env.field_load env ~objs ~field:sp_cz in
    let r = R.Env.field_load env ~objs ~field:sp_r in
    R.Env.compute env ~n:8;
    let told = R.Garray.load (the tbuf) ctx ~idxs:tids in
    let shadowed = Array.make n false in
    for i = 0 to n - 1 do
      let u, v = pixel_uv ~width tids.(i) in
      let sx = (cx.(i) - (r.(i) / 2)) * 1024 / cz.(i) and sy = (cy.(i) - (r.(i) / 2)) * 1024 / cz.(i) in
      let sr = r.(i) * 1024 / cz.(i) in
      let du = u - sx and dv = v - sy in
      shadowed.(i) <- told.(i) > cz.(i) && told.(i) < t_max && (du * du) + (dv * dv) <= sr * sr
    done;
    Warp_ctx.if_ ctx ~label:Label.Body ~pred:shadowed
      (fun sub idxs ->
        let tids' = Warp_ctx.gather idxs tids in
        let c = R.Garray.load (the cbuf) sub ~idxs:tids' in
        Warp_ctx.compute sub ~label:Label.Body;
        R.Garray.store (the cbuf) sub ~idxs:tids' (Array.map (fun c -> c / 2) c))
      None
  in
  let plane_occludes (_ : R.Env.t) (_ : int array) = () in

  let i_s_int = R.Runtime.register_impl rt ~name:"Sphere.intersect" sphere_intersect in
  let i_p_int = R.Runtime.register_impl rt ~name:"Plane.intersect" plane_intersect in
  let i_s_occ = R.Runtime.register_impl rt ~name:"Sphere.occludes" sphere_occludes in
  let i_p_occ = R.Runtime.register_impl rt ~name:"Plane.occludes" plane_occludes in
  let renderable_t =
    R.Runtime.define_type rt ~name:"Renderable" ~field_words:sphere_fields
      ~slots:[| i_s_int; i_s_occ |] ()
  in
  let sphere_t =
    R.Runtime.define_type rt ~name:"Sphere" ~field_words:sphere_fields
      ~parent:renderable_t ~slots:[| i_s_int; i_s_occ |] ()
  in
  let plane_t =
    R.Runtime.define_type rt ~name:"Plane" ~field_words:plane_fields
      ~parent:renderable_t ~slots:[| i_p_int; i_p_occ |] ()
  in

  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let rng = Rng.create ~seed:p.Workload.seed in
  let object_ptr =
    Array.init n_objects (fun i ->
        if i mod 4 = 3 then begin
          let ptr = R.Runtime.new_obj rt plane_t in
          R.Object_model.field_store_host om heap ~ptr ~field:pl_height
            (600 + Rng.int rng 400);
          R.Object_model.field_store_host om heap ~ptr ~field:pl_depth
            (256 + Rng.int rng 512);
          R.Object_model.field_store_host om heap ~ptr ~field:pl_color
            (16 + Rng.int rng 64);
          ptr
        end
        else begin
          let ptr = R.Runtime.new_obj rt sphere_t in
          R.Object_model.field_store_host om heap ~ptr ~field:sp_cx
            (Rng.int rng 2048 - 1024);
          R.Object_model.field_store_host om heap ~ptr ~field:sp_cy
            (Rng.int rng 1024 - 512);
          R.Object_model.field_store_host om heap ~ptr ~field:sp_cz (300 + Rng.int rng 1500);
          R.Object_model.field_store_host om heap ~ptr ~field:sp_r (80 + Rng.int rng 200);
          R.Object_model.field_store_host om heap ~ptr ~field:sp_color (64 + Rng.int rng 190);
          ptr
        end)
  in
  tbuf := Some (Common.garray rt ~name:"tbuf" ~len:n_pixels);
  cbuf := Some (Common.garray rt ~name:"cbuf" ~len:n_pixels);

  let run_iteration _ =
    Common.launch rt ~n:n_pixels (fun env ->
        let ctx = env.R.Env.ctx in
        let tids = Warp_ctx.tids ctx in
        let n = Array.length tids in
        (* Clear the lane's pixel. *)
        R.Garray.store (the tbuf) ctx ~idxs:tids (Array.make n t_max);
        R.Garray.store (the cbuf) ctx ~idxs:tids (Array.make n 0);
        (* Primary rays: every lane visits the same object per call —
           the converged sites of Sec. 8.1. *)
        Array.iter
          (fun ptr ->
            let objs = Array.make n ptr in
            env.R.Env.vcall_converged env ~objs ~slot:0)
          object_ptr;
        (* Shadow pass. *)
        Array.iter
          (fun ptr ->
            let objs = Array.make n ptr in
            env.R.Env.vcall_converged env ~objs ~slot:1)
          object_ptr)
  in
  let result () =
    let acc = ref 0 in
    for i = 0 to n_pixels - 1 do
      let c = R.Garray.get (the cbuf) heap i in
      let t = min (R.Garray.get (the tbuf) heap i) 65535 in
      acc := (!acc * 31) + c + t land max_int
    done;
    !acc land max_int
  in
  ignore sphere_t;
  {
    Workload.rt;
    iterations = Option.value p.Workload.iterations ~default:2;
    run_iteration;
    result;
  }

let workload =
  {
    Workload.name = "RAY";
    suite = "RAY";
    description = "Ray tracer over spheres and planes (converged virtual calls)";
    paper_objects = 1000;
    paper_types = 3;
    build;
  }

let render_ascii (inst : Workload.instance) ~width ~height =
  let rt = inst.Workload.rt in
  let heap = R.Runtime.heap rt in
  let space = R.Runtime.address_space rt in
  match Repro_mem.Address_space.find space "cbuf" with
  | None -> invalid_arg "Raytrace.render_ascii: no frame buffer (not a RAY instance)"
  | Some arena ->
    let palette = " .:-=+*#%@" in
    let buf = Buffer.create (width * height) in
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        let idx = (y * width) + x in
        let addr = arena.Repro_mem.Address_space.base + (idx * 8) in
        let c = Repro_mem.Page_store.load heap addr in
        let level = min 9 (max 0 (c / 26)) in
        Buffer.add_char buf palette.[level]
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
