(** The GraphChi-derived graph-analytics workloads (Table 2).

    Two framework variants, as in the paper:

    - {b vE} (GraphChi-vE): edges are polymorphic objects ([ChiEdge] →
      [Edge]); vertex updates are plain code.
    - {b vEN} (GraphChi-vEN): both edges and vertices are polymorphic
      ([ChiVertex] → [Vertex] as well), roughly doubling the dynamic
      virtual-call rate (vFuncPKI 52 vs 36 in the paper).

    Three algorithms each: BFS level propagation, connected components by
    label propagation (undirected interpretation), and fixed-point
    PageRank (damping 0.85, ranks scaled by 2^16). All arithmetic is
    integral so results are exactly comparable across techniques. *)

type algorithm =
  | Bfs
  | Cc
  | Pagerank

val workload : virtual_vertices:bool -> algorithm -> Workload.t

val all : Workload.t list
(** The six instances, vE first, in the paper's order. *)
