(** The eleven applications of Table 2, in the paper's order, plus
    lookup helpers. *)

val all : Workload.t list
(** TRAF, GOL, STUT, GEN, vE BFS/CC/PR, vEN BFS/CC/PR, RAY. *)

val find : string -> Workload.t option
(** Case-insensitive lookup by ["name"] or ["suite/name"] (needed for
    the BFS/CC/PR duplicates). *)

val qualified_name : Workload.t -> string
(** ["suite/name"], unique across the list. *)
