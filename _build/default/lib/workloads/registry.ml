let all =
  [ Traffic.workload; Automata.game_of_life; Structure.workload; Automata.generation ]
  @ Graphchi.all
  @ [ Raytrace.workload ]

let qualified_name (w : Workload.t) = w.Workload.suite ^ "/" ^ w.Workload.name

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun w ->
      String.lowercase_ascii (qualified_name w) = needle
      || String.lowercase_ascii w.Workload.name = needle)
    all
