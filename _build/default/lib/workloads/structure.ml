module R = Repro_core
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label

(* Node fields (positions/velocities in 1/1024 fixed point) *)
let n_px = 0
let n_py = 1
let n_vx = 2
let n_vy = 3
let n_fx = 4
let n_fy = 5
let node_fields = 6

(* Spring fields *)
let s_a = 0
let s_b = 1
let s_rest = 2
let s_broken = 3
let spring_fields = 4

let unit_len = 1024
let break_threshold = 700
let gravity = 12

let build (p : Workload.params) =
  let rt = Common.create_runtime p in
  let side =
    max 8 (int_of_float (Float.round (120. *. sqrt p.Workload.scale)))
  in
  let n_nodes = side * side in
  let nodes = ref None in
  let node_table () = Option.get !nodes in

  let spring_force (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let broken = R.Env.field_load env ~objs ~field:s_broken in
    let pred = Array.map (fun b -> b = 0) broken in
    Warp_ctx.if_ ctx ~label:Label.Body ~pred
      (fun sub idxs ->
        let env' = R.Env.restrict env sub in
        let objs' = Warp_ctx.gather idxs objs in
        let a = R.Env.field_load env' ~objs:objs' ~field:s_a in
        let b = R.Env.field_load env' ~objs:objs' ~field:s_b in
        let rest = R.Env.field_load env' ~objs:objs' ~field:s_rest in
        let pa = R.Garray.load (node_table ()) sub ~idxs:a in
        let pb = R.Garray.load (node_table ()) sub ~idxs:b in
        let ax = R.Env.field_load env' ~objs:pa ~field:n_px in
        let ay = R.Env.field_load env' ~objs:pa ~field:n_py in
        let bx = R.Env.field_load env' ~objs:pb ~field:n_px in
        let by = R.Env.field_load env' ~objs:pb ~field:n_py in
        let n = Array.length idxs in
        R.Env.compute env' ~n:6;
        (* Hooke's law on the Manhattan length (integer-exact). *)
        let dx = Array.init n (fun i -> bx.(i) - ax.(i)) in
        let dy = Array.init n (fun i -> by.(i) - ay.(i)) in
        let dist = Array.init n (fun i -> abs dx.(i) + abs dy.(i)) in
        let stretch = Array.init n (fun i -> dist.(i) - rest.(i)) in
        let overloaded = Array.init n (fun i -> abs stretch.(i) > break_threshold) in
        Warp_ctx.if_ sub ~label:Label.Body ~pred:overloaded
          (fun sub2 idxs2 ->
            let objs2 = Warp_ctx.gather idxs2 objs' in
            R.Env.field_store (R.Env.restrict env' sub2) ~objs:objs2 ~field:s_broken
              (Array.make (Array.length idxs2) 1))
          (Some
             (fun sub2 idxs2 ->
               let env2 = R.Env.restrict env' sub2 in
               let gathered arr = Warp_ctx.gather idxs2 arr in
               let pa2 = gathered pa and pb2 = gathered pb in
               let dx2 = gathered dx and dy2 = gathered dy in
               let d2 = gathered dist and st2 = gathered stretch in
               let m = Array.length idxs2 in
               R.Env.compute env2 ~n:4;
               let fx = Array.init m (fun i -> st2.(i) * dx2.(i) / max 1 d2.(i) / 4) in
               let fy = Array.init m (fun i -> st2.(i) * dy2.(i) / max 1 d2.(i) / 4) in
               (* Accumulate member forces on both endpoints. *)
               let add ptrs field delta =
                 let cur = R.Env.field_load env2 ~objs:ptrs ~field in
                 R.Env.compute env2;
                 R.Env.field_store env2 ~objs:ptrs ~field
                   (Array.init m (fun i -> cur.(i) + delta i))
               in
               add pa2 n_fx (fun i -> fx.(i));
               add pa2 n_fy (fun i -> fy.(i));
               add pb2 n_fx (fun i -> -fx.(i));
               add pb2 n_fy (fun i -> -fy.(i))))
      )
      None
  in

  let node_integrate (env : R.Env.t) objs =
    let fx = R.Env.field_load env ~objs ~field:n_fx in
    let fy = R.Env.field_load env ~objs ~field:n_fy in
    let vx = R.Env.field_load env ~objs ~field:n_vx in
    let vy = R.Env.field_load env ~objs ~field:n_vy in
    let px = R.Env.field_load env ~objs ~field:n_px in
    let py = R.Env.field_load env ~objs ~field:n_py in
    let n = Array.length fx in
    R.Env.compute env ~n:8;
    let vx = Array.init n (fun i -> (vx.(i) + (fx.(i) / 8)) * 15 / 16) in
    let vy = Array.init n (fun i -> (vy.(i) + ((fy.(i) + gravity) / 8)) * 15 / 16) in
    R.Env.field_store env ~objs ~field:n_vx vx;
    R.Env.field_store env ~objs ~field:n_vy vy;
    R.Env.field_store env ~objs ~field:n_px (Array.init n (fun i -> px.(i) + (vx.(i) / 8)));
    R.Env.field_store env ~objs ~field:n_py (Array.init n (fun i -> py.(i) + (vy.(i) / 8)));
    let zeros = Array.make n 0 in
    R.Env.field_store env ~objs ~field:n_fx zeros;
    R.Env.field_store env ~objs ~field:n_fy zeros
  in

  let anchor_integrate (env : R.Env.t) objs =
    (* Pinned: discard accumulated force, never move. *)
    let n = Array.length objs in
    R.Env.field_store env ~objs ~field:n_fx (Array.make n 0);
    R.Env.field_store env ~objs ~field:n_fy (Array.make n 0)
  in

  let i_spring = R.Runtime.register_impl rt ~name:"Spring.computeForce" spring_force in
  let i_node = R.Runtime.register_impl rt ~name:"Node.integrate" node_integrate in
  let i_anchor = R.Runtime.register_impl rt ~name:"AnchorNode.integrate" anchor_integrate in
  let node_base_t =
    R.Runtime.define_type rt ~name:"NodeBase" ~field_words:node_fields ~slots:[| i_node |] ()
  in
  let node_t =
    R.Runtime.define_type rt ~name:"Node" ~field_words:node_fields ~parent:node_base_t
      ~slots:[| i_node |] ()
  in
  let anchor_t =
    R.Runtime.define_type rt ~name:"AnchorNode" ~field_words:node_fields ~parent:node_base_t
      ~slots:[| i_anchor |] ()
  in
  let spring_t =
    R.Runtime.define_type rt ~name:"Spring" ~field_words:spring_fields ~slots:[| i_spring |] ()
  in

  (* Mesh construction: row-major, each node followed by the springs that
     connect it to already-created neighbours. *)
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let node_ptr = Array.make n_nodes 0 in
  let springs = ref [] in
  let n_springs = ref 0 in
  for y = 0 to side - 1 do
    for x = 0 to side - 1 do
      let idx = (y * side) + x in
      let typ = if y = 0 then anchor_t else node_t in
      node_ptr.(idx) <- R.Runtime.new_obj rt typ;
      R.Object_model.field_store_host om heap ~ptr:node_ptr.(idx) ~field:n_px (x * unit_len);
      R.Object_model.field_store_host om heap ~ptr:node_ptr.(idx) ~field:n_py (y * unit_len);
      let add_spring a b =
        let ptr = R.Runtime.new_obj rt spring_t in
        R.Object_model.field_store_host om heap ~ptr ~field:s_a a;
        R.Object_model.field_store_host om heap ~ptr ~field:s_b b;
        R.Object_model.field_store_host om heap ~ptr ~field:s_rest unit_len;
        springs := ptr :: !springs;
        incr n_springs
      in
      if x > 0 then add_spring (idx - 1) idx;
      if y > 0 then add_spring (idx - side) idx
    done
  done;
  let spring_ptr = Array.of_list (List.rev !springs) in
  nodes := Some (Common.garray_of_ptrs rt ~name:"nodes" node_ptr);
  let springs_table = Common.garray_of_ptrs rt ~name:"springs" spring_ptr in
  let nodes_table = node_table () in

  let run_iteration _ =
    Common.vcall_all rt ~ptrs:springs_table ~n:!n_springs ~slot:0;
    Common.vcall_all rt ~ptrs:nodes_table ~n:n_nodes ~slot:0
  in
  let result () =
    let pos =
      Array.fold_left
        (fun acc ptr ->
          acc
          + R.Object_model.field_load_host om heap ~ptr ~field:n_px
          + R.Object_model.field_load_host om heap ~ptr ~field:n_py)
        0 node_ptr
    in
    let broken =
      Array.fold_left
        (fun acc ptr -> acc + R.Object_model.field_load_host om heap ~ptr ~field:s_broken)
        0 spring_ptr
    in
    (pos land 0xFFFF_FFFF) + (broken * 1_000_000)
  in
  {
    Workload.rt;
    iterations = Option.value p.Workload.iterations ~default:6;
    run_iteration;
    result;
  }

let workload =
  {
    Workload.name = "STUT";
    suite = "Dynasoar";
    description = "Finite-element fracture: spring/node mesh with breakage";
    paper_objects = 525_000;
    paper_types = 4;
    build;
  }
