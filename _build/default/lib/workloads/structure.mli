(** STUT: finite-element fracture simulation (Table 2: 525 K objects,
    4 types, vFuncPKI ≈ 30).

    A rectangular mesh of [Node]s (top row pinned as [AnchorNode]s, both
    under an abstract base) connected by [Spring]s. Each iteration the
    spring kernel computes member forces and breaks over-stressed
    springs; the node kernel integrates velocity/position with fixed-
    point arithmetic. Both kernels dispatch through virtual functions. *)

val workload : Workload.t
