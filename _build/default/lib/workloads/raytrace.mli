(** RAY: the "Ray Tracing in One Weekend"-style renderer (Table 2:
    1000 objects, 3 types, vFuncPKI ≈ 15).

    Spheres and planes under an abstract [Renderable] base. One thread
    per pixel; every thread loops over the scene calling the virtual
    [intersect] (and then a shadow-test [occludes]) on the *same* object —
    exactly the converged call sites the paper discusses: COAL's static
    heuristic leaves them un-instrumented, and Concord does well here.
    Geometry is integer fixed-point so results compare exactly. *)

val workload : Workload.t

val render_ascii : Workload.instance -> width:int -> height:int -> string
(** Read back the frame buffer as ASCII art (used by the example). *)
