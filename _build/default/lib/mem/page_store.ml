let page_bytes = 4096
let page_words = page_bytes / Vaddr.word_bytes

(* Words are kept as two 32-bit halves so that 4-byte fields round-trip
   exactly even in the high half of a word (OCaml ints are 63-bit, so a
   packed 64-bit representation would lose the high field's sign bit).
   Full 64-bit values are therefore restricted to non-negative ints —
   pointers, table entries and indices, which is everything the runtime
   stores at word width. *)
type t = { pages : (int, int array) Hashtbl.t }

let half_mask = 0xFFFF_FFFF

let create () = { pages = Hashtbl.create 1024 }

let check_addr addr label =
  if not (Vaddr.is_canonical addr) then
    invalid_arg ("Page_store." ^ label ^ ": tagged address reached the store");
  if addr land (Vaddr.word_bytes - 1) <> 0 then
    invalid_arg ("Page_store." ^ label ^ ": misaligned address")

let page_of addr = addr / page_bytes

let cells_of_page t key =
  match Hashtbl.find_opt t.pages key with
  | Some cells -> Some cells
  | None -> None

let materialize t key =
  match Hashtbl.find_opt t.pages key with
  | Some cells -> cells
  | None ->
    let cells = Array.make (page_words * 2) 0 in
    Hashtbl.add t.pages key cells;
    cells

(* Index of the 32-bit half-cell containing byte [addr]. *)
let cell_index addr = addr mod page_bytes / 4

let load t addr =
  check_addr addr "load";
  match cells_of_page t (page_of addr) with
  | None -> 0
  | Some cells ->
    let i = cell_index addr in
    (cells.(i + 1) lsl 32) lor cells.(i)

let store t addr v =
  check_addr addr "store";
  if v < 0 then invalid_arg "Page_store.store: negative 64-bit stores are unsupported";
  let cells = materialize t (page_of addr) in
  let i = cell_index addr in
  cells.(i) <- v land half_mask;
  cells.(i + 1) <- (v lsr 32) land half_mask

let check_width width label =
  match width with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg ("Page_store." ^ label ^ ": width must be 1, 2, 4 or 8")

let check_field_alignment addr width label =
  if addr land (width - 1) <> 0 then
    invalid_arg ("Page_store." ^ label ^ ": misaligned field")

let load_byte_width t addr ~width =
  check_width width "load_byte_width";
  check_field_alignment addr width "load_byte_width";
  if width = 8 then load t addr
  else begin
    match cells_of_page t (page_of addr) with
    | None -> 0
    | Some cells ->
      let half = cells.(cell_index addr) in
      if width = 4 then half
      else begin
        let shift = addr mod 4 * 8 in
        let mask = (1 lsl (width * 8)) - 1 in
        (half lsr shift) land mask
      end
  end

let store_byte_width t addr ~width v =
  check_width width "store_byte_width";
  check_field_alignment addr width "store_byte_width";
  if width = 8 then store t addr v
  else begin
    let cells = materialize t (page_of addr) in
    let i = cell_index addr in
    if width = 4 then cells.(i) <- v land half_mask
    else begin
      let shift = addr mod 4 * 8 in
      let mask = ((1 lsl (width * 8)) - 1) lsl shift in
      cells.(i) <- (cells.(i) land lnot mask lor ((v lsl shift) land mask)) land half_mask
    end
  end

let touched_pages t = Hashtbl.length t.pages

let footprint_bytes t = touched_pages t * page_bytes

let iter_words t f =
  Hashtbl.iter
    (fun page cells ->
      let base = page * page_bytes in
      for w = 0 to page_words - 1 do
        let v = (cells.((2 * w) + 1) lsl 32) lor cells.(2 * w) in
        if v <> 0 then f (base + (w * Vaddr.word_bytes)) v
      done)
    t.pages
