lib/mem/page_store.ml: Array Hashtbl Vaddr
