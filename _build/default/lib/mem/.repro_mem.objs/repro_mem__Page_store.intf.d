lib/mem/page_store.mli:
