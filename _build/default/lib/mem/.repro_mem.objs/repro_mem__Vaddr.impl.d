lib/mem/vaddr.ml: Format
