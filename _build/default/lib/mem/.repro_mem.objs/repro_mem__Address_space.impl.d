lib/mem/address_space.ml: Format List Page_store String Vaddr
