(** Coarse layout of the simulated process address space.

    The runtime reserves a handful of disjoint arenas up front — heap space
    for each allocator, the contiguous vTable area TypePointer indexes
    into, and the virtual-range-table area COAL walks. Reservations are
    bump-allocated and never overlap; [reserve] enforces both. *)

type t

type arena = private {
  name : string;
  base : int;   (** First byte of the arena (canonical address). *)
  size : int;   (** Extent in bytes. *)
}

val create : ?first_base:int -> unit -> t
(** A fresh address space. [first_base] defaults to a non-zero, page- and
    sector-aligned address so that address 0 (the null pointer) is never
    handed out. *)

val reserve : t -> name:string -> size:int -> arena
(** Reserve [size] bytes (rounded up to a page). Raises [Invalid_argument]
    if the space would exceed the 48-bit VA range. *)

val arenas : t -> arena list
(** All reservations, in allocation order. *)

val find : t -> string -> arena option
(** Look an arena up by name. *)

val contains : arena -> int -> bool
(** [contains a addr] holds when the canonical [addr] lies inside [a]. *)

val pp : Format.formatter -> t -> unit
