type arena = {
  name : string;
  base : int;
  size : int;
}

type t = {
  mutable cursor : int;
  mutable reservations : arena list; (* newest first *)
}

let default_first_base = 0x1000_0000

let create ?(first_base = default_first_base) () =
  if first_base <= 0 || not (Vaddr.is_canonical first_base) then
    invalid_arg "Address_space.create: first_base must be a positive canonical address";
  let first_base = Vaddr.align_up first_base ~alignment:Page_store.page_bytes in
  { cursor = first_base; reservations = [] }

let reserve t ~name ~size =
  if size <= 0 then invalid_arg "Address_space.reserve: size must be positive";
  let size = Vaddr.align_up size ~alignment:Page_store.page_bytes in
  let base = t.cursor in
  if base + size > Vaddr.va_mask then
    invalid_arg "Address_space.reserve: exhausted the 48-bit address space";
  let arena = { name; base; size } in
  t.cursor <- base + size;
  t.reservations <- arena :: t.reservations;
  arena

let arenas t = List.rev t.reservations

let find t name = List.find_opt (fun a -> String.equal a.name name) t.reservations

let contains a addr =
  let addr = Vaddr.strip addr in
  addr >= a.base && addr < a.base + a.size

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a -> Format.fprintf ppf "%-24s base=0x%x size=%d@," a.name a.base a.size)
    (arenas t);
  Format.fprintf ppf "@]"
