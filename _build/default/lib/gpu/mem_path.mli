(** Timing of the L1 → L2 → DRAM path.

    Each level has real tag state (hits are emergent) and a bandwidth
    reservation clock: a sector transaction starts no earlier than the
    level's [next_free] time and advances it by the reciprocal throughput.
    Latency accumulates level by level, so an L1 hit costs the L1 latency
    while a DRAM access pays all three. The per-SM L1s are flushed at
    kernel boundaries (CUDA semantics); the L2 persists across launches. *)

type t

val create : Config.t -> t

val flush_l1s : t -> unit
(** Invalidate the per-SM L1s. *)

val begin_kernel : t -> unit
(** Kernel-launch boundary: flush the L1s and rewind all bandwidth
    reservation clocks to time zero (each launch is timed from 0; the L2
    tag state persists across launches). *)

val load :
  t -> stats:Stats.t -> sm:int -> start:float -> label:Label.t ->
  addrs:int array -> float
(** Service a warp global load issued at [start] on [sm]; returns the
    completion time (max over its coalesced sectors). Counts load
    transactions, L1/L2 hits and DRAM sectors in [stats]. *)

val store :
  t -> stats:Stats.t -> sm:int -> start:float -> addrs:int array -> unit
(** Service a warp global store (write-through; consumes L2/DRAM bandwidth
    and installs sectors in the L2, no L1 allocation). *)

val reset : t -> unit
(** Full reset: {!begin_kernel} plus an L2 flush. Used when a run starts a
    fresh measurement region. *)

val l1_probe : t -> sm:int -> sector:int -> bool
(** Test hook. *)
