let sectors addrs =
  let s = Array.map Repro_mem.Vaddr.sector_of addrs in
  Array.sort compare s;
  let n = Array.length s in
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || s.(i) <> s.(i - 1) then begin
      s.(!distinct) <- s.(i);
      incr distinct
    end
  done;
  Array.sub s 0 !distinct

let transaction_count addrs = Array.length (sectors addrs)
