lib/gpu/coalesce.ml: Array Repro_mem
