lib/gpu/cache.ml: Array Repro_mem
