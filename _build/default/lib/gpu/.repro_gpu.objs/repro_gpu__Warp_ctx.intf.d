lib/gpu/warp_ctx.mli: Label Repro_mem Trace
