lib/gpu/stats.ml: Array Format Instr Label
