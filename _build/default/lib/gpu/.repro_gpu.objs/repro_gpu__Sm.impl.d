lib/gpu/sm.ml: Array Config Float Instr Mem_path Repro_util Stats Trace
