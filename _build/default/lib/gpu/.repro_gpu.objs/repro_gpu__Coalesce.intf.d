lib/gpu/coalesce.mli:
