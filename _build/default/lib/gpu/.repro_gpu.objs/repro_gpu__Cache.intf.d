lib/gpu/cache.mli:
