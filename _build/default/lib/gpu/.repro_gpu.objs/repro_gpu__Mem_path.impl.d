lib/gpu/mem_path.ml: Array Cache Coalesce Config Float Stats
