lib/gpu/mem_path.mli: Config Label Stats
