lib/gpu/warp_ctx.ml: Array Instr List Repro_mem Trace
