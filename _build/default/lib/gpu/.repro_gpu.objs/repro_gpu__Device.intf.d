lib/gpu/device.mli: Config Repro_mem Stats Warp_ctx
