lib/gpu/label.ml: Format List
