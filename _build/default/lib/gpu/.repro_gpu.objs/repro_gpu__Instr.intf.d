lib/gpu/instr.mli: Label
