lib/gpu/trace.ml: Instr Repro_util
