lib/gpu/device.ml: Array Config Mem_path Repro_mem Repro_util Sm Stats Warp_ctx
