lib/gpu/trace.mli: Instr
