lib/gpu/label.mli: Format
