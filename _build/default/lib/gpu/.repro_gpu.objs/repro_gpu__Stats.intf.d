lib/gpu/stats.mli: Format Instr Label
