lib/gpu/config.ml: Cache Format
