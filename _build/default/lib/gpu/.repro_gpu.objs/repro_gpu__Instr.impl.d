lib/gpu/instr.ml: Array Label
