lib/gpu/sm.mli: Config Mem_path Stats Trace
