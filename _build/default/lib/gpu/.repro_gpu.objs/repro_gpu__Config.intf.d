lib/gpu/config.mli: Cache Format
