type geometry = {
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

let geometry ~size_bytes ~line_bytes ~ways =
  if line_bytes <= 0 || line_bytes mod Repro_mem.Vaddr.sector_bytes <> 0 then
    invalid_arg "Cache.geometry: line size must be a multiple of the sector size";
  if ways <= 0 then invalid_arg "Cache.geometry: ways must be positive";
  if size_bytes mod (line_bytes * ways) <> 0 then
    invalid_arg "Cache.geometry: size must divide into sets";
  let sets = size_bytes / (line_bytes * ways) in
  if sets land (sets - 1) <> 0 then
    invalid_arg "Cache.geometry: the number of sets must be a power of two";
  { size_bytes; line_bytes; ways }

type t = {
  geom : geometry;
  sets : int;
  sectors_per_line : int;
  (* Per (set, way): the resident line index (-1 when invalid), a valid
     bitmask over its sectors, and an LRU stamp. Flat arrays indexed by
     [set * ways + way] keep this allocation-free on the hot path. *)
  tags : int array;
  valid : int array;
  stamps : int array;
  mutable clock : int;
}

let create geom =
  let sets = geom.size_bytes / (geom.line_bytes * geom.ways) in
  let slots = sets * geom.ways in
  {
    geom;
    sets;
    sectors_per_line = geom.line_bytes / Repro_mem.Vaddr.sector_bytes;
    tags = Array.make slots (-1);
    valid = Array.make slots 0;
    stamps = Array.make slots 0;
    clock = 0;
  }

let geometry_of t = t.geom

let locate t ~sector =
  let line = sector / t.sectors_per_line in
  let sector_in_line = sector mod t.sectors_per_line in
  let set = line land (t.sets - 1) in
  (line, sector_in_line, set)

let find_way t ~set ~line =
  let base = set * t.geom.ways in
  let rec go way =
    if way >= t.geom.ways then None
    else if t.tags.(base + way) = line then Some (base + way)
    else go (way + 1)
  in
  go 0

let lru_slot t ~set =
  let base = set * t.geom.ways in
  let best = ref base in
  for way = 1 to t.geom.ways - 1 do
    if t.stamps.(base + way) < t.stamps.(!best) then best := base + way
  done;
  !best

let access t ~sector =
  let line, sector_in_line, set = locate t ~sector in
  t.clock <- t.clock + 1;
  let bit = 1 lsl sector_in_line in
  match find_way t ~set ~line with
  | Some slot ->
    t.stamps.(slot) <- t.clock;
    if t.valid.(slot) land bit <> 0 then `Hit
    else begin
      t.valid.(slot) <- t.valid.(slot) lor bit;
      `Miss
    end
  | None ->
    let slot = lru_slot t ~set in
    t.tags.(slot) <- line;
    t.valid.(slot) <- bit;
    t.stamps.(slot) <- t.clock;
    `Miss

let probe t ~sector =
  let line, sector_in_line, set = locate t ~sector in
  match find_way t ~set ~line with
  | Some slot -> t.valid.(slot) land (1 lsl sector_in_line) <> 0
  | None -> false

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.valid 0 (Array.length t.valid) 0;
  Array.fill t.stamps 0 (Array.length t.stamps) 0
