(** Abstract warp instructions.

    The functional phase of a kernel records one of these per dynamic warp
    instruction; the timing phase replays them. A memory instruction
    carries the canonical (already MMU-stripped) per-active-lane byte
    addresses; the coalescer turns those into 32 B sector transactions.

    [blocking] marks a true data dependency: the warp cannot issue its next
    instruction until this one completes. Dispatch chains (vTable* load →
    vFunc* load → call) and loads whose value feeds the next instruction
    are blocking; fire-and-forget stores are not. *)

type kind =
  | Load of int array        (** Global load; payload = per-lane addresses. *)
  | Store of int array       (** Global store; payload = per-lane addresses. *)
  | Compute of int           (** [n] dependent ALU operations. *)
  | Ctrl of int              (** [n] control-flow operations. *)
  | Const_load               (** Constant-cache access (per-kernel table). *)
  | Call_indirect            (** Indirect branch through a register. *)
  | Call_direct              (** Direct call (Concord's switch targets). *)

type t = {
  label : Label.t;
  kind : kind;
  blocking : bool;
  active : int;              (** Number of active lanes when issued. *)
}

val load : ?blocking:bool -> label:Label.t -> int array -> t
(** [load ~label addrs]: [addrs] must be non-empty; its length is the
    active lane count. *)

val store : label:Label.t -> int array -> t

val compute : ?n:int -> ?blocking:bool -> label:Label.t -> int -> t
(** [compute ~label active]. *)

val ctrl : ?n:int -> label:Label.t -> int -> t

val const_load : label:Label.t -> int -> t

val call_indirect : label:Label.t -> int -> t

val call_direct : label:Label.t -> int -> t

val instruction_count : t -> int
(** Dynamic warp-instruction count this record stands for ([n] for
    [Compute]/[Ctrl], 1 otherwise). *)

val class_of : t -> [ `Mem | `Compute | `Ctrl ]
(** Classification used by the Figure 7 instruction breakdown. Calls and
    control flow are [`Ctrl]; constant loads count as [`Mem]. *)
