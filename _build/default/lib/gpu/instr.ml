type kind =
  | Load of int array
  | Store of int array
  | Compute of int
  | Ctrl of int
  | Const_load
  | Call_indirect
  | Call_direct

type t = {
  label : Label.t;
  kind : kind;
  blocking : bool;
  active : int;
}

let load ?(blocking = true) ~label addrs =
  if Array.length addrs = 0 then invalid_arg "Instr.load: no active lanes";
  { label; kind = Load addrs; blocking; active = Array.length addrs }

let store ~label addrs =
  if Array.length addrs = 0 then invalid_arg "Instr.store: no active lanes";
  { label; kind = Store addrs; blocking = false; active = Array.length addrs }

let compute ?(n = 1) ?(blocking = false) ~label active =
  if n <= 0 then invalid_arg "Instr.compute: n must be positive";
  { label; kind = Compute n; blocking; active }

let ctrl ?(n = 1) ~label active =
  if n <= 0 then invalid_arg "Instr.ctrl: n must be positive";
  { label; kind = Ctrl n; blocking = false; active }

let const_load ~label active = { label; kind = Const_load; blocking = true; active }

let call_indirect ~label active =
  { label; kind = Call_indirect; blocking = true; active }

let call_direct ~label active = { label; kind = Call_direct; blocking = true; active }

let instruction_count t =
  match t.kind with
  | Compute n | Ctrl n -> n
  | Load _ | Store _ | Const_load | Call_indirect | Call_direct -> 1

let class_of t =
  match t.kind with
  | Load _ | Store _ | Const_load -> `Mem
  | Compute _ -> `Compute
  | Ctrl _ | Call_indirect | Call_direct -> `Ctrl
