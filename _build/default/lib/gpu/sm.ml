module Heap = Repro_util.Heap

type warp_state = {
  trace : Trace.t;
  sm : int;
  mutable pc : int;
}

let run (cfg : Config.t) mem_path ~stats ~traces =
  Config.validate cfg;
  let n_warps = Array.length traces in
  if n_warps = 0 then 0.
  else begin
    Mem_path.begin_kernel mem_path;
    let issue_clock = Array.make cfg.n_sms 0. in
    let events : warp_state Heap.t = Heap.create () in
    (* Warps are dealt round-robin to SMs; each SM activates its first
       [max_warps_per_sm] immediately and queues the rest. *)
    let pending = Array.make cfg.n_sms ([] : warp_state list) in
    let resident = Array.make cfg.n_sms 0 in
    for i = n_warps - 1 downto 0 do
      let sm = i mod cfg.n_sms in
      pending.(sm) <- { trace = traces.(i); sm; pc = 0 } :: pending.(sm)
    done;
    let activate sm now =
      match pending.(sm) with
      | [] -> ()
      | w :: rest ->
        pending.(sm) <- rest;
        resident.(sm) <- resident.(sm) + 1;
        Heap.push events ~key:now w
    in
    for sm = 0 to cfg.n_sms - 1 do
      for _ = 1 to cfg.max_warps_per_sm do
        activate sm 0.
      done
    done;
    let finish_time = ref 0. in
    let issue_cost = 1. /. float_of_int cfg.issue_width in
    let latency_of_blocking_kind = function
      | Instr.Const_load -> float_of_int cfg.const_latency
      | Instr.Call_indirect -> float_of_int cfg.call_indirect_latency
      | Instr.Call_direct -> float_of_int cfg.call_direct_latency
      | Instr.Load _ | Instr.Store _ | Instr.Compute _ | Instr.Ctrl _ -> 0.
    in
    let rec drain () =
      match Heap.pop events with
      | None -> ()
      | Some (ready, w) ->
        if w.pc >= Trace.length w.trace then begin
          (* Warp retires; its slot frees for a pending warp. *)
          finish_time := Float.max !finish_time ready;
          resident.(w.sm) <- resident.(w.sm) - 1;
          activate w.sm ready;
          drain ()
        end
        else begin
          let instr = Trace.get w.trace w.pc in
          w.pc <- w.pc + 1;
          Stats.count_instr stats instr;
          let sm = w.sm in
          let issue_time = Float.max ready issue_clock.(sm) in
          let slots = float_of_int (Instr.instruction_count instr) *. issue_cost in
          issue_clock.(sm) <- issue_time +. slots;
          let next_ready =
            match instr.Instr.kind with
            | Instr.Load addrs ->
              let done_at =
                Mem_path.load mem_path ~stats ~sm ~start:issue_time
                  ~label:instr.Instr.label ~addrs
              in
              if instr.Instr.blocking then done_at else issue_time +. slots
            | Instr.Store addrs ->
              Mem_path.store mem_path ~stats ~sm ~start:issue_time ~addrs;
              issue_time +. slots
            | Instr.Compute n ->
              if instr.Instr.blocking then
                (* A dependent ALU chain: each op waits on the previous. *)
                issue_time +. float_of_int (n * cfg.compute_latency)
              else issue_time +. slots
            | Instr.Ctrl _ -> issue_time +. float_of_int cfg.ctrl_latency
            | Instr.Const_load | Instr.Call_indirect | Instr.Call_direct ->
              issue_time +. latency_of_blocking_kind instr.Instr.kind
          in
          let stall = next_ready -. issue_time -. slots in
          if stall > 0. then Stats.attribute_stall stats instr.Instr.label stall;
          Heap.push events ~key:next_ready w;
          drain ()
        end
    in
    drain ();
    !finish_time
  end
