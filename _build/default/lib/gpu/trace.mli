(** Per-warp dynamic instruction traces (phase-1 output, phase-2 input). *)

type t

val create : unit -> t

val emit : t -> Instr.t -> unit

val length : t -> int
(** Number of trace records (one [Compute n] record counts once here). *)

val get : t -> int -> Instr.t

val iter : (Instr.t -> unit) -> t -> unit

val instruction_total : t -> int
(** Total dynamic warp instructions (expanding [Compute n]/[Ctrl n]). *)
