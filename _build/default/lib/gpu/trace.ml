type t = Instr.t Repro_util.Vec.t

let create () = Repro_util.Vec.create ~capacity:64 ()

let emit t i = Repro_util.Vec.push t i

let length = Repro_util.Vec.length

let get = Repro_util.Vec.get

let iter = Repro_util.Vec.iter

let instruction_total t =
  Repro_util.Vec.fold_left (fun acc i -> acc + Instr.instruction_count i) 0 t
