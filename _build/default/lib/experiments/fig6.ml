module W = Repro_workloads
module Series = Repro_report.Series

let points sweep =
  Figview.metric_points sweep (fun r -> r.W.Harness.cycles)
  |> Series.normalize_to ~baseline:"SHARD"
  |> Series.invert
  |> Series.geomean_row ~label:"GM"

let technique_names sweep =
  List.map Repro_core.Technique.name (Sweep.techniques sweep)

let render sweep =
  Figview.render_table
    ~title:"Figure 6: performance normalized to SharedOA (higher is better)"
    ~aggregate_label:"GM" ~techniques:(technique_names sweep) (points sweep)

let csv sweep = Series.to_csv (points sweep)
