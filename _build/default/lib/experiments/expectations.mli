(** The paper's headline numbers, kept in one place so the shape tests
    and the EXPERIMENTS.md comparison quote the same values. *)

val fig1b_vtable_share : float
(** ≈ 0.87: fraction of the direct virtual-call latency spent on the
    vTable* load under CUDA (Fig. 1b). *)

val fig6_geomean : (string * float) list
(** Performance normalized to SharedOA: CUDA 0.59, CON 0.72, SHARD 1.0,
    COAL 1.06, TP 1.12. *)

val fig7_instruction_overhead : (string * float) list
(** Total warp instructions vs SharedOA: CON 1.28, COAL 1.83, TP 1.19. *)

val fig8_geomean : (string * float) list
(** Global load transactions vs SharedOA: CUDA 1.00, CON 0.82, COAL 0.86,
    TP 0.81. *)

val fig9_average : (string * float) list
(** L1 hit rates: CUDA 0.31, CON 0.31, SHARD 0.44, COAL 0.47, TP 0.45. *)

val fig10b_fragmentation_range : float * float
(** SharedOA external fragmentation across chunk sizes: 0.17 – 0.27. *)

val fig11_geomean : float
(** TypePointer over the default CUDA allocator: 1.18. *)

val fig12a_slowdown_at_max : (string * float) list
(** Execution time over BRANCH at the largest object count, 4 types:
    CUDA 5.6, COAL 3.3, TP 2.0. *)

val init_speedup : float
(** SharedOA vs device-side allocation during initialization: 80x. *)
