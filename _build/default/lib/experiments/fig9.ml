module W = Repro_workloads
module Series = Repro_report.Series

let points sweep =
  Figview.metric_points sweep (fun r ->
      Repro_gpu.Stats.l1_hit_rate r.W.Harness.stats)
  |> Figview.mean_row ~label:"AVG"

let render sweep =
  Figview.render_table ~title:"Figure 9: L1 cache hit rate (fraction of load sectors)"
    ~aggregate_label:"AVG"
    ~techniques:(List.map Repro_core.Technique.name (Sweep.techniques sweep))
    (points sweep)

let csv sweep = Series.to_csv (points sweep)
