(** The shared measurement sweep behind Figures 6–9: every workload under
    every silicon technique, run once and reused by all four figure
    renderers (they are different views of the same profile, as in the
    paper). Cross-technique functional equality is asserted while
    sweeping. *)

type t

val default_scale : float
(** 0.25. *)

val run :
  ?scale:float ->
  ?iterations:int ->
  ?progress:(string -> unit) ->
  ?workloads:Repro_workloads.Workload.t list ->
  unit -> t
(** Defaults: scale 0.25 (fast but representative; see EXPERIMENTS.md),
    the paper's five techniques, all eleven workloads. *)

val runs : t -> Repro_workloads.Harness.run list

val workload_names : t -> string list
(** Qualified names in sweep order. *)

val techniques : t -> Repro_core.Technique.t list

val get : t -> workload:string -> technique:Repro_core.Technique.t ->
  Repro_workloads.Harness.run
(** Raises [Not_found]. *)
