(** Table 1: global accesses required per virtual call, per technique.

    The paper's table is analytic (Acc ∝ NumObjects for CUDA's vTable*
    load, ∝ NumTypes for COAL's lookup, 0 for TypePointer). We print the
    analytic table and validate it with measured counters: per-call
    global load transactions attributed to each dispatch step. *)

val analytic : string
(** The paper's table, verbatim. *)

type measured = {
  technique : string;
  get_vtable_per_kcall : float;
      (** Transactions for step A (or its replacement) per 1000 warp
          calls. *)
  get_vfunc_per_kcall : float;  (** Step B. *)
}

val measure : Sweep.t -> measured list
(** Averaged over the sweep's workloads. *)

val render : Sweep.t -> string
