lib/experiments/fig1b.mli: Repro_workloads Sweep
