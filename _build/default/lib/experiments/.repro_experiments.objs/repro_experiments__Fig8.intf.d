lib/experiments/fig8.mli: Repro_report Sweep
