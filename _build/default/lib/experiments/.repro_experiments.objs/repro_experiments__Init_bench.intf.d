lib/experiments/init_bench.mli: Repro_workloads
