lib/experiments/table1.ml: List Repro_core Repro_gpu Repro_report Repro_workloads String Sweep
