lib/experiments/expectations.mli:
