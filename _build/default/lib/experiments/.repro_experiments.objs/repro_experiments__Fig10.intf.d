lib/experiments/fig10.mli: Repro_workloads
