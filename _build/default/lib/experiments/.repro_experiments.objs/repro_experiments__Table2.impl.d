lib/experiments/table2.ml: Buffer List Printf Repro_core Repro_report Repro_workloads Sweep
