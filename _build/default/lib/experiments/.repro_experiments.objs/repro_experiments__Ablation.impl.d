lib/experiments/ablation.ml: Array Figview List Printf Repro_core Repro_gpu Repro_report Repro_workloads Sweep
