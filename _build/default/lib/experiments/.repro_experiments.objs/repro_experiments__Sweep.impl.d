lib/experiments/sweep.ml: List Repro_core Repro_workloads
