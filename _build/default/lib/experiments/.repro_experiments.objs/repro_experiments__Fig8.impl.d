lib/experiments/fig8.ml: Figview List Repro_core Repro_gpu Repro_report Repro_workloads Sweep
