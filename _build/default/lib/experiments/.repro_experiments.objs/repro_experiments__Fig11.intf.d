lib/experiments/fig11.mli: Repro_report Repro_workloads
