lib/experiments/fig9.mli: Repro_report Sweep
