lib/experiments/fig1b.ml: List Printf Repro_core Repro_gpu Repro_report Repro_workloads Sweep
