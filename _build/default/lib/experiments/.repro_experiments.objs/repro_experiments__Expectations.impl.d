lib/experiments/expectations.ml:
