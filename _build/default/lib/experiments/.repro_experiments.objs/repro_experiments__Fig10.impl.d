lib/experiments/fig10.ml: Buffer Figview List Printf Repro_core Repro_report Repro_util Repro_workloads String Sweep
