lib/experiments/fig11.ml: Figview List Repro_core Repro_report Repro_workloads Sweep
