lib/experiments/sweep.mli: Repro_core Repro_workloads
