lib/experiments/fig7.mli: Repro_report Sweep
