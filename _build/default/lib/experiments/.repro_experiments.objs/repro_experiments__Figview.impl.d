lib/experiments/figview.ml: List Repro_core Repro_report Repro_util Repro_workloads String Sweep
