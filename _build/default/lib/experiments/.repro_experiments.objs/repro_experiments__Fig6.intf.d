lib/experiments/fig6.mli: Repro_report Sweep
