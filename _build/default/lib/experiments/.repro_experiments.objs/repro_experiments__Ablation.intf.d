lib/experiments/ablation.mli:
