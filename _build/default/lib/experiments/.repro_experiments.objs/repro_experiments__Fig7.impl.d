lib/experiments/fig7.ml: Buffer Figview List Printf Repro_core Repro_gpu Repro_report Repro_workloads String Sweep
