lib/experiments/init_bench.ml: Figview List Printf Repro_core Repro_report Repro_util Repro_workloads Sweep
