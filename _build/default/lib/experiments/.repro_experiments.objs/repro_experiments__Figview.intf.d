lib/experiments/figview.mli: Repro_report Repro_workloads Sweep
