(** Shared rendering for the sweep-derived figures (6–9): extract a
    metric per run, normalize, add the aggregate row, print a table and
    a chart. *)

val metric_points :
  Sweep.t -> (Repro_workloads.Harness.run -> float) -> Repro_report.Series.point list
(** One point per (workload, technique); the series name is the
    technique's short name. *)

val short_group : string -> string
(** Compact workload label ("Dynasoar/TRAF" → "TRAF", keeping the suite
    prefix only for the BFS/CC/PR duplicates). *)

val render_table :
  title:string ->
  aggregate_label:string ->
  techniques:string list ->
  Repro_report.Series.point list ->
  string
(** Rows = groups (aggregate last), columns = techniques. *)

val mean_row :
  label:string -> Repro_report.Series.point list -> Repro_report.Series.point list
(** Append an aggregate group holding the per-series arithmetic mean
    (Figures 7 and 9 average; Figure 6/8 use the geometric mean). *)

val geomean_of : Repro_report.Series.point list -> series:string -> float
(** The aggregate-row value for one technique (the row must exist). *)
