module W = Repro_workloads
module Table = Repro_report.Table

type row = {
  workload : string;
  suite : string;
  description : string;
  objects : int;
  paper_objects : int;
  types : int;
  vfuncs : int;
  vfunc_pki : float;
}

let rows sweep =
  List.filter_map
    (fun name ->
      match W.Registry.find name with
      | None -> None
      | Some w ->
        let r = Sweep.get sweep ~workload:name ~technique:Repro_core.Technique.Cuda in
        Some
          {
            workload = w.W.Workload.name;
            suite = w.W.Workload.suite;
            description = w.W.Workload.description;
            objects = r.W.Harness.n_objects;
            paper_objects = w.W.Workload.paper_objects;
            types = r.W.Harness.n_types;
            vfuncs = r.W.Harness.n_vfuncs;
            vfunc_pki = r.W.Harness.vfunc_pki;
          })
    (Sweep.workload_names sweep)

let render sweep =
  let table =
    Table.create
      ~columns:
        [ ("suite", Table.Left); ("workload", Table.Left); ("#objects", Table.Right);
          ("paper #objects", Table.Right); ("#types", Table.Right);
          ("vFuncs", Table.Right); ("vFuncPKI", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.suite; r.workload; string_of_int r.objects; string_of_int r.paper_objects;
          string_of_int r.types; string_of_int r.vfuncs; Table.cell_f ~digits:1 r.vfunc_pki ])
    (rows sweep);
  "Table 2: workload characteristics (measured at the current scale)\n"
  ^ Table.render table

let csv sweep =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "suite,workload,objects,paper_objects,types,vfuncs,vfunc_pki\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%d,%d,%d,%f\n" r.suite r.workload r.objects
           r.paper_objects r.types r.vfuncs r.vfunc_pki))
    (rows sweep);
  Buffer.contents buf
