module W = Repro_workloads
module T = Repro_core.Technique

type t = {
  runs : W.Harness.run list;
  workload_names : string list;
  techniques : T.t list;
}

let default_scale = 0.25

let run ?(scale = default_scale) ?iterations ?(progress = fun _ -> ())
    ?(workloads = W.Registry.all) () =
  let techniques = T.all_paper in
  let runs =
    List.concat_map
      (fun w ->
        progress (W.Registry.qualified_name w);
        let p =
          { (W.Workload.default_params T.Shared_oa) with W.Workload.scale; iterations }
        in
        W.Harness.run_techniques w p techniques)
      workloads
  in
  {
    runs;
    workload_names = List.map W.Registry.qualified_name workloads;
    techniques;
  }

let runs t = t.runs

let workload_names t = t.workload_names

let techniques t = t.techniques

let get t ~workload ~technique =
  match
    List.find_opt
      (fun (r : W.Harness.run) ->
        r.W.Harness.workload = workload && T.equal r.W.Harness.technique technique)
      t.runs
  with
  | Some r -> r
  | None -> raise Not_found
