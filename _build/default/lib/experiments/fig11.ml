module W = Repro_workloads
module T = Repro_core.Technique
module Series = Repro_report.Series

let points ?(scale = Sweep.default_scale) ?(workloads = W.Registry.all) () =
  List.concat_map
    (fun w ->
      let p = { (W.Workload.default_params T.Cuda) with W.Workload.scale } in
      let runs = W.Harness.run_techniques w p [ T.Cuda; T.type_pointer_on_cuda ] in
      let group = Figview.short_group (W.Registry.qualified_name w) in
      List.map
        (fun (r : W.Harness.run) ->
          {
            Series.group;
            series = T.name r.W.Harness.technique;
            value = r.W.Harness.cycles;
          })
        runs)
    workloads
  |> Series.normalize_to ~baseline:"CUDA"
  |> Series.invert
  |> Series.geomean_row ~label:"GM"

let render points =
  Figview.render_table
    ~title:
      "Figure 11: TypePointer on the default CUDA allocator (simulation), \
       normalized to CUDA"
    ~aggregate_label:"GM" ~techniques:[ "CUDA"; "TP/CUDA" ] points

let csv = Series.to_csv
