let fig1b_vtable_share = 0.87

let fig6_geomean =
  [ ("CUDA", 0.59); ("CON", 0.72); ("SHARD", 1.0); ("COAL", 1.06); ("TP", 1.12) ]

let fig7_instruction_overhead = [ ("CON", 1.28); ("COAL", 1.83); ("TP", 1.19) ]

let fig8_geomean = [ ("CUDA", 1.00); ("CON", 0.82); ("COAL", 0.86); ("TP", 0.81) ]

let fig9_average =
  [ ("CUDA", 0.31); ("CON", 0.31); ("SHARD", 0.44); ("COAL", 0.47); ("TP", 0.45) ]

let fig10b_fragmentation_range = (0.17, 0.27)

let fig11_geomean = 1.18

let fig12a_slowdown_at_max = [ ("CUDA", 5.6); ("COAL", 3.3); ("TP", 2.0) ]

let init_speedup = 80.
