(** Table 2: workload characteristics — object instances, types, virtual
    functions and dynamic virtual calls per thousand instructions,
    measured on the CUDA-technique runs (plus the paper's object counts
    for scale reference). *)

type row = {
  workload : string;
  suite : string;
  description : string;
  objects : int;
  paper_objects : int;
  types : int;
  vfuncs : int;
  vfunc_pki : float;
}

val rows : Sweep.t -> row list

val render : Sweep.t -> string

val csv : Sweep.t -> string
