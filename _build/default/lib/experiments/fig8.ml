module W = Repro_workloads
module Series = Repro_report.Series

let points sweep =
  Figview.metric_points sweep (fun r ->
      float_of_int (Repro_gpu.Stats.load_transactions r.W.Harness.stats))
  |> Series.normalize_to ~baseline:"SHARD"
  |> Series.geomean_row ~label:"GM"

let render sweep =
  Figview.render_table
    ~title:"Figure 8: global load transactions normalized to SharedOA (lower is better)"
    ~aggregate_label:"GM"
    ~techniques:(List.map Repro_core.Technique.name (Sweep.techniques sweep))
    (points sweep)

let csv sweep = Series.to_csv (points sweep)
