module W = Repro_workloads
module Series = Repro_report.Series
module Table = Repro_report.Table

let short_group name =
  match String.split_on_char '/' name with
  | [ suite; short ] ->
    if String.length suite >= 8 && String.sub suite 0 8 = "GraphChi" then
      (* Disambiguate the vE/vEN duplicates compactly. *)
      String.sub suite 9 (String.length suite - 9) ^ "-" ^ short
    else short
  | _ -> name

let metric_points sweep metric =
  List.map
    (fun (r : W.Harness.run) ->
      {
        Series.group = short_group r.W.Harness.workload;
        series = Repro_core.Technique.name r.W.Harness.technique;
        value = metric r;
      })
    (Sweep.runs sweep)

let mean_row ~label points =
  let names =
    List.fold_left
      (fun acc (p : Series.point) ->
        if List.mem p.Series.series acc then acc else acc @ [ p.Series.series ])
      [] points
  in
  points
  @ List.map
      (fun s ->
        let vs =
          List.filter_map
            (fun (p : Series.point) ->
              if p.Series.series = s then Some p.Series.value else None)
            points
        in
        { Series.group = label; series = s; value = Repro_util.Mathx.mean vs })
      names

let render_table ~title ~aggregate_label ~techniques points =
  let table =
    Table.create ~columns:(("workload", Table.Left) :: List.map (fun t -> (t, Table.Right)) techniques)
  in
  let grouped = Series.by_group points in
  List.iter
    (fun (group, cells) ->
      if group = aggregate_label then Table.add_separator table;
      Table.add_row table
        (group
         :: List.map
              (fun t ->
                match List.assoc_opt t cells with
                | Some v -> Table.cell_f v
                | None -> "-")
              techniques))
    grouped;
  title ^ "\n" ^ Table.render table

let geomean_of points ~series =
  let rec last_matching acc = function
    | [] -> acc
    | (p : Series.point) :: rest ->
      last_matching (if p.Series.series = series then Some p.Series.value else acc) rest
  in
  match last_matching None points with
  | Some v -> v
  | None -> invalid_arg "Figview.geomean_of: series not present"
