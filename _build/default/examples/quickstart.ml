(* Quickstart: define a small polymorphic Shape hierarchy, allocate a
   mixed population, dispatch a virtual [area] method under each of the
   paper's five techniques, and print what each one cost.

   Run with:  dune exec examples/quickstart.exe *)

module R = Repro_core
module T = R.Technique
module Warp_ctx = Repro_gpu.Warp_ctx
module Stats = Repro_gpu.Stats

(* Shape fields: [0] = a, [1] = b (semantics per type), [2] = area out. *)
let f_a = 0
let f_b = 1
let f_area = 2
let n_fields = 3

let n_shapes = 32 * 1024

(* Build the program under one technique and run one kernel that makes a
   virtual call per object. The same code runs under every technique —
   that is the whole point of the shared API. *)
let run technique =
  let rt = R.Runtime.create ~technique () in

  (* Virtual function bodies: one per concrete shape type. *)
  let square_area (env : R.Env.t) objs =
    let a = R.Env.field_load env ~objs ~field:f_a in
    R.Env.compute env;
    R.Env.field_store env ~objs ~field:f_area (Array.map (fun x -> x * x) a)
  in
  let rect_area (env : R.Env.t) objs =
    let a = R.Env.field_load env ~objs ~field:f_a in
    let b = R.Env.field_load env ~objs ~field:f_b in
    R.Env.compute env;
    R.Env.field_store env ~objs ~field:f_area
      (Array.init (Array.length a) (fun i -> a.(i) * b.(i)))
  in
  let circle_area (env : R.Env.t) objs =
    let r = R.Env.field_load env ~objs ~field:f_a in
    R.Env.compute env ~n:2;
    (* 355/113 is a fine integer pi for a demo. *)
    R.Env.field_store env ~objs ~field:f_area
      (Array.map (fun r -> r * r * 355 / 113) r)
  in

  let i_square = R.Runtime.register_impl rt ~name:"Square.area" square_area in
  let i_rect = R.Runtime.register_impl rt ~name:"Rect.area" rect_area in
  let i_circle = R.Runtime.register_impl rt ~name:"Circle.area" circle_area in
  let shape =
    R.Runtime.define_type rt ~name:"Shape" ~field_words:n_fields ~slots:[| i_square |] ()
  in
  let square =
    R.Runtime.define_type rt ~name:"Square" ~field_words:n_fields ~parent:shape
      ~slots:[| i_square |] ()
  in
  let rect =
    R.Runtime.define_type rt ~name:"Rect" ~field_words:n_fields ~parent:shape
      ~slots:[| i_rect |] ()
  in
  let circle =
    R.Runtime.define_type rt ~name:"Circle" ~field_words:n_fields ~parent:shape
      ~slots:[| i_circle |] ()
  in

  (* Allocate a mixed population (sharedNew under SharedOA-family
     techniques, the device-heap model otherwise) and set dimensions. *)
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let ptrs =
    Array.init n_shapes (fun i ->
        let typ = match i mod 3 with 0 -> square | 1 -> rect | _ -> circle in
        let ptr = R.Runtime.new_obj rt typ in
        R.Object_model.field_store_host om heap ~ptr ~field:f_a ((i mod 13) + 1);
        R.Object_model.field_store_host om heap ~ptr ~field:f_b ((i mod 7) + 1);
        ptr)
  in
  let table =
    R.Garray.alloc ~space:(R.Runtime.address_space rt) ~name:"shapes" ~len:n_shapes
  in
  Array.iteri (fun i ptr -> R.Garray.set table heap i ptr) ptrs;

  (* One thread per shape; each thread loads its receiver and calls the
     virtual area method. *)
  R.Runtime.reset_stats rt;
  R.Runtime.launch rt ~n_threads:n_shapes (fun env ->
      let tids = Warp_ctx.tids env.R.Env.ctx in
      let objs = R.Garray.load table env.R.Env.ctx ~idxs:tids in
      env.R.Env.vcall env ~objs ~slot:0);

  let total_area =
    Array.fold_left
      (fun acc ptr -> acc + R.Object_model.field_load_host om heap ~ptr ~field:f_area)
      0 ptrs
  in
  (R.Runtime.cycles rt, R.Runtime.stats rt, total_area)

let () =
  print_endline "Quickstart: 32K mixed shapes, one virtual area() call per thread.\n";
  Printf.printf "%-8s %12s %10s %8s %12s %s\n" "tech" "cycles" "ld-trans" "L1%" "total-area"
    "";
  let baseline = ref None in
  List.iter
    (fun technique ->
      let cycles, stats, area = run technique in
      if !baseline = None then baseline := Some cycles;
      Printf.printf "%-8s %12.0f %10d %7.1f%% %12d  (%.2fx vs CUDA)\n"
        (T.name technique) cycles
        (Stats.load_transactions stats)
        (100. *. Stats.l1_hit_rate stats)
        area
        (Option.get !baseline /. cycles))
    T.all_paper;
  print_endline
    "\nSame functional result everywhere; the techniques differ only in how\n\
     the object's type is found (Table 1 of the paper)."
