examples/graph_demo.ml: Array Hashtbl List Option Printf Repro_core Repro_gpu Repro_workloads String
