examples/graph_demo.mli:
