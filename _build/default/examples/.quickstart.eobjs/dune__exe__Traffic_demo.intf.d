examples/traffic_demo.mli:
