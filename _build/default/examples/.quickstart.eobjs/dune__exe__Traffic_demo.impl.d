examples/traffic_demo.ml: Array List Option Printf Repro_core Repro_report Repro_workloads
