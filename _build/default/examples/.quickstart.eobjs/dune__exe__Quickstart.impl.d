examples/quickstart.ml: Array List Option Printf Repro_core Repro_gpu
