examples/raytrace_demo.ml: List Option Printf Repro_core Repro_workloads
