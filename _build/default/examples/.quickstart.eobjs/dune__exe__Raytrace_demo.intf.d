examples/raytrace_demo.mli:
