examples/quickstart.mli:
