test/test_integration.ml: Alcotest Array Hashtbl Option Repro_core Repro_gpu Repro_mem Repro_workloads String
