test/test_experiments.ml: Alcotest Lazy List Option Repro_core Repro_experiments Repro_report Repro_workloads
