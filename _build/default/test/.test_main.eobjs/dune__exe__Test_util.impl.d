test/test_util.ml: Alcotest Array Fun List QCheck QCheck_alcotest Repro_util
