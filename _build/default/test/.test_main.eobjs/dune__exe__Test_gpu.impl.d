test/test_gpu.ml: Alcotest Array Gen List QCheck QCheck_alcotest Repro_gpu Repro_mem
