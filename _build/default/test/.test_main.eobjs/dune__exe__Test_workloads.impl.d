test/test_workloads.ml: Alcotest Array List Option Repro_core Repro_workloads String
