test/test_core.ml: Alcotest Array Fun Gen List Option Printf QCheck QCheck_alcotest Repro_core Repro_gpu Repro_mem Repro_util Result
