test/test_mem.ml: Alcotest List QCheck QCheck_alcotest Repro_mem
