test/test_main.ml: Alcotest Test_core Test_experiments Test_gpu Test_integration Test_mem Test_report Test_util Test_workloads
