test/test_report.ml: Alcotest List Repro_report String
