(* Render the RAY workload's scene as ASCII art and compare the cost of
   its converged virtual calls across techniques — the Sec. 8.1 case
   where Concord shines and COAL's heuristic backs off.

   Run with:  dune exec examples/raytrace_demo.exe *)

module W = Repro_workloads
module T = Repro_core.Technique

let () =
  let w = Option.get (W.Registry.find "RAY") in
  let params = { (W.Workload.default_params T.Shared_oa) with W.Workload.scale = 1.0 } in
  let inst = w.W.Workload.build params in
  for i = 0 to inst.W.Workload.iterations - 1 do
    inst.W.Workload.run_iteration i
  done;
  print_endline (W.Raytrace.render_ascii inst ~width:96 ~height:96);
  Printf.printf "rendered in %.0f simulated cycles under SharedOA\n\n"
    (Repro_core.Runtime.cycles inst.W.Workload.rt);

  print_endline "Technique comparison (normalized to SharedOA):";
  let runs = W.Harness.run_techniques w params T.all_paper in
  let base = Option.get (W.Harness.find runs ~technique:T.Shared_oa) in
  List.iter
    (fun (technique, (r : W.Harness.run)) ->
      Printf.printf "  %-6s %.2f\n" (T.name technique)
        (base.W.Harness.cycles /. r.W.Harness.cycles))
    runs;
  print_endline
    "\nEvery thread tests the same object per call (converged sites), so\n\
     COAL leaves them un-instrumented and matches SharedOA, while Concord's\n\
     direct calls come out ahead -- exactly the paper's RAY discussion."
