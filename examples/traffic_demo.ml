(* The Nagel-Schreckenberg traffic model end-to-end: run a handful of
   simulation steps, then print per-technique costs and the traffic state
   read back from unified memory.

   Run with:  dune exec examples/traffic_demo.exe *)

module W = Repro_workloads
module R = Repro_core
module T = R.Technique

let () =
  let w = Option.get (W.Registry.find "TRAF") in
  let params =
    { (W.Workload.default_params T.Shared_oa) with
      W.Workload.scale = 0.1;
      iterations = Some 12 }
  in
  let inst = w.W.Workload.build params in
  for i = 0 to inst.W.Workload.iterations - 1 do
    inst.W.Workload.run_iteration i
  done;
  let rt = inst.W.Workload.rt in
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let cars = ref 0 and active = ref 0 and total_dist = ref 0 and moving = ref 0 in
  Array.iter
    (fun (ptr, typ) ->
      if R.Registry.type_name typ = "Car" then begin
        incr cars;
        let is_active = R.Object_model.field_load_host om heap ~ptr ~field:2 = 1 in
        if is_active then incr active;
        let vel = R.Object_model.field_load_host om heap ~ptr ~field:1 in
        if is_active && vel > 0 then incr moving;
        total_dist := !total_dist + R.Object_model.field_load_host om heap ~ptr ~field:3
      end)
    (R.Runtime.allocations rt);
  Printf.printf
    "After %d steps: %d cars (%d active, %d moving), %d cells of total travel.\n\n"
    inst.W.Workload.iterations !cars !active !moving !total_dist;

  print_endline "Cost of the same simulation under each technique:";
  let runs = W.Harness.run_techniques w params T.all_paper in
  print_string
    (Repro_report.Chart.bars ~unit_label:" cyc"
       (List.map
          (fun (technique, (r : W.Harness.run)) ->
            (T.name technique, r.W.Harness.cycles))
          runs))
