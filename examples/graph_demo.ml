(* BFS over a generated power-law graph with polymorphic edges,
   showing the allocator/divergence interaction the GraphChi workloads
   exercise: the same traversal under all five techniques, plus the
   reachability readback.

   Run with:  dune exec examples/graph_demo.exe *)

module W = Repro_workloads
module R = Repro_core
module T = R.Technique
module Stats = Repro_gpu.Stats

let () =
  let w = Option.get (W.Registry.find "GraphChi-vE/BFS") in
  let params =
    { (W.Workload.default_params T.Shared_oa) with W.Workload.scale = 0.2 }
  in
  print_endline "BFS over ~2K vertices / 12K polymorphic edges.\n";
  let runs = W.Harness.run_techniques w params T.all_paper in
  let base = Option.get (W.Harness.find runs ~technique:T.Shared_oa) in
  Printf.printf "%-8s %12s %10s %8s %8s\n" "tech" "cycles" "ld-trans" "L1%" "vs-SHARD";
  List.iter
    (fun (technique, (r : W.Harness.run)) ->
      Printf.printf "%-8s %12.0f %10d %7.1f%% %8.2f\n"
        (T.name technique) r.W.Harness.cycles
        (Stats.load_transactions r.W.Harness.stats)
        (100. *. Stats.l1_hit_rate r.W.Harness.stats)
        (base.W.Harness.cycles /. r.W.Harness.cycles))
    runs;

  (* Read the levels back from the simulated heap and histogram them:
     the CPU side of unified memory, reading GPU-written objects. *)
  let inst = w.W.Workload.build params in
  for i = 0 to inst.W.Workload.iterations - 1 do
    inst.W.Workload.run_iteration i
  done;
  let rt = inst.W.Workload.rt in
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let histogram = Hashtbl.create 16 in
  Array.iter
    (fun (ptr, typ) ->
      if R.Registry.type_name typ = "Vertex" then begin
        let level = R.Object_model.field_load_host om heap ~ptr ~field:0 in
        let key = if level > 1_000_000 then -1 else level in
        Hashtbl.replace histogram key (1 + Option.value ~default:0 (Hashtbl.find_opt histogram key))
      end)
    (R.Runtime.allocations rt);
  print_endline "\nBFS frontier sizes (level -> vertices):";
  let keys = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) histogram []) in
  List.iter
    (fun k ->
      let count = Hashtbl.find histogram k in
      if k < 0 then Printf.printf "  unreached  %6d\n" count
      else Printf.printf "  level %2d   %6d  %s\n" k count (String.make (min 60 (count / 8)) '#'))
    keys
