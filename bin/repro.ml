(* The command-line front end.

     repro list                         all workloads
     repro run -w TRAF -t coal          one workload under one technique
     repro profile -w TRAF -t tp        per-kernel counter timeline
     repro trace TRAF tp                Chrome-trace export (Perfetto)
     repro compare -w GOL               one workload under all techniques
     repro figure 6                     regenerate a figure (1b, 6..12b)
     repro table 2                      regenerate a table (1 or 2)
     repro sweep                        the full job matrix, with timings
     repro init                         the Sec. 8.2 allocation comparison

   Measurement commands take -j N (parallel sweep over N domains; the
   output is byte-identical at any N) and cache results on disk so that
   consecutive figure/table regenerations measure once; --no-cache
   forces re-measurement. figure/table/sweep/compare/profile take
   --json PATH (and profile/figure also --csv PATH) to export the exact
   data behind the text rendering. *)

module W = Repro_workloads
module T = Repro_core.Technique
module A = Repro_core.Alloc_family
module E = Repro_experiments
module X = Repro_exec
module O = Repro_obs
module Series = Repro_report.Series

open Cmdliner

(* Workload/technique names are resolved in the command body, not by an
   [Arg.conv]: an unknown name is a user mistake, not a malformed command
   line, so it gets a short message listing the valid names and exit
   code 2 instead of cmdliner's usage dump. *)

let cli_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "repro: %s\n%!" msg;
      exit 2)
    fmt

let technique_names = X.Request.technique_names

let resolve_technique s =
  match T.of_string s with
  | Ok t -> t
  | Error _ ->
    cli_error "unknown technique %S; valid techniques: %s" s
      (String.concat ", " technique_names)

let resolve_workload s =
  match W.Registry.find s with
  | Some w -> w
  | None ->
    cli_error "unknown workload %S; valid workloads: %s" s
      (String.concat ", " (List.map W.Registry.qualified_name W.Registry.all))

let resolve_alloc s =
  match A.of_string s with
  | Ok fam -> fam
  | Error _ ->
    cli_error "unknown allocator family %S; valid families: %s" s
      (String.concat ", " A.all_names)

let alloc_arg =
  Arg.(value & opt (some string) None & info [ "alloc" ] ~docv:"FAMILY"
         ~doc:"Allocator family: cuda | shared-oa | dyna (default: the \
               technique's paper allocator -- the SharedOA heap for \
               shard/coal/tp, the device heap for cuda/con).")

(* [resolve_pages] validates eagerly so a typo exits 2 with the policy
   list; "none"/"off" resolve to [None] (translation off), matching the
   spec layer's canonicalization. *)
let resolve_pages s =
  match Repro_vm.Policy.parse s with
  | Ok p -> p
  | Error _ ->
    cli_error "unknown page policy %S; valid policies: %s" s
      (String.concat ", " Repro_vm.Policy.cli_names)

(* The canonical wire spelling for a spec ("none" when translation is
   off; [Spec.make] maps it back to the absent field). *)
let canonical_pages s =
  match resolve_pages s with
  | None -> "none"
  | Some p -> Repro_vm.Policy.name p

let pages_arg =
  Arg.(value & opt (some string) None & info [ "pages" ] ~docv:"POLICY"
         ~doc:"Address-translation page-size policy: none | flat-4k | \
               flat-2m | coalesce (default: none -- translation off, the \
               TLB model fully out of the measured path).")

let scale_arg =
  Arg.(value & opt float E.Sweep.default_scale & info [ "s"; "scale" ] ~docv:"SCALE"
         ~doc:"Workload scale factor (1.0 = the full reduced-size \
               configuration; default 0.25 -- the one repo-wide constant \
               every bare surface shares, CLI and wire protocol alike). \
               Since the interned engine, $(b,--scale 1.0) is routine; \
               see EXPERIMENTS.md.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic input seed.")

let iterations_arg =
  Arg.(value & opt (some int) None & info [ "i"; "iterations" ] ~docv:"N"
         ~doc:"Override the workload's compute-iteration count.")

let legacy_engine_arg =
  Arg.(value & flag & info [ "legacy-engine" ]
         ~doc:"Measure on the legacy (pre-interning) emission engine. \
               Results are byte-identical to the default interned engine; \
               the flag exists as the measurable baseline for A/B speedup \
               runs, and the two engines cache separately.")

let intra_arg =
  Arg.(value & flag & info [ "intra" ]
         ~doc:"Shard each launch's timed replay across the Domain pool \
               (the sliced intra-launch timing model: deterministic and \
               worker-count-independent, but a different model from the \
               sequential shared-L2 replay; see DESIGN.md). Worker count \
               comes from \\$REPRO_INTRA_JOBS (0/unset = one per core).")

let prealloc_arg =
  Arg.(value & opt (some int) None & info [ "prealloc" ] ~docv:"MB"
         ~doc:"Pre-size the simulated heap's page store for an expected \
               footprint of $(docv) MiB. A pure capacity hint: never \
               changes results and is excluded from cache keys.")

let jobs_arg =
  Arg.(value & opt int (X.Executor.default_jobs ()) & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Measure on $(docv) worker domains (default: the number of \
               cores). Results and output are byte-identical at any N; \
               1 reproduces the serial sweep.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ]
         ~doc:"Do not read or write the on-disk result cache; re-measure \
               every job.")

let cache_dir_arg =
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR"
         ~doc:"Result-cache directory (default: \\$REPRO_CACHE_DIR or \
               _repro_cache).")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
         ~doc:"Also write the data behind the text output as JSON to $(docv).")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH"
         ~doc:"Also write the data behind the text output as CSV to $(docv).")

(* All job construction funnels through [Request.Spec] — the same
   plain-data description the serve protocol carries — so the CLI, the
   daemon and the bench resolve names and defaults identically. *)

let spec_of ?alloc ?pages ?(legacy = false) ?(intra = false) ?prealloc_mb
    ~workload ~technique ~scale ~seed ~iterations () =
  (* Resolve --alloc/--pages here so a typo exits 2 with the valid-name
     list, and the spec carries the canonical name. *)
  let alloc = Option.map (fun s -> A.name (resolve_alloc s)) alloc in
  let pages = Option.map canonical_pages pages in
  X.Request.Spec.make ?alloc ?pages ?iterations ?prealloc_mb
    ~intern:(not legacy) ~intra ~scale ~seed ~workload ~technique ()

let resolve_spec spec =
  match X.Request.Spec.resolve spec with
  | Ok job -> job
  | Error msg -> cli_error "%s" msg

let params_of spec =
  match X.Request.Spec.to_params spec with
  | Ok p -> p
  | Error msg -> cli_error "%s" msg

(* --timeline / --window, shared by run and profile. *)

let timeline_arg =
  Arg.(value & flag & info [ "timeline" ]
         ~doc:"Sample counters into fixed cycle windows and print the \
               per-window time series (sparklines; exact — window sums \
               reproduce the run totals bit-for-bit).")

let window_arg =
  Arg.(value & opt (some int) None & info [ "window" ] ~docv:"N"
         ~doc:"Sampling window in cycles (implies $(b,--timeline); \
               default 1024).")

let resolve_window window =
  match window with
  | Some n when n <= 0 -> cli_error "window must be positive, got %d" n
  | Some n -> n
  | None -> Repro_gpu.Telemetry.default_window

(* [None] when neither flag was given, so the measurement stays on the
   zero-allocation replay path. *)
let sampling_config timeline window =
  if timeline || window <> None then
    Some
      { Repro_gpu.Telemetry.window = Some (resolve_window window);
        trace = false;
        trace_capacity = Repro_gpu.Telemetry.default_capacity }
  else None

let timeline_of (r : W.Harness.run) =
  match r.W.Harness.window with
  | None -> None
  | Some window ->
    Some
      (O.Timeline.make ~workload:r.W.Harness.workload
         ~technique:(T.name r.W.Harness.technique)
         ~window ~kernel_windows:r.W.Harness.kernel_windows)

let write_json path json =
  O.Sink.write_file ~path (O.Json.to_string ~pretty:true json);
  Printf.eprintf "wrote %s\n%!" path

let write_csv path contents =
  O.Sink.write_file ~path contents;
  Printf.eprintf "wrote %s\n%!" path

let series_json ~kind ~which series =
  O.Json.Obj
    [
      (kind, O.Json.String which);
      ("series", O.Json.List (List.map O.Sink.series_to_json series));
    ]

let series_csv = function
  | [ s ] -> O.Sink.series_to_csv s
  | many ->
    String.concat "\n"
      (List.map
         (fun (s : Series.t) ->
           "# " ^ s.Series.name ^ "\n" ^ O.Sink.series_to_csv s)
         many)

let metric r = O.Metric.to_float r

let print_run (r : W.Harness.run) =
  Printf.printf
    "%-22s %-8s cycles=%12.0f  ld-trans=%10.0f  L1=%5.1f%%  instr=%10.0f  pki=%5.1f\n"
    r.W.Harness.workload
    (A.column_name r.W.Harness.technique r.W.Harness.alloc)
    r.W.Harness.cycles
    (metric O.Metric.load_transactions r.W.Harness.stats)
    (100. *. metric O.Metric.l1_hit_rate r.W.Harness.stats)
    (metric O.Metric.instructions_total r.W.Harness.stats)
    r.W.Harness.vfunc_pki

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun w ->
        Printf.printf "%-18s %-12s paper: %d objects, %d types -- %s\n"
          (W.Registry.qualified_name w) w.W.Workload.suite w.W.Workload.paper_objects
          w.W.Workload.paper_types w.W.Workload.description)
      W.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the eleven workloads of Table 2.")
    Term.(const run $ const ())

(* --- run ----------------------------------------------------------------- *)

let run_cmd =
  let workload =
    Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Workload name (see $(b,repro list)).")
  in
  let technique =
    Arg.(value & opt string "shard" & info [ "t"; "technique" ] ~docv:"TECH"
           ~doc:"cuda | con | shard | coal | tp | tp-hw | tp/cuda.")
  in
  let run w t alloc pages scale seed iterations legacy intra prealloc timeline
      window =
    let job =
      resolve_spec
        (spec_of ?alloc ?pages ~legacy ~intra ?prealloc_mb:prealloc
           ~workload:w ~technique:t ~scale ~seed ~iterations ())
    in
    let p =
      { job.X.Job.params with
        W.Workload.telemetry = sampling_config timeline window }
    in
    let r = W.Harness.run job.X.Job.workload p in
    print_run r;
    (* The full registry breakdown (every metric, including per-label
       stall attribution and store transactions). *)
    Format.printf "%a@." O.Metric.pp_stats r.W.Harness.stats;
    Format.printf "%a@." Repro_core.Allocator.pp_stats r.W.Harness.alloc_stats;
    Option.iter (fun tl -> print_string (O.Timeline.render tl)) (timeline_of r)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one technique and print its profile.")
    Term.(const run $ workload $ technique $ alloc_arg $ pages_arg $ scale_arg
          $ seed_arg $ iterations_arg $ legacy_engine_arg $ intra_arg
          $ prealloc_arg $ timeline_arg $ window_arg)

(* --- profile --------------------------------------------------------------- *)

let profile_cmd =
  let workload =
    Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Workload name (see $(b,repro list)).")
  in
  let technique =
    Arg.(value & opt string "shard" & info [ "t"; "technique" ] ~docv:"TECH"
           ~doc:"cuda | con | shard | coal | tp | tp-hw | tp/cuda.")
  in
  let run w t alloc pages scale seed iterations timeline window json csv =
    let job =
      resolve_spec
        (spec_of ?alloc ?pages ~workload:w ~technique:t ~scale ~seed ~iterations ())
    in
    let p =
      { job.X.Job.params with
        W.Workload.telemetry = sampling_config timeline window }
    in
    let t0 = Unix.gettimeofday () in
    let r = W.Harness.run job.X.Job.workload p in
    let wall_s = Unix.gettimeofday () -. t0 in
    let profile =
      O.Profile.make ~workload:r.W.Harness.workload
        ~technique:(A.column_name r.W.Harness.technique r.W.Harness.alloc)
        ~kernel_stats:r.W.Harness.kernel_stats ~total:r.W.Harness.stats
    in
    (match O.Profile.consistent profile with
     | Ok () -> ()
     | Error msg ->
       Printf.eprintf "warning: per-kernel deltas disagree with totals: %s\n%!" msg);
    print_string (O.Profile.render profile);
    let tl = timeline_of r in
    Option.iter
      (fun tl ->
        (match O.Timeline.consistent tl ~profile with
         | Ok () -> ()
         | Error msg ->
           Printf.eprintf
             "warning: window sums disagree with per-kernel deltas: %s\n%!" msg);
        print_string (O.Timeline.render tl))
      tl;
    let instrs = Repro_gpu.Stats.total_instructions r.W.Harness.stats in
    if wall_s > 0. then
      Printf.printf
        "simulator throughput: %.2f Mcycles/s, %.2f Minstr/s (%.3fs wall)\n"
        (r.W.Harness.cycles /. wall_s /. 1e6)
        (float_of_int instrs /. wall_s /. 1e6)
        wall_s;
    let profile_json =
      match O.Profile.to_json profile with
      | O.Json.Obj fields ->
        let throughput =
          if wall_s > 0. then
            [
              ( "throughput",
                O.Json.Obj
                  [
                    ("wall_s", O.Json.Float wall_s);
                    ( "mcycles_per_s",
                      O.Json.Float (r.W.Harness.cycles /. wall_s /. 1e6) );
                    ( "instr_per_s",
                      O.Json.Float (float_of_int instrs /. wall_s) );
                  ] );
            ]
          else []
        in
        let timeline_field =
          match tl with
          | Some tl -> [ ("timeline", O.Timeline.to_json tl) ]
          | None -> []
        in
        O.Json.Obj (fields @ throughput @ timeline_field)
      | j -> j
    in
    Option.iter (fun path -> write_json path profile_json) json;
    Option.iter
      (fun path ->
        let contents =
          match tl with
          | None -> O.Profile.to_csv profile
          | Some tl ->
            O.Profile.to_csv profile ^ "\n" ^ series_csv (O.Timeline.series tl)
        in
        write_csv path contents)
      csv
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run one workload under one technique and print its per-kernel \
             counter timeline (the simulator's nvprof).")
    Term.(const run $ workload $ technique $ alloc_arg $ pages_arg $ scale_arg
          $ seed_arg $ iterations_arg $ timeline_arg $ window_arg $ json_arg
          $ csv_arg)

(* --- trace ----------------------------------------------------------------- *)

let trace_cmd =
  let workload =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload name (see $(b,repro list)).")
  in
  let technique =
    Arg.(value & pos 1 string "shard" & info [] ~docv:"TECH"
           ~doc:"cuda | con | shard | coal | tp | tp-hw | tp/cuda.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path (default: trace_<workload>_<technique>.json).")
  in
  let capacity =
    Arg.(value & opt int Repro_gpu.Telemetry.default_capacity
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Event-ring size; when the run emits more events the \
                   oldest are dropped (reported as trace.dropped).")
  in
  let sanitize name =
    String.map (fun c -> if c = '/' || c = ' ' then '_' else c) name
  in
  let run w t alloc pages scale seed iterations window capacity out =
    let job =
      resolve_spec
        (spec_of ?alloc ?pages ~workload:w ~technique:t ~scale ~seed ~iterations ())
    in
    let column = X.Job.column_name job in
    if capacity <= 0 then cli_error "capacity must be positive, got %d" capacity;
    let p =
      { job.X.Job.params with
        W.Workload.telemetry =
          Some
            { Repro_gpu.Telemetry.window = Some (resolve_window window);
              trace = true;
              trace_capacity = capacity } }
    in
    let r = W.Harness.run job.X.Job.workload p in
    let dump =
      match r.W.Harness.trace with
      | Some d -> d
      | None -> cli_error "tracing produced no dump (internal error)"
    in
    let tl = timeline_of r in
    let json =
      O.Tracer.to_json ?timeline:tl ~workload:r.W.Harness.workload
        ~technique:column dump
    in
    let text = O.Json.to_string ~pretty:true json in
    (* Round-trip through our own parser plus the structural validator
       before writing: a malformed trace should fail here, not in
       Perfetto. *)
    (match O.Json.of_string text with
     | Error msg ->
       Printf.eprintf "repro: trace JSON does not parse back: %s\n%!" msg;
       exit 1
     | Ok parsed ->
       (match O.Tracer.validate parsed with
        | Ok () -> ()
        | Error msg ->
          Printf.eprintf "repro: invalid Chrome trace: %s\n%!" msg;
          exit 1));
    let path =
      match out with
      | Some p -> p
      | None ->
        Printf.sprintf "trace_%s_%s.json"
          (sanitize r.W.Harness.workload)
          (sanitize column)
    in
    O.Sink.write_file ~path text;
    Printf.printf
      "%s [%s]: %d events (%d dropped), %d kernel span(s), window %d cycles\n"
      r.W.Harness.workload column
      (Array.length dump.Repro_gpu.Telemetry.events)
      dump.Repro_gpu.Telemetry.dropped
      (List.length dump.Repro_gpu.Telemetry.kernels)
      dump.Repro_gpu.Telemetry.window;
    Printf.printf "wrote %s (load in https://ui.perfetto.dev or chrome://tracing)\n"
      path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one workload under one technique with the event tracer on \
             and export a Chrome trace-event JSON (Perfetto-loadable): one \
             track per SM (stall intervals, L1), plus L2, DRAM, kernel \
             spans and windowed counter tracks.")
    Term.(const run $ workload $ technique $ alloc_arg $ pages_arg $ scale_arg
          $ seed_arg $ iterations_arg $ window_arg $ capacity $ out)

(* --- compare --------------------------------------------------------------- *)

let compare_cmd =
  let workload =
    Arg.(required & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME")
  in
  let run w scale seed iterations json =
    let base =
      params_of (spec_of ~workload:w ~technique:"shard" ~scale ~seed ~iterations ())
    in
    let w = resolve_workload w in
    let runs = W.Harness.run_techniques w base T.all_paper in
    List.iter (fun (_, r) -> print_run r) runs;
    let base = W.Harness.find runs ~technique:T.Shared_oa in
    (match base with
     | Some base ->
       Printf.printf "runtime normalized to SharedOA (lower is faster):";
       List.iter
         (fun (technique, r) ->
           Printf.printf "  %s=%.2f" (T.name technique)
             (W.Harness.normalized_cycles ~baseline:base r))
         runs;
       print_newline ()
     | None -> ());
    Option.iter
      (fun path ->
        write_json path
          (O.Json.Obj
             [
               ("workload", O.Json.String (W.Registry.qualified_name w));
               ("scale", O.Json.Float scale);
               ( "runs",
                 O.Json.List
                   (List.map
                      (fun (technique, (r : W.Harness.run)) ->
                        O.Json.Obj
                          [
                            ("technique", O.Json.String (T.name technique));
                            ("cycles", O.Json.Float r.W.Harness.cycles);
                            ( "normalized_to_shard",
                              match base with
                              | Some b ->
                                O.Json.Float
                                  (W.Harness.normalized_cycles ~baseline:b r)
                              | None -> O.Json.Null );
                            ("metrics", O.Metric.to_json r.W.Harness.stats);
                          ])
                      runs) );
             ]))
      json
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run one workload under all five techniques (validating results agree).")
    Term.(const run $ workload $ scale_arg $ seed_arg $ iterations_arg $ json_arg)

(* --- figure / table --------------------------------------------------------- *)

(* The figure/table sweep. --alloc picks the family of the extra
   CUDA-dispatch comparison column appended to the five paper techniques
   (default: dyna); naming the device heap's own family drops the extra
   column and reproduces the paper's original five. *)
let sweep_columns alloc =
  let paper = List.map E.Sweep.column T.all_paper in
  match alloc with
  | None -> E.Sweep.default_columns
  | Some name ->
    let fam = resolve_alloc name in
    if A.is_default T.Cuda fam then paper
    else paper @ [ E.Sweep.column ~alloc:fam T.Cuda ]

let sweep_of ?alloc ?pages scale j cache cache_dir =
  let pages = Option.bind pages resolve_pages in
  let sweep =
    E.Sweep.exec ~columns:(sweep_columns alloc) ?pages ~scale ~j ~cache
      ?cache_dir
      ~progress:(fun label -> Printf.eprintf "  %s...\n%!" label)
      ()
  in
  let outcomes = E.Sweep.outcomes sweep in
  let cached = List.length (List.filter (fun o -> o.X.Executor.cached) outcomes) in
  Printf.eprintf "sweep: %d jobs (%d measured, %d cached), job time %.2fs\n%!"
    (List.length outcomes)
    (List.length outcomes - cached)
    cached
    (X.Executor.total_wall_s outcomes);
  sweep

let figure_cmd =
  let which =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIG"
           ~doc:"One of: 1b, 6, 7, 8, 9, 10, 11, 12a, 12b, tlb.")
  in
  let figure_alloc =
    Arg.(value & opt (some string) None & info [ "alloc" ] ~docv:"FAMILY"
           ~doc:"Family of the extra CUDA-dispatch comparison column in the \
                 sweep figures (default: dyna). $(b,--alloc cuda) drops the \
                 extra column and renders the paper's original five.")
  in
  let run which alloc pages scale j no_cache cache_dir json csv =
    let cache = not no_cache in
    let sweep () = sweep_of ?alloc ?pages scale j cache cache_dir in
    let reject_alloc which =
      if alloc <> None then
        cli_error "figure %s has a fixed column set; --alloc does not apply"
          which
    in
    let reject_pages which reason =
      if pages <> None then
        cli_error "figure %s %s; --pages does not apply" which reason
    in
    let text, series =
      match which with
      | "1b" ->
        let s = sweep () in
        (E.Fig1b.render s, [ E.Fig1b.series s ])
      | "6" ->
        let s = sweep () in
        (E.Fig6.render s, [ E.Fig6.series s ])
      | "7" ->
        let s = sweep () in
        (E.Fig7.render s, [ E.Fig7.series s; E.Fig7.breakdown_series s ])
      | "8" ->
        let s = sweep () in
        (E.Fig8.render s, [ E.Fig8.series s ])
      | "9" ->
        let s = sweep () in
        (E.Fig9.render s, [ E.Fig9.series s ])
      | "10" ->
        reject_alloc "10";
        reject_pages "10" "has a fixed configuration";
        let ps = E.Fig10.run ~scale ~j ~cache ?cache_dir () in
        (E.Fig10.render ps, [ E.Fig10.series_perf ps; E.Fig10.series_frag ps ])
      | "11" ->
        reject_alloc "11";
        reject_pages "11" "has a fixed configuration";
        let ps = E.Fig11.points ~scale ~j ~cache ?cache_dir () in
        (E.Fig11.render ps, [ E.Fig11.series ps ])
      | "12a" ->
        reject_alloc "12a";
        reject_pages "12a" "has a fixed configuration";
        let ps = E.Fig12.run_object_sweep ~scale ~j () in
        (E.Fig12.render_object_sweep ps, [ E.Fig12.object_series ps ])
      | "12b" ->
        reject_alloc "12b";
        reject_pages "12b" "has a fixed configuration";
        let ps = E.Fig12.run_type_sweep ~scale ~j () in
        (E.Fig12.render_type_sweep ps, [ E.Fig12.type_series ps ])
      | "tlb" ->
        (* Sweeps all three policies itself; a single --pages would
           contradict the comparison. *)
        reject_pages "tlb" "sweeps every page policy";
        let t =
          E.Fig_tlb.run ~columns:(sweep_columns alloc) ~scale ~j ~cache
            ?cache_dir
            ~progress:(fun label -> Printf.eprintf "  %s...\n%!" label)
            ()
        in
        (E.Fig_tlb.render t, E.Fig_tlb.series t)
      | other ->
        cli_error "unknown figure %S; valid figures: %s" other
          "1b, 6, 7, 8, 9, 10, 11, 12a, 12b, tlb"
    in
    print_string text;
    Option.iter
      (fun path -> write_json path (series_json ~kind:"figure" ~which series))
      json;
    Option.iter (fun path -> write_csv path (series_csv series)) csv
  in
  Cmd.v
    (Cmd.info "figure"
       ~doc:"Regenerate one of the paper's figures, or $(b,tlb): the \
             repo's page-walk-overhead comparison across page-size \
             policies.")
    Term.(const run $ which $ figure_alloc $ pages_arg $ scale_arg $ jobs_arg
          $ no_cache_arg $ cache_dir_arg $ json_arg $ csv_arg)

let table1_json sweep =
  O.Json.Obj
    [
      ("table", O.Json.String "1");
      ( "measured",
        O.Json.List
          (List.map
             (fun (m : E.Table1.measured) ->
               O.Json.Obj
                 [
                   ("technique", O.Json.String m.E.Table1.technique);
                   ( "get_vtable_per_kcall",
                     O.Json.Float m.E.Table1.get_vtable_per_kcall );
                   ( "get_vfunc_per_kcall",
                     O.Json.Float m.E.Table1.get_vfunc_per_kcall );
                 ])
             (E.Table1.measure sweep)) );
    ]

let table2_json sweep =
  O.Json.Obj
    [
      ("table", O.Json.String "2");
      ( "rows",
        O.Json.List
          (List.map
             (fun (r : E.Table2.row) ->
               O.Json.Obj
                 [
                   ("suite", O.Json.String r.E.Table2.suite);
                   ("workload", O.Json.String r.E.Table2.workload);
                   ("objects", O.Json.Int r.E.Table2.objects);
                   ("paper_objects", O.Json.Int r.E.Table2.paper_objects);
                   ("types", O.Json.Int r.E.Table2.types);
                   ("vfuncs", O.Json.Int r.E.Table2.vfuncs);
                   ("vfunc_pki", O.Json.Float r.E.Table2.vfunc_pki);
                 ])
             (E.Table2.rows sweep)) );
    ]

let table_cmd =
  let which = Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE") in
  let run which scale j no_cache cache_dir json =
    let text, table_json =
      match which with
      | "1" ->
        let s = sweep_of scale j (not no_cache) cache_dir in
        (E.Table1.render s, table1_json s)
      | "2" ->
        let s = sweep_of scale j (not no_cache) cache_dir in
        (E.Table2.render s, table2_json s)
      | other -> cli_error "unknown table %S; valid tables: 1, 2" other
    in
    print_string text;
    Option.iter (fun path -> write_json path table_json) json
  in
  Cmd.v (Cmd.info "table" ~doc:"Regenerate Table 1 or Table 2.")
    Term.(const run $ which $ scale_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg
          $ json_arg)

let ablation_cmd =
  let run scale j no_cache cache_dir =
    let cache = not no_cache in
    print_string
      (E.Ablation.render
         ~title:"TypePointer: silicon prototype vs hardware MMU"
         (E.Ablation.tp_prototype_vs_hw ~scale ~j ~cache ?cache_dir ()));
    print_string
      (E.Ablation.render ~title:"TypePointer: tag encodings (Sec. 6.2)"
         [ E.Ablation.tp_encoding () ])
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Design-choice ablations (TypePointer modes and encodings).")
    Term.(const run $ scale_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg)

let init_cmd =
  let run scale j no_cache cache_dir =
    print_string
      (E.Init_bench.render (E.Init_bench.run ~scale ~j ~cache:(not no_cache) ?cache_dir ()))
  in
  Cmd.v
    (Cmd.info "init" ~doc:"The Sec. 8.2 initialization-cost comparison (SharedOA vs device new).")
    Term.(const run $ scale_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg)

(* --- check ----------------------------------------------------------------- *)

let violation_json (v : Repro_san.Violation.t) =
  O.Json.Obj
    [
      ("kind", O.Json.String (Repro_san.Violation.kind_slug v.Repro_san.Violation.kind));
      ("warp", O.Json.Int v.Repro_san.Violation.warp);
      ("lane", O.Json.Int v.Repro_san.Violation.lane);
      ("addr", O.Json.String (Printf.sprintf "0x%x" v.Repro_san.Violation.addr));
      ("access", O.Json.String v.Repro_san.Violation.access);
      ("detail", O.Json.String v.Repro_san.Violation.detail);
    ]

let technique_report_json (tr : X.Check.technique_report) =
  O.Json.Obj
    [
      ("technique", O.Json.String (T.name tr.X.Check.technique));
      ("clean", O.Json.Bool (X.Check.technique_clean tr));
      ( "error",
        match tr.X.Check.error with
        | Some e -> O.Json.String e
        | None -> O.Json.Null );
      ("dispatches", O.Json.Int tr.X.Check.dispatches);
      ( "violations",
        O.Json.Obj
          (List.map
             (fun k ->
               ( Repro_san.Violation.kind_slug k,
                 O.Json.Int tr.X.Check.counts.(Repro_san.Violation.kind_index k) ))
             Repro_san.Violation.kinds) );
      ( "total_violations",
        O.Json.Int (Array.fold_left ( + ) 0 tr.X.Check.counts) );
      ("samples", O.Json.List (List.map violation_json tr.X.Check.samples));
      ( "divergence",
        match tr.X.Check.divergence with
        | None -> O.Json.Null
        | Some d ->
          O.Json.Obj
            [
              ( "index",
                match d.X.Check.index with
                | Some i -> O.Json.Int i
                | None -> O.Json.Null );
              ("summary", O.Json.String d.X.Check.summary);
              ( "context",
                match d.X.Check.context with
                | Some c -> O.Json.String c
                | None -> O.Json.Null );
            ] );
    ]

let check_json ~scale ~mutation reports =
  O.Json.Obj
    [
      ("scale", O.Json.Float scale);
      ( "mutation",
        match mutation with
        | Some m -> O.Json.String (Repro_san.Mutation.to_string m)
        | None -> O.Json.Null );
      ("clean", O.Json.Bool (X.Check.all_clean reports));
      ( "workloads",
        O.Json.List
          (List.map
             (fun (r : X.Check.report) ->
               O.Json.Obj
                 [
                   ("workload", O.Json.String r.X.Check.workload);
                   ("clean", O.Json.Bool (X.Check.clean r));
                   ( "techniques",
                     O.Json.List
                       (List.map technique_report_json r.X.Check.techniques) );
                 ])
             reports) );
    ]

let check_cmd =
  let workload =
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Check one workload (see $(b,repro list)).")
  in
  let technique =
    Arg.(value & opt (some string) None & info [ "t"; "technique" ] ~docv:"TECH"
           ~doc:"Check only $(docv) against the CUDA reference (default: \
                 all five techniques).")
  in
  let all =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Check every workload (the full matrix against the CUDA \
                 reference).")
  in
  let mutate =
    Arg.(value & opt (some string) None & info [ "mutate" ] ~docv:"BUG"
           ~doc:"Seed one deliberate bookkeeping bug (self-test mode): \
                 $(b,tag) records a wrong TypePointer tag, $(b,region) \
                 shrinks a shadow extent, $(b,uaf) marks an allocation \
                 dead, $(b,range) skews COAL's range-table leaves. The \
                 matching detector must fire, so the command exits 1.")
  in
  let run w t alloc pages all mutate scale seed iterations j json =
    let workloads =
      match (w, all) with
      | Some _, true -> cli_error "pass either -w NAME or --all, not both"
      | Some name, false -> [ resolve_workload name ]
      | None, true -> W.Registry.all
      | None, false ->
        cli_error "nothing to check: pass -w NAME or --all"
    in
    let techniques =
      match t with
      | None -> T.all_paper
      | Some name -> [ resolve_technique name ]
    in
    let mutation =
      Option.map
        (fun name ->
          match Repro_san.Mutation.of_string name with
          | Ok m -> m
          | Error _ ->
            cli_error "unknown mutation %S; valid mutations: %s" name
              (String.concat ", " Repro_san.Mutation.names))
        mutate
    in
    let params =
      params_of
        (spec_of ?alloc ?pages
           ~workload:(W.Registry.qualified_name (List.hd workloads))
           ~technique:"cuda" ~scale ~seed ~iterations ())
    in
    let reports = X.Check.run ~jobs:j ?mutation ~techniques ~params workloads in
    List.iter (Format.printf "%a@." X.Check.pp_report) reports;
    let clean = X.Check.all_clean reports in
    Printf.printf "check: %s (%d workload(s) x %d technique(s))\n"
      (if clean then "clean" else "VIOLATIONS")
      (List.length reports)
      (List.length
         (match reports with r :: _ -> r.X.Check.techniques | [] -> []));
    Option.iter
      (fun path -> write_json path (check_json ~scale ~mutation reports))
      json;
    if not clean then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the shadow-heap sanitizer and the cross-technique \
             dispatch oracle: every access checked against the shadow \
             map, every dispatch compared with the CUDA reference.")
    Term.(const run $ workload $ technique $ alloc_arg $ pages_arg $ all
          $ mutate $ scale_arg $ seed_arg $ iterations_arg $ jobs_arg $ json_arg)

(* --- sweep ----------------------------------------------------------------- *)

(* Outcomes are exported in the serve protocol's encoding ({!X.Response}):
   the "run" object round-trips the full stats bit-exactly, so a sweep
   written here and a batch fetched from the daemon compare byte for
   byte. *)
let outcome_json (o : X.Executor.outcome) =
  X.Response.outcome_to_json (X.Response.outcome_of_executor o)

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ]
         ~doc:"Print only the final summary line; job tables and progress \
               go away (pair with $(b,--json) for machine-readable output).")

(* The per-job table shared by sweep and submit. *)
let print_outcome_rows rows =
  Printf.printf "%-22s %-8s %-8s %9s %14s %8s %9s\n" "workload" "tech"
    "status" "wall(s)" "cycles" "Mcyc/s" "Minstr/s";
  List.iter
    (fun (name, tech, status, wall_s, result) ->
      match result with
      | Ok (r : W.Harness.run) ->
        let mcyc, minstr =
          if wall_s > 0. then
            ( Printf.sprintf "%8.2f" (r.W.Harness.cycles /. wall_s /. 1e6),
              Printf.sprintf "%9.2f"
                (float_of_int
                   (Repro_gpu.Stats.total_instructions r.W.Harness.stats)
                 /. wall_s /. 1e6) )
          else (Printf.sprintf "%8s" "-", Printf.sprintf "%9s" "-")
        in
        Printf.printf "%-22s %-8s %-8s %9.3f %14.0f %s %s\n" name tech status
          wall_s r.W.Harness.cycles mcyc minstr
      | Error msg ->
        Printf.printf "%-22s %-8s %-8s %9.3f %14s  %s\n" name tech "ERROR"
          wall_s "-" msg)
    rows

(* The sweep job matrix. Default: the five paper techniques on their own
   allocators plus the DYNA column, matching [Sweep.default_columns] so
   figure/table regeneration hits the same cache entries. --alloc FAMILY
   instead runs every technique over that one family. *)
let sweep_specs ?alloc ?pages ?(legacy = false) ?(intra = false) ?prealloc_mb
    ~scale () =
  let workloads = List.map W.Registry.qualified_name W.Registry.all in
  let techniques = List.map X.Request.technique_to_string T.all_paper in
  let pages = Option.map canonical_pages pages in
  let intern = not legacy in
  match alloc with
  | Some name ->
    let alloc = A.name (resolve_alloc name) in
    X.Request.Spec.matrix ~workloads ~techniques
      ~base:
        (X.Request.Spec.make ~alloc ?pages ?prealloc_mb ~intern ~intra ~scale
           ~workload:"" ~technique:"" ())
  | None ->
    let base =
      X.Request.Spec.make ?pages ?prealloc_mb ~intern ~intra ~scale
        ~workload:"" ~technique:"" ()
    in
    List.concat_map
      (fun workload ->
        List.map
          (fun technique -> { base with X.Request.Spec.workload; technique })
          techniques
        @ [
            { base with
              X.Request.Spec.workload;
              technique = X.Request.technique_to_string T.Cuda;
              alloc = Some (A.name A.Dyna_soa) };
          ])
      workloads

let sweep_cmd =
  let clear =
    Arg.(value & flag & info [ "clear-cache" ]
           ~doc:"Drop every cached result before sweeping.")
  in
  let run alloc pages scale legacy intra prealloc j no_cache cache_dir clear
      quiet json =
    let cache = not no_cache in
    let dir = Option.value cache_dir ~default:(X.Cache.default_dir ()) in
    if clear then
      Printf.eprintf "cleared %d cached result(s) from %s\n%!"
        (X.Cache.clear ~dir) dir;
    let jobs =
      List.map resolve_spec
        (sweep_specs ?alloc ?pages ~legacy ~intra ?prealloc_mb:prealloc ~scale ())
    in
    let t0 = Unix.gettimeofday () in
    let outcomes = X.Executor.run ~jobs:j ~cache ~cache_dir:dir jobs in
    let elapsed = Unix.gettimeofday () -. t0 in
    if not quiet then
      print_outcome_rows
        (List.map
           (fun (o : X.Executor.outcome) ->
             ( X.Job.workload_name o.X.Executor.job,
               X.Job.column_name o.X.Executor.job,
               (if o.X.Executor.cached then "cached" else "ran"),
               o.X.Executor.wall_s,
               o.X.Executor.result ))
           outcomes);
    let cached =
      List.length (List.filter (fun o -> o.X.Executor.cached) outcomes)
    in
    let failed = List.length (X.Executor.errors outcomes) in
    Printf.printf
      "%d jobs on %d worker(s): %d measured, %d cached, %d failed; \
       job time %.2fs, wall %.2fs\n"
      (List.length outcomes) j
      (List.length outcomes - cached)
      cached failed
      (X.Executor.total_wall_s outcomes)
      elapsed;
    Option.iter
      (fun path ->
        write_json path
          (O.Json.Obj
             [
               ("scale", O.Json.Float scale);
               ("jobs", O.Json.Int (List.length outcomes));
               ("measured", O.Json.Int (List.length outcomes - cached));
               ("cached", O.Json.Int cached);
               ("failed", O.Json.Int failed);
               ("job_time_s", O.Json.Float (X.Executor.total_wall_s outcomes));
               ("wall_s", O.Json.Float elapsed);
               ("outcomes", O.Json.List (List.map outcome_json outcomes));
             ]))
      json;
    if failed > 0 then exit 1
  in
  let sweep_alloc =
    Arg.(value & opt (some string) None & info [ "alloc" ] ~docv:"FAMILY"
           ~doc:"Run every technique over one allocator family instead of \
                 the default matrix (paper allocators plus the DYNA \
                 column).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Run the full job matrix (the five paper columns plus DYNA) \
             and print per-job status, wall time and cache hits.")
    Term.(const run $ sweep_alloc $ pages_arg $ scale_arg $ legacy_engine_arg
          $ intra_arg $ prealloc_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg
          $ clear $ quiet_arg $ json_arg)

(* --- serve / submit / ctl --------------------------------------------------- *)

let socket_arg =
  Arg.(value & opt string (X.Server.default_socket ())
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix socket of the daemon (default: \\$REPRO_SOCKET or \
                 _repro_serve.sock).")

let connect socket =
  match X.Server.Client.connect socket with
  | c -> c
  | exception Unix.Unix_error (e, _, _) ->
    cli_error "cannot connect to %s (%s) -- is `repro serve` running?" socket
      (Unix.error_message e)

let serve_cmd =
  let no_obs =
    Arg.(value & flag & info [ "no-obs" ]
           ~doc:"Disable all observability (metrics, tracing, logging): \
                 the zero-overhead request path with byte-identical \
                 responses.")
  in
  let log_file =
    Arg.(value & opt (some string) None & info [ "log-file" ] ~docv:"PATH"
           ~doc:"Append structured key=value log lines to $(docv).")
  in
  let log_level =
    Arg.(value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"debug | info | warn | error (default info). Without \
                 $(b,--log-file), logs go to stderr.")
  in
  let slow_ms =
    Arg.(value & opt int 250 & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Log requests slower than $(docv) milliseconds at warn \
                 level and count them in requests.slow.")
  in
  let trace_capacity =
    Arg.(value & opt int 4096 & info [ "trace-capacity" ] ~docv:"N"
           ~doc:"Span-ring capacity for $(b,repro ctl trace-dump) \
                 (drop-oldest; 0 disables tracing).")
  in
  let run socket j no_cache cache_dir no_obs log_file log_level slow_ms
      trace_capacity =
    let obs =
      if no_obs then begin
        if log_file <> None || log_level <> None then
          cli_error "--no-obs contradicts --log-file/--log-level";
        X.Server.obs_off
      end
      else begin
        let level =
          match O.Log.level_of_string (Option.value log_level ~default:"info")
          with
          | Ok l -> l
          | Error msg -> cli_error "%s" msg
        in
        let log =
          match (log_file, log_level) with
          | Some path, _ ->
            let oc =
              try
                open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644
                  path
              with Sys_error msg -> cli_error "cannot open log file: %s" msg
            in
            O.Log.to_channel ~level oc
          | None, Some _ -> O.Log.to_channel ~level stderr
          | None, None -> O.Log.null
        in
        X.Server.obs_default ~log
          ~slow_s:(float_of_int (max 0 slow_ms) /. 1000.)
          ~trace_capacity ()
      end
    in
    let cfg =
      { X.Server.socket_path = socket;
        workers = j;
        cache = not no_cache;
        cache_dir = Option.value cache_dir ~default:(X.Cache.default_dir ());
        obs }
    in
    Printf.eprintf "repro serve: listening on %s (%d worker(s), cache %s)\n%!"
      cfg.X.Server.socket_path cfg.X.Server.workers
      (if cfg.X.Server.cache then "in " ^ cfg.X.Server.cache_dir else "off");
    (match X.Server.run cfg with
     | () -> ()
     | exception Failure msg -> cli_error "%s" msg);
    Printf.eprintf "repro serve: shut down\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent sweep daemon: accepts concurrent clients \
             over a Unix socket (line-delimited JSON, see PROTOCOL.md), \
             schedules batches fairly across them, dedups identical \
             in-flight jobs, and shares one on-disk result cache. Serves \
             live metrics and request traces to $(b,repro ctl) unless \
             $(b,--no-obs). Stop it with $(b,repro ctl shutdown).")
    Term.(const run $ socket_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg
          $ no_obs $ log_file $ log_level $ slow_ms $ trace_capacity)

let submit_cmd =
  let workloads =
    Arg.(value & opt_all string [] & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Workload to submit (repeatable; see $(b,repro list)).")
  in
  let techniques =
    Arg.(value & opt_all string [] & info [ "t"; "technique" ] ~docv:"TECH"
           ~doc:"Technique to submit (repeatable; default: all five paper \
                 techniques).")
  in
  let all =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Submit the full 11x5 matrix ($(b,repro sweep)'s job list).")
  in
  let run socket ws ts alloc pages all scale seed iterations legacy intra
      prealloc no_cache quiet json =
    let specs =
      if all then begin
        if ws <> [] || ts <> [] then
          cli_error "pass either --all or -w/-t, not both";
        sweep_specs ?alloc ?pages ~legacy ~intra ?prealloc_mb:prealloc ~scale ()
      end
      else if ws = [] then
        cli_error "nothing to submit: pass -w NAME (repeatable) or --all"
      else
        let ts =
          if ts = [] then List.map X.Request.technique_to_string T.all_paper
          else ts
        in
        let alloc = Option.map (fun s -> A.name (resolve_alloc s)) alloc in
        let pages = Option.map canonical_pages pages in
        X.Request.Spec.matrix ~workloads:ws ~techniques:ts
          ~base:
            (X.Request.Spec.make ?alloc ?pages ~scale ~seed ?iterations
               ~intern:(not legacy) ~intra ?prealloc_mb:prealloc
               ~workload:"" ~technique:"" ())
    in
    (* Resolve locally first: a typo fails here with the usual message
       instead of as a daemon-side batch rejection — and the spec goes
       out normalized (qualified workload, canonical technique name), so
       outcomes echo the same names `repro sweep` prints. *)
    let jobs = List.map resolve_spec specs in
    let specs = List.map X.Request.Spec.of_job jobs in
    let specs_arr = Array.of_list specs in
    let n = Array.length specs_arr in
    let client = connect socket in
    let id = Printf.sprintf "cli-%d" (Unix.getpid ()) in
    X.Server.Client.send client
      (X.Request.Submit { id; cache = not no_cache; specs });
    let outcomes = Array.make n None in
    let summary = ref None in
    let rec loop () =
      match X.Server.Client.recv client with
      | Stdlib.Error msg -> cli_error "server connection lost: %s" msg
      | Ok (X.Response.Error { message }) ->
        cli_error "server rejected the batch: %s" message
      | Ok (X.Response.Ack _) -> loop ()
      | Ok (X.Response.Running { index; _ }) ->
        if (not quiet) && index >= 0 && index < n then
          Printf.eprintf "  [%d/%d] %s...\n%!" (index + 1) n
            (X.Request.Spec.label specs_arr.(index));
        loop ()
      | Ok (X.Response.Job_done { index; outcome; _ }) ->
        if index >= 0 && index < n then outcomes.(index) <- Some outcome;
        loop ()
      | Ok (X.Response.Batch_done
              { jobs; measured; cached; deduped; failed; wall_s; _ }) ->
        summary := Some (jobs, measured, cached, deduped, failed, wall_s)
      | Ok _ -> loop ()
    in
    loop ();
    X.Server.Client.close client;
    let collected =
      Array.to_list outcomes |> List.filter_map (fun o -> o)
    in
    if List.length collected < n then
      cli_error "server sent %d of %d results" (List.length collected) n;
    if not quiet then
      (* [collected] is in batch-index order, so it lines up with [jobs]. *)
      print_outcome_rows
        (List.map2
           (fun job (o : X.Response.outcome) ->
             ( o.X.Response.spec.X.Request.Spec.workload,
               X.Job.column_name job,
               (if o.X.Response.cached then "cached"
                else if o.X.Response.deduped then "dedup"
                else "ran"),
               o.X.Response.wall_s,
               o.X.Response.result ))
           jobs collected);
    let jobs, measured, cached, deduped, failed, wall_s =
      match !summary with Some s -> s | None -> assert false
    in
    Printf.printf
      "%d jobs via %s: %d measured, %d cached, %d deduped, %d failed; \
       job time %.2fs\n"
      jobs socket measured cached deduped failed wall_s;
    Option.iter
      (fun path ->
        write_json path
          (O.Json.Obj
             [
               ("scale", O.Json.Float scale);
               ("jobs", O.Json.Int jobs);
               ("measured", O.Json.Int measured);
               ("cached", O.Json.Int cached);
               ("deduped", O.Json.Int deduped);
               ("failed", O.Json.Int failed);
               ("job_time_s", O.Json.Float wall_s);
               ( "outcomes",
                 O.Json.List (List.map X.Response.outcome_to_json collected) );
             ]))
      json;
    if failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a job batch to a running $(b,repro serve) daemon, \
             stream per-job progress, and print the sweep-style table. \
             Results are byte-identical to running the same jobs \
             in-process.")
    Term.(const run $ socket_arg $ workloads $ techniques $ alloc_arg
          $ pages_arg $ all $ scale_arg $ seed_arg $ iterations_arg
          $ legacy_engine_arg $ intra_arg $ prealloc_arg
          $ no_cache_arg $ quiet_arg $ json_arg)

let ctl_cmd =
  let action =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ACTION"
           ~doc:"ping | stats | health | trace-dump | query | invalidate \
                 | shutdown.")
  in
  let as_json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"With $(b,stats): print the raw server_stats JSON instead \
                 of the text summary.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"With $(b,trace-dump): write the Perfetto trace JSON to \
                 $(docv) instead of stdout.")
  in
  let workload =
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"NAME"
           ~doc:"Job workload, for $(b,query) and $(b,invalidate).")
  in
  let technique =
    Arg.(value & opt string "shard" & info [ "t"; "technique" ] ~docv:"TECH"
           ~doc:"Job technique, for $(b,query) and $(b,invalidate).")
  in
  let all =
    Arg.(value & flag & info [ "all" ]
           ~doc:"With $(b,invalidate): drop the daemon's whole result cache.")
  in
  let run socket action w t alloc pages scale seed iterations all as_json out
      =
    let spec_for verb =
      match w with
      | Some workload ->
        spec_of ?alloc ?pages ~workload ~technique:t ~scale ~seed ~iterations ()
      | None -> cli_error "%s needs -w NAME (and -t TECH)" verb
    in
    let client = connect socket in
    let rpc req =
      X.Server.Client.send client req;
      match X.Server.Client.recv client with
      | Stdlib.Error msg -> cli_error "server connection lost: %s" msg
      | Ok (X.Response.Error { message }) -> cli_error "%s" message
      | Ok resp -> resp
    in
    let unexpected () = cli_error "unexpected response (protocol mismatch?)" in
    (match action with
     | "ping" -> (
       match rpc X.Request.Ping with
       | X.Response.Pong -> print_endline "pong"
       | _ -> unexpected ())
     | "stats" -> (
       match rpc X.Request.Stats with
       | X.Response.Server_stats s when as_json ->
         print_endline
           (O.Json.to_string ~pretty:true
              (X.Response.to_json (X.Response.Server_stats s)))
       | X.Response.Server_stats s ->
         Printf.printf
           "sessions=%d submitted=%d executed=%d dedup_hits=%d \
            cache_hits=%d queued=%d running=%d uptime=%.1fs\n"
           s.X.Response.sessions s.X.Response.submitted s.X.Response.executed
           s.X.Response.dedup_hits s.X.Response.cache_hits s.X.Response.queued
           s.X.Response.running s.X.Response.uptime_s;
         (match s.X.Response.svc with
          | None -> ()
          | Some svc ->
            Printf.printf
              "requests=%d slow=%d responses=%d decode_errors=%d \
               bytes_in=%d bytes_out=%d stampede_avoided=%d \
               worker_busy=%.2fs\n"
              svc.O.Svc_metrics.s_requests svc.O.Svc_metrics.s_slow_requests
              svc.O.Svc_metrics.s_responses
              svc.O.Svc_metrics.s_decode_errors svc.O.Svc_metrics.s_bytes_in
              svc.O.Svc_metrics.s_bytes_out
              svc.O.Svc_metrics.s_stampede_avoided
              svc.O.Svc_metrics.s_worker_busy_s);
         (match s.X.Response.stages with
          | [] -> ()
          | stages ->
            (* Quantiles report the upper bucket bound: a conservative
               "no slower than" figure. *)
            let q h p =
              match O.Hist.quantile h p with
              | Some (_, hi) -> hi *. 1e3
              | None -> 0.
            in
            Printf.printf "%-12s %8s %10s %10s %10s %10s\n" "stage" "count"
              "mean_ms" "p50_ms" "p95_ms" "p99_ms";
            List.iter
              (fun (name, h) ->
                Printf.printf "%-12s %8d %10.3f %10.3f %10.3f %10.3f\n" name
                  (O.Hist.count h)
                  (O.Hist.mean h *. 1e3)
                  (q h 0.5) (q h 0.95) (q h 0.99))
              stages)
       | _ -> unexpected ())
     | "health" -> (
       match rpc X.Request.Health with
       | X.Response.Health h ->
         Printf.printf
           "ok uptime=%.1fs schema=%d workers=%d sessions=%d queued=%d \
            running=%d\n"
           h.X.Response.h_uptime_s h.X.Response.h_schema
           h.X.Response.h_workers h.X.Response.h_sessions
           h.X.Response.h_queued h.X.Response.h_running
       | _ -> unexpected ())
     | "trace-dump" | "trace_dump" -> (
       match rpc X.Request.Trace_dump with
       | X.Response.Trace_dump { spans; dropped; trace } -> (
         match out with
         | Some path ->
           write_json path trace;
           Printf.printf "%d span(s), %d dropped\n" spans dropped
         | None -> print_endline (O.Json.to_string ~pretty:true trace))
       | _ -> unexpected ())
     | "query" -> (
       match rpc (X.Request.Query (spec_for "query")) with
       | X.Response.Queried { hit = true; run = Some r } -> print_run r
       | X.Response.Queried _ ->
         print_endline "miss";
         exit 1
       | _ -> unexpected ())
     | "invalidate" -> (
       let req =
         if all then X.Request.Invalidate None
         else X.Request.Invalidate (Some (spec_for "invalidate"))
       in
       match rpc req with
       | X.Response.Invalidated { removed } ->
         Printf.printf "removed %d cached result(s)\n" removed
       | _ -> unexpected ())
     | "shutdown" -> (
       match rpc X.Request.Shutdown with
       | X.Response.Bye -> print_endline "server shut down"
       | _ -> unexpected ())
     | other ->
       cli_error
         "unknown action %S; valid actions: ping, stats, health, \
          trace-dump, query, invalidate, shutdown"
         other);
    X.Server.Client.close client
  in
  Cmd.v
    (Cmd.info "ctl"
       ~doc:"Poke a running $(b,repro serve) daemon: liveness and health, \
             scheduler counters and per-stage latency histograms, request \
             traces, cache probes and invalidation, shutdown.")
    Term.(const run $ socket_arg $ action $ workload $ technique $ alloc_arg
          $ pages_arg $ scale_arg $ seed_arg $ iterations_arg $ all
          $ as_json $ out)

let () =
  let doc = "Reproduction of 'Judging a Type by Its Pointer' (ASPLOS '21)." in
  let info = Cmd.info "repro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; profile_cmd; trace_cmd; compare_cmd; check_cmd;
            figure_cmd; table_cmd; sweep_cmd; init_cmd; ablation_cmd;
            serve_cmd; submit_cmd; ctl_cmd ]))
