(* The job API and parallel executor: determinism across worker counts
   (the core guarantee the figures depend on), failure isolation, the
   on-disk cache, and key/hash stability. *)

module W = Repro_workloads
module T = Repro_core.Technique
module X = Repro_exec
module E = Repro_experiments

let check = Alcotest.check

let params ?iterations ?(seed = 42) ~scale technique =
  { (W.Workload.default_params technique) with
    W.Workload.scale; seed; iterations }

let fingerprint (r : W.Harness.run) =
  (r.W.Harness.workload, r.W.Harness.checksum, r.W.Harness.result,
   r.W.Harness.cycles)

(* --- pool ---------------------------------------------------------------- *)

let test_pool_preserves_order () =
  let inputs = Array.init 100 (fun i -> i) in
  let f i = (i * i) + 1 in
  let serial = X.Pool.map ~jobs:1 ~f inputs in
  let parallel = X.Pool.map ~jobs:4 ~f inputs in
  check Alcotest.bool "same results in input order" true (serial = parallel);
  Array.iteri
    (fun i result -> check Alcotest.bool "slot i holds f i" true (result = Ok (f i)))
    parallel

let test_pool_captures_exceptions () =
  let inputs = Array.init 10 (fun i -> i) in
  let f i = if i mod 3 = 0 then failwith "boom" else i in
  let results = X.Pool.map ~jobs:4 ~f inputs in
  Array.iteri
    (fun i result ->
      if i mod 3 = 0 then
        check Alcotest.bool "raising slot is Error" true
          (match result with
           | Error (Failure msg) -> String.equal msg "boom"
           | _ -> false)
      else check Alcotest.bool "sibling survives" true (result = Ok i))
    results

(* --- job identity -------------------------------------------------------- *)

let test_job_key_stability () =
  let gol = Option.get (W.Registry.find "GOL") in
  let job scale seed = X.Job.make gol (params ~scale ~seed T.Coal) in
  check Alcotest.bool "same params, same key" true
    (X.Job.equal (job 0.1 1) (job 0.1 1));
  check Alcotest.string "same params, same hash" (X.Job.hash (job 0.1 1))
    (X.Job.hash (job 0.1 1));
  check Alcotest.bool "seed changes the key" false
    (X.Job.equal (job 0.1 1) (job 0.1 2));
  check Alcotest.bool "scale changes the key" false
    (X.Job.equal (job 0.1 1) (job 0.2 1));
  let tp_proto = X.Job.make gol (params ~scale:0.1 T.type_pointer) in
  let tp_hw = X.Job.make gol (params ~scale:0.1 T.type_pointer_hw) in
  check Alcotest.bool "TP modes get distinct keys" false
    (X.Job.equal tp_proto tp_hw);
  let custom =
    X.Job.make gol
      { (params ~scale:0.1 T.Coal) with
        W.Workload.config = Some Repro_gpu.Config.default }
  in
  check Alcotest.bool "custom config is uncacheable" false
    (X.Job.cacheable custom);
  check Alcotest.bool "plain job is cacheable" true
    (X.Job.cacheable (job 0.1 1));
  let module A = Repro_core.Alloc_family in
  let dyna =
    X.Job.make gol
      { (params ~scale:0.1 ~seed:1 T.Cuda) with
        W.Workload.alloc = Some A.Dyna_soa }
  in
  let cuda = X.Job.make gol (params ~scale:0.1 ~seed:1 T.Cuda) in
  check Alcotest.bool "allocator family changes the key" false
    (X.Job.equal dyna cuda);
  check Alcotest.bool "dyna job is cacheable" true (X.Job.cacheable dyna);
  check Alcotest.string "column name folds in the family" "DYNA"
    (X.Job.column_name dyna);
  check Alcotest.string "default family keeps the technique name" "CUDA"
    (X.Job.column_name cuda)

(* --- executor determinism ------------------------------------------------ *)

let small_matrix ~seed ~scale =
  let workloads =
    List.filter_map W.Registry.find [ "GOL"; "TRAF"; "GraphChi-vE/CC" ]
  in
  X.Job.matrix ~techniques:[ T.Cuda; T.Coal ]
    ~params:(params ~iterations:1 ~seed ~scale T.Cuda) workloads

let test_parallel_equals_serial_qcheck () =
  let arb =
    QCheck.make
      ~print:(fun (seed, scale) -> Printf.sprintf "seed=%d scale=%f" seed scale)
      QCheck.Gen.(pair (int_range 1 1000) (oneofl [ 0.02; 0.03; 0.05 ]))
  in
  let prop (seed, scale) =
    let outcomes j = X.Executor.run ~jobs:j (small_matrix ~seed ~scale) in
    let runs j = List.map X.Executor.ok_exn (outcomes j) in
    List.map fingerprint (runs 1) = List.map fingerprint (runs 4)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:3
       ~name:"parallel (-j 4) == serial (-j 1): checksum, result, cycles, order"
       arb prop)

let failing_workload =
  {
    W.Workload.name = "FAIL";
    suite = "test";
    description = "always raises in build";
    paper_objects = 0;
    paper_types = 0;
    build = (fun _ -> failwith "deliberate failure");
  }

let test_failing_job_isolated () =
  let gol = Option.get (W.Registry.find "GOL") in
  let p = params ~iterations:1 ~scale:0.02 T.Coal in
  let jobs =
    [ X.Job.make gol p; X.Job.make failing_workload p; X.Job.make gol p ]
  in
  let outcomes = X.Executor.run ~jobs:2 jobs in
  check Alcotest.int "one outcome per job" 3 (List.length outcomes);
  (match List.map (fun (o : X.Executor.outcome) -> o.X.Executor.result) outcomes with
   | [ Ok _; Error msg; Ok _ ] ->
     check Alcotest.bool "error text captured" true
       (String.length msg > 0)
   | _ -> Alcotest.fail "expected [Ok; Error; Ok] in job order");
  check Alcotest.int "errors lists exactly the failing job" 1
    (List.length (X.Executor.errors outcomes))

(* --- cache --------------------------------------------------------------- *)

let with_temp_cache f =
  let dir = Filename.temp_dir "repro-exec-cache" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> try Sys.remove (Filename.concat dir file) with _ -> ())
        (try Sys.readdir dir with _ -> [||]);
      try Sys.rmdir dir with _ -> ())
    (fun () -> f dir)

let test_cache_round_trip () =
  with_temp_cache (fun dir ->
      let jobs = small_matrix ~seed:7 ~scale:0.02 in
      let first = X.Executor.run ~jobs:2 ~cache:true ~cache_dir:dir jobs in
      check Alcotest.bool "first pass measures" true
        (List.for_all (fun (o : X.Executor.outcome) -> not o.X.Executor.cached) first);
      let second = X.Executor.run ~jobs:2 ~cache:true ~cache_dir:dir jobs in
      check Alcotest.bool "second pass is all hits" true
        (List.for_all (fun (o : X.Executor.outcome) -> o.X.Executor.cached) second);
      check Alcotest.bool "hits replay the measurement exactly" true
        (List.map (fun o -> fingerprint (X.Executor.ok_exn o)) first
         = List.map (fun o -> fingerprint (X.Executor.ok_exn o)) second);
      let no_cache = X.Executor.run ~jobs:2 ~cache_dir:dir jobs in
      check Alcotest.bool "cache off re-measures" true
        (List.for_all
           (fun (o : X.Executor.outcome) -> not o.X.Executor.cached)
           no_cache);
      let other_seed =
        X.Executor.run ~cache:true ~cache_dir:dir
          (small_matrix ~seed:8 ~scale:0.02)
      in
      check Alcotest.bool "different seed misses" true
        (List.for_all
           (fun (o : X.Executor.outcome) -> not o.X.Executor.cached)
           other_seed);
      check Alcotest.bool "clear removes entries" true (X.Cache.clear ~dir > 0);
      let after_clear = X.Executor.run ~cache:true ~cache_dir:dir jobs in
      check Alcotest.bool "cleared cache re-measures" true
        (List.for_all
           (fun (o : X.Executor.outcome) -> not o.X.Executor.cached)
           after_clear))

let test_cache_ignores_corrupt_entries () =
  with_temp_cache (fun dir ->
      let job = List.hd (small_matrix ~seed:9 ~scale:0.02) in
      let file = Filename.concat dir (X.Job.hash job ^ ".job") in
      let oc = open_out_bin file in
      output_string oc "not a marshalled entry";
      close_out oc;
      check Alcotest.bool "corrupt entry reads as a miss" true
        (X.Cache.lookup ~dir job = None))

let test_cache_tolerates_torn_writes () =
  with_temp_cache (fun dir ->
      let job = List.hd (small_matrix ~seed:10 ~scale:0.02) in
      let run = X.Job.run job in
      X.Cache.store ~dir job run;
      let file = Filename.concat dir (X.Job.hash job ^ ".job") in
      (* Simulate a writer killed mid-write: truncate the entry. *)
      let full = In_channel.with_open_bin file In_channel.input_all in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full / 2)));
      check Alcotest.bool "truncated entry reads as a miss" true
        (X.Cache.lookup ~dir job = None);
      (* An empty file — rename landed, data never made it. *)
      Out_channel.with_open_bin file (fun _ -> ());
      check Alcotest.bool "empty entry reads as a miss" true
        (X.Cache.lookup ~dir job = None);
      (* The miss is recoverable: store again, read back. *)
      X.Cache.store ~dir job run;
      check Alcotest.bool "re-stored entry hits" true
        (match X.Cache.lookup ~dir job with
         | Some r -> fingerprint r = fingerprint run
         | None -> false))

let test_cache_store_is_atomic () =
  with_temp_cache (fun dir ->
      let job = List.hd (small_matrix ~seed:11 ~scale:0.02) in
      X.Cache.store ~dir job (X.Job.run job);
      (* No temp droppings next to the entry, and the entry is complete. *)
      let files = Sys.readdir dir in
      check Alcotest.bool "no temp files left behind" true
        (Array.for_all (fun f -> Filename.check_suffix f ".job") files);
      check Alcotest.int "exactly one entry" 1 (Array.length files);
      check Alcotest.bool "entry reads back" true
        (X.Cache.lookup ~dir job <> None))

let test_cache_invalidate () =
  with_temp_cache (fun dir ->
      let job = List.hd (small_matrix ~seed:12 ~scale:0.02) in
      check Alcotest.bool "invalidate on empty cache is false" false
        (X.Cache.invalidate ~dir job);
      X.Cache.store ~dir job (X.Job.run job);
      check Alcotest.bool "invalidate removes the entry" true
        (X.Cache.invalidate ~dir job);
      check Alcotest.bool "entry is gone" true (X.Cache.lookup ~dir job = None);
      check Alcotest.bool "second invalidate is false" false
        (X.Cache.invalidate ~dir job))

(* --- sweep over the executor --------------------------------------------- *)

let sweep_workloads = List.filter_map W.Registry.find [ "GOL"; "TRAF" ]

let test_sweep_exec_parallel_matches_serial () =
  let sweep j =
    E.Sweep.exec ~scale:0.03 ~iterations:1 ~j ~workloads:sweep_workloads ()
  in
  check Alcotest.bool "identical sweeps" true
    (List.map fingerprint (E.Sweep.runs (sweep 1))
     = List.map fingerprint (E.Sweep.runs (sweep 4)))

let test_sweep_outcomes_shape () =
  let s = E.Sweep.exec ~scale:0.03 ~iterations:1 ~j:2 ~workloads:sweep_workloads () in
  let outcomes = E.Sweep.outcomes s in
  check Alcotest.int "one outcome per run" (List.length (E.Sweep.runs s))
    (List.length outcomes);
  List.iter2
    (fun (o : X.Executor.outcome) (r : W.Harness.run) ->
      check Alcotest.string "outcomes line up with runs"
        (X.Job.workload_name o.X.Executor.job) r.W.Harness.workload;
      check Alcotest.bool "wall time nonnegative" true (o.X.Executor.wall_s >= 0.))
    outcomes (E.Sweep.runs s)

let suite =
  [
    Alcotest.test_case "pool preserves order" `Quick test_pool_preserves_order;
    Alcotest.test_case "pool captures exceptions" `Quick test_pool_captures_exceptions;
    Alcotest.test_case "job key stability" `Quick test_job_key_stability;
    Alcotest.test_case "parallel == serial (qcheck)" `Slow
      test_parallel_equals_serial_qcheck;
    Alcotest.test_case "failing job isolated" `Quick test_failing_job_isolated;
    Alcotest.test_case "cache round trip" `Quick test_cache_round_trip;
    Alcotest.test_case "cache ignores corrupt entries" `Quick
      test_cache_ignores_corrupt_entries;
    Alcotest.test_case "cache tolerates torn writes" `Quick
      test_cache_tolerates_torn_writes;
    Alcotest.test_case "cache store is atomic" `Quick test_cache_store_is_atomic;
    Alcotest.test_case "cache invalidate" `Quick test_cache_invalidate;
    Alcotest.test_case "sweep: parallel == serial" `Slow
      test_sweep_exec_parallel_matches_serial;
    Alcotest.test_case "sweep: outcomes shape" `Quick test_sweep_outcomes_shape;
  ]
