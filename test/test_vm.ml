(* Tests for the address-translation subsystem: page-size policies, the
   span-compressed page table, TLB replacement, the assembled lookup
   model, and the fold-consistency of the tlb.* counters under windowed
   sampling. *)

module Policy = Repro_vm.Policy
module Page_table = Repro_vm.Page_table
module Tlb = Repro_vm.Tlb
module Vm = Repro_vm.Vm
module Vaddr = Repro_mem.Vaddr
module W = Repro_workloads
module T = Repro_core.Technique
module Stats = Repro_gpu.Stats
module O = Repro_obs

let check = Alcotest.check

let kb = 1024
let mb = 1024 * 1024

(* --- policies ----------------------------------------------------------- *)

let test_policy_names () =
  List.iter
    (fun p ->
      match Policy.of_string (Policy.name p) with
      | Ok q -> check Alcotest.bool (Policy.name p) true (Policy.equal p q)
      | Error msg -> Alcotest.fail msg)
    Policy.all;
  (match Policy.parse "none" with
   | Ok None -> ()
   | _ -> Alcotest.fail "none should parse to no policy");
  (match Policy.parse "OFF" with
   | Ok None -> ()
   | _ -> Alcotest.fail "off is a case-insensitive alias of none");
  (match Policy.parse "mosaic" with
   | Ok (Some Policy.Coalesce) -> ()
   | _ -> Alcotest.fail "mosaic should alias coalesce");
  (match Policy.parse "4k" with
   | Ok (Some Policy.Flat_4k) -> ()
   | _ -> Alcotest.fail "4k should alias flat-4k");
  check Alcotest.bool "bogus rejected" true
    (Result.is_error (Policy.parse "huge"));
  check Alcotest.int "cli names = none + all" (1 + List.length Policy.all)
    (List.length Policy.cli_names)

(* --- page table --------------------------------------------------------- *)

(* Two disjoint arenas, as [Address_space.arenas] would report them. *)
let arenas = [ (0, 256 * kb); (16 * mb, 64 * kb) ]

let in_arenas addr =
  (addr >= 0 && addr < 256 * kb)
  || (addr >= 16 * mb && addr < (16 * mb) + (64 * kb))

let prop_translate_roundtrip =
  QCheck.Test.make ~name:"page table: mapped iff inside an arena" ~count:500
    QCheck.(int_bound ((17 * mb) - 1))
    (fun addr ->
      let t = Page_table.build ~policy:Policy.Flat_4k ~arenas ~promoted:[] () in
      match Page_table.translate t ~addr with
      | Some page ->
        in_arenas addr
        && page.Page_table.page_bytes = Page_table.small_page_bytes
        && page.Page_table.levels = Page_table.small_levels
        && page.Page_table.owner = -1
        && page.Page_table.phys_addr >= 0
      | None -> not (in_arenas addr))

let prop_translate_ignores_tag =
  QCheck.Test.make ~name:"page table: tagged address translates like its \
                          canonical form" ~count:300
    QCheck.(pair (int_bound ((256 * kb) - 1)) (int_bound Vaddr.max_tag))
    (fun (addr, tag) ->
      QCheck.assume (tag > 0);
      let t = Page_table.build ~policy:Policy.Flat_2m ~arenas ~promoted:[] () in
      Page_table.translate t ~addr:(Vaddr.with_tag addr ~tag)
      = Page_table.translate t ~addr)

let prop_phys_offsets_within_page =
  (* Physical placement is per-page linear: two addresses on the same
     page keep their distance. *)
  QCheck.Test.make ~name:"page table: same-page physical offsets are linear"
    ~count:300
    QCheck.(pair (int_bound ((256 * kb) - 1)) (int_bound 4095))
    (fun (addr, delta) ->
      let t = Page_table.build ~policy:Policy.Flat_4k ~arenas ~promoted:[] () in
      let page_base = addr - (addr mod Page_table.small_page_bytes) in
      let a = page_base + (delta mod Page_table.small_page_bytes) in
      match
        (Page_table.translate t ~addr:page_base, Page_table.translate t ~addr:a)
      with
      | Some p0, Some p1 ->
        p1.Page_table.phys_addr - p0.Page_table.phys_addr = a - page_base
      | _ -> false)

let translate_exn t addr =
  match Page_table.translate t ~addr with
  | Some page -> page
  | None -> Alcotest.failf "address 0x%x unexpectedly unmapped" addr

let test_flat_2m () =
  let t = Page_table.build ~policy:Policy.Flat_2m ~arenas ~promoted:[] () in
  let page = translate_exn t (100 * kb) in
  check Alcotest.int "large page" Page_table.large_page_bytes
    page.Page_table.page_bytes;
  check Alcotest.int "shallower walk" Page_table.large_levels
    page.Page_table.levels;
  check Alcotest.int "no owner without promotion" (-1) page.Page_table.owner

let test_coalesce_promotion () =
  let arenas = [ (0, mb) ] in
  let promoted =
    [
      (* Two adjacent type-3 spans: must merge into one 512K large span. *)
      (0, 256 * kb, 3);
      (256 * kb, 512 * kb, 3);
      (* A 128K type-7 span: promoted on its own. *)
      (512 * kb, 640 * kb, 7);
      (* 16K of type 9: below the 64K promotion threshold. *)
      (640 * kb, 656 * kb, 9);
    ]
  in
  let t = Page_table.build ~policy:Policy.Coalesce ~arenas ~promoted () in
  check Alcotest.int "two large spans" 2 (Page_table.large_spans t);
  let a = translate_exn t (4 * kb) and b = translate_exn t (500 * kb) in
  check Alcotest.int "merged span, one owner" 3 a.Page_table.owner;
  check Alcotest.int "same span across the merge point" a.Page_table.span
    b.Page_table.span;
  check Alcotest.int "promoted to large pages" Page_table.large_page_bytes
    a.Page_table.page_bytes;
  let c = translate_exn t ((512 * kb) + 10) in
  check Alcotest.int "second owner" 7 c.Page_table.owner;
  let small = translate_exn t ((640 * kb) + 10) in
  check Alcotest.int "below threshold stays small"
    Page_table.small_page_bytes small.Page_table.page_bytes;
  check Alcotest.int "unpromoted spans have no owner" (-1)
    small.Page_table.owner;
  let tail = translate_exn t (900 * kb) in
  check Alcotest.int "unreported arena tail stays small"
    Page_table.small_page_bytes tail.Page_table.page_bytes

(* --- TLB ----------------------------------------------------------------- *)

let test_tlb_lru_eviction () =
  (* One set, two ways: the LRU way (and only it) is evicted on fill. *)
  let t = Tlb.create ~sets:1 ~ways:2 in
  check Alcotest.int "entries" 2 (Tlb.entries t);
  check Alcotest.bool "cold miss 0" false (Tlb.access t ~key:0);
  check Alcotest.bool "cold miss 1" false (Tlb.access t ~key:1);
  check Alcotest.bool "hit 0 refreshes it" true (Tlb.access t ~key:0);
  (* 1 is now LRU, so filling 2 must evict it. *)
  check Alcotest.bool "fill 2" false (Tlb.access t ~key:2);
  check Alcotest.bool "0 survived" true (Tlb.probe t ~key:0);
  check Alcotest.bool "1 evicted" false (Tlb.probe t ~key:1);
  check Alcotest.bool "2 resident" true (Tlb.probe t ~key:2)

let test_tlb_probe_is_passive () =
  let t = Tlb.create ~sets:1 ~ways:2 in
  ignore (Tlb.access t ~key:0);
  ignore (Tlb.access t ~key:1);
  (* A probe hit must not refresh LRU state: 0 stays the LRU way. *)
  check Alcotest.bool "probe hit" true (Tlb.probe t ~key:0);
  ignore (Tlb.access t ~key:2);
  check Alcotest.bool "0 evicted despite the probe" false (Tlb.probe t ~key:0);
  check Alcotest.bool "1 survived" true (Tlb.probe t ~key:1);
  (* Flush empties every way. *)
  Tlb.flush t;
  check Alcotest.bool "flushed" false (Tlb.probe t ~key:1)

(* --- assembled model ----------------------------------------------------- *)

let vm_fixture () =
  let table =
    Page_table.build ~policy:Policy.Flat_4k ~arenas:[ (0, mb) ] ~promoted:[] ()
  in
  Vm.create ~n_sms:2 ~table ()

let test_vm_lookup_codes () =
  let vm = vm_fixture () in
  let walk = Vm.walk_base + Page_table.small_levels in
  check Alcotest.int "cold lookup walks" walk (Vm.lookup vm ~sm:0 ~sector:0);
  check Alcotest.int "repeat hits L1" Vm.hit_l1 (Vm.lookup vm ~sm:0 ~sector:0);
  check Alcotest.int "other SM hits shared L2" Vm.hit_l2
    (Vm.lookup vm ~sm:1 ~sector:0);
  Vm.flush_l1s vm;
  check Alcotest.int "kernel boundary keeps L2" Vm.hit_l2
    (Vm.lookup vm ~sm:0 ~sector:0);
  Vm.flush vm;
  check Alcotest.int "full flush walks again" walk
    (Vm.lookup vm ~sm:0 ~sector:0);
  (* An unmapped sector walks the full radix depth and is never cached. *)
  let far = (64 * mb) / Vaddr.sector_bytes in
  let unmapped = Vm.walk_base + Page_table.max_levels in
  check Alcotest.int "unmapped walks" unmapped (Vm.lookup vm ~sm:0 ~sector:far);
  check Alcotest.int "unmapped never caches" unmapped
    (Vm.lookup vm ~sm:0 ~sector:far)

let test_vm_latencies () =
  let vm = vm_fixture () in
  let cfg = Vm.config vm in
  check (Alcotest.float 0.0) "L1 hit is free" 0.
    (Vm.latency_of_code vm Vm.hit_l1);
  check (Alcotest.float 0.0) "L2 hit" cfg.Vm.l2_latency
    (Vm.latency_of_code vm Vm.hit_l2);
  check (Alcotest.float 0.0) "4-level walk"
    (cfg.Vm.l2_latency +. (4. *. cfg.Vm.walk_latency_per_level))
    (Vm.latency_of_code vm (Vm.walk_base + 4))

(* --- sanitizer translation checks ---------------------------------------- *)

let test_checker_vm_detections () =
  let module Checker = Repro_san.Checker in
  let module Shadow_heap = Repro_san.Shadow_heap in
  let module Violation = Repro_san.Violation in
  let c = Checker.create ~tags_expected:false () in
  let sh = Checker.shadow c in
  Shadow_heap.add_heap_range sh ~base:0x1000 ~size:0x40000;
  Shadow_heap.register sh ~base:0x1100 ~size:64 ~type_id:1;
  let access addrs =
    Checker.check_access c ~warp:0 ~tids:[| 0 |] ~access:Checker.Other
      ~what:"test" ~width:8 ~addrs
  in
  access [| 0x1100 |];
  check Alcotest.int "clean without a table" 0 (Checker.total c);
  (* A table that does not cover the heap range: every access is to an
     unmapped page. *)
  let elsewhere =
    Page_table.build ~policy:Policy.Flat_4k ~arenas:[ (mb, 4096) ]
      ~promoted:[] ()
  in
  Checker.set_page_table c (Some elsewhere);
  access [| 0x1100 |];
  check Alcotest.int "vm unmapped" 1 (Checker.count c Violation.Vm_unmapped);
  (* A large page promoted for the wrong owner type. *)
  let wrong_owner =
    Page_table.build ~policy:Policy.Coalesce ~arenas:[ (0x1000, 0x40000) ]
      ~promoted:[ (0x1000, 0x41000, 7) ] ()
  in
  Checker.set_page_table c (Some wrong_owner);
  access [| 0x1100 |];
  check Alcotest.int "vm owner mismatch" 1
    (Checker.count c Violation.Vm_owner_mismatch);
  (* The faithful table is clean. *)
  let right =
    Page_table.build ~policy:Policy.Coalesce ~arenas:[ (0x1000, 0x40000) ]
      ~promoted:[ (0x1000, 0x41000, 1) ] ()
  in
  Checker.set_page_table c (Some right);
  access [| 0x1100 |];
  check Alcotest.int "faithful table stays clean" 2 (Checker.total c)

(* --- windowed tlb.* counters fold to the totals -------------------------- *)

let test_tlb_window_fold () =
  let w =
    match W.Registry.find "TRAF" with
    | Some w -> w
    | None -> Alcotest.fail "TRAF workload missing"
  in
  let p =
    {
      (W.Workload.default_params T.Shared_oa) with
      W.Workload.scale = 0.03;
      pages = Some Policy.Coalesce;
      telemetry =
        Some
          { Repro_gpu.Telemetry.window = Some 512; trace = false;
            trace_capacity = Repro_gpu.Telemetry.default_capacity };
    }
  in
  let r = W.Harness.run w p in
  check Alcotest.bool "translation actually ran" true
    (Stats.tlb_lookups r.W.Harness.stats > 0);
  let sum extract =
    List.fold_left
      (fun acc windows ->
        Array.fold_left (fun acc s -> acc + extract s) acc windows)
      0 r.W.Harness.kernel_windows
  in
  let sumf extract =
    List.fold_left
      (fun acc windows ->
        Array.fold_left (fun acc s -> acc +. extract s) acc windows)
      0. r.W.Harness.kernel_windows
  in
  check Alcotest.int "l1 hits fold" (Stats.tlb_l1_hits r.W.Harness.stats)
    (sum Stats.tlb_l1_hits);
  check Alcotest.int "l2 hits fold" (Stats.tlb_l2_hits r.W.Harness.stats)
    (sum Stats.tlb_l2_hits);
  check Alcotest.int "walks fold" (Stats.tlb_walks r.W.Harness.stats)
    (sum Stats.tlb_walks);
  check (Alcotest.float 1e-6) "walk cycles fold"
    (Stats.tlb_walk_cycles r.W.Harness.stats)
    (sumf Stats.tlb_walk_cycles);
  (* And the timeline's structural validator agrees, tlb rows included. *)
  let window =
    match r.W.Harness.window with
    | Some w -> w
    | None -> Alcotest.fail "sampling was on but run has no window"
  in
  let tl =
    O.Timeline.make ~workload:r.W.Harness.workload
      ~technique:(T.name r.W.Harness.technique)
      ~window ~kernel_windows:r.W.Harness.kernel_windows
  in
  let profile =
    O.Profile.make ~workload:r.W.Harness.workload
      ~technique:(T.name r.W.Harness.technique)
      ~kernel_stats:r.W.Harness.kernel_stats ~total:r.W.Harness.stats
  in
  match O.Timeline.consistent tl ~profile with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let suite =
  [
    Alcotest.test_case "policy names and aliases" `Quick test_policy_names;
    QCheck_alcotest.to_alcotest prop_translate_roundtrip;
    QCheck_alcotest.to_alcotest prop_translate_ignores_tag;
    QCheck_alcotest.to_alcotest prop_phys_offsets_within_page;
    Alcotest.test_case "flat-2m backs arenas with large pages" `Quick
      test_flat_2m;
    Alcotest.test_case "coalesce merges and promotes contiguity spans" `Quick
      test_coalesce_promotion;
    Alcotest.test_case "tlb LRU eviction order" `Quick test_tlb_lru_eviction;
    Alcotest.test_case "tlb probe leaves LRU state alone" `Quick
      test_tlb_probe_is_passive;
    Alcotest.test_case "vm lookup codes" `Quick test_vm_lookup_codes;
    Alcotest.test_case "vm latency schedule" `Quick test_vm_latencies;
    Alcotest.test_case "sanitizer vm detections" `Quick
      test_checker_vm_detections;
    Alcotest.test_case "tlb.* window samples fold to totals" `Quick
      test_tlb_window_fold;
  ]
