(* Unit and property tests for the util substrate. *)

module Rng = Repro_util.Rng
module Mathx = Repro_util.Mathx
module Vec = Repro_util.Vec
module Heap = Repro_util.Heap

let check = Alcotest.check

let test_rng_deterministic () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:1 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let diff = ref false in
  for _ = 1 to 10 do
    if Rng.next a <> Rng.next b then diff := true
  done;
  check Alcotest.bool "different seeds differ" true !diff

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    check Alcotest.bool "in range" true (v >= 0 && v < 7)
  done;
  (* The historical overflow bug: large bounds must not loop forever. *)
  let v = Rng.int rng (1 lsl 60) in
  check Alcotest.bool "huge bound terminates" true (v >= 0);
  Alcotest.check_raises "bound beyond draw range"
    (Invalid_argument "Rng.int: bound exceeds the 61-bit draw range") (fun () ->
      ignore (Rng.int rng max_int))

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create ~seed:4 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let a = Rng.create ~seed:6 in
  let b = Rng.split a in
  check Alcotest.bool "split differs from parent" true (Rng.next a <> Rng.next b)

let test_rng_copy () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  check Alcotest.int "copy continues identically" (Rng.next a) (Rng.next b)

let test_mathx_mean_geomean () =
  check (Alcotest.float 1e-9) "mean" 2. (Mathx.mean [ 1.; 2.; 3. ]);
  check (Alcotest.float 1e-9) "geomean" 2. (Mathx.geomean [ 1.; 4. ]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Mathx.mean: empty list")
    (fun () -> ignore (Mathx.mean []));
  Alcotest.check_raises "geomean non-positive"
    (Invalid_argument "Mathx.geomean: non-positive input") (fun () ->
      ignore (Mathx.geomean [ 1.; 0. ]))

let test_mathx_int_helpers () =
  check Alcotest.int "ilog2 1" 0 (Mathx.ilog2 1);
  check Alcotest.int "ilog2 8" 3 (Mathx.ilog2 8);
  check Alcotest.int "ilog2 9" 3 (Mathx.ilog2 9);
  check Alcotest.int "ceil_pow2 1" 1 (Mathx.ceil_pow2 1);
  check Alcotest.int "ceil_pow2 5" 8 (Mathx.ceil_pow2 5);
  check Alcotest.int "ceil_div exact" 2 (Mathx.ceil_div 8 4);
  check Alcotest.int "ceil_div round" 3 (Mathx.ceil_div 9 4);
  check (Alcotest.float 1e-9) "clamp hi" 2. (Mathx.clamp ~lo:0. ~hi:2. 5.);
  check (Alcotest.float 1e-9) "percent" 50. (Mathx.percent 1. 2.);
  check (Alcotest.float 1e-9) "percent of zero" 0. (Mathx.percent 1. 0.)

let test_vec_basics () =
  let v = Vec.create () in
  check Alcotest.bool "fresh empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  check Alcotest.int "set" (-1) (Vec.get v 42);
  check Alcotest.int "fold" (4950 - 43) (Vec.fold_left ( + ) 0 v);
  Vec.clear v;
  check Alcotest.int "cleared" 0 (Vec.length v);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 0))

let test_vec_roundtrip () =
  let a = [| 3; 1; 4; 1; 5 |] in
  check (Alcotest.array Alcotest.int) "of/to array" a (Vec.to_array (Vec.of_array a))

let test_heap_orders () =
  let h = Heap.create () in
  List.iter (fun (k, v) -> Heap.push h ~key:k v) [ (3., "c"); (1., "a"); (2., "b") ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "" in
  check Alcotest.string "min first" "a" (pop ());
  check Alcotest.string "then b" "b" (pop ());
  check Alcotest.string "then c" "c" (pop ());
  check Alcotest.bool "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~key:1. v) [ 1; 2; 3 ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> -1 in
  (* Bind sequentially: list literals evaluate right-to-left. *)
  let first = pop () in
  let second = pop () in
  let third = pop () in
  check (Alcotest.list Alcotest.int) "insertion order on ties" [ 1; 2; 3 ]
    [ first; second; third ]

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k ()) keys;
      let rec drain prev =
        match Heap.pop h with
        | None -> true
        | Some (k, ()) -> k >= prev && drain k
      in
      drain neg_infinity)

(* The full ordering contract: pops come out sorted by (key, insertion
   sequence) lexicographically, i.e. exactly a stable sort of the pushed
   values by key. Keys are drawn from a tiny set so ties are common —
   the FIFO tie-break is what Sm.run's warp schedule and the sweep
   executor's determinism rest on. *)
let prop_heap_lexicographic =
  QCheck.Test.make ~name:"heap pop order is lexicographic in (key, seq)"
    ~count:300
    QCheck.(list (int_bound 4))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:(float_of_int k) i) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (k, v) -> drain ((k, v) :: acc)
      in
      let expected =
        List.mapi (fun i k -> (float_of_int k, i)) keys
        |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
      in
      drain [] = expected)

let prop_rng_int_uniform_range =
  QCheck.Test.make ~name:"rng int stays in range" ~count:500
    QCheck.(pair small_nat (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_vec_push_get =
  QCheck.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck.(small_list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      List.mapi (fun i _ -> Vec.get v i) xs = xs)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng rejects bad bound" `Quick test_rng_int_rejects_bad_bound;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "mathx mean/geomean" `Quick test_mathx_mean_geomean;
    Alcotest.test_case "mathx int helpers" `Quick test_mathx_int_helpers;
    Alcotest.test_case "vec basics" `Quick test_vec_basics;
    Alcotest.test_case "vec roundtrip" `Quick test_vec_roundtrip;
    Alcotest.test_case "heap orders" `Quick test_heap_orders;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_heap_lexicographic;
    QCheck_alcotest.to_alcotest prop_rng_int_uniform_range;
    QCheck_alcotest.to_alcotest prop_vec_push_get;
  ]
