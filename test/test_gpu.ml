(* Tests for the SIMT timing simulator. *)

module Label = Repro_gpu.Label
module Instr = Repro_gpu.Instr
module Coalesce = Repro_gpu.Coalesce
module Cache = Repro_gpu.Cache
module Config = Repro_gpu.Config
module Stats = Repro_gpu.Stats
module Mem_path = Repro_gpu.Mem_path
module Trace = Repro_gpu.Trace
module Warp_ctx = Repro_gpu.Warp_ctx
module Sm = Repro_gpu.Sm
module Device = Repro_gpu.Device
module Telemetry = Repro_gpu.Telemetry
module Page_store = Repro_mem.Page_store

let check = Alcotest.check

(* --- labels --------------------------------------------------------- *)

let test_label_indexing () =
  List.iter
    (fun l -> check Alcotest.bool "roundtrip" true (Label.of_index (Label.to_index l) = l))
    Label.all;
  check Alcotest.int "count" (List.length Label.all) Label.count

(* --- instructions ---------------------------------------------------- *)

let test_instr_classes () =
  let load = Instr.load ~label:Label.Body [| 0; 32 |] in
  check Alcotest.bool "load is mem" true (Instr.class_of load = `Mem);
  check Alcotest.int "load active" 2 load.Instr.active;
  check Alcotest.bool "load blocks" true load.Instr.blocking;
  let c = Instr.compute ~n:5 ~label:Label.Body 4 in
  check Alcotest.int "compute expands" 5 (Instr.instruction_count c);
  check Alcotest.bool "compute class" true (Instr.class_of c = `Compute);
  check Alcotest.bool "call is ctrl" true
    (Instr.class_of (Instr.call_indirect ~label:Label.Call 8) = `Ctrl);
  check Alcotest.bool "const load is mem" true
    (Instr.class_of (Instr.const_load ~label:Label.Const_indirect 8) = `Mem);
  Alcotest.check_raises "empty load" (Invalid_argument "Instr.load: no active lanes")
    (fun () -> ignore (Instr.load ~label:Label.Body [||]))

(* --- coalescer -------------------------------------------------------- *)

let test_coalesce_basic () =
  check Alcotest.int "same sector" 1 (Coalesce.transaction_count [| 0; 8; 16; 31 |]);
  check Alcotest.int "two sectors" 2 (Coalesce.transaction_count [| 0; 32 |]);
  check Alcotest.int "fully diverged" 32
    (Coalesce.transaction_count (Array.init 32 (fun i -> i * 128)));
  check (Alcotest.array Alcotest.int) "sorted sectors" [| 0; 4 |]
    (Coalesce.sectors [| 128; 0; 130 |])

let prop_coalesce_bounds =
  QCheck.Test.make ~name:"coalescer bounds: 1..lanes transactions" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 32) (int_bound 100_000))
    (fun addrs ->
      let n = Coalesce.transaction_count (Array.of_list addrs) in
      n >= 1 && n <= List.length addrs)

(* The replay-path scratch-buffer coalescer must agree exactly with the
   naive reference (sorted distinct sectors) for any lane count, duplicate
   pattern and ordering, at any arena offset, tag bits included. *)
let prop_coalesce_scratch_equiv =
  QCheck.Test.make ~name:"scratch coalescer matches naive reference" ~count:500
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 32) (int_bound 100_000))
        (int_bound 8) (int_bound 40))
    (fun (addrs, pad, tag) ->
      let tagged =
        List.mapi
          (fun i a -> if i mod 3 = 0 then Repro_mem.Vaddr.with_tag a ~tag else a)
          addrs
      in
      let len = List.length addrs in
      (* Embed the lane addresses at a nonzero arena offset. *)
      let arena = Array.make (pad + len) 0 in
      List.iteri (fun i a -> arena.(pad + i) <- a) tagged;
      let buf = Array.make len (-1) in
      let n = Coalesce.sectors_into ~buf arena ~off:pad ~len in
      Array.sub buf 0 n = Coalesce.sectors (Array.of_list addrs))

let prop_coalesce_unsafe_equiv =
  QCheck.Test.make ~name:"unchecked coalescer matches checked coalescer"
    ~count:500
    QCheck.(
      pair (list_of_size (Gen.int_range 1 32) (int_bound 100_000)) (int_bound 8))
    (fun (addrs, pad) ->
      let len = List.length addrs in
      let arena = Array.make (pad + len) 0 in
      List.iteri (fun i a -> arena.(pad + i) <- a) addrs;
      let buf = Array.make len (-1) and buf' = Array.make len (-1) in
      let n = Coalesce.sectors_into ~buf arena ~off:pad ~len in
      let n' = Coalesce.sectors_into_unsafe ~buf:buf' arena ~off:pad ~len in
      n = n' && Array.sub buf 0 n = Array.sub buf' 0 n')

(* --- cache ------------------------------------------------------------ *)

let small_geom = Cache.geometry ~size_bytes:1024 ~line_bytes:128 ~ways:2
(* 4 sets x 2 ways x 4 sectors *)

let test_cache_hit_after_miss () =
  let c = Cache.create small_geom in
  check Alcotest.bool "first is miss" true (Cache.access c ~sector:0 = `Miss);
  check Alcotest.bool "second is hit" true (Cache.access c ~sector:0 = `Hit)

let test_cache_sector_granularity () =
  let c = Cache.create small_geom in
  ignore (Cache.access c ~sector:0);
  (* Same line (sectors 0-3), different sector: line present, sector miss. *)
  check Alcotest.bool "sector miss on resident line" true (Cache.access c ~sector:1 = `Miss);
  check Alcotest.bool "then hits" true (Cache.access c ~sector:1 = `Hit);
  check Alcotest.bool "first sector still valid" true (Cache.probe c ~sector:0)

let test_cache_lru_eviction () =
  let c = Cache.create small_geom in
  (* Three lines mapping to set 0 (line index mod 4 = 0): lines 0, 4, 8. *)
  let sector_of_line l = l * 4 in
  ignore (Cache.access c ~sector:(sector_of_line 0));
  ignore (Cache.access c ~sector:(sector_of_line 4));
  ignore (Cache.access c ~sector:(sector_of_line 0)); (* refresh line 0 *)
  ignore (Cache.access c ~sector:(sector_of_line 8)); (* evicts line 4 *)
  check Alcotest.bool "line 0 kept" true (Cache.probe c ~sector:(sector_of_line 0));
  check Alcotest.bool "line 4 evicted" false (Cache.probe c ~sector:(sector_of_line 4));
  check Alcotest.bool "line 8 resident" true (Cache.probe c ~sector:(sector_of_line 8))

let test_cache_flush () =
  let c = Cache.create small_geom in
  ignore (Cache.access c ~sector:5);
  Cache.flush c;
  check Alcotest.bool "flushed" false (Cache.probe c ~sector:5)

let test_cache_geometry_validation () =
  Alcotest.check_raises "non power of two sets"
    (Invalid_argument "Cache.geometry: the number of sets must be a power of two")
    (fun () -> ignore (Cache.geometry ~size_bytes:(3 * 128 * 2) ~line_bytes:128 ~ways:2))

let prop_cache_hits_bounded =
  QCheck.Test.make ~name:"cache never reports more hits than accesses" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 64))
    (fun sectors ->
      let c = Cache.create small_geom in
      let hits =
        List.fold_left
          (fun acc s -> match Cache.access c ~sector:s with `Hit -> acc + 1 | `Miss -> acc)
          0 sectors
      in
      hits < List.length sectors (* the first access is always a miss *))

(* --- mem path --------------------------------------------------------- *)

let cfg = Config.default

let test_mem_path_latencies () =
  let mp = Mem_path.create cfg in
  let stats = Stats.create () in
  let t_miss = Mem_path.load mp ~stats ~sm:0 ~start:0. ~label:Label.Body ~addrs:[| 0 |] in
  let t_hit = Mem_path.load mp ~stats ~sm:0 ~start:t_miss ~label:Label.Body ~addrs:[| 0 |] in
  check Alcotest.bool "miss goes to DRAM" true
    (t_miss >= float_of_int (cfg.Config.l1_latency + cfg.Config.l2_latency + cfg.Config.dram_latency));
  check Alcotest.bool "hit is L1-latency fast" true
    (t_hit -. t_miss < float_of_int (cfg.Config.l1_latency + 5));
  check Alcotest.int "one transaction each" 2 (Stats.load_transactions stats);
  check Alcotest.int "one l1 hit" 1 (Stats.l1_accesses stats - 1);
  check Alcotest.bool "l1 rate 50%" true (abs_float (Stats.l1_hit_rate stats -. 0.5) < 1e-9)

let test_mem_path_l1_private_per_sm () =
  let mp = Mem_path.create cfg in
  let stats = Stats.create () in
  ignore (Mem_path.load mp ~stats ~sm:0 ~start:0. ~label:Label.Body ~addrs:[| 0 |]);
  check Alcotest.bool "sm0 has it" true (Mem_path.l1_probe mp ~sm:0 ~sector:0);
  check Alcotest.bool "sm1 does not" false (Mem_path.l1_probe mp ~sm:1 ~sector:0)

let test_mem_path_bandwidth_serializes () =
  let mp = Mem_path.create cfg in
  let stats = Stats.create () in
  let diverged = Array.init 32 (fun i -> i * 4096) in
  let t1 = Mem_path.load mp ~stats ~sm:0 ~start:0. ~label:Label.Body ~addrs:diverged in
  let diverged2 = Array.init 32 (fun i -> (i + 64) * 4096) in
  let t2 = Mem_path.load mp ~stats ~sm:1 ~start:0. ~label:Label.Body ~addrs:diverged2 in
  (* Both warps miss to DRAM; shared DRAM bandwidth must push the second
     warp's completion past the first's. *)
  check Alcotest.bool "shared dram contention" true (t2 > t1);
  check Alcotest.int "dram sectors (64B fills)" 128 (Stats.dram_sectors stats)

let test_mem_path_begin_kernel_flushes_l1_not_l2 () =
  let mp = Mem_path.create cfg in
  let stats = Stats.create () in
  ignore (Mem_path.load mp ~stats ~sm:0 ~start:0. ~label:Label.Body ~addrs:[| 0 |]);
  Mem_path.begin_kernel mp;
  check Alcotest.bool "l1 flushed" false (Mem_path.l1_probe mp ~sm:0 ~sector:0);
  (* The 64 B DRAM fill installed the pair sector in L2 as well. *)
  let stats2 = Stats.create () in
  ignore (Mem_path.load mp ~stats:stats2 ~sm:0 ~start:0. ~label:Label.Body ~addrs:[| 0 |]);
  (* L2 still warm: the reload must be an L2 hit, not a DRAM access. *)
  check Alcotest.int "no new dram sector" 0 (Stats.dram_sectors stats2);
  Mem_path.reset mp;
  let stats3 = Stats.create () in
  ignore (Mem_path.load mp ~stats:stats3 ~sm:0 ~start:0. ~label:Label.Body ~addrs:[| 0 |]);
  check Alcotest.int "reset clears l2 too" 2 (Stats.dram_sectors stats3)

(* --- warp ctx / device ------------------------------------------------ *)

let test_warp_ctx_load_store () =
  let heap = Page_store.create () in
  Page_store.store heap 64 7;
  let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 0; 1 |] () in
  let v = Warp_ctx.load ctx ~label:Label.Body [| 64; 72 |] in
  check (Alcotest.array Alcotest.int) "loaded" [| 7; 0 |] v;
  Warp_ctx.store ctx ~label:Label.Body [| 72; 80 |] [| 5; 6 |];
  check Alcotest.int "stored" 5 (Page_store.load heap 72);
  check Alcotest.int "trace records" 2 (Trace.length (Warp_ctx.trace ctx))

let test_warp_ctx_strips_tags () =
  let heap = Page_store.create () in
  Page_store.store heap 64 9;
  let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 0 |] () in
  let tagged = Repro_mem.Vaddr.with_tag 64 ~tag:77 in
  let v = Warp_ctx.load ctx ~label:Label.Body [| tagged |] in
  check (Alcotest.array Alcotest.int) "tag transparent" [| 9 |] v

let test_warp_ctx_diverge () =
  let heap = Page_store.create () in
  let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 0; 1; 2; 3 |] () in
  let seen = ref [] in
  Warp_ctx.diverge ctx ~label:Label.Body ~keys:[| 1; 2; 1; 3 |]
    (fun ~key sub idxs ->
      seen := (key, Warp_ctx.tids sub, idxs) :: !seen);
  let seen = List.rev !seen in
  check Alcotest.int "three groups" 3 (List.length seen);
  (match seen with
   | (k1, tids1, idxs1) :: (k2, _, _) :: (k3, _, _) :: _ ->
     check Alcotest.int "first-occurrence order" 1 k1;
     check Alcotest.int "second" 2 k2;
     check Alcotest.int "third" 3 k3;
     check (Alcotest.array Alcotest.int) "subset tids" [| 0; 2 |] tids1;
     check (Alcotest.array Alcotest.int) "parent idxs" [| 0; 2 |] idxs1
   | _ -> Alcotest.fail "unexpected grouping");
  (* One ctrl instruction per executed subset. *)
  check Alcotest.int "ctrl per group" 3 (Trace.length (Warp_ctx.trace ctx))

let test_warp_ctx_if () =
  let heap = Page_store.create () in
  let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 10; 11; 12 |] () in
  let then_tids = ref [||] and else_tids = ref [||] in
  Warp_ctx.if_ ctx ~label:Label.Body ~pred:[| true; false; true |]
    (fun sub _ -> then_tids := Warp_ctx.tids sub)
    (Some (fun sub _ -> else_tids := Warp_ctx.tids sub));
  check (Alcotest.array Alcotest.int) "then lanes" [| 10; 12 |] !then_tids;
  check (Alcotest.array Alcotest.int) "else lanes" [| 11 |] !else_tids

let test_warp_ctx_width_mismatch () =
  let heap = Page_store.create () in
  let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 0; 1 |] () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Warp_ctx.load: per-lane array width mismatch") (fun () ->
      ignore (Warp_ctx.load ctx ~label:Label.Body [| 0 |]))

let test_device_runs_kernel () =
  let heap = Page_store.create () in
  let device = Device.create ~heap () in
  let out = Repro_mem.Address_space.create () in
  let arena = Repro_mem.Address_space.reserve out ~name:"buf" ~size:4096 in
  let base = arena.Repro_mem.Address_space.base in
  Device.launch device ~n_threads:100 (fun ctx ->
      let tids = Warp_ctx.tids ctx in
      let addrs = Array.map (fun t -> base + (8 * t)) tids in
      Warp_ctx.store ctx ~label:Label.Body addrs (Array.map (fun t -> t * 2) tids));
  for t = 0 to 99 do
    check Alcotest.int "thread wrote" (2 * t) (Page_store.load heap (base + (8 * t)))
  done;
  check Alcotest.bool "cycles advanced" true (Stats.cycles (Device.stats device) > 0.);
  check Alcotest.int "one launch" 1 (Device.launches device);
  (* 100 threads = 4 warps, one store each. *)
  check Alcotest.int "mem instrs" 4 (Stats.instructions (Device.stats device) `Mem)

let test_device_partial_warp () =
  let heap = Page_store.create () in
  let device = Device.create ~heap () in
  let widths = ref [] in
  Device.launch device ~n_threads:40 (fun ctx -> widths := Warp_ctx.n_active ctx :: !widths);
  check (Alcotest.list Alcotest.int) "32 + tail of 8" [ 32; 8 ] (List.rev !widths)

let test_device_reset () =
  let heap = Page_store.create () in
  let device = Device.create ~heap () in
  Device.launch device ~n_threads:32 (fun ctx -> Warp_ctx.compute ctx ~label:Label.Body);
  Device.reset_stats device;
  check (Alcotest.float 1e-9) "cycles reset" 0. (Stats.cycles (Device.stats device));
  check Alcotest.int "launches reset" 0 (Device.launches device)

let test_device_kernel_timeline () =
  let heap = Page_store.create () in
  let device = Device.create ~heap () in
  let kernel ctx =
    let addrs = Array.map (fun t -> 1 lsl 20 lor (t * 64)) (Warp_ctx.tids ctx) in
    ignore (Warp_ctx.load ctx ~label:Label.Vtable_load addrs);
    Warp_ctx.compute ctx ~label:Label.Body
  in
  Device.launch device ~n_threads:64 kernel;
  Device.launch device ~n_threads:32 kernel;
  let timeline = Device.kernel_timeline device in
  check Alcotest.int "one entry per launch" 2 (List.length timeline);
  (* Accumulating the per-launch deltas reproduces the device totals
     exactly, float counters included — same add sequence, same result. *)
  let acc = Stats.create () in
  List.iter (Stats.add acc) timeline;
  let total = Device.stats device in
  check Alcotest.bool "cycles bit-exact" true
    (Stats.cycles acc = Stats.cycles total);
  check Alcotest.int "load transactions" (Stats.load_transactions total)
    (Stats.load_transactions acc);
  check Alcotest.bool "stall cycles bit-exact" true
    (Stats.stall_cycles acc Label.Vtable_load
     = Stats.stall_cycles total Label.Vtable_load);
  Device.reset_stats device;
  check Alcotest.int "reset clears timeline" 0
    (List.length (Device.kernel_timeline device))

let test_sm_blocking_latency_attribution () =
  let heap = Page_store.create () in
  let device = Device.create ~heap () in
  Device.launch device ~n_threads:32 (fun ctx ->
      let addrs = Array.map (fun t -> 1 lsl 20 lor (t * 4096)) (Warp_ctx.tids ctx) in
      ignore (Warp_ctx.load ctx ~label:Label.Vtable_load addrs));
  let stats = Device.stats device in
  check Alcotest.bool "stall attributed to the label" true
    (Stats.stall_cycles stats Label.Vtable_load > 0.);
  check (Alcotest.float 1e-9) "no stall on other labels" 0.
    (Stats.stall_cycles stats Label.Coal_lookup)

let test_more_warps_hide_latency () =
  (* Same per-thread work; oversubscription must not slow things down
     proportionally — latency hiding is the GPU's whole premise. *)
  let run n_threads =
    let heap = Page_store.create () in
    let device = Device.create ~heap () in
    Device.launch device ~n_threads (fun ctx ->
        let addrs = Array.map (fun t -> (t * 4096) land 0xFFFFF) (Warp_ctx.tids ctx) in
        ignore (Warp_ctx.load ctx ~label:Label.Body addrs);
        Warp_ctx.compute ctx ~n:4 ~label:Label.Body);
    Stats.cycles (Device.stats device)
  in
  let one_warp = run 32 in
  let many_warps = run (32 * 64) in
  check Alcotest.bool "64x work is far less than 64x time" true
    (many_warps < one_warp *. 32.)

(* --- SoA trace storage ------------------------------------------------ *)

let test_trace_soa_roundtrip () =
  let t = Trace.create () in
  let tagged = Repro_mem.Vaddr.with_tag 64 ~tag:5 in
  let off = Trace.emit_load t ~label:Label.Body ~blocking:true [| tagged; 128 |] in
  Trace.emit_compute t ~label:Label.Body ~n:3 ~blocking:false ~active:2;
  (* Emission strips tag bits on the way into the arena. *)
  check Alcotest.int "arena canonical" 64 (Trace.arena t).(off);
  check Alcotest.int "arena second lane" 128 (Trace.arena t).(off + 1);
  check Alcotest.int "load opcode" Trace.op_load (Trace.op t 0);
  check Alcotest.int "label index" (Label.to_index Label.Body)
    (Trace.label_index t 0);
  check Alcotest.bool "blocking" true (Trace.is_blocking t 0);
  check Alcotest.int "repeat of compute" 3 (Trace.repeat t 1);
  check Alcotest.int "instruction total" 4 (Trace.instruction_total t);
  (* The compatibility view materializes equivalent Instr.t records. *)
  (match (Trace.get t 0).Instr.kind with
   | Instr.Load a -> check (Alcotest.array Alcotest.int) "compat payload" [| 64; 128 |] a
   | _ -> Alcotest.fail "expected a load");
  check Alcotest.int "compat compute count" 3
    (Instr.instruction_count (Trace.get t 1))

let test_trace_compat_emit () =
  let t = Trace.create () in
  Trace.emit t (Instr.load ~label:Label.Vtable_load [| 256 |]);
  Trace.emit t (Instr.ctrl ~n:2 ~label:Label.Body 7);
  let got = ref [] in
  Trace.iter (fun i -> got := Instr.class_of i :: !got) t;
  check Alcotest.int "length" 2 (Trace.length t);
  check Alcotest.bool "classes preserved" true (List.rev !got = [ `Mem; `Ctrl ])

(* The event heap must implement exactly the ordering contract of
   Repro_util.Heap — (key, insertion sequence) lexicographic — because
   Sm.run's replay schedule, and therefore every figure, depends on the
   FIFO tie-break. Keys are drawn from a tiny set to force ties. *)
let prop_event_heap_matches_util_heap =
  QCheck.Test.make ~name:"event heap ordering matches util heap" ~count:300
    QCheck.(list (int_bound 3))
    (fun keys ->
      let eh = Repro_gpu.Event_heap.create () in
      let kc = Repro_gpu.Event_heap.key_cell eh in
      let uh = Repro_util.Heap.create () in
      List.iteri
        (fun i k ->
          let key = float_of_int k in
          kc.(0) <- key;
          Repro_gpu.Event_heap.push eh i;
          Repro_util.Heap.push uh ~key i)
        keys;
      let rec drain acc =
        let v = Repro_gpu.Event_heap.pop eh in
        if v < 0 then List.rev acc else drain ((kc.(0), v) :: acc)
      in
      let rec drain_u acc =
        match Repro_util.Heap.pop uh with
        | None -> List.rev acc
        | Some (k, v) -> drain_u ((k, v) :: acc)
      in
      drain [] = drain_u [])

(* --- zero-allocation replay ------------------------------------------- *)

let canned_traces ~n_warps ~n_instrs =
  let heap = Page_store.create () in
  Array.init n_warps (fun warp_id ->
      let lanes = Array.init 32 (fun l -> (warp_id * 32) + l) in
      let ctx = Warp_ctx.create ~heap ~warp_id ~lanes () in
      for i = 0 to n_instrs - 1 do
        match i mod 5 with
        | 0 ->
          let base = (i * 544) land 0xFFFF8 in
          ignore
            (Warp_ctx.load ctx ~label:Label.Body
               (Array.map (fun l -> base + (8 * (l land 31))) lanes))
        | 1 ->
          let base = (i * 288) land 0xFFFF8 in
          Warp_ctx.store ctx ~label:Label.Body
            (Array.map (fun l -> base + (8 * (l land 31))) lanes)
            lanes
        | 2 -> Warp_ctx.compute ctx ~n:3 ~label:Label.Body
        | 3 -> Warp_ctx.ctrl ctx ~label:Label.Body
        | _ -> Warp_ctx.call_indirect ctx ~label:Label.Call
      done;
      Warp_ctx.trace ctx)

let replay_minor_words traces =
  let mp = Mem_path.create cfg in
  let stats = Stats.create () in
  (* One warm replay so code paths and growable state are initialized. *)
  ignore (Sm.run cfg mp ~stats ~traces);
  let w0 = Gc.minor_words () in
  ignore (Sm.run cfg mp ~stats ~traces);
  Gc.minor_words () -. w0

let test_replay_zero_allocation () =
  (* The timing phase must allocate a per-run constant (activation lists,
     event-heap setup) and nothing per instruction: replaying 10x the
     instructions may not allocate more than a small fixed slack over the
     short trace. This is the invariant DESIGN.md documents; any boxed
     float, closure or record sneaking into Sm.run/Mem_path/Coalesce/
     Cache breaks it loudly. *)
  let short = replay_minor_words (canned_traces ~n_warps:8 ~n_instrs:300) in
  let long = replay_minor_words (canned_traces ~n_warps:8 ~n_instrs:3000) in
  check Alcotest.bool
    (Printf.sprintf
       "allocation independent of trace length (short=%.0f long=%.0f)" short
       long)
    true
    (long <= short +. 256.)

(* --- fused replay twin ------------------------------------------------ *)

(* Random warp programs over the full instruction vocabulary — converged
   and per-lane-diverged loads, stores, compute bursts, ctrl, indirect
   calls — across mixed warp widths (full, partial, single-lane). The
   space [Sm.run_fused] must replay byte-identically to [Sm.run]. *)
let traces_of_ops ops =
  let heap = Page_store.create () in
  let widths = [| 32; 17; 32; 5 |] in
  Array.init (Array.length widths) (fun warp_id ->
      let lanes = Array.init widths.(warp_id) (fun l -> (warp_id * 32) + l) in
      let ctx = Warp_ctx.create ~heap ~warp_id ~lanes () in
      List.iter
        (fun (op, r) ->
          let base = (r * 8) land 0xFFFF8 in
          match op with
          | 0 ->
            ignore
              (Warp_ctx.load ctx ~label:Label.Body
                 (Array.map (fun l -> base + (8 * (l land 31))) lanes))
          | 1 ->
            (* One sector per lane: the diverged vTable pattern. *)
            ignore
              (Warp_ctx.load ctx ~label:Label.Vtable_load
                 (Array.map
                    (fun l -> (base + (4096 * (l land 31))) land 0xFFFFF8)
                    lanes))
          | 2 ->
            Warp_ctx.store ctx ~label:Label.Body
              (Array.map (fun l -> base + (8 * (l land 31))) lanes)
              (Array.map (fun l -> l + 1) lanes)
          | 3 -> Warp_ctx.compute ctx ~n:(1 + (r mod 4)) ~label:Label.Body
          | 4 -> Warp_ctx.ctrl ctx ~label:Label.Body
          | _ -> Warp_ctx.call_indirect ctx ~label:Label.Call)
        ops;
      Warp_ctx.trace ctx)

let prop_fused_replay_identical =
  QCheck.Test.make
    ~name:"run_fused is byte-identical to run (cycles and every counter)"
    ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 80) (pair (int_bound 5) (int_bound 0xFFFF)))
    (fun ops ->
      let traces = traces_of_ops ops in
      let s1 = Stats.create () and s2 = Stats.create () in
      let c1 = Sm.run cfg (Mem_path.create cfg) ~stats:s1 ~traces in
      let c2 = Sm.run_fused cfg (Mem_path.create cfg) ~stats:s2 ~traces in
      c1 = c2 && Stats.to_raw s1 = Stats.to_raw s2)

let replay_minor_words_fused traces =
  let mp = Mem_path.create cfg in
  let stats = Stats.create () in
  ignore (Sm.run_fused cfg mp ~stats ~traces);
  let w0 = Gc.minor_words () in
  ignore (Sm.run_fused cfg mp ~stats ~traces);
  Gc.minor_words () -. w0

let test_fused_replay_zero_allocation () =
  (* The fused loop must hold the same invariant as [Sm.run]: per-launch
     setup may allocate, per-instruction work may not. *)
  let short = replay_minor_words_fused (canned_traces ~n_warps:8 ~n_instrs:300) in
  let long = replay_minor_words_fused (canned_traces ~n_warps:8 ~n_instrs:3000) in
  check Alcotest.bool
    (Printf.sprintf
       "fused allocation independent of trace length (short=%.0f long=%.0f)"
       short long)
    true
    (long <= short +. 256.)

let test_sharded_jobs_byte_identical () =
  (* Intra-launch sharding deals warps to per-SM memory slices; the
     domain count may change scheduling but never results. *)
  let traces = canned_traces ~n_warps:8 ~n_instrs:500 in
  let run jobs =
    let shards =
      Array.init cfg.Config.n_sms (fun _ -> Mem_path.create (Config.slice cfg))
    in
    let stats = Stats.create () in
    let cycles = Sm.run_sharded cfg ~shards ~jobs ~stats ~traces in
    (cycles, Stats.to_raw stats)
  in
  let c1, r1 = run 1 in
  let c4, r4 = run 4 in
  check Alcotest.bool "cycles identical for -j 1 vs -j 4" true (c1 = c4);
  check Alcotest.bool "stats byte-identical for -j 1 vs -j 4" true (r1 = r4)

let replay_minor_words_traced traces =
  (* Ring-only config: windowed sampling owns one Stats row per window
     (a deliberate per-window allocation), so the per-instruction
     invariant is pinned on the event tracer alone. *)
  let tel =
    Telemetry.create
      { Telemetry.window = None; trace = true; trace_capacity = 4096 }
  in
  let ring = Option.get tel.Telemetry.ring in
  let mp = Mem_path.create cfg in
  Mem_path.set_ring mp (Some ring);
  let stats = Stats.create () in
  Telemetry.Ring.begin_launch ring ~base:0.;
  ignore (Sm.run ~telemetry:tel cfg mp ~stats ~traces);
  let w0 = Gc.minor_words () in
  ignore (Sm.run ~telemetry:tel cfg mp ~stats ~traces);
  Gc.minor_words () -. w0

let test_replay_zero_allocation_traced () =
  (* Recording an event is six array stores plus a bump — enabling the
     tracer must not cost an allocation per instruction either, even
     when the ring wraps and drops. *)
  let short =
    replay_minor_words_traced (canned_traces ~n_warps:8 ~n_instrs:300)
  in
  let long =
    replay_minor_words_traced (canned_traces ~n_warps:8 ~n_instrs:3000)
  in
  check Alcotest.bool
    (Printf.sprintf
       "tracer-on allocation independent of trace length (short=%.0f long=%.0f)"
       short long)
    true
    (long <= short +. 256.)

let test_ring_drop_oldest () =
  let r = Telemetry.Ring.create ~capacity:4 in
  Telemetry.Ring.begin_launch r ~base:0.;
  for i = 0 to 5 do
    Telemetry.Ring.record r ~kind:Telemetry.Ring.kind_stall ~track:0 ~a:i ~b:i
      ~ts:(float_of_int i) ~dur:1.
  done;
  check Alcotest.int "len capped at capacity" 4 (Telemetry.Ring.length r);
  check Alcotest.int "two dropped" 2 (Telemetry.Ring.take_dropped r);
  check Alcotest.int "take_dropped resets" 0 (Telemetry.Ring.take_dropped r);
  check Alcotest.int "all_dropped persists" 2 (Telemetry.Ring.all_dropped r);
  let evs = Telemetry.Ring.to_events r in
  check Alcotest.int "four buffered" 4 (Array.length evs);
  (* The two oldest (a = 0, 1) were overwritten; the survivors come out
     oldest-first. *)
  Array.iteri
    (fun j (_, _, a, _, ts, _) ->
      check Alcotest.int "survivor payload" (j + 2) a;
      check Alcotest.bool "survivor timestamp" true (ts = float_of_int (j + 2)))
    evs;
  check Alcotest.bool "max_end covers last event" true
    (Telemetry.Ring.max_end r = 6.)

let suite =
  [
    Alcotest.test_case "label indexing" `Quick test_label_indexing;
    Alcotest.test_case "instr classes" `Quick test_instr_classes;
    Alcotest.test_case "coalesce basic" `Quick test_coalesce_basic;
    Alcotest.test_case "cache hit after miss" `Quick test_cache_hit_after_miss;
    Alcotest.test_case "cache sector granularity" `Quick test_cache_sector_granularity;
    Alcotest.test_case "cache lru eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache flush" `Quick test_cache_flush;
    Alcotest.test_case "cache geometry validation" `Quick test_cache_geometry_validation;
    Alcotest.test_case "mem path latencies" `Quick test_mem_path_latencies;
    Alcotest.test_case "mem path private L1s" `Quick test_mem_path_l1_private_per_sm;
    Alcotest.test_case "mem path bandwidth" `Quick test_mem_path_bandwidth_serializes;
    Alcotest.test_case "kernel boundary semantics" `Quick
      test_mem_path_begin_kernel_flushes_l1_not_l2;
    Alcotest.test_case "warp ctx load/store" `Quick test_warp_ctx_load_store;
    Alcotest.test_case "warp ctx strips tags" `Quick test_warp_ctx_strips_tags;
    Alcotest.test_case "warp ctx diverge" `Quick test_warp_ctx_diverge;
    Alcotest.test_case "warp ctx if_" `Quick test_warp_ctx_if;
    Alcotest.test_case "warp ctx width mismatch" `Quick test_warp_ctx_width_mismatch;
    Alcotest.test_case "device runs kernel" `Quick test_device_runs_kernel;
    Alcotest.test_case "device partial warp" `Quick test_device_partial_warp;
    Alcotest.test_case "device reset" `Quick test_device_reset;
    Alcotest.test_case "device kernel timeline" `Quick test_device_kernel_timeline;
    Alcotest.test_case "stall attribution" `Quick test_sm_blocking_latency_attribution;
    Alcotest.test_case "latency hiding" `Quick test_more_warps_hide_latency;
    Alcotest.test_case "trace SoA roundtrip" `Quick test_trace_soa_roundtrip;
    Alcotest.test_case "trace compat emit/iter" `Quick test_trace_compat_emit;
    Alcotest.test_case "replay allocates nothing per instruction" `Quick
      test_replay_zero_allocation;
    Alcotest.test_case "fused replay allocates nothing per instruction" `Quick
      test_fused_replay_zero_allocation;
    Alcotest.test_case "sharded timing jobs-count invariant" `Quick
      test_sharded_jobs_byte_identical;
    Alcotest.test_case "tracer-on replay allocates nothing per instruction"
      `Quick test_replay_zero_allocation_traced;
    Alcotest.test_case "ring drop-oldest spill" `Quick test_ring_drop_oldest;
    QCheck_alcotest.to_alcotest prop_coalesce_bounds;
    QCheck_alcotest.to_alcotest prop_coalesce_scratch_equiv;
    QCheck_alcotest.to_alcotest prop_coalesce_unsafe_equiv;
    QCheck_alcotest.to_alcotest prop_fused_replay_identical;
    QCheck_alcotest.to_alcotest prop_event_heap_matches_util_heap;
    QCheck_alcotest.to_alcotest prop_cache_hits_bounded;
  ]
