(* Tests for the paper's contribution: allocators, range table, pointer
   tagging, and dispatch under every technique. *)

module T = Repro_core.Technique
module Object_model = Repro_core.Object_model
module Vtable_space = Repro_core.Vtable_space
module Registry = Repro_core.Registry
module Region = Repro_core.Region
module Allocator = Repro_core.Allocator
module Cuda_alloc = Repro_core.Cuda_alloc
module Shared_oa = Repro_core.Shared_oa
module Dyna_soa = Repro_core.Dyna_soa
module Alloc_family = Repro_core.Alloc_family
module Range_table = Repro_core.Range_table
module Garray = Repro_core.Garray
module Runtime = Repro_core.Runtime
module Env = Repro_core.Env
module Vaddr = Repro_mem.Vaddr
module Page_store = Repro_mem.Page_store
module Address_space = Repro_mem.Address_space
module Label = Repro_gpu.Label
module Trace = Repro_gpu.Trace
module Instr = Repro_gpu.Instr
module Warp_ctx = Repro_gpu.Warp_ctx

let check = Alcotest.check

(* --- technique -------------------------------------------------------- *)

let test_technique_parsing () =
  List.iter
    (fun t ->
      match T.of_string (T.name t) with
      | Ok t' -> check Alcotest.bool "roundtrip" true (T.equal t t')
      | Error e -> Alcotest.fail e)
    (T.all_paper @ [ T.type_pointer_hw; T.type_pointer_on_cuda ]);
  check Alcotest.bool "unknown rejected" true (Result.is_error (T.of_string "nope"))

let test_technique_predicates () =
  check Alcotest.bool "shared oa" true (T.uses_shared_oa T.Coal);
  check Alcotest.bool "cuda not" false (T.uses_shared_oa T.Cuda);
  check Alcotest.bool "tp on cuda alloc" false (T.uses_shared_oa T.type_pointer_on_cuda);
  check Alcotest.bool "tp tags" true (T.tags_pointers T.type_pointer);
  check Alcotest.bool "prototype strips" true (T.strips_in_software T.type_pointer);
  check Alcotest.bool "hw mmu free" false (T.strips_in_software T.type_pointer_hw)

(* --- object model ----------------------------------------------------- *)

let test_object_model_headers () =
  let hdr t = Object_model.header_words (Object_model.create t) in
  check Alcotest.int "cuda" 1 (hdr T.Cuda);
  check Alcotest.int "concord" 1 (hdr T.Concord);
  check Alcotest.int "shared oa" 2 (hdr T.Shared_oa);
  check Alcotest.int "coal" 2 (hdr T.Coal);
  check Alcotest.int "tp on shared" 2 (hdr T.type_pointer);
  check Alcotest.int "tp on cuda" 1 (hdr T.type_pointer_on_cuda)

let test_object_model_field_addressing () =
  let om = Object_model.create T.Shared_oa in
  check Alcotest.int "field 0 after header" (1000 + 16)
    (Object_model.field_addr om ~ptr:1000 ~field:0);
  check Alcotest.int "4-byte slots" (1000 + 16 + 12)
    (Object_model.field_addr om ~ptr:1000 ~field:3);
  check Alcotest.int "tag stripped" (1000 + 16)
    (Object_model.field_addr om ~ptr:(Vaddr.with_tag 1000 ~tag:9) ~field:0);
  check Alcotest.int "object bytes" (16 + 12) (Object_model.object_bytes om ~field_words:3)

let test_object_model_sign_extension () =
  let om = Object_model.create T.Cuda in
  let heap = Page_store.create () in
  Object_model.field_store_host om heap ~ptr:4096 ~field:1 (-12345);
  check Alcotest.int "negative 32-bit roundtrip" (-12345)
    (Object_model.field_load_host om heap ~ptr:4096 ~field:1)

let test_object_model_strip_charge () =
  let heap = Page_store.create () in
  let count_strips technique =
    let om = Object_model.create technique in
    let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 0 |] () in
    ignore (Object_model.field_load om ctx ~objs:[| 4096 |] ~field:0);
    let strips = ref 0 in
    Trace.iter
      (fun i -> if i.Instr.label = Label.Tp_strip then incr strips)
      (Warp_ctx.trace ctx);
    !strips
  in
  check Alcotest.int "prototype masks" 1 (count_strips T.type_pointer);
  check Alcotest.int "hw mmu is free" 0 (count_strips T.type_pointer_hw);
  check Alcotest.int "cuda free" 0 (count_strips T.Cuda)

(* --- vtable space ------------------------------------------------------ *)

let make_space () =
  let heap = Page_store.create () in
  let space = Address_space.create () in
  (heap, space)

let test_vtable_space_tags () =
  let heap, space = make_space () in
  let vts = Vtable_space.create ~heap ~space () in
  let a = Vtable_space.alloc vts ~n_slots:3 in
  let b = Vtable_space.alloc vts ~n_slots:2 in
  check Alcotest.int "first at base" (Vtable_space.base vts) a;
  check Alcotest.int "byte-offset packing" (a + 24) b;
  check Alcotest.int "tag roundtrip a" a
    (Vtable_space.vtable_of_tag vts ~tag:(Vtable_space.tag_of_vtable vts ~vtable:a));
  check Alcotest.int "tag roundtrip b" b
    (Vtable_space.vtable_of_tag vts ~tag:(Vtable_space.tag_of_vtable vts ~vtable:b));
  check Alcotest.int "capacity is 4k pointers" 4096 (Vtable_space.capacity_slots vts);
  check Alcotest.int "slot addr" (a + 16) (Vtable_space.slot_addr ~vtable:a ~slot:2)

let test_vtable_space_exhaustion () =
  let heap, space = make_space () in
  let vts = Vtable_space.create ~heap ~space () in
  ignore (Vtable_space.alloc vts ~n_slots:4000);
  Alcotest.check_raises "arena full"
    (Failure "Vtable_space.alloc: 32KB vtable arena exhausted (fall back to COAL)")
    (fun () -> ignore (Vtable_space.alloc vts ~n_slots:200))

let test_vtable_space_padded_index () =
  let heap, space = make_space () in
  let vts =
    Vtable_space.create ~encoding:(Vtable_space.Padded_index { padded_slots = 8 })
      ~heap ~space ()
  in
  let a = Vtable_space.alloc vts ~n_slots:3 in
  let b = Vtable_space.alloc vts ~n_slots:8 in
  check Alcotest.int "padded stride" (a + 64) b;
  check Alcotest.int "index tags" 0 (Vtable_space.tag_of_vtable vts ~vtable:a);
  check Alcotest.int "index tag 1" 1 (Vtable_space.tag_of_vtable vts ~vtable:b);
  Alcotest.check_raises "oversized vtable"
    (Failure "Vtable_space.alloc: vtable larger than the padded size") (fun () ->
      ignore (Vtable_space.alloc vts ~n_slots:9))

(* --- registry ----------------------------------------------------------- *)

let test_registry_lifecycle () =
  let heap, space = make_space () in
  let reg = Registry.create ~heap in
  let impl_a = Registry.register_impl reg ~name:"a" (fun _ _ -> ()) in
  let impl_b = Registry.register_impl reg ~name:"b" (fun _ _ -> ()) in
  let base = Registry.define_type reg ~name:"Base" ~field_words:2 ~slots:[| impl_a |] () in
  let derived =
    Registry.define_type reg ~name:"Derived" ~field_words:2 ~parent:base
      ~slots:[| impl_b |] ()
  in
  check Alcotest.int "ids dense" 0 (Registry.type_id base);
  check Alcotest.int "ids dense 2" 1 (Registry.type_id derived);
  check Alcotest.bool "parent" true
    (match Registry.parent derived with Some p -> Registry.type_id p = 0 | None -> false);
  check Alcotest.int "total slots" 2 (Registry.total_vfunc_slots reg);
  let vts = Vtable_space.create ~heap ~space () in
  Registry.materialize reg ~vtspace:vts ~space;
  check Alcotest.bool "materialized" true (Registry.materialized reg);
  (* vtable memory holds the encoded impl ids. *)
  let slot0 = Page_store.load heap (Registry.gpu_vtable derived) in
  check Alcotest.int "encoded impl" (Registry.encode_impl_id impl_b) slot0;
  check Alcotest.int "decode" impl_b (Registry.decode_impl_id slot0);
  Alcotest.check_raises "decode zero"
    (Failure "Registry.decode_impl_id: uninitialized vtable slot") (fun () ->
      ignore (Registry.decode_impl_id 0));
  Alcotest.check_raises "define after materialize"
    (Failure "Registry.define_type: registry already materialized") (fun () ->
      ignore (Registry.define_type reg ~name:"Late" ~field_words:1 ~slots:[| impl_a |] ()))

(* --- region ------------------------------------------------------------- *)

let test_region_semantics () =
  let r = Region.make ~base:100 ~limit:200 ~type_id:3 in
  check Alcotest.bool "contains base" true (Region.contains r 100);
  check Alcotest.bool "excludes limit" false (Region.contains r 200);
  check Alcotest.int "bytes" 100 (Region.bytes r);
  let s = Region.make ~base:150 ~limit:250 ~type_id:4 in
  check Alcotest.bool "overlap" true (Region.overlap r s);
  let u = Region.make ~base:200 ~limit:250 ~type_id:4 in
  check Alcotest.bool "adjacent not overlapping" false (Region.overlap r u);
  Alcotest.check_raises "empty region"
    (Invalid_argument "Region.make: empty or inverted range") (fun () ->
      ignore (Region.make ~base:5 ~limit:5 ~type_id:0))

(* --- allocators ---------------------------------------------------------- *)

let dummy_registry () =
  let heap, space = make_space () in
  let reg = Registry.create ~heap in
  let impl = Registry.register_impl reg ~name:"noop" (fun _ _ -> ()) in
  let t1 = Registry.define_type reg ~name:"T1" ~field_words:2 ~slots:[| impl |] () in
  let t2 = Registry.define_type reg ~name:"T2" ~field_words:4 ~slots:[| impl |] () in
  (heap, space, reg, t1, t2)

let test_cuda_alloc_padding_and_scatter () =
  let _, space, _, t1, _ = dummy_registry () in
  let alloc = Cuda_alloc.create ~space () in
  let a = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  let b = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  check Alcotest.bool "128B aligned" true (a mod Cuda_alloc.granule_bytes = 0);
  check Alcotest.bool "scattered far apart" true (abs (b - a) > 1_000_000);
  let stats = alloc.Allocator.stats () in
  check Alcotest.int "objects" 2 stats.Allocator.objects;
  check Alcotest.int "used" 48 stats.Allocator.used_bytes;
  check Alcotest.int "reserved with padding" 256 stats.Allocator.reserved_bytes;
  check Alcotest.bool "no typed regions" true (alloc.Allocator.regions () = [])

let test_shared_oa_packs_by_type () =
  let _, space, _, t1, t2 = dummy_registry () in
  let alloc = Shared_oa.create ~chunk_objs:4 ~space () in
  let a1 = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  let b1 = alloc.Allocator.alloc ~typ:t2 ~size_bytes:32 in
  let a2 = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  let b2 = alloc.Allocator.alloc ~typ:t2 ~size_bytes:32 in
  check Alcotest.int "t1 packed back to back" (a1 + 24) a2;
  check Alcotest.int "t2 packed back to back" (b1 + 32) b2;
  check Alcotest.bool "types in different regions" true (abs (b1 - a1) >= 4096)

let test_shared_oa_doubling_and_merge () =
  let _, space, _, t1, _ = dummy_registry () in
  let alloc = Shared_oa.create ~chunk_objs:4 ~space () in
  (* Only one type allocates, so consecutive chunk reservations are
     adjacent and must merge into a single region despite doubling. *)
  for _ = 1 to 100 do
    ignore (alloc.Allocator.alloc ~typ:t1 ~size_bytes:24)
  done;
  (match alloc.Allocator.regions () with
   | [ r ] ->
     check Alcotest.int "single merged region type" (Registry.type_id t1) r.Region.type_id;
     check Alcotest.bool "covers all objects" true (Region.bytes r >= 100 * 24)
   | rs -> Alcotest.failf "expected 1 merged region, got %d" (List.length rs));
  let stats = alloc.Allocator.stats () in
  check Alcotest.int "used bytes" (100 * 24) stats.Allocator.used_bytes;
  let frag = Allocator.external_fragmentation stats in
  check Alcotest.bool "fragmentation in [0,1)" true (frag >= 0. && frag < 1.)

let test_shared_oa_interleaved_regions_sorted () =
  let _, space, _, t1, t2 = dummy_registry () in
  let alloc = Shared_oa.create ~chunk_objs:2 ~space () in
  for _ = 1 to 20 do
    ignore (alloc.Allocator.alloc ~typ:t1 ~size_bytes:24);
    ignore (alloc.Allocator.alloc ~typ:t2 ~size_bytes:32)
  done;
  let regions = alloc.Allocator.regions () in
  check Alcotest.bool "several regions" true (List.length regions > 2);
  let rec sorted_disjoint = function
    | a :: (b :: _ as rest) ->
      a.Region.limit <= b.Region.base && sorted_disjoint rest
    | _ -> true
  in
  check Alcotest.bool "sorted and disjoint" true (sorted_disjoint regions)

(* A type that reached [n] objects with chunks doubling from
   [chunk_objs] took at most that many grows — merging only shrinks the
   region list further. *)
let region_bound ~chunk_objs n =
  let rec go cap grows = if cap >= n then grows else go (2 * cap) (grows + 1) in
  go chunk_objs 1

let test_shared_oa_logarithmic_regions () =
  let _, space, _, t1, t2 = dummy_registry () in
  let alloc = Shared_oa.create ~chunk_objs:2 ~space () in
  let n = 200 in
  for _ = 1 to n do
    ignore (alloc.Allocator.alloc ~typ:t1 ~size_bytes:24);
    ignore (alloc.Allocator.alloc ~typ:t2 ~size_bytes:32)
  done;
  let regions = alloc.Allocator.regions () in
  let count ty =
    List.length
      (List.filter (fun r -> r.Region.type_id = Registry.type_id ty) regions)
  in
  let bound = region_bound ~chunk_objs:2 n in
  check Alcotest.bool "t1 region count logarithmic" true (count t1 <= bound);
  check Alcotest.bool "t2 region count logarithmic" true (count t2 <= bound)

let prop_shared_oa_regions_invariant =
  QCheck.Test.make
    ~name:"shared_oa regions sorted, disjoint, logarithmically many" ~count:50
    QCheck.(pair (int_range 1 150) (int_range 1 150))
    (fun (n1, n2) ->
      let _, space, _, t1, t2 = dummy_registry () in
      let alloc = Shared_oa.create ~chunk_objs:2 ~space () in
      for i = 0 to max n1 n2 - 1 do
        if i < n1 then ignore (alloc.Allocator.alloc ~typ:t1 ~size_bytes:24);
        if i < n2 then ignore (alloc.Allocator.alloc ~typ:t2 ~size_bytes:32)
      done;
      let regions = alloc.Allocator.regions () in
      let rec sorted_disjoint = function
        | a :: (b :: _ as rest) ->
          a.Region.limit <= b.Region.base && sorted_disjoint rest
        | _ -> true
      in
      let count ty =
        List.length
          (List.filter (fun r -> r.Region.type_id = Registry.type_id ty) regions)
      in
      sorted_disjoint regions
      && count t1 <= region_bound ~chunk_objs:2 n1
      && count t2 <= region_bound ~chunk_objs:2 n2)

let test_shared_oa_feeds_shadow () =
  let module Shadow_heap = Repro_san.Shadow_heap in
  let _, space, _, t1, _ = dummy_registry () in
  let shadow = Shadow_heap.create () in
  let alloc = Shared_oa.create ~shadow ~chunk_objs:4 ~space () in
  let a = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  check Alcotest.int "allocation registered" 1 (Shadow_heap.n_allocations shadow);
  (match Shadow_heap.find shadow (a + 8) with
   | Some r ->
     check Alcotest.int "type recorded" (Registry.type_id t1)
       r.Shadow_heap.type_id
   | None -> Alcotest.fail "allocation missing from shadow map");
  (* The rest of the reserved chunk is heap, but no live object. *)
  match Shadow_heap.classify shadow ~addr:(a + 24) ~width:8 with
  | Shadow_heap.Heap_hole -> ()
  | _ -> Alcotest.fail "past the object should classify as a heap hole"

let test_alloc_cost_model () =
  check Alcotest.bool "80x init gap" true
    (Cuda_alloc.cycles_per_alloc /. Shared_oa.cycles_per_alloc = 80.)

let prop_shared_oa_address_type_consistency =
  QCheck.Test.make ~name:"SharedOA: every address maps back to its type" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 1))
    (fun choices ->
      let _, space, _, t1, t2 = dummy_registry () in
      let alloc = Shared_oa.create ~chunk_objs:4 ~space () in
      let placed =
        List.map
          (fun c ->
            let typ = if c = 0 then t1 else t2 in
            (alloc.Allocator.alloc ~typ ~size_bytes:24, Registry.type_id typ))
          choices
      in
      let regions = alloc.Allocator.regions () in
      List.for_all
        (fun (addr, type_id) ->
          match List.find_opt (fun r -> Region.contains r addr) regions with
          | Some r -> r.Region.type_id = type_id
          | None -> false)
        placed)

(* --- dyna soa ------------------------------------------------------------- *)

(* T1 under a 2-header-word layout: 16B of headers + two 4B fields = 24B
   canonical image. *)
let dyna_pair ?shadow ?block_slots () =
  let _, space, _, t1, t2 = dummy_registry () in
  let alloc, summary =
    Dyna_soa.create_with_summary ?shadow ?block_slots ~header_words:2 ~space ()
  in
  (alloc, summary, t1, t2)

let test_alloc_family_parsing () =
  List.iter
    (fun fam ->
      match Alloc_family.of_string (Alloc_family.name fam) with
      | Ok f -> check Alcotest.bool "roundtrip" true (Alloc_family.equal f fam)
      | Error e -> Alcotest.fail e)
    Alloc_family.all;
  check Alcotest.bool "alias" true (Alloc_family.of_string "DynaSOA" = Ok Alloc_family.Dyna_soa);
  check Alcotest.bool "unknown rejected" true
    (Result.is_error (Alloc_family.of_string "nope"));
  check Alcotest.bool "shard defaults to shared-oa" true
    (Alloc_family.equal (Alloc_family.default_for T.Shared_oa) Alloc_family.Shared_oa);
  check Alcotest.string "default column keeps the technique name" "CUDA"
    (Alloc_family.column_name T.Cuda Alloc_family.Cuda);
  check Alcotest.string "soa-over-cuda column" "DYNA"
    (Alloc_family.column_name T.Cuda Alloc_family.Dyna_soa);
  check Alcotest.string "other combination" "SHARD+DYNA"
    (Alloc_family.column_name T.Shared_oa Alloc_family.Dyna_soa)

let test_dyna_soa_addressing () =
  let alloc, _, t1, _ = dyna_pair () in
  let a = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  let b = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  check Alcotest.bool "8-aligned bases" true (a mod 8 = 0 && b mod 8 = 0);
  check Alcotest.int "neighbour slots 8B apart" (a + 8) b;
  let fa = Option.get alloc.Allocator.field_addr in
  check Alcotest.int "header word 0 storage is the base" a (fa ~obj:a ~off:0);
  (* The SoA payoff: the same field of consecutive slots is 4B apart... *)
  check Alcotest.int "SoA field stride" (fa ~obj:a ~off:16 + 4) (fa ~obj:b ~off:16);
  (* ...while one object's two fields are a whole element array apart. *)
  check Alcotest.int "fields striped per array"
    (fa ~obj:a ~off:16 + (4 * Dyna_soa.default_block_slots))
    (fa ~obj:a ~off:20);
  Alcotest.check_raises "ragged size rejected"
    (Invalid_argument
       "Dyna_soa.alloc: size 21B is not 2 header words plus 4B fields")
    (fun () -> ignore (alloc.Allocator.alloc ~typ:t1 ~size_bytes:21))

let test_dyna_free_reuse_and_double_free () =
  let alloc, summary, t1, _ = dyna_pair () in
  let ptrs = Array.init 10 (fun _ -> alloc.Allocator.alloc ~typ:t1 ~size_bytes:24) in
  let free = Option.get alloc.Allocator.free in
  free ~ptr:ptrs.(3);
  let s = summary () in
  check Alcotest.int "live after free" 9 s.Dyna_soa.live_slots;
  check Alcotest.int "bitmap agrees" 9 s.Dyna_soa.bitmap_live_slots;
  (* Lowest-clear-bit scan lands the next allocation in the freed slot. *)
  check Alcotest.int "freed slot reused" ptrs.(3)
    (alloc.Allocator.alloc ~typ:t1 ~size_bytes:24);
  free ~ptr:ptrs.(5);
  Alcotest.check_raises "double free"
    (Invalid_argument "Dyna_soa.free: slot is already free (double free)")
    (fun () -> free ~ptr:ptrs.(5));
  Alcotest.check_raises "interior pointer"
    (Invalid_argument "Dyna_soa.free: not an object base")
    (fun () -> free ~ptr:(ptrs.(0) + 4));
  let stats = alloc.Allocator.stats () in
  check Alcotest.bool "scan cycles accounted" true
    (stats.Allocator.bitmap_scan_cycles > 0.
     && stats.Allocator.free_cycles = 2. *. Dyna_soa.cycles_per_free);
  let rendered = Format.asprintf "%a" Allocator.pp_stats stats in
  check Alcotest.bool "pp shows both fragmentation figures" true
    (let has s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has rendered "efrag" && has rendered "ifrag")

let test_dyna_drained_blocks_stay_reserved () =
  let alloc, summary, t1, _ = dyna_pair ~block_slots:8 () in
  let ptrs = Array.init 16 (fun _ -> alloc.Allocator.alloc ~typ:t1 ~size_bytes:24) in
  let free = Option.get alloc.Allocator.free in
  let reserved = (alloc.Allocator.stats ()).Allocator.reserved_bytes in
  Array.iter (fun p -> free ~ptr:p) ptrs;
  let s = alloc.Allocator.stats () in
  check Alcotest.int "drained blocks stay reserved" reserved
    s.Allocator.reserved_bytes;
  check Alcotest.int "nothing used" 0 s.Allocator.used_bytes;
  check (Alcotest.float 1e-9) "external fragmentation counts empty blocks" 1.0
    (Allocator.external_fragmentation s);
  check Alcotest.bool "internal fragmentation from metadata/rounding" true
    (Allocator.internal_fragmentation s > 0.);
  let sm = summary () in
  check Alcotest.int "two blocks chained" 2 sm.Dyna_soa.n_blocks;
  check Alcotest.int "both drained" 2 sm.Dyna_soa.empty_blocks;
  (* Drained blocks are reused, not re-reserved. *)
  ignore (alloc.Allocator.alloc ~typ:t1 ~size_bytes:24);
  check Alcotest.int "no regrow on realloc" reserved
    (alloc.Allocator.stats ()).Allocator.reserved_bytes

let test_dyna_regions_typed_sorted () =
  let alloc, _, t1, t2 = dyna_pair ~block_slots:4 () in
  let placed = ref [] in
  for _ = 1 to 10 do
    placed :=
      (alloc.Allocator.alloc ~typ:t1 ~size_bytes:24, Registry.type_id t1)
      :: (alloc.Allocator.alloc ~typ:t2 ~size_bytes:32, Registry.type_id t2)
      :: !placed
  done;
  let regions = alloc.Allocator.regions () in
  check Alcotest.int "one region per block" 6 (List.length regions);
  let rec sorted_disjoint = function
    | a :: (b :: _ as rest) ->
      a.Region.limit <= b.Region.base && sorted_disjoint rest
    | _ -> true
  in
  check Alcotest.bool "sorted and disjoint" true (sorted_disjoint regions);
  List.iter
    (fun (addr, type_id) ->
      match List.find_opt (fun r -> Region.contains r addr) regions with
      | Some r -> check Alcotest.int "region typed" type_id r.Region.type_id
      | None -> Alcotest.fail "allocated base outside every region")
    !placed

let test_dyna_feeds_shadow () =
  let module Shadow_heap = Repro_san.Shadow_heap in
  let shadow = Shadow_heap.create () in
  let alloc, _, t1, _ = dyna_pair ~shadow () in
  let a = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  let b = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
  check Alcotest.int "one record per object (not per extent)" 2
    (Shadow_heap.n_allocations shadow);
  let fa = Option.get alloc.Allocator.field_addr in
  (match Shadow_heap.find shadow (fa ~obj:a ~off:16) with
   | Some r ->
     check Alcotest.int "field extent owned by first object" 0 r.Shadow_heap.index;
     check Alcotest.int "type recorded" (Registry.type_id t1) r.Shadow_heap.type_id
   | None -> Alcotest.fail "field extent missing from shadow map");
  (match Shadow_heap.find shadow (fa ~obj:b ~off:16) with
   | Some r ->
     check Alcotest.int "neighbour field maps to its own record" 1
       r.Shadow_heap.index
   | None -> Alcotest.fail "neighbour field extent missing");
  (* Slot 2's header storage is reserved heap with no live object. *)
  match Shadow_heap.classify shadow ~addr:(b + 8) ~width:8 with
  | Shadow_heap.Heap_hole -> ()
  | _ -> Alcotest.fail "unallocated slot should classify as a heap hole"

let prop_dyna_bitmap_consistent =
  QCheck.Test.make
    ~name:"DynaSOA: popcount = live objects, no double placement, slots reused"
    ~count:50
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 2))
    (fun ops ->
      let _, space, _, t1, _ = dummy_registry () in
      let alloc, summary =
        Dyna_soa.create_with_summary ~block_slots:16 ~header_words:2 ~space ()
      in
      let free = Option.get alloc.Allocator.free in
      let live = Hashtbl.create 64 in
      let stack = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match (op, !stack) with
          | 0, _ | _, [] ->
            let p = alloc.Allocator.alloc ~typ:t1 ~size_bytes:24 in
            if Hashtbl.mem live p then ok := false;
            Hashtbl.replace live p ();
            stack := p :: !stack
          | _, p :: rest ->
            free ~ptr:p;
            Hashtbl.remove live p;
            stack := rest)
        ops;
      let s = summary () in
      !ok
      && s.Dyna_soa.live_slots = Hashtbl.length live
      && s.Dyna_soa.bitmap_live_slots = s.Dyna_soa.live_slots
      && (alloc.Allocator.stats ()).Allocator.live_objects = Hashtbl.length live)

(* --- range table ---------------------------------------------------------- *)

let build_range_table regions_spec =
  let heap, space = make_space () in
  let reg = Registry.create ~heap in
  let impl = Registry.register_impl reg ~name:"noop" (fun _ _ -> ()) in
  let n_types = List.fold_left (fun acc (_, _, t) -> max acc (t + 1)) 0 regions_spec in
  for i = 0 to n_types - 1 do
    ignore
      (Registry.define_type reg ~name:(Printf.sprintf "T%d" i) ~field_words:1
         ~slots:[| impl |] ())
  done;
  let vts = Vtable_space.create ~heap ~space () in
  Registry.materialize reg ~vtspace:vts ~space;
  let table = Range_table.create ~heap ~space in
  let regions =
    List.map (fun (base, limit, t) -> Region.make ~base ~limit ~type_id:t) regions_spec
  in
  Range_table.rebuild table ~registry:reg ~regions;
  (heap, table, reg)

let test_range_table_host_lookup () =
  let _, table, _ =
    build_range_table [ (0x1000, 0x2000, 0); (0x3000, 0x5000, 1); (0x8000, 0x9000, 2) ]
  in
  check Alcotest.int "leaves padded to pow2" 4 (Range_table.n_leaves table);
  check Alcotest.int "depth" 2 (Range_table.depth table);
  let type_at addr =
    match Range_table.find_region_host table addr with
    | Some r -> r.Region.type_id
    | None -> -1
  in
  check Alcotest.int "first region" 0 (type_at 0x1800);
  check Alcotest.int "second region" 1 (type_at 0x3000);
  check Alcotest.int "third region" 2 (type_at 0x8FFF);
  check Alcotest.int "gap misses" (-1) (type_at 0x2800);
  check Alcotest.int "below misses" (-1) (type_at 0x10)

let test_range_table_lookup_emit () =
  let heap, table, reg =
    build_range_table [ (0x1000, 0x2000, 0); (0x3000, 0x5000, 1) ]
  in
  let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 0; 1; 2 |] () in
  let encoded =
    Range_table.lookup_emit table ctx ~objs:[| 0x1100; 0x3100; 0x1200 |] ~slot:0
  in
  let impls = Array.map Registry.decode_impl_id encoded in
  let expect_t0 = Registry.impl_of_slot (Registry.find_type reg 0) ~slot:0 in
  let expect_t1 = Registry.impl_of_slot (Registry.find_type reg 1) ~slot:0 in
  check (Alcotest.array Alcotest.int) "impl per lane"
    [| expect_t0; expect_t1; expect_t0 |] impls;
  (* The emitted walk must be labelled as COAL lookup plus one vFunc load. *)
  let coal_loads = ref 0 and vfunc_loads = ref 0 in
  Trace.iter
    (fun i ->
      match (i.Instr.label, i.Instr.kind) with
      | Label.Coal_lookup, Instr.Load _ -> incr coal_loads
      | Label.Vfunc_load, Instr.Load _ -> incr vfunc_loads
      | _ -> ())
    (Warp_ctx.trace ctx);
  check Alcotest.int "walk loads = 2*depth + leaf check" 3 !coal_loads;
  check Alcotest.int "one vfunc load" 1 !vfunc_loads

let test_range_table_rejects_stray_address () =
  let heap, table, _ = build_range_table [ (0x1000, 0x2000, 0) ] in
  let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 0 |] () in
  Alcotest.check_raises "no region"
    (Failure "Range_table.lookup_emit: address in no region") (fun () ->
      ignore (Range_table.lookup_emit table ctx ~objs:[| 0x9999 |] ~slot:0))

let test_range_table_rejects_overlap () =
  let heap, space = make_space () in
  let reg = Registry.create ~heap in
  let impl = Registry.register_impl reg ~name:"noop" (fun _ _ -> ()) in
  ignore (Registry.define_type reg ~name:"T0" ~field_words:1 ~slots:[| impl |] ());
  let table = Range_table.create ~heap ~space in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Range_table.rebuild: overlapping regions") (fun () ->
      Range_table.rebuild table ~registry:reg
        ~regions:
          [ Region.make ~base:0 ~limit:100 ~type_id:0;
            Region.make ~base:50 ~limit:150 ~type_id:0 ])

let prop_range_table_matches_linear_scan =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 12 in
        let* sizes = list_size (return n) (int_range 1 50) in
        let* gaps = list_size (return n) (int_range 0 30) in
        return (sizes, gaps))
  in
  QCheck.Test.make ~name:"segment tree equals linear region scan" ~count:100 gen
    (fun (sizes, gaps) ->
      let specs, _ =
        List.fold_left2
          (fun (acc, cursor) size gap ->
            let base = cursor + (gap * 64) in
            let limit = base + (size * 64) in
            ((base, limit, List.length acc mod 3) :: acc, limit))
          ([], 4096) sizes gaps
      in
      let specs = List.rev specs in
      let _, table, _ = build_range_table specs in
      let regions =
        List.map (fun (b, l, t) -> Region.make ~base:b ~limit:l ~type_id:t) specs
      in
      let linear addr = List.find_opt (fun r -> Region.contains r addr) regions in
      let probe addr =
        let expected = linear addr in
        let got = Range_table.find_region_host table addr in
        match (expected, got) with
        | None, None -> true
        | Some a, Some b -> a.Region.base = b.Region.base
        | _ -> false
      in
      List.for_all
        (fun (b, l, _) -> probe b && probe (l - 1) && probe l && probe ((b + l) / 2))
        specs)

(* --- dispatch instruction sequences -------------------------------------- *)

let mini_runtime technique =
  let rt = Runtime.create ~technique () in
  let log = ref [] in
  let impl_a =
    Runtime.register_impl rt ~name:"A.f" (fun env objs ->
        log := `A (Array.length objs) :: !log;
        ignore (Env.field_load env ~objs ~field:0))
  in
  let impl_b =
    Runtime.register_impl rt ~name:"B.f" (fun env objs ->
        log := `B (Array.length objs) :: !log;
        ignore (Env.field_load env ~objs ~field:0))
  in
  let ta = Runtime.define_type rt ~name:"A" ~field_words:2 ~slots:[| impl_a |] () in
  let tb = Runtime.define_type rt ~name:"B" ~field_words:2 ~slots:[| impl_b |] () in
  (rt, ta, tb, log)

let dispatch_trace technique =
  let rt, ta, tb, log = mini_runtime technique in
  let objs = [| Runtime.new_obj rt ta; Runtime.new_obj rt tb; Runtime.new_obj rt ta |] in
  let captured = ref None in
  Runtime.launch rt ~n_threads:3 (fun env ->
      let lane_objs = Array.map (fun t -> objs.(t)) (Warp_ctx.tids env.Env.ctx) in
      env.Env.vcall env ~objs:lane_objs ~slot:0;
      captured := Some (Warp_ctx.trace env.Env.ctx));
  (Option.get !captured, log)

let labels_of trace =
  let labels = ref [] in
  Trace.iter (fun i -> labels := i.Instr.label :: !labels) trace;
  List.rev !labels

let has_label trace l = List.mem l (labels_of trace)

let count_kind trace pred =
  let n = ref 0 in
  Trace.iter (fun i -> if pred i then incr n) trace;
  !n

let test_dispatch_cuda_sequence () =
  let trace, log = dispatch_trace T.Cuda in
  check Alcotest.bool "A load" true (has_label trace Label.Vtable_load);
  check Alcotest.bool "B load" true (has_label trace Label.Vfunc_load);
  check Alcotest.bool "const indirection" true (has_label trace Label.Const_indirect);
  check Alcotest.int "two divergent groups -> two indirect calls" 2
    (count_kind trace (fun i -> i.Instr.kind = Instr.Call_indirect));
  check Alcotest.int "both bodies ran" 2 (List.length !log);
  check Alcotest.bool "A got two lanes" true (List.mem (`A 2) !log);
  check Alcotest.bool "B got one lane" true (List.mem (`B 1) !log)

let test_dispatch_concord_sequence () =
  let trace, _ = dispatch_trace T.Concord in
  check Alcotest.bool "tag load" true (has_label trace Label.Concord_tag);
  check Alcotest.bool "switch computes" true (has_label trace Label.Concord_switch);
  check Alcotest.bool "no vtable load" false (has_label trace Label.Vtable_load);
  check Alcotest.bool "no const" false (has_label trace Label.Const_indirect);
  check Alcotest.int "direct calls" 2
    (count_kind trace (fun i -> i.Instr.kind = Instr.Call_direct));
  check Alcotest.int "no indirect calls" 0
    (count_kind trace (fun i -> i.Instr.kind = Instr.Call_indirect))

let test_dispatch_coal_sequence () =
  let trace, _ = dispatch_trace T.Coal in
  check Alcotest.bool "range walk" true (has_label trace Label.Coal_lookup);
  check Alcotest.bool "no object vtable load" false (has_label trace Label.Vtable_load);
  check Alcotest.bool "leaf vfunc load" true (has_label trace Label.Vfunc_load);
  check Alcotest.int "indirect calls" 2
    (count_kind trace (fun i -> i.Instr.kind = Instr.Call_indirect))

let test_dispatch_tp_sequence () =
  let trace, _ = dispatch_trace T.type_pointer in
  check Alcotest.bool "shift/add" true (has_label trace Label.Tp_dispatch);
  check Alcotest.bool "no vtable load" false (has_label trace Label.Vtable_load);
  check Alcotest.bool "vfunc load stays" true (has_label trace Label.Vfunc_load);
  check Alcotest.bool "prototype strips in bodies" true (has_label trace Label.Tp_strip)

let test_dispatch_tp_hw_no_strips () =
  let trace, _ = dispatch_trace T.type_pointer_hw in
  check Alcotest.bool "hw mmu: no strip instructions" false (has_label trace Label.Tp_strip)

let converged_trace technique =
  let rt, ta, _, _ = mini_runtime technique in
  let obj = Runtime.new_obj rt ta in
  let captured = ref None in
  Runtime.launch rt ~n_threads:4 (fun env ->
      let lane_objs = Array.make (Warp_ctx.n_active env.Env.ctx) obj in
      env.Env.vcall_converged env ~objs:lane_objs ~slot:0;
      captured := Some (Warp_ctx.trace env.Env.ctx));
  Option.get !captured

let test_dispatch_coal_converged_uninstrumented () =
  let trace = converged_trace T.Coal in
  check Alcotest.bool "no range walk at converged sites" false
    (has_label trace Label.Coal_lookup);
  check Alcotest.bool "falls back to the vtable chain" true
    (has_label trace Label.Vtable_load)

(* --- runtime ---------------------------------------------------------------- *)

let test_runtime_headers_and_tags () =
  let rt, ta, tb, _ = mini_runtime T.type_pointer in
  let ptr = Runtime.new_obj rt ta in
  let ptr_b = Runtime.new_obj rt tb in
  let reg = Runtime.registry rt in
  let vts_tag vtable = (vtable - Vaddr.strip vtable) = 0 in
  ignore vts_tag;
  (* The tag must encode each type's vtable location; type A's vtable sits
     at arena offset 0, so its tag is legitimately 0. *)
  check Alcotest.int "tag encodes B's vtable offset"
    (Registry.gpu_vtable tb - Registry.gpu_vtable ta)
    (Vaddr.tag_of ptr_b);
  check Alcotest.int "A's tag is the zero offset" 0 (Vaddr.tag_of ptr);
  let heap = Runtime.heap rt in
  (* Header word 1 holds the GPU vtable; word 0 the CPU vtable. *)
  check Alcotest.int "gpu vtable header" (Registry.gpu_vtable ta)
    (Page_store.load heap (Vaddr.strip ptr + 8));
  check Alcotest.int "cpu vtable header" (Registry.cpu_vtable ta)
    (Page_store.load heap (Vaddr.strip ptr));
  ignore reg

let test_runtime_concord_tag_header () =
  let rt, ta, _, _ = mini_runtime T.Concord in
  let ptr = Runtime.new_obj rt ta in
  check Alcotest.int "embedded type tag" (Registry.type_id ta + 1)
    (Page_store.load (Runtime.heap rt) ptr)

let test_runtime_counts_vcalls () =
  let rt, ta, _, _ = mini_runtime T.Cuda in
  let objs = Runtime.new_objs rt ta 64 in
  let table = Array.copy objs in
  Runtime.launch rt ~n_threads:64 (fun env ->
      let lane_objs = Array.map (fun t -> table.(t)) (Warp_ctx.tids env.Env.ctx) in
      env.Env.vcall env ~objs:lane_objs ~slot:0);
  check Alcotest.int "warp vcalls" 2 (Runtime.warp_vcalls rt);
  check Alcotest.int "thread vcalls" 64 (Runtime.thread_vcalls rt);
  check Alcotest.bool "pki positive" true (Runtime.vfunc_pki rt > 0.)

let test_runtime_checksum_reflects_state () =
  let rt, ta, _, _ = mini_runtime T.Cuda in
  let ptr = Runtime.new_obj rt ta in
  let before = Runtime.checksum rt in
  Object_model.field_store_host (Runtime.object_model rt) (Runtime.heap rt) ~ptr
    ~field:0 99;
  check Alcotest.bool "checksum moves with state" true (before <> Runtime.checksum rt)

let test_cross_technique_functional_equality () =
  (* The paper's functional validation: the same program must produce the
     same heap contents under every technique. *)
  let result technique =
    let rt, ta, tb, _ = mini_runtime technique in
    let objs =
      Array.init 40 (fun i -> Runtime.new_obj rt (if i mod 3 = 0 then tb else ta))
    in
    let impl_bump =
      Runtime.register_impl rt ~name:"bump" (fun env objs ->
          let v = Env.field_load env ~objs ~field:1 in
          Env.field_store env ~objs ~field:1 (Array.map (fun x -> x + 7) v))
    in
    ignore impl_bump;
    Runtime.launch rt ~n_threads:40 (fun env ->
        let lane_objs = Array.map (fun t -> objs.(t)) (Warp_ctx.tids env.Env.ctx) in
        env.Env.vcall env ~objs:lane_objs ~slot:0);
    Runtime.checksum rt
  in
  let base = result T.Cuda in
  List.iter
    (fun t -> check Alcotest.int (T.name t ^ " checksum") base (result t))
    [ T.Concord; T.Shared_oa; T.Coal; T.type_pointer; T.type_pointer_hw;
      T.type_pointer_on_cuda ]

(* --- garray ----------------------------------------------------------------- *)

let test_garray () =
  let heap, space = make_space () in
  let arr = Garray.alloc ~space ~name:"g" ~len:10 in
  Garray.set arr heap 3 42;
  check Alcotest.int "host roundtrip" 42 (Garray.get arr heap 3);
  let ctx = Warp_ctx.create ~heap ~warp_id:0 ~lanes:[| 0; 1 |] () in
  let v = Garray.load arr ctx ~idxs:[| 3; 4 |] in
  check (Alcotest.array Alcotest.int) "warp load" [| 42; 0 |] v;
  Garray.store arr ctx ~idxs:[| 0; 1 |] [| 7; 8 |];
  check Alcotest.int "warp store" 7 (Garray.get arr heap 0);
  Alcotest.check_raises "bounds" (Invalid_argument "Garray.addr: index out of bounds")
    (fun () -> ignore (Garray.get arr heap 10))

(* The strongest guarantee in the repository: a *random* polymorphic
   program — random hierarchy, field counts, per-type behaviours, object
   mix — must produce a bit-identical heap under every technique. *)
let prop_random_programs_technique_invariant =
  let gen =
    QCheck.make
      ~print:(fun (a, b, c) -> Printf.sprintf "types=%d objs=%d seed=%d" a b c)
      QCheck.Gen.(
        let* n_types = int_range 1 4 in
        let* n_objects = int_range 8 96 in
        let* seed = int_range 0 10_000 in
        return (n_types, n_objects, seed))
  in
  QCheck.Test.make ~name:"random programs are technique-invariant" ~count:25 gen
    (fun (n_types, n_objects, seed) ->
      let run technique =
        let rt = Runtime.create ~technique () in
        let rng = Repro_util.Rng.create ~seed in
        let mk_impl k (env : Env.t) objs =
          let v = Env.field_load env ~objs ~field:0 in
          Env.compute env;
          let v' =
            match k mod 3 with
            | 0 -> Array.map (fun x -> x + k + 1) v
            | 1 -> Array.map (fun x -> x lxor (k + 5)) v
            | _ -> Array.map (fun x -> (x * 3) land 0xFFFF) v
          in
          Env.field_store env ~objs ~field:0 v'
        in
        let types =
          Array.init n_types (fun k ->
              let impl =
                Runtime.register_impl rt ~name:(Printf.sprintf "f%d" k) (mk_impl k)
              in
              Runtime.define_type rt ~name:(Printf.sprintf "T%d" k)
                ~field_words:(1 + (k mod 3)) ~slots:[| impl |] ())
        in
        let objs =
          Array.init n_objects (fun _ ->
              Runtime.new_obj rt types.(Repro_util.Rng.int rng n_types))
        in
        let om = Runtime.object_model rt in
        let heap = Runtime.heap rt in
        Array.iteri
          (fun i ptr -> Object_model.field_store_host om heap ~ptr ~field:0 i)
          objs;
        Runtime.launch rt ~n_threads:n_objects (fun env ->
            let lane_objs =
              Array.map (fun t -> objs.(t)) (Warp_ctx.tids env.Env.ctx)
            in
            env.Env.vcall env ~objs:lane_objs ~slot:0);
        Runtime.checksum rt
      in
      let base = run T.Cuda in
      List.for_all
        (fun t -> run t = base)
        [ T.Concord; T.Shared_oa; T.Coal; T.type_pointer; T.type_pointer_on_cuda ])

let prop_diverge_group_count =
  QCheck.Test.make ~name:"dispatch serializes one group per distinct target" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 32) (int_bound 3))
    (fun keys ->
      let heap = Page_store.create () in
      let ctx =
        Warp_ctx.create ~heap ~warp_id:0
          ~lanes:(Array.init (List.length keys) Fun.id)
          ()
      in
      let groups = ref 0 in
      Warp_ctx.diverge ctx ~label:Label.Call ~keys:(Array.of_list keys)
        (fun ~key:_ _ _ -> incr groups);
      !groups = List.length (List.sort_uniq compare keys))

let suite =
  [
    Alcotest.test_case "technique parsing" `Quick test_technique_parsing;
    Alcotest.test_case "technique predicates" `Quick test_technique_predicates;
    Alcotest.test_case "object model headers" `Quick test_object_model_headers;
    Alcotest.test_case "object model field addressing" `Quick
      test_object_model_field_addressing;
    Alcotest.test_case "object model sign extension" `Quick
      test_object_model_sign_extension;
    Alcotest.test_case "object model strip charge" `Quick test_object_model_strip_charge;
    Alcotest.test_case "vtable space tags" `Quick test_vtable_space_tags;
    Alcotest.test_case "vtable space exhaustion" `Quick test_vtable_space_exhaustion;
    Alcotest.test_case "vtable space padded index" `Quick test_vtable_space_padded_index;
    Alcotest.test_case "registry lifecycle" `Quick test_registry_lifecycle;
    Alcotest.test_case "region semantics" `Quick test_region_semantics;
    Alcotest.test_case "cuda alloc padding and scatter" `Quick
      test_cuda_alloc_padding_and_scatter;
    Alcotest.test_case "shared oa packs by type" `Quick test_shared_oa_packs_by_type;
    Alcotest.test_case "shared oa doubling and merge" `Quick
      test_shared_oa_doubling_and_merge;
    Alcotest.test_case "shared oa interleaved regions" `Quick
      test_shared_oa_interleaved_regions_sorted;
    Alcotest.test_case "shared oa logarithmic regions" `Quick
      test_shared_oa_logarithmic_regions;
    Alcotest.test_case "shared oa feeds shadow heap" `Quick
      test_shared_oa_feeds_shadow;
    Alcotest.test_case "allocation cost model" `Quick test_alloc_cost_model;
    Alcotest.test_case "alloc family parsing" `Quick test_alloc_family_parsing;
    Alcotest.test_case "dyna soa addressing" `Quick test_dyna_soa_addressing;
    Alcotest.test_case "dyna free reuse and double free" `Quick
      test_dyna_free_reuse_and_double_free;
    Alcotest.test_case "dyna drained blocks stay reserved" `Quick
      test_dyna_drained_blocks_stay_reserved;
    Alcotest.test_case "dyna regions typed and sorted" `Quick
      test_dyna_regions_typed_sorted;
    Alcotest.test_case "dyna feeds shadow heap" `Quick test_dyna_feeds_shadow;
    Alcotest.test_case "range table host lookup" `Quick test_range_table_host_lookup;
    Alcotest.test_case "range table lookup emit" `Quick test_range_table_lookup_emit;
    Alcotest.test_case "range table stray address" `Quick
      test_range_table_rejects_stray_address;
    Alcotest.test_case "range table overlap" `Quick test_range_table_rejects_overlap;
    Alcotest.test_case "dispatch cuda sequence" `Quick test_dispatch_cuda_sequence;
    Alcotest.test_case "dispatch concord sequence" `Quick test_dispatch_concord_sequence;
    Alcotest.test_case "dispatch coal sequence" `Quick test_dispatch_coal_sequence;
    Alcotest.test_case "dispatch tp sequence" `Quick test_dispatch_tp_sequence;
    Alcotest.test_case "dispatch tp hw no strips" `Quick test_dispatch_tp_hw_no_strips;
    Alcotest.test_case "coal converged heuristic" `Quick
      test_dispatch_coal_converged_uninstrumented;
    Alcotest.test_case "runtime headers and tags" `Quick test_runtime_headers_and_tags;
    Alcotest.test_case "runtime concord tag" `Quick test_runtime_concord_tag_header;
    Alcotest.test_case "runtime counts vcalls" `Quick test_runtime_counts_vcalls;
    Alcotest.test_case "runtime checksum" `Quick test_runtime_checksum_reflects_state;
    Alcotest.test_case "cross-technique equality" `Quick
      test_cross_technique_functional_equality;
    Alcotest.test_case "garray" `Quick test_garray;
    QCheck_alcotest.to_alcotest prop_shared_oa_address_type_consistency;
    QCheck_alcotest.to_alcotest prop_shared_oa_regions_invariant;
    QCheck_alcotest.to_alcotest prop_dyna_bitmap_consistent;
    QCheck_alcotest.to_alcotest prop_range_table_matches_linear_scan;
    QCheck_alcotest.to_alcotest prop_random_programs_technique_invariant;
    QCheck_alcotest.to_alcotest prop_diverge_group_count;
  ]
