(* Cross-layer integration tests: harness guarantees, scheduler waves,
   paper-level properties that span modules. *)

module W = Repro_workloads
module R = Repro_core
module T = R.Technique
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label
module Stats = Repro_gpu.Stats
module Device = Repro_gpu.Device
module Config = Repro_gpu.Config
module Page_store = Repro_mem.Page_store

let check = Alcotest.check

(* --- harness ------------------------------------------------------------ *)

(* A deliberately technique-dependent "workload": its result is the
   dispatch technique's name hash, so cross-technique validation must
   reject it. Guards the guard. *)
let treacherous_workload =
  let build (p : W.Workload.params) =
    let rt = R.Runtime.create ~technique:p.W.Workload.technique () in
    let impl = R.Runtime.register_impl rt ~name:"noop" (fun _ _ -> ()) in
    let t = R.Runtime.define_type rt ~name:"T" ~field_words:1 ~slots:[| impl |] () in
    ignore (R.Runtime.new_obj rt t);
    {
      W.Workload.rt;
      iterations = 1;
      run_iteration = (fun _ -> ());
      result = (fun () -> Hashtbl.hash (T.name p.W.Workload.technique));
    }
  in
  {
    W.Workload.name = "TREACHEROUS";
    suite = "test";
    description = "technique-dependent result, must be rejected";
    paper_objects = 1;
    paper_types = 1;
    build;
  }

let test_engine_identity () =
  (* The interned engine (hash-consed emission, fused emission helpers,
     fused replay) must be observationally invisible: identical result
     hash and bit-identical Stats versus the legacy engine for every
     dispatch technique. Small scale here; the full-matrix evidence at
     paper scale is bench/scale_bench.exe (BENCH_scale1.json). *)
  let w = Option.get (W.Registry.find "GOL") in
  List.iter
    (fun t ->
      let run intern =
        let p =
          { (W.Workload.default_params t) with W.Workload.scale = 0.02; intern }
        in
        let inst = w.W.Workload.build p in
        for i = 0 to inst.W.Workload.iterations - 1 do
          inst.W.Workload.run_iteration i
        done;
        let dev = R.Runtime.device inst.W.Workload.rt in
        (inst.W.Workload.result (), Stats.to_raw (Device.stats dev))
      in
      let r1, s1 = run true in
      let r0, s0 = run false in
      check Alcotest.int (T.name t ^ " result identical") r0 r1;
      check Alcotest.bool (T.name t ^ " stats bit-identical") true (s1 = s0))
    T.all_paper

let test_harness_rejects_functional_mismatch () =
  let p = W.Workload.default_params T.Shared_oa in
  match W.Harness.run_techniques treacherous_workload p [ T.Cuda; T.Coal ] with
  | _ -> Alcotest.fail "expected a functional-mismatch failure"
  | exception Failure msg ->
    check Alcotest.bool "mentions the mismatch" true
      (String.length msg > 0
       && String.sub msg 0 (min 7 (String.length msg)) = "Harness")

let test_harness_speedup_direction () =
  let w = Option.get (W.Registry.find "GEN") in
  let p = { (W.Workload.default_params T.Shared_oa) with W.Workload.scale = 0.05 } in
  let runs = W.Harness.run_techniques w p [ T.Cuda; T.Shared_oa ] in
  match runs with
  | [ (_, cuda); (_, shard) ] ->
    check Alcotest.bool "SharedOA speeds GEN up" true
      (W.Harness.speedup_vs ~baseline:cuda shard > 1.)
  | _ -> Alcotest.fail "expected two runs"

let test_workload_scaled () =
  let p = { (W.Workload.default_params T.Cuda) with W.Workload.scale = 0.5 } in
  check Alcotest.int "halves" 50 (W.Workload.scaled p 100);
  let tiny = { p with W.Workload.scale = 0.0001 } in
  check Alcotest.int "floor of one" 1 (W.Workload.scaled tiny 100)

(* --- scheduler waves ------------------------------------------------------ *)

let test_residency_waves_complete () =
  (* Launch far more warps than the device can host at once; everything
     must still execute exactly once. *)
  let heap = Page_store.create () in
  let cfg = { Config.default with Config.n_sms = 2; max_warps_per_sm = 4 } in
  let device = Device.create ~config:cfg ~heap () in
  let space = Repro_mem.Address_space.create () in
  let arena = Repro_mem.Address_space.reserve space ~name:"out" ~size:(1 lsl 20) in
  let n_threads = 32 * 64 in
  Device.launch device ~n_threads (fun ctx ->
      let tids = Warp_ctx.tids ctx in
      let addrs = Array.map (fun t -> arena.Repro_mem.Address_space.base + (8 * t)) tids in
      Warp_ctx.store ctx ~label:Label.Body addrs (Array.map (fun t -> t + 1) tids));
  let sum = ref 0 in
  for t = 0 to n_threads - 1 do
    sum := !sum + Page_store.load heap (arena.Repro_mem.Address_space.base + (8 * t))
  done;
  check Alcotest.int "every thread ran once" (n_threads * (n_threads + 1) / 2) !sum

let test_cycles_accumulate_across_launches () =
  let heap = Page_store.create () in
  let device = Device.create ~heap () in
  let kernel ctx = Warp_ctx.compute ctx ~label:Label.Body in
  Device.launch device ~n_threads:64 kernel;
  let after_one = Stats.cycles (Device.stats device) in
  Device.launch device ~n_threads:64 kernel;
  check Alcotest.bool "cycles accumulate" true
    (Stats.cycles (Device.stats device) > after_one);
  check Alcotest.int "two launches" 2 (Device.launches device)

(* --- paper-level cross-workload properties -------------------------------- *)

let tiny p = { (W.Workload.default_params T.Shared_oa) with W.Workload.scale = p }

let test_ven_has_higher_pki_than_ve () =
  (* Virtualizing the vertices adds calls: vEN's call density must exceed
     vE's (Table 2: 52.2 vs 35.9 for BFS). *)
  let pki name =
    let w = Option.get (W.Registry.find name) in
    (W.Harness.run w (tiny 0.05)).W.Harness.vfunc_pki
  in
  check Alcotest.bool "vEN > vE (BFS)" true
    (pki "GraphChi-vEN/BFS" > pki "GraphChi-vE/BFS")

let test_traffic_progresses () =
  let w = Option.get (W.Registry.find "TRAF") in
  let total_distance iterations =
    let inst = w.W.Workload.build { (tiny 0.05) with W.Workload.iterations = Some iterations } in
    for i = 0 to inst.W.Workload.iterations - 1 do
      inst.W.Workload.run_iteration i
    done;
    let rt = inst.W.Workload.rt in
    let om = R.Runtime.object_model rt in
    let heap = R.Runtime.heap rt in
    Array.fold_left
      (fun acc (ptr, typ) ->
        if R.Registry.type_name typ = "Car" then
          acc + R.Object_model.field_load_host om heap ~ptr ~field:3
        else acc)
      0
      (R.Runtime.allocations rt)
  in
  let short = total_distance 3 and long = total_distance 10 in
  check Alcotest.bool "cars keep moving" true (long > short && short > 0)

let test_footprints_reflect_allocators () =
  (* The default-CUDA model's padding must reserve several times more
     space than SharedOA for the same population (Sec. 8.2's packing). *)
  let w = Option.get (W.Registry.find "GEN") in
  let reserved technique =
    let p =
      { (tiny 0.05) with W.Workload.technique = technique; chunk_objs = Some 256 }
    in
    let r = W.Harness.run w p in
    r.W.Harness.alloc_stats.R.Allocator.reserved_bytes
  in
  let cuda = reserved T.Cuda and shard = reserved T.Shared_oa in
  check Alcotest.bool "padding costs space" true (cuda > 3 * shard)

let test_tagged_pointers_never_reach_memory () =
  (* End-to-end guard: a full TypePointer workload run must never leak a
     tagged address into the page store (the MMU strip is total). This
     passes iff every access path strips. *)
  let w = Option.get (W.Registry.find "GraphChi-vE/BFS") in
  let r = W.Harness.run w { (tiny 0.05) with W.Workload.technique = T.type_pointer } in
  check Alcotest.bool "ran" true (r.W.Harness.cycles > 0.)

let test_v100_like_config_runs () =
  let heap = Page_store.create () in
  let device = Device.create ~config:Config.v100_like ~heap () in
  Device.launch device ~n_threads:(32 * 100) (fun ctx ->
      Warp_ctx.compute ctx ~label:Label.Body);
  check Alcotest.bool "big config works" true (Stats.cycles (Device.stats device) > 0.)

let test_config_validation () =
  let bad = { Config.default with Config.issue_width = 0 } in
  Alcotest.check_raises "invalid config"
    (Invalid_argument "Config: issue_width must be positive") (fun () ->
      Config.validate bad)

let suite =
  [
    Alcotest.test_case "harness rejects mismatch" `Quick
      test_harness_rejects_functional_mismatch;
    Alcotest.test_case "engine identity across techniques" `Quick
      test_engine_identity;
    Alcotest.test_case "harness speedup direction" `Quick test_harness_speedup_direction;
    Alcotest.test_case "workload scaled" `Quick test_workload_scaled;
    Alcotest.test_case "residency waves complete" `Quick test_residency_waves_complete;
    Alcotest.test_case "cycles accumulate" `Quick test_cycles_accumulate_across_launches;
    Alcotest.test_case "vEN pki > vE pki" `Quick test_ven_has_higher_pki_than_ve;
    Alcotest.test_case "traffic progresses" `Quick test_traffic_progresses;
    Alcotest.test_case "allocator footprints" `Quick test_footprints_reflect_allocators;
    Alcotest.test_case "tagged pointers stripped end-to-end" `Quick
      test_tagged_pointers_never_reach_memory;
    Alcotest.test_case "v100-like config" `Quick test_v100_like_config_runs;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
