(* Tests for the observability layer: JSON writer/reader, the metric
   registry's coverage of Stats, per-kernel profiles, export sinks. *)

module O = Repro_obs
module Json = Repro_obs.Json
module Metric = Repro_obs.Metric
module Stats = Repro_gpu.Stats
module Label = Repro_gpu.Label
module Series = Repro_report.Series
module W = Repro_workloads
module T = Repro_core.Technique

let check = Alcotest.check

(* --- json ------------------------------------------------------------- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.Int (-42));
      ("third", Json.Float (1. /. 3.));
      ("tenth", Json.Float 0.1);
      ("whole", Json.Float 4096.);
      ("tiny", Json.Float 1.2345678901234e-12);
      ("text", Json.String "quote \" slash \\ newline \n tab \t end");
      ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x"; Json.Null ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
    ]

let test_json_round_trip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample_json) with
      | Ok parsed ->
        check Alcotest.bool
          (if pretty then "pretty round-trips" else "compact round-trips")
          true (parsed = sample_json)
      | Error msg -> Alcotest.failf "parse error: %s" msg)
    [ false; true ]

let test_json_float_exactness () =
  (* Every emitted float must parse back to the identical IEEE double. *)
  let floats =
    [ 0.1; 1. /. 3.; 1e300; 5e-324; 1.5; 0.; -0.7; 123456789.123456789 ]
  in
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) ->
        check Alcotest.bool (Printf.sprintf "%h exact" f) true (g = f)
      | Ok _ -> Alcotest.failf "%h did not parse back as a float" f
      | Error msg -> Alcotest.failf "parse error on %h: %s" f msg)
    floats

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" input)
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "+" ]

let test_json_accessors () =
  let j = sample_json in
  check Alcotest.bool "member" true (Json.member "int" j = Some (Json.Int (-42)));
  check Alcotest.bool "member missing" true (Json.member "nope" j = None);
  check Alcotest.bool "int_opt" true (Json.int_opt (Json.Int 3) = Some 3);
  check Alcotest.bool "float_opt accepts int" true
    (Json.float_opt (Json.Int 3) = Some 3.);
  check Alcotest.bool "string_opt rejects int" true
    (Json.string_opt (Json.Int 3) = None)

(* --- metric registry --------------------------------------------------- *)

let test_registry_covers_stats () =
  (* Stats.t is a record of scalar counters plus two Label-indexed
     arrays and one violation-kind-indexed array. If a counter field is
     added without a registry entry, this count goes stale and the test
     fails — the registry must stay the complete read surface. *)
  let stats_fields = Obj.size (Obj.repr (Stats.create ())) in
  check Alcotest.int "one scalar metric per scalar Stats field"
    (stats_fields - 3) (List.length Metric.scalars);
  check Alcotest.int "both per-label families over every label"
    (2 * Label.count) (List.length Metric.per_label);
  check Alcotest.int "san family covers every violation kind"
    Repro_san.Violation.kind_count
    (List.length Metric.san)

let test_registry_names_unique () =
  let names = List.map Metric.name Metric.all in
  check Alcotest.int "no duplicate metric names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  (match Metric.find "l1.hits" with
   | Some m -> check Alcotest.string "find by name" "l1.hits" (Metric.name m)
   | None -> Alcotest.fail "l1.hits not found");
  check Alcotest.bool "unknown name" true (Metric.find "no.such.metric" = None);
  check Alcotest.bool "per-label name" true
    (Metric.find "stall_cycles.vtable_load" <> None)

let test_registry_values_match_getters () =
  let s = Stats.create () in
  Stats.count_load_transactions s Label.Vtable_load 7;
  Stats.count_store_transactions s 3;
  Stats.count_l1 s ~hit:true;
  Stats.count_l1 s ~hit:false;
  Stats.add_cycles s 12.5;
  Stats.attribute_stall s Label.Call 4.25;
  check Alcotest.bool "load_transactions" true
    (Metric.value Metric.load_transactions s = Metric.Int 7);
  check Alcotest.bool "store_transactions" true
    (Metric.value Metric.store_transactions s = Metric.Int 3);
  check Alcotest.bool "cycles" true (Metric.value Metric.cycles s = Metric.Float 12.5);
  check Alcotest.bool "per-label load" true
    (Metric.value (Metric.load_transactions_for Label.Vtable_load) s = Metric.Int 7);
  check Alcotest.bool "per-label stall" true
    (Metric.value (Metric.stall_cycles Label.Call) s = Metric.Float 4.25);
  check (Alcotest.float 1e-9) "derived hit rate" 0.5
    (Metric.to_float Metric.l1_hit_rate s)

(* --- profiles ---------------------------------------------------------- *)

let traf_run =
  lazy
    (let w =
       match W.Registry.find "TRAF" with
       | Some w -> w
       | None -> Alcotest.fail "TRAF workload missing"
     in
     let params =
       { (W.Workload.default_params T.type_pointer) with W.Workload.scale = 0.03 }
     in
     W.Harness.run w params)

let profile_of (r : W.Harness.run) =
  O.Profile.make ~workload:r.W.Harness.workload
    ~technique:(T.name r.W.Harness.technique)
    ~kernel_stats:r.W.Harness.kernel_stats ~total:r.W.Harness.stats

let test_profile_deltas_sum_to_totals () =
  let r = Lazy.force traf_run in
  check Alcotest.bool "multi-kernel workload" true
    (List.length r.W.Harness.kernel_stats > 1);
  let p = profile_of r in
  (match O.Profile.consistent p with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "deltas disagree with totals: %s" msg);
  (* The cycles of the timeline sum exactly (not approximately). *)
  let summed =
    List.fold_left
      (fun acc k -> acc +. k.O.Profile.cycles)
      0. p.O.Profile.kernels
  in
  check Alcotest.bool "cycles bit-exact" true (summed = r.W.Harness.cycles)

let test_profile_detects_tampering () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  (match p.O.Profile.kernels with
   | k :: _ -> Stats.add_cycles k.O.Profile.stats 1.
   | [] -> Alcotest.fail "no kernels");
  match O.Profile.consistent p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered profile reported consistent"

let test_profile_json_round_trip () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  let json_text = Json.to_string ~pretty:true (O.Profile.to_json p) in
  match Json.of_string json_text with
  | Error msg -> Alcotest.failf "profile JSON does not parse: %s" msg
  | Ok j ->
    check Alcotest.bool "workload" true
      (Option.bind (Json.member "workload" j) Json.string_opt
       = Some r.W.Harness.workload);
    let kernels =
      match Option.bind (Json.member "kernels" j) Json.list_opt with
      | Some ks -> ks
      | None -> Alcotest.fail "kernels missing"
    in
    check Alcotest.int "one entry per launch"
      (List.length r.W.Harness.kernel_stats)
      (List.length kernels);
    (* Exported floats are exact: total cycles read back from JSON must
       equal the measured value bitwise. *)
    let total_cycles =
      Option.bind (Json.member "total" j) (fun t ->
          Option.bind (Json.member "cycles" t) Json.float_opt)
    in
    check Alcotest.bool "total cycles exact" true
      (total_cycles = Some r.W.Harness.cycles)

let test_profile_csv_shape () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  let lines =
    String.split_on_char '\n' (String.trim (O.Profile.to_csv p))
  in
  check Alcotest.string "header" "launch,metric,value" (List.hd lines);
  let n_counters = List.length Metric.counters in
  let expected =
    1
    + (n_counters * List.length r.W.Harness.kernel_stats)
    + List.length Metric.all
  in
  check Alcotest.int "rows: kernels x counters + totals" expected
    (List.length lines)

(* --- timeline (windowed sampling) -------------------------------------- *)

let telemetry_params ?(trace = false) ?(capacity = 65536) technique ~scale
    ~window =
  {
    (W.Workload.default_params technique) with
    W.Workload.scale;
    telemetry =
      Some
        { Repro_gpu.Telemetry.window = Some window; trace;
          trace_capacity = capacity };
  }

let timeline_of (r : W.Harness.run) =
  let window =
    match r.W.Harness.window with
    | Some w -> w
    | None -> Alcotest.fail "sampling was on but run has no window"
  in
  O.Timeline.make ~workload:r.W.Harness.workload
    ~technique:(T.name r.W.Harness.technique)
    ~window ~kernel_windows:r.W.Harness.kernel_windows

let test_timeline_window_sums () =
  (* The tentpole invariant: per-window deltas fold back to the
     per-kernel deltas and the run totals bit-exactly, for every
     additive counter, across the workload matrix, at two very
     different window sizes. *)
  List.iter
    (fun w ->
      List.iter
        (fun technique ->
          List.iter
            (fun window ->
              let r =
                W.Harness.run w
                  (telemetry_params technique ~scale:0.02 ~window)
              in
              let tl = timeline_of r in
              check Alcotest.int
                (Printf.sprintf "%s: one window array per launch"
                   r.W.Harness.workload)
                (List.length r.W.Harness.kernel_stats)
                (List.length tl.O.Timeline.kernels);
              match O.Timeline.consistent tl ~profile:(profile_of r) with
              | Ok () -> ()
              | Error msg ->
                Alcotest.failf "%s [%s] window=%d: %s" r.W.Harness.workload
                  (T.name technique) window msg)
            [ 256; 4096 ])
        [ T.Shared_oa; T.type_pointer ])
    W.Registry.all

let test_timeline_series_and_json () =
  let r =
    match W.Registry.find "TRAF" with
    | Some w ->
      W.Harness.run w (telemetry_params T.type_pointer ~scale:0.03 ~window:512)
    | None -> Alcotest.fail "TRAF workload missing"
  in
  let tl = timeline_of r in
  check Alcotest.bool "several windows" true (O.Timeline.n_windows tl > 4);
  (* Derived series all cover every window, grouped by start cycle. *)
  let n = O.Timeline.n_windows tl in
  List.iter
    (fun (s : Series.t) ->
      check Alcotest.int
        (Printf.sprintf "%s covers every window" s.Series.name)
        n
        (List.length s.Series.points))
    (O.Timeline.series tl);
  (* to_json parses back and keeps per-window cycles exact. *)
  match Json.of_string (Json.to_string ~pretty:true (O.Timeline.to_json tl)) with
  | Error msg -> Alcotest.failf "timeline JSON does not parse: %s" msg
  | Ok j ->
    let kernels =
      match Option.bind (Json.member "kernels" j) Json.list_opt with
      | Some ks -> ks
      | None -> Alcotest.fail "kernels missing"
    in
    check Alcotest.int "one JSON entry per launch"
      (List.length tl.O.Timeline.kernels)
      (List.length kernels)

(* --- tracer (Chrome trace-event export) -------------------------------- *)

let traced_run =
  lazy
    (match W.Registry.find "TRAF" with
     | Some w ->
       W.Harness.run w
         (telemetry_params ~trace:true T.type_pointer ~scale:0.03 ~window:512)
     | None -> Alcotest.fail "TRAF workload missing")

let dump_of (r : W.Harness.run) =
  match r.W.Harness.trace with
  | Some d -> d
  | None -> Alcotest.fail "tracing was on but run has no dump"

let test_trace_json_round_trip () =
  let r = Lazy.force traced_run in
  let dump = dump_of r in
  check Alcotest.bool "ring captured events" true
    (Array.length dump.Repro_gpu.Telemetry.events > 0);
  let json =
    O.Tracer.to_json ~timeline:(timeline_of r) ~workload:r.W.Harness.workload
      ~technique:(T.name r.W.Harness.technique) dump
  in
  match Json.of_string (Json.to_string ~pretty:true json) with
  | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  | Ok parsed ->
    check Alcotest.bool "round-trips structurally" true (parsed = json);
    (match O.Tracer.validate parsed with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "invalid Chrome trace: %s" msg);
    let events =
      match Option.bind (Json.member "traceEvents" parsed) Json.list_opt with
      | Some es -> es
      | None -> Alcotest.fail "traceEvents missing"
    in
    (* Metadata + kernel spans + ring events + counter samples. *)
    check Alcotest.bool "all events exported" true
      (List.length events
       > Array.length dump.Repro_gpu.Telemetry.events
         + List.length dump.Repro_gpu.Telemetry.kernels)

let test_trace_events_within_kernel_spans () =
  let r = Lazy.force traced_run in
  let dump = dump_of r in
  let spans = dump.Repro_gpu.Telemetry.kernels in
  check Alcotest.int "one span per launch"
    (List.length r.W.Harness.kernel_stats)
    (List.length spans);
  Array.iter
    (fun (e : Repro_gpu.Telemetry.event) ->
      let contained =
        List.exists
          (fun (k : Repro_gpu.Telemetry.kernel_span) ->
            k.Repro_gpu.Telemetry.start <= e.Repro_gpu.Telemetry.ts
            && e.Repro_gpu.Telemetry.ts +. e.Repro_gpu.Telemetry.dur
               <= k.Repro_gpu.Telemetry.start +. k.Repro_gpu.Telemetry.dur)
          spans
      in
      if not contained then
        Alcotest.failf "event (kind %d) at ts=%g dur=%g outside every kernel span"
          e.Repro_gpu.Telemetry.kind e.Repro_gpu.Telemetry.ts
          e.Repro_gpu.Telemetry.dur)
    dump.Repro_gpu.Telemetry.events

let test_trace_dropped_counter () =
  (* A deliberately tiny ring must overflow, and the spill shows up both
     in the dump and as the trace.dropped metric on the run totals. *)
  let r =
    match W.Registry.find "TRAF" with
    | Some w ->
      W.Harness.run w
        (telemetry_params ~trace:true ~capacity:64 T.type_pointer ~scale:0.03
           ~window:512)
    | None -> Alcotest.fail "TRAF workload missing"
  in
  let dump = dump_of r in
  check Alcotest.bool "tiny ring overflowed" true
    (dump.Repro_gpu.Telemetry.dropped > 0);
  check Alcotest.int "metric equals dump tally"
    dump.Repro_gpu.Telemetry.dropped
    (Stats.trace_dropped r.W.Harness.stats)

(* --- sinks ------------------------------------------------------------- *)

let test_series_json_round_trip () =
  let s =
    Series.make ~name:"fig6" ~title:"Figure 6" ~group_label:"workload"
      ~aggregate:"GM"
      [
        { Series.group = "TRAF"; series = "CUDA"; value = 0.89 };
        { Series.group = "TRAF"; series = "TP"; value = 1. /. 3. };
        { Series.group = "GM"; series = "CUDA"; value = 0.83 };
      ]
  in
  let json = O.Sink.series_to_json s in
  (match Json.of_string (Json.to_string ~pretty:true json) with
   | Ok parsed -> check Alcotest.bool "json round-trips" true (parsed = json)
   | Error msg -> Alcotest.failf "series JSON does not parse: %s" msg);
  match O.Sink.series_of_json json with
  | Ok s' -> check Alcotest.bool "series round-trips" true (s' = s)
  | Error msg -> Alcotest.failf "series_of_json: %s" msg

let test_series_of_json_rejects_garbage () =
  List.iter
    (fun j ->
      match O.Sink.series_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted malformed series JSON")
    [
      Json.Null;
      Json.Obj [ ("name", Json.String "x") ];
      Json.Obj
        [
          ("name", Json.String "x");
          ("title", Json.String "x");
          ("group_label", Json.String "g");
          ("points", Json.List [ Json.Obj [ ("group", Json.Int 3) ] ]);
        ];
    ]

let test_write_file () =
  let path = Filename.temp_file "repro_obs" ".json" in
  O.Sink.write_file ~path "{\"ok\":true}";
  let ic = open_in path in
  let contents = input_line ic in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "written" "{\"ok\":true}" contents

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json float exactness" `Quick test_json_float_exactness;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "registry covers every Stats field" `Quick
      test_registry_covers_stats;
    Alcotest.test_case "registry names unique" `Quick test_registry_names_unique;
    Alcotest.test_case "registry find" `Quick test_registry_find;
    Alcotest.test_case "registry values match getters" `Quick
      test_registry_values_match_getters;
    Alcotest.test_case "profile deltas sum to totals" `Quick
      test_profile_deltas_sum_to_totals;
    Alcotest.test_case "profile detects tampering" `Quick
      test_profile_detects_tampering;
    Alcotest.test_case "profile json round trip" `Quick
      test_profile_json_round_trip;
    Alcotest.test_case "profile csv shape" `Quick test_profile_csv_shape;
    Alcotest.test_case "timeline window sums are bit-exact" `Slow
      test_timeline_window_sums;
    Alcotest.test_case "timeline series and json" `Quick
      test_timeline_series_and_json;
    Alcotest.test_case "trace json round trip" `Quick test_trace_json_round_trip;
    Alcotest.test_case "trace events within kernel spans" `Quick
      test_trace_events_within_kernel_spans;
    Alcotest.test_case "trace dropped counter" `Quick test_trace_dropped_counter;
    Alcotest.test_case "series json round trip" `Quick test_series_json_round_trip;
    Alcotest.test_case "series json rejects garbage" `Quick
      test_series_of_json_rejects_garbage;
    Alcotest.test_case "sink write file" `Quick test_write_file;
  ]
