(* Tests for the observability layer: JSON writer/reader, the metric
   registry's coverage of Stats, per-kernel profiles, export sinks. *)

module O = Repro_obs
module Json = Repro_obs.Json
module Metric = Repro_obs.Metric
module Stats = Repro_gpu.Stats
module Label = Repro_gpu.Label
module Series = Repro_report.Series
module W = Repro_workloads
module T = Repro_core.Technique

let check = Alcotest.check

(* --- json ------------------------------------------------------------- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.Int (-42));
      ("third", Json.Float (1. /. 3.));
      ("tenth", Json.Float 0.1);
      ("whole", Json.Float 4096.);
      ("tiny", Json.Float 1.2345678901234e-12);
      ("text", Json.String "quote \" slash \\ newline \n tab \t end");
      ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x"; Json.Null ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
    ]

let test_json_round_trip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample_json) with
      | Ok parsed ->
        check Alcotest.bool
          (if pretty then "pretty round-trips" else "compact round-trips")
          true (parsed = sample_json)
      | Error msg -> Alcotest.failf "parse error: %s" msg)
    [ false; true ]

let test_json_float_exactness () =
  (* Every emitted float must parse back to the identical IEEE double. *)
  let floats =
    [ 0.1; 1. /. 3.; 1e300; 5e-324; 1.5; 0.; -0.7; 123456789.123456789 ]
  in
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) ->
        check Alcotest.bool (Printf.sprintf "%h exact" f) true (g = f)
      | Ok _ -> Alcotest.failf "%h did not parse back as a float" f
      | Error msg -> Alcotest.failf "parse error on %h: %s" f msg)
    floats

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" input)
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "+" ]

let test_json_accessors () =
  let j = sample_json in
  check Alcotest.bool "member" true (Json.member "int" j = Some (Json.Int (-42)));
  check Alcotest.bool "member missing" true (Json.member "nope" j = None);
  check Alcotest.bool "int_opt" true (Json.int_opt (Json.Int 3) = Some 3);
  check Alcotest.bool "float_opt accepts int" true
    (Json.float_opt (Json.Int 3) = Some 3.);
  check Alcotest.bool "string_opt rejects int" true
    (Json.string_opt (Json.Int 3) = None)

(* --- metric registry --------------------------------------------------- *)

let test_registry_covers_stats () =
  (* Stats.t is a record of scalar counters plus two Label-indexed
     arrays and one violation-kind-indexed array. If a counter field is
     added without a registry entry, this count goes stale and the test
     fails — the registry must stay the complete read surface. *)
  let stats_fields = Obj.size (Obj.repr (Stats.create ())) in
  check Alcotest.int "one scalar metric per scalar Stats field"
    (stats_fields - 3) (List.length Metric.scalars);
  check Alcotest.int "both per-label families over every label"
    (2 * Label.count) (List.length Metric.per_label);
  check Alcotest.int "san family covers every violation kind"
    Repro_san.Violation.kind_count
    (List.length Metric.san)

let test_registry_names_unique () =
  let names = List.map Metric.name Metric.all in
  check Alcotest.int "no duplicate metric names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  (match Metric.find "l1.hits" with
   | Some m -> check Alcotest.string "find by name" "l1.hits" (Metric.name m)
   | None -> Alcotest.fail "l1.hits not found");
  check Alcotest.bool "unknown name" true (Metric.find "no.such.metric" = None);
  check Alcotest.bool "per-label name" true
    (Metric.find "stall_cycles.vtable_load" <> None)

let test_registry_values_match_getters () =
  let s = Stats.create () in
  Stats.count_load_transactions s Label.Vtable_load 7;
  Stats.count_store_transactions s 3;
  Stats.count_l1 s ~hit:true;
  Stats.count_l1 s ~hit:false;
  Stats.add_cycles s 12.5;
  Stats.attribute_stall s Label.Call 4.25;
  check Alcotest.bool "load_transactions" true
    (Metric.value Metric.load_transactions s = Metric.Int 7);
  check Alcotest.bool "store_transactions" true
    (Metric.value Metric.store_transactions s = Metric.Int 3);
  check Alcotest.bool "cycles" true (Metric.value Metric.cycles s = Metric.Float 12.5);
  check Alcotest.bool "per-label load" true
    (Metric.value (Metric.load_transactions_for Label.Vtable_load) s = Metric.Int 7);
  check Alcotest.bool "per-label stall" true
    (Metric.value (Metric.stall_cycles Label.Call) s = Metric.Float 4.25);
  check (Alcotest.float 1e-9) "derived hit rate" 0.5
    (Metric.to_float Metric.l1_hit_rate s)

(* --- profiles ---------------------------------------------------------- *)

let traf_run =
  lazy
    (let w =
       match W.Registry.find "TRAF" with
       | Some w -> w
       | None -> Alcotest.fail "TRAF workload missing"
     in
     let params =
       { (W.Workload.default_params T.type_pointer) with W.Workload.scale = 0.03 }
     in
     W.Harness.run w params)

let profile_of (r : W.Harness.run) =
  O.Profile.make ~workload:r.W.Harness.workload
    ~technique:(T.name r.W.Harness.technique)
    ~kernel_stats:r.W.Harness.kernel_stats ~total:r.W.Harness.stats

let test_profile_deltas_sum_to_totals () =
  let r = Lazy.force traf_run in
  check Alcotest.bool "multi-kernel workload" true
    (List.length r.W.Harness.kernel_stats > 1);
  let p = profile_of r in
  (match O.Profile.consistent p with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "deltas disagree with totals: %s" msg);
  (* The cycles of the timeline sum exactly (not approximately). *)
  let summed =
    List.fold_left
      (fun acc k -> acc +. k.O.Profile.cycles)
      0. p.O.Profile.kernels
  in
  check Alcotest.bool "cycles bit-exact" true (summed = r.W.Harness.cycles)

let test_profile_detects_tampering () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  (match p.O.Profile.kernels with
   | k :: _ -> Stats.add_cycles k.O.Profile.stats 1.
   | [] -> Alcotest.fail "no kernels");
  match O.Profile.consistent p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered profile reported consistent"

let test_profile_json_round_trip () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  let json_text = Json.to_string ~pretty:true (O.Profile.to_json p) in
  match Json.of_string json_text with
  | Error msg -> Alcotest.failf "profile JSON does not parse: %s" msg
  | Ok j ->
    check Alcotest.bool "workload" true
      (Option.bind (Json.member "workload" j) Json.string_opt
       = Some r.W.Harness.workload);
    let kernels =
      match Option.bind (Json.member "kernels" j) Json.list_opt with
      | Some ks -> ks
      | None -> Alcotest.fail "kernels missing"
    in
    check Alcotest.int "one entry per launch"
      (List.length r.W.Harness.kernel_stats)
      (List.length kernels);
    (* Exported floats are exact: total cycles read back from JSON must
       equal the measured value bitwise. *)
    let total_cycles =
      Option.bind (Json.member "total" j) (fun t ->
          Option.bind (Json.member "cycles" t) Json.float_opt)
    in
    check Alcotest.bool "total cycles exact" true
      (total_cycles = Some r.W.Harness.cycles)

let test_profile_csv_shape () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  let lines =
    String.split_on_char '\n' (String.trim (O.Profile.to_csv p))
  in
  check Alcotest.string "header" "launch,metric,value" (List.hd lines);
  let n_counters = List.length Metric.counters in
  let expected =
    1
    + (n_counters * List.length r.W.Harness.kernel_stats)
    + List.length Metric.all
  in
  check Alcotest.int "rows: kernels x counters + totals" expected
    (List.length lines)

(* --- sinks ------------------------------------------------------------- *)

let test_series_json_round_trip () =
  let s =
    Series.make ~name:"fig6" ~title:"Figure 6" ~group_label:"workload"
      ~aggregate:"GM"
      [
        { Series.group = "TRAF"; series = "CUDA"; value = 0.89 };
        { Series.group = "TRAF"; series = "TP"; value = 1. /. 3. };
        { Series.group = "GM"; series = "CUDA"; value = 0.83 };
      ]
  in
  let json = O.Sink.series_to_json s in
  (match Json.of_string (Json.to_string ~pretty:true json) with
   | Ok parsed -> check Alcotest.bool "json round-trips" true (parsed = json)
   | Error msg -> Alcotest.failf "series JSON does not parse: %s" msg);
  match O.Sink.series_of_json json with
  | Ok s' -> check Alcotest.bool "series round-trips" true (s' = s)
  | Error msg -> Alcotest.failf "series_of_json: %s" msg

let test_series_of_json_rejects_garbage () =
  List.iter
    (fun j ->
      match O.Sink.series_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted malformed series JSON")
    [
      Json.Null;
      Json.Obj [ ("name", Json.String "x") ];
      Json.Obj
        [
          ("name", Json.String "x");
          ("title", Json.String "x");
          ("group_label", Json.String "g");
          ("points", Json.List [ Json.Obj [ ("group", Json.Int 3) ] ]);
        ];
    ]

let test_write_file () =
  let path = Filename.temp_file "repro_obs" ".json" in
  O.Sink.write_file ~path "{\"ok\":true}";
  let ic = open_in path in
  let contents = input_line ic in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "written" "{\"ok\":true}" contents

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json float exactness" `Quick test_json_float_exactness;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "registry covers every Stats field" `Quick
      test_registry_covers_stats;
    Alcotest.test_case "registry names unique" `Quick test_registry_names_unique;
    Alcotest.test_case "registry find" `Quick test_registry_find;
    Alcotest.test_case "registry values match getters" `Quick
      test_registry_values_match_getters;
    Alcotest.test_case "profile deltas sum to totals" `Quick
      test_profile_deltas_sum_to_totals;
    Alcotest.test_case "profile detects tampering" `Quick
      test_profile_detects_tampering;
    Alcotest.test_case "profile json round trip" `Quick
      test_profile_json_round_trip;
    Alcotest.test_case "profile csv shape" `Quick test_profile_csv_shape;
    Alcotest.test_case "series json round trip" `Quick test_series_json_round_trip;
    Alcotest.test_case "series json rejects garbage" `Quick
      test_series_of_json_rejects_garbage;
    Alcotest.test_case "sink write file" `Quick test_write_file;
  ]
