(* Tests for the observability layer: JSON writer/reader, the metric
   registry's coverage of Stats, per-kernel profiles, export sinks. *)

module O = Repro_obs
module Json = Repro_obs.Json
module Metric = Repro_obs.Metric
module Stats = Repro_gpu.Stats
module Label = Repro_gpu.Label
module Series = Repro_report.Series
module W = Repro_workloads
module T = Repro_core.Technique

let check = Alcotest.check

(* --- json ------------------------------------------------------------- *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.Int (-42));
      ("third", Json.Float (1. /. 3.));
      ("tenth", Json.Float 0.1);
      ("whole", Json.Float 4096.);
      ("tiny", Json.Float 1.2345678901234e-12);
      ("text", Json.String "quote \" slash \\ newline \n tab \t end");
      ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x"; Json.Null ]);
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
    ]

let test_json_round_trip () =
  List.iter
    (fun pretty ->
      match Json.of_string (Json.to_string ~pretty sample_json) with
      | Ok parsed ->
        check Alcotest.bool
          (if pretty then "pretty round-trips" else "compact round-trips")
          true (parsed = sample_json)
      | Error msg -> Alcotest.failf "parse error: %s" msg)
    [ false; true ]

let test_json_float_exactness () =
  (* Every emitted float must parse back to the identical IEEE double. *)
  let floats =
    [ 0.1; 1. /. 3.; 1e300; 5e-324; 1.5; 0.; -0.7; 123456789.123456789 ]
  in
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) ->
        check Alcotest.bool (Printf.sprintf "%h exact" f) true (g = f)
      | Ok _ -> Alcotest.failf "%h did not parse back as a float" f
      | Error msg -> Alcotest.failf "parse error on %h: %s" f msg)
    floats

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed input %S" input)
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "+" ]

let test_json_accessors () =
  let j = sample_json in
  check Alcotest.bool "member" true (Json.member "int" j = Some (Json.Int (-42)));
  check Alcotest.bool "member missing" true (Json.member "nope" j = None);
  check Alcotest.bool "int_opt" true (Json.int_opt (Json.Int 3) = Some 3);
  check Alcotest.bool "float_opt accepts int" true
    (Json.float_opt (Json.Int 3) = Some 3.);
  check Alcotest.bool "string_opt rejects int" true
    (Json.string_opt (Json.Int 3) = None)

(* --- metric registry --------------------------------------------------- *)

let test_registry_covers_stats () =
  (* Stats.t is a record of scalar counters plus two Label-indexed
     arrays and one violation-kind-indexed array. If a counter field is
     added without a registry entry, this count goes stale and the test
     fails — the registry must stay the complete read surface. *)
  let stats_fields = Obj.size (Obj.repr (Stats.create ())) in
  check Alcotest.int "one scalar metric per scalar Stats field"
    (stats_fields - 3) (List.length Metric.scalars);
  check Alcotest.int "both per-label families over every label"
    (2 * Label.count) (List.length Metric.per_label);
  check Alcotest.int "san family covers every violation kind"
    Repro_san.Violation.kind_count
    (List.length Metric.san)

let test_registry_names_unique () =
  let names = List.map Metric.name Metric.all in
  check Alcotest.int "no duplicate metric names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_registry_find () =
  (match Metric.find "l1.hits" with
   | Some m -> check Alcotest.string "find by name" "l1.hits" (Metric.name m)
   | None -> Alcotest.fail "l1.hits not found");
  check Alcotest.bool "unknown name" true (Metric.find "no.such.metric" = None);
  check Alcotest.bool "per-label name" true
    (Metric.find "stall_cycles.vtable_load" <> None)

let test_registry_values_match_getters () =
  let s = Stats.create () in
  Stats.count_load_transactions s Label.Vtable_load 7;
  Stats.count_store_transactions s 3;
  Stats.count_l1 s ~hit:true;
  Stats.count_l1 s ~hit:false;
  Stats.add_cycles s 12.5;
  Stats.attribute_stall s Label.Call 4.25;
  check Alcotest.bool "load_transactions" true
    (Metric.value Metric.load_transactions s = Metric.Int 7);
  check Alcotest.bool "store_transactions" true
    (Metric.value Metric.store_transactions s = Metric.Int 3);
  check Alcotest.bool "cycles" true (Metric.value Metric.cycles s = Metric.Float 12.5);
  check Alcotest.bool "per-label load" true
    (Metric.value (Metric.load_transactions_for Label.Vtable_load) s = Metric.Int 7);
  check Alcotest.bool "per-label stall" true
    (Metric.value (Metric.stall_cycles Label.Call) s = Metric.Float 4.25);
  check (Alcotest.float 1e-9) "derived hit rate" 0.5
    (Metric.to_float Metric.l1_hit_rate s)

(* --- profiles ---------------------------------------------------------- *)

let traf_run =
  lazy
    (let w =
       match W.Registry.find "TRAF" with
       | Some w -> w
       | None -> Alcotest.fail "TRAF workload missing"
     in
     let params =
       { (W.Workload.default_params T.type_pointer) with W.Workload.scale = 0.03 }
     in
     W.Harness.run w params)

let profile_of (r : W.Harness.run) =
  O.Profile.make ~workload:r.W.Harness.workload
    ~technique:(T.name r.W.Harness.technique)
    ~kernel_stats:r.W.Harness.kernel_stats ~total:r.W.Harness.stats

let test_profile_deltas_sum_to_totals () =
  let r = Lazy.force traf_run in
  check Alcotest.bool "multi-kernel workload" true
    (List.length r.W.Harness.kernel_stats > 1);
  let p = profile_of r in
  (match O.Profile.consistent p with
   | Ok () -> ()
   | Error msg -> Alcotest.failf "deltas disagree with totals: %s" msg);
  (* The cycles of the timeline sum exactly (not approximately). *)
  let summed =
    List.fold_left
      (fun acc k -> acc +. k.O.Profile.cycles)
      0. p.O.Profile.kernels
  in
  check Alcotest.bool "cycles bit-exact" true (summed = r.W.Harness.cycles)

let test_profile_detects_tampering () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  (match p.O.Profile.kernels with
   | k :: _ -> Stats.add_cycles k.O.Profile.stats 1.
   | [] -> Alcotest.fail "no kernels");
  match O.Profile.consistent p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered profile reported consistent"

let test_profile_json_round_trip () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  let json_text = Json.to_string ~pretty:true (O.Profile.to_json p) in
  match Json.of_string json_text with
  | Error msg -> Alcotest.failf "profile JSON does not parse: %s" msg
  | Ok j ->
    check Alcotest.bool "workload" true
      (Option.bind (Json.member "workload" j) Json.string_opt
       = Some r.W.Harness.workload);
    let kernels =
      match Option.bind (Json.member "kernels" j) Json.list_opt with
      | Some ks -> ks
      | None -> Alcotest.fail "kernels missing"
    in
    check Alcotest.int "one entry per launch"
      (List.length r.W.Harness.kernel_stats)
      (List.length kernels);
    (* Exported floats are exact: total cycles read back from JSON must
       equal the measured value bitwise. *)
    let total_cycles =
      Option.bind (Json.member "total" j) (fun t ->
          Option.bind (Json.member "cycles" t) Json.float_opt)
    in
    check Alcotest.bool "total cycles exact" true
      (total_cycles = Some r.W.Harness.cycles)

let test_profile_csv_shape () =
  let r = Lazy.force traf_run in
  let p = profile_of r in
  let lines =
    String.split_on_char '\n' (String.trim (O.Profile.to_csv p))
  in
  check Alcotest.string "header" "launch,metric,value" (List.hd lines);
  let n_counters = List.length Metric.counters in
  let expected =
    1
    + (n_counters * List.length r.W.Harness.kernel_stats)
    + List.length Metric.all
  in
  check Alcotest.int "rows: kernels x counters + totals" expected
    (List.length lines)

(* --- timeline (windowed sampling) -------------------------------------- *)

let telemetry_params ?(trace = false) ?(capacity = 65536) technique ~scale
    ~window =
  {
    (W.Workload.default_params technique) with
    W.Workload.scale;
    telemetry =
      Some
        { Repro_gpu.Telemetry.window = Some window; trace;
          trace_capacity = capacity };
  }

let timeline_of (r : W.Harness.run) =
  let window =
    match r.W.Harness.window with
    | Some w -> w
    | None -> Alcotest.fail "sampling was on but run has no window"
  in
  O.Timeline.make ~workload:r.W.Harness.workload
    ~technique:(T.name r.W.Harness.technique)
    ~window ~kernel_windows:r.W.Harness.kernel_windows

let test_timeline_window_sums () =
  (* The tentpole invariant: per-window deltas fold back to the
     per-kernel deltas and the run totals bit-exactly, for every
     additive counter, across the workload matrix, at two very
     different window sizes. *)
  List.iter
    (fun w ->
      List.iter
        (fun technique ->
          List.iter
            (fun window ->
              let r =
                W.Harness.run w
                  (telemetry_params technique ~scale:0.02 ~window)
              in
              let tl = timeline_of r in
              check Alcotest.int
                (Printf.sprintf "%s: one window array per launch"
                   r.W.Harness.workload)
                (List.length r.W.Harness.kernel_stats)
                (List.length tl.O.Timeline.kernels);
              match O.Timeline.consistent tl ~profile:(profile_of r) with
              | Ok () -> ()
              | Error msg ->
                Alcotest.failf "%s [%s] window=%d: %s" r.W.Harness.workload
                  (T.name technique) window msg)
            [ 256; 4096 ])
        [ T.Shared_oa; T.type_pointer ])
    W.Registry.all

let test_timeline_series_and_json () =
  let r =
    match W.Registry.find "TRAF" with
    | Some w ->
      W.Harness.run w (telemetry_params T.type_pointer ~scale:0.03 ~window:512)
    | None -> Alcotest.fail "TRAF workload missing"
  in
  let tl = timeline_of r in
  check Alcotest.bool "several windows" true (O.Timeline.n_windows tl > 4);
  (* Derived series all cover every window, grouped by start cycle. *)
  let n = O.Timeline.n_windows tl in
  List.iter
    (fun (s : Series.t) ->
      check Alcotest.int
        (Printf.sprintf "%s covers every window" s.Series.name)
        n
        (List.length s.Series.points))
    (O.Timeline.series tl);
  (* to_json parses back and keeps per-window cycles exact. *)
  match Json.of_string (Json.to_string ~pretty:true (O.Timeline.to_json tl)) with
  | Error msg -> Alcotest.failf "timeline JSON does not parse: %s" msg
  | Ok j ->
    let kernels =
      match Option.bind (Json.member "kernels" j) Json.list_opt with
      | Some ks -> ks
      | None -> Alcotest.fail "kernels missing"
    in
    check Alcotest.int "one JSON entry per launch"
      (List.length tl.O.Timeline.kernels)
      (List.length kernels)

(* --- tracer (Chrome trace-event export) -------------------------------- *)

let traced_run =
  lazy
    (match W.Registry.find "TRAF" with
     | Some w ->
       W.Harness.run w
         (telemetry_params ~trace:true T.type_pointer ~scale:0.03 ~window:512)
     | None -> Alcotest.fail "TRAF workload missing")

let dump_of (r : W.Harness.run) =
  match r.W.Harness.trace with
  | Some d -> d
  | None -> Alcotest.fail "tracing was on but run has no dump"

let test_trace_json_round_trip () =
  let r = Lazy.force traced_run in
  let dump = dump_of r in
  check Alcotest.bool "ring captured events" true
    (Array.length dump.Repro_gpu.Telemetry.events > 0);
  let json =
    O.Tracer.to_json ~timeline:(timeline_of r) ~workload:r.W.Harness.workload
      ~technique:(T.name r.W.Harness.technique) dump
  in
  match Json.of_string (Json.to_string ~pretty:true json) with
  | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  | Ok parsed ->
    check Alcotest.bool "round-trips structurally" true (parsed = json);
    (match O.Tracer.validate parsed with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "invalid Chrome trace: %s" msg);
    let events =
      match Option.bind (Json.member "traceEvents" parsed) Json.list_opt with
      | Some es -> es
      | None -> Alcotest.fail "traceEvents missing"
    in
    (* Metadata + kernel spans + ring events + counter samples. *)
    check Alcotest.bool "all events exported" true
      (List.length events
       > Array.length dump.Repro_gpu.Telemetry.events
         + List.length dump.Repro_gpu.Telemetry.kernels)

let test_trace_events_within_kernel_spans () =
  let r = Lazy.force traced_run in
  let dump = dump_of r in
  let spans = dump.Repro_gpu.Telemetry.kernels in
  check Alcotest.int "one span per launch"
    (List.length r.W.Harness.kernel_stats)
    (List.length spans);
  Array.iter
    (fun (e : Repro_gpu.Telemetry.event) ->
      let contained =
        List.exists
          (fun (k : Repro_gpu.Telemetry.kernel_span) ->
            k.Repro_gpu.Telemetry.start <= e.Repro_gpu.Telemetry.ts
            && e.Repro_gpu.Telemetry.ts +. e.Repro_gpu.Telemetry.dur
               <= k.Repro_gpu.Telemetry.start +. k.Repro_gpu.Telemetry.dur)
          spans
      in
      if not contained then
        Alcotest.failf "event (kind %d) at ts=%g dur=%g outside every kernel span"
          e.Repro_gpu.Telemetry.kind e.Repro_gpu.Telemetry.ts
          e.Repro_gpu.Telemetry.dur)
    dump.Repro_gpu.Telemetry.events

let test_trace_dropped_counter () =
  (* A deliberately tiny ring must overflow, and the spill shows up both
     in the dump and as the trace.dropped metric on the run totals. *)
  let r =
    match W.Registry.find "TRAF" with
    | Some w ->
      W.Harness.run w
        (telemetry_params ~trace:true ~capacity:64 T.type_pointer ~scale:0.03
           ~window:512)
    | None -> Alcotest.fail "TRAF workload missing"
  in
  let dump = dump_of r in
  check Alcotest.bool "tiny ring overflowed" true
    (dump.Repro_gpu.Telemetry.dropped > 0);
  check Alcotest.int "metric equals dump tally"
    dump.Repro_gpu.Telemetry.dropped
    (Stats.trace_dropped r.W.Harness.stats)

(* --- sinks ------------------------------------------------------------- *)

let test_series_json_round_trip () =
  let s =
    Series.make ~name:"fig6" ~title:"Figure 6" ~group_label:"workload"
      ~aggregate:"GM"
      [
        { Series.group = "TRAF"; series = "CUDA"; value = 0.89 };
        { Series.group = "TRAF"; series = "TP"; value = 1. /. 3. };
        { Series.group = "GM"; series = "CUDA"; value = 0.83 };
      ]
  in
  let json = O.Sink.series_to_json s in
  (match Json.of_string (Json.to_string ~pretty:true json) with
   | Ok parsed -> check Alcotest.bool "json round-trips" true (parsed = json)
   | Error msg -> Alcotest.failf "series JSON does not parse: %s" msg);
  match O.Sink.series_of_json json with
  | Ok s' -> check Alcotest.bool "series round-trips" true (s' = s)
  | Error msg -> Alcotest.failf "series_of_json: %s" msg

let test_series_of_json_rejects_garbage () =
  List.iter
    (fun j ->
      match O.Sink.series_of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted malformed series JSON")
    [
      Json.Null;
      Json.Obj [ ("name", Json.String "x") ];
      Json.Obj
        [
          ("name", Json.String "x");
          ("title", Json.String "x");
          ("group_label", Json.String "g");
          ("points", Json.List [ Json.Obj [ ("group", Json.Int 3) ] ]);
        ];
    ]

let test_write_file () =
  let path = Filename.temp_file "repro_obs" ".json" in
  O.Sink.write_file ~path "{\"ok\":true}";
  let ic = open_in path in
  let contents = input_line ic in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "written" "{\"ok\":true}" contents

(* --- service latency histograms ---------------------------------------- *)

module Hist = O.Hist

(* Spans the layout: below [lo] (bucket 0), mid-range latencies, the
   far tail, and exact zero. *)
let hist_sample_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.float_range 0. 2e-6;
      QCheck.Gen.float_range 0. 0.5;
      QCheck.Gen.float_range 0. 5000.;
      QCheck.Gen.return 0.;
      QCheck.Gen.return 1e9;
    ]

let hist_samples_gen n = QCheck.Gen.(list_size (int_range 0 n) hist_sample_gen)

let hist_of_samples samples =
  let h = Hist.create () in
  List.iter (Hist.record h) samples;
  h

(* Integer components and extremes combine exactly; only sums are
   subject to float rounding under re-association. *)
let hist_int_equal a b =
  Hist.count a = Hist.count b
  && Hist.min_value a = Hist.min_value b
  && Hist.max_value a = Hist.max_value b
  &&
  let rec go i =
    i >= Hist.buckets
    || (Hist.bucket_count a i = Hist.bucket_count b i && go (i + 1))
  in
  go 0

let hist_merge_commutes =
  QCheck.Test.make ~count:100 ~name:"hist merge commutes"
    (QCheck.make QCheck.Gen.(pair (hist_samples_gen 40) (hist_samples_gen 40)))
    (fun (xs, ys) ->
      let a = hist_of_samples xs and b = hist_of_samples ys in
      Hist.equal (Hist.merge a b) (Hist.merge b a))

let hist_merge_associates =
  QCheck.Test.make ~count:100 ~name:"hist merge associates"
    (QCheck.make
       QCheck.Gen.(
         triple (hist_samples_gen 30) (hist_samples_gen 30)
           (hist_samples_gen 30)))
    (fun (xs, ys, zs) ->
      let a = hist_of_samples xs
      and b = hist_of_samples ys
      and c = hist_of_samples zs in
      let l = Hist.merge (Hist.merge a b) c
      and r = Hist.merge a (Hist.merge b c) in
      hist_int_equal l r
      && abs_float (Hist.sum l -. Hist.sum r)
         <= 1e-9 *. (abs_float (Hist.sum l) +. 1.))

let hist_quantile_monotone =
  QCheck.Test.make ~count:100 ~name:"hist quantile monotone in q"
    (QCheck.make
       QCheck.Gen.(
         triple
           (list_size (int_range 1 60) hist_sample_gen)
           (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, q1, q2) ->
      let h = hist_of_samples xs in
      let qlo = min q1 q2 and qhi = max q1 q2 in
      match (Hist.quantile h qlo, Hist.quantile h qhi) with
      | Some (l1, u1), Some (l2, u2) -> l1 <= l2 && u1 <= u2
      | _ -> false)

let hist_value_within_bucket =
  QCheck.Test.make ~count:200
    ~name:"hist recorded value lies within its bucket bounds"
    (QCheck.make hist_sample_gen)
    (fun v ->
      let h = Hist.create () in
      Hist.record h v;
      let rec find i =
        if i >= Hist.buckets then None
        else if Hist.bucket_count h i = 1 then Some i
        else find (i + 1)
      in
      match find 0 with
      | None -> false
      | Some i ->
        let lo, hi = Hist.bucket_bounds i in
        lo <= v && v < hi)

let test_hist_basics () =
  let h = Hist.create () in
  check Alcotest.bool "empty quantile is None" true (Hist.quantile h 0.5 = None);
  check (Alcotest.float 0.) "empty mean" 0. (Hist.mean h);
  List.iter (Hist.record h) [ 0.004; 0.002; 0.008; 0.001 ];
  check Alcotest.int "count" 4 (Hist.count h);
  check (Alcotest.float 1e-12) "sum is exact" 0.015 (Hist.sum h);
  check (Alcotest.float 1e-12) "min is exact" 0.001 (Hist.min_value h);
  check (Alcotest.float 1e-12) "max is exact" 0.008 (Hist.max_value h);
  (match Hist.quantile h 1.0 with
   | Some (lo, hi) ->
     check Alcotest.bool "p100 bracket holds the max" true
       (lo <= 0.008 && 0.008 <= hi)
   | None -> Alcotest.fail "p100 of a non-empty histogram");
  (match Hist.quantile h 0.0 with
   | Some (lo, _) ->
     check Alcotest.bool "p0 clamps to the min" true (lo >= 0.001)
   | None -> Alcotest.fail "p0 of a non-empty histogram");
  Hist.record h (-5.);
  check (Alcotest.float 0.) "negative samples clamp to 0" 0.
    (Hist.min_value h);
  Hist.record h nan;
  check Alcotest.int "NaN recorded (as 0), not lost" 6 (Hist.count h);
  let snap = Hist.copy h in
  Hist.record h 1.0;
  check Alcotest.int "copy is a snapshot" 6 (Hist.count snap);
  Hist.clear h;
  check Alcotest.int "clear empties" 0 (Hist.count h)

let test_hist_json_round_trip () =
  let h = hist_of_samples [ 0.; 1e-7; 0.004; 0.004; 0.25; 3600.; 1e9 ] in
  let text = Json.to_string (Hist.to_json h) in
  match Json.of_string text with
  | Error msg -> Alcotest.failf "hist JSON does not parse: %s" msg
  | Ok j -> (
    match Json.Decode.run Hist.decoder j with
    | Error msg -> Alcotest.failf "hist does not decode: %s" msg
    | Ok h' ->
      check Alcotest.bool "observable state survives" true (Hist.equal h h');
      check Alcotest.string "byte-identical re-encoding" text
        (Json.to_string (Hist.to_json h')))

(* --- service metrics registry ------------------------------------------- *)

module Svc = O.Svc_metrics

let test_svc_registry_covers_snapshot () =
  (* Same discipline as the Stats registry above: a counter added to the
     snapshot without a registry entry fails this count. *)
  let fields = Obj.size (Obj.repr Svc.zero) in
  check Alcotest.int "one metric per snapshot field" fields
    (List.length Svc.all);
  let names = List.map Svc.name Svc.all in
  check Alcotest.int "no duplicate ids" (List.length names)
    (List.length (List.sort_uniq compare names));
  (match Svc.find "cache.stampede_avoided" with
   | Some m ->
     check Alcotest.string "find by id" "cache.stampede_avoided" (Svc.name m)
   | None -> Alcotest.fail "cache.stampede_avoided not registered");
  check Alcotest.bool "unknown id" true (Svc.find "no.such.metric" = None)

let sample_svc_snapshot () =
  let m = Svc.create () in
  m.Svc.submitted <- 11;
  m.Svc.executed <- 7;
  m.Svc.dedup_hits <- 3;
  m.Svc.cache_hits <- 2;
  m.Svc.cache_misses <- 5;
  m.Svc.stampede_avoided <- 1;
  m.Svc.requests <- 20;
  m.Svc.slow_requests <- 2;
  m.Svc.responses <- 31;
  m.Svc.decode_errors <- 1;
  m.Svc.bytes_in <- 4096;
  m.Svc.bytes_out <- 8192;
  m.Svc.worker_busy_s <- 2.5;
  Svc.snapshot m ~sessions:3 ~queue_depth:4 ~inflight:5 ~running:2

let test_svc_values_and_json () =
  let s = sample_svc_snapshot () in
  let get id =
    match Svc.find id with
    | Some m -> Svc.value m s
    | None -> Alcotest.failf "%s not registered" id
  in
  check Alcotest.bool "jobs.submitted" true (get "jobs.submitted" = Svc.Int 11);
  check Alcotest.bool "requests.slow" true (get "requests.slow" = Svc.Int 2);
  check Alcotest.bool "worker.busy_s is a float" true
    (get "worker.busy_s" = Svc.Float 2.5);
  check Alcotest.bool "queue.depth" true (get "queue.depth" = Svc.Int 4);
  (match Svc.find "queue.depth" with
   | Some m -> check Alcotest.bool "gauges marked" true (Svc.kind m = Svc.Gauge)
   | None -> Alcotest.fail "queue.depth not registered");
  (match Svc.find "jobs.submitted" with
   | Some m ->
     check Alcotest.bool "counters marked" true (Svc.kind m = Svc.Counter)
   | None -> Alcotest.fail "jobs.submitted not registered");
  let text = Json.to_string (Svc.to_json s) in
  (match Json.of_string text with
   | Error msg -> Alcotest.failf "snapshot JSON does not parse: %s" msg
   | Ok j -> (
     match Json.Decode.run Svc.decoder j with
     | Error msg -> Alcotest.failf "snapshot does not decode: %s" msg
     | Ok s' ->
       check Alcotest.bool "snapshot survives" true (s = s');
       check Alcotest.string "byte-identical re-encoding" text
         (Json.to_string (Svc.to_json s'))));
  (* The decoder is lenient: a snapshot from an older daemon (missing
     ids) reads as zeros rather than failing. *)
  match Json.Decode.run Svc.decoder (Json.Obj []) with
  | Ok z -> check Alcotest.bool "missing ids default to zero" true (z = Svc.zero)
  | Error msg -> Alcotest.failf "empty object rejected: %s" msg

(* --- structured logging -------------------------------------------------- *)

let test_log_lines_exact () =
  let lines = ref [] in
  let t = ref 0.0 in
  let log =
    O.Log.make ~level:O.Log.Debug
      ~now:(fun () -> t := !t +. 0.5; !t)
      ~write:(fun line -> lines := line :: !lines)
      ()
  in
  O.Log.log log O.Log.Info "job.done"
    [
      ("trace", O.Log.Int 7);
      ("wall_s", O.Log.Float 0.051);
      ("cached", O.Log.Bool false);
      ("key", O.Log.Str "TRAF/tp");
    ];
  O.Log.log log O.Log.Warn "request.slow" [ ("msg", O.Log.Str "a b=c") ];
  O.Log.log log O.Log.Debug "empty.value" [ ("v", O.Log.Str "") ];
  check
    Alcotest.(list string)
    "exact lines, fake clock"
    [
      "ts=0.500000 level=info event=job.done trace=7 wall_s=0.051000 \
       cached=false key=TRAF/tp";
      "ts=1.000000 level=warn event=request.slow msg=\"a b=c\"";
      "ts=1.500000 level=debug event=empty.value v=\"\"";
    ]
    (List.rev !lines)

let test_log_level_filtering () =
  let hits = ref 0 in
  let log =
    O.Log.make ~level:O.Log.Warn ~now:(fun () -> 0.)
      ~write:(fun _ -> incr hits)
      ()
  in
  check Alcotest.bool "debug off" false (O.Log.enabled log O.Log.Debug);
  check Alcotest.bool "info off" false (O.Log.enabled log O.Log.Info);
  check Alcotest.bool "warn on" true (O.Log.enabled log O.Log.Warn);
  check Alcotest.bool "error on" true (O.Log.enabled log O.Log.Error);
  O.Log.log log O.Log.Info "suppressed" [];
  check Alcotest.int "below threshold writes nothing" 0 !hits;
  O.Log.log log O.Log.Error "boom" [];
  check Alcotest.int "at threshold writes" 1 !hits;
  check Alcotest.bool "null logger never enabled" false
    (O.Log.enabled O.Log.null O.Log.Error);
  check Alcotest.bool "warning alias" true
    (O.Log.level_of_string "Warning" = Ok O.Log.Warn);
  check Alcotest.bool "unknown level rejected" true
    (Result.is_error (O.Log.level_of_string "loud"))

(* --- span ring ------------------------------------------------------------ *)

let test_span_ring () =
  let ring = O.Tracer.Ring.create ~capacity:4 in
  check Alcotest.bool "empty dump" true (O.Tracer.Ring.dump ring = []);
  for i = 1 to 6 do
    O.Tracer.Ring.record ring ~name:"stage" ~track:0 ~trace:i
      ~ts:(float_of_int i) ~dur:0.5
  done;
  check Alcotest.int "recorded counts overwrites" 6
    (O.Tracer.Ring.recorded ring);
  check Alcotest.int "dropped = recorded - capacity" 2
    (O.Tracer.Ring.dropped ring);
  let spans = O.Tracer.Ring.dump ring in
  check Alcotest.int "capacity survivors" 4 (List.length spans);
  check Alcotest.bool "oldest first, newest kept" true
    (List.map (fun s -> s.O.Tracer.Ring.trace) spans = [ 3; 4; 5; 6 ]);
  let j = O.Tracer.spans_to_json ~tracks:[ (0, "events") ] spans in
  match O.Tracer.validate j with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "span trace fails validation: %s" msg

(* --- the request-path allocation discipline ------------------------------- *)

let test_obs_zero_allocation () =
  (* The PR 5 invariant extended to the service layer: the three
     primitives that sit on the daemon's request path allocate nothing
     per event — Hist.record, Ring.record, and a log call on the null
     logger. 10k iterations may not allocate more than a constant slack
     over 0 (a per-event box would show up as >= 20k words). *)
  let h = Hist.create () in
  let ring = O.Tracer.Ring.create ~capacity:64 in
  Hist.record h 0.001;
  O.Tracer.Ring.record ring ~name:"warm" ~track:0 ~trace:0 ~ts:0. ~dur:0.;
  O.Log.log O.Log.null O.Log.Error "warm" [];
  let words f =
    let w0 = Gc.minor_words () in
    f ();
    Gc.minor_words () -. w0
  in
  let hist_w = words (fun () -> for _ = 1 to 10_000 do Hist.record h 0.004 done) in
  let ring_w =
    words (fun () ->
        for _ = 1 to 10_000 do
          O.Tracer.Ring.record ring ~name:"s" ~track:1 ~trace:2 ~ts:0.1
            ~dur:0.2
        done)
  in
  let log_w =
    words (fun () ->
        for _ = 1 to 10_000 do
          O.Log.log O.Log.null O.Log.Error "e" []
        done)
  in
  check Alcotest.bool
    (Printf.sprintf "Hist.record allocates nothing (%.0f words)" hist_w)
    true (hist_w <= 256.);
  check Alcotest.bool
    (Printf.sprintf "Ring.record allocates nothing (%.0f words)" ring_w)
    true (ring_w <= 256.);
  check Alcotest.bool
    (Printf.sprintf "null log allocates nothing (%.0f words)" log_w)
    true (log_w <= 256.)

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json float exactness" `Quick test_json_float_exactness;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "registry covers every Stats field" `Quick
      test_registry_covers_stats;
    Alcotest.test_case "registry names unique" `Quick test_registry_names_unique;
    Alcotest.test_case "registry find" `Quick test_registry_find;
    Alcotest.test_case "registry values match getters" `Quick
      test_registry_values_match_getters;
    Alcotest.test_case "profile deltas sum to totals" `Quick
      test_profile_deltas_sum_to_totals;
    Alcotest.test_case "profile detects tampering" `Quick
      test_profile_detects_tampering;
    Alcotest.test_case "profile json round trip" `Quick
      test_profile_json_round_trip;
    Alcotest.test_case "profile csv shape" `Quick test_profile_csv_shape;
    Alcotest.test_case "timeline window sums are bit-exact" `Slow
      test_timeline_window_sums;
    Alcotest.test_case "timeline series and json" `Quick
      test_timeline_series_and_json;
    Alcotest.test_case "trace json round trip" `Quick test_trace_json_round_trip;
    Alcotest.test_case "trace events within kernel spans" `Quick
      test_trace_events_within_kernel_spans;
    Alcotest.test_case "trace dropped counter" `Quick test_trace_dropped_counter;
    Alcotest.test_case "series json round trip" `Quick test_series_json_round_trip;
    Alcotest.test_case "series json rejects garbage" `Quick
      test_series_of_json_rejects_garbage;
    Alcotest.test_case "sink write file" `Quick test_write_file;
    QCheck_alcotest.to_alcotest hist_merge_commutes;
    QCheck_alcotest.to_alcotest hist_merge_associates;
    QCheck_alcotest.to_alcotest hist_quantile_monotone;
    QCheck_alcotest.to_alcotest hist_value_within_bucket;
    Alcotest.test_case "hist basics and exact totals" `Quick test_hist_basics;
    Alcotest.test_case "hist json round trip" `Quick test_hist_json_round_trip;
    Alcotest.test_case "svc registry covers every snapshot field" `Quick
      test_svc_registry_covers_snapshot;
    Alcotest.test_case "svc values match getters; json round trip" `Quick
      test_svc_values_and_json;
    Alcotest.test_case "log lines are exact under a fake clock" `Quick
      test_log_lines_exact;
    Alcotest.test_case "log level filtering" `Quick test_log_level_filtering;
    Alcotest.test_case "span ring drops oldest, dumps in order" `Quick
      test_span_ring;
    Alcotest.test_case "request-path primitives allocate nothing" `Quick
      test_obs_zero_allocation;
  ]
