(* Tests for the simulated virtual-memory substrate. *)

module Vaddr = Repro_mem.Vaddr
module Page_store = Repro_mem.Page_store
module Address_space = Repro_mem.Address_space

let check = Alcotest.check

let test_vaddr_constants () =
  check Alcotest.int "va bits" 48 Vaddr.va_bits;
  check Alcotest.int "tag bits" 15 Vaddr.tag_bits;
  check Alcotest.int "max tag" 32767 Vaddr.max_tag;
  check Alcotest.int "sector" 32 Vaddr.sector_bytes

let test_vaddr_tagging () =
  let addr = 0x1234_5678 in
  let tagged = Vaddr.with_tag addr ~tag:4097 in
  check Alcotest.bool "tagged not canonical" false (Vaddr.is_canonical tagged);
  check Alcotest.int "tag recovered" 4097 (Vaddr.tag_of tagged);
  check Alcotest.int "strip recovers address" addr (Vaddr.strip tagged);
  check Alcotest.int "canonical tag is 0" 0 (Vaddr.tag_of addr);
  Alcotest.check_raises "double tag"
    (Invalid_argument "Vaddr.with_tag: address already tagged") (fun () ->
      ignore (Vaddr.with_tag tagged ~tag:1));
  Alcotest.check_raises "tag out of range"
    (Invalid_argument "Vaddr.with_tag: tag out of range") (fun () ->
      ignore (Vaddr.with_tag addr ~tag:(Vaddr.max_tag + 1)))

let test_vaddr_alignment () =
  check Alcotest.int "align up" 128 (Vaddr.align_up 100 ~alignment:128);
  check Alcotest.int "already aligned" 128 (Vaddr.align_up 128 ~alignment:128);
  check Alcotest.bool "is_aligned" true (Vaddr.is_aligned 256 ~alignment:128);
  check Alcotest.bool "not aligned" false (Vaddr.is_aligned 100 ~alignment:128);
  Alcotest.check_raises "bad alignment"
    (Invalid_argument "Vaddr.align_up: alignment must be a positive power of two")
    (fun () -> ignore (Vaddr.align_up 1 ~alignment:3))

let test_vaddr_sectors () =
  check Alcotest.int "sector 0" 0 (Vaddr.sector_of 31);
  check Alcotest.int "sector 1" 1 (Vaddr.sector_of 32);
  check Alcotest.int "tag ignored" 1 (Vaddr.sector_of (Vaddr.with_tag 32 ~tag:5));
  check Alcotest.int "word index" 2 (Vaddr.word_index 16);
  Alcotest.check_raises "misaligned word"
    (Invalid_argument "Vaddr.word_index: misaligned address") (fun () ->
      ignore (Vaddr.word_index 12))

let test_page_store_roundtrip () =
  let s = Page_store.create () in
  check Alcotest.int "default zero" 0 (Page_store.load s 4096);
  Page_store.store s 4096 42;
  check Alcotest.int "stored" 42 (Page_store.load s 4096);
  Page_store.store s 8 ((1 lsl 61) + 5);
  check Alcotest.int "large word" ((1 lsl 61) + 5) (Page_store.load s 8);
  Alcotest.check_raises "negative word rejected"
    (Invalid_argument "Page_store.store: negative 64-bit stores are unsupported")
    (fun () -> Page_store.store s 8 (-17));
  check Alcotest.int "two pages touched" 2 (Page_store.touched_pages s);
  check Alcotest.int "footprint" (2 * Page_store.page_bytes) (Page_store.footprint_bytes s)

let test_page_store_byte_width () =
  let s = Page_store.create () in
  Page_store.store_byte_width s 100 ~width:4 0xDEAD;
  check Alcotest.int "4-byte roundtrip" 0xDEAD (Page_store.load_byte_width s 100 ~width:4);
  (* Neighbouring 4-byte slot in the same word is untouched. *)
  Page_store.store_byte_width s 96 ~width:4 7;
  check Alcotest.int "low half" 7 (Page_store.load_byte_width s 96 ~width:4);
  check Alcotest.int "high half intact" 0xDEAD (Page_store.load_byte_width s 100 ~width:4);
  (* Truncation on store. *)
  Page_store.store_byte_width s 96 ~width:4 (1 lsl 33);
  check Alcotest.int "truncated" 0 (Page_store.load_byte_width s 96 ~width:4);
  Alcotest.check_raises "misaligned field"
    (Invalid_argument "Page_store.load_byte_width: misaligned field") (fun () ->
      ignore (Page_store.load_byte_width s 98 ~width:4))

let test_page_store_rejects_tagged () =
  let s = Page_store.create () in
  Alcotest.check_raises "tagged load"
    (Invalid_argument "Page_store.load: tagged address reached the store") (fun () ->
      ignore (Page_store.load s (Vaddr.with_tag 64 ~tag:3)))

let test_page_store_iter_words () =
  let s = Page_store.create () in
  Page_store.store s 0 5;
  Page_store.store s 16 7;
  let seen = ref [] in
  Page_store.iter_words s (fun addr v -> seen := (addr, v) :: !seen);
  check Alcotest.int "two non-zero words" 2 (List.length !seen);
  check Alcotest.bool "contains both" true
    (List.mem (0, 5) !seen && List.mem (16, 7) !seen)

let test_address_space_reservations () =
  let space = Address_space.create () in
  let a = Address_space.reserve space ~name:"a" ~size:100 in
  let b = Address_space.reserve space ~name:"b" ~size:5000 in
  check Alcotest.bool "page aligned" true
    (Vaddr.is_aligned a.Address_space.base ~alignment:Page_store.page_bytes);
  check Alcotest.bool "disjoint" true
    (a.Address_space.base + a.Address_space.size <= b.Address_space.base);
  check Alcotest.int "rounded size" Page_store.page_bytes a.Address_space.size;
  check Alcotest.bool "contains" true (Address_space.contains a a.Address_space.base);
  check Alcotest.bool "not contains" false (Address_space.contains a b.Address_space.base);
  check Alcotest.bool "find" true (Address_space.find space "b" <> None);
  check Alcotest.bool "find missing" true (Address_space.find space "zz" = None);
  check Alcotest.int "two arenas" 2 (List.length (Address_space.arenas space))

let test_address_space_null_guard () =
  let space = Address_space.create () in
  let a = Address_space.reserve space ~name:"first" ~size:8 in
  check Alcotest.bool "never hands out null" true (a.Address_space.base > 0)

let prop_tag_roundtrip =
  QCheck.Test.make ~name:"vaddr tag encode/decode identity" ~count:500
    QCheck.(pair (int_bound ((1 lsl 30) - 1)) (int_bound Vaddr.max_tag))
    (fun (addr, tag) ->
      let tagged = Vaddr.with_tag addr ~tag in
      Vaddr.strip tagged = addr && Vaddr.tag_of tagged = tag)

let prop_tag_rejects_out_of_range =
  QCheck.Test.make ~name:"vaddr with_tag rejects out-of-range tags" ~count:200
    QCheck.(
      pair
        (int_bound ((1 lsl 30) - 1))
        (map (fun n -> Vaddr.max_tag + 1 + n) (int_bound 1000)))
    (fun (addr, tag) ->
      match Vaddr.with_tag addr ~tag with
      | exception Invalid_argument _ -> true
      | _ -> false)

let prop_tag_rejects_tagged_input =
  QCheck.Test.make ~name:"vaddr with_tag rejects non-canonical input" ~count:200
    QCheck.(
      pair
        (int_bound ((1 lsl 30) - 1))
        (pair (int_range 1 Vaddr.max_tag) (int_bound Vaddr.max_tag)))
    (fun (addr, (tag, tag')) ->
      let tagged = Vaddr.with_tag addr ~tag in
      (not (Vaddr.is_canonical tagged))
      &&
      match Vaddr.with_tag tagged ~tag:tag' with
      | exception Invalid_argument _ -> true
      | _ -> false)

let prop_strip_canonicalizes =
  QCheck.Test.make ~name:"vaddr strip is canonical and idempotent" ~count:500
    QCheck.(pair (int_bound ((1 lsl 30) - 1)) (int_bound Vaddr.max_tag))
    (fun (addr, tag) ->
      let tagged = Vaddr.with_tag addr ~tag in
      let stripped = Vaddr.strip tagged in
      Vaddr.is_canonical stripped
      && Vaddr.strip stripped = stripped
      && Vaddr.tag_of stripped = 0)

let prop_align_up_bounds =
  QCheck.Test.make ~name:"vaddr align_up lands on nearest boundary" ~count:500
    QCheck.(
      pair (int_bound ((1 lsl 30) - 1)) (map (fun k -> 1 lsl k) (int_bound 12)))
    (fun (addr, alignment) ->
      let up = Vaddr.align_up addr ~alignment in
      Vaddr.is_aligned up ~alignment
      && up >= addr
      && up - addr < alignment
      && Vaddr.align_up up ~alignment = up)

let prop_sector_boundaries =
  QCheck.Test.make ~name:"vaddr sector_of constant within a sector" ~count:500
    QCheck.(pair (int_bound ((1 lsl 20) - 1)) (int_bound (Vaddr.sector_bytes - 1)))
    (fun (sector, offset) ->
      let base = sector * Vaddr.sector_bytes in
      Vaddr.sector_of (base + offset) = sector
      && Vaddr.sector_of (base + Vaddr.sector_bytes) = sector + 1)

let prop_store_load =
  QCheck.Test.make ~name:"page store load returns last store" ~count:300
    QCheck.(pair (int_bound 10_000) int)
    (fun (word, v) ->
      let v = abs v in
      let s = Page_store.create () in
      let addr = word * 8 in
      Page_store.store s addr v;
      Page_store.load s addr = v)

(* --- batched access ---------------------------------------------------- *)

(* The batch entry points are the fused emission engine's per-warp loops;
   their contract is element-for-element equivalence with the scalar ops,
   including which exception fires first and any partial writes before
   it. Addresses mix aligned, misaligned and tagged forms to exercise
   both the memoized fast path and the slow-path checks. *)

let outcome f = match f () with v -> Ok v | exception e -> Error e

let batch_addr width (a, kind) =
  match kind mod 3 with
  | 0 -> a - (a mod width) (* aligned: the fast path *)
  | 1 -> a (* possibly misaligned *)
  | _ -> Vaddr.with_tag (a - (a mod width)) ~tag:7 (* tagged *)

let gen_batch =
  QCheck.(
    pair (int_bound 3)
      (list_of_size (Gen.int_range 1 40)
         (pair (int_bound 300_000) (int_bound 20))))

let prop_load_batch_equiv =
  QCheck.Test.make ~name:"load_batch matches per-element load_byte_width"
    ~count:400 gen_batch
    (fun (wexp, cells) ->
      let width = 1 lsl wexp in
      let t = Page_store.create () in
      (* Seed backing words so loads see nonzero data. *)
      List.iteri
        (fun i (a, _) ->
          Page_store.store t (a - (a mod 8)) ((i + 1) * 2654435761))
        cells;
      let addrs = Array.of_list (List.map (batch_addr width) cells) in
      let n = Array.length addrs in
      (* Embed at a nonzero arena offset, as trace columns do. *)
      let off = 2 in
      let arena = Array.make (off + n + 1) 0 in
      Array.blit addrs 0 arena off n;
      let out = Array.make n (-1) in
      let batch =
        outcome (fun () ->
            Page_store.load_batch t arena ~off ~n ~width out;
            Array.copy out)
      in
      let scalar =
        outcome (fun () ->
            Array.map (fun a -> Page_store.load_byte_width t a ~width) addrs)
      in
      batch = scalar)

let words_of t =
  let acc = ref [] in
  Page_store.iter_words t (fun a v -> acc := (a, v) :: !acc);
  List.sort compare !acc

let prop_store_batch_equiv =
  QCheck.Test.make ~name:"store_batch matches per-element store_byte_width"
    ~count:400 gen_batch
    (fun (wexp, cells) ->
      let width = 1 lsl wexp in
      let t1 = Page_store.create () and t2 = Page_store.create () in
      let addrs = Array.of_list (List.map (batch_addr width) cells) in
      let n = Array.length addrs in
      (* An occasional negative value exercises the 64-bit store guard. *)
      let values = Array.init n (fun i -> ((i + 1) * 48271) - 200_000) in
      let off = 2 in
      let arena = Array.make (off + n + 1) 0 in
      Array.blit addrs 0 arena off n;
      let batch =
        outcome (fun () -> Page_store.store_batch t1 arena ~off ~n ~width values)
      in
      let scalar =
        outcome (fun () ->
            Array.iteri
              (fun i a -> Page_store.store_byte_width t2 a ~width values.(i))
              addrs)
      in
      (* Same outcome, and the same heap contents even when an exception
         interrupted the loop part-way. *)
      batch = scalar && words_of t1 = words_of t2)

let suite =
  [
    Alcotest.test_case "vaddr constants" `Quick test_vaddr_constants;
    Alcotest.test_case "vaddr tagging" `Quick test_vaddr_tagging;
    Alcotest.test_case "vaddr alignment" `Quick test_vaddr_alignment;
    Alcotest.test_case "vaddr sectors" `Quick test_vaddr_sectors;
    Alcotest.test_case "page store roundtrip" `Quick test_page_store_roundtrip;
    Alcotest.test_case "page store byte widths" `Quick test_page_store_byte_width;
    Alcotest.test_case "page store rejects tags" `Quick test_page_store_rejects_tagged;
    Alcotest.test_case "page store iter words" `Quick test_page_store_iter_words;
    Alcotest.test_case "address space reservations" `Quick test_address_space_reservations;
    Alcotest.test_case "address space null guard" `Quick test_address_space_null_guard;
    QCheck_alcotest.to_alcotest prop_tag_roundtrip;
    QCheck_alcotest.to_alcotest prop_tag_rejects_out_of_range;
    QCheck_alcotest.to_alcotest prop_tag_rejects_tagged_input;
    QCheck_alcotest.to_alcotest prop_strip_canonicalizes;
    QCheck_alcotest.to_alcotest prop_align_up_bounds;
    QCheck_alcotest.to_alcotest prop_sector_boundaries;
    QCheck_alcotest.to_alcotest prop_store_load;
    QCheck_alcotest.to_alcotest prop_load_batch_equiv;
    QCheck_alcotest.to_alcotest prop_store_batch_equiv;
  ]
