(* Workload-level tests: determinism, algorithmic invariants, and the
   paper's cross-technique functional validation at small scale. *)

module W = Repro_workloads
module T = Repro_core.Technique
module R = Repro_core
module Graph = W.Graph
module Workload = W.Workload
module Harness = W.Harness

let check = Alcotest.check

let tiny_params ?iterations technique =
  { (Workload.default_params technique) with Workload.scale = 0.03; iterations }

(* --- graph generator --------------------------------------------------- *)

let test_graph_deterministic () =
  let a = Graph.generate ~seed:11 ~n_vertices:100 ~n_edges:400 () in
  let b = Graph.generate ~seed:11 ~n_vertices:100 ~n_edges:400 () in
  check Alcotest.bool "same edges" true (a.Graph.edges = b.Graph.edges);
  let c = Graph.generate ~seed:12 ~n_vertices:100 ~n_edges:400 () in
  check Alcotest.bool "different seed differs" true (a.Graph.edges <> c.Graph.edges)

let test_graph_shape () =
  let g = Graph.generate ~seed:3 ~n_vertices:50 ~n_edges:300 () in
  check Alcotest.int "edge count" 300 (Array.length g.Graph.edges);
  Array.iter
    (fun (s, d) ->
      check Alcotest.bool "in range" true (s >= 0 && s < 50 && d >= 0 && d < 50);
      check Alcotest.bool "no self loop" true (s <> d))
    g.Graph.edges;
  check Alcotest.int "degrees sum to edges" 300
    (Array.fold_left ( + ) 0 g.Graph.out_degree);
  check Alcotest.bool "source has out edges" true (g.Graph.out_degree.(0) > 0)

let test_graph_reachability () =
  let g = Graph.generate ~seed:5 ~n_vertices:30 ~n_edges:100 () in
  let r1 = Graph.reachable_within g ~source:0 ~hops:1 in
  let r5 = Graph.reachable_within g ~source:0 ~hops:5 in
  check Alcotest.bool "source reachable" true r1.(0);
  Array.iteri
    (fun v reached -> if reached then check Alcotest.bool "monotone" true r5.(v))
    r1

(* --- registry ----------------------------------------------------------- *)

let test_registry_covers_paper_apps () =
  check Alcotest.int "eleven workloads" 11 (List.length W.Registry.all);
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " findable") true (W.Registry.find name <> None))
    [ "TRAF"; "GOL"; "STUT"; "GEN"; "RAY"; "GraphChi-vE/BFS"; "GraphChi-vEN/PR" ];
  check Alcotest.bool "unknown rejected" true (W.Registry.find "nope" = None);
  (* Qualified names are unique. *)
  let names = List.map W.Registry.qualified_name W.Registry.all in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

(* --- per-workload functional checks -------------------------------------- *)

let instance_of name technique =
  let w = Option.get (W.Registry.find name) in
  let inst = w.Workload.build (tiny_params technique) in
  for i = 0 to inst.Workload.iterations - 1 do
    inst.Workload.run_iteration i
  done;
  inst

let test_workloads_run_and_produce_results () =
  List.iter
    (fun w ->
      let inst = w.Workload.build (tiny_params T.Shared_oa) in
      for i = 0 to inst.Workload.iterations - 1 do
        inst.Workload.run_iteration i
      done;
      let cycles = R.Runtime.cycles inst.Workload.rt in
      check Alcotest.bool (w.Workload.name ^ " simulated time") true (cycles > 0.);
      check Alcotest.bool (w.Workload.name ^ " made virtual calls") true
        (R.Runtime.warp_vcalls inst.Workload.rt > 0))
    W.Registry.all

let test_workload_determinism () =
  let run () =
    let inst = instance_of "GOL" T.Coal in
    (inst.Workload.result (), R.Runtime.checksum inst.Workload.rt)
  in
  check
    (Alcotest.pair Alcotest.int Alcotest.int)
    "identical reruns" (run ()) (run ())

let test_cross_technique_equality_all_workloads () =
  (* The paper's functional validation (Sec. 8), on every app. *)
  List.iter
    (fun w ->
      let p = tiny_params ~iterations:2 T.Shared_oa in
      ignore (Harness.run_techniques w p T.all_paper))
    W.Registry.all

let test_bfs_invariants () =
  let inst = instance_of "GraphChi-vE/BFS" T.Shared_oa in
  let rt = inst.Workload.rt in
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let vertices =
    Array.to_list (R.Runtime.allocations rt)
    |> List.filter (fun (_, typ) -> R.Registry.type_name typ = "Vertex")
    |> List.map fst
  in
  let levels =
    List.map (fun ptr -> R.Object_model.field_load_host om heap ~ptr ~field:0) vertices
  in
  (match levels with
   | source :: _ -> check Alcotest.int "source level" 0 source
   | [] -> Alcotest.fail "no vertices");
  let iterations = inst.Workload.iterations in
  List.iter
    (fun l ->
      check Alcotest.bool "level bounded or unreached" true
        ((l >= 0 && l <= iterations) || l = 0x3FFF_FFFF))
    levels;
  check Alcotest.bool "someone was reached" true
    (List.exists (fun l -> l > 0 && l <= iterations) levels)

let test_cc_invariants () =
  let inst = instance_of "GraphChi-vE/CC" T.Shared_oa in
  let rt = inst.Workload.rt in
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let vertices =
    Array.to_list (R.Runtime.allocations rt)
    |> List.filter (fun (_, typ) -> R.Registry.type_name typ = "Vertex")
    |> List.map fst
  in
  List.iteri
    (fun i ptr ->
      let label = R.Object_model.field_load_host om heap ~ptr ~field:0 in
      check Alcotest.bool "labels only shrink" true (label >= 0 && label <= i))
    vertices

let test_pr_invariants () =
  let inst = instance_of "GraphChi-vE/PR" T.Shared_oa in
  let rt = inst.Workload.rt in
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  Array.iter
    (fun (ptr, typ) ->
      if R.Registry.type_name typ = "Vertex" then begin
        let rank = R.Object_model.field_load_host om heap ~ptr ~field:0 in
        check Alcotest.bool "rank at least the base" true (rank >= 15 * 65536 / 100)
      end)
    (R.Runtime.allocations rt)

let test_traffic_conservation () =
  let inst = instance_of "TRAF" T.Shared_oa in
  let rt = inst.Workload.rt in
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  (* Every active car sits on the cell its own record claims; monitors
     accumulated nonnegative samples. *)
  Array.iter
    (fun (ptr, typ) ->
      match R.Registry.type_name typ with
      | "Car" ->
        let active = R.Object_model.field_load_host om heap ~ptr ~field:2 in
        let dist = R.Object_model.field_load_host om heap ~ptr ~field:3 in
        check Alcotest.bool "active flag boolean" true (active = 0 || active = 1);
        check Alcotest.bool "distance nonnegative" true (dist >= 0)
      | "Monitor" ->
        let acc = R.Object_model.field_load_host om heap ~ptr ~field:0 in
        check Alcotest.bool "monitor acc nonnegative" true (acc >= 0)
      | _ -> ())
    (R.Runtime.allocations rt)

let test_structure_anchors_fixed () =
  let inst = instance_of "STUT" T.Shared_oa in
  let rt = inst.Workload.rt in
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  Array.iter
    (fun (ptr, typ) ->
      if R.Registry.type_name typ = "AnchorNode" then begin
        (* Anchors sit on row 0: py must still be exactly 0. *)
        let py = R.Object_model.field_load_host om heap ~ptr ~field:1 in
        check Alcotest.int "anchor did not move" 0 py
      end)
    (R.Runtime.allocations rt)

let test_gol_matches_serial_reference () =
  (* The agent kernels are race-free, so plain Conway on the initial grid
     must agree with the simulated result exactly. *)
  let w = Option.get (W.Registry.find "GOL") in
  let p = tiny_params ~iterations:3 T.Shared_oa in
  let inst = w.Workload.build p in
  let rt = inst.Workload.rt in
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let cells =
    Array.to_list (R.Runtime.allocations rt)
    |> List.filter (fun (_, typ) -> R.Registry.type_name typ = "Cell")
    |> List.map fst
    |> Array.of_list
  in
  let n = Array.length cells in
  let side = int_of_float (sqrt (float_of_int n)) in
  check Alcotest.int "square grid" n (side * side);
  let initial =
    Array.map (fun ptr -> R.Object_model.field_load_host om heap ~ptr ~field:0) cells
  in
  (* Serial reference. *)
  let state = ref (Array.copy initial) in
  for _ = 1 to inst.Workload.iterations do
    let cur = !state in
    let next = Array.make n 0 in
    for i = 0 to n - 1 do
      let x = i mod side and y = i / side in
      let count = ref 0 in
      for dy = -1 to 1 do
        for dx = -1 to 1 do
          if dx <> 0 || dy <> 0 then begin
            let nx = (x + dx + side) mod side and ny = (y + dy + side) mod side in
            if cur.((ny * side) + nx) = 1 then incr count
          end
        done
      done;
      if cur.(i) = 1 then next.(i) <- (if !count = 2 || !count = 3 then 1 else 0)
      else next.(i) <- (if !count = 3 then 1 else 0)
    done;
    state := next
  done;
  for i = 0 to inst.Workload.iterations - 1 do
    inst.Workload.run_iteration i
  done;
  let final =
    Array.map (fun ptr -> R.Object_model.field_load_host om heap ~ptr ~field:0) cells
  in
  check (Alcotest.array Alcotest.int) "GPU result equals serial Conway" !state final

let test_ray_renders_hits () =
  let inst = instance_of "RAY" T.Shared_oa in
  let art = W.Raytrace.render_ascii inst ~width:96 ~height:96 in
  check Alcotest.bool "some pixels lit" true (String.exists (fun c -> c <> ' ' && c <> '\n') art);
  check Alcotest.int "height rows" 96
    (String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 art)

(* --- ubench ---------------------------------------------------------------- *)

let test_ubench_results_match () =
  let n_objects = 2048 and n_types = 4 in
  let _, branch = W.Ubench.run ~iterations:3 ~n_objects ~n_types W.Ubench.Branch in
  List.iter
    (fun t ->
      let _, r = W.Ubench.run ~iterations:3 ~n_objects ~n_types (W.Ubench.Technique t) in
      check Alcotest.int (T.name t ^ " ubench result") branch r)
    T.all_paper;
  (* acc(i) += type(i)+1 per iteration; types cycle 0..3. *)
  let expected = 3 * (n_objects / n_types) * (1 + 2 + 3 + 4) in
  check Alcotest.int "analytic total" expected branch

let test_ubench_divergence_grows () =
  (* Fig. 12b's driver: more types per warp = more serialized subgroups =
     more time, even for the ideal BRANCH variant. *)
  let cycles types =
    fst (W.Ubench.run ~iterations:2 ~n_objects:8192 ~n_types:types W.Ubench.Branch)
  in
  check Alcotest.bool "divergence costs" true (cycles 16 > cycles 2)

let test_render_ascii_rejects_non_ray () =
  let inst = instance_of "GOL" T.Shared_oa in
  Alcotest.check_raises "wrong instance"
    (Invalid_argument "Raytrace.render_ascii: no frame buffer (not a RAY instance)")
    (fun () -> ignore (W.Raytrace.render_ascii inst ~width:8 ~height:8))

let test_seed_changes_results () =
  let w = Option.get (W.Registry.find "GraphChi-vE/CC") in
  let checksum seed =
    let inst = w.Workload.build { (tiny_params T.Shared_oa) with Workload.seed } in
    for i = 0 to inst.Workload.iterations - 1 do
      inst.Workload.run_iteration i
    done;
    R.Runtime.checksum inst.Workload.rt
  in
  check Alcotest.bool "different inputs, different heaps" true
    (checksum 1 <> checksum 2)

let test_ubench_branch_is_fastest () =
  let n_objects = 8192 and n_types = 4 in
  let branch_cycles, _ = W.Ubench.run ~n_objects ~n_types W.Ubench.Branch in
  let cuda_cycles, _ = W.Ubench.run ~n_objects ~n_types (W.Ubench.Technique T.Cuda) in
  check Alcotest.bool "virtual dispatch costs over BRANCH" true
    (cuda_cycles > branch_cycles)

let test_harness_normalization () =
  (* The `repro compare` normalization: normalized_cycles is the direct
     runtime ratio cycles(r)/cycles(baseline) — no double inversion —
     and the exact reciprocal of speedup_vs. *)
  let w = Option.get (W.Registry.find "GEN") in
  let r = Harness.run w (tiny_params ~iterations:1 T.Shared_oa) in
  let base = { r with Harness.cycles = 100. } in
  let fast = { r with Harness.cycles = 50. } in
  let slow = { r with Harness.cycles = 400. } in
  check (Alcotest.float 1e-9) "baseline maps to 1" 1.
    (Harness.normalized_cycles ~baseline:base base);
  check (Alcotest.float 1e-9) "half the cycles -> 0.5" 0.5
    (Harness.normalized_cycles ~baseline:base fast);
  check (Alcotest.float 1e-9) "4x the cycles -> 4" 4.
    (Harness.normalized_cycles ~baseline:base slow);
  check (Alcotest.float 1e-9) "reciprocal of speedup_vs" 1.
    (Harness.normalized_cycles ~baseline:base slow
     *. Harness.speedup_vs ~baseline:base slow)

let test_harness_find_keyed_runs () =
  let w = Option.get (W.Registry.find "GEN") in
  let runs =
    Harness.run_techniques w (tiny_params ~iterations:1 T.Shared_oa)
      [ T.Cuda; T.Shared_oa ]
  in
  check Alcotest.bool "finds SHARD" true
    (Harness.find runs ~technique:T.Shared_oa <> None);
  check Alcotest.bool "keys match payloads" true
    (List.for_all
       (fun (technique, (r : Harness.run)) ->
         T.equal technique r.Harness.technique)
       runs);
  check Alcotest.bool "absent technique is None" true
    (Harness.find runs ~technique:T.Coal = None)

let suite =
  [
    Alcotest.test_case "graph deterministic" `Quick test_graph_deterministic;
    Alcotest.test_case "harness normalization" `Quick test_harness_normalization;
    Alcotest.test_case "harness keyed runs" `Quick test_harness_find_keyed_runs;
    Alcotest.test_case "graph shape" `Quick test_graph_shape;
    Alcotest.test_case "graph reachability" `Quick test_graph_reachability;
    Alcotest.test_case "registry covers the paper" `Quick test_registry_covers_paper_apps;
    Alcotest.test_case "workloads run" `Slow test_workloads_run_and_produce_results;
    Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
    Alcotest.test_case "cross-technique equality (all apps)" `Slow
      test_cross_technique_equality_all_workloads;
    Alcotest.test_case "bfs invariants" `Quick test_bfs_invariants;
    Alcotest.test_case "cc invariants" `Quick test_cc_invariants;
    Alcotest.test_case "pr invariants" `Quick test_pr_invariants;
    Alcotest.test_case "traffic conservation" `Quick test_traffic_conservation;
    Alcotest.test_case "structure anchors fixed" `Quick test_structure_anchors_fixed;
    Alcotest.test_case "gol equals serial reference" `Slow
      test_gol_matches_serial_reference;
    Alcotest.test_case "ray renders hits" `Quick test_ray_renders_hits;
    Alcotest.test_case "ubench results match" `Quick test_ubench_results_match;
    Alcotest.test_case "ubench divergence grows" `Quick test_ubench_divergence_grows;
    Alcotest.test_case "render ascii rejects non-ray" `Quick
      test_render_ascii_rejects_non_ray;
    Alcotest.test_case "seed changes results" `Quick test_seed_changes_results;
    Alcotest.test_case "ubench branch fastest" `Quick test_ubench_branch_is_fastest;
  ]
