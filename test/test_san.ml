(* Tests for the shadow-heap sanitizer and the cross-technique dispatch
   oracle. *)

module San = Repro_san
module Violation = San.Violation
module Shadow_heap = San.Shadow_heap
module Mutation = San.Mutation
module Oracle = San.Oracle
module Checker = San.Checker
module Vaddr = Repro_mem.Vaddr
module T = Repro_core.Technique
module W = Repro_workloads
module X = Repro_exec

let check = Alcotest.check

(* --- violation kinds --------------------------------------------------- *)

let test_violation_kinds () =
  check Alcotest.int "kind count" (List.length Violation.kinds)
    Violation.kind_count;
  List.iteri
    (fun i k ->
      check Alcotest.int "index round-trip" i (Violation.kind_index k);
      check Alcotest.bool "of_index round-trip" true
        (Violation.kind_of_index i = k))
    Violation.kinds;
  let slugs = List.map Violation.kind_slug Violation.kinds in
  check Alcotest.int "slugs unique" (List.length slugs)
    (List.length (List.sort_uniq compare slugs))

(* --- shadow heap ------------------------------------------------------- *)

let test_shadow_register_find () =
  let sh = Shadow_heap.create () in
  Shadow_heap.register sh ~base:0x1000 ~size:64 ~type_id:3;
  Shadow_heap.register sh ~base:0x2000 ~size:32 ~type_id:5;
  check Alcotest.int "allocations" 2 (Shadow_heap.n_allocations sh);
  (match Shadow_heap.find sh 0x1010 with
   | Some r ->
     check Alcotest.int "type" 3 r.Shadow_heap.type_id;
     check Alcotest.int "index" 0 r.Shadow_heap.index
   | None -> Alcotest.fail "interior address not found");
  (match Shadow_heap.find sh (Vaddr.with_tag 0x2000 ~tag:7) with
   | Some r -> check Alcotest.int "tagged lookup strips" 5 r.Shadow_heap.type_id
   | None -> Alcotest.fail "tagged address not found");
  check Alcotest.bool "gap not found" true (Shadow_heap.find sh 0x1800 = None);
  check Alcotest.bool "one past end" true (Shadow_heap.find sh 0x1040 = None);
  Alcotest.check_raises "non-canonical base"
    (Invalid_argument "Shadow_heap.register_parts: non-canonical base")
    (fun () ->
      Shadow_heap.register sh ~base:(Vaddr.with_tag 0x3000 ~tag:1) ~size:8
        ~type_id:0);
  Alcotest.check_raises "non-positive size"
    (Invalid_argument "Shadow_heap.register_parts: size must be positive")
    (fun () -> Shadow_heap.register sh ~base:0x3000 ~size:0 ~type_id:0)

let test_shadow_classify () =
  let sh = Shadow_heap.create () in
  Shadow_heap.add_heap_range sh ~base:0x1000 ~size:0x1000;
  Shadow_heap.register sh ~base:0x1100 ~size:64 ~type_id:1;
  let classify addr width = Shadow_heap.classify sh ~addr ~width in
  (match classify 0x1100 8 with
   | Shadow_heap.Object _ -> ()
   | _ -> Alcotest.fail "base should be a live object");
  (match classify 0x1138 8 with
   | Shadow_heap.Object _ -> ()
   | _ -> Alcotest.fail "last word should be inside");
  (match classify 0x113c 8 with
   | Shadow_heap.Clipped _ -> ()
   | _ -> Alcotest.fail "straddling the end should clip");
  (match classify 0x1000 8 with
   | Shadow_heap.Heap_hole -> ()
   | _ -> Alcotest.fail "arena outside any allocation is a hole");
  (match classify 0x9000 8 with
   | Shadow_heap.Unmodelled -> ()
   | _ -> Alcotest.fail "outside every range is unmodelled");
  Shadow_heap.kill sh ~base:0x1100;
  (match classify 0x1100 8 with
   | Shadow_heap.Dead _ -> ()
   | _ -> Alcotest.fail "killed allocation should classify dead")

let test_shadow_mutations () =
  (* Truncate shrinks the checked extent of the victim to one word. *)
  let sh = Shadow_heap.create ~mutation:(Mutation.Truncate { victim = 0 }) () in
  Shadow_heap.register sh ~base:0x1000 ~size:64 ~type_id:0;
  (match Shadow_heap.classify sh ~addr:0x1008 ~width:8 with
   | Shadow_heap.Clipped _ -> ()
   | _ -> Alcotest.fail "truncated victim: second word should clip");
  (match Shadow_heap.classify sh ~addr:0x1000 ~width:8 with
   | Shadow_heap.Object _ -> ()
   | _ -> Alcotest.fail "truncated victim: first word stays valid");
  (* Kill marks the victim dead at registration. *)
  let sh = Shadow_heap.create ~mutation:(Mutation.Kill { victim = 1 }) () in
  Shadow_heap.register sh ~base:0x1000 ~size:8 ~type_id:0;
  Shadow_heap.register sh ~base:0x2000 ~size:8 ~type_id:0;
  (match Shadow_heap.classify sh ~addr:0x2000 ~width:8 with
   | Shadow_heap.Dead _ -> ()
   | _ -> Alcotest.fail "victim 1 should be dead");
  (match Shadow_heap.classify sh ~addr:0x1000 ~width:8 with
   | Shadow_heap.Object _ -> ()
   | _ -> Alcotest.fail "victim 0 should be alive");
  (* Retag records a wrong tag from the victim onward. *)
  let sh = Shadow_heap.create ~mutation:(Mutation.Retag { victim = 1 }) () in
  Shadow_heap.register sh ~base:0x1000 ~size:8 ~type_id:0;
  Shadow_heap.register sh ~base:0x2000 ~size:8 ~type_id:0;
  Shadow_heap.note_tag sh ~base:0x1000 ~tag:6;
  Shadow_heap.note_tag sh ~base:0x2000 ~tag:6;
  let tag_at base =
    match Shadow_heap.find sh base with
    | Some r -> r.Shadow_heap.tag
    | None -> -1
  in
  check Alcotest.int "pre-victim tag intact" 6 (tag_at 0x1000);
  check Alcotest.int "victim tag corrupted" 7 (tag_at 0x2000)

let test_mutation_parsing () =
  check Alcotest.bool "tag" true
    (Mutation.of_string "tag" = Ok (Mutation.Retag { victim = 0 }));
  check Alcotest.bool "region" true
    (Mutation.of_string "REGION" = Ok (Mutation.Truncate { victim = 0 }));
  check Alcotest.bool "uaf" true
    (Mutation.of_string "uaf" = Ok (Mutation.Kill { victim = 0 }));
  check Alcotest.bool "range" true
    (Mutation.of_string "range" = Ok Mutation.Skew_range);
  check Alcotest.bool "unknown rejected" true
    (Result.is_error (Mutation.of_string "bogus"));
  List.iter
    (fun name ->
      match Mutation.of_string name with
      | Ok m -> check Alcotest.string "name round-trip" name (Mutation.to_string m)
      | Error e -> Alcotest.fail e)
    Mutation.names

(* --- oracle ------------------------------------------------------------ *)

let shadow_with_objs bases =
  let sh = Shadow_heap.create () in
  List.iter (fun base -> Shadow_heap.register sh ~base ~size:16 ~type_id:0) bases;
  sh

let test_oracle_agreement () =
  (* Two techniques place the same logical objects at different
     addresses; identical targets over identical allocation indices must
     produce identical digest streams. *)
  let sh_a = shadow_with_objs [ 0x1000; 0x2000 ] in
  let sh_b = shadow_with_objs [ 0x7000; 0x9000 ] in
  let a = Oracle.create () and b = Oracle.create () in
  Oracle.record a ~shadow:sh_a ~warp:0 ~tids:[| 0; 1 |] ~objs:[| 0x1000; 0x2000 |]
    ~targets:[| 3; 4 |];
  Oracle.record b ~shadow:sh_b ~warp:0 ~tids:[| 0; 1 |] ~objs:[| 0x7000; 0x9000 |]
    ~targets:[| 3; 4 |];
  check Alcotest.bool "same stream" true (Oracle.diff ~reference:a b = None)

let test_oracle_divergence () =
  let sh = shadow_with_objs [ 0x1000; 0x2000 ] in
  let reference = Oracle.create () and actual = Oracle.create () in
  let record o targets =
    Oracle.record o ~shadow:sh ~warp:0 ~tids:[| 0; 1 |]
      ~objs:[| 0x1000; 0x2000 |] ~targets
  in
  record reference [| 3; 4 |];
  record reference [| 3; 4 |];
  record actual [| 3; 4 |];
  record actual [| 3; 5 |];
  (match Oracle.diff ~reference actual with
   | Some (Oracle.Target_mismatch { index }) ->
     check Alcotest.int "first divergence" 1 index
   | _ -> Alcotest.fail "expected a target mismatch");
  record reference [| 3; 4 |];
  (* actual is now shorter: 3 reference dispatches vs 2. *)
  let shorter = Oracle.create () in
  record shorter [| 3; 4 |];
  (match Oracle.diff ~reference shorter with
   | Some (Oracle.Length_mismatch { reference = nr; actual = na }) ->
     check Alcotest.int "reference length" 3 nr;
     check Alcotest.int "actual length" 1 na
   | _ -> Alcotest.fail "expected a length mismatch")

let test_oracle_capture () =
  let sh = shadow_with_objs [ 0x1000; 0x2000 ] in
  let o = Oracle.create ~capture:1 () in
  let record targets =
    Oracle.record o ~shadow:sh ~warp:7 ~tids:[| 4; 5 |]
      ~objs:[| 0x2000; 0x1000 |] ~targets
  in
  record [| 1; 2 |];
  check Alcotest.bool "not yet captured" true (Oracle.captured o = None);
  record [| 8; 9 |];
  match Oracle.captured o with
  | None -> Alcotest.fail "dispatch 1 should have been captured"
  | Some d ->
    check Alcotest.int "warp" 7 d.Oracle.warp;
    check Alcotest.bool "alloc indices" true (d.Oracle.alloc_idx = [| 1; 0 |]);
    check Alcotest.bool "targets" true (d.Oracle.targets = [| 8; 9 |]);
    let other =
      { d with Oracle.targets = [| 8; 3 |] }
    in
    let text = Oracle.describe_details ~reference:d other in
    check Alcotest.bool "context names the lane" true
      (String.length text > 0)

(* --- checker ----------------------------------------------------------- *)

let test_checker_detections () =
  let c = Checker.create ~tags_expected:false () in
  let sh = Checker.shadow c in
  Shadow_heap.add_heap_range sh ~base:0x1000 ~size:0x1000;
  Shadow_heap.register sh ~base:0x1100 ~size:64 ~type_id:1;
  let access ?(access = Checker.Other) ?(width = 8) addrs =
    Checker.check_access c ~warp:0 ~tids:[| 0 |] ~access ~what:"test" ~width
      ~addrs
  in
  access [| 0x1100 |];
  check Alcotest.int "clean access" 0 (Checker.total c);
  access [| 0x1000 |];
  check Alcotest.int "heap hole -> oob" 1 (Checker.count c Violation.Out_of_bounds);
  access [| 0x113c |];
  check Alcotest.int "clipped -> oob" 2 (Checker.count c Violation.Out_of_bounds);
  access [| Vaddr.with_tag 0x1100 ~tag:3 |];
  check Alcotest.int "tag on non-TP MMU" 1 (Checker.count c Violation.Non_canonical);
  access ~access:Checker.Vtable [| 0x1104 |];
  check Alcotest.int "misaligned vtable" 1
    (Checker.count c Violation.Misaligned_vtable);
  Shadow_heap.kill sh ~base:0x1100;
  access [| 0x1100 |];
  check Alcotest.int "use after free" 1 (Checker.count c Violation.Use_after_free);
  check Alcotest.int "total" 5 (Checker.total c);
  check Alcotest.int "samples retained" 5 (List.length (Checker.samples c));
  (* The kernel delta drains and zeroes. *)
  let delta = Checker.take_kernel_delta c in
  check Alcotest.int "delta total" 5 (Array.fold_left ( + ) 0 delta);
  let delta' = Checker.take_kernel_delta c in
  check Alcotest.int "drained" 0 (Array.fold_left ( + ) 0 delta')

let test_checker_tag_integrity () =
  let c = Checker.create ~tags_expected:true () in
  let sh = Checker.shadow c in
  Shadow_heap.register sh ~base:0x1000 ~size:16 ~type_id:0;
  Shadow_heap.note_tag sh ~base:0x1000 ~tag:5;
  Checker.check_tagged_ptrs c ~warp:0 ~tids:[| 0 |]
    ~ptrs:[| Vaddr.with_tag 0x1000 ~tag:5 |];
  check Alcotest.int "matching tag" 0 (Checker.total c);
  Checker.check_tagged_ptrs c ~warp:0 ~tids:[| 0 |]
    ~ptrs:[| Vaddr.with_tag 0x1000 ~tag:9 |];
  check Alcotest.int "mismatching tag" 1 (Checker.count c Violation.Tag_mismatch)

(* --- device integration: violations land in Stats ---------------------- *)

let test_stats_san_counters () =
  let stats = Repro_gpu.Stats.create () in
  let delta = Array.make Violation.kind_count 0 in
  delta.(Violation.kind_index Violation.Out_of_bounds) <- 3;
  Repro_gpu.Stats.count_san_violations stats delta;
  Repro_gpu.Stats.count_san_violations stats delta;
  check Alcotest.int "accumulates" 6
    (Repro_gpu.Stats.san_violations_for stats Violation.Out_of_bounds);
  check Alcotest.int "total" 6 (Repro_gpu.Stats.total_san_violations stats);
  Repro_gpu.Stats.reset stats;
  check Alcotest.int "reset" 0 (Repro_gpu.Stats.total_san_violations stats)

(* --- check driver ------------------------------------------------------ *)

let traf () = Option.get (W.Registry.find "traf")

let check_params =
  { (W.Workload.default_params T.Cuda) with W.Workload.scale = 0.02 }

let test_check_clean () =
  let reports = X.Check.run ~params:check_params [ traf () ] in
  check Alcotest.bool "all five techniques clean" true (X.Check.all_clean reports);
  match reports with
  | [ r ] ->
    check Alcotest.int "five techniques" (List.length T.all_paper)
      (List.length r.X.Check.techniques);
    List.iter
      (fun (tr : X.Check.technique_report) ->
        check Alcotest.bool "dispatches recorded" true (tr.X.Check.dispatches > 0))
      r.X.Check.techniques
  | _ -> Alcotest.fail "one workload, one report"

let count_for (tr : X.Check.technique_report) kind =
  tr.X.Check.counts.(Violation.kind_index kind)

let report_for reports technique =
  match reports with
  | [ r ] ->
    List.find
      (fun (tr : X.Check.technique_report) -> T.equal tr.X.Check.technique technique)
      r.X.Check.techniques
  | _ -> Alcotest.fail "one workload, one report"

let run_mutation name =
  let mutation =
    match Mutation.of_string name with Ok m -> m | Error e -> Alcotest.fail e
  in
  X.Check.run ~mutation ~params:check_params [ traf () ]

let test_check_catches_tag () =
  let reports = run_mutation "tag" in
  check Alcotest.bool "not clean" false (X.Check.all_clean reports);
  let tp = report_for reports T.type_pointer in
  check Alcotest.bool "TP tag mismatches" true
    (count_for tp Violation.Tag_mismatch > 0);
  (* Untagged techniques cannot see a tag bug. *)
  let cuda = report_for reports T.Cuda in
  check Alcotest.bool "CUDA unaffected" true (X.Check.technique_clean cuda)

let test_check_catches_region () =
  let reports = run_mutation "region" in
  let cuda = report_for reports T.Cuda in
  check Alcotest.bool "oob fires" true
    (count_for cuda Violation.Out_of_bounds > 0)

let test_check_catches_uaf () =
  let reports = run_mutation "uaf" in
  let cuda = report_for reports T.Cuda in
  check Alcotest.bool "uaf fires" true
    (count_for cuda Violation.Use_after_free > 0)

let test_check_catches_range_skew () =
  let reports = run_mutation "range" in
  let coal = report_for reports T.Coal in
  (match coal.X.Check.divergence with
   | Some d ->
     check Alcotest.bool "first diverging dispatch identified" true
       (d.X.Check.index <> None);
     check Alcotest.bool "lane context recovered" true (d.X.Check.context <> None)
   | None -> Alcotest.fail "COAL must diverge from CUDA under range skew");
  (* The corruption is COAL-only: everything else still matches CUDA. *)
  let tp = report_for reports T.type_pointer in
  check Alcotest.bool "TP still clean" true (X.Check.technique_clean tp)

let suite =
  [
    Alcotest.test_case "violation kinds" `Quick test_violation_kinds;
    Alcotest.test_case "shadow register/find" `Quick test_shadow_register_find;
    Alcotest.test_case "shadow classify" `Quick test_shadow_classify;
    Alcotest.test_case "shadow mutations" `Quick test_shadow_mutations;
    Alcotest.test_case "mutation parsing" `Quick test_mutation_parsing;
    Alcotest.test_case "oracle agreement" `Quick test_oracle_agreement;
    Alcotest.test_case "oracle divergence" `Quick test_oracle_divergence;
    Alcotest.test_case "oracle capture" `Quick test_oracle_capture;
    Alcotest.test_case "checker detections" `Quick test_checker_detections;
    Alcotest.test_case "checker tag integrity" `Quick test_checker_tag_integrity;
    Alcotest.test_case "stats san counters" `Quick test_stats_san_counters;
    Alcotest.test_case "check: clean matrix" `Quick test_check_clean;
    Alcotest.test_case "check: tag mutation caught" `Quick test_check_catches_tag;
    Alcotest.test_case "check: region mutation caught" `Quick
      test_check_catches_region;
    Alcotest.test_case "check: uaf mutation caught" `Quick test_check_catches_uaf;
    Alcotest.test_case "check: range skew caught by oracle" `Quick
      test_check_catches_range_skew;
  ]
