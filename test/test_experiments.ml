(* Integration tests over the figure harness: a tiny sweep must produce
   the paper's qualitative shapes. These are the repository's smoke
   alarms — if a change flips who wins, they go off. *)

module E = Repro_experiments
module W = Repro_workloads
module T = Repro_core.Technique
module A = Repro_core.Alloc_family

let check = Alcotest.check

(* A small but non-trivial sweep shared by the shape tests: two memory-
   bound apps plus RAY (the converged outlier). *)
(* Built through the parallel executor (j = 2) — identical to a serial
   sweep by the determinism guarantee, which test_exec checks directly. *)
let sweep =
  lazy
    (let workloads =
       List.filter_map W.Registry.find [ "GOL"; "GraphChi-vE/CC"; "RAY" ]
     in
     E.Sweep.exec ~scale:0.08 ~iterations:2 ~j:2 ~workloads ())

let geomean points series = E.Figview.geomean_of points ~series

let test_sweep_contents () =
  let s = Lazy.force sweep in
  check Alcotest.int "3 workloads x 6 columns" 18 (List.length (E.Sweep.runs s));
  check Alcotest.int "names" 3 (List.length (E.Sweep.workload_names s));
  check Alcotest.int "5 distinct techniques" 5
    (List.length (E.Sweep.techniques s));
  let r = E.Sweep.get s ~workload:"Dynasoar/GOL" ~technique:T.Cuda in
  check Alcotest.bool "lookup works" true (r.W.Harness.cycles > 0.);
  (* [get ~technique] must keep finding the paper's default-family run,
     not the DYNA column (also technique = Cuda). *)
  check Alcotest.bool "default-family lookup" true
    (A.equal r.W.Harness.alloc A.Cuda);
  let d =
    E.Sweep.get_column s ~workload:"Dynasoar/GOL"
      ~column:(E.Sweep.column ~alloc:A.Dyna_soa T.Cuda)
  in
  check Alcotest.bool "dyna column present" true
    (A.equal d.W.Harness.alloc A.Dyna_soa);
  check Alcotest.bool "dyna column is a distinct run" true
    (d.W.Harness.cycles > 0. && d.W.Harness.cycles <> r.W.Harness.cycles)

let test_fig6_shape () =
  let points = E.Fig6.points (Lazy.force sweep) in
  let gm name = geomean points name in
  check (Alcotest.float 1e-9) "SharedOA is the baseline" 1.0 (gm "SHARD");
  check Alcotest.bool "CUDA slower than SharedOA" true (gm "CUDA" < 1.0);
  check Alcotest.bool "TP at least SharedOA" true (gm "TP" >= 0.98);
  check Alcotest.bool "TP beats CUDA" true (gm "TP" > gm "CUDA");
  check Alcotest.bool "COAL beats CUDA" true (gm "COAL" > gm "CUDA")

let test_fig7_shape () =
  let points = E.Fig7.points (Lazy.force sweep) in
  let avg name = geomean points name in
  check (Alcotest.float 0.01) "CUDA instr count = SharedOA" 1.0 (avg "CUDA");
  check Alcotest.bool "COAL adds the most instructions" true
    (avg "COAL" > avg "CON" && avg "COAL" > 1.2);
  check Alcotest.bool "Concord adds instructions" true (avg "CON" > 1.0);
  check Alcotest.bool "TP adds instructions (prototype strips)" true (avg "TP" > 1.0);
  (* The breakdown rows sum to the totals. *)
  List.iter
    (fun (workload, rows) ->
      List.iter
        (fun (tech, (m, c, k)) ->
          let total =
            List.find
              (fun (p : Repro_report.Series.point) ->
                p.Repro_report.Series.group = workload
                && p.Repro_report.Series.series = tech)
              points
          in
          check (Alcotest.float 1e-6) "breakdown sums" total.Repro_report.Series.value
            (m +. c +. k))
        rows)
    (E.Fig7.breakdown (Lazy.force sweep))

let test_fig8_shape () =
  let points = E.Fig8.points (Lazy.force sweep) in
  check Alcotest.bool "TP issues the fewest load transactions" true
    (geomean points "TP" <= geomean points "SHARD");
  check Alcotest.bool "COAL saves transactions vs SharedOA" true
    (geomean points "COAL" <= geomean points "SHARD" +. 0.02)

let test_fig9_shape () =
  let points = E.Fig9.points (Lazy.force sweep) in
  List.iter
    (fun (p : Repro_report.Series.point) ->
      check Alcotest.bool "hit rate in [0,1]" true
        (p.Repro_report.Series.value >= 0. && p.Repro_report.Series.value <= 1.))
    points;
  (* Packing gives SharedOA a better L1 than the default allocator on the
     memory-bound apps (GOL here). *)
  let v tech = Repro_report.Series.value points ~group:"GOL" ~series:tech in
  check Alcotest.bool "SharedOA L1 beats CUDA on GOL" true (v "SHARD" > v "CUDA")

let test_fig1b_shape () =
  let b = E.Fig1b.average (Lazy.force sweep) in
  check Alcotest.bool "shares sum to 1" true
    (abs_float (b.E.Fig1b.vtable_share +. b.E.Fig1b.vfunc_share +. b.E.Fig1b.call_share -. 1.)
     < 1e-6);
  check Alcotest.bool "the vTable* load dominates (paper: 87%)" true
    (b.E.Fig1b.vtable_share > 0.5)

let test_table1_measured () =
  let rows = E.Table1.measure (Lazy.force sweep) in
  let find name = List.find (fun (m : E.Table1.measured) -> m.E.Table1.technique = name) rows in
  let cuda = find "CUDA" and coal = find "COAL" and tp = find "TP" in
  check Alcotest.bool "CUDA's A is object-proportional (diverged)" true
    (cuda.E.Table1.get_vtable_per_kcall > 1000.);
  check Alcotest.bool "COAL's lookup is type-proportional (coalesced)" true
    (coal.E.Table1.get_vtable_per_kcall < cuda.E.Table1.get_vtable_per_kcall /. 2.);
  check (Alcotest.float 1e-9) "TP needs zero accesses for the type" 0.
    tp.E.Table1.get_vtable_per_kcall

let test_table2_rows () =
  let rows = E.Table2.rows (Lazy.force sweep) in
  check Alcotest.int "three rows" 3 (List.length rows);
  List.iter
    (fun (r : E.Table2.row) ->
      check Alcotest.bool "objects positive" true (r.E.Table2.objects > 0);
      check Alcotest.bool "types plausible" true (r.E.Table2.types >= 3 && r.E.Table2.types <= 6);
      check Alcotest.bool "pki positive" true (r.E.Table2.vfunc_pki > 0.))
    rows

let test_fig10_chunk_sweep () =
  let gol = Option.get (W.Registry.find "GOL") in
  let points = E.Fig10.run ~scale:0.05 ~workloads:[ gol ] () in
  check Alcotest.int "one point per chunk size" (List.length E.Fig10.chunk_sizes)
    (List.length points);
  List.iter
    (fun (p : E.Fig10.point) ->
      check Alcotest.bool "perf positive" true (p.E.Fig10.perf_vs_cuda > 0.);
      check Alcotest.bool "fragmentation in [0,1)" true
        (p.E.Fig10.fragmentation >= 0. && p.E.Fig10.fragmentation < 1.))
    points;
  (* Fragmentation grows with the chunk size (Fig. 10b's trend). *)
  let frag c =
    (List.find (fun (p : E.Fig10.point) -> p.E.Fig10.chunk_objs = c) points)
      .E.Fig10.fragmentation
  in
  check Alcotest.bool "bigger chunks waste more" true
    (frag 131072 >= frag 512)

let test_fig11_tp_on_cuda () =
  let ge = Option.get (W.Registry.find "GraphChi-vEN/CC") in
  let points = E.Fig11.points ~scale:0.08 ~workloads:[ ge ] () in
  let v = Repro_report.Series.value points ~group:"GM" ~series:"TP/CUDA" in
  check Alcotest.bool "TypePointer helps without changing the allocator" true (v > 1.0)

let test_fig12_shapes () =
  (* A small object sweep: virtual dispatch must cost over BRANCH, and
     TypePointer must close most of the gap (Fig. 12a). *)
  let points =
    E.Fig12.sweep_for_test ~configs:[ (8192, 4); (32768, 4) ]
  in
  let at variant n =
    (List.find
       (fun (p : E.Fig12.point) -> p.E.Fig12.variant = variant && p.E.Fig12.n_objects = n)
       points)
      .E.Fig12.norm_time
  in
  check Alcotest.bool "CUDA slowest at scale" true
    (at "CUDA" 32768 > at "TP" 32768 && at "CUDA" 32768 > at "BRANCH" 32768);
  check Alcotest.bool "TP between branch and CUDA" true
    (at "TP" 32768 >= at "BRANCH" 32768);
  check Alcotest.bool "slowdown grows with objects" true
    (at "CUDA" 32768 > at "CUDA" 8192)

let test_init_speedup () =
  let gol = Option.get (W.Registry.find "GOL") in
  let rows = E.Init_bench.run ~scale:0.05 ~workloads:[ gol ] () in
  check (Alcotest.float 1e-6) "the 80x initialization gap" 80.
    (E.Init_bench.geomean_speedup rows)

let test_ablation_encoding_free () =
  let row = E.Ablation.tp_encoding ~n_objects:4096 ~n_types:4 () in
  check Alcotest.bool "padded-index tags cost (almost) nothing" true
    (abs_float row.E.Ablation.delta < 0.05)

let test_expectations_present () =
  (* The recorded paper numbers stay self-consistent. *)
  check Alcotest.int "five fig6 entries" 5 (List.length E.Expectations.fig6_geomean);
  check (Alcotest.float 1e-9) "fig11 target" 1.18 E.Expectations.fig11_geomean;
  check Alcotest.bool "fig1b share" true (E.Expectations.fig1b_vtable_share > 0.8)

let suite =
  [
    Alcotest.test_case "sweep contents" `Slow test_sweep_contents;
    Alcotest.test_case "fig6 shape" `Slow test_fig6_shape;
    Alcotest.test_case "fig7 shape" `Slow test_fig7_shape;
    Alcotest.test_case "fig8 shape" `Slow test_fig8_shape;
    Alcotest.test_case "fig9 shape" `Slow test_fig9_shape;
    Alcotest.test_case "fig1b shape" `Slow test_fig1b_shape;
    Alcotest.test_case "table1 measured" `Slow test_table1_measured;
    Alcotest.test_case "table2 rows" `Slow test_table2_rows;
    Alcotest.test_case "fig10 chunk sweep" `Slow test_fig10_chunk_sweep;
    Alcotest.test_case "fig11 tp on cuda" `Slow test_fig11_tp_on_cuda;
    Alcotest.test_case "fig12 shapes" `Slow test_fig12_shapes;
    Alcotest.test_case "init speedup" `Quick test_init_speedup;
    Alcotest.test_case "ablation: tag encoding free" `Quick test_ablation_encoding_free;
    Alcotest.test_case "expectations recorded" `Quick test_expectations_present;
  ]
