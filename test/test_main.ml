(* Entry point aggregating every suite; `dune runtest` runs this. *)

let () =
  Alcotest.run "gpu-virtual-functions"
    [
      ("util", Test_util.suite);
      ("mem", Test_mem.suite);
      ("vm", Test_vm.suite);
      ("san", Test_san.suite);
      ("gpu", Test_gpu.suite);
      ("core", Test_core.suite);
      ("workloads", Test_workloads.suite);
      ("exec", Test_exec.suite);
      ("serve", Test_serve.suite);
      ("report", Test_report.suite);
      ("obs", Test_obs.suite);
      ("experiments", Test_experiments.suite);
      ("integration", Test_integration.suite);
    ]
