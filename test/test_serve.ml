(* The serve protocol and daemon: request/response round-trips (every
   constructor, property-tested specs), decode errors that name the
   offending field, bit-exact results across the wire, and the
   scheduler's three invariants — dedup/stampede protection, disconnect
   cancellation, fair queueing. *)

module W = Repro_workloads
module T = Repro_core.Technique
module X = Repro_exec
module O = Repro_obs
module J = Repro_obs.Json

let check = Alcotest.check

(* One real (tiny) measurement shared by the wire-fidelity tests. *)
let tiny_run =
  lazy
    (let job =
       match
         X.Request.Spec.resolve
           (X.Request.Spec.make ~scale:0.02 ~workload:"TRAF" ~technique:"tp" ())
       with
       | Ok j -> j
       | Error msg -> failwith msg
     in
     X.Job.run job)

let with_temp_dir f =
  let dir = Filename.temp_file "repro_serve_test" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (X.Cache.clear ~dir);
      try Sys.remove dir with Sys_error _ -> ())
    (fun () -> f dir)

let temp_socket () =
  let path = Filename.temp_file "repro_serve_test" ".sock" in
  Sys.remove path;
  path

(* --- technique codec ------------------------------------------------------ *)

let all_techniques =
  [
    T.Cuda; T.Concord; T.Shared_oa; T.Coal;
    T.Type_pointer { mode = T.Prototype; on_cuda_alloc = false };
    T.Type_pointer { mode = T.Prototype; on_cuda_alloc = true };
    T.Type_pointer { mode = T.Hw_mmu; on_cuda_alloc = false };
    T.Type_pointer { mode = T.Hw_mmu; on_cuda_alloc = true };
  ]

let test_technique_codec_total () =
  List.iter
    (fun t ->
      let name = X.Request.technique_to_string t in
      match X.Request.technique_of_string name with
      | Ok t' ->
        check Alcotest.bool (name ^ " round-trips") true (t = t')
      | Error msg -> Alcotest.failf "%s does not decode: %s" name msg)
    all_techniques;
  check Alcotest.bool "unknown technique rejected" true
    (Result.is_error (X.Request.technique_of_string "vtable"))

(* --- spec round-trip (property) ------------------------------------------- *)

let spec_gen =
  let open QCheck.Gen in
  let* workload =
    oneofl [ "TRAF"; "GOL"; "Dynasoar/GEN"; "RAY"; "nonsense" ]
  in
  let* technique = oneofl X.Request.technique_names in
  let* alloc = opt (oneofl Repro_core.Alloc_family.all_names) in
  let* scale = float_range 0.01 2.0 in
  let* seed = int_range 0 1000 in
  let* iterations = opt (int_range 1 5) in
  let* chunk_objs = opt (int_range 16 256) in
  return
    (X.Request.Spec.make ?alloc ?iterations ?chunk_objs ~scale ~seed ~workload
       ~technique ())

let spec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"spec JSON round-trip"
    (QCheck.make spec_gen)
    (fun spec ->
      match J.of_string (J.to_string (X.Request.Spec.to_json spec)) with
      | Error _ -> false
      | Ok j -> (
        match J.Decode.run X.Request.Spec.decoder j with
        | Ok spec' -> X.Request.Spec.equal spec spec'
        | Error _ -> false))

(* --- request round-trip --------------------------------------------------- *)

let sample_specs =
  [
    X.Request.Spec.make ~workload:"TRAF" ~technique:"tp" ();
    X.Request.Spec.make ~scale:0.5 ~seed:7 ~iterations:2 ~chunk_objs:64
      ~workload:"GOL" ~technique:"tp/cuda" ();
    X.Request.Spec.make ~alloc:"dyna" ~workload:"GOL" ~technique:"cuda" ();
  ]

let sample_requests =
  [
    X.Request.Submit { id = "b-1"; cache = true; specs = sample_specs };
    X.Request.Submit { id = ""; cache = false; specs = [] };
    X.Request.Query (List.hd sample_specs);
    X.Request.Invalidate (Some (List.nth sample_specs 1));
    X.Request.Invalidate None;
    X.Request.Stats;
    X.Request.Health;
    X.Request.Trace_dump;
    X.Request.Ping;
    X.Request.Shutdown;
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let line = X.Request.to_line req in
      check Alcotest.bool "one line" false (String.contains line '\n');
      match X.Request.of_line line with
      | Ok req' ->
        check Alcotest.string "re-encodes identically" line
          (X.Request.to_line req')
      | Error msg -> Alcotest.failf "%s does not decode: %s" line msg)
    sample_requests

(* --- response round-trip --------------------------------------------------- *)

let sample_outcome ~cached ~deduped result =
  {
    X.Response.spec = List.hd sample_specs;
    cached;
    deduped;
    wall_s = 0.25;
    result;
  }

(* A non-trivial service snapshot + stage histograms for the stats
   round-trip: distinct values in every field class (plain counter,
   float counter, gauges, a populated histogram). *)
let sample_svc () =
  let m = O.Svc_metrics.create () in
  m.O.Svc_metrics.submitted <- 10;
  m.O.Svc_metrics.executed <- 3;
  m.O.Svc_metrics.dedup_hits <- 4;
  m.O.Svc_metrics.cache_hits <- 3;
  m.O.Svc_metrics.cache_misses <- 2;
  m.O.Svc_metrics.stampede_avoided <- 1;
  m.O.Svc_metrics.requests <- 12;
  m.O.Svc_metrics.slow_requests <- 1;
  m.O.Svc_metrics.responses <- 20;
  m.O.Svc_metrics.decode_errors <- 2;
  m.O.Svc_metrics.bytes_in <- 4096;
  m.O.Svc_metrics.bytes_out <- 16384;
  m.O.Svc_metrics.worker_busy_s <- 1.75;
  O.Hist.record (O.Svc_metrics.stage m "request") 0.004;
  O.Hist.record (O.Svc_metrics.stage m "request") 0.250;
  O.Hist.record (O.Svc_metrics.stage m "run") 0.051;
  let svc =
    O.Svc_metrics.snapshot m ~sessions:2 ~queue_depth:1 ~inflight:3 ~running:2
  in
  let stages =
    List.map
      (fun n -> (n, O.Hist.copy (O.Svc_metrics.stage m n)))
      O.Svc_metrics.stage_names
  in
  (svc, stages)

let sample_trace () =
  let ring = O.Tracer.Ring.create ~capacity:8 in
  O.Tracer.Ring.record ring ~name:"decode" ~track:0 ~trace:1 ~ts:0.001
    ~dur:0.0002;
  O.Tracer.Ring.record ring ~name:"run" ~track:1 ~trace:1 ~ts:0.002 ~dur:0.05;
  O.Tracer.spans_to_json
    ~tracks:[ (0, "events"); (1, "worker 1") ]
    (O.Tracer.Ring.dump ring)

let sample_responses () =
  let run = Lazy.force tiny_run in
  let svc, stages = sample_svc () in
  [
    X.Response.Ack { id = "b-1"; jobs = 3 };
    X.Response.Running { id = "b-1"; index = 2 };
    X.Response.Job_done
      { id = "b-1"; index = 0; outcome = sample_outcome ~cached:false ~deduped:false (Ok run) };
    X.Response.Job_done
      { id = "b-1"; index = 1;
        outcome = sample_outcome ~cached:true ~deduped:false (Error "boom") };
    X.Response.Job_done
      { id = "b-1"; index = 2; outcome = sample_outcome ~cached:false ~deduped:true (Ok run) };
    X.Response.Batch_done
      { id = "b-1"; jobs = 3; measured = 1; cached = 1; deduped = 1;
        failed = 1; wall_s = 0.5 };
    X.Response.Queried { hit = true; run = Some run };
    X.Response.Queried { hit = false; run = None };
    X.Response.Invalidated { removed = 55 };
    X.Response.Server_stats
      { sessions = 2; submitted = 10; executed = 3; dedup_hits = 4;
        cache_hits = 3; queued = 1; running = 2; uptime_s = 12.5;
        svc = None; stages = [] };
    X.Response.Server_stats
      { sessions = 2; submitted = 10; executed = 3; dedup_hits = 4;
        cache_hits = 3; queued = 1; running = 2; uptime_s = 12.5;
        svc = Some svc; stages };
    X.Response.Health
      { h_uptime_s = 3.5; h_schema = 2; h_workers = 4; h_sessions = 1;
        h_queued = 0; h_running = 2 };
    X.Response.Trace_dump { spans = 2; dropped = 0; trace = sample_trace () };
    X.Response.Pong;
    X.Response.Bye;
    X.Response.Error { message = "jobs[2].scale: expected a number" };
  ]

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let line = X.Response.to_line resp in
      check Alcotest.bool "one line" false (String.contains line '\n');
      match X.Response.of_line line with
      | Ok resp' ->
        check Alcotest.string "re-encodes identically" line
          (X.Response.to_line resp')
      | Error msg -> Alcotest.failf "%s does not decode: %s" line msg)
    (sample_responses ())

let test_run_wire_fidelity () =
  let run = Lazy.force tiny_run in
  let text = J.to_string (X.Response.run_to_json run) in
  match J.of_string text with
  | Error msg -> Alcotest.failf "run JSON does not parse: %s" msg
  | Ok j -> (
    match J.Decode.run X.Response.run_decoder j with
    | Error msg -> Alcotest.failf "run does not decode: %s" msg
    | Ok run' ->
      check Alcotest.string "byte-identical re-encoding" text
        (J.to_string (X.Response.run_to_json run'));
      check Alcotest.bool "cycles survive exactly" true
        (run.W.Harness.cycles = run'.W.Harness.cycles);
      check Alcotest.bool "checksum survives exactly" true
        (run.W.Harness.checksum = run'.W.Harness.checksum);
      check Alcotest.bool "stats survive exactly" true
        (Repro_gpu.Stats.to_raw run.W.Harness.stats
         = Repro_gpu.Stats.to_raw run'.W.Harness.stats))

(* --- decode errors name the field ----------------------------------------- *)

let decode_error line =
  match X.Request.of_line line with
  | Ok _ -> Alcotest.fail "expected a decode error"
  | Error msg -> msg

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_decode_errors_name_field () =
  let err =
    decode_error
      {|{"v":2,"type":"submit","id":"b","jobs":[{"workload":"GOL","technique":"tp"},{"workload":"GOL","technique":"tp","scale":"big"}]}|}
  in
  check Alcotest.bool ("path in: " ^ err) true (contains ~sub:"jobs[1].scale" err);
  let err = decode_error {|{"v":2,"type":"submit","jobs":[]}|} in
  check Alcotest.bool ("missing id in: " ^ err) true (contains ~sub:"id" err);
  let err =
    decode_error
      {|{"v":2,"type":"submit","id":"b","jobs":[{"workload":"GOL","technique":"tp","alloc":"slab"}]}|}
  in
  check Alcotest.bool ("alloc path in: " ^ err) true
    (contains ~sub:"jobs[0].alloc" err);
  check Alcotest.bool ("alloc families listed in: " ^ err) true
    (contains ~sub:"expected one of cuda, shared-oa, dyna" err);
  let err = decode_error {|{"v":2,"type":"query","job":{"technique":"tp"}}|} in
  check Alcotest.bool ("path in: " ^ err) true
    (contains ~sub:"job.workload" err);
  let err = decode_error {|{"v":2}|} in
  check Alcotest.bool ("missing type in: " ^ err) true (contains ~sub:"type" err);
  let err = decode_error "{" in
  check Alcotest.bool ("malformed in: " ^ err) true
    (contains ~sub:"malformed JSON" err)

let test_schema_version_checked () =
  let err = decode_error {|{"v":1,"type":"ping"}|} in
  check Alcotest.bool ("version in: " ^ err) true
    (contains ~sub:"unsupported schema version 1" err);
  let err = decode_error {|{"type":"ping"}|} in
  check Alcotest.bool ("missing v in: " ^ err) true (contains ~sub:"v" err);
  match X.Response.of_line {|{"v":9,"type":"pong"}|} with
  | Ok _ -> Alcotest.fail "response with wrong version decoded"
  | Error msg ->
    check Alcotest.bool ("version in: " ^ msg) true
      (contains ~sub:"unsupported schema version 9" msg)

(* --- spec resolution ------------------------------------------------------- *)

let test_spec_resolution () =
  let spec = X.Request.Spec.make ~workload:"TRAF" ~technique:"tp" () in
  (match X.Request.Spec.resolve spec with
   | Ok job ->
     let back = X.Request.Spec.of_job job in
     (match X.Request.Spec.resolve back with
      | Ok job' ->
        check Alcotest.string "of_job resolves to the same key"
          (X.Job.key job) (X.Job.key job')
      | Error msg -> Alcotest.fail msg)
   | Error msg -> Alcotest.fail msg);
  (match
     X.Request.Spec.resolve
       (X.Request.Spec.make ~workload:"NOPE" ~technique:"tp" ())
   with
   | Ok _ -> Alcotest.fail "unknown workload resolved"
   | Error msg ->
     check Alcotest.bool ("names workload: " ^ msg) true
       (contains ~sub:{|unknown workload "NOPE"|} msg));
  match
    X.Request.Spec.resolve
      (X.Request.Spec.make ~workload:"TRAF" ~technique:"vtable" ())
  with
  | Ok _ -> Alcotest.fail "unknown technique resolved"
  | Error msg ->
    check Alcotest.bool ("names technique: " ^ msg) true
      (contains ~sub:{|unknown technique "vtable"|} msg)

(* --- daemon integration ---------------------------------------------------- *)

(* A controllable runner: counts executions per job key, optionally
   sleeping so the test can race clients against an in-flight job. *)
let counting_runner ?(delay = 0.) () =
  let lock = Mutex.create () in
  let executed = ref [] in
  let run = Lazy.force tiny_run in
  let runner (job : X.Job.t) =
    Mutex.lock lock;
    executed := X.Job.key job :: !executed;
    Mutex.unlock lock;
    if delay > 0. then Thread.delay delay;
    Ok run
  in
  let order () =
    Mutex.lock lock;
    let l = List.rev !executed in
    Mutex.unlock lock;
    l
  in
  (runner, order)

let with_server ?runner ?(workers = 1) ?(cache = false)
    ?(obs = X.Server.obs_off) f =
  with_temp_dir (fun cache_dir ->
      let cfg =
        { X.Server.socket_path = temp_socket (); workers; cache; cache_dir;
          obs }
      in
      let handle = X.Server.start ?runner cfg in
      Fun.protect
        ~finally:(fun () -> X.Server.stop handle)
        (fun () -> f cfg.X.Server.socket_path))

let client socket =
  let c = X.Server.Client.connect socket in
  X.Server.Client.set_timeout c 30.;
  c

let submit c ~id specs =
  X.Server.Client.send c (X.Request.Submit { id; cache = true; specs })

(* Read until this batch completes; collect its outcomes by index. *)
let drain_batch c ~id ~jobs =
  let outcomes = Array.make (max jobs 1) None in
  let rec go () =
    match X.Server.Client.recv c with
    | Error msg -> Alcotest.failf "recv failed: %s" msg
    | Ok (X.Response.Error { message }) -> Alcotest.failf "server: %s" message
    | Ok (X.Response.Job_done { id = bid; index; outcome }) ->
      if bid = id then outcomes.(index) <- Some outcome;
      go ()
    | Ok (X.Response.Batch_done { id = bid; _ }) when bid = id ->
      Array.to_list outcomes |> List.filter_map Fun.id
    | Ok _ -> go ()
  in
  go ()

let spec_traf = X.Request.Spec.make ~scale:0.02 ~workload:"TRAF" ~technique:"tp" ()
let spec_n seed =
  X.Request.Spec.make ~scale:0.02 ~seed ~workload:"TRAF" ~technique:"tp" ()

let server_stats socket =
  let c = client socket in
  X.Server.Client.send c X.Request.Stats;
  let s =
    match X.Server.Client.recv c with
    | Ok (X.Response.Server_stats s) -> s
    | Ok _ | Error _ -> Alcotest.fail "no stats"
  in
  X.Server.Client.close c;
  s

let test_dedup_single_execution () =
  let runner, order = counting_runner ~delay:0.3 () in
  with_server ~runner ~workers:2 ~cache:true (fun socket ->
      let c1 = client socket and c2 = client socket in
      submit c1 ~id:"a" [ spec_traf ];
      submit c2 ~id:"b" [ spec_traf ];
      let o1 = drain_batch c1 ~id:"a" ~jobs:1 in
      let o2 = drain_batch c2 ~id:"b" ~jobs:1 in
      check Alcotest.int "one execution for two submissions" 1
        (List.length (order ()));
      let ok o =
        match (o : X.Response.outcome list) with
        | [ o ] -> Result.is_ok o.X.Response.result
        | _ -> false
      in
      check Alcotest.bool "client 1 got a result" true (ok o1);
      check Alcotest.bool "client 2 got a result" true (ok o2);
      let deduped =
        List.concat [ o1; o2 ]
        |> List.filter (fun o -> o.X.Response.deduped)
        |> List.length
      in
      check Alcotest.int "exactly one waiter marked deduped" 1 deduped;
      let s = server_stats socket in
      check Alcotest.int "dedup_hits counted" 1 s.X.Response.dedup_hits;
      X.Server.Client.close c1;
      X.Server.Client.close c2)

(* Cold cache + N identical concurrent requests: the stampede runs one
   execution, and a later request is served from the now-warm cache. *)
let test_cache_stampede_protection () =
  let runner, order = counting_runner ~delay:0.3 () in
  with_server ~runner ~workers:4 ~cache:true (fun socket ->
      let cs = List.init 3 (fun _ -> client socket) in
      List.iteri (fun i c -> submit c ~id:(string_of_int i) [ spec_traf ]) cs;
      List.iteri
        (fun i c ->
          ignore (drain_batch c ~id:(string_of_int i) ~jobs:1);
          X.Server.Client.close c)
        cs;
      check Alcotest.int "stampede ran once" 1 (List.length (order ()));
      let c = client socket in
      submit c ~id:"late" [ spec_traf ];
      let late = drain_batch c ~id:"late" ~jobs:1 in
      X.Server.Client.close c;
      check Alcotest.bool "late request served from cache" true
        (match late with [ o ] -> o.X.Response.cached | _ -> false);
      check Alcotest.int "cache hit did not re-run" 1 (List.length (order ())))

let test_disconnect_cancels_queued_only () =
  let runner, order = counting_runner ~delay:0.3 () in
  with_server ~runner ~workers:1 ~cache:false (fun socket ->
      let a = client socket and b = client socket in
      (* A's first job occupies the only worker; its second is queued. *)
      submit a ~id:"a" [ spec_n 1; spec_n 2 ];
      Thread.delay 0.1;
      submit b ~id:"b" [ spec_n 3 ];
      Thread.delay 0.05;
      X.Server.Client.close a;
      let ob = drain_batch b ~id:"b" ~jobs:1 in
      check Alcotest.bool "B's job completed" true
        (match ob with
         | [ o ] -> Result.is_ok o.X.Response.result
         | _ -> false);
      (* Give the in-flight job time to finish, then inspect. *)
      Thread.delay 0.2;
      let keys = order () in
      let key_of spec =
        match X.Request.Spec.resolve spec with
        | Ok j -> X.Job.key j
        | Error msg -> Alcotest.fail msg
      in
      check Alcotest.bool "A's running job finished" true
        (List.mem (key_of (spec_n 1)) keys);
      check Alcotest.bool "A's queued job was cancelled" false
        (List.mem (key_of (spec_n 2)) keys);
      check Alcotest.bool "B's job ran" true (List.mem (key_of (spec_n 3)) keys);
      X.Server.Client.close b)

let test_fair_queueing () =
  let runner, order = counting_runner ~delay:0.15 () in
  with_server ~runner ~workers:1 ~cache:false (fun socket ->
      let greedy = client socket and polite = client socket in
      submit greedy ~id:"g" (List.init 6 (fun i -> spec_n (10 + i)));
      Thread.delay 0.05;
      (* Arrives while the greedy batch monopolizes the queue... *)
      submit polite ~id:"p" [ spec_n 99 ];
      ignore (drain_batch polite ~id:"p" ~jobs:1);
      ignore (drain_batch greedy ~id:"g" ~jobs:6);
      let keys = order () in
      let polite_key =
        match X.Request.Spec.resolve (spec_n 99) with
        | Ok j -> X.Job.key j
        | Error msg -> Alcotest.fail msg
      in
      let position =
        let rec find i = function
          | [] -> Alcotest.fail "polite job never ran"
          | k :: _ when k = polite_key -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 keys
      in
      (* ...but round-robin serves it right after the job in flight,
         not behind all six. *)
      check Alcotest.bool
        (Printf.sprintf "polite job ran early (position %d)" position)
        true (position <= 2);
      X.Server.Client.close greedy;
      X.Server.Client.close polite)

(* The acceptance bar: a real measurement through the daemon carries
   byte-identical stats to the same job run in-process. *)
let test_daemon_byte_identical () =
  with_server ~workers:1 ~cache:false (fun socket ->
      let c = client socket in
      X.Server.Client.set_timeout c 120.;
      submit c ~id:"real" [ spec_traf ];
      let outcomes = drain_batch c ~id:"real" ~jobs:1 in
      X.Server.Client.close c;
      let remote =
        match outcomes with
        | [ { X.Response.result = Ok r; _ } ] -> r
        | _ -> Alcotest.fail "daemon did not return a result"
      in
      let local = Lazy.force tiny_run in
      check Alcotest.string "identical run JSON"
        (J.to_string (X.Response.run_to_json local))
        (J.to_string (X.Response.run_to_json remote)))

let test_batch_error_reporting () =
  with_server ~workers:1 (fun socket ->
      let c = client socket in
      X.Server.Client.send c
        (X.Request.Submit
           {
             id = "bad";
             cache = false;
             specs =
               [ spec_traf;
                 X.Request.Spec.make ~workload:"NOPE" ~technique:"tp" () ];
           });
      (match X.Server.Client.recv c with
       | Ok (X.Response.Error { message }) ->
         check Alcotest.bool ("names the job: " ^ message) true
           (contains ~sub:"jobs[1]" message
            && contains ~sub:{|unknown workload "NOPE"|} message)
       | Ok _ -> Alcotest.fail "bad batch was accepted"
       | Error msg -> Alcotest.failf "recv failed: %s" msg);
      (* The connection survives a rejected batch. *)
      X.Server.Client.send c X.Request.Ping;
      (match X.Server.Client.recv c with
       | Ok X.Response.Pong -> ()
       | _ -> Alcotest.fail "connection died after a rejected batch");
      X.Server.Client.close c)

(* --- observability: the daemon's own account of itself -------------------- *)

(* Off by default: a stats response from an obs-off daemon carries no
   svc/stages keys — byte-identical to the pre-observability wire form. *)
let test_stats_byte_compat_obs_off () =
  with_server (fun socket ->
      let s = server_stats socket in
      check Alcotest.bool "no svc snapshot" true (s.X.Response.svc = None);
      check Alcotest.bool "no stage histograms" true
        (s.X.Response.stages = []);
      let line = X.Response.to_line (X.Response.Server_stats s) in
      check Alcotest.bool "wire form has no svc key" false
        (contains ~sub:{|"svc"|} line);
      check Alcotest.bool "wire form has no stages key" false
        (contains ~sub:{|"stages"|} line))

(* Health answers regardless of observability config. *)
let test_health_roundtrip_live () =
  with_server ~workers:2 (fun socket ->
      let c = client socket in
      X.Server.Client.send c X.Request.Health;
      (match X.Server.Client.recv c with
       | Ok (X.Response.Health h) ->
         check Alcotest.int "schema" X.Request.schema_version
           h.X.Response.h_schema;
         check Alcotest.int "workers" 2 h.X.Response.h_workers;
         check Alcotest.bool "uptime non-negative" true
           (h.X.Response.h_uptime_s >= 0.);
         check Alcotest.bool "this session is counted" true
           (h.X.Response.h_sessions >= 1);
         check Alcotest.int "nothing queued" 0 h.X.Response.h_queued;
         check Alcotest.int "nothing running" 0 h.X.Response.h_running
       | Ok _ -> Alcotest.fail "expected a health response"
       | Error msg -> Alcotest.failf "recv failed: %s" msg);
      X.Server.Client.close c)

(* With metrics on, the end-to-end "request" histogram counts exactly
   the request lines answered — each stats probe snapshots before its
   own completion, so it never counts itself. *)
let test_request_histogram_counts_requests () =
  let runner, _ = counting_runner () in
  with_server ~runner ~obs:(X.Server.obs_default ()) (fun socket ->
      let c = client socket in
      for _ = 1 to 3 do
        X.Server.Client.send c X.Request.Ping;
        match X.Server.Client.recv c with
        | Ok X.Response.Pong -> ()
        | _ -> Alcotest.fail "no pong"
      done;
      X.Server.Client.send c X.Request.Stats;
      let s =
        match X.Server.Client.recv c with
        | Ok (X.Response.Server_stats s) -> s
        | _ -> Alcotest.fail "no stats"
      in
      let svc =
        match s.X.Response.svc with
        | Some svc -> svc
        | None -> Alcotest.fail "metrics on but no svc snapshot"
      in
      check Alcotest.int "3 requests completed before this probe" 3
        svc.O.Svc_metrics.s_requests;
      let hist name =
        match List.assoc_opt name s.X.Response.stages with
        | Some h -> h
        | None -> Alcotest.failf "no %S histogram" name
      in
      check Alcotest.int "request histogram agrees" 3
        (O.Hist.count (hist "request"));
      check Alcotest.bool "every stage histogram is present" true
        (List.for_all
           (fun n -> List.mem_assoc n s.X.Response.stages)
           O.Svc_metrics.stage_names);
      (* A submit rides the same accounting: one more request, one run. *)
      submit c ~id:"x" [ spec_traf ];
      ignore (drain_batch c ~id:"x" ~jobs:1);
      X.Server.Client.send c X.Request.Stats;
      let s' =
        match X.Server.Client.recv c with
        | Ok (X.Response.Server_stats s) -> s
        | _ -> Alcotest.fail "no stats"
      in
      let hist' name =
        match List.assoc_opt name s'.X.Response.stages with
        | Some h -> h
        | None -> Alcotest.failf "no %S histogram" name
      in
      (* 3 pings + first stats + submit = 5 completed request lines. *)
      check Alcotest.int "submit counted end-to-end" 5
        (O.Hist.count (hist' "request"));
      check Alcotest.int "one execution in the run histogram" 1
        (O.Hist.count (hist' "run"));
      (* Decode is timed before handling, so this probe has already
         recorded its own decode — one ahead of the completed count. *)
      check Alcotest.int "decode timed for every request line" 6
        (O.Hist.count (hist' "decode"));
      X.Server.Client.close c)

(* trace-dump returns a structurally valid Chrome trace document
   covering the request's own stages. *)
let test_trace_dump_live () =
  let runner, _ = counting_runner () in
  with_server ~runner ~obs:(X.Server.obs_default ()) (fun socket ->
      let c = client socket in
      submit c ~id:"t" [ spec_traf ];
      ignore (drain_batch c ~id:"t" ~jobs:1);
      X.Server.Client.send c X.Request.Trace_dump;
      (match X.Server.Client.recv c with
       | Ok (X.Response.Trace_dump { spans; dropped; trace }) ->
         check Alcotest.bool "spans recorded" true (spans > 0);
         check Alcotest.int "nothing dropped" 0 dropped;
         (match O.Tracer.validate trace with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "invalid trace: %s" msg)
       | Ok _ -> Alcotest.fail "expected a trace dump"
       | Error msg -> Alcotest.failf "recv failed: %s" msg);
      X.Server.Client.close c)

(* ...and an obs-off daemon says so instead of returning an empty one. *)
let test_trace_dump_disabled () =
  with_server (fun socket ->
      let c = client socket in
      X.Server.Client.send c X.Request.Trace_dump;
      (match X.Server.Client.recv c with
       | Ok (X.Response.Error { message }) ->
         check Alcotest.bool ("says disabled: " ^ message) true
           (contains ~sub:"disabled" message)
       | Ok _ -> Alcotest.fail "expected an error"
       | Error msg -> Alcotest.failf "recv failed: %s" msg);
      (* The connection survives. *)
      X.Server.Client.send c X.Request.Ping;
      (match X.Server.Client.recv c with
       | Ok X.Response.Pong -> ()
       | _ -> Alcotest.fail "connection died after trace-dump error");
      X.Server.Client.close c)

let suite =
  [
    Alcotest.test_case "technique codec is total" `Quick
      test_technique_codec_total;
    QCheck_alcotest.to_alcotest spec_roundtrip;
    Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
    Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "run is bit-exact on the wire" `Quick
      test_run_wire_fidelity;
    Alcotest.test_case "decode errors name the field" `Quick
      test_decode_errors_name_field;
    Alcotest.test_case "schema version checked" `Quick
      test_schema_version_checked;
    Alcotest.test_case "spec resolution" `Quick test_spec_resolution;
    Alcotest.test_case "dedup: two clients, one execution" `Quick
      test_dedup_single_execution;
    Alcotest.test_case "cache stampede runs once" `Quick
      test_cache_stampede_protection;
    Alcotest.test_case "disconnect cancels queued jobs only" `Quick
      test_disconnect_cancels_queued_only;
    Alcotest.test_case "round-robin protects the polite client" `Quick
      test_fair_queueing;
    Alcotest.test_case "daemon result is byte-identical" `Quick
      test_daemon_byte_identical;
    Alcotest.test_case "batch errors name the job; connection survives" `Quick
      test_batch_error_reporting;
    Alcotest.test_case "stats wire form unchanged with obs off" `Quick
      test_stats_byte_compat_obs_off;
    Alcotest.test_case "health round-trips on a live daemon" `Quick
      test_health_roundtrip_live;
    Alcotest.test_case "request histogram counts every request line" `Quick
      test_request_histogram_counts_requests;
    Alcotest.test_case "trace-dump is a valid Chrome trace" `Quick
      test_trace_dump_live;
    Alcotest.test_case "trace-dump errors cleanly when disabled" `Quick
      test_trace_dump_disabled;
  ]
