(* Tests for the reporting layer (tables, charts, series math). *)

module Table = Repro_report.Table
module Chart = Repro_report.Chart
module Series = Repro_report.Series

let check = Alcotest.check

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1.00" ];
  Table.add_separator t;
  Table.add_row t [ "geo"; "12.34" ];
  let s = Table.render t in
  check Alcotest.bool "header present" true (String.length s > 0);
  check Alcotest.bool "row present" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.trim l <> "" && String.length l >= 5));
  (* Right-aligned numbers end in the same column. *)
  let lines = String.split_on_char '\n' s in
  let alpha = List.find (fun l -> String.length l > 4 && String.sub l 0 5 = "alpha") lines in
  let geo = List.find (fun l -> String.length l > 2 && String.sub l 0 3 = "geo") lines in
  check Alcotest.int "aligned widths" (String.length alpha) (String.length geo)

let test_table_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_cells () =
  check Alcotest.string "float cell" "1.23" (Table.cell_f 1.234);
  check Alcotest.string "digits" "1.2340" (Table.cell_f ~digits:4 1.234);
  check Alcotest.string "pct" "50.0%" (Table.cell_pct 0.5)

let test_chart_bars () =
  let s = Chart.bars ~width:10 [ ("a", 10.); ("b", 5.) ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  (match lines with
   | [ a; b ] ->
     let count c str = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 str in
     check Alcotest.int "max bar full width" 10 (count '#' a);
     check Alcotest.int "half bar" 5 (count '#' b)
   | _ -> Alcotest.fail "expected two lines");
  check Alcotest.string "empty input" "" (Chart.bars [])

let test_chart_grouped () =
  let s = Chart.grouped ~series:[ "x"; "y" ] [ ("g1", [ 1.; 2. ]) ] in
  check Alcotest.bool "renders" true (String.length s > 0);
  Alcotest.check_raises "ragged" (Invalid_argument "Chart.grouped: ragged input")
    (fun () -> ignore (Chart.grouped ~series:[ "x" ] [ ("g", [ 1.; 2. ]) ]))

let points =
  [
    { Series.group = "w1"; series = "base"; value = 10. };
    { Series.group = "w1"; series = "fast"; value = 5. };
    { Series.group = "w2"; series = "base"; value = 4. };
    { Series.group = "w2"; series = "fast"; value = 8. };
  ]

let test_series_normalize_invert () =
  let n = Series.normalize_to ~baseline:"base" points in
  check (Alcotest.float 1e-9) "baseline is 1" 1. (Series.value n ~group:"w1" ~series:"base");
  check (Alcotest.float 1e-9) "w1 fast" 0.5 (Series.value n ~group:"w1" ~series:"fast");
  check (Alcotest.float 1e-9) "w2 fast" 2. (Series.value n ~group:"w2" ~series:"fast");
  let inv = Series.invert n in
  check (Alcotest.float 1e-9) "inverted" 2. (Series.value inv ~group:"w1" ~series:"fast")

let test_series_geomean_row () =
  let n = Series.normalize_to ~baseline:"base" points |> Series.geomean_row ~label:"GM" in
  check (Alcotest.float 1e-9) "gm of 0.5 and 2 is 1" 1.
    (Series.value n ~group:"GM" ~series:"fast");
  check (Alcotest.float 1e-9) "gm of baseline" 1. (Series.value n ~group:"GM" ~series:"base")

let test_series_by_group_order () =
  match Series.by_group points with
  | [ ("w1", _); ("w2", _) ] -> ()
  | _ -> Alcotest.fail "group order not preserved"

let test_series_missing_baseline () =
  Alcotest.check_raises "missing baseline"
    (Failure "Series.normalize_to: no baseline in w3") (fun () ->
      ignore
        (Series.normalize_to ~baseline:"base"
           [ { Series.group = "w3"; series = "other"; value = 1. } ]))

let test_series_csv () =
  let csv = Series.to_csv points in
  check Alcotest.bool "header" true
    (String.length csv >= 18 && String.sub csv 0 18 = "group,series,value");
  check Alcotest.int "rows" 5 (List.length (String.split_on_char '\n' (String.trim csv)))

let test_series_make () =
  let s = Series.make ~name:"fig6" ~title:"Figure 6" points in
  check Alcotest.string "default group label" "workload" s.Series.group_label;
  check Alcotest.bool "no aggregate by default" true (s.Series.aggregate = None);
  check Alcotest.string "record csv matches point csv" (Series.to_csv points)
    (Series.csv s);
  let agg =
    Series.make ~name:"fig6" ~title:"Figure 6" ~group_label:"operation"
      ~aggregate:"GM"
      (Series.geomean_row ~label:"GM" points)
  in
  check Alcotest.bool "aggregate recorded" true (agg.Series.aggregate = Some "GM");
  check Alcotest.string "group label kept" "operation" agg.Series.group_label

let test_series_mean_row () =
  let m = Series.mean_row ~label:"AVG" points in
  check (Alcotest.float 1e-9) "avg of 10 and 4" 7.
    (Series.value m ~group:"AVG" ~series:"base");
  check (Alcotest.float 1e-9) "avg of 5 and 8" 6.5
    (Series.value m ~group:"AVG" ~series:"fast")

let suite =
  [
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    Alcotest.test_case "chart bars" `Quick test_chart_bars;
    Alcotest.test_case "chart grouped" `Quick test_chart_grouped;
    Alcotest.test_case "series normalize/invert" `Quick test_series_normalize_invert;
    Alcotest.test_case "series geomean row" `Quick test_series_geomean_row;
    Alcotest.test_case "series group order" `Quick test_series_by_group_order;
    Alcotest.test_case "series missing baseline" `Quick test_series_missing_baseline;
    Alcotest.test_case "series csv" `Quick test_series_csv;
    Alcotest.test_case "series make" `Quick test_series_make;
    Alcotest.test_case "series mean row" `Quick test_series_mean_row;
  ]
