(* The paper-reproduction harness: one sub-command per table and figure
   of the evaluation (Sec. 7-8), plus a Bechamel microbenchmark suite over
   the core primitives.

   Usage:
     bench/main.exe                 -- everything (the default)
     bench/main.exe fig6 fig9       -- selected jobs
   Environment:
     REPRO_SCALE   workload scale factor (default 0.25; 1.0 is the full
                   reduced-size configuration documented in EXPERIMENTS.md)
     REPRO_JOBS    worker domains for the measurement sweeps (default:
                   the number of cores; output is identical at any value)
     REPRO_CACHE   if set to a directory, cache results on disk there
     REPRO_CSV_DIR if set, every figure also drops its raw CSV there
     REPRO_BENCH_LABEL  label for the BENCH_<label>.json trajectory file
                   every run writes (default "repro")

   Besides the text output, a run writes BENCH_<label>.json holding the
   series data of every figure job that ran — the machine-readable
   trajectory of the whole harness invocation. *)

module E = Repro_experiments
module W = Repro_workloads
module X = Repro_exec
module O = Repro_obs

let scale =
  match Sys.getenv_opt "REPRO_SCALE" with
  | Some s -> (try float_of_string s with _ -> E.Sweep.default_scale)
  | None -> E.Sweep.default_scale

let jobs =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> X.Executor.default_jobs ())
  | None -> X.Executor.default_jobs ()

let cache_dir = Sys.getenv_opt "REPRO_CACHE"

let cache = cache_dir <> None

let csv_dir = Sys.getenv_opt "REPRO_CSV_DIR"

let save_csv name contents =
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let oc = open_out (Filename.concat dir (name ^ ".csv")) in
    output_string oc contents;
    close_out oc

let banner title = Printf.printf "\n=== %s ===\n%!" title

(* Figure series recorded as jobs run, dumped as BENCH_<label>.json. *)
let trajectory : (string * O.Json.t) list ref = ref []

let record name series =
  trajectory :=
    (name, O.Json.List (List.map O.Sink.series_to_json series)) :: !trajectory

(* The Figures 6-9 sweep is shared; build it lazily once. *)
let sweep =
  lazy
    (banner
       (Printf.sprintf "Sweep: 11 workloads x 5 techniques (scale %.2f, -j %d)"
          scale jobs);
     E.Sweep.exec ~scale ~j:jobs ~cache ?cache_dir
       ~progress:(fun label -> Printf.eprintf "  running %s...\n%!" label)
       ())

let run_fig1b () =
  banner "Figure 1b";
  let s = Lazy.force sweep in
  print_string (E.Fig1b.render s);
  record "fig1b" [ E.Fig1b.series s ]

let run_table1 () =
  banner "Table 1";
  print_string (E.Table1.render (Lazy.force sweep))

let run_table2 () =
  banner "Table 2";
  let s = Lazy.force sweep in
  print_string (E.Table2.render s);
  save_csv "table2" (E.Table2.csv s)

let run_fig6 () =
  banner "Figure 6";
  let s = Lazy.force sweep in
  print_string (E.Fig6.render s);
  save_csv "fig6" (E.Fig6.csv s);
  record "fig6" [ E.Fig6.series s ]

let run_fig7 () =
  banner "Figure 7";
  let s = Lazy.force sweep in
  print_string (E.Fig7.render s);
  save_csv "fig7" (E.Fig7.csv s);
  record "fig7" [ E.Fig7.series s; E.Fig7.breakdown_series s ]

let run_fig8 () =
  banner "Figure 8";
  let s = Lazy.force sweep in
  print_string (E.Fig8.render s);
  save_csv "fig8" (E.Fig8.csv s);
  record "fig8" [ E.Fig8.series s ]

let run_fig9 () =
  banner "Figure 9";
  let s = Lazy.force sweep in
  print_string (E.Fig9.render s);
  save_csv "fig9" (E.Fig9.csv s);
  record "fig9" [ E.Fig9.series s ]

let run_dram () =
  banner "DRAM sectors (companion series)";
  let s = Lazy.force sweep in
  print_string (E.Dram.render s);
  save_csv "dram" (E.Dram.csv s);
  record "dram" [ E.Dram.series s ]

let run_tlb () =
  banner "TLB page-walk overhead (re-sweeps under each page-size policy)";
  let t =
    E.Fig_tlb.run ~scale ~j:jobs ~cache ?cache_dir
      ~progress:(fun label -> Printf.eprintf "  running %s...\n%!" label)
      ()
  in
  print_string (E.Fig_tlb.render t);
  save_csv "tlb" (E.Fig_tlb.csv t);
  record "tlb" (E.Fig_tlb.series t)

let run_fig10 () =
  banner "Figure 10 (chunk-size sensitivity; re-runs COAL per size)";
  let points = E.Fig10.run ~scale ~j:jobs ~cache ?cache_dir () in
  print_string (E.Fig10.render points);
  save_csv "fig10" (E.Fig10.csv points);
  record "fig10" [ E.Fig10.series_perf points; E.Fig10.series_frag points ]

let run_fig11 () =
  banner "Figure 11";
  let points = E.Fig11.points ~scale ~j:jobs ~cache ?cache_dir () in
  print_string (E.Fig11.render points);
  save_csv "fig11" (E.Fig11.csv points);
  record "fig11" [ E.Fig11.series points ]

let microbench_scale () = Float.min 1.0 (Float.max 0.1 scale)

let run_fig12a () =
  banner "Figure 12a (object scaling)";
  let points = E.Fig12.run_object_sweep ~scale:(microbench_scale ()) ~j:jobs () in
  print_string (E.Fig12.render_object_sweep points);
  save_csv "fig12a" (E.Fig12.csv points);
  record "fig12a" [ E.Fig12.object_series points ]

let run_fig12b () =
  banner "Figure 12b (type scaling)";
  let points = E.Fig12.run_type_sweep ~scale:(microbench_scale ()) ~j:jobs () in
  print_string (E.Fig12.render_type_sweep points);
  save_csv "fig12b" (E.Fig12.csv points);
  record "fig12b" [ E.Fig12.type_series points ]

let run_ablation () =
  banner "Ablations (Sec. 5/6 design choices)";
  print_string
    (E.Ablation.render
       ~title:"TypePointer: silicon prototype (masks at member refs) vs hardware MMU"
       (E.Ablation.tp_prototype_vs_hw ~scale ~j:jobs ~cache ?cache_dir ()));
  print_string
    (E.Ablation.render ~title:"TypePointer: tag encodings (Sec. 6.2)"
       [ E.Ablation.tp_encoding () ])

let run_init () =
  banner "Initialization comparison (Sec. 8.2)";
  print_string (E.Init_bench.render (E.Init_bench.run ~scale ~j:jobs ~cache ?cache_dir ()))

(* --- Bechamel microbenchmarks over the core primitives ---------------- *)

let bechamel_tests () =
  let open Bechamel in
  let module R = Repro_core in
  let heap = Repro_mem.Page_store.create () in
  let space = Repro_mem.Address_space.create () in
  let reg = R.Registry.create ~heap in
  let impl = R.Registry.register_impl reg ~name:"noop" (fun _ _ -> ()) in
  let types =
    Array.init 8 (fun i ->
        R.Registry.define_type reg ~name:(Printf.sprintf "T%d" i) ~field_words:4
          ~slots:[| impl |] ())
  in
  let vts = R.Vtable_space.create ~heap ~space () in
  R.Registry.materialize reg ~vtspace:vts ~space;
  let alloc = R.Shared_oa.create ~space () in
  let rng = Repro_util.Rng.create ~seed:1 in
  let ptrs =
    Array.init 4096 (fun i -> alloc.R.Allocator.alloc ~typ:types.(i mod 8) ~size_bytes:32)
  in
  let table = R.Range_table.create ~heap ~space in
  R.Range_table.rebuild table ~registry:reg ~regions:(alloc.R.Allocator.regions ());
  let addrs32 =
    Array.init 32 (fun _ -> ptrs.(Repro_util.Rng.int rng 4096))
  in
  let cache =
    Repro_gpu.Cache.create Repro_gpu.Config.default.Repro_gpu.Config.l1_geometry
  in
  let counter = ref 0 in
  Test.make_grouped ~name:"core"
    [
      Test.make ~name:"segment-tree host lookup"
        (Staged.stage (fun () -> ignore (R.Range_table.find_region_host table ptrs.(1234))));
      Test.make ~name:"typepointer tag codec"
        (Staged.stage (fun () ->
             let tagged = Repro_mem.Vaddr.with_tag 0x12345678 ~tag:321 in
             ignore (Repro_mem.Vaddr.strip tagged + Repro_mem.Vaddr.tag_of tagged)));
      Test.make ~name:"warp coalescer (32 lanes)"
        (Staged.stage (fun () -> ignore (Repro_gpu.Coalesce.transaction_count addrs32)));
      Test.make ~name:"sectored L1 access"
        (Staged.stage (fun () ->
             incr counter;
             ignore (Repro_gpu.Cache.access cache ~sector:(!counter land 2047))));
      Test.make ~name:"shared-oa allocation"
        (Staged.stage (fun () ->
             ignore (alloc.R.Allocator.alloc ~typ:types.(0) ~size_bytes:32)));
    ]

let run_bechamel () =
  banner "Bechamel microbenchmarks (core primitives)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter (fun name r -> rows := (name, r) :: !rows) results;
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] -> Printf.printf "  %-45s %12.1f ns/run\n" name ns
      | _ -> Printf.printf "  %-45s (no estimate)\n" name)
    (List.sort compare !rows)

let write_trajectory () =
  let label =
    match Sys.getenv_opt "REPRO_BENCH_LABEL" with
    | Some l when l <> "" -> l
    | _ -> "repro"
  in
  let path = Printf.sprintf "BENCH_%s.json" label in
  O.Sink.write_file ~path
    (O.Json.to_string ~pretty:true
       (O.Json.Obj
          [
            ("label", O.Json.String label);
            ("scale", O.Json.Float scale);
            ("workers", O.Json.Int jobs);
            ("generated_unix", O.Json.Float (Unix.time ()));
            ("entries", O.Json.Obj (List.rev !trajectory));
          ]));
  Printf.printf "trajectory: %s (%d figure entries)\n" path
    (List.length !trajectory)

let jobs =
  [
    ("fig1b", run_fig1b); ("table1", run_table1); ("table2", run_table2);
    ("fig6", run_fig6); ("fig7", run_fig7); ("fig8", run_fig8); ("fig9", run_fig9);
    ("dram", run_dram); ("tlb", run_tlb);
    ("fig10", run_fig10); ("fig11", run_fig11); ("fig12a", run_fig12a);
    ("fig12b", run_fig12b); ("init", run_init); ("ablation", run_ablation);
    ("bechamel", run_bechamel);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst jobs
  in
  List.iter
    (fun name ->
      match List.assoc_opt name jobs with
      | Some job -> job ()
      | None ->
        Printf.eprintf "unknown job %S; available: %s\n" name
          (String.concat ", " (List.map fst jobs));
        exit 2)
    requested;
  write_trajectory ();
  Printf.printf "\nDone.\n"
