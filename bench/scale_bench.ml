(* End-to-end engine A/B at paper scale.

   Runs the Fig. 6 matrix (every registered workload x paper technique)
   twice per cell: once on the default interned engine (hash-consed
   emission + the fused replay loop) and once on the legacy engine
   (`--legacy-engine` semantics: per-warp AoS-style emission, Sm.run),
   timing each complete job — build, all iterations, result hash — the
   same work `repro sweep` does per cell. Both runs must produce
   bit-identical Stats (the engines differ only in host-side speed);
   the tool fails loudly if any cell diverges, so the benchmark doubles
   as an identity gate at whatever scale it is run.

   Usage: bench/scale_bench.exe [--scale F] [--out PATH]
                                [--workloads A,B] [--techniques a,b]
                                [--intra]

   Defaults: scale 1.0, BENCH_scale1.json, full matrix. --intra also
   enables intra-launch sharded timing on the engine side (worthwhile on
   multicore hosts; REPRO_INTRA_JOBS picks the domain count).

   Two throughput views per cell:
     - end-to-end Minstr/s: simulated instructions / whole-job wall,
       what a sweep user experiences (includes object allocation and
       host-side setup, identical for both engines);
     - kernel Minstr/s: instructions / (emulate+replay) wall only,
       isolating the engine the tentpole optimized. *)

module G = Repro_gpu
module R = Repro_core
module W = Repro_workloads
module O = Repro_obs

let scale, out_path, only_workloads, only_techniques, intra =
  let scale = ref 1.0 in
  let out = ref "BENCH_scale1.json" in
  let wl = ref [] and tq = ref [] in
  let intra = ref false in
  let csv r s =
    r := List.map String.lowercase_ascii (String.split_on_char ',' s)
  in
  let usage =
    "scale_bench.exe [--scale F] [--out PATH] [--workloads A,B] \
     [--techniques a,b] [--intra]"
  in
  Arg.parse
    [
      ("--scale", Arg.Set_float scale, "F  workload scale factor (default 1.0)");
      ("--out", Arg.Set_string out, "PATH  output JSON path (default BENCH_scale1.json)");
      ("--workloads", Arg.String (csv wl), "CSV  restrict to these workload names");
      ("--techniques", Arg.String (csv tq), "CSV  restrict to these technique names");
      ("--intra", Arg.Set intra, "  also shard intra-launch timing on the engine side");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  (!scale, !out, !wl, !tq, !intra)

let keep filter name =
  filter = [] || List.mem (String.lowercase_ascii name) filter

type run = { wall_s : float; kernel_s : float; raw : G.Stats.raw; dedup : float }

(* One complete sweep-cell job under the given engine setting. [kernel_s]
   is the iteration loop alone (phase 1 + phase 2); [wall_s] adds the
   build (heap population) and the result hash. *)
let run_cell (w : W.Workload.t) technique ~engine =
  let params =
    { (W.Workload.default_params technique) with
      scale; intern = engine; intra = engine && intra }
  in
  let t0 = Unix.gettimeofday () in
  let inst = w.W.Workload.build params in
  let k0 = Unix.gettimeofday () in
  for i = 0 to inst.W.Workload.iterations - 1 do
    inst.W.Workload.run_iteration i
  done;
  let k1 = Unix.gettimeofday () in
  ignore (inst.W.Workload.result ());
  let t1 = Unix.gettimeofday () in
  let dev = R.Runtime.device inst.W.Workload.rt in
  { wall_s = t1 -. t0; kernel_s = k1 -. k0;
    raw = G.Stats.to_raw (G.Device.stats dev);
    dedup = G.Device.dedup_ratio dev }

type cell = {
  job : string;
  instrs : int;
  cycles : float;
  engine : run;
  legacy : run;
  identical : bool;
}

let cell (w : W.Workload.t) technique =
  let job =
    Printf.sprintf "%s/%s" (W.Registry.qualified_name w)
      (R.Technique.name technique)
  in
  Printf.printf "%-24s ...%!" job;
  let engine = run_cell w technique ~engine:true in
  let legacy = run_cell w technique ~engine:false in
  let identical = engine.raw = legacy.raw in
  let instrs =
    engine.raw.G.Stats.mem_instrs + engine.raw.G.Stats.compute_instrs
    + engine.raw.G.Stats.ctrl_instrs
  in
  let c =
    { job; instrs; cycles = engine.raw.G.Stats.cycles; engine; legacy; identical }
  in
  Printf.printf
    "\r%-24s %11d %8.2f %8.2f %8.2fx %8.2fx %6.1fx %s\n%!" job instrs
    engine.wall_s legacy.wall_s
    (legacy.wall_s /. engine.wall_s)
    (legacy.kernel_s /. engine.kernel_s)
    engine.dedup
    (if identical then "ok" else "STATS DIVERGED");
  c

let minstr instrs wall = float_of_int instrs /. wall /. 1e6

let run_json instrs r =
  O.Json.Obj
    [
      ("wall_s", O.Json.Float r.wall_s);
      ("kernel_s", O.Json.Float r.kernel_s);
      ("minstr_per_s", O.Json.Float (minstr instrs r.wall_s));
      ("kernel_minstr_per_s", O.Json.Float (minstr instrs r.kernel_s));
    ]

let cell_json c =
  O.Json.Obj
    [
      ("job", O.Json.String c.job);
      ("instructions", O.Json.Int c.instrs);
      ("cycles", O.Json.Float c.cycles);
      ("dedup_ratio", O.Json.Float c.engine.dedup);
      ("engine", run_json c.instrs c.engine);
      ("legacy", run_json c.instrs c.legacy);
      ("speedup", O.Json.Float (c.legacy.wall_s /. c.engine.wall_s));
      ( "kernel_speedup",
        O.Json.Float (c.legacy.kernel_s /. c.engine.kernel_s) );
      ("stats_identical", O.Json.Bool c.identical);
    ]

let () =
  Printf.printf "scale_bench: scale=%g intra=%b\n%!" scale intra;
  Printf.printf "%-24s %11s %8s %8s %9s %9s %6s\n" "job" "instrs" "eng(s)"
    "leg(s)" "speedup" "kernel" "dedup";
  let cells = ref [] in
  List.iter
    (fun (w : W.Workload.t) ->
      if keep only_workloads w.W.Workload.name then
        List.iter
          (fun t ->
            if keep only_techniques (R.Technique.name t) then
              cells := cell w t :: !cells)
          R.Technique.all_paper)
    W.Registry.all;
  let cells = List.rev !cells in
  if cells = [] then (prerr_endline "no cells selected"; exit 2);
  let sum f = List.fold_left (fun a c -> a +. f c) 0. cells in
  let instrs = List.fold_left (fun a c -> a + c.instrs) 0 cells in
  let eng_wall = sum (fun c -> c.engine.wall_s) in
  let leg_wall = sum (fun c -> c.legacy.wall_s) in
  let eng_kernel = sum (fun c -> c.engine.kernel_s) in
  let leg_kernel = sum (fun c -> c.legacy.kernel_s) in
  let all_identical = List.for_all (fun c -> c.identical) cells in
  Printf.printf
    "aggregate: engine %.2f Minstr/s in %.1fs, legacy %.2f Minstr/s in \
     %.1fs -> %.2fx end-to-end, %.2fx kernel-only; stats identical: %b\n%!"
    (minstr instrs eng_wall) eng_wall (minstr instrs leg_wall) leg_wall
    (leg_wall /. eng_wall) (leg_kernel /. eng_kernel) all_identical;
  let json =
    O.Json.Obj
      [
        ("scale", O.Json.Float scale);
        ("intra", O.Json.Bool intra);
        ( "aggregate",
          O.Json.Obj
            [
              ("instructions", O.Json.Int instrs);
              ("engine_wall_s", O.Json.Float eng_wall);
              ("legacy_wall_s", O.Json.Float leg_wall);
              ("engine_minstr_per_s", O.Json.Float (minstr instrs eng_wall));
              ("legacy_minstr_per_s", O.Json.Float (minstr instrs leg_wall));
              ("speedup", O.Json.Float (leg_wall /. eng_wall));
              ( "kernel_speedup",
                O.Json.Float (leg_kernel /. eng_kernel) );
              ("stats_identical", O.Json.Bool all_identical);
            ] );
        ("jobs", O.Json.List (List.map cell_json cells));
      ]
  in
  let oc = open_out out_path in
  output_string oc (O.Json.to_string ~pretty:true json);
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if not all_identical then exit 1
