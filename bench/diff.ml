(* Compares two BENCH_<label>.json trajectory files written by
   bench/main.exe.

   Usage: diff.exe [--ignore-series NAME]... BASELINE CURRENT

   The harness is deterministic at a fixed scale, so any change in the
   series data is a real behavioural change; the volatile metadata
   ("label", "workers", "generated_unix") is ignored. --ignore-series
   drops every series point named NAME from both files before comparing —
   the gate for "adding column NAME left the existing columns
   byte-identical". Exit 0 when the trajectories match, 1 when they
   differ, 2 on usage or parse errors. *)

module Json = Repro_obs.Json

let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench-diff: %s\n" msg;
      exit 2)
    fmt

let volatile = [ "label"; "workers"; "generated_unix" ]

(* Drop every {"series": NAME, ...} point object (and any aggregate row
   of that series) from list contexts, recursively. *)
let rec strip_series ignored = function
  | Json.Obj fields ->
    Json.Obj (List.map (fun (k, v) -> (k, strip_series ignored v)) fields)
  | Json.List xs ->
    Json.List
      (List.filter_map
         (fun x ->
           match x with
           | Json.Obj fields
             when (match List.assoc_opt "series" fields with
                   | Some (Json.String s) ->
                     (* "NAME:MEM"-style breakdown rows count as NAME's. *)
                     List.exists
                       (fun n ->
                         s = n || String.starts_with ~prefix:(n ^ ":") s)
                       ignored
                   | _ -> false) ->
             None
           | x -> Some (strip_series ignored x))
         xs)
  | j -> j

let load path =
  if not (Sys.file_exists path) then usage_error "no such file: %s" path;
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string contents with
  | Ok (Json.Obj fields) ->
    Json.Obj (List.filter (fun (k, _) -> not (List.mem k volatile)) fields)
  | Ok _ -> usage_error "%s: expected a JSON object at top level" path
  | Error e -> usage_error "%s: %s" path e

(* Structural diff, collecting a JSON-pointer-ish path per mismatch. *)
let rec diff path a b acc =
  match (a, b) with
  | Json.Obj xs, Json.Obj ys ->
    let keys =
      List.sort_uniq compare (List.map fst xs @ List.map fst ys)
    in
    List.fold_left
      (fun acc k ->
        let sub = path ^ "/" ^ k in
        match (List.assoc_opt k xs, List.assoc_opt k ys) with
        | Some x, Some y -> diff sub x y acc
        | Some _, None -> (sub, "present in baseline, missing now") :: acc
        | None, Some _ -> (sub, "absent from baseline, present now") :: acc
        | None, None -> acc)
      acc keys
  | Json.List xs, Json.List ys ->
    if List.length xs <> List.length ys then
      ( path,
        Printf.sprintf "length %d in baseline, %d now" (List.length xs)
          (List.length ys) )
      :: acc
    else
      List.fold_left
        (fun (i, acc) (x, y) ->
          (i + 1, diff (Printf.sprintf "%s/%d" path i) x y acc))
        (0, acc)
        (List.combine xs ys)
      |> snd
  | _ ->
    if a = b then acc
    else
      ( path,
        Printf.sprintf "baseline %s, now %s" (Json.to_string a)
          (Json.to_string b) )
      :: acc

let () =
  let rec parse ignored paths = function
    | [] -> (List.rev ignored, List.rev paths)
    | "--ignore-series" :: name :: rest -> parse (name :: ignored) paths rest
    | [ "--ignore-series" ] -> usage_error "--ignore-series needs a NAME"
    | arg :: rest -> parse ignored (arg :: paths) rest
  in
  let ignored, paths = parse [] [] (List.tl (Array.to_list Sys.argv)) in
  let baseline_path, current_path =
    match paths with
    | [ a; b ] -> (a, b)
    | _ ->
      usage_error "usage: diff.exe [--ignore-series NAME]... BASELINE CURRENT"
  in
  let load path = strip_series ignored (load path) in
  let mismatches =
    List.rev (diff "" (load baseline_path) (load current_path) [])
  in
  match mismatches with
  | [] ->
    Printf.printf "bench-diff: %s matches %s\n" current_path baseline_path
  | ms ->
    List.iter (fun (path, what) -> Printf.printf "  %s: %s\n" path what) ms;
    Printf.printf "bench-diff: %d difference(s) against %s\n" (List.length ms)
      baseline_path;
    exit 1
