(* Load-test harness for the serve daemon.

   Spins up an in-process server on a throwaway socket, then replays a
   mixed request stream — job submissions drawn from a small spec pool
   (so dedup and the result cache both get exercised), cache queries,
   stats probes — from several concurrent client threads, and reports
   per-request latency percentiles plus the daemon's dedup hit rate.

       dune exec bench/serve_bench.exe

   Environment knobs (all optional):

     REPRO_SERVE_CLIENTS   concurrent clients            (default 8)
     REPRO_SERVE_REQS      requests per client           (default 250)
     REPRO_SERVE_WORKERS   worker domains                (default cores)
     REPRO_SERVE_SCALE     workload scale for real jobs  (default 0.02)
     REPRO_SERVE_FAKE      1 = fake runner (protocol-only measurement)
     REPRO_SERVE_OUT       write the report as JSON here
     REPRO_SERVE_SOCKET    socket path (default: temp file)

   With REPRO_SERVE_FAKE=1 the jobs are served by a stub runner, so the
   numbers measure the daemon itself (framing, scheduling, fan-out) and
   a bounded run finishes in seconds — that is what CI runs. *)

module X = Repro_exec
module O = Repro_obs

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> (
    match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let clients = env_int "REPRO_SERVE_CLIENTS" 8
let reqs_per_client = env_int "REPRO_SERVE_REQS" 250
let workers = env_int "REPRO_SERVE_WORKERS" (X.Executor.default_jobs ())
let scale = env_float "REPRO_SERVE_SCALE" 0.02
let fake = Sys.getenv_opt "REPRO_SERVE_FAKE" = Some "1"
let out = Sys.getenv_opt "REPRO_SERVE_OUT"

let socket_path =
  match Sys.getenv_opt "REPRO_SERVE_SOCKET" with
  | Some p when p <> "" -> p
  | _ -> Filename.temp_file "repro_serve_bench" ".sock"

(* A small pool: 2 workloads x 2 techniques x 2 seeds. Thousands of
   requests over 8 distinct jobs means almost every submission is a
   dedup or cache hit — exactly the hot path the daemon exists for. *)
let spec_pool =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun technique ->
          List.map
            (fun seed ->
              X.Request.Spec.make ~scale ~seed ~workload ~technique ())
            [ 42; 43 ])
        [ "tp"; "shard" ])
    [ "TRAF"; "GOL" ]
  |> Array.of_list

(* Deterministic per-client mixed stream: ~60% single-job submits, 20%
   two-job batches, 10% queries, 10% stats. *)
type op = Submit of X.Request.Spec.t list | Query of X.Request.Spec.t | Stats

let op_of client i =
  let pick k = spec_pool.((client * 7 + i * 13 + k) mod Array.length spec_pool) in
  match (client + i) mod 10 with
  | 0 | 1 | 2 | 3 | 4 | 5 -> Submit [ pick 0 ]
  | 6 | 7 -> Submit [ pick 0; pick 3 ]
  | 8 -> Query (pick 0)
  | _ -> Stats

(* One client thread: replay its stream synchronously (a request's
   latency is submit-to-final-response) and record latencies. *)
let client_thread client_id =
  let c = X.Server.Client.connect socket_path in
  X.Server.Client.set_timeout c 120.;
  let latencies = ref [] in
  let failures = ref 0 in
  let expect_batch id =
    let rec drain () =
      match X.Server.Client.recv c with
      | Ok (X.Response.Batch_done { id = bid; _ }) when bid = id -> ()
      | Ok (X.Response.Error _) | Error _ -> incr failures
      | Ok _ -> drain ()
    in
    drain ()
  in
  for i = 0 to reqs_per_client - 1 do
    let t0 = Unix.gettimeofday () in
    (match op_of client_id i with
     | Submit specs ->
       let id = Printf.sprintf "c%d-%d" client_id i in
       X.Server.Client.send c (X.Request.Submit { id; cache = true; specs });
       expect_batch id
     | Query spec -> (
       X.Server.Client.send c (X.Request.Query spec);
       match X.Server.Client.recv c with
       | Ok (X.Response.Queried _) -> ()
       | _ -> incr failures)
     | Stats -> (
       X.Server.Client.send c (X.Request.Stats);
       match X.Server.Client.recv c with
       | Ok (X.Response.Server_stats _) -> ()
       | _ -> incr failures));
    latencies := (Unix.gettimeofday () -. t0) :: !latencies
  done;
  X.Server.Client.close c;
  (!latencies, !failures)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let () =
  let cache_dir = Filename.temp_file "repro_serve_bench" ".cache" in
  Sys.remove cache_dir;
  (try Sys.remove socket_path with Sys_error _ -> ());
  let cfg =
    (* Metrics + tracing on: the bench doubles as the end-to-end check
       that server-side accounting agrees with client-side measurement. *)
    { X.Server.socket_path; workers; cache = true; cache_dir;
      obs = X.Server.obs_default () }
  in
  let runner =
    if fake then (
      (* One real tiny measurement up front; every fake job returns it —
         a cheap runner with a representative result object, so the
         encode/decode cost on the wire stays realistic. *)
      let job =
        match X.Request.Spec.resolve spec_pool.(0) with
        | Ok j -> j
        | Error msg -> failwith msg
      in
      let run = X.Job.run job in
      Some (fun (_ : X.Job.t) -> Ok run))
    else None
  in
  let handle = X.Server.start ?runner cfg in
  Printf.eprintf
    "serve_bench: %d clients x %d reqs, %d workers, %s jobs, pool %d\n%!"
    clients reqs_per_client workers
    (if fake then "fake" else Printf.sprintf "real (scale %g)" scale)
    (Array.length spec_pool);
  let t0 = Unix.gettimeofday () in
  let results = Array.make clients ([], 0) in
  let threads =
    List.init clients
      (fun i -> Thread.create (fun i -> results.(i) <- client_thread i) i)
  in
  List.iter Thread.join threads;
  let results = Array.to_list results in
  let wall = Unix.gettimeofday () -. t0 in
  (* Scheduler counters before shutdown. *)
  let stats =
    let c = X.Server.Client.connect socket_path in
    X.Server.Client.set_timeout c 30.;
    X.Server.Client.send c X.Request.Stats;
    let s =
      match X.Server.Client.recv c with
      | Ok (X.Response.Server_stats s) -> s
      | _ -> failwith "no stats from server"
    in
    X.Server.Client.close c;
    s
  in
  X.Server.stop handle;
  let latencies =
    List.concat_map (fun (ls, _) -> ls) results |> Array.of_list
  in
  Array.sort compare latencies;
  let failures = List.fold_left (fun a (_, f) -> a + f) 0 results in
  let total = Array.length latencies in
  let p50 = percentile latencies 0.50
  and p95 = percentile latencies 0.95
  and p99 = percentile latencies 0.99 in
  let dedup_rate =
    if stats.X.Response.submitted = 0 then 0.
    else
      float_of_int (stats.X.Response.dedup_hits + stats.X.Response.cache_hits)
      /. float_of_int stats.X.Response.submitted
  in
  Printf.printf
    "%d requests in %.2fs (%.0f req/s), %d failed\n\
     latency p50 %.3fms  p95 %.3fms  p99 %.3fms\n\
     submitted %d, executed %d, dedup hits %d, cache hits %d \
     (%.1f%% served without running)\n"
    total wall
    (float_of_int total /. wall)
    failures (p50 *. 1e3) (p95 *. 1e3) (p99 *. 1e3)
    stats.X.Response.submitted stats.X.Response.executed
    stats.X.Response.dedup_hits stats.X.Response.cache_hits
    (100. *. dedup_rate);
  (* Server-side accounting checks. The final stats probe snapshots
     before its own request completes, so the "request" histogram holds
     exactly the client threads' requests. And every server-side
     end-to-end record is contained in the client-measured latency of
     the same request, so each server percentile's lower bound cannot
     exceed the client-side percentile (element-wise domination survives
     sorting). *)
  let req_hist =
    match List.assoc_opt "request" stats.X.Response.stages with
    | Some h -> h
    | None ->
      prerr_endline "serve_bench: server returned no stage histograms";
      exit 1
  in
  if O.Hist.count req_hist <> total then begin
    Printf.eprintf
      "serve_bench: server counted %d requests, clients sent %d\n"
      (O.Hist.count req_hist) total;
    exit 1
  end;
  let server_lo p =
    match O.Hist.quantile req_hist p with Some (lo, _) -> lo | None -> 0.
  in
  List.iter
    (fun (name, p, client_side) ->
      let lo = server_lo p in
      if lo > client_side +. 1e-9 then begin
        Printf.eprintf
          "serve_bench: server-side %s (>= %.3fms) exceeds client-side \
           %.3fms\n"
          name (lo *. 1e3) (client_side *. 1e3);
        exit 1
      end)
    [ ("p50", 0.50, p50); ("p95", 0.95, p95); ("p99", 0.99, p99) ];
  Printf.printf
    "server-side request p50 %.3fms  p95 %.3fms  p99 %.3fms (bucket lower \
     bounds; %d recorded)\n"
    (server_lo 0.50 *. 1e3)
    (server_lo 0.95 *. 1e3)
    (server_lo 0.99 *. 1e3)
    (O.Hist.count req_hist);
  (match out with
   | None -> ()
   | Some path ->
     let json =
       O.Json.Obj
         [
           ("clients", O.Json.Int clients);
           ("requests_per_client", O.Json.Int reqs_per_client);
           ("workers", O.Json.Int workers);
           ("fake_runner", O.Json.Bool fake);
           ("requests", O.Json.Int total);
           ("failures", O.Json.Int failures);
           ("wall_s", O.Json.Float wall);
           ("req_per_s", O.Json.Float (float_of_int total /. wall));
           ("latency_p50_ms", O.Json.Float (p50 *. 1e3));
           ("latency_p95_ms", O.Json.Float (p95 *. 1e3));
           ("latency_p99_ms", O.Json.Float (p99 *. 1e3));
           ("submitted", O.Json.Int stats.X.Response.submitted);
           ("executed", O.Json.Int stats.X.Response.executed);
           ("dedup_hits", O.Json.Int stats.X.Response.dedup_hits);
           ("cache_hits", O.Json.Int stats.X.Response.cache_hits);
           ("dedup_rate", O.Json.Float dedup_rate);
           ( "server_p50_ms",
             O.Json.Float (server_lo 0.50 *. 1e3) );
           ( "server_p95_ms",
             O.Json.Float (server_lo 0.95 *. 1e3) );
           ( "server_p99_ms",
             O.Json.Float (server_lo 0.99 *. 1e3) );
           ( "server_stages",
             O.Json.Obj
               (List.map
                  (fun (name, h) -> (name, O.Hist.to_json h))
                  stats.X.Response.stages) );
         ]
     in
     O.Sink.write_file ~path (O.Json.to_string ~pretty:true json);
     Printf.eprintf "wrote %s\n%!" path);
  (* Leave no temp state behind. *)
  ignore (X.Cache.clear ~dir:cache_dir);
  (try Sys.remove cache_dir with Sys_error _ -> ());
  if failures > 0 then exit 1
