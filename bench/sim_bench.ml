(* Replay-throughput benchmark for the SoA trace engine.

   For every (workload, technique) cell of the paper matrix — plus the
   DYNA column (CUDA dispatch over DynaSOAr SoA blocks) — this runs the
   functional phase once with trace retention on, then re-times the
   retained traces through a fresh memory hierarchy several times,
   reporting simulated instructions and cycles per wall-second and minor
   words allocated per replayed instruction (the zero-allocation
   invariant makes the last ~0). A synthetic canned-trace job with a
   fixed instruction mix is included as a machine-independent reference
   point across commits.

   Usage: bench/sim_bench.exe [--scale F] [--reps N] [--out PATH]
   Flags override the environment:
     REPRO_SCALE     workload scale factor (default 0.05)
     REPRO_SIM_REPS  timed replay repetitions per job (default 5)
     REPRO_SIM_OUT   output JSON path (default SIM_BENCH.json)

   The dedup column is phase-1 interning's stream-deduplication ratio
   (warps sealed / unique streams kept): how many identical warp
   instruction streams each retained representative stands for. Replay
   wall time is unaffected (every warp still replays -- its addresses
   are private); the ratio gates the emission-side win.

   Replays here re-run [Sm.run] on traces recorded once, so their cache
   state differs from a real multi-iteration run — the numbers measure
   engine speed, not workload figures (bench/main.exe does those). *)

module G = Repro_gpu
module R = Repro_core
module W = Repro_workloads
module O = Repro_obs
module Rng = Repro_util.Rng

let env_or name ~default ~parse =
  match Sys.getenv_opt name with
  | Some s -> (try parse s with _ -> default)
  | None -> default

(* --scale/--reps/--out beat the REPRO_* environment (kept for the CI
   recipes that predate the flags). *)
let scale, reps, out_path =
  let scale = ref (env_or "REPRO_SCALE" ~default:0.05 ~parse:float_of_string) in
  let reps =
    ref (env_or "REPRO_SIM_REPS" ~default:5 ~parse:(fun s -> max 1 (int_of_string s)))
  in
  let out = ref (env_or "REPRO_SIM_OUT" ~default:"SIM_BENCH.json" ~parse:Fun.id) in
  let usage = "sim_bench.exe [--scale F] [--reps N] [--out PATH]" in
  Arg.parse
    [
      ("--scale", Arg.Set_float scale, "F  workload scale factor (default 0.05)");
      ( "--reps",
        Arg.Int (fun n -> reps := max 1 n),
        "N  timed replay repetitions per job (default 5)" );
      ("--out", Arg.Set_string out, "PATH  output JSON path (default SIM_BENCH.json)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  (!scale, !reps, !out)

type result = {
  job : string;
  launches : int;
  instrs : int;         (* simulated warp instructions per replay pass *)
  cycles : float;       (* simulated cycles per replay pass *)
  wall_s : float;       (* for [reps] passes *)
  minor_words : float;  (* for [reps] passes *)
  tel_wall_s : float;   (* same passes with the event tracer on *)
  vm_wall_s : float;    (* same passes with address translation on *)
  dedup : float;        (* phase-1 interning ratio: warps / unique streams *)
}

let minstr_per_s r = float_of_int (r.instrs * reps) /. r.wall_s /. 1e6
let tel_minstr_per_s r = float_of_int (r.instrs * reps) /. r.tel_wall_s /. 1e6
let mcyc_per_s r = r.cycles *. float_of_int reps /. r.wall_s /. 1e6
let words_per_instr r = r.minor_words /. float_of_int (r.instrs * reps)

let tracer_overhead_pct r =
  if r.wall_s <= 0. then 0.
  else 100. *. (r.tel_wall_s -. r.wall_s) /. r.wall_s

(* Host cost of the translation model itself (TLB lookups on every
   coalesced sector), not the simulated walk latency. *)
let vm_overhead_pct r =
  if r.wall_s <= 0. then 0.
  else 100. *. (r.vm_wall_s -. r.wall_s) /. r.wall_s

(* Replay [launches] through a fresh hierarchy [reps] times; one untimed
   warm-up pass first so code and data are hot. Then the same passes
   again with the event ring recording (the tracer-overhead column;
   target is within ~10% of the plain path). *)
let time_replay ~job ~cfg ~vm ?(dedup = 1.) launches =
  let mp = G.Mem_path.create cfg in
  let stats = G.Stats.create () in
  let instrs =
    List.fold_left
      (fun acc traces ->
        Array.fold_left
          (fun acc t -> acc + G.Trace.instruction_total t)
          acc traces)
      0 launches
  in
  let replay_once () =
    let cycles = ref 0. in
    List.iter
      (fun traces -> cycles := !cycles +. G.Sm.run cfg mp ~stats ~traces)
      launches;
    !cycles
  in
  let cycles = replay_once () in
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (replay_once ())
  done;
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. w0 in
  (* Tracer-on passes: ring-only config (no windowing), fresh hierarchy
     so cache behaviour matches the plain passes. *)
  let tel =
    G.Telemetry.create
      { G.Telemetry.window = None; trace = true;
        trace_capacity = G.Telemetry.default_capacity }
  in
  let ring = Option.get tel.G.Telemetry.ring in
  let tel_mp = G.Mem_path.create cfg in
  G.Mem_path.set_ring tel_mp (Some ring);
  let tel_stats = G.Stats.create () in
  let replay_tel () =
    G.Telemetry.Ring.begin_launch ring ~base:0.;
    List.iter
      (fun traces ->
        ignore (G.Sm.run ~telemetry:tel cfg tel_mp ~stats:tel_stats ~traces))
      launches
  in
  replay_tel ();
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    replay_tel ()
  done;
  let tel_wall_s = Unix.gettimeofday () -. t0 in
  (* Translation-on passes: the job's page table and TLB hierarchy
     attached to another fresh hierarchy (the vm-overhead column;
     simulated cycles change, wall time is what we measure here). *)
  let vm_mp = G.Mem_path.create cfg in
  G.Mem_path.set_vm vm_mp (Some vm);
  let vm_stats = G.Stats.create () in
  let replay_vm () =
    List.iter
      (fun traces -> ignore (G.Sm.run cfg vm_mp ~stats:vm_stats ~traces))
      launches
  in
  replay_vm ();
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    replay_vm ()
  done;
  let vm_wall_s = Unix.gettimeofday () -. t0 in
  { job; launches = List.length launches; instrs; cycles; wall_s; minor_words;
    tel_wall_s; vm_wall_s; dedup }

let workload_job ?alloc (w : W.Workload.t) technique =
  (* Built with translation on so the runtime assembles the job's real
     page table (coalesce policy, the allocator's contiguity report);
     the plain and tracer passes below use their own untranslated
     hierarchies, so their numbers are unaffected. *)
  let params =
    { (W.Workload.default_params technique) with
      scale; alloc; pages = Some Repro_vm.Policy.Coalesce }
  in
  let inst = w.W.Workload.build params in
  let dev = R.Runtime.device inst.W.Workload.rt in
  G.Device.retain_traces dev true;
  for i = 0 to inst.W.Workload.iterations - 1 do
    inst.W.Workload.run_iteration i
  done;
  let launches = G.Device.retained_traces dev in
  G.Device.retain_traces dev false;
  R.Runtime.build_vm inst.W.Workload.rt;
  let vm =
    match R.Runtime.vm inst.W.Workload.rt with
    | Some vm -> vm
    | None -> assert false
  in
  let column =
    match alloc with
    | None -> R.Technique.name technique
    | Some fam -> String.lowercase_ascii (R.Alloc_family.column_name technique fam)
  in
  let job = Printf.sprintf "%s/%s" w.W.Workload.name column in
  time_replay ~job ~cfg:(G.Device.config dev) ~vm
    ~dedup:(G.Device.dedup_ratio dev) launches

(* Fixed-mix synthetic traces (one aligned load, one aligned store, a
   short compute chain, a branch, a virtual call — repeating), so the
   reference job has a stable instruction distribution at any scale. *)
let canned_job () =
  let cfg = G.Config.default in
  let heap = Repro_mem.Page_store.create () in
  let rng = Rng.create ~seed:42 in
  let n_warps = 64 and n_instrs = 2000 in
  (* Emitted through the interning pool like a device launch would, so
     the reference job exercises (and reports) the dedup path: every warp
     shares the instruction mix, only the rng-drawn addresses differ. *)
  let pool = G.Trace.Intern.create () in
  let scratch = G.Trace.create ~capacity:256 () in
  let traces =
    Array.init n_warps (fun warp_id ->
        let lanes = Array.init 32 (fun l -> (warp_id * 32) + l) in
        G.Trace.reset scratch;
        let ctx = G.Warp_ctx.create ~trace:scratch ~heap ~warp_id ~lanes () in
        for i = 0 to n_instrs - 1 do
          match i mod 5 with
          | 0 ->
            let base = Rng.int rng (1 lsl 20) * 8 in
            let addrs = Array.map (fun l -> base + (8 * (l land 31))) lanes in
            ignore (G.Warp_ctx.load ctx ~label:G.Label.Body addrs)
          | 1 ->
            let base = Rng.int rng (1 lsl 22) * 8 in
            let addrs = Array.map (fun l -> base + (8 * (l land 31))) lanes in
            G.Warp_ctx.store ctx ~label:G.Label.Body addrs lanes
          | 2 -> G.Warp_ctx.compute ctx ~n:3 ~label:G.Label.Body
          | 3 -> G.Warp_ctx.ctrl ctx ~label:G.Label.Body
          | _ -> G.Warp_ctx.call_indirect ctx ~label:G.Label.Call
        done;
        G.Trace.Intern.seal pool scratch)
  in
  let dedup =
    let unique = G.Trace.Intern.unique pool in
    if unique = 0 then 1.
    else float_of_int (G.Trace.Intern.sealed pool) /. float_of_int unique
  in
  (* One flat 4K arena covering the synthetic address range. *)
  let table =
    Repro_vm.Page_table.build ~policy:Repro_vm.Policy.Flat_4k
      ~arenas:[ (0, 33 * 1024 * 1024) ] ~promoted:[] ()
  in
  let vm = Repro_vm.Vm.create ~n_sms:cfg.G.Config.n_sms ~table () in
  time_replay ~job:"canned/mix" ~cfg ~vm ~dedup [ traces ]

let result_json r =
  O.Json.Obj
    [
      ("job", O.Json.String r.job);
      ("launches", O.Json.Int r.launches);
      ("instructions", O.Json.Int r.instrs);
      ("cycles", O.Json.Float r.cycles);
      ("reps", O.Json.Int reps);
      ("wall_s", O.Json.Float r.wall_s);
      ("minstr_per_s", O.Json.Float (minstr_per_s r));
      ("mcycles_per_s", O.Json.Float (mcyc_per_s r));
      ("minor_words_per_instr", O.Json.Float (words_per_instr r));
      ("tracer_wall_s", O.Json.Float r.tel_wall_s);
      ("tracer_minstr_per_s", O.Json.Float (tel_minstr_per_s r));
      ("tracer_overhead_pct", O.Json.Float (tracer_overhead_pct r));
      ("vm_wall_s", O.Json.Float r.vm_wall_s);
      ("vm_overhead_pct", O.Json.Float (vm_overhead_pct r));
      ("dedup_ratio", O.Json.Float r.dedup);
    ]

let () =
  Printf.printf "sim_bench: scale=%g reps=%d\n%!" scale reps;
  Printf.printf "%-18s %10s %9s %9s %9s %12s %9s %6s %6s %7s\n" "job" "instrs"
    "Minstr/s" "Mcyc/s" "wall(s)" "words/instr" "tracer" "ovh%" "vm%" "dedup";
  let results = ref [] in
  let emit r =
    results := r :: !results;
    Printf.printf
      "%-18s %10d %9.2f %9.2f %9.3f %12.3f %9.2f %+6.1f %+6.1f %6.1fx\n%!"
      r.job r.instrs (minstr_per_s r) (mcyc_per_s r) r.wall_s
      (words_per_instr r) (tel_minstr_per_s r) (tracer_overhead_pct r)
      (vm_overhead_pct r) r.dedup
  in
  emit (canned_job ());
  List.iter
    (fun (w : W.Workload.t) ->
      List.iter (fun t -> emit (workload_job w t)) R.Technique.all_paper;
      (* The sixth sweep column: CUDA dispatch over DynaSOAr SoA blocks. *)
      emit (workload_job ~alloc:R.Alloc_family.Dyna_soa w R.Technique.Cuda))
    W.Registry.all;
  let results = List.rev !results in
  let total_instrs =
    List.fold_left (fun a r -> a + (r.instrs * reps)) 0 results
  in
  let total_wall = List.fold_left (fun a r -> a +. r.wall_s) 0. results in
  let total_words = List.fold_left (fun a r -> a +. r.minor_words) 0. results in
  let total_tel_wall =
    List.fold_left (fun a r -> a +. r.tel_wall_s) 0. results
  in
  let total_vm_wall =
    List.fold_left (fun a r -> a +. r.vm_wall_s) 0. results
  in
  let agg_overhead =
    if total_wall > 0. then
      100. *. (total_tel_wall -. total_wall) /. total_wall
    else 0.
  in
  let agg_vm_overhead =
    if total_wall > 0. then 100. *. (total_vm_wall -. total_wall) /. total_wall
    else 0.
  in
  Printf.printf
    "aggregate: %.2f Minstr/s over %d jobs, %.3f minor words/instr, \
     tracer overhead %+.1f%%, translation overhead %+.1f%%\n%!"
    (float_of_int total_instrs /. total_wall /. 1e6)
    (List.length results)
    (total_words /. float_of_int total_instrs)
    agg_overhead agg_vm_overhead;
  let json =
    O.Json.Obj
      [
        ("scale", O.Json.Float scale);
        ("reps", O.Json.Int reps);
        ( "aggregate",
          O.Json.Obj
            [
              ( "minstr_per_s",
                O.Json.Float (float_of_int total_instrs /. total_wall /. 1e6) );
              ( "minor_words_per_instr",
                O.Json.Float (total_words /. float_of_int total_instrs) );
              ("tracer_overhead_pct", O.Json.Float agg_overhead);
              ("vm_overhead_pct", O.Json.Float agg_vm_overhead);
            ] );
        ("jobs", O.Json.List (List.map result_json results));
      ]
  in
  let oc = open_out out_path in
  output_string oc (O.Json.to_string ~pretty:true json);
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path
