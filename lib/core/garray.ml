module Vaddr = Repro_mem.Vaddr

type t = {
  base : int;
  len : int;
}

let alloc ~space ~name ~len =
  if len <= 0 then invalid_arg "Garray.alloc: len must be positive";
  let arena =
    Repro_mem.Address_space.reserve space ~name ~size:(len * Vaddr.word_bytes)
  in
  { base = arena.Repro_mem.Address_space.base; len }

let len t = t.len

let base t = t.base

let addr t i =
  if i < 0 || i >= t.len then invalid_arg "Garray.addr: index out of bounds";
  t.base + (i * Vaddr.word_bytes)

(* On the interned engine the per-lane addresses go through the warp's
   reusable scratch buffer, so only the loaded-values array is allocated;
   same addresses, same emission, same heap cells — byte-identical to the
   legacy path below it. *)
let load t ctx ~idxs =
  if Repro_gpu.Warp_ctx.fused ctx then begin
    let n = Array.length idxs in
    let buf = Repro_gpu.Warp_ctx.addr_scratch ctx n in
    for i = 0 to n - 1 do
      buf.(i) <- addr t idxs.(i)
    done;
    Repro_gpu.Warp_ctx.load_into ctx ~label:Repro_gpu.Label.Body
      ~blocking:true ~addrs:buf ~n
  end
  else
    let addrs = Array.map (addr t) idxs in
    Repro_gpu.Warp_ctx.load ctx ~label:Repro_gpu.Label.Body addrs

let store t ctx ~idxs values =
  if Repro_gpu.Warp_ctx.fused ctx then begin
    let n = Array.length idxs in
    let buf = Repro_gpu.Warp_ctx.addr_scratch ctx n in
    for i = 0 to n - 1 do
      buf.(i) <- addr t idxs.(i)
    done;
    Repro_gpu.Warp_ctx.store_from ctx ~label:Repro_gpu.Label.Body ~addrs:buf
      ~n values
  end
  else
    let addrs = Array.map (addr t) idxs in
    Repro_gpu.Warp_ctx.store ctx ~label:Repro_gpu.Label.Body addrs values

let get t heap i = Repro_mem.Page_store.load heap (addr t i)

let set t heap i v = Repro_mem.Page_store.store heap (addr t i) v
