module Vaddr = Repro_mem.Vaddr

let granule_bytes = 128
let default_slabs = 64
let cycles_per_alloc = 2000.

type state = {
  slab_base : int array;
  slab_cursor : int array; (* byte offset within each slab *)
  slab_bytes : int;
  mutable next_slab : int;
  mutable objects : int;
  mutable used_bytes : int;
  mutable reserved_bytes : int;
  mutable alloc_cycles : float;
}

let create ?shadow ?(slabs = default_slabs) ?(arena_bytes = 1 lsl 30) ~space () =
  if slabs <= 0 then invalid_arg "Cuda_alloc.create: slabs must be positive";
  let arena = Repro_mem.Address_space.reserve space ~name:"cuda-heap" ~size:arena_bytes in
  (match shadow with
   | Some sh ->
     Repro_san.Shadow_heap.add_heap_range sh
       ~base:arena.Repro_mem.Address_space.base
       ~size:arena.Repro_mem.Address_space.size
   | None -> ());
  (* The slab step must not be a multiple of the caches' set period
     (sets * line, at most 32 KB here), or same-position objects in every
     slab would collide on one set — a power-of-two-stride artifact a
     real heap does not exhibit. Shrinking the step by an odd number of
     cache lines (231 = odd, coprime with any power-of-two set count)
     walks the bases across all sets. *)
  let stagger = 231 * 128 in
  let step = (arena.Repro_mem.Address_space.size / slabs) - stagger in
  let slab_bytes = step - stagger in
  if slab_bytes <= 0 then invalid_arg "Cuda_alloc.create: arena too small for slab count";
  let st =
    {
      slab_base =
        Array.init slabs (fun i -> arena.Repro_mem.Address_space.base + (i * step));
      slab_cursor = Array.make slabs 0;
      slab_bytes;
      next_slab = 0;
      objects = 0;
      used_bytes = 0;
      reserved_bytes = 0;
      alloc_cycles = 0.;
    }
  in
  let alloc ~typ ~size_bytes =
    if size_bytes <= 0 then invalid_arg "Cuda_alloc.alloc: size must be positive";
    let padded = Vaddr.align_up size_bytes ~alignment:granule_bytes in
    let slab = st.next_slab in
    st.next_slab <- (st.next_slab + 1) mod slabs;
    if st.slab_cursor.(slab) + padded > st.slab_bytes then
      failwith "Cuda_alloc.alloc: device heap slab exhausted (raise arena_bytes)";
    let addr = st.slab_base.(slab) + st.slab_cursor.(slab) in
    st.slab_cursor.(slab) <- st.slab_cursor.(slab) + padded;
    st.objects <- st.objects + 1;
    st.used_bytes <- st.used_bytes + size_bytes;
    st.reserved_bytes <- st.reserved_bytes + padded;
    st.alloc_cycles <- st.alloc_cycles +. cycles_per_alloc;
    (match shadow with
     | Some sh ->
       (* The granule padding stays outside the registered extent, so a
          touch there classifies as a heap hole, not part of the object. *)
       Repro_san.Shadow_heap.register sh ~base:addr ~size:size_bytes
         ~type_id:(Registry.type_id typ)
     | None -> ());
    addr
  in
  let stats () =
    {
      (Allocator.basic_stats ~objects:st.objects
         ~reserved_bytes:st.reserved_bytes ~used_bytes:st.used_bytes
         ~alloc_cycles:st.alloc_cycles)
      with
      (* All of this family's overhead is granule rounding. *)
      Allocator.padded_bytes = st.reserved_bytes - st.used_bytes;
    }
  in
  {
    Allocator.name = "cuda";
    alloc;
    free = None;
    field_addr = None;
    regions = (fun () -> []);
    (* Round-robin slab placement interleaves types at object grain, so
       no same-type span ever reaches promotion size. *)
    contiguity = (fun () -> []);
    stats;
  }
