type stats = {
  objects : int;
  live_objects : int;
  reserved_bytes : int;
  used_bytes : int;
  padded_bytes : int;
  alloc_cycles : float;
  free_cycles : float;
  bitmap_scan_cycles : float;
}

let basic_stats ~objects ~reserved_bytes ~used_bytes ~alloc_cycles =
  {
    objects;
    live_objects = objects;
    reserved_bytes;
    used_bytes;
    padded_bytes = 0;
    alloc_cycles;
    free_cycles = 0.;
    bitmap_scan_cycles = 0.;
  }

type t = {
  name : string;
  alloc : typ:Registry.typ -> size_bytes:int -> int;
  free : (ptr:int -> unit) option;
  field_addr : (obj:int -> off:int -> int) option;
  regions : unit -> Region.t list;
  contiguity : unit -> Region.t list;
  stats : unit -> stats;
}

let external_fragmentation s =
  if s.reserved_bytes = 0 then 0.
  else 1. -. (float_of_int s.used_bytes /. float_of_int s.reserved_bytes)

let internal_fragmentation s =
  if s.reserved_bytes = 0 then 0.
  else float_of_int s.padded_bytes /. float_of_int s.reserved_bytes

let pp_stats ppf s =
  Format.fprintf ppf
    "objects=%d live=%d reserved=%dB used=%dB efrag=%.1f%% ifrag=%.1f%% \
     cycles=%.0f"
    s.objects s.live_objects s.reserved_bytes s.used_bytes
    (100. *. external_fragmentation s)
    (100. *. internal_fragmentation s)
    (s.alloc_cycles +. s.free_cycles);
  if s.bitmap_scan_cycles > 0. then
    Format.fprintf ppf " (scan=%.0f)" s.bitmap_scan_cycles
