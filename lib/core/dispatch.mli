(** Virtual-call dispatch under each technique.

    This is the compiler's half of the paper: for every dynamic virtual
    call it emits exactly the instruction sequence the corresponding
    compilation strategy would execute —

    - CUDA / SharedOA (Fig. 1a + Sec. 2): load the object's vTable
      pointer (A), load the vFunc pointer from the vTable (B), the
      per-kernel constant-memory indirection, then the indirect call (C);
    - Concord: load the embedded type tag, run the compiler-expanded
      compare chain (one compare per program type), then a direct call
      per taken target;
    - COAL (Algorithm 1): the O(log2 K) range-table walk replaces A, B is
      served from the leaf's embedded table, then the indirect call. Call
      sites the compiler statically proves converged are left
      un-instrumented and use the CUDA sequence (Sec. 5);
    - TypePointer (Fig. 5b): SHR + ADD recover the vTable from the tag
      bits, one load fetches the vFunc pointer, then the indirect call.

    Lanes are then grouped by resolved target and each group executes the
    body serially — SIMT branch divergence, which is what degrades
    everything in the Fig. 12b type-scaling sweep. *)

type t

val create :
  ?san:Repro_san.Checker.t ->
  registry:Registry.t ->
  om:Object_model.t ->
  vtspace:Vtable_space.t ->
  range_table:Range_table.t option ->
  heap:Repro_mem.Page_store.t ->
  unit ->
  t
(** [range_table] must be present for {!Technique.Coal}. When [san] is
    given, every dynamic dispatch reports its per-lane resolved targets
    to the oracle, and TypePointer dispatches additionally cross-check
    each receiver's tag against the shadow map. *)

val make_env : t -> Repro_gpu.Warp_ctx.t -> Env.t
(** The environment whose [vcall]/[vcall_converged] closures implement
    this dispatcher over the given warp. *)

val warp_vcalls : t -> int
(** Dynamic virtual calls at warp granularity since creation. *)

val thread_vcalls : t -> int
(** Dynamic virtual calls summed over active lanes (the per-thread count
    behind Table 2's vFuncPKI). *)

val reset_counters : t -> unit
