module Vaddr = Repro_mem.Vaddr

let default_block_slots = 64
let meta_bytes = 64
let cycles_per_alloc = 40.
let cycles_per_free = 12.
let cycles_per_scan_word = 4.
let bits_per_word = 32

type block = {
  bbase : int;              (* reservation base; data starts at bbase+meta *)
  reserved : int;           (* page-rounded reservation size *)
  n_slots : int;
  obj_bytes : int;          (* canonical AoS image size (headers + fields) *)
  hdr_words : int;
  type_id : int;
  bitmap : int array;       (* 32 occupancy bits per element *)
  mutable bused : int;      (* live slots *)
}

type type_state = {
  type_id : int;
  mutable blocks : block list;      (* every block ever chained, newest first *)
  mutable open_blocks : block list; (* blocks with a free slot, newest first *)
}

type state = {
  space : Repro_mem.Address_space.t;
  shadow : Repro_san.Shadow_heap.t option;
  block_slots : int;
  hdr_words : int;
  by_type : (int, type_state) Hashtbl.t;
  mutable all_blocks : block list;
  mutable sorted : block array;     (* by bbase; rebuilt lazily *)
  mutable sorted_dirty : bool;
  mutable last_block : block option; (* one-entry lookup cache *)
  mutable objects : int;
  mutable live : int;
  mutable used_bytes : int;
  mutable reserved_bytes : int;
  mutable padded_bytes : int;
  mutable alloc_cycles : float;
  mutable free_cycles : float;
  mutable bitmap_scan_cycles : float;
}

type block_summary = {
  n_blocks : int;
  full_blocks : int;
  empty_blocks : int;
  total_slots : int;
  live_slots : int;
  bitmap_live_slots : int;
}

let hdr_bytes st = st.hdr_words * Vaddr.word_bytes
let data_bytes (b : block) = b.obj_bytes * b.n_slots

let slot_base (b : block) slot =
  b.bbase + meta_bytes + (slot * Vaddr.word_bytes)

(* Storage address of byte [off] of the canonical image of [slot]:
   header word w lives in the w-th 8-byte array, field element k in the
   k-th 4-byte array, all arrays striped across the block's slots. *)
let addr_in_block (b : block) ~slot ~off =
  let hdr = b.hdr_words * Vaddr.word_bytes in
  if off < hdr then
    b.bbase + meta_bytes
    + (off / Vaddr.word_bytes * Vaddr.word_bytes * b.n_slots)
    + (slot * Vaddr.word_bytes)
    + (off mod Vaddr.word_bytes)
  else begin
    let foff = off - hdr in
    let fb = Object_model.field_bytes in
    b.bbase + meta_bytes + (hdr * b.n_slots)
    + (foff / fb * fb * b.n_slots)
    + (slot * fb)
    + (foff mod fb)
  end

let ensure_sorted st =
  if st.sorted_dirty then begin
    let a = Array.of_list st.all_blocks in
    Array.sort (fun a b -> compare a.bbase b.bbase) a;
    st.sorted <- a;
    st.sorted_dirty <- false
  end

(* Block whose reservation contains the canonical address [a]. *)
let find_block st a =
  match st.last_block with
  | Some b when a >= b.bbase && a < b.bbase + b.reserved -> Some b
  | _ ->
    ensure_sorted st;
    let sorted = st.sorted in
    let rec go lo hi best =
      if lo >= hi then best
      else begin
        let mid = (lo + hi) / 2 in
        if sorted.(mid).bbase <= a then go (mid + 1) hi (Some sorted.(mid))
        else go lo mid best
      end
    in
    (match go 0 (Array.length sorted) None with
     | Some b when a < b.bbase + b.reserved ->
       st.last_block <- Some b;
       Some b
     | _ -> None)

let slot_of_exn (b : block) a ~what =
  let off = a - b.bbase - meta_bytes in
  if off < 0 || off mod Vaddr.word_bytes <> 0 || off / Vaddr.word_bytes >= b.n_slots
  then invalid_arg (Printf.sprintf "Dyna_soa.%s: not an object base" what);
  off / Vaddr.word_bytes

let full_word = (1 lsl bits_per_word) - 1

let make_bitmap n_slots =
  let words = (n_slots + bits_per_word - 1) / bits_per_word in
  let bm = Array.make words 0 in
  (* Pre-set the padding bits past [n_slots] so the scan never yields an
     out-of-range slot. *)
  let tail = n_slots mod bits_per_word in
  if tail <> 0 then bm.(words - 1) <- full_word lxor ((1 lsl tail) - 1);
  bm

(* Lowest clear bit, DynaSOAr-style: a warp scans the bitmap one word per
   step until a word has a free bit. Returns the slot and the number of
   words examined (the modelled scan cost). *)
let find_free_slot (b : block) =
  let words = Array.length b.bitmap in
  let rec go w =
    if w >= words then invalid_arg "Dyna_soa: scan of non-full block failed"
    else if b.bitmap.(w) <> full_word then begin
      let x = lnot b.bitmap.(w) land full_word in
      let rec bit i = if x land (1 lsl i) <> 0 then i else bit (i + 1) in
      ((w * bits_per_word) + bit 0, w + 1)
    end
    else go (w + 1)
  in
  go 0

let register_shadow st b slot =
  match st.shadow with
  | None -> ()
  | Some sh ->
    (* One record (one program-order index) per object, made of the
       scattered per-array element extents; the first part is header
       word 0, whose storage address is the canonical base. *)
    let hdr = hdr_bytes st in
    let fields = (b.obj_bytes - hdr) / Object_model.field_bytes in
    let parts = ref [] in
    for k = fields - 1 downto 0 do
      parts :=
        ( addr_in_block b ~slot ~off:(hdr + (k * Object_model.field_bytes)),
          Object_model.field_bytes )
        :: !parts
    done;
    for w = st.hdr_words - 1 downto 0 do
      parts :=
        (addr_in_block b ~slot ~off:(w * Vaddr.word_bytes), Vaddr.word_bytes)
        :: !parts
    done;
    Repro_san.Shadow_heap.register_parts sh ~parts:!parts ~type_id:b.type_id

let grow st ts ~obj_bytes =
  let n = st.block_slots in
  let name = Printf.sprintf "dyna:%d:%d" ts.type_id (List.length ts.blocks) in
  let arena =
    Repro_mem.Address_space.reserve st.space ~name
      ~size:(meta_bytes + (obj_bytes * n))
  in
  let bbase = arena.Repro_mem.Address_space.base in
  let size = arena.Repro_mem.Address_space.size in
  st.reserved_bytes <- st.reserved_bytes + size;
  st.padded_bytes <- st.padded_bytes + (size - (obj_bytes * n));
  (match st.shadow with
   | Some sh -> Repro_san.Shadow_heap.add_heap_range sh ~base:bbase ~size
   | None -> ());
  let b =
    {
      bbase;
      reserved = size;
      n_slots = n;
      obj_bytes;
      hdr_words = st.hdr_words;
      type_id = ts.type_id;
      bitmap = make_bitmap n;
      bused = 0;
    }
  in
  ts.blocks <- b :: ts.blocks;
  ts.open_blocks <- b :: ts.open_blocks;
  st.all_blocks <- b :: st.all_blocks;
  st.sorted_dirty <- true;
  b

let create_with_summary ?shadow ?(block_slots = default_block_slots)
    ~header_words ~space () =
  if block_slots <= 0 then
    invalid_arg "Dyna_soa.create: block_slots must be positive";
  if header_words <= 0 then
    invalid_arg "Dyna_soa.create: header_words must be positive";
  let st =
    {
      space;
      shadow;
      block_slots;
      hdr_words = header_words;
      by_type = Hashtbl.create 16;
      all_blocks = [];
      sorted = [||];
      sorted_dirty = false;
      last_block = None;
      objects = 0;
      live = 0;
      used_bytes = 0;
      reserved_bytes = 0;
      padded_bytes = 0;
      alloc_cycles = 0.;
      free_cycles = 0.;
      bitmap_scan_cycles = 0.;
    }
  in
  let state_of type_id =
    match Hashtbl.find_opt st.by_type type_id with
    | Some ts -> ts
    | None ->
      let ts = { type_id; blocks = []; open_blocks = [] } in
      Hashtbl.add st.by_type type_id ts;
      ts
  in
  let alloc ~typ ~size_bytes =
    if size_bytes <= 0 then invalid_arg "Dyna_soa.alloc: size must be positive";
    let hdr = hdr_bytes st in
    if size_bytes < hdr || (size_bytes - hdr) mod Object_model.field_bytes <> 0
    then
      invalid_arg
        (Printf.sprintf
           "Dyna_soa.alloc: size %dB is not %d header words plus %dB fields"
           size_bytes st.hdr_words Object_model.field_bytes);
    let ts = state_of (Registry.type_id typ) in
    let b =
      match List.find_opt (fun b -> b.obj_bytes = size_bytes) ts.open_blocks with
      | Some b -> b
      | None -> grow st ts ~obj_bytes:size_bytes
    in
    let slot, words_scanned = find_free_slot b in
    let scan = cycles_per_scan_word *. float_of_int words_scanned in
    b.bitmap.(slot / bits_per_word) <-
      b.bitmap.(slot / bits_per_word) lor (1 lsl (slot mod bits_per_word));
    b.bused <- b.bused + 1;
    if b.bused = b.n_slots then
      ts.open_blocks <- List.filter (fun ob -> ob != b) ts.open_blocks;
    st.objects <- st.objects + 1;
    st.live <- st.live + 1;
    st.used_bytes <- st.used_bytes + size_bytes;
    st.alloc_cycles <- st.alloc_cycles +. cycles_per_alloc +. scan;
    st.bitmap_scan_cycles <- st.bitmap_scan_cycles +. scan;
    register_shadow st b slot;
    slot_base b slot
  in
  let free ~ptr =
    let a = Vaddr.strip ptr in
    match find_block st a with
    | None -> invalid_arg "Dyna_soa.free: address outside every block"
    | Some b ->
      let slot = slot_of_exn b a ~what:"free" in
      let w = slot / bits_per_word and bit = 1 lsl (slot mod bits_per_word) in
      if b.bitmap.(w) land bit = 0 then
        invalid_arg "Dyna_soa.free: slot is already free (double free)";
      b.bitmap.(w) <- b.bitmap.(w) land lnot bit;
      let was_full = b.bused = b.n_slots in
      b.bused <- b.bused - 1;
      if was_full then begin
        let ts = state_of b.type_id in
        ts.open_blocks <- b :: ts.open_blocks
      end;
      st.live <- st.live - 1;
      st.used_bytes <- st.used_bytes - b.obj_bytes;
      st.free_cycles <- st.free_cycles +. cycles_per_free
  in
  let field_addr ~obj ~off =
    match find_block st obj with
    | Some b ->
      let slot = slot_of_exn b obj ~what:"field_addr" in
      addr_in_block b ~slot ~off
    | None -> obj + off
  in
  let regions () =
    List.map
      (fun b ->
        Region.make ~base:b.bbase
          ~limit:(b.bbase + meta_bytes + data_bytes b)
          ~type_id:b.type_id)
      st.all_blocks
    |> List.sort Region.compare_base
  in
  (* Reservation extents merged across flush-adjacent same-type blocks:
     a chain of blocks reserved back-to-back reports one span, which is
     what lets the translation model promote it to large pages. *)
  let contiguity () =
    ensure_sorted st;
    let spans = ref [] in
    Array.iter
      (fun b ->
        let limit = b.bbase + b.reserved in
        match !spans with
        | (base, prev_limit, tid) :: rest
          when prev_limit = b.bbase && tid = b.type_id ->
          spans := (base, limit, tid) :: rest
        | _ -> spans := (b.bbase, limit, b.type_id) :: !spans)
      st.sorted;
    List.rev_map
      (fun (base, limit, type_id) -> Region.make ~base ~limit ~type_id)
      !spans
  in
  let stats () =
    {
      Allocator.objects = st.objects;
      live_objects = st.live;
      reserved_bytes = st.reserved_bytes;
      used_bytes = st.used_bytes;
      padded_bytes = st.padded_bytes;
      alloc_cycles = st.alloc_cycles;
      free_cycles = st.free_cycles;
      bitmap_scan_cycles = st.bitmap_scan_cycles;
    }
  in
  let summary () =
    let popcount bm =
      Array.fold_left
        (fun acc w ->
          let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
          go acc w)
        0 bm
    in
    List.fold_left
      (fun acc b ->
        let pad = (Array.length b.bitmap * bits_per_word) - b.n_slots in
        {
          n_blocks = acc.n_blocks + 1;
          full_blocks = acc.full_blocks + (if b.bused = b.n_slots then 1 else 0);
          empty_blocks = acc.empty_blocks + (if b.bused = 0 then 1 else 0);
          total_slots = acc.total_slots + b.n_slots;
          live_slots = acc.live_slots + b.bused;
          bitmap_live_slots = acc.bitmap_live_slots + popcount b.bitmap - pad;
        })
      {
        n_blocks = 0;
        full_blocks = 0;
        empty_blocks = 0;
        total_slots = 0;
        live_slots = 0;
        bitmap_live_slots = 0;
      }
      st.all_blocks
  in
  ( {
      Allocator.name = "dyna";
      alloc;
      free = Some free;
      field_addr = Some field_addr;
      regions;
      contiguity;
      stats;
    },
    summary )

let create ?shadow ?block_slots ~header_words ~space () =
  fst (create_with_summary ?shadow ?block_slots ~header_words ~space ())
