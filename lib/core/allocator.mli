(** The allocator interface shared by the default-CUDA model, SharedOA
    and the DynaSOAr-style SoA family.

    Allocators only *place* objects — headers are written by the runtime.
    They also keep the bookkeeping the paper evaluates: the typed regions
    COAL's range table is built from, footprint/fragmentation (Fig. 10b)
    and a modelled host/device allocation cost (the Sec. 8.2 "80× faster
    initialization" comparison).

    Capabilities beyond plain placement are optional fields: [free] for
    families that support deallocation, and [field_addr] for families
    whose storage layout is not the canonical contiguous object image
    (SoA blocks remap each header word and field to a per-block array). *)

type stats = {
  objects : int;          (** Objects placed over the allocator's lifetime. *)
  live_objects : int;     (** Objects currently live (= [objects] unless the
                              family supports [free]). *)
  reserved_bytes : int;   (** Address space reserved for object storage.
                              Never shrinks: reserved-but-empty blocks kept
                              on a family's chains still count, which is
                              what makes {!external_fragmentation} honest
                              for block allocators. *)
  used_bytes : int;       (** Bytes actually occupied by live objects. *)
  padded_bytes : int;     (** Reserved bytes lost to per-object or per-block
                              padding (granule rounding, block metadata,
                              unusable slot tails). *)
  alloc_cycles : float;   (** Modelled cost of the allocation phase. *)
  free_cycles : float;    (** Modelled cost of deallocations ([0.] for
                              families without [free]). *)
  bitmap_scan_cycles : float;
                          (** Portion of [alloc_cycles] spent scanning
                              occupancy bitmaps for a free slot ([0.] for
                              non-bitmap families). *)
}

val basic_stats :
  objects:int ->
  reserved_bytes:int ->
  used_bytes:int ->
  alloc_cycles:float ->
  stats
(** Stats for a family with no free/padding/bitmap accounting:
    [live_objects = objects], the other new counters zero. *)

type t = {
  name : string;
  alloc : typ:Registry.typ -> size_bytes:int -> int;
      (** Place one object; returns its canonical base address. *)
  free : (ptr:int -> unit) option;
      (** Release one object by canonical (possibly tagged) pointer;
          [None] for bump-style families that cannot deallocate. *)
  field_addr : (obj:int -> off:int -> int) option;
      (** Storage address of byte offset [off] into the canonical object
          image (header words first, then fields) of the object at
          canonical base [obj]. [None] means identity ([obj + off]) —
          the AoS layout every family but SoA uses. *)
  regions : unit -> Region.t list;
      (** Current typed regions, sorted by base ([\[\]] for allocators
          that do not segregate by type). *)
  contiguity : unit -> Region.t list;
      (** Contiguously-allocated same-type placement spans, sorted by
          base, reported to the address-translation model as large-page
          promotion candidates. Unlike {!regions} (used extents, for
          COAL's range table), these are {e reservation} extents —
          adjacent same-type reservations merged — so they tile the
          allocator's arena exactly. [\[\]] for families whose placement
          interleaves types at fine grain (the CUDA baseline). *)
  stats : unit -> stats;
}

val external_fragmentation : stats -> float
(** [1 - used/reserved] in [0,1]; [0.] when nothing is reserved. *)

val internal_fragmentation : stats -> float
(** [padded/reserved] in [0,1]; [0.] when nothing is reserved. *)

val pp_stats : Format.formatter -> stats -> unit
