(** The program façade tying everything together.

    A [Runtime.t] is one program under one technique: a simulated heap
    and GPU, the type registry, the allocator the technique prescribes
    (SharedOA or the default-CUDA model), the contiguous vTable arena,
    COAL's range table when applicable, and the dispatcher. Workloads
    define types and implementations, allocate objects with {!new_obj}
    (the [sharedNew] of Sec. 4) and launch kernels; all five techniques
    expose the identical API, so a workload is written once and measured
    under each. *)

type t

val create :
  ?config:Repro_gpu.Config.t ->
  ?engine:Repro_gpu.Engine.t ->
  ?prealloc_mb:int ->
  ?chunk_objs:int ->
  ?vt_encoding:Vtable_space.encoding ->
  ?san:Repro_san.Checker.t ->
  ?telemetry:Repro_gpu.Telemetry.config ->
  ?alloc:Alloc_family.t ->
  ?pages:Repro_vm.Policy.t ->
  technique:Technique.t ->
  unit -> t
(** [engine] selects the simulation engine (default
    {!Repro_gpu.Engine.default}): [intern] turns on interned trace
    emission plus the object model's fused field path (byte-identical
    results; sanitized runs keep the legacy field path), [intra] the
    sliced intra-launch parallel replay. [prealloc_mb] is a pure
    capacity hint — the expected heap footprint in MiB, used to pre-size
    the page store so paper-scale runs skip its rehash storms.

    [chunk_objs] is SharedOA's initial region size in objects (Fig. 10
    sweeps it). [san] attaches a sanitizer to the whole runtime: the
    allocator feeds its shadow heap, the device checks every access, the
    dispatcher records resolved targets, and a seeded [Skew_range]
    mutation is applied to COAL's range table after each rebuild.
    [alloc] overrides the allocator family (default
    {!Alloc_family.default_for}[ technique]); the family's [field_addr]
    capability is installed as the object model's address hook, so an
    SoA family reshapes all member traffic. Raises [Invalid_argument]
    when the checker's [tags_expected] disagrees with whether
    [technique] tags pointers.

    [pages] opts into the address-translation model under the given
    page-size policy: before each launch whose heap layout changed, the
    runtime rebuilds a page table from the address space and the
    allocator's {!Allocator.t.contiguity} report, prices every memory
    access through a two-level TLB hierarchy, and (when a sanitizer is
    attached) validates each checked access against the mapping. Omitted
    (the default), the timing model is exactly the untranslated one. *)

val san : t -> Repro_san.Checker.t option

val technique : t -> Technique.t

val alloc_family : t -> Alloc_family.t
(** The family actually in use (the override, or the technique's
    default). *)

val registry : t -> Registry.t
val heap : t -> Repro_mem.Page_store.t
val device : t -> Repro_gpu.Device.t
val object_model : t -> Object_model.t
val allocator : t -> Allocator.t
val range_table : t -> Range_table.t option
val address_space : t -> Repro_mem.Address_space.t

val pages : t -> Repro_vm.Policy.t option
(** The page-size policy the runtime was created with. *)

val vm : t -> Repro_vm.Vm.t option
(** The translation model currently attached to the device ([None]
    before the first launch, or when [pages] was omitted). *)

val build_vm : t -> unit
(** Force the lazy rebuild {!launch} performs when the heap layout
    changed. No-op without [pages]. Exposed for offline replay
    ([bench/sim_bench.exe]), which re-times retained traces without
    launching. *)

val register_impl : t -> name:string -> Registry.impl -> int

val define_type :
  t -> name:string -> field_words:int -> ?parent:Registry.typ ->
  slots:int array -> unit -> Registry.typ
(** Must precede the first allocation. *)

val new_obj : t -> Registry.typ -> int
(** Allocate and initialize one object; the returned pointer carries tag
    bits under TypePointer. Materializes vTables on first use. *)

val new_objs : t -> Registry.typ -> int -> int array

val n_objects : t -> int

val allocations : t -> (int * Registry.typ) array
(** Every allocation in program order. *)

val launch : t -> n_threads:int -> (Env.t -> unit) -> unit
(** Launch a kernel; rebuilds COAL's range table first when the region
    set changed since the last launch. *)

val stats : t -> Repro_gpu.Stats.t

val kernel_timeline : t -> Repro_gpu.Stats.t list
(** Per-launch counter deltas since the last {!reset_stats}, in launch
    order (see {!Repro_gpu.Device.kernel_timeline}). *)

val window_timeline : t -> Repro_gpu.Stats.t array list
(** Per-launch window rows when the runtime was created with a sampling
    [telemetry] config (see {!Repro_gpu.Device.window_timeline}). *)

val sample_window : t -> int option

val telemetry_dump : t -> Repro_gpu.Telemetry.dump option
(** Event-ring snapshot when tracing is on (see
    {!Repro_gpu.Device.telemetry_dump}). *)

val cycles : t -> float

val reset_stats : t -> unit
(** Clears device counters and dispatch call counters (the warm-up /
    measurement boundary). *)

val warp_vcalls : t -> int
val thread_vcalls : t -> int

val vfunc_pki : t -> float
(** Dynamic virtual calls per thousand warp instructions since the last
    {!reset_stats} (Table 2). *)

val checksum : t -> int
(** Order-stable hash of every user field of every allocation — equal
    across techniques when the workload computed the same result
    (functional validation, Sec. 8). *)
