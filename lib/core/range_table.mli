(** COAL's virtual range table (Sec. 5, Algorithm 1).

    The typed regions produced by SharedOA are organized as a balanced
    segment tree kept in global (simulated) memory. Internal nodes hold
    the address bounds of their two children; leaves hold one region's
    bounds plus that type's virtual-function table, "augmenting the
    traditional virtual function tables with base and range values"
    (Fig. 3). A lookup walks root→leaf in O(log2 K) steps, each step
    loading one 32-byte node — the same small structure for every thread,
    which is why the added loads coalesce and hit in L1.

    The table is rebuilt (host-side, between kernels) whenever the
    allocator's region set changes. *)

type t

val create :
  heap:Repro_mem.Page_store.t -> space:Repro_mem.Address_space.t -> t

val rebuild : t -> registry:Registry.t -> regions:Region.t list -> unit
(** Build the tree over [regions] (non-overlapping; sorted or not). Each
    leaf embeds the encoded implementation ids of its type's slots.
    Raises [Invalid_argument] on overlapping regions. *)

val n_leaves : t -> int
(** Power-of-two padded leaf count (0 before the first {!rebuild}). *)

val depth : t -> int
(** Number of internal levels walked before reaching a leaf. *)

val find_region_host : t -> int -> Region.t option
(** Untimed host-side lookup (tests, validation). *)

val skew_leaves : t -> registry:Registry.t -> bool
(** Seeded-bug hook: swap the embedded vtables of two leaves whose types
    resolve at least one slot differently, leaving the region bounds
    intact — a corruption only the cross-technique dispatch oracle can
    observe. Returns [false] when no such leaf pair exists (or before the
    first {!rebuild}). *)

val lookup_emit :
  t -> Repro_gpu.Warp_ctx.t -> objs:int array -> slot:int -> int array
(** The instrumented ObjectRangeLookup: walks the tree emitting one
    global load (label [Coal_lookup]) and the bounds comparisons per
    level, then loads the function pointer from the leaf's embedded
    vtable (label [Vfunc_load]). Returns the encoded implementation ids,
    per lane. Raises [Failure] if a lane's address is in no region (the
    NULL return of Algorithm 1 — a dispatch bug in a real program). *)

val node_bytes : int
(** Internal node footprint (32 B: lmin, lmax, rmin, rmax). *)
