module Vaddr = Repro_mem.Vaddr
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label

type t = {
  technique : Technique.t;
  header_words : int;
  strip_in_software : bool;
  (* Register reuse: consecutive member references through the same
     per-lane pointer array reuse the stripped register, as compiled code
     would after CSE; only the first reference pays the mask. *)
  mutable last_stripped : int array;
  (* Allocator layout hook: maps (canonical object base, byte offset into
     the canonical AoS image) to the storage address. None = identity. *)
  mutable remap : (obj:int -> off:int -> int) option;
}

let create technique =
  let header_words =
    match technique with
    | Technique.Cuda | Technique.Concord -> 1
    | Technique.Shared_oa | Technique.Coal -> 2
    | Technique.Type_pointer { on_cuda_alloc; _ } -> if on_cuda_alloc then 1 else 2
  in
  {
    technique;
    header_words;
    strip_in_software = Technique.strips_in_software technique;
    last_stripped = [||];
    remap = None;
  }

let set_addr_hook t hook = t.remap <- hook

let technique t = t.technique

let header_words t = t.header_words

let field_bytes = 4

let object_bytes t ~field_words =
  (t.header_words * Vaddr.word_bytes) + (field_words * field_bytes)

let gpu_vtable_slot t =
  match t.technique with
  | Technique.Concord -> None
  | Technique.Cuda -> Some 0
  | Technique.Shared_oa | Technique.Coal -> Some 1
  | Technique.Type_pointer { on_cuda_alloc; _ } -> Some (if on_cuda_alloc then 0 else 1)

let resolve t ~ptr ~off =
  let base = Vaddr.strip ptr in
  match t.remap with None -> base + off | Some f -> f ~obj:base ~off

let field_addr t ~ptr ~field =
  if field < 0 then invalid_arg "Object_model.field_addr: negative field";
  resolve t ~ptr ~off:((t.header_words * Vaddr.word_bytes) + (field * field_bytes))

let header_addr t ~ptr ~word =
  if word < 0 || word >= t.header_words then
    invalid_arg "Object_model.header_addr: word out of range";
  resolve t ~ptr ~off:(word * Vaddr.word_bytes)

let charge_strip t ctx objs =
  if t.strip_in_software && t.last_stripped != objs then begin
    t.last_stripped <- objs;
    Warp_ctx.compute ctx ~label:Label.Tp_strip
  end

(* Fields are signed 32-bit; the store truncates, the load sign-extends. *)
let sign_extend v = if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v

let field_load t ctx ~objs ~field =
  charge_strip t ctx objs;
  let addrs = Array.map (fun ptr -> field_addr t ~ptr ~field) objs in
  Array.map sign_extend (Warp_ctx.load ~width:field_bytes ctx ~label:Label.Body addrs)

let field_store t ctx ~objs ~field values =
  charge_strip t ctx objs;
  let addrs = Array.map (fun ptr -> field_addr t ~ptr ~field) objs in
  Warp_ctx.store ~width:field_bytes ctx ~label:Label.Body addrs values

let field_load_host t heap ~ptr ~field =
  sign_extend
    (Repro_mem.Page_store.load_byte_width heap (field_addr t ~ptr ~field)
       ~width:field_bytes)

let field_store_host t heap ~ptr ~field v =
  Repro_mem.Page_store.store_byte_width heap (field_addr t ~ptr ~field)
    ~width:field_bytes v
