module Vaddr = Repro_mem.Vaddr
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label

type t = {
  technique : Technique.t;
  header_words : int;
  strip_in_software : bool;
  (* Register reuse: consecutive member references through the same
     per-lane pointer array reuse the stripped register, as compiled code
     would after CSE; only the first reference pays the mask. *)
  mutable last_stripped : int array;
  (* Allocator layout hook: maps (canonical object base, byte offset into
     the canonical AoS image) to the storage address. None = identity. *)
  mutable remap : (obj:int -> off:int -> int) option;
  (* Interned-engine fast path: field accesses compute their per-lane
     addresses into [scratch] and emit through [Warp_ctx.load_into]/
     [store_from], so only the returned value array is allocated. Same
     addresses, same emission order, same heap reads — byte-identical to
     the legacy path, which stays below it for the measurable baseline
     (and for sanitized runs, which want exact-width address arrays). *)
  mutable fused : bool;
  mutable scratch : int array;
}

let create technique =
  let header_words =
    match technique with
    | Technique.Cuda | Technique.Concord -> 1
    | Technique.Shared_oa | Technique.Coal -> 2
    | Technique.Type_pointer { on_cuda_alloc; _ } -> if on_cuda_alloc then 1 else 2
  in
  {
    technique;
    header_words;
    strip_in_software = Technique.strips_in_software technique;
    last_stripped = [||];
    remap = None;
    fused = false;
    scratch = [||];
  }

let set_addr_hook t hook = t.remap <- hook

let set_fused t b = t.fused <- b

let technique t = t.technique

let header_words t = t.header_words

let field_bytes = 4

let object_bytes t ~field_words =
  (t.header_words * Vaddr.word_bytes) + (field_words * field_bytes)

let gpu_vtable_slot t =
  match t.technique with
  | Technique.Concord -> None
  | Technique.Cuda -> Some 0
  | Technique.Shared_oa | Technique.Coal -> Some 1
  | Technique.Type_pointer { on_cuda_alloc; _ } -> Some (if on_cuda_alloc then 0 else 1)

let resolve t ~ptr ~off =
  let base = Vaddr.strip ptr in
  match t.remap with None -> base + off | Some f -> f ~obj:base ~off

let field_addr t ~ptr ~field =
  if field < 0 then invalid_arg "Object_model.field_addr: negative field";
  resolve t ~ptr ~off:((t.header_words * Vaddr.word_bytes) + (field * field_bytes))

let header_addr t ~ptr ~word =
  if word < 0 || word >= t.header_words then
    invalid_arg "Object_model.header_addr: word out of range";
  resolve t ~ptr ~off:(word * Vaddr.word_bytes)

let charge_strip t ctx objs =
  if t.strip_in_software && t.last_stripped != objs then begin
    t.last_stripped <- objs;
    Warp_ctx.compute ctx ~label:Label.Tp_strip
  end

(* Fields are signed 32-bit; the store truncates, the load sign-extends. *)
let sign_extend v = if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v

(* Per-lane field addresses into the reusable scratch buffer; returns the
   lane count. The bounds check and the offset arithmetic are hoisted out
   of the per-lane loop. *)
let fill_field_addrs t ~objs ~field =
  if field < 0 then invalid_arg "Object_model.field_addr: negative field";
  let n = Array.length objs in
  if Array.length t.scratch < n then t.scratch <- Array.make (max 32 n) 0;
  let off = (t.header_words * Vaddr.word_bytes) + (field * field_bytes) in
  let scratch = t.scratch in
  (match t.remap with
   | None -> for i = 0 to n - 1 do scratch.(i) <- Vaddr.strip objs.(i) + off done
   | Some f ->
     for i = 0 to n - 1 do scratch.(i) <- f ~obj:(Vaddr.strip objs.(i)) ~off done);
  n

let field_load t ctx ~objs ~field =
  charge_strip t ctx objs;
  if t.fused then begin
    let n = fill_field_addrs t ~objs ~field in
    let out =
      Warp_ctx.load_into ~width:field_bytes ctx ~label:Label.Body
        ~blocking:true ~addrs:t.scratch ~n
    in
    for i = 0 to n - 1 do out.(i) <- sign_extend out.(i) done;
    out
  end
  else begin
    let addrs = Array.map (fun ptr -> field_addr t ~ptr ~field) objs in
    Array.map sign_extend (Warp_ctx.load ~width:field_bytes ctx ~label:Label.Body addrs)
  end

let field_store t ctx ~objs ~field values =
  charge_strip t ctx objs;
  if t.fused then begin
    let n = fill_field_addrs t ~objs ~field in
    Warp_ctx.store_from ~width:field_bytes ctx ~label:Label.Body
      ~addrs:t.scratch ~n values
  end
  else begin
    let addrs = Array.map (fun ptr -> field_addr t ~ptr ~field) objs in
    Warp_ctx.store ~width:field_bytes ctx ~label:Label.Body addrs values
  end

let field_load_host t heap ~ptr ~field =
  sign_extend
    (Repro_mem.Page_store.load_byte_width heap (field_addr t ~ptr ~field)
       ~width:field_bytes)

let field_store_host t heap ~ptr ~field v =
  Repro_mem.Page_store.store_byte_width heap (field_addr t ~ptr ~field)
    ~width:field_bytes v
