(** DynaSOAr-style structure-of-arrays allocator (Springer & Masuhara,
    see PAPERS.md): fixed-size blocks chained per type, a per-block
    occupancy bitmap scanned (with a modelled parallel-scan cost) on
    allocate, and real deallocation with slot reuse.

    Storage layout of one block of [N] slots for objects of [H] header
    words and [K] 4-byte fields:

    {v
    [ 64B meta | hdr0[N] .. hdrH-1[N] | f0[N] | f1[N] | .. | fK-1[N] ]
    v}

    each [hdrW] an 8-byte-element array and each [fk] a 4-byte-element
    array striped across the block's slots. An object's canonical base is
    [bbase + 64 + slot*8] — exactly its header word 0 storage — and every
    other byte of its canonical image is remapped through the allocator's
    [field_addr] capability, so consecutive objects' same-field accesses
    are 4 bytes apart (dense SoA coalescing) instead of [obj_bytes] apart
    as under SharedOA's AoS chunks.

    Blocks stay chained (and their reservations counted) when they drain
    to empty, which is what {!Allocator.external_fragmentation} measures
    for block allocators; block metadata and page-rounding tails are
    reported as [padded_bytes]. *)

val default_block_slots : int
(** 64 — two bitmap words per block. *)

val meta_bytes : int
(** Per-block metadata area preceding the data arrays (64 bytes). *)

val cycles_per_alloc : float
val cycles_per_free : float

val cycles_per_scan_word : float
(** Modelled cost per 32-bit bitmap word examined while scanning for a
    free slot; accumulated into [stats.bitmap_scan_cycles] (and into
    [alloc_cycles]). *)

type block_summary = {
  n_blocks : int;
  full_blocks : int;
  empty_blocks : int;      (** Drained but still chained and reserved. *)
  total_slots : int;
  live_slots : int;        (** Per-block live counters, summed. *)
  bitmap_live_slots : int; (** Occupancy-bitmap popcount (padding bits
                               excluded) — must equal [live_slots]. *)
}
(** Object-slot compaction view over every block. *)

val create :
  ?shadow:Repro_san.Shadow_heap.t ->
  ?block_slots:int ->
  header_words:int ->
  space:Repro_mem.Address_space.t ->
  unit ->
  Allocator.t
(** [header_words] fixes how many leading 8-byte words of each object's
    canonical image are header arrays (the technique's layout, see
    {!Object_model.header_words}). [alloc] accepts only sizes of
    [header_words] words plus whole 4-byte fields and requires same-size
    objects per type to share blocks. [free] really deallocates (slot
    reuse, double-free detection) but does not notify the shadow heap.
    When [shadow] is given, each object registers as one multi-part
    record ({!Repro_san.Shadow_heap.register_parts}) covering its
    scattered element extents. *)

val create_with_summary :
  ?shadow:Repro_san.Shadow_heap.t ->
  ?block_slots:int ->
  header_words:int ->
  space:Repro_mem.Address_space.t ->
  unit ->
  Allocator.t * (unit -> block_summary)
(** {!create} plus an introspection thunk for tests and reports. *)
