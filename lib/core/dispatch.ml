module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label
module Vaddr = Repro_mem.Vaddr

type t = {
  registry : Registry.t;
  om : Object_model.t;
  vtspace : Vtable_space.t;
  range_table : Range_table.t option;
  heap : Repro_mem.Page_store.t;
  san : Repro_san.Checker.t option;
  mutable warp_vcalls : int;
  mutable thread_vcalls : int;
}

let create ?san ~registry ~om ~vtspace ~range_table ~heap () =
  (match (Object_model.technique om, range_table) with
   | Technique.Coal, None -> invalid_arg "Dispatch.create: COAL needs a range table"
   | _ -> ());
  { registry; om; vtspace; range_table; heap; san;
    warp_vcalls = 0; thread_vcalls = 0 }

let warp_vcalls t = t.warp_vcalls

let thread_vcalls t = t.thread_vcalls

let reset_counters t =
  t.warp_vcalls <- 0;
  t.thread_vcalls <- 0

(* Group lanes by resolved target and run each target's body over its
   subset: SIMT divergence on the (in)direct branch. On the fused engine
   a target-converged warp — the common case at well-behaved call
   sites — skips the grouping machinery entirely: same ctrl/call
   emission on the full warp, and the body gets [objs] itself (bodies
   only read their receiver array, so skipping the defensive copy is
   unobservable). *)
let branch_and_execute t env ~indirect ~objs impl_ids =
  let ctx = env.Env.ctx in
  (match t.san with
   | Some san ->
     Repro_san.Checker.record_dispatch san ~warp:(Warp_ctx.warp_id ctx)
       ~tids:(Warp_ctx.tids ctx) ~objs ~targets:impl_ids
   | None -> ());
  let n = Array.length impl_ids in
  let k0 = impl_ids.(0) in
  let uniform = ref (Warp_ctx.fused ctx) in
  let i = ref 1 in
  while !uniform && !i < n do
    if impl_ids.(!i) <> k0 then uniform := false;
    incr i
  done;
  if !uniform then begin
    Warp_ctx.ctrl ctx ~label:Label.Call;
    if indirect then Warp_ctx.call_indirect ctx ~label:Label.Call
    else Warp_ctx.call_direct ctx ~label:Label.Call;
    (Registry.impl t.registry k0) env objs
  end
  else
    Warp_ctx.diverge ctx ~label:Label.Call ~keys:impl_ids (fun ~key sub idxs ->
        if indirect then Warp_ctx.call_indirect sub ~label:Label.Call
        else Warp_ctx.call_direct sub ~label:Label.Call;
        let sub_objs = Warp_ctx.gather idxs objs in
        (Registry.impl t.registry key) (Env.restrict env sub) sub_objs)

(* The contemporary CUDA sequence (Fig. 1a): A, B, the constant-memory
   indirection, C. Also used by SharedOA and by COAL's converged sites.

   Each style has a fused variant keyed on [Warp_ctx.fused]: per-lane
   addresses go through the warp's scratch buffer ([load_into]), and
   loaded values are rewritten in place instead of mapped into fresh
   arrays. Same addresses, same emission order, same resolved targets —
   traces are byte-identical; only the intermediate allocations go. *)
let cuda_style t env ~objs ~slot =
  let ctx = env.Env.ctx in
  let header_word =
    match Object_model.gpu_vtable_slot t.om with
    | Some w -> w
    | None -> invalid_arg "Dispatch: technique has no vtable header"
  in
  if Warp_ctx.fused ctx then begin
    let n = Array.length objs in
    let buf = Warp_ctx.addr_scratch ctx n in
    for i = 0 to n - 1 do
      buf.(i) <- Object_model.header_addr t.om ~ptr:objs.(i) ~word:header_word
    done;
    let vtables =
      Warp_ctx.load_into ctx ~label:Label.Vtable_load ~blocking:true
        ~addrs:buf ~n
    in
    for i = 0 to n - 1 do
      buf.(i) <- Vtable_space.slot_addr ~vtable:vtables.(i) ~slot
    done;
    let encoded =
      Warp_ctx.load_into ctx ~label:Label.Vfunc_load ~blocking:true
        ~addrs:buf ~n
    in
    Warp_ctx.const_load ctx ~label:Label.Const_indirect;
    for i = 0 to n - 1 do
      encoded.(i) <- Registry.decode_impl_id encoded.(i)
    done;
    branch_and_execute t env ~indirect:true ~objs encoded
  end
  else begin
    let vt_addrs =
      Array.map (fun ptr -> Object_model.header_addr t.om ~ptr ~word:header_word) objs
    in
    let vtables = Warp_ctx.load ctx ~label:Label.Vtable_load vt_addrs in
    let fn_addrs =
      Array.map (fun vtable -> Vtable_space.slot_addr ~vtable ~slot) vtables
    in
    let encoded = Warp_ctx.load ctx ~label:Label.Vfunc_load fn_addrs in
    Warp_ctx.const_load ctx ~label:Label.Const_indirect;
    branch_and_execute t env ~indirect:true ~objs (Array.map Registry.decode_impl_id encoded)
  end

let concord t env ~objs ~slot =
  let ctx = env.Env.ctx in
  let n_types = Registry.type_count t.registry in
  let impl_of_tag tag =
    let type_id = tag - 1 in
    if type_id < 0 || type_id >= n_types then
      failwith "Dispatch.concord: corrupt type tag";
    Registry.impl_of_slot (Registry.find_type t.registry type_id) ~slot
  in
  if Warp_ctx.fused ctx then begin
    let n = Array.length objs in
    let buf = Warp_ctx.addr_scratch ctx n in
    for i = 0 to n - 1 do
      buf.(i) <- Object_model.header_addr t.om ~ptr:objs.(i) ~word:0
    done;
    let tags =
      Warp_ctx.load_into ctx ~label:Label.Concord_tag ~blocking:true
        ~addrs:buf ~n
    in
    Warp_ctx.compute ctx ~n:(max 1 n_types) ~label:Label.Concord_switch;
    for i = 0 to n - 1 do
      tags.(i) <- impl_of_tag tags.(i)
    done;
    branch_and_execute t env ~indirect:false ~objs tags
  end
  else begin
    let tag_addrs = Array.map (fun ptr -> Object_model.header_addr t.om ~ptr ~word:0) objs in
    let tags = Warp_ctx.load ctx ~label:Label.Concord_tag tag_addrs in
    (* The compiler-expanded switch: a compare/branch per program type, all
       executed by the warp before the taken targets serialize. *)
    Warp_ctx.compute ctx ~n:(max 1 n_types) ~label:Label.Concord_switch;
    let impl_ids = Array.map impl_of_tag tags in
    branch_and_execute t env ~indirect:false ~objs impl_ids
  end

let coal t env ~objs ~slot =
  let ctx = env.Env.ctx in
  let table =
    match t.range_table with Some rt -> rt | None -> assert false
  in
  let encoded = Range_table.lookup_emit table ctx ~objs ~slot in
  Warp_ctx.const_load ctx ~label:Label.Const_indirect;
  branch_and_execute t env ~indirect:true ~objs (Array.map Registry.decode_impl_id encoded)

let type_pointer t env ~objs ~slot =
  let ctx = env.Env.ctx in
  (* The tag is consumed here without the MMU ever seeing it, so its
     integrity must be checked at this point, not on the load path. *)
  (match t.san with
   | Some san ->
     Repro_san.Checker.check_tagged_ptrs san ~warp:(Warp_ctx.warp_id ctx)
       ~tids:(Warp_ctx.tids ctx) ~ptrs:objs
   | None -> ());
  (* SHR to recover the tag, ADD onto vTablesStartAddr (Fig. 5b lines
     1-2); a dependent ALU chain. *)
  Warp_ctx.compute ctx ~n:2 ~blocking:true ~label:Label.Tp_dispatch;
  if Warp_ctx.fused ctx then begin
    let n = Array.length objs in
    let buf = Warp_ctx.addr_scratch ctx n in
    for i = 0 to n - 1 do
      let vtable =
        Vtable_space.vtable_of_tag t.vtspace ~tag:(Vaddr.tag_of objs.(i))
      in
      buf.(i) <- Vtable_space.slot_addr ~vtable ~slot
    done;
    let encoded =
      Warp_ctx.load_into ctx ~label:Label.Vfunc_load ~blocking:true
        ~addrs:buf ~n
    in
    for i = 0 to n - 1 do
      encoded.(i) <- Registry.decode_impl_id encoded.(i)
    done;
    branch_and_execute t env ~indirect:true ~objs encoded
  end
  else begin
    let fn_addrs =
      Array.map
        (fun ptr ->
          let vtable = Vtable_space.vtable_of_tag t.vtspace ~tag:(Vaddr.tag_of ptr) in
          Vtable_space.slot_addr ~vtable ~slot)
        objs
    in
    let encoded = Warp_ctx.load ctx ~label:Label.Vfunc_load fn_addrs in
    branch_and_execute t env ~indirect:true ~objs
      (Array.map Registry.decode_impl_id encoded)
  end

let check_objs objs =
  if Array.length objs = 0 then invalid_arg "Dispatch.vcall: no receivers"

let count t env ~objs =
  ignore objs;
  t.warp_vcalls <- t.warp_vcalls + 1;
  t.thread_vcalls <- t.thread_vcalls + Warp_ctx.n_active env.Env.ctx

let vcall t env ~objs ~slot =
  check_objs objs;
  count t env ~objs;
  match Object_model.technique t.om with
  | Technique.Cuda | Technique.Shared_oa -> cuda_style t env ~objs ~slot
  | Technique.Concord -> concord t env ~objs ~slot
  | Technique.Coal -> coal t env ~objs ~slot
  | Technique.Type_pointer _ -> type_pointer t env ~objs ~slot

(* A call site the compiler statically proved converged: COAL leaves it
   un-instrumented (the range walk would cost more than the coalesced
   vTable* load it replaces — the RAY discussion in Sec. 8.1). *)
let vcall_converged t env ~objs ~slot =
  check_objs objs;
  count t env ~objs;
  match Object_model.technique t.om with
  | Technique.Coal -> cuda_style t env ~objs ~slot
  | Technique.Cuda | Technique.Shared_oa -> cuda_style t env ~objs ~slot
  | Technique.Concord -> concord t env ~objs ~slot
  | Technique.Type_pointer _ -> type_pointer t env ~objs ~slot

let make_env t ctx =
  {
    Env.ctx;
    om = t.om;
    vcall = (fun env ~objs ~slot -> vcall t env ~objs ~slot);
    vcall_converged = (fun env ~objs ~slot -> vcall_converged t env ~objs ~slot);
  }
