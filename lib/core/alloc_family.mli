(** Which allocator places the objects of a run.

    A technique prescribes its paper allocator ({!default_for}): the
    type-ranged SharedOA heap for SHARD/COAL/TP, the padded device-side
    heap for CUDA/Concord. The family can also be overridden per run
    ([--alloc] on the CLI, [alloc] in a job spec), which is how the
    DynaSOAr-style structure-of-arrays family becomes a sixth measured
    column without being a dispatch technique of its own. *)

type t =
  | Cuda       (** The default device-side heap model ({!Cuda_alloc}). *)
  | Shared_oa  (** The paper's type-ranged AoS allocator ({!Shared_oa}). *)
  | Dyna_soa   (** DynaSOAr-style SoA blocks with occupancy bitmaps
                   ({!Dyna_soa}). *)

val all : t list

val name : t -> string
(** Stable wire/CLI name: "cuda", "shared-oa", "dyna". *)

val all_names : string list

val of_string : string -> (t, string) result
(** Parses {!name} (case-insensitive, with common aliases); the error
    message lists the valid names. *)

val equal : t -> t -> bool

val default_for : Technique.t -> t
(** The allocator the paper pairs with [technique]. *)

val is_default : Technique.t -> t -> bool

val column_name : Technique.t -> t -> string
(** Display name of the (technique, family) column: the technique's own
    name when the family is its default, "DYNA" for the SoA column over
    CUDA dispatch, and "TECH+FAM" for any other combination. *)

val pp : Format.formatter -> t -> unit
