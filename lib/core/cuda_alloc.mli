(** A model of the default CUDA device heap.

    The paper observes (Sec. 8.2) that the stock allocator "does not
    allocate objects of the same type consecutively and adds additional
    padding between allocated objects". We reproduce both properties:
    every allocation is rounded up to a 128-byte granule, and consecutive
    allocations are scattered round-robin across many independent slabs
    (the visible effect of per-warp arenas in the real heap), so a warp
    touching 32 logically-adjacent objects touches 32 far-apart cache
    sectors.

    The modelled allocation cost is high — device-side [new] on objects
    with virtual functions serializes on heap locks and a device-wide
    sync — which is the other side of the Sec. 8.2 "SharedOA initializes
    80× faster" comparison. *)

val granule_bytes : int
(** Placement granularity (128). *)

val default_slabs : int
(** Number of scatter slabs (64). *)

val cycles_per_alloc : float
(** Modelled device-side allocation cost per object. *)

val create :
  ?shadow:Repro_san.Shadow_heap.t ->
  ?slabs:int ->
  ?arena_bytes:int ->
  space:Repro_mem.Address_space.t ->
  unit -> Allocator.t
(** [arena_bytes] defaults to 1 GB of (lazily materialized) address
    space. Raises [Failure] when a slab overflows. When [shadow] is
    given, the arena is declared a heap range and every placement (true
    size, excluding granule padding) registered in the shadow map. *)
