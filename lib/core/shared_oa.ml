let default_chunk_objs = 4096
let cycles_per_alloc = 25.

type chunk = {
  base : int;
  mutable limit : int;        (* logical capacity end (objects fit below) *)
  mutable reserved_end : int; (* end of the page-rounded reservation *)
  mutable cursor : int;       (* next free byte *)
}

type type_state = {
  type_id : int;
  mutable chunks : chunk list; (* newest first *)
  mutable next_chunk_objs : int;
}

type state = {
  space : Repro_mem.Address_space.t;
  initial_chunk_objs : int;
  by_type : (int, type_state) Hashtbl.t;
  mutable objects : int;
  mutable used_bytes : int;
  mutable reserved_bytes : int;
  mutable alloc_cycles : float;
}

let grow st ~shadow ts ~size_bytes =
  let objs = ts.next_chunk_objs in
  ts.next_chunk_objs <- ts.next_chunk_objs * 2;
  let bytes = objs * size_bytes in
  let name = Printf.sprintf "oa:%d:%d" ts.type_id (List.length ts.chunks) in
  let arena = Repro_mem.Address_space.reserve st.space ~name ~size:bytes in
  let base = arena.Repro_mem.Address_space.base in
  let size = arena.Repro_mem.Address_space.size in
  st.reserved_bytes <- st.reserved_bytes + size;
  (match shadow with
   | Some sh -> Repro_san.Shadow_heap.add_heap_range sh ~base ~size
   | None -> ());
  (* The chunk's capacity is the requested object count; the page-rounding
     tail is pure fragmentation. *)
  match ts.chunks with
  | prev :: _ when prev.reserved_end = base ->
    (* The fresh reservation is flush against the previous chunk of this
       type: merge, keeping one region (Sec. 4). *)
    prev.cursor <- base;
    prev.limit <- base + bytes;
    prev.reserved_end <- base + size
  | _ ->
    ts.chunks <-
      { base; limit = base + bytes; reserved_end = base + size; cursor = base }
      :: ts.chunks

let create ?shadow ?(chunk_objs = default_chunk_objs) ~space () =
  if chunk_objs <= 0 then invalid_arg "Shared_oa.create: chunk_objs must be positive";
  let st =
    {
      space;
      initial_chunk_objs = chunk_objs;
      by_type = Hashtbl.create 16;
      objects = 0;
      used_bytes = 0;
      reserved_bytes = 0;
      alloc_cycles = 0.;
    }
  in
  let state_of typ =
    let id = Registry.type_id typ in
    match Hashtbl.find_opt st.by_type id with
    | Some ts -> ts
    | None ->
      let ts = { type_id = id; chunks = []; next_chunk_objs = st.initial_chunk_objs } in
      Hashtbl.add st.by_type id ts;
      ts
  in
  let alloc ~typ ~size_bytes =
    if size_bytes <= 0 then invalid_arg "Shared_oa.alloc: size must be positive";
    let ts = state_of typ in
    (match ts.chunks with
     | head :: _ when head.cursor + size_bytes <= head.limit -> ()
     | _ -> grow st ~shadow ts ~size_bytes);
    let head = List.hd ts.chunks in
    let addr = head.cursor in
    head.cursor <- head.cursor + size_bytes;
    st.objects <- st.objects + 1;
    st.used_bytes <- st.used_bytes + size_bytes;
    st.alloc_cycles <- st.alloc_cycles +. cycles_per_alloc;
    (match shadow with
     | Some sh ->
       Repro_san.Shadow_heap.register sh ~base:addr ~size:size_bytes
         ~type_id:ts.type_id
     | None -> ());
    addr
  in
  let regions () =
    Hashtbl.fold
      (fun _ ts acc ->
        List.fold_left
          (fun acc chunk ->
            Region.make ~base:chunk.base ~limit:chunk.limit ~type_id:ts.type_id :: acc)
          acc ts.chunks)
      st.by_type []
    |> List.sort Region.compare_base
  in
  (* Reservation extents (chunk base to page-rounded end): unlike
     [regions] they tile the oa:* arenas exactly, which is what the
     translation model needs to promote without partial-page overlap.
     [grow] already merges flush-adjacent reservations of one type. *)
  let contiguity () =
    Hashtbl.fold
      (fun _ ts acc ->
        List.fold_left
          (fun acc chunk ->
            Region.make ~base:chunk.base ~limit:chunk.reserved_end
              ~type_id:ts.type_id
            :: acc)
          acc ts.chunks)
      st.by_type []
    |> List.sort Region.compare_base
  in
  let stats () =
    Allocator.basic_stats ~objects:st.objects ~reserved_bytes:st.reserved_bytes
      ~used_bytes:st.used_bytes ~alloc_cycles:st.alloc_cycles
  in
  {
    Allocator.name = "shared-oa";
    alloc;
    free = None;
    field_addr = None;
    regions;
    contiguity;
    stats;
  }
