module Vaddr = Repro_mem.Vaddr
module Page_store = Repro_mem.Page_store
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label
module Mathx = Repro_util.Mathx

let node_bytes = 4 * Vaddr.word_bytes
let leaf_header_words = 4

type built = {
  sorted : Region.t array;       (* the real regions, sorted by base *)
  n_leaves : int;                (* power-of-two padded *)
  depth : int;                   (* internal levels *)
  node_base : int;
  leaf_base : int;
  leaf_stride : int;             (* bytes *)
}

type t = {
  heap : Page_store.t;
  space : Repro_mem.Address_space.t;
  mutable generation : int;
  mutable built : built option;
}

let create ~heap ~space = { heap; space; generation = 0; built = None }

let n_leaves t = match t.built with None -> 0 | Some b -> b.n_leaves

let depth t = match t.built with None -> 0 | Some b -> b.depth

(* Coverage bounds (min base, max limit) of the leaves under heap-order
   node [idx]; (0,0) when the subtree holds only padding leaves. *)
let rec coverage sorted ~n_leaves idx =
  if idx >= n_leaves - 1 then begin
    let leaf = idx - (n_leaves - 1) in
    if leaf < Array.length sorted then
      (sorted.(leaf).Region.base, sorted.(leaf).Region.limit)
    else (0, 0)
  end
  else begin
    let lmin, lmax = coverage sorted ~n_leaves ((2 * idx) + 1) in
    let rmin, rmax = coverage sorted ~n_leaves ((2 * idx) + 2) in
    if lmax = 0 then (rmin, rmax)
    else if rmax = 0 then (lmin, lmax)
    else (min lmin rmin, max lmax rmax)
  end

let rebuild t ~registry ~regions =
  let sorted = Array.of_list (List.sort Region.compare_base regions) in
  Array.iteri
    (fun i r ->
      if i > 0 && Region.overlap sorted.(i - 1) r then
        invalid_arg "Range_table.rebuild: overlapping regions")
    sorted;
  let count = Array.length sorted in
  if count = 0 then invalid_arg "Range_table.rebuild: no regions";
  let n_leaves = Mathx.ceil_pow2 count in
  let depth = Mathx.ilog2 n_leaves in
  let max_slots =
    List.fold_left (fun acc typ -> max acc (Registry.n_slots typ)) 1 (Registry.types registry)
  in
  let leaf_stride = (leaf_header_words + max_slots) * Vaddr.word_bytes in
  let internal_bytes = max 1 (n_leaves - 1) * node_bytes in
  t.generation <- t.generation + 1;
  let arena =
    Repro_mem.Address_space.reserve t.space
      ~name:(Printf.sprintf "range-table:%d" t.generation)
      ~size:(internal_bytes + (n_leaves * leaf_stride))
  in
  let node_base = arena.Repro_mem.Address_space.base in
  let leaf_base = node_base + internal_bytes in
  (* Internal nodes: lmin, lmax, rmin, rmax of the two children. *)
  for idx = 0 to n_leaves - 2 do
    let lmin, lmax = coverage sorted ~n_leaves ((2 * idx) + 1) in
    let rmin, rmax = coverage sorted ~n_leaves ((2 * idx) + 2) in
    let base = node_base + (idx * node_bytes) in
    Page_store.store t.heap base lmin;
    Page_store.store t.heap (base + Vaddr.word_bytes) lmax;
    Page_store.store t.heap (base + (2 * Vaddr.word_bytes)) rmin;
    Page_store.store t.heap (base + (3 * Vaddr.word_bytes)) rmax
  done;
  (* Leaves: bounds, type, then the embedded vtable (encoded impl ids). *)
  for leaf = 0 to n_leaves - 1 do
    let base = leaf_base + (leaf * leaf_stride) in
    if leaf < count then begin
      let r = sorted.(leaf) in
      let typ = Registry.find_type registry r.Region.type_id in
      Page_store.store t.heap base r.Region.base;
      Page_store.store t.heap (base + Vaddr.word_bytes) r.Region.limit;
      Page_store.store t.heap (base + (2 * Vaddr.word_bytes)) (r.Region.type_id + 1);
      for slot = 0 to Registry.n_slots typ - 1 do
        Page_store.store t.heap
          (base + ((leaf_header_words + slot) * Vaddr.word_bytes))
          (Registry.encode_impl_id (Registry.impl_of_slot typ ~slot))
      done
    end
    else
      for w = 0 to leaf_header_words - 1 do
        Page_store.store t.heap (base + (w * Vaddr.word_bytes)) 0
      done
  done;
  t.built <- Some { sorted; n_leaves; depth; node_base; leaf_base; leaf_stride }

let find_region_host t addr =
  match t.built with
  | None -> None
  | Some b ->
    let addr = Vaddr.strip addr in
    let rec search lo hi =
      if lo >= hi then None
      else begin
        let mid = (lo + hi) / 2 in
        let r = b.sorted.(mid) in
        if addr < r.Region.base then search lo mid
        else if addr >= r.Region.limit then search (mid + 1) hi
        else Some r
      end
    in
    search 0 (Array.length b.sorted)

let require_built t =
  match t.built with
  | Some b -> b
  | None -> failwith "Range_table: lookup before rebuild"

let node_addr b idx = b.node_base + (idx * node_bytes)

let leaf_addr b leaf = b.leaf_base + (leaf * b.leaf_stride)

(* Swap the embedded vtables of the first two leaves whose types differ
   in some slot's implementation: lookups landing in either region now
   resolve the other type's methods. The region bounds stay intact, so
   only the dispatch oracle (not the walk itself) can notice. *)
let skew_leaves t ~registry =
  match t.built with
  | None -> false
  | Some b ->
    let count = Array.length b.sorted in
    let slots_of leaf =
      Registry.n_slots
        (Registry.find_type registry b.sorted.(leaf).Region.type_id)
    in
    let differs i j =
      let ti = Registry.find_type registry b.sorted.(i).Region.type_id in
      let tj = Registry.find_type registry b.sorted.(j).Region.type_id in
      let n = min (Registry.n_slots ti) (Registry.n_slots tj) in
      let rec go slot =
        slot < n
        && (Registry.impl_of_slot ti ~slot <> Registry.impl_of_slot tj ~slot
            || go (slot + 1))
      in
      go 0
    in
    let rec pick i j =
      if i >= count then None
      else if j >= count then pick (i + 1) (i + 2)
      else if differs i j then Some (i, j)
      else pick i (j + 1)
    in
    (match pick 0 1 with
     | None -> false
     | Some (i, j) ->
       let n = min (slots_of i) (slots_of j) in
       for slot = 0 to n - 1 do
         let ai = leaf_addr b i + ((leaf_header_words + slot) * Vaddr.word_bytes) in
         let aj = leaf_addr b j + ((leaf_header_words + slot) * Vaddr.word_bytes) in
         let vi = Page_store.load t.heap ai in
         let vj = Page_store.load t.heap aj in
         Page_store.store t.heap ai vj;
         Page_store.store t.heap aj vi
       done;
       true)

let lookup_emit t ctx ~objs ~slot =
  let b = require_built t in
  let n = Array.length objs in
  let addrs = Array.map Vaddr.strip objs in
  let node = Array.make n 0 in
  (* Internal walk: one 32 B node load plus the two range comparisons per
     level, a dependent chain (the next node address needs the bounds). *)
  for _level = 0 to b.depth - 1 do
    (* Two 64-bit loads fetch the four bounds (left min/max, right
       min/max), then the two range tests select the child. *)
    let left_addrs = Array.map (fun idx -> node_addr b idx) node in
    ignore (Warp_ctx.load ctx ~label:Label.Coal_lookup left_addrs);
    let right_addrs =
      Array.map (fun idx -> node_addr b idx + (2 * Vaddr.word_bytes)) node
    in
    ignore (Warp_ctx.load ctx ~label:Label.Coal_lookup right_addrs);
    Warp_ctx.compute ctx ~n:4 ~blocking:true ~label:Label.Coal_lookup;
    for i = 0 to n - 1 do
      let base = node_addr b node.(i) in
      let lmin = Page_store.load t.heap base in
      let lmax = Page_store.load t.heap (base + Vaddr.word_bytes) in
      let rmin = Page_store.load t.heap (base + (2 * Vaddr.word_bytes)) in
      let rmax = Page_store.load t.heap (base + (3 * Vaddr.word_bytes)) in
      let a = addrs.(i) in
      if lmax <> 0 && a >= lmin && a < lmax then node.(i) <- (2 * node.(i)) + 1
      else if rmax <> 0 && a >= rmin && a < rmax then node.(i) <- (2 * node.(i)) + 2
      else failwith "Range_table.lookup_emit: address in no region"
    done
  done;
  (* Leaf: bounds check, then the vfunc pointer from the embedded table. *)
  let leaf_of i = node.(i) - (b.n_leaves - 1) in
  let leaf_bound_addrs = Array.init n (fun i -> leaf_addr b (leaf_of i)) in
  ignore (Warp_ctx.load ctx ~label:Label.Coal_lookup leaf_bound_addrs);
  Warp_ctx.compute ctx ~n:2 ~blocking:true ~label:Label.Coal_lookup;
  Array.iteri
    (fun i a ->
      let base = leaf_addr b (leaf_of i) in
      let lo = Page_store.load t.heap base in
      let hi = Page_store.load t.heap (base + Vaddr.word_bytes) in
      if not (a >= lo && a < hi) then
        failwith "Range_table.lookup_emit: address in no region")
    addrs;
  let vfunc_addrs =
    Array.init n (fun i ->
        leaf_addr b (leaf_of i) + ((leaf_header_words + slot) * Vaddr.word_bytes))
  in
  Warp_ctx.load ctx ~label:Label.Vfunc_load vfunc_addrs
