(** Object layout and member access under each technique.

    Layouts (in 64-bit words, before the user fields):

    - CUDA / TypePointer-on-CUDA: 1 header word — the GPU vTable pointer
      (what device-side [new] writes).
    - Concord: 1 header word — the embedded type tag.
    - SharedOA / COAL / TypePointer-on-SharedOA: 2 header words — the CPU
      vTable pointer and the GPU vTable pointer ([sharedNew] stores both,
      Sec. 4).

    User fields are 4-byte signed slots (the common case for the int
    fields of the paper's workloads) following the 8-byte header words;
    packing small objects tightly is precisely what SharedOA exploits.

    Member references go through here so that the TypePointer silicon
    prototype can charge its tag-masking instruction at every reference
    (Sec. 6.3) while the hardware-MMU variant pays nothing. *)

type t

val create : Technique.t -> t

val set_addr_hook : t -> (obj:int -> off:int -> int) option -> unit
(** Install the allocator's layout hook (see {!Allocator.t.field_addr}):
    every member reference — field or header word, device or host side —
    resolves through it, so an SoA allocator reroutes traffic to
    [block_base + per-field array + slot] instead of [obj + off].
    [None] (the default) is the identity AoS layout. *)

val set_fused : t -> bool -> unit
(** Enable the interned-engine fast path for {!field_load}/{!field_store}:
    per-lane addresses go through a reusable scratch buffer and the fused
    [Warp_ctx.load_into]/[store_from] entry points, allocating only the
    returned value array. Emission order, addresses and heap effects are
    identical to the legacy path, so results are byte-identical; off by
    default (the runtime turns it on with [Engine.intern] on unsanitized
    runs). *)

val technique : t -> Technique.t

val header_words : t -> int

val field_bytes : int
(** Size of one user field slot (4). *)

val object_bytes : t -> field_words:int -> int
(** Header plus payload, in bytes ([field_words] counts 4-byte field
    slots despite the historical name). *)

val gpu_vtable_slot : t -> int option
(** Which header word holds the GPU vTable pointer ([None] for Concord,
    whose header is a tag). *)

val field_addr : t -> ptr:int -> field:int -> int
(** Host-side address of user field [field] (canonical, tag stripped). *)

val header_addr : t -> ptr:int -> word:int -> int

val field_load :
  t -> Repro_gpu.Warp_ctx.t -> objs:int array -> field:int -> int array
(** Emit a warp load of one user field across lanes (label [Body]); in
    prototype TypePointer mode a mask instruction is charged first. *)

val field_store :
  t -> Repro_gpu.Warp_ctx.t -> objs:int array -> field:int -> int array -> unit

val field_load_host : t -> Repro_mem.Page_store.t -> ptr:int -> field:int -> int
(** Untimed host-side access (CPU sharing through unified memory). *)

val field_store_host :
  t -> Repro_mem.Page_store.t -> ptr:int -> field:int -> int -> unit
