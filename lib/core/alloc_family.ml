type t = Cuda | Shared_oa | Dyna_soa

let all = [ Cuda; Shared_oa; Dyna_soa ]

let name = function
  | Cuda -> "cuda"
  | Shared_oa -> "shared-oa"
  | Dyna_soa -> "dyna"

let all_names = List.map name all

let of_string s =
  match String.lowercase_ascii s with
  | "cuda" -> Ok Cuda
  | "shared-oa" | "shared_oa" | "sharedoa" | "oa" -> Ok Shared_oa
  | "dyna" | "dyna-soa" | "dyna_soa" | "dynasoa" | "soa" -> Ok Dyna_soa
  | _ ->
    Error
      (Printf.sprintf "unknown allocator family %S; valid families: %s" s
         (String.concat ", " all_names))

let equal (a : t) (b : t) = a = b

let default_for technique =
  if Technique.uses_shared_oa technique then Shared_oa else Cuda

let is_default technique fam = equal fam (default_for technique)

let short = function Cuda -> "CUDA" | Shared_oa -> "SHARD" | Dyna_soa -> "DYNA"

let column_name technique fam =
  if is_default technique fam then Technique.name technique
  else
    match (technique, fam) with
    | Technique.Cuda, Dyna_soa -> "DYNA"
    | _ -> Technique.name technique ^ "+" ^ short fam

let pp ppf t = Format.pp_print_string ppf (name t)
