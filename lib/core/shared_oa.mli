(** SharedOA: the type-based shared object allocator (Sec. 4).

    Each type gets dedicated contiguous chunks sized in *objects* — an
    initial chunk of [chunk_objs] objects (4 K by default, the paper's
    choice), doubling whenever the current chunk fills, so region counts
    stay logarithmic in the object count. When a fresh chunk happens to
    start exactly where the previous chunk of the same type ends, the two
    are merged into one region, bounding the virtual-range-table size.

    Because allocation is a host-side bump into reserved ranges, the
    modelled cost per object is tiny compared to device-side [new] — the
    Sec. 8.2 initialization comparison. *)

val default_chunk_objs : int
(** 4096, the paper's initial region size. *)

val cycles_per_alloc : float
(** Modelled host-side allocation cost per object. *)

val create :
  ?shadow:Repro_san.Shadow_heap.t ->
  ?chunk_objs:int ->
  space:Repro_mem.Address_space.t ->
  unit -> Allocator.t
(** Regions are reserved lazily per type from [space]. The returned
    allocator's [regions] are sorted by base address and merged where
    adjacent. When [shadow] is given, every reservation is declared a
    heap range and every placement registered in the shadow map. *)
