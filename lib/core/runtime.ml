module Page_store = Repro_mem.Page_store
module Address_space = Repro_mem.Address_space
module Vaddr = Repro_mem.Vaddr
module Device = Repro_gpu.Device
module Vec = Repro_util.Vec

type t = {
  technique : Technique.t;
  alloc_family : Alloc_family.t;
  heap : Page_store.t;
  space : Address_space.t;
  device : Device.t;
  registry : Registry.t;
  vtspace : Vtable_space.t;
  om : Object_model.t;
  allocator : Allocator.t;
  range_table : Range_table.t option;
  dispatch : Dispatch.t;
  san : Repro_san.Checker.t option;
  allocations : (int * Registry.typ) Vec.t;
  mutable regions_dirty : bool;
  pages : Repro_vm.Policy.t option;
  mutable vm_dirty : bool;
}

let create ?config ?(engine = Repro_gpu.Engine.default) ?prealloc_mb
    ?(chunk_objs = Shared_oa.default_chunk_objs) ?vt_encoding ?san
    ?telemetry ?alloc ?pages ~technique () =
  (match san with
   | Some checker
     when Repro_san.Checker.tags_expected checker
          <> Technique.tags_pointers technique ->
     invalid_arg
       "Runtime.create: sanitizer tags_expected disagrees with the technique"
   | _ -> ());
  let heap =
    Page_store.create
      ?expect_bytes:(Option.map (fun mb -> mb * 1024 * 1024) prealloc_mb) ()
  in
  let space = Address_space.create () in
  let device = Device.create ?config ~engine ?san ?telemetry ~heap () in
  let registry = Registry.create ~heap in
  let vtspace = Vtable_space.create ?encoding:vt_encoding ~heap ~space () in
  let om = Object_model.create technique in
  (* The fused emission path wants raw scratch buffers; sanitized runs
     keep the legacy exact-width-array path the checker was written
     against. *)
  Object_model.set_fused om (engine.Repro_gpu.Engine.intern && san = None);
  let shadow = Option.map Repro_san.Checker.shadow san in
  let alloc_family =
    match alloc with
    | Some fam -> fam
    | None -> Alloc_family.default_for technique
  in
  let allocator =
    match alloc_family with
    | Alloc_family.Shared_oa -> Shared_oa.create ?shadow ~chunk_objs ~space ()
    | Alloc_family.Cuda -> Cuda_alloc.create ?shadow ~space ()
    | Alloc_family.Dyna_soa ->
      Dyna_soa.create ?shadow ~header_words:(Object_model.header_words om)
        ~space ()
  in
  Object_model.set_addr_hook om allocator.Allocator.field_addr;
  let range_table =
    match technique with
    | Technique.Coal -> Some (Range_table.create ~heap ~space)
    | Technique.Cuda | Technique.Concord | Technique.Shared_oa
    | Technique.Type_pointer _ -> None
  in
  let dispatch = Dispatch.create ?san ~registry ~om ~vtspace ~range_table ~heap () in
  {
    technique;
    alloc_family;
    heap;
    space;
    device;
    registry;
    vtspace;
    om;
    allocator;
    range_table;
    dispatch;
    san;
    allocations = Vec.create ();
    regions_dirty = true;
    pages;
    vm_dirty = pages <> None;
  }

let technique t = t.technique
let alloc_family t = t.alloc_family
let san t = t.san
let registry t = t.registry
let heap t = t.heap
let device t = t.device
let object_model t = t.om
let allocator t = t.allocator
let range_table t = t.range_table
let address_space t = t.space

let register_impl t ~name impl = Registry.register_impl t.registry ~name impl

let define_type t ~name ~field_words ?parent ~slots () =
  Registry.define_type t.registry ~name ~field_words ?parent ~slots ()

let ensure_materialized t =
  if not (Registry.materialized t.registry) then
    Registry.materialize t.registry ~vtspace:t.vtspace ~space:t.space

let write_headers t typ addr =
  (* Through the object model, not raw [addr + word*8]: an SoA allocator
     stores each header word in a per-block array. *)
  let store word v =
    Page_store.store t.heap (Object_model.header_addr t.om ~ptr:addr ~word) v
  in
  match t.technique with
  | Technique.Concord -> store 0 (Registry.type_id typ + 1)
  | Technique.Cuda -> store 0 (Registry.gpu_vtable typ)
  | Technique.Type_pointer { on_cuda_alloc = true; _ } ->
    store 0 (Registry.gpu_vtable typ)
  | Technique.Shared_oa | Technique.Coal
  | Technique.Type_pointer { on_cuda_alloc = false; _ } ->
    store 0 (Registry.cpu_vtable typ);
    store 1 (Registry.gpu_vtable typ)

(* Rebuild the translation model from the current address-space layout
   and the allocator's reported contiguity. Called lazily from [launch]
   (like the range table) so a burst of allocations costs one rebuild;
   a rebuild replaces the whole model, so both TLB levels start cold. *)
let build_vm t =
  match t.pages with
  | None -> ()
  | Some policy ->
    let arenas =
      List.map
        (fun a ->
          (a.Address_space.base, a.Address_space.size))
        (Address_space.arenas t.space)
    in
    let promoted =
      match policy with
      | Repro_vm.Policy.Coalesce ->
        List.map
          (fun r -> (r.Region.base, r.Region.limit, r.Region.type_id))
          (t.allocator.Allocator.contiguity ())
      | Repro_vm.Policy.Flat_4k | Repro_vm.Policy.Flat_2m -> []
    in
    let table = Repro_vm.Page_table.build ~policy ~arenas ~promoted () in
    let n_sms = (Device.config t.device).Repro_gpu.Config.n_sms in
    Device.set_vm t.device (Some (Repro_vm.Vm.create ~n_sms ~table ()));
    (match t.san with
     | Some san -> Repro_san.Checker.set_page_table san (Some table)
     | None -> ());
    t.vm_dirty <- false

let vm t = Device.vm t.device

let pages t = t.pages

let new_obj t typ =
  ensure_materialized t;
  let size_bytes =
    (* Objects are 8-aligned, as C++ requires of anything with a vptr. *)
    Vaddr.align_up
      (Object_model.object_bytes t.om ~field_words:(Registry.field_words typ))
      ~alignment:Vaddr.word_bytes
  in
  let addr = t.allocator.Allocator.alloc ~typ ~size_bytes in
  write_headers t typ addr;
  let ptr =
    if Technique.tags_pointers t.technique then begin
      let tag = Vtable_space.tag_of_vtable t.vtspace ~vtable:(Registry.gpu_vtable typ) in
      (match t.san with
       | Some san ->
         Repro_san.Shadow_heap.note_tag (Repro_san.Checker.shadow san)
           ~base:addr ~tag
       | None -> ());
      Vaddr.with_tag addr ~tag
    end
    else addr
  in
  Vec.push t.allocations (ptr, typ);
  t.regions_dirty <- true;
  if t.pages <> None then t.vm_dirty <- true;
  ptr

let new_objs t typ n =
  if n < 0 then invalid_arg "Runtime.new_objs: negative count";
  Array.init n (fun _ -> new_obj t typ)

let n_objects t = Vec.length t.allocations

let allocations t = Vec.to_array t.allocations

let launch t ~n_threads kernel =
  (match t.range_table with
   | Some table when t.regions_dirty ->
     Range_table.rebuild table ~registry:t.registry
       ~regions:(t.allocator.Allocator.regions ());
     (* A seeded range-table bug must survive rebuilds, so it is
        re-applied after each one. *)
     (match t.san with
      | Some san when Repro_san.Checker.mutation san = Some Repro_san.Mutation.Skew_range ->
        ignore (Range_table.skew_leaves table ~registry:t.registry)
      | _ -> ());
     t.regions_dirty <- false
   | Some _ | None -> ());
  (* After the range-table rebuild: each rebuild reserves a fresh arena,
     which the page table must cover before the kernel's range walks
     translate through it. *)
  if t.vm_dirty then build_vm t;
  Device.launch t.device ~n_threads (fun ctx ->
      kernel (Dispatch.make_env t.dispatch ctx))

let stats t = Device.stats t.device

let kernel_timeline t = Device.kernel_timeline t.device

let window_timeline t = Device.window_timeline t.device

let sample_window t = Device.sample_window t.device

let telemetry_dump t = Device.telemetry_dump t.device

let cycles t = Repro_gpu.Stats.cycles (Device.stats t.device)

let reset_stats t =
  Device.reset_stats t.device;
  Dispatch.reset_counters t.dispatch

let warp_vcalls t = Dispatch.warp_vcalls t.dispatch

let thread_vcalls t = Dispatch.thread_vcalls t.dispatch

let vfunc_pki t =
  let instrs = Repro_gpu.Stats.total_instructions (stats t) in
  if instrs = 0 then 0.
  else 1000. *. float_of_int (warp_vcalls t) /. float_of_int instrs

(* SplitMix-style mixing keeps the checksum sensitive to field order and
   values while staying allocation-free. *)
let mix h v =
  let h = h lxor (v + 0x9e3779b9 + (h lsl 6) + (h lsr 2)) in
  h land max_int

let checksum t =
  Vec.fold_left
    (fun acc (ptr, typ) ->
      let acc = mix acc (Registry.type_id typ) in
      let rec fold acc field =
        if field >= Registry.field_words typ then acc
        else
          fold (mix acc (Object_model.field_load_host t.om t.heap ~ptr ~field)) (field + 1)
      in
      fold acc 0)
    0 t.allocations
