(** Sparse backing store for the simulated address space.

    Memory is materialized lazily in 4 KB pages of 64-bit words. Untouched
    pages cost nothing, so workloads can place objects anywhere in the
    48-bit space (which SharedOA's region scheme relies on). Loads of
    never-written words return 0, like zero-fill-on-demand pages.

    Addresses handed to this module must be canonical (tag bits stripped);
    the MMU model in the [gpu] library is responsible for stripping. *)

type t

val create : ?expect_bytes:int -> unit -> t
(** [create ?expect_bytes ()] makes an empty store. [expect_bytes] is a
    capacity hint (the anticipated materialized footprint): the page
    table's bucket array is pre-sized so a paper-scale run does not pay
    rehash storms while faulting in hundreds of thousands of pages.
    Purely an allocation hint — contents and results are unaffected. *)

val page_bytes : int
(** Page size in bytes (4096). *)

val load : t -> int -> int
(** [load t addr] reads the 64-bit word at word-aligned [addr]. Raises
    [Invalid_argument] on misaligned or tagged addresses. *)

val store : t -> int -> int -> unit
(** [store t addr v] writes word [v] at word-aligned [addr]. Word-width
    values must be non-negative (pointers, ids, indices); narrower signed
    data belongs in byte-width fields. Raises [Invalid_argument]
    otherwise. *)

val load_byte_width : t -> int -> width:int -> int
(** [load_byte_width t addr ~width] reads a naturally-aligned [width]-byte
    field (1, 2, 4 or 8) zero-extended. Used by compact object layouts. *)

val store_byte_width : t -> int -> width:int -> int -> unit
(** Write counterpart of {!load_byte_width}; values are truncated to
    [width] bytes. *)

val load_batch : t -> int array -> off:int -> n:int -> width:int -> int array -> unit
(** [load_batch t addrs ~off ~n ~width out] fills [out.(0..n-1)] with
    {!load_byte_width} of [addrs.(off..off+n-1)] in one call — the warp
    instruction granularity the interned engine's fused emission uses,
    avoiding a cross-module call per lane. Element semantics (values and
    the exceptions raised) match {!load_byte_width} exactly. *)

val store_batch : t -> int array -> off:int -> n:int -> width:int -> int array -> unit
(** Write counterpart of {!load_batch}: stores [values.(0..n-1)] (the last
    argument) at [addrs.(off..off+n-1)] with {!store_byte_width}
    semantics. *)

val touched_pages : t -> int
(** Number of pages that have been materialized (footprint metric). *)

val footprint_bytes : t -> int
(** [touched_pages * page_bytes]. *)

val iter_words : t -> (int -> int -> unit) -> unit
(** [iter_words t f] calls [f addr value] for every materialized word with
    a non-zero value, in unspecified order. Used by checksum helpers. *)
