let page_bits = 12
let page_bytes = 1 lsl page_bits
let page_words = page_bytes / Vaddr.word_bytes

(* Words are kept as two 32-bit halves so that 4-byte fields round-trip
   exactly even in the high half of a word (OCaml ints are 63-bit, so a
   packed 64-bit representation would lose the high field's sign bit).
   Full 64-bit values are therefore restricted to non-negative ints —
   pointers, table entries and indices, which is everything the runtime
   stores at word width.

   This store is the innermost loop of the functional phase (one lookup
   per lane per memory instruction), so the addressing is shift/mask
   (addresses are canonical, hence non-negative), page lookups go through
   [Hashtbl.find] + [Not_found] rather than [find_opt] (whose [Some]
   would be a minor allocation per lane), and a one-entry page memo
   short-circuits the hashtable for the common case of consecutive lanes
   landing on the same 4 KB page. *)
type t = {
  pages : (int, int array) Hashtbl.t;
  mutable last_page : int;          (* memo key; [min_int] = empty *)
  mutable last_cells : int array;   (* memo value, valid iff key set *)
}

let half_mask = 0xFFFF_FFFF

let create ?expect_bytes () =
  (* Pre-sizing the bucket array avoids the rehash storms a
     paper-scale (tens of millions of objects) run would otherwise pay
     while materializing hundreds of thousands of pages. *)
  let buckets =
    match expect_bytes with
    | None -> 1024
    | Some b -> max 1024 ((max 0 b + page_bytes - 1) / page_bytes)
  in
  { pages = Hashtbl.create buckets; last_page = min_int; last_cells = [||] }

let check_addr addr label =
  if not (Vaddr.is_canonical addr) then
    invalid_arg ("Page_store." ^ label ^ ": tagged address reached the store");
  if addr land (Vaddr.word_bytes - 1) <> 0 then
    invalid_arg ("Page_store." ^ label ^ ": misaligned address")

let page_of addr = addr lsr page_bits

(* The memoized lookup: raises [Not_found] on an untouched page (the
   zero-fill case), which the callers turn into a load of 0. The memo is
   only ever set to a live table entry, so hits can skip the table. *)
let cells_of_page t key =
  if key = t.last_page then t.last_cells
  else begin
    let cells = Hashtbl.find t.pages key in
    t.last_page <- key;
    t.last_cells <- cells;
    cells
  end

let materialize t key =
  if key = t.last_page then t.last_cells
  else
    match Hashtbl.find t.pages key with
    | cells ->
      t.last_page <- key;
      t.last_cells <- cells;
      cells
    | exception Not_found ->
      let cells = Array.make (page_words * 2) 0 in
      Hashtbl.add t.pages key cells;
      t.last_page <- key;
      t.last_cells <- cells;
      cells

(* Index of the 32-bit half-cell containing byte [addr]. *)
let cell_index addr = (addr land (page_bytes - 1)) lsr 2

let load t addr =
  check_addr addr "load";
  match cells_of_page t (page_of addr) with
  | exception Not_found -> 0
  | cells ->
    let i = cell_index addr in
    (cells.(i + 1) lsl 32) lor cells.(i)

let store t addr v =
  check_addr addr "store";
  if v < 0 then invalid_arg "Page_store.store: negative 64-bit stores are unsupported";
  let cells = materialize t (page_of addr) in
  let i = cell_index addr in
  cells.(i) <- v land half_mask;
  cells.(i + 1) <- (v lsr 32) land half_mask

let check_width width label =
  match width with
  | 1 | 2 | 4 | 8 -> ()
  | _ -> invalid_arg ("Page_store." ^ label ^ ": width must be 1, 2, 4 or 8")

let check_field_alignment addr width label =
  if addr land (width - 1) <> 0 then
    invalid_arg ("Page_store." ^ label ^ ": misaligned field")

let load_byte_width t addr ~width =
  check_width width "load_byte_width";
  check_field_alignment addr width "load_byte_width";
  if width = 8 then load t addr
  else begin
    match cells_of_page t (page_of addr) with
    | exception Not_found -> 0
    | cells ->
      let half = cells.(cell_index addr) in
      if width = 4 then half
      else begin
        let shift = (addr land 3) * 8 in
        let mask = (1 lsl (width * 8)) - 1 in
        (half lsr shift) land mask
      end
  end

let store_byte_width t addr ~width v =
  check_width width "store_byte_width";
  check_field_alignment addr width "store_byte_width";
  if width = 8 then store t addr v
  else begin
    let cells = materialize t (page_of addr) in
    let i = cell_index addr in
    if width = 4 then cells.(i) <- v land half_mask
    else begin
      let shift = (addr land 3) * 8 in
      let mask = ((1 lsl (width * 8)) - 1) lsl shift in
      cells.(i) <- (cells.(i) land lnot mask lor ((v lsl shift) land mask)) land half_mask
    end
  end

(* Batched lane loops for the interned engine's fused emission paths: one
   call per warp instruction instead of one cross-module call per lane,
   with the page memo, alignment checks and width decode in a single
   loop. Semantics (including the exceptions raised and their messages)
   are exactly [load_byte_width]/[store_byte_width] per element; the
   checks are hand-inlined (one mask-and-compare per lane on the fast
   path) and the scratch/out accesses are unchecked — [addrs.(off ..
   off+n-1)] and [out/values.(0 .. n-1)] are in range by the caller's
   contract, and cell indices are in range by construction (masked with
   the page mask). *)
let va_hi_mask = Vaddr.va_mask

(* True iff any per-element word check would fail: tag bits present
   (non-canonical, including negative) or not naturally aligned. *)
let needs_slow_path addr width =
  (addr land lnot va_hi_mask <> 0) || (addr land (width - 1) <> 0)

let slow_checks addr width label =
  (* Off the fast path: re-raise with exactly the per-element checks. *)
  check_field_alignment addr width
    (if label then "load_byte_width" else "store_byte_width");
  check_addr addr (if label then "load" else "store")

let load_batch t addrs ~off ~n ~width out =
  check_width width "load_byte_width";
  if width = 8 then
    for k = 0 to n - 1 do
      let addr = Array.unsafe_get addrs (off + k) in
      if needs_slow_path addr 8 then slow_checks addr 8 true;
      let key = addr lsr page_bits in
      let v =
        if key = t.last_page then begin
          let cells = t.last_cells in
          let i = (addr land (page_bytes - 1)) lsr 2 in
          (Array.unsafe_get cells (i + 1) lsl 32) lor Array.unsafe_get cells i
        end
        else
          match cells_of_page t key with
          | exception Not_found -> 0
          | cells ->
            let i = cell_index addr in
            (cells.(i + 1) lsl 32) lor cells.(i)
      in
      Array.unsafe_set out k v
    done
  else
    for k = 0 to n - 1 do
      let addr = Array.unsafe_get addrs (off + k) in
      check_field_alignment addr width "load_byte_width";
      let key = addr lsr page_bits in
      let v =
        if key = t.last_page then begin
          let half =
            Array.unsafe_get t.last_cells ((addr land (page_bytes - 1)) lsr 2)
          in
          if width = 4 then half
          else begin
            let shift = (addr land 3) * 8 in
            let mask = (1 lsl (width * 8)) - 1 in
            (half lsr shift) land mask
          end
        end
        else
          match cells_of_page t key with
          | exception Not_found -> 0
          | cells ->
            let half = cells.(cell_index addr) in
            if width = 4 then half
            else begin
              let shift = (addr land 3) * 8 in
              let mask = (1 lsl (width * 8)) - 1 in
              (half lsr shift) land mask
            end
      in
      Array.unsafe_set out k v
    done

let store_batch t addrs ~off ~n ~width values =
  check_width width "store_byte_width";
  if width = 8 then
    for k = 0 to n - 1 do
      let addr = Array.unsafe_get addrs (off + k) in
      let v = Array.unsafe_get values k in
      if needs_slow_path addr 8 then slow_checks addr 8 false;
      if v < 0 then
        invalid_arg "Page_store.store: negative 64-bit stores are unsupported";
      let cells = materialize t (addr lsr page_bits) in
      let i = (addr land (page_bytes - 1)) lsr 2 in
      Array.unsafe_set cells i (v land half_mask);
      Array.unsafe_set cells (i + 1) ((v lsr 32) land half_mask)
    done
  else
    for k = 0 to n - 1 do
      let addr = Array.unsafe_get addrs (off + k) in
      check_field_alignment addr width "store_byte_width";
      let cells = materialize t (addr lsr page_bits) in
      let i = (addr land (page_bytes - 1)) lsr 2 in
      if width = 4 then
        Array.unsafe_set cells i (Array.unsafe_get values k land half_mask)
      else begin
        let shift = (addr land 3) * 8 in
        let mask = ((1 lsl (width * 8)) - 1) lsl shift in
        Array.unsafe_set cells i
          ((Array.unsafe_get cells i land lnot mask
            lor ((Array.unsafe_get values k lsl shift) land mask))
           land half_mask)
      end
    done

let touched_pages t = Hashtbl.length t.pages

let footprint_bytes t = touched_pages t * page_bytes

let iter_words t f =
  Hashtbl.iter
    (fun page cells ->
      let base = page * page_bytes in
      for w = 0 to page_words - 1 do
        let v = (cells.((2 * w) + 1) lsl 32) lor cells.(2 * w) in
        if v <> 0 then f (base + (w * Vaddr.word_bytes)) v
      done)
    t.pages
