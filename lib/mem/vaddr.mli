(** Virtual addresses of the simulated GPU address space.

    Addresses are plain OCaml [int]s. The usable virtual address space is
    48 bits (the paper's GPUs use 49), which leaves 15 tag bits — bits 48
    through 62 — exactly the number TypePointer exploits. OCaml ints are
    63-bit so the full tagged pointer still fits; the one-bit narrowing of
    the VA space is recorded as a substitution in DESIGN.md and changes no
    derived constant (15 tag bits, 32 KB of vTable space, 4 K function
    pointers). *)

val va_bits : int
(** Width of the untagged virtual address space (48). *)

val tag_bits : int
(** Number of tag bits above the VA (15). *)

val va_mask : int
(** Mask keeping only the VA bits: [(1 lsl va_bits) - 1]. *)

val max_tag : int
(** Largest representable tag value, [(1 lsl tag_bits) - 1]. *)

val word_bytes : int
(** Size of a machine word in the simulated memory (8). *)

val sector_bytes : int
(** Size of a memory-system sector, the unit of L1/L2/DRAM traffic (32),
    matching NVIDIA's sectored caches. *)

val sector_shift : int
(** [log2 sector_bytes]; sector ids of canonical addresses are
    [addr lsr sector_shift], letting hot paths avoid division. *)

val is_canonical : int -> bool
(** [is_canonical a] holds when [a] has no tag bits set, i.e. it is a plain
    untagged address the MMU accepts without TypePointer support. *)

val strip : int -> int
(** [strip a] clears the tag bits, recovering the canonical address. *)

val tag_of : int -> int
(** [tag_of a] extracts the 15-bit tag. *)

val with_tag : int -> tag:int -> int
(** [with_tag a ~tag] installs [tag] in the tag bits of [a]. Raises
    [Invalid_argument] if [tag] is out of range or [a] is not canonical. *)

val align_up : int -> alignment:int -> int
(** Round an address up to a power-of-two [alignment]. *)

val is_aligned : int -> alignment:int -> bool

val sector_of : int -> int
(** Index of the 32-byte sector containing the (canonical) address. *)

val word_index : int -> int
(** [word_index a] is [a / word_bytes] for a word-aligned canonical [a];
    raises [Invalid_argument] on misaligned input. *)

val pp : Format.formatter -> int -> unit
(** Hex-print an address, showing the tag separately when present. *)
