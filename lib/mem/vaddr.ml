let va_bits = 48
let tag_bits = 15
let va_mask = (1 lsl va_bits) - 1
let max_tag = (1 lsl tag_bits) - 1
let word_bytes = 8
let sector_bytes = 32
let sector_shift = 5 (* log2 sector_bytes; sector_bytes is a power of two *)

let is_canonical a = a land lnot va_mask = 0

let strip a = a land va_mask

let tag_of a = (a lsr va_bits) land max_tag

let with_tag a ~tag =
  if tag < 0 || tag > max_tag then invalid_arg "Vaddr.with_tag: tag out of range";
  if not (is_canonical a) then invalid_arg "Vaddr.with_tag: address already tagged";
  a lor (tag lsl va_bits)

let align_up a ~alignment =
  if alignment <= 0 || alignment land (alignment - 1) <> 0 then
    invalid_arg "Vaddr.align_up: alignment must be a positive power of two";
  (a + alignment - 1) land lnot (alignment - 1)

let is_aligned a ~alignment =
  if alignment <= 0 || alignment land (alignment - 1) <> 0 then
    invalid_arg "Vaddr.is_aligned: alignment must be a positive power of two";
  a land (alignment - 1) = 0

let sector_of a = strip a / sector_bytes

let word_index a =
  let a = strip a in
  if a land (word_bytes - 1) <> 0 then invalid_arg "Vaddr.word_index: misaligned address";
  a / word_bytes

let pp ppf a =
  let tag = tag_of a in
  if tag = 0 then Format.fprintf ppf "0x%x" a
  else Format.fprintf ppf "0x%x[tag=%d]" (strip a) tag
