(* The assembled translation model: one page table, per-SM L1 TLBs, one
   shared L2 TLB, and the latencies [Mem_path] charges per outcome.

   [lookup] is the replay-path entry point and returns a small integer
   code instead of a variant so the caller can branch and index a
   precomputed latency array without boxing anything:

     0                        L1 TLB hit (translation pipelined, free)
     1                        L2 TLB hit
     walk_base + levels       full walk of [levels] radix levels

   Unmapped sectors are charged a full [Page_table.max_levels] walk and
   never cached — the timing model stays total, and the sanitizer's
   page-table hook is what reports them as violations. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  l2_latency : float;
  walk_latency_per_level : float;
}

(* Reach at 4 KB: 32-entry L1 = 128 KB per SM, 512-entry shared L2 =
   2 MB; latencies in the rough proportion GPU TLB studies (Mosaic,
   GPUMMU) report against this config's 160-cycle L2 data latency. *)
let default_config =
  {
    l1_sets = 8;
    l1_ways = 4;
    l2_sets = 128;
    l2_ways = 4;
    l2_latency = 30.;
    walk_latency_per_level = 60.;
  }

let validate_config c =
  if c.l1_sets <= 0 || c.l1_sets land (c.l1_sets - 1) <> 0 then
    invalid_arg "Vm.create: l1_sets must be a positive power of two";
  if c.l2_sets <= 0 || c.l2_sets land (c.l2_sets - 1) <> 0 then
    invalid_arg "Vm.create: l2_sets must be a positive power of two";
  if c.l1_ways <= 0 || c.l2_ways <= 0 then
    invalid_arg "Vm.create: TLB ways must be positive";
  if c.l2_latency < 0. || c.walk_latency_per_level < 0. then
    invalid_arg "Vm.create: TLB latencies must be non-negative"

type t = {
  cfg : config;
  table : Page_table.t;
  l1s : Tlb.t array;
  l2 : Tlb.t;
}

let create ?(config = default_config) ~n_sms ~table () =
  validate_config config;
  if n_sms <= 0 then invalid_arg "Vm.create: n_sms must be positive";
  {
    cfg = config;
    table;
    l1s =
      Array.init n_sms (fun _ ->
          Tlb.create ~sets:config.l1_sets ~ways:config.l1_ways);
    l2 = Tlb.create ~sets:config.l2_sets ~ways:config.l2_ways;
  }

let hit_l1 = 0
let hit_l2 = 1
let walk_base = 2
let max_code = walk_base + Page_table.max_levels

let lookup t ~sm ~sector =
  let i = Page_table.find t.table sector in
  if i < 0 then walk_base + Page_table.max_levels
  else begin
    let key = Page_table.key t.table i sector in
    if Tlb.access (Array.unsafe_get t.l1s sm) ~key then hit_l1
    else if Tlb.access t.l2 ~key then hit_l2
    else walk_base + Page_table.levels_of t.table i
  end

let latency_of_code t code =
  if code <= hit_l1 then 0.
  else if code = hit_l2 then t.cfg.l2_latency
  else
    t.cfg.l2_latency
    +. (float_of_int (code - walk_base) *. t.cfg.walk_latency_per_level)

let flush_l1s t = Array.iter Tlb.flush t.l1s

let flush t =
  flush_l1s t;
  Tlb.flush t.l2

let table t = t.table
let config t = t.cfg
let n_sms t = Array.length t.l1s
