(** Span-compressed page table over the [Address_space] virtual layout.

    A span is a maximal contiguous byte interval backed by one page size
    (4 KB base pages or 2 MB large pages) with one owner. Page identity —
    the TLB tag — is span-relative, so promoted spans behave as if their
    backing frames were aligned to the span base (the Mosaic contract)
    without sharing a large frame across owners. Physical placement is a
    modelled bump allocation of frames per span. *)

type t

type page = {
  span : int;        (** Span index in the table. *)
  page_bytes : int;  (** 4096 or 2 MB. *)
  levels : int;      (** Radix-walk depth charged on a full TLB miss. *)
  owner : int;       (** Owning type_id for promoted spans, -1 otherwise. *)
  phys_addr : int;   (** Modelled physical address of the byte. *)
}

val small_page_bytes : int
val large_page_bytes : int

val small_levels : int
val large_levels : int

val max_levels : int
(** Walk depth charged for an unmapped address (= {!small_levels}). *)

val default_promote_min_bytes : int
(** Minimum merged-span size [Coalesce] promotes to large pages (64 KB). *)

val build :
  ?promote_min_bytes:int ->
  policy:Policy.t ->
  arenas:(int * int) list ->
  promoted:(int * int * int) list ->
  unit ->
  t
(** [build ~policy ~arenas ~promoted ()] maps every arena [(base, size)]
    reservation. Under [Coalesce], [promoted] — the allocator-reported
    [(base, limit, type_id)] contiguity spans, reservation-extent so they
    tile arenas exactly — is merged (adjacent same-type spans coalesce),
    filtered by [promote_min_bytes], and backed by large pages; the rest
    of each arena gets base pages. [Flat_4k]/[Flat_2m] ignore
    [promoted]. Bases must be sector-aligned (reservations are
    page-rounded, so they are). *)

val spans : t -> int
val pages : t -> int
val large_spans : t -> int

val find : t -> int -> int
(** Span index containing the given {e sector}, or -1 when unmapped.
    Allocation-free (one-entry cache + binary search). *)

val key : t -> int -> int -> int
(** [key t span sector]: the page identity used as TLB tag. Only valid
    when [find] returned [span] for [sector]. *)

val levels_of : t -> int -> int
(** Walk depth of the span's pages. *)

val span_info : t -> int -> int * int * int
(** [(base, limit, owner)] of a span, in bytes. *)

val translate : t -> addr:int -> page option
(** Full translation of a (possibly tagged) virtual address; [None] when
    no mapping covers it. For tests and the sanitizer — the replay path
    uses {!find}/{!key}. *)
