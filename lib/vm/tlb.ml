(* One set-associative LRU TLB level.

   Same shape as the data-cache model (flat tag/stamp arrays, shift/mask
   indexing, top-level scan loops so ocamlopt keeps everything in
   registers) but keyed on page identities rather than paired sectors:
   there is no fill granularity below an entry. Tag -1 marks an invalid
   way; page keys are non-negative, and an invalid way's zero stamp makes
   the LRU scan fill invalid ways first. *)

type t = {
  ways : int;
  mask : int; (* sets - 1 *)
  tags : int array;
  stamps : int array;
  mutable tick : int;
}

let create ~sets ~ways =
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Tlb.create: sets must be a positive power of two";
  if ways <= 0 then invalid_arg "Tlb.create: ways must be positive";
  {
    ways;
    mask = sets - 1;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    tick = 0;
  }

let entries t = (t.mask + 1) * t.ways

let rec scan_ways tags key base w ways =
  if w >= ways then -1
  else if Array.unsafe_get tags (base + w) = key then w
  else scan_ways tags key base (w + 1) ways

let rec lru_way stamps base w ways best best_stamp =
  if w >= ways then best
  else begin
    let s = Array.unsafe_get stamps (base + w) in
    if s < best_stamp then lru_way stamps base (w + 1) ways w s
    else lru_way stamps base (w + 1) ways best best_stamp
  end

let access t ~key =
  let base = (key land t.mask) * t.ways in
  t.tick <- t.tick + 1;
  let w = scan_ways t.tags key base 0 t.ways in
  if w >= 0 then begin
    Array.unsafe_set t.stamps (base + w) t.tick;
    true
  end
  else begin
    let v =
      lru_way t.stamps base 1 t.ways 0 (Array.unsafe_get t.stamps base)
    in
    Array.unsafe_set t.tags (base + v) key;
    Array.unsafe_set t.stamps (base + v) t.tick;
    false
  end

let probe t ~key =
  let base = (key land t.mask) * t.ways in
  scan_ways t.tags key base 0 t.ways >= 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0
