(** Page-size policies for the modelled address-translation subsystem.

    [Flat_4k] backs every mapping with 4 KB base pages, [Flat_2m] with
    2 MB large pages, and [Coalesce] is the Mosaic-style middle ground:
    contiguously-allocated same-type spans (reported by the allocator's
    contiguity capability) are promoted to large pages while everything
    else stays at 4 KB. Translation off — the default — is represented
    as [t option = None] everywhere, spelled "none" on the CLI/wire. *)

type t =
  | Flat_4k
  | Flat_2m
  | Coalesce

val all : t list

val name : t -> string
(** Stable CLI/wire name: "flat-4k", "flat-2m", "coalesce". *)

val all_names : string list

val cli_names : string list
(** ["none"] followed by {!all_names} — everything [parse] accepts. *)

val of_string : string -> (t, string) result
(** Case-insensitive; accepts the short aliases "4k", "2m" and "mosaic".
    The error message lists {!cli_names}. *)

val parse : string -> (t option, string) result
(** Like {!of_string} but maps "none"/"off" to [Ok None]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
