(* Span-compressed per-process page table.

   The virtual layout this maps is [Address_space]'s: a bump allocator
   handing out page-rounded reservations, so the mapped address space is
   a short sorted list of disjoint intervals. Rather than materialize
   radix-tree nodes, the table stores one *span* per maximal interval
   that shares a page size and owner; a span at index [i] covering
   sectors [sbase.(i), slimit.(i)) is backed by pages of
   [1 lsl shift.(i)] sectors counted from the span base. Page identity
   (the TLB tag) is [(i lsl span_key_shift) lor page_offset] — unique by
   construction, and deliberately span-relative: a Mosaic-promoted span
   behaves as if the allocator had aligned its backing frames, without
   this model having to share a large frame across two owners.

   Physical placement is modelled as a bump allocation of frames per
   span, which is all the sanitizer's ownership validation needs: a
   translation either lands inside its span's frame range or the table
   was built wrong. *)

module Vaddr = Repro_mem.Vaddr

let small_page_bytes = 4096
let large_page_bytes = 1 lsl 21 (* 2 MB *)

(* log2 (page_bytes / sector_bytes). *)
let small_shift = 7
let large_shift = 16

(* Radix-walk depth on a TLB miss: the classic 4-level walk for 4 KB
   pages; 2 MB pages are leaves one level up. *)
let small_levels = 4
let large_levels = 3
let max_levels = 4

let default_promote_min_bytes = 65536

(* Page offsets within a span stay below 2^span_key_shift (a span would
   need 2^40 sectors — 32 TB — to overflow), so span index and offset
   pack into one positive OCaml int. *)
let span_key_shift = 40

type t = {
  sbase : int array;  (* first sector of each span, sorted ascending *)
  slimit : int array; (* one past the last sector *)
  shift : int array;  (* log2 sectors-per-page: small_shift or large_shift *)
  levels : int array; (* walk depth charged on a full miss *)
  owner : int array;  (* promoted spans: owning type_id; -1 otherwise *)
  phys : int array;   (* modelled physical base address (bytes) *)
  mutable last : int; (* one-entry lookup cache *)
  total_pages : int;
  large_spans : int;
}

type page = {
  span : int;
  page_bytes : int;
  levels : int;
  owner : int;
  phys_addr : int;
}

(* Sorted disjoint byte intervals, adjacent same-owner ones merged. *)
let merge_adjacent intervals =
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) intervals
  in
  let rec go acc = function
    | [] -> List.rev acc
    | (base, limit, owner) :: rest -> (
      match acc with
      | (pbase, plimit, powner) :: tl
        when powner = owner && plimit = base ->
        go ((pbase, limit, powner) :: tl) rest
      | _ -> go ((base, limit, owner) :: acc) rest)
  in
  go [] sorted

(* [interval] minus the (sorted, disjoint) [cuts]; clamps defensively so
   a cut straddling the interval edge cannot produce a negative gap. *)
let subtract (base, limit) cuts =
  let rec go cursor acc = function
    | [] -> if cursor < limit then (cursor, limit) :: acc else acc
    | (cb, cl, _) :: rest ->
      if cl <= cursor then go cursor acc rest
      else if cb >= limit then go limit acc []
      else
        let acc = if cb > cursor then (cursor, cb) :: acc else acc in
        go (max cursor (min cl limit)) acc rest
  in
  List.rev (go base [] cuts)

let build ?(promote_min_bytes = default_promote_min_bytes) ~policy ~arenas
    ~promoted () =
  (* Arena reservations, merged into maximal contiguous intervals. *)
  let arena_intervals =
    merge_adjacent (List.map (fun (base, size) -> (base, base + size, -1)) arenas)
    |> List.map (fun (b, l, _) -> (b, l))
  in
  let mappings =
    match (policy : Policy.t) with
    | Policy.Flat_4k ->
      List.map (fun (b, l) -> (b, l, -1, false)) arena_intervals
    | Policy.Flat_2m ->
      List.map (fun (b, l) -> (b, l, -1, true)) arena_intervals
    | Policy.Coalesce ->
      (* Merge the allocator-reported contiguity spans, keep the ones
         worth a large page, and back the rest of every arena with base
         pages. The spans are reservation extents, so their boundaries
         tile the arena intervals exactly; [subtract] only clamps. *)
      let spans =
        merge_adjacent promoted
        |> List.filter (fun (b, l, _) -> l - b >= promote_min_bytes)
      in
      List.concat_map
        (fun (b, l) ->
          let inside =
            List.filter (fun (sb, sl, _) -> sl > b && sb < l) spans
          in
          List.map (fun (sb, sl, owner) -> (max b sb, min l sl, owner, true))
            inside
          @ List.map (fun (gb, gl) -> (gb, gl, -1, false))
              (subtract (b, l) inside))
        arena_intervals
  in
  let mappings =
    List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) mappings
  in
  let n = List.length mappings in
  let sbase = Array.make n 0
  and slimit = Array.make n 0
  and shift = Array.make n 0
  and levels = Array.make n 0
  and owner = Array.make n 0
  and phys = Array.make n 0 in
  let cur_phys = ref 0 and total_pages = ref 0 and large_spans = ref 0 in
  List.iteri
    (fun i (base, limit, own, large) ->
      if base land (Vaddr.sector_bytes - 1) <> 0 then
        invalid_arg "Page_table.build: mapping base not sector-aligned";
      sbase.(i) <- base lsr Vaddr.sector_shift;
      slimit.(i) <- (limit + Vaddr.sector_bytes - 1) lsr Vaddr.sector_shift;
      let sh = if large then large_shift else small_shift in
      shift.(i) <- sh;
      levels.(i) <- (if large then large_levels else small_levels);
      owner.(i) <- own;
      let page_bytes = if large then large_page_bytes else small_page_bytes in
      let bytes = (slimit.(i) - sbase.(i)) lsl Vaddr.sector_shift in
      let pages = (bytes + page_bytes - 1) / page_bytes in
      phys.(i) <- !cur_phys;
      cur_phys := !cur_phys + (pages * page_bytes);
      total_pages := !total_pages + pages;
      if large then incr large_spans)
    mappings;
  {
    sbase;
    slimit;
    shift;
    levels;
    owner;
    phys;
    last = 0;
    total_pages = !total_pages;
    large_spans = !large_spans;
  }

let spans t = Array.length t.sbase
let pages t = t.total_pages
let large_spans t = t.large_spans

(* Span containing [sector], or -1. Replay-hot: the one-entry cache
   catches the streaming case, the binary search everything else;
   neither allocates. *)
let find t sector =
  let n = Array.length t.sbase in
  let last = t.last in
  if
    last < n
    && sector >= Array.unsafe_get t.sbase last
    && sector < Array.unsafe_get t.slimit last
  then last
  else begin
    let rec go lo hi =
      if lo >= hi then -1
      else begin
        let mid = (lo + hi) / 2 in
        if sector < Array.unsafe_get t.sbase mid then go lo mid
        else if sector >= Array.unsafe_get t.slimit mid then go (mid + 1) hi
        else mid
      end
    in
    let i = go 0 n in
    if i >= 0 then t.last <- i;
    i
  end

let key t i sector =
  (i lsl span_key_shift)
  lor ((sector - Array.unsafe_get t.sbase i) lsr Array.unsafe_get t.shift i)

let levels_of (t : t) i = Array.unsafe_get t.levels i

let span_info (t : t) i =
  if i < 0 || i >= Array.length t.sbase then
    invalid_arg "Page_table.span_info: span index out of range";
  ( t.sbase.(i) lsl Vaddr.sector_shift,
    t.slimit.(i) lsl Vaddr.sector_shift,
    t.owner.(i) )

let translate (t : t) ~addr =
  let addr = Vaddr.strip addr in
  let i = find t (addr lsr Vaddr.sector_shift) in
  if i < 0 then None
  else
    Some
      {
        span = i;
        page_bytes = 1 lsl (t.shift.(i) + Vaddr.sector_shift);
        levels = t.levels.(i);
        owner = t.owner.(i);
        phys_addr = t.phys.(i) + (addr - (t.sbase.(i) lsl Vaddr.sector_shift));
      }
