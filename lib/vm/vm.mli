(** The assembled translation model: one {!Page_table}, per-SM L1 TLBs,
    a shared L2 TLB, and the latency schedule the memory path charges.

    The replay path calls {!lookup} once per coalesced sector and maps
    the returned code to a latency through an array it precomputes from
    {!latency_of_code} — no floats or variants cross this boundary. *)

type config = {
  l1_sets : int;
  l1_ways : int;
  l2_sets : int;
  l2_ways : int;
  l2_latency : float;            (** Charged on an L2 TLB hit. *)
  walk_latency_per_level : float;(** Charged per radix level on a walk,
                                     on top of [l2_latency]. *)
}

val default_config : config
(** 32-entry L1 TLB per SM (8×4), 512-entry shared L2 (128×4),
    30-cycle L2 TLB hit, 60 cycles per walked level. *)

type t

val create : ?config:config -> n_sms:int -> table:Page_table.t -> unit -> t

val hit_l1 : int
(** Lookup code 0: L1 TLB hit (free — translation is pipelined). *)

val hit_l2 : int
(** Lookup code 1: L1 miss, L2 TLB hit. *)

val walk_base : int
(** Codes [walk_base + levels] are full walks of [levels] radix levels;
    unmapped sectors walk {!Page_table.max_levels} levels and are never
    cached. *)

val max_code : int

val lookup : t -> sm:int -> sector:int -> int
(** Translate one sector on SM [sm], updating TLB state. Returns a code
    in [0, max_code]. Allocation-free. *)

val latency_of_code : t -> int -> float
(** Cycles charged for a lookup outcome. *)

val flush_l1s : t -> unit
(** Kernel boundary: per-SM L1 TLBs flush with the L1 data caches; the
    shared L2 TLB persists across launches. *)

val flush : t -> unit
(** Full flush (device reset or page-table rebuild). *)

val table : t -> Page_table.t
val config : t -> config
val n_sms : t -> int
