type t =
  | Flat_4k
  | Flat_2m
  | Coalesce

let all = [ Flat_4k; Flat_2m; Coalesce ]

let name = function
  | Flat_4k -> "flat-4k"
  | Flat_2m -> "flat-2m"
  | Coalesce -> "coalesce"

let all_names = List.map name all

(* "none" is a policy *choice* (translation off) but not a policy value;
   the CLI and the wire spell it, so parse/error messages include it. *)
let cli_names = "none" :: all_names

let of_string s =
  match String.lowercase_ascii s with
  | "flat-4k" | "4k" -> Ok Flat_4k
  | "flat-2m" | "2m" -> Ok Flat_2m
  | "coalesce" | "mosaic" -> Ok Coalesce
  | _ ->
    Error
      (Printf.sprintf "unknown page policy %S; valid policies: %s" s
         (String.concat ", " cli_names))

let parse s =
  match String.lowercase_ascii s with
  | "none" | "off" -> Ok None
  | _ -> Result.map Option.some (of_string s)

let equal (a : t) (b : t) = a = b

let pp ppf t = Format.pp_print_string ppf (name t)
