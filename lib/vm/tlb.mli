(** One set-associative LRU TLB level, keyed on page identities. *)

type t

val create : sets:int -> ways:int -> t
(** [sets] must be a positive power of two, [ways] positive. *)

val entries : t -> int

val access : t -> key:int -> bool
(** Touch [key]: [true] on hit (LRU-refreshes the entry), [false] on
    miss (fills, evicting the set's LRU way). [key] must be
    non-negative. Allocation-free. *)

val probe : t -> key:int -> bool
(** Hit test without filling or touching LRU state. *)

val flush : t -> unit
