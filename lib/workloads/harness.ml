module R = Repro_core
module Stats = Repro_gpu.Stats

type run = {
  workload : string;
  technique : R.Technique.t;
  alloc : R.Alloc_family.t;
  cycles : float;
  stats : Stats.t;
  kernel_stats : Stats.t list;
  window : int option;
  kernel_windows : Stats.t array list;
  trace : Repro_gpu.Telemetry.dump option;
  checksum : int;
  result : int;
  n_objects : int;
  n_types : int;
  n_vfuncs : int;
  vfunc_pki : float;
  warp_vcalls : int;
  alloc_stats : R.Allocator.stats;
}

let snapshot = Stats.copy

let run (w : Workload.t) (p : Workload.params) =
  let inst = w.Workload.build p in
  let rt = inst.Workload.rt in
  R.Runtime.reset_stats rt;
  for i = 0 to inst.Workload.iterations - 1 do
    inst.Workload.run_iteration i
  done;
  {
    workload = Registry.qualified_name w;
    technique = p.Workload.technique;
    alloc = R.Runtime.alloc_family rt;
    cycles = R.Runtime.cycles rt;
    stats = snapshot (R.Runtime.stats rt);
    kernel_stats = List.map snapshot (R.Runtime.kernel_timeline rt);
    window = R.Runtime.sample_window rt;
    kernel_windows =
      List.map (Array.map snapshot) (R.Runtime.window_timeline rt);
    trace = R.Runtime.telemetry_dump rt;
    checksum = R.Runtime.checksum rt;
    result = inst.Workload.result ();
    n_objects = R.Runtime.n_objects rt;
    n_types = R.Registry.type_count (R.Runtime.registry rt);
    n_vfuncs = R.Registry.total_vfunc_slots (R.Runtime.registry rt);
    vfunc_pki = R.Runtime.vfunc_pki rt;
    warp_vcalls = R.Runtime.warp_vcalls rt;
    alloc_stats = (R.Runtime.allocator rt).R.Allocator.stats ();
  }

let validate_equal runs =
  match runs with
  | [] -> ()
  | first :: rest ->
    List.iter
      (fun r ->
        if r.checksum <> first.checksum || r.result <> first.result then
          failwith
            (Printf.sprintf
               "Harness: functional mismatch on %s: %s=(%d,%d) vs %s=(%d,%d)"
               r.workload
               (R.Technique.name first.technique)
               first.checksum first.result
               (R.Technique.name r.technique)
               r.checksum r.result))
      rest

let run_techniques w p techniques =
  let runs =
    List.map
      (fun technique -> (technique, run w { p with Workload.technique }))
      techniques
  in
  validate_equal (List.map snd runs);
  runs

let find runs ~technique =
  Option.map snd
    (List.find_opt (fun (t, _) -> R.Technique.equal t technique) runs)

let speedup_vs ~baseline r = baseline.cycles /. r.cycles

let normalized_cycles ~baseline r = r.cycles /. baseline.cycles
