module R = Repro_core
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label
module Rng = Repro_util.Rng

type rule = {
  rule_name : string;
  survive : int -> bool;
  born : int -> bool;
  n_states : int; (* 2 for GOL; >2 adds decaying "dying" states *)
}

let gol_rule =
  { rule_name = "GOL"; survive = (fun n -> n = 2 || n = 3); born = (fun n -> n = 3); n_states = 2 }

let generation_rule =
  {
    rule_name = "GEN";
    survive = (fun n -> n >= 3 && n <= 5);
    born = (fun n -> n = 2);
    n_states = 4;
  }

(* Cell fields *)
let cell_state = 0
let cell_next = 1
let cell_fields = 2

(* Agent fields *)
let agent_cell = 0
let agent_fields = 1

let build rule ~default_side (p : Workload.params) =
  let rt = Common.create_runtime p in
  (* Three objects per position; scale the area, keep the torus square. *)
  let side =
    max 16 (int_of_float (Float.round (float_of_int default_side *. sqrt p.Workload.scale)))
  in
  let n_pos = side * side in
  let cells = ref None in
  let cell_table () = Option.get !cells in

  let neighbor_offsets = [| (-1, -1); (0, -1); (1, -1); (-1, 0); (1, 0); (-1, 1); (0, 1); (1, 1) |] in

  (* Count live (state = 1) neighbours of each lane's cell index; eight
     pointer-table loads plus eight state loads, the workload's dominant
     memory pattern. *)
  let count_neighbors env sub idxs_cells =
    let n = Array.length idxs_cells in
    let counts = Array.make n 0 in
    (* Lane coordinates are offset-invariant: decompose once, not once
       per neighbour offset. *)
    let xs = Array.make n 0 and ys = Array.make n 0 in
    for i = 0 to n - 1 do
      xs.(i) <- idxs_cells.(i) mod side;
      ys.(i) <- idxs_cells.(i) / side
    done;
    Array.iter
      (fun (dx, dy) ->
        let picks =
          Array.init n (fun i ->
              let x = (xs.(i) + dx + side) mod side
              and y = (ys.(i) + dy + side) mod side in
              (y * side) + x)
        in
        let ptrs = R.Garray.load (cell_table ()) sub ~idxs:picks in
        let states = R.Env.field_load (R.Env.restrict env sub) ~objs:ptrs ~field:cell_state in
        Warp_ctx.compute sub ~label:Label.Body;
        for i = 0 to n - 1 do
          if states.(i) = 1 then counts.(i) <- counts.(i) + 1
        done)
      neighbor_offsets;
    counts
  in

  let alive_update (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let my_cell = R.Env.field_load env ~objs ~field:agent_cell in
    let cell_ptrs = R.Garray.load (cell_table ()) ctx ~idxs:my_cell in
    let state = R.Env.field_load env ~objs:cell_ptrs ~field:cell_state in
    let pred = Array.map (fun s -> s = 1) state in
    Warp_ctx.if_ ctx ~label:Label.Body ~pred
      (fun sub idxs ->
        let env' = R.Env.restrict env sub in
        let my_cell' = Warp_ctx.gather idxs my_cell in
        let ptrs' = Warp_ctx.gather idxs cell_ptrs in
        let counts = count_neighbors env sub my_cell' in
        R.Env.compute env';
        let next =
          Array.map (fun c -> if rule.survive c then 1 else if rule.n_states > 2 then 2 else 0) counts
        in
        R.Env.field_store env' ~objs:ptrs' ~field:cell_next next)
      None
  in

  let candidate_update (env : R.Env.t) objs =
    let ctx = env.R.Env.ctx in
    let my_cell = R.Env.field_load env ~objs ~field:agent_cell in
    let cell_ptrs = R.Garray.load (cell_table ()) ctx ~idxs:my_cell in
    let state = R.Env.field_load env ~objs:cell_ptrs ~field:cell_state in
    let pred = Array.map (fun s -> s <> 1) state in
    Warp_ctx.if_ ctx ~label:Label.Body ~pred
      (fun sub idxs ->
        let env' = R.Env.restrict env sub in
        let my_cell' = Warp_ctx.gather idxs my_cell in
        let ptrs' = Warp_ctx.gather idxs cell_ptrs in
        let state' = Warp_ctx.gather idxs state in
        let counts = count_neighbors env sub my_cell' in
        R.Env.compute env' ~n:2;
        let next =
          Array.mapi
            (fun i c ->
              if state'.(i) = 0 then (if rule.born c then 1 else 0)
              else
                (* Decaying state: advance until it wraps to dead. *)
                (state'.(i) + 1) mod rule.n_states)
            counts
        in
        R.Env.field_store env' ~objs:ptrs' ~field:cell_next next)
      None
  in

  let cell_commit (env : R.Env.t) objs =
    let next = R.Env.field_load env ~objs ~field:cell_next in
    R.Env.field_store env ~objs ~field:cell_state next
  in

  let i_alive = R.Runtime.register_impl rt ~name:"Alive.update" alive_update in
  let i_candidate = R.Runtime.register_impl rt ~name:"Candidate.update" candidate_update in
  let i_commit = R.Runtime.register_impl rt ~name:"Cell.commit" cell_commit in
  let cell_t =
    R.Runtime.define_type rt ~name:"Cell" ~field_words:cell_fields ~slots:[| i_commit |] ()
  in
  let agent_t =
    R.Runtime.define_type rt ~name:"Agent" ~field_words:agent_fields ~slots:[| i_alive |] ()
  in
  let alive_t =
    R.Runtime.define_type rt ~name:"Alive" ~field_words:agent_fields ~parent:agent_t
      ~slots:[| i_alive |] ()
  in
  let candidate_t =
    R.Runtime.define_type rt ~name:"Candidate" ~field_words:agent_fields ~parent:agent_t
      ~slots:[| i_candidate |] ()
  in

  (* Allocation: per position, cell then its two agents — the natural
     interleaving a loader produces. *)
  let om = R.Runtime.object_model rt in
  let heap = R.Runtime.heap rt in
  let cell_ptr = Array.make n_pos 0 in
  let alive_ptr = Array.make n_pos 0 in
  let candidate_ptr = Array.make n_pos 0 in
  for i = 0 to n_pos - 1 do
    cell_ptr.(i) <- R.Runtime.new_obj rt cell_t;
    alive_ptr.(i) <- R.Runtime.new_obj rt alive_t;
    candidate_ptr.(i) <- R.Runtime.new_obj rt candidate_t
  done;
  let rng = Rng.create ~seed:p.Workload.seed in
  Array.iter
    (fun ptr ->
      let state = if Rng.int rng 100 < 35 then 1 else 0 in
      R.Object_model.field_store_host om heap ~ptr ~field:cell_state state;
      R.Object_model.field_store_host om heap ~ptr ~field:cell_next state)
    cell_ptr;
  Array.iteri
    (fun i ptr -> R.Object_model.field_store_host om heap ~ptr ~field:agent_cell i)
    alive_ptr;
  Array.iteri
    (fun i ptr -> R.Object_model.field_store_host om heap ~ptr ~field:agent_cell i)
    candidate_ptr;
  cells := Some (Common.garray_of_ptrs rt ~name:"cells" cell_ptr);
  let alive_table = Common.garray_of_ptrs rt ~name:"alive" alive_ptr in
  let candidate_table = Common.garray_of_ptrs rt ~name:"candidates" candidate_ptr in
  let cells_table = cell_table () in

  let run_iteration _ =
    Common.vcall_all rt ~ptrs:alive_table ~n:n_pos ~slot:0;
    Common.vcall_all rt ~ptrs:candidate_table ~n:n_pos ~slot:0;
    Common.vcall_all rt ~ptrs:cells_table ~n:n_pos ~slot:0
  in
  let result () =
    Array.fold_left
      (fun acc ptr ->
        let s = R.Object_model.field_load_host om heap ~ptr ~field:cell_state in
        (acc * 31) + s)
      0 cell_ptr
    land max_int
  in
  ignore agent_t;
  ignore candidate_t;
  {
    Workload.rt;
    iterations = Option.value p.Workload.iterations ~default:6;
    run_iteration;
    result;
  }

let game_of_life =
  {
    Workload.name = "GOL";
    suite = "Dynasoar";
    description = "Conway's Game of Life with Cell/Agent class hierarchy";
    paper_objects = 5_645_916;
    paper_types = 4;
    build = build gol_rule ~default_side:242;
  }

let generation =
  {
    Workload.name = "GEN";
    suite = "Dynasoar";
    description = "Generation: Game of Life with decaying intermediate states";
    paper_objects = 1_048_576;
    paper_types = 4;
    build = build generation_rule ~default_side:104;
  }
