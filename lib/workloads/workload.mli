(** The workload interface: one record per application of Table 2.

    A workload builds a {!Repro_core.Runtime.t} under any technique
    (setup — allocation, graph/grid construction — is untimed, matching
    the paper, which excludes initialization), then runs a fixed number
    of compute iterations, each a sequence of kernel launches. The same
    code runs under every technique, so functional results must agree
    bit-for-bit; {!Harness} checks that. *)

type params = {
  technique : Repro_core.Technique.t;
  alloc : Repro_core.Alloc_family.t option;
      (** Allocator-family override; [None] = the technique's paper
          default ({!Repro_core.Alloc_family.default_for}). *)
  scale : float;
      (** Object-count multiplier over the workload's reduced default
          (1.0 ≈ 1/32 of the paper's sizes; see EXPERIMENTS.md). *)
  config : Repro_gpu.Config.t option;  (** GPU override. *)
  chunk_objs : int option;             (** SharedOA initial region size. *)
  iterations : int option;             (** Override compute iterations. *)
  seed : int;
  san : Repro_san.Checker.t option;
      (** Sanitizer instance threaded through the runtime ([repro check]
          and the mutation self-tests; [None] for measurement runs). *)
  telemetry : Repro_gpu.Telemetry.config option;
      (** Cycle-resolved telemetry (windowed sampling and/or event
          tracing); [None] keeps the replay loop on its untouched
          zero-allocation path. *)
  pages : Repro_vm.Policy.t option;
      (** Address-translation page-size policy; [None] (the default)
          models no translation — the timing is exactly the
          untranslated model's. *)
  intern : bool;
      (** Interned emission engine ([Repro_gpu.Engine.t.intern]; default
          [true]). Results are byte-identical either way; [false] is the
          legacy engine kept as the measurable baseline. In job keys so
          an A/B pair caches separately. *)
  intra : bool;
      (** Intra-launch sharded parallel timing (default [false]). A
          different — deterministic, jobs-independent — timing model, so
          it is part of the job identity. *)
  prealloc_mb : int option;
      (** Expected heap footprint (MiB): pre-sizes the page store.
          Purely a capacity hint; never affects results and is excluded
          from job keys. *)
}

val default_params : Repro_core.Technique.t -> params

val default_scale : float
(** The repo-wide default sweep scale (0.25), shared by [repro sweep],
    the wire protocol's absent-[scale] default and the CLI help — one
    documented constant so every bare surface runs the same job. *)

type instance = {
  rt : Repro_core.Runtime.t;
  iterations : int;
  run_iteration : int -> unit;  (** Launch iteration [i]'s kernels. *)
  result : unit -> int;
      (** Workload-level functional result (e.g. total population, sum of
          ranks) — checked for equality across techniques on top of the
          heap checksum. *)
}

type t = {
  name : string;          (** Paper's short name ("TRAF", "GOL", ...). *)
  suite : string;         (** "Dynasoar", "GraphChi-vE", "GraphChi-vEN", "RAY". *)
  description : string;
  paper_objects : int;    (** Table 2's object count, for reference. *)
  paper_types : int;
  build : params -> instance;
}

val scaled : params -> int -> int
(** [scaled params n] applies the scale factor to a default count,
    keeping at least one. *)
