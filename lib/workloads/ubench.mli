(** The Sec. 8.3 scalability microbenchmarks.

    A configurable population of objects spread over [n_types] types, one
    thread per object, every thread making one virtual call per iteration
    whose body is a simple addition (high vFuncPKI by construction). The
    BRANCH variant arbitrates the "type" from register values — no
    objects, no memory traffic in the dispatch path — and is the idealized
    baseline both Fig. 12 plots normalize against. *)

type variant =
  | Branch    (** Register-arbitrated control flow, no objects. *)
  | Technique of Repro_core.Technique.t
  | Column of Repro_core.Technique.t * Repro_core.Alloc_family.t
      (** A technique under an overridden allocator family (e.g. CUDA
          dispatch over DynaSOAr SoA blocks). *)

val run :
  ?iterations:int ->
  ?config:Repro_gpu.Config.t ->
  n_objects:int ->
  n_types:int ->
  variant ->
  float * int
(** [run ~n_objects ~n_types variant] returns (cycles, functional
    result). The result is identical across variants for equal
    populations. *)

val workload : Workload.t
(** The microbenchmark packaged as a Table 2-style workload (used by
    tests; not part of the paper's 11 apps). *)
