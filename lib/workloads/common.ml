module R = Repro_core
module Warp_ctx = Repro_gpu.Warp_ctx

(* How many domains shard an intra-launch replay. A runtime knob, not a
   job parameter: sharded results are identical at any job count, so it
   never belongs in keys or on the wire. 0 = one domain per core. *)
let intra_jobs () =
  match Sys.getenv_opt "REPRO_INTRA_JOBS" with
  | Some s -> (try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

let create_runtime (p : Workload.params) =
  let engine =
    { Repro_gpu.Engine.intern = p.Workload.intern; intra = p.Workload.intra;
      intra_jobs = intra_jobs () }
  in
  R.Runtime.create ?config:p.Workload.config ~engine
    ?prealloc_mb:p.Workload.prealloc_mb ?chunk_objs:p.Workload.chunk_objs
    ?san:p.Workload.san ?telemetry:p.Workload.telemetry
    ?alloc:p.Workload.alloc ?pages:p.Workload.pages
    ~technique:p.Workload.technique ()

let garray rt ~name ~len =
  R.Garray.alloc ~space:(R.Runtime.address_space rt) ~name ~len

let fill rt arr f =
  let heap = R.Runtime.heap rt in
  for i = 0 to R.Garray.len arr - 1 do
    R.Garray.set arr heap i (f i)
  done

let garray_of_ptrs rt ~name ptrs =
  let arr = garray rt ~name ~len:(Array.length ptrs) in
  fill rt arr (fun i -> ptrs.(i));
  arr

let to_array rt arr =
  let heap = R.Runtime.heap rt in
  Array.init (R.Garray.len arr) (fun i -> R.Garray.get arr heap i)

let launch rt ~n kernel = R.Runtime.launch rt ~n_threads:n kernel

let lane_tids (env : R.Env.t) = Warp_ctx.tids env.R.Env.ctx

let map_lanes tids f = Array.map f tids

let const_lanes (env : R.Env.t) v =
  Array.make (Warp_ctx.n_active env.R.Env.ctx) v

let vcall_all ?(converged = false) rt ~ptrs ~n ~slot =
  launch rt ~n (fun env ->
      let tids = lane_tids env in
      let objs = R.Garray.load ptrs env.R.Env.ctx ~idxs:tids in
      if converged then env.R.Env.vcall_converged env ~objs ~slot
      else env.R.Env.vcall env ~objs ~slot)
