type params = {
  technique : Repro_core.Technique.t;
  alloc : Repro_core.Alloc_family.t option;
  scale : float;
  config : Repro_gpu.Config.t option;
  chunk_objs : int option;
  iterations : int option;
  seed : int;
  san : Repro_san.Checker.t option;
  telemetry : Repro_gpu.Telemetry.config option;
  pages : Repro_vm.Policy.t option;
  intern : bool;
  intra : bool;
  prealloc_mb : int option;
}

(* The repo-wide default sweep scale. One constant shared by every
   job-construction surface — `repro sweep`, `repro submit`/the wire
   decoder's absent-field default, and the CLI's -s help — so a bare
   sweep and a bare submit are the same run. 0.25 of the reduced config
   keeps the default CI-cheap; pass --scale 1.0 for paper-scale runs
   (routine since the interned engine). *)
let default_scale = 0.25

let default_params technique =
  { technique; alloc = None; scale = 1.0; config = None; chunk_objs = None;
    iterations = None; seed = 42; san = None; telemetry = None; pages = None;
    intern = true; intra = false; prealloc_mb = None }

type instance = {
  rt : Repro_core.Runtime.t;
  iterations : int;
  run_iteration : int -> unit;
  result : unit -> int;
}

type t = {
  name : string;
  suite : string;
  description : string;
  paper_objects : int;
  paper_types : int;
  build : params -> instance;
}

let scaled params n = max 1 (int_of_float (Float.round (float_of_int n *. params.scale)))
