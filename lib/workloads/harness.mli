(** Build-and-measure driver: runs one workload under one technique and
    collects everything the figures need.

    Setup (allocation, initialization) is untimed; counters are reset at
    the measurement boundary, then all compute iterations run, exactly as
    the paper reports kernel time excluding initialization. *)

type run = {
  workload : string;          (** Qualified name. *)
  technique : Repro_core.Technique.t;
  alloc : Repro_core.Alloc_family.t;
      (** Allocator family the run used (the technique's default unless
          overridden via [params.alloc]). *)
  cycles : float;
  stats : Repro_gpu.Stats.t;  (** Snapshot, detached from the device. *)
  kernel_stats : Repro_gpu.Stats.t list;
  (** Per-kernel-launch counter deltas inside the measured region, in
      launch order. Accumulating them with [Stats.add] into a fresh
      [Stats.t] reproduces [stats] exactly (float fields bit-for-bit),
      which [Repro_obs.Profile.consistent] checks. *)
  window : int option;
  (** Sampling window in cycles when the run's params enabled it. *)
  kernel_windows : Repro_gpu.Stats.t array list;
  (** Per-launch window rows (snapshots) when windowed sampling was on;
      folding a launch's rows reproduces its [kernel_stats] delta
      exactly (see {!Repro_gpu.Device.window_timeline}). Empty
      otherwise. *)
  trace : Repro_gpu.Telemetry.dump option;
  (** Event-ring snapshot when tracing was on. *)
  checksum : int;             (** Heap checksum (cross-technique equal). *)
  result : int;               (** Workload-level result (ditto). *)
  n_objects : int;
  n_types : int;
  n_vfuncs : int;             (** Total vtable slots. *)
  vfunc_pki : float;
  warp_vcalls : int;
  alloc_stats : Repro_core.Allocator.stats;
}

val run : Workload.t -> Workload.params -> run

val run_techniques :
  Workload.t -> Workload.params -> Repro_core.Technique.t list ->
  (Repro_core.Technique.t * run) list
(** Same workload under several techniques (same seed/scale), asserting
    that checksums and results agree across all of them — the paper's
    functional validation. Raises [Failure] on a mismatch. Runs are
    keyed by technique, in argument order; look one up with {!find}. *)

val find :
  (Repro_core.Technique.t * run) list ->
  technique:Repro_core.Technique.t -> run option

val validate_equal : run list -> unit
(** The cross-technique functional check on its own: every run must
    agree with the first on [checksum] and [result]. Raises [Failure]
    naming the offending pair. *)

val speedup_vs : baseline:run -> run -> float
(** [cycles baseline / cycles run]: >1 means faster than baseline. *)

val normalized_cycles : baseline:run -> run -> float
(** [cycles run / cycles baseline]: normalized runtime, >1 means slower
    than baseline. The inverse view of {!speedup_vs}. *)
