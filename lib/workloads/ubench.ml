module R = Repro_core
module Warp_ctx = Repro_gpu.Warp_ctx
module Label = Repro_gpu.Label

type variant =
  | Branch
  | Technique of R.Technique.t
  | Column of R.Technique.t * R.Alloc_family.t

let default_iterations = 5

(* Every variant computes the same thing: acc(i) += (type(i) + 1) per
   iteration, with type(i) = i mod n_types, so the per-warp divergence
   pattern matches across variants and results are comparable. *)

let run_branch ?(iterations = default_iterations) ?config ~n_objects ~n_types () =
  let heap = Repro_mem.Page_store.create () in
  let space = Repro_mem.Address_space.create () in
  let device = Repro_gpu.Device.create ?config ~heap () in
  let acc = R.Garray.alloc ~space ~name:"branch-acc" ~len:n_objects in
  for _ = 1 to iterations do
    Repro_gpu.Device.launch device ~n_threads:n_objects (fun ctx ->
        let tids = Warp_ctx.tids ctx in
        let keys = Array.map (fun tid -> tid mod n_types) tids in
        (* The register-arbitrated switch: one compare per type, then the
           taken bodies serialize under SIMT. *)
        Warp_ctx.compute ctx ~n:(max 1 n_types) ~label:Label.Body;
        Warp_ctx.diverge ctx ~label:Label.Body ~keys (fun ~key sub idxs ->
            let sub_tids = Warp_ctx.gather idxs tids in
            let values = R.Garray.load acc sub ~idxs:sub_tids in
            Warp_ctx.compute sub ~label:Label.Body;
            let values = Array.map (fun v -> v + key + 1) values in
            R.Garray.store acc sub ~idxs:sub_tids values))
  done;
  let total = ref 0 in
  for i = 0 to n_objects - 1 do
    total := !total + R.Garray.get acc heap i
  done;
  (Repro_gpu.Stats.cycles (Repro_gpu.Device.stats device), !total)

let build_technique_runtime ?config ?alloc ~n_objects ~n_types technique =
  let rt = R.Runtime.create ?config ?alloc ~technique () in
  let add_impl type_id (env : R.Env.t) objs =
    let values = R.Env.field_load env ~objs ~field:0 in
    R.Env.compute env;
    let values = Array.map (fun v -> v + type_id + 1) values in
    R.Env.field_store env ~objs ~field:0 values
  in
  let types =
    Array.init n_types (fun k ->
        let impl =
          R.Runtime.register_impl rt ~name:(Printf.sprintf "add%d" k) (add_impl k)
        in
        R.Runtime.define_type rt ~name:(Printf.sprintf "T%d" k) ~field_words:1
          ~slots:[| impl |] ())
  in
  let ptrs =
    Array.init n_objects (fun i -> R.Runtime.new_obj rt types.(i mod n_types))
  in
  let table = Common.garray_of_ptrs rt ~name:"ubench-ptrs" ptrs in
  (rt, table)

let run_technique ?(iterations = default_iterations) ?config ?alloc ~n_objects
    ~n_types technique =
  let rt, table =
    build_technique_runtime ?config ?alloc ~n_objects ~n_types technique
  in
  R.Runtime.reset_stats rt;
  for _ = 1 to iterations do
    Common.vcall_all rt ~ptrs:table ~n:n_objects ~slot:0
  done;
  let heap = R.Runtime.heap rt in
  let om = R.Runtime.object_model rt in
  let total =
    Array.fold_left
      (fun acc (ptr, _typ) -> acc + R.Object_model.field_load_host om heap ~ptr ~field:0)
      0
      (R.Runtime.allocations rt)
  in
  (R.Runtime.cycles rt, total)

let run ?iterations ?config ~n_objects ~n_types variant =
  if n_objects <= 0 || n_types <= 0 then invalid_arg "Ubench.run: positive sizes required";
  match variant with
  | Branch -> run_branch ?iterations ?config ~n_objects ~n_types ()
  | Technique technique ->
    run_technique ?iterations ?config ~n_objects ~n_types technique
  | Column (technique, alloc) ->
    run_technique ?iterations ?config ~alloc ~n_objects ~n_types technique

let workload =
  let build (p : Workload.params) =
    let n_objects = Workload.scaled p 16384 in
    let n_types = 4 in
    let rt, table =
      build_technique_runtime ?config:p.Workload.config ?alloc:p.Workload.alloc
        ~n_objects ~n_types p.Workload.technique
    in
    let iterations = Option.value p.Workload.iterations ~default:default_iterations in
    {
      Workload.rt;
      iterations;
      run_iteration = (fun _ -> Common.vcall_all rt ~ptrs:table ~n:n_objects ~slot:0);
      result =
        (fun () ->
          let heap = R.Runtime.heap rt in
          let om = R.Runtime.object_model rt in
          Array.fold_left
            (fun acc (ptr, _) -> acc + R.Object_model.field_load_host om heap ~ptr ~field:0)
            0 (R.Runtime.allocations rt));
    }
  in
  {
    Workload.name = "UBENCH";
    suite = "Microbenchmark";
    description = "High-PKI virtual-call microbenchmark (Sec. 8.3)";
    paper_objects = 16_000_000;
    paper_types = 4;
    build;
  }
