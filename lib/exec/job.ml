module W = Repro_workloads
module T = Repro_core.Technique

type t = {
  workload : W.Workload.t;
  technique : T.t;
  params : W.Workload.params;
}

let make workload (params : W.Workload.params) =
  { workload; technique = params.W.Workload.technique; params }

let matrix ~techniques ~params workloads =
  List.concat_map
    (fun w ->
      List.map
        (fun technique -> make w { params with W.Workload.technique })
        techniques)
    workloads

let workload_name t = W.Registry.qualified_name t.workload

let column_name t =
  match t.params.W.Workload.alloc with
  | None -> T.name t.technique
  | Some fam -> Repro_core.Alloc_family.column_name t.technique fam

let label t = Printf.sprintf "%s [%s]" (workload_name t) (column_name t)

(* [T.name] collapses some TypePointer configurations (e.g. prototype
   mode over the CUDA allocator has no paper short name), so the key
   spells out the full variant. *)
let technique_id = function
  | T.Cuda -> "cuda"
  | T.Concord -> "concord"
  | T.Shared_oa -> "shared_oa"
  | T.Coal -> "coal"
  | T.Type_pointer { mode; on_cuda_alloc } ->
    Printf.sprintf "tp[%s,%s]"
      (match mode with T.Prototype -> "proto" | T.Hw_mmu -> "hw")
      (if on_cuda_alloc then "cuda" else "shared_oa")

(* [prealloc_mb] is deliberately absent: a capacity hint changes no
   result, so runs with and without it share cache entries. [intern]
   does not change results either, but an A/B measurement wants the two
   engines cached apart; [intra] is a different timing model and is
   identity-critical. *)
let key t =
  let p = t.params in
  Printf.sprintf
    "%s|%s|alloc=%s|scale=%.6g|seed=%d|iters=%s|chunk=%s|config=%s|san=%s|telemetry=%s|pages=%s|intern=%b|intra=%b"
    (workload_name t) (technique_id t.technique)
    (match p.W.Workload.alloc with
     | None -> "default"
     | Some fam -> Repro_core.Alloc_family.name fam)
    p.W.Workload.scale p.W.Workload.seed
    (match p.W.Workload.iterations with
     | None -> "default"
     | Some i -> string_of_int i)
    (match p.W.Workload.chunk_objs with
     | None -> "default"
     | Some c -> string_of_int c)
    (match p.W.Workload.config with None -> "default" | Some _ -> "custom")
    (match p.W.Workload.san with None -> "off" | Some _ -> "on")
    (match p.W.Workload.telemetry with
     | None -> "off"
     | Some c ->
       Printf.sprintf "w=%s,trace=%b,cap=%d"
         (match c.Repro_gpu.Telemetry.window with
          | None -> "off"
          | Some w -> string_of_int w)
         c.Repro_gpu.Telemetry.trace c.Repro_gpu.Telemetry.trace_capacity)
    (match p.W.Workload.pages with
     | None -> "none"
     | Some policy -> Repro_vm.Policy.name policy)
    p.W.Workload.intern p.W.Workload.intra

(* Bump whenever [Harness.run] (or anything Marshal reaches through it)
   changes shape: old cache entries become unreachable, not corrupt. *)
let schema_version = "repro-exec-v6"

let hash t = Digest.to_hex (Digest.string (schema_version ^ "\n" ^ key t))

(* Sanitized jobs are never cached: the measurement's real product is
   the mutable checker threaded through params, which a cache hit would
   leave untouched. Telemetry jobs aren't either — window rows and ring
   dumps dwarf the scalar results a cache entry is meant to hold. *)
let cacheable t =
  t.params.W.Workload.config = None
  && t.params.W.Workload.san = None
  && t.params.W.Workload.telemetry = None

let run t = W.Harness.run t.workload t.params

let equal a b = String.equal (key a) (key b)
