module W = Repro_workloads
module T = Repro_core.Technique
module G = Repro_gpu
module J = Repro_obs.Json
module D = Repro_obs.Json.Decode
module H = Repro_obs.Hist
module Svc = Repro_obs.Svc_metrics

(* --- Stats wire form ------------------------------------------------------

   Scalar counters are plain fields; the two label-indexed arrays and the
   violation-kind array are objects keyed by slug with zero entries
   omitted, so the format survives enum reordering and stays readable.
   Ints ride as JSON ints and floats in the shortest-exact form, so a
   decoded snapshot equals the original bit for bit. *)

let label_of_slug =
  let table = List.map (fun l -> (G.Label.slug l, l)) G.Label.all in
  fun slug ->
    match List.assoc_opt slug table with
    | Some l -> l
    | None -> D.fail (Printf.sprintf "unknown label slug %S" slug)

let kind_of_slug =
  let table =
    List.map
      (fun k -> (Repro_san.Violation.kind_slug k, k))
      Repro_san.Violation.kinds
  in
  fun slug ->
    match List.assoc_opt slug table with
    | Some k -> k
    | None -> D.fail (Printf.sprintf "unknown violation slug %S" slug)

let slugged_floats slugs index arr =
  J.Obj
    (List.filter_map
       (fun s ->
         let v = arr.(index s) in
         if v = 0. then None else Some (s, J.Float v))
       slugs)

let slugged_ints slugs index arr =
  J.Obj
    (List.filter_map
       (fun s ->
         let v = arr.(index s) in
         if v = 0 then None else Some (s, J.Int v))
       slugs)

let label_slugs = List.map G.Label.slug G.Label.all
let kind_slugs = List.map Repro_san.Violation.kind_slug Repro_san.Violation.kinds

let stats_to_json stats =
  let r = G.Stats.to_raw stats in
  let label_index s = G.Label.to_index (label_of_slug s) in
  let kind_index s = Repro_san.Violation.kind_index (kind_of_slug s) in
  J.Obj
    [
      ("cycles", J.Float r.G.Stats.cycles);
      ("mem_instrs", J.Int r.G.Stats.mem_instrs);
      ("compute_instrs", J.Int r.G.Stats.compute_instrs);
      ("ctrl_instrs", J.Int r.G.Stats.ctrl_instrs);
      ("load_transactions", J.Int r.G.Stats.load_transactions);
      ("store_transactions", J.Int r.G.Stats.store_transactions);
      ("l1_hits", J.Int r.G.Stats.l1_hits);
      ("l1_misses", J.Int r.G.Stats.l1_misses);
      ("l2_hits", J.Int r.G.Stats.l2_hits);
      ("l2_misses", J.Int r.G.Stats.l2_misses);
      ("dram_sectors", J.Int r.G.Stats.dram_sectors);
      ("trace_dropped", J.Int r.G.Stats.trace_dropped);
      ("tlb_l1_hits", J.Int r.G.Stats.tlb_l1_hits);
      ("tlb_l2_hits", J.Int r.G.Stats.tlb_l2_hits);
      ("tlb_walks", J.Int r.G.Stats.tlb_walks);
      ("tlb_walk_cycles", J.Float r.G.Stats.tlb_walk_cycles);
      ("stalls", slugged_floats label_slugs label_index r.G.Stats.stalls);
      ( "load_transactions_by_label",
        slugged_ints label_slugs label_index
          r.G.Stats.load_transactions_by_label );
      ( "san_violations",
        slugged_ints kind_slugs kind_index r.G.Stats.san_violations );
    ]

let float_array_by_slug to_index count field j =
  let arr = Array.make count 0. in
  List.iter
    (fun (slug, v) -> arr.(to_index slug) <- v)
    (D.field_default field (D.obj D.float) [] j);
  arr

let int_array_by_slug to_index count field j =
  let arr = Array.make count 0 in
  List.iter
    (fun (slug, v) -> arr.(to_index slug) <- v)
    (D.field_default field (D.obj D.int) [] j);
  arr

let stats_decoder j =
  let label_index s = G.Label.to_index (label_of_slug s) in
  let kind_index s = Repro_san.Violation.kind_index (kind_of_slug s) in
  G.Stats.of_raw
    {
      G.Stats.cycles = D.field "cycles" D.float j;
      mem_instrs = D.field "mem_instrs" D.int j;
      compute_instrs = D.field "compute_instrs" D.int j;
      ctrl_instrs = D.field "ctrl_instrs" D.int j;
      load_transactions = D.field "load_transactions" D.int j;
      store_transactions = D.field "store_transactions" D.int j;
      l1_hits = D.field "l1_hits" D.int j;
      l1_misses = D.field "l1_misses" D.int j;
      l2_hits = D.field "l2_hits" D.int j;
      l2_misses = D.field "l2_misses" D.int j;
      dram_sectors = D.field "dram_sectors" D.int j;
      trace_dropped = D.field "trace_dropped" D.int j;
      (* Defaulted for leniency toward pre-translation peers. *)
      tlb_l1_hits = D.field_default "tlb_l1_hits" D.int 0 j;
      tlb_l2_hits = D.field_default "tlb_l2_hits" D.int 0 j;
      tlb_walks = D.field_default "tlb_walks" D.int 0 j;
      tlb_walk_cycles = D.field_default "tlb_walk_cycles" D.float 0. j;
      stalls = float_array_by_slug label_index G.Label.count "stalls" j;
      load_transactions_by_label =
        int_array_by_slug label_index G.Label.count
          "load_transactions_by_label" j;
      san_violations =
        int_array_by_slug kind_index Repro_san.Violation.kind_count
          "san_violations" j;
    }

(* --- Harness.run wire form ------------------------------------------------ *)

let alloc_stats_to_json (a : Repro_core.Allocator.stats) =
  J.Obj
    [
      ("objects", J.Int a.Repro_core.Allocator.objects);
      ("live_objects", J.Int a.Repro_core.Allocator.live_objects);
      ("reserved_bytes", J.Int a.Repro_core.Allocator.reserved_bytes);
      ("used_bytes", J.Int a.Repro_core.Allocator.used_bytes);
      ("padded_bytes", J.Int a.Repro_core.Allocator.padded_bytes);
      ("alloc_cycles", J.Float a.Repro_core.Allocator.alloc_cycles);
      ("free_cycles", J.Float a.Repro_core.Allocator.free_cycles);
      ( "bitmap_scan_cycles",
        J.Float a.Repro_core.Allocator.bitmap_scan_cycles );
    ]

let alloc_stats_decoder j =
  let objects = D.field "objects" D.int j in
  {
    Repro_core.Allocator.objects;
    (* The capability counters default for leniency toward pre-alloc-
       family peers (the envelope version still gates real skew). *)
    live_objects = D.field_default "live_objects" D.int objects j;
    reserved_bytes = D.field "reserved_bytes" D.int j;
    used_bytes = D.field "used_bytes" D.int j;
    padded_bytes = D.field_default "padded_bytes" D.int 0 j;
    alloc_cycles = D.field "alloc_cycles" D.float j;
    free_cycles = D.field_default "free_cycles" D.float 0. j;
    bitmap_scan_cycles = D.field_default "bitmap_scan_cycles" D.float 0. j;
  }

let run_to_json (r : W.Harness.run) =
  J.Obj
    [
      ("workload", J.String r.W.Harness.workload);
      ( "technique",
        J.String (Request.technique_to_string r.W.Harness.technique) );
      ( "alloc",
        J.String (Repro_core.Alloc_family.name r.W.Harness.alloc) );
      ("cycles", J.Float r.W.Harness.cycles);
      ("checksum", J.Int r.W.Harness.checksum);
      ("result", J.Int r.W.Harness.result);
      ("n_objects", J.Int r.W.Harness.n_objects);
      ("n_types", J.Int r.W.Harness.n_types);
      ("n_vfuncs", J.Int r.W.Harness.n_vfuncs);
      ("vfunc_pki", J.Float r.W.Harness.vfunc_pki);
      ("warp_vcalls", J.Int r.W.Harness.warp_vcalls);
      ("alloc_stats", alloc_stats_to_json r.W.Harness.alloc_stats);
      ("stats", stats_to_json r.W.Harness.stats);
      ( "kernel_stats",
        J.List (List.map stats_to_json r.W.Harness.kernel_stats) );
    ]

let technique_decoder j =
  let s = D.string j in
  match Request.technique_of_string s with
  | Ok t -> t
  | Error msg -> D.fail msg

let alloc_family_decoder j =
  let s = D.string j in
  match Repro_core.Alloc_family.of_string s with
  | Ok fam -> fam
  | Error msg -> D.fail msg

let run_decoder j =
  let technique = D.field "technique" technique_decoder j in
  {
    W.Harness.workload = D.field "workload" D.string j;
    technique;
    alloc =
      (match D.field_opt "alloc" alloc_family_decoder j with
       | Some fam -> fam
       | None -> Repro_core.Alloc_family.default_for technique);
    cycles = D.field "cycles" D.float j;
    stats = D.field "stats" stats_decoder j;
    kernel_stats = D.field_default "kernel_stats" (D.list stats_decoder) [] j;
    (* Telemetry never rides the wire: daemon jobs are plain measurement
       jobs (Job.cacheable), which carry none. *)
    window = None;
    kernel_windows = [];
    trace = None;
    checksum = D.field "checksum" D.int j;
    result = D.field "result" D.int j;
    n_objects = D.field "n_objects" D.int j;
    n_types = D.field "n_types" D.int j;
    n_vfuncs = D.field "n_vfuncs" D.int j;
    vfunc_pki = D.field "vfunc_pki" D.float j;
    warp_vcalls = D.field "warp_vcalls" D.int j;
    alloc_stats = D.field "alloc_stats" alloc_stats_decoder j;
  }

(* --- Outcomes ------------------------------------------------------------- *)

type outcome = {
  spec : Request.Spec.t;
  cached : bool;
  deduped : bool;
  wall_s : float;
  result : (W.Harness.run, string) result;
}

let outcome_of_executor ?(deduped = false) (o : Executor.outcome) =
  {
    spec = Request.Spec.of_job o.Executor.job;
    cached = o.Executor.cached;
    deduped;
    wall_s = o.Executor.wall_s;
    result = o.Executor.result;
  }

let outcome_to_json o =
  J.Obj
    ([
       ("job", Request.Spec.to_json o.spec);
       ("cached", J.Bool o.cached);
       ("deduped", J.Bool o.deduped);
       ("wall_s", J.Float o.wall_s);
     ]
    @
    match o.result with
    | Ok run -> [ ("run", run_to_json run) ]
    | Error msg -> [ ("error", J.String msg) ])

let outcome_decoder j =
  let error = D.field_opt "error" D.string j in
  {
    spec = D.field "job" Request.Spec.decoder j;
    cached = D.field "cached" D.bool j;
    deduped = D.field "deduped" D.bool j;
    wall_s = D.field "wall_s" D.float j;
    result =
      (match error with
       | Some msg -> Error msg
       | None -> Ok (D.field "run" run_decoder j));
  }

(* --- Responses ------------------------------------------------------------ *)

type server_stats = {
  sessions : int;
  submitted : int;
  executed : int;
  dedup_hits : int;
  cache_hits : int;
  queued : int;
  running : int;
  uptime_s : float;
  (* Present only when the daemon runs with metrics on — additive
     optional fields, so the envelope version stays put and a metrics-off
     daemon's stats line is byte-identical to the pre-observability one. *)
  svc : Svc.snapshot option;
  stages : (string * H.t) list;
}

type health = {
  h_uptime_s : float;
  h_schema : int;
  h_workers : int;
  h_sessions : int;
  h_queued : int;
  h_running : int;
}

type t =
  | Ack of { id : string; jobs : int }
  | Running of { id : string; index : int }
  | Job_done of { id : string; index : int; outcome : outcome }
  | Batch_done of {
      id : string;
      jobs : int;
      measured : int;
      cached : int;
      deduped : int;
      failed : int;
      wall_s : float;
    }
  | Queried of { hit : bool; run : W.Harness.run option }
  | Invalidated of { removed : int }
  | Server_stats of server_stats
  | Health of health
  | Trace_dump of { spans : int; dropped : int; trace : J.t }
  | Pong
  | Bye
  | Error of { message : string }

let envelope typ fields =
  J.Obj
    (("v", J.Int Request.schema_version) :: ("type", J.String typ) :: fields)

let to_json = function
  | Ack { id; jobs } ->
    envelope "ack" [ ("id", J.String id); ("jobs", J.Int jobs) ]
  | Running { id; index } ->
    envelope "running" [ ("id", J.String id); ("index", J.Int index) ]
  | Job_done { id; index; outcome } ->
    envelope "job_done"
      [
        ("id", J.String id);
        ("index", J.Int index);
        ("outcome", outcome_to_json outcome);
      ]
  | Batch_done { id; jobs; measured; cached; deduped; failed; wall_s } ->
    envelope "batch_done"
      [
        ("id", J.String id);
        ("jobs", J.Int jobs);
        ("measured", J.Int measured);
        ("cached", J.Int cached);
        ("deduped", J.Int deduped);
        ("failed", J.Int failed);
        ("wall_s", J.Float wall_s);
      ]
  | Queried { hit; run } ->
    envelope "queried"
      (("hit", J.Bool hit)
       ::
       (match run with Some r -> [ ("run", run_to_json r) ] | None -> []))
  | Invalidated { removed } -> envelope "invalidated" [ ("removed", J.Int removed) ]
  | Server_stats s ->
    envelope "server_stats"
      ([
         ("sessions", J.Int s.sessions);
         ("submitted", J.Int s.submitted);
         ("executed", J.Int s.executed);
         ("dedup_hits", J.Int s.dedup_hits);
         ("cache_hits", J.Int s.cache_hits);
         ("queued", J.Int s.queued);
         ("running", J.Int s.running);
         ("uptime_s", J.Float s.uptime_s);
       ]
      @ (match s.svc with
         | Some svc -> [ ("svc", Svc.to_json svc) ]
         | None -> [])
      @
      match s.stages with
      | [] -> []
      | stages ->
        [ ("stages", J.Obj (List.map (fun (n, h) -> (n, H.to_json h)) stages)) ])
  | Health h ->
    envelope "health"
      [
        ("uptime_s", J.Float h.h_uptime_s);
        ("schema", J.Int h.h_schema);
        ("workers", J.Int h.h_workers);
        ("sessions", J.Int h.h_sessions);
        ("queued", J.Int h.h_queued);
        ("running", J.Int h.h_running);
      ]
  | Trace_dump { spans; dropped; trace } ->
    envelope "trace_dump"
      [ ("spans", J.Int spans); ("dropped", J.Int dropped); ("trace", trace) ]
  | Pong -> envelope "pong" []
  | Bye -> envelope "bye" []
  | Error { message } -> envelope "error" [ ("message", J.String message) ]

let decoder j =
  let v = D.field "v" D.int j in
  if v <> Request.schema_version then
    D.field "v"
      (fun _ ->
        D.fail
          (Printf.sprintf
             "unsupported schema version %d (this client speaks %d)" v
             Request.schema_version))
      j;
  match D.field "type" D.string j with
  | "ack" ->
    Ack { id = D.field "id" D.string j; jobs = D.field "jobs" D.int j }
  | "running" ->
    Running { id = D.field "id" D.string j; index = D.field "index" D.int j }
  | "job_done" ->
    Job_done
      {
        id = D.field "id" D.string j;
        index = D.field "index" D.int j;
        outcome = D.field "outcome" outcome_decoder j;
      }
  | "batch_done" ->
    Batch_done
      {
        id = D.field "id" D.string j;
        jobs = D.field "jobs" D.int j;
        measured = D.field "measured" D.int j;
        cached = D.field "cached" D.int j;
        deduped = D.field "deduped" D.int j;
        failed = D.field "failed" D.int j;
        wall_s = D.field "wall_s" D.float j;
      }
  | "queried" ->
    Queried
      {
        hit = D.field "hit" D.bool j;
        run = D.field_opt "run" run_decoder j;
      }
  | "invalidated" -> Invalidated { removed = D.field "removed" D.int j }
  | "server_stats" ->
    Server_stats
      {
        sessions = D.field "sessions" D.int j;
        submitted = D.field "submitted" D.int j;
        executed = D.field "executed" D.int j;
        dedup_hits = D.field "dedup_hits" D.int j;
        cache_hits = D.field "cache_hits" D.int j;
        queued = D.field "queued" D.int j;
        running = D.field "running" D.int j;
        uptime_s = D.field "uptime_s" D.float j;
        svc = D.field_opt "svc" Svc.decoder j;
        stages = D.field_default "stages" (D.obj H.decoder) [] j;
      }
  | "health" ->
    Health
      {
        h_uptime_s = D.field "uptime_s" D.float j;
        h_schema = D.field "schema" D.int j;
        h_workers = D.field "workers" D.int j;
        h_sessions = D.field "sessions" D.int j;
        h_queued = D.field "queued" D.int j;
        h_running = D.field "running" D.int j;
      }
  | "trace_dump" ->
    Trace_dump
      {
        spans = D.field "spans" D.int j;
        dropped = D.field "dropped" D.int j;
        trace = D.field "trace" D.value j;
      }
  | "pong" -> Pong
  | "bye" -> Bye
  | "error" -> Error { message = D.field "message" D.string j }
  | other ->
    D.field "type"
      (fun _ -> D.fail (Printf.sprintf "unknown response type %S" other))
      j

let of_json j = D.run decoder j

let to_line t = J.to_string (to_json t)

let of_line line =
  match J.of_string line with
  | Stdlib.Error msg -> Stdlib.Error ("malformed JSON: " ^ msg)
  | Stdlib.Ok j -> of_json j
