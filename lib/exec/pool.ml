(* The pool moved to [Repro_util.Pool] so the gpu library can shard
   intra-launch timing over the same Domain pool without a dependency
   cycle; this alias keeps the historical [Repro_exec.Pool] path. *)
include Repro_util.Pool
