(** The response side of the serve protocol: everything the daemon says
    back, including a full-fidelity wire form of a measurement result.

    A {!Repro_workloads.Harness.run} round-trips through {!run_to_json}/
    {!run_decoder} bit-exactly: integer counters are carried as JSON
    ints and float counters in {!Repro_obs.Json}'s shortest-round-trip
    representation, so a client that decodes a daemon result holds the
    same stats, bit for bit, as an in-process run (a test and the CI
    smoke pin this). Telemetry payloads (window rows, event rings) are
    not carried — daemon jobs are plain measurement jobs, which never
    have them. *)

type outcome = {
  spec : Request.Spec.t;  (** Echo of the job's identity. *)
  cached : bool;          (** Served from the on-disk result cache. *)
  deduped : bool;
      (** Attached to another waiter's in-flight execution rather than
          scheduled on its own. *)
  wall_s : float;         (** Execution wall time (0 on a cache hit). *)
  result : (Repro_workloads.Harness.run, string) result;
}

val outcome_of_executor : ?deduped:bool -> Executor.outcome -> outcome
(** Bridge from the batch executor's outcome record ([deduped] defaults
    to [false] — the in-process executor never dedups). *)

type server_stats = {
  sessions : int;        (** Connected clients. *)
  submitted : int;       (** Job submissions accepted (incl. duplicates). *)
  executed : int;        (** Jobs actually run by a worker. *)
  dedup_hits : int;      (** Submissions attached to an in-flight job. *)
  cache_hits : int;      (** Submissions served from the on-disk cache. *)
  queued : int;          (** Jobs waiting for a worker right now. *)
  running : int;         (** Jobs on a worker right now. *)
  uptime_s : float;
  svc : Repro_obs.Svc_metrics.snapshot option;
      (** Full service-metrics snapshot — only when the daemon runs with
          metrics on. Additive optional wire field: a metrics-off
          daemon's stats line is byte-identical to the pre-observability
          form, and the schema version stays put. *)
  stages : (string * Repro_obs.Hist.t) list;
      (** Per-stage latency histograms ({!Repro_obs.Svc_metrics.stage_names}
          order); [[]] when metrics are off. *)
}

type health = {
  h_uptime_s : float;
  h_schema : int;    (** {!Request.schema_version} of the daemon. *)
  h_workers : int;
  h_sessions : int;
  h_queued : int;
  h_running : int;
}

type t =
  | Ack of { id : string; jobs : int }
      (** The batch was accepted; [jobs] results will follow. *)
  | Running of { id : string; index : int }
      (** Per-job progress: the batch's [index]-th job started executing
          (not sent for cache and dedup hits, which complete without
          running). *)
  | Job_done of { id : string; index : int; outcome : outcome }
  | Batch_done of {
      id : string;
      jobs : int;
      measured : int;
      cached : int;
      deduped : int;
      failed : int;
      wall_s : float;  (** Sum of per-job execution wall times. *)
    }
  | Queried of { hit : bool; run : Repro_workloads.Harness.run option }
  | Invalidated of { removed : int }
  | Server_stats of server_stats
  | Health of health
      (** Liveness probe answer; cheap enough to poll. *)
  | Trace_dump of { spans : int; dropped : int; trace : Repro_obs.Json.t }
      (** The span ring rendered by {!Repro_obs.Tracer.spans_to_json}:
          [trace] is a complete Chrome trace-event document, [spans] the
          events it holds, [dropped] how many older spans the ring
          overwrote. *)
  | Pong
  | Bye  (** Acknowledges [Shutdown]; the socket closes after it. *)
  | Error of { message : string }
      (** Request-level failure: malformed JSON, a decode error naming
          the offending field, or an unresolvable job spec. The
          connection stays up. *)

val run_to_json : Repro_workloads.Harness.run -> Repro_obs.Json.t

val run_decoder :
  Repro_workloads.Harness.run Repro_obs.Json.Decode.decoder

val outcome_to_json : outcome -> Repro_obs.Json.t

val outcome_decoder : outcome Repro_obs.Json.Decode.decoder

val to_json : t -> Repro_obs.Json.t

val of_json : Repro_obs.Json.t -> (t, string) result
(** Same envelope rule as requests: [v] must match
    {!Request.schema_version}. *)

val to_line : t -> string
(** Compact one-line JSON, newline {e not} included. *)

val of_line : string -> (t, string) result
