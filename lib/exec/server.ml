module W = Repro_workloads

type config = {
  socket_path : string;
  workers : int;
  cache : bool;
  cache_dir : string;
}

let default_socket () =
  match Sys.getenv_opt "REPRO_SOCKET" with
  | Some s when s <> "" -> s
  | _ -> "_repro_serve.sock"

let default_config () =
  {
    socket_path = default_socket ();
    workers = Executor.default_jobs ();
    cache = true;
    cache_dir = Cache.default_dir ();
  }

type job_runner = Job.t -> (W.Harness.run, string) result

(* --- Scheduler state ------------------------------------------------------

   Guarded by [mutex]; workers and the event thread are the only
   parties. Waiter lists reference sessions, but workers never touch
   them — they snapshot the list under the lock and ship it to the event
   thread inside an event. *)

type waiter = {
  w_session : Session.t;
  w_batch : Session.batch;
  w_index : int;
  w_deduped : bool;
}

type entry = {
  e_key : string;
  e_job : Job.t;
  e_cache : bool;
  mutable e_state : [ `Queued | `Running | `Done | `Cancelled ];
  mutable e_waiters : waiter list;  (* newest first *)
}

type event =
  | Started of waiter list
  | Finished of waiter list * Executor.outcome

type t = {
  cfg : config;
  runner : job_runner option;
  mutex : Mutex.t;
  cond : Condition.t;
  queues : (int, entry Queue.t) Hashtbl.t;  (* session id -> pending *)
  mutable rr : int list;  (* round-robin service order of session ids *)
  inflight : (string, entry) Hashtbl.t;  (* Job.key -> entry *)
  events : event Queue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable stopping : bool;
  mutable submitted : int;
  mutable executed : int;
  mutable dedup_hits : int;
  mutable cache_hits : int;
  mutable running_count : int;
  started_at : float;
}

let wake t =
  (* Nonblocking: if the pipe is full the event thread is already due
     to wake up, so a dropped byte loses nothing. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let push_event t ev =
  Queue.push ev t.events;
  wake t

(* Fair pick: walk the round-robin list; the first session with a live
   queued entry wins and rotates to the back. Entries cancelled while
   queued (or whose waiters all disconnected) are discarded here. *)
let pick_next t =
  let rec pop_live q =
    if Queue.is_empty q then None
    else
      let e = Queue.pop q in
      if e.e_state = `Queued && e.e_waiters <> [] then Some e
      else begin
        if e.e_state = `Queued then begin
          e.e_state <- `Cancelled;
          Hashtbl.remove t.inflight e.e_key
        end;
        pop_live q
      end
  in
  let rec walk served = function
    | [] ->
      t.rr <- List.rev served;
      None
    | sid :: rest -> (
      match Hashtbl.find_opt t.queues sid with
      | None -> walk served rest  (* reaped session: drop from the order *)
      | Some q -> (
        match pop_live q with
        | Some e ->
          t.rr <- List.rev_append served rest @ [ sid ];
          Some e
        | None -> walk (sid :: served) rest))
  in
  walk [] t.rr

let worker_loop t () =
  let rec next () =
    Mutex.lock t.mutex;
    let rec acquire () =
      if t.stopping then None
      else
        match pick_next t with
        | Some e -> Some e
        | None ->
          Condition.wait t.cond t.mutex;
          acquire ()
    in
    match acquire () with
    | None -> Mutex.unlock t.mutex
    | Some e ->
      e.e_state <- `Running;
      t.running_count <- t.running_count + 1;
      push_event t (Started e.e_waiters);
      Mutex.unlock t.mutex;
      let outcome =
        Executor.measure ?runner:t.runner ~cache:e.e_cache
          ~dir:t.cfg.cache_dir e.e_job
      in
      Mutex.lock t.mutex;
      e.e_state <- `Done;
      t.running_count <- t.running_count - 1;
      Hashtbl.remove t.inflight e.e_key;
      if outcome.Executor.cached then t.cache_hits <- t.cache_hits + 1
      else t.executed <- t.executed + 1;
      push_event t (Finished (e.e_waiters, outcome));
      Mutex.unlock t.mutex;
      next ()
  in
  next ()

(* --- Event-thread side ---------------------------------------------------- *)

let queue_for t sid =
  match Hashtbl.find_opt t.queues sid with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.queues sid q;
    t.rr <- t.rr @ [ sid ];
    q

let finish_job (w : waiter) outcome =
  if not w.w_session.Session.closed then begin
    Session.send w.w_session
      (Response.Job_done
         { id = w.w_batch.Session.batch_id; index = w.w_index; outcome });
    if Session.record_done w.w_session w.w_batch outcome then
      Session.send w.w_session
        (Response.Batch_done
           {
             id = w.w_batch.Session.batch_id;
             jobs = w.w_batch.Session.total;
             measured = w.w_batch.Session.measured;
             cached = w.w_batch.Session.cached;
             deduped = w.w_batch.Session.deduped;
             failed = w.w_batch.Session.failed;
             wall_s = w.w_batch.Session.wall_s;
           })
  end

let drain_events t =
  let pending = Queue.create () in
  Mutex.lock t.mutex;
  Queue.transfer t.events pending;
  Mutex.unlock t.mutex;
  Queue.iter
    (function
      | Started waiters ->
        List.iter
          (fun w ->
            if not w.w_session.Session.closed then
              Session.send w.w_session
                (Response.Running
                   { id = w.w_batch.Session.batch_id; index = w.w_index }))
          waiters
      | Finished (waiters, exec_outcome) ->
        List.iter
          (fun w ->
            finish_job w
              (Response.outcome_of_executor ~deduped:w.w_deduped exec_outcome))
          waiters)
    pending

let server_stats t ~sessions =
  Mutex.lock t.mutex;
  let queued =
    Hashtbl.fold
      (fun _ e n -> if e.e_state = `Queued then n + 1 else n)
      t.inflight 0
  in
  let s =
    {
      Response.sessions;
      submitted = t.submitted;
      executed = t.executed;
      dedup_hits = t.dedup_hits;
      cache_hits = t.cache_hits;
      queued;
      running = t.running_count;
      uptime_s = Unix.gettimeofday () -. t.started_at;
    }
  in
  Mutex.unlock t.mutex;
  s

let handle_submit t session ~id ~cache ~specs =
  (* Resolve the whole batch up front: a batch with any bad spec is
     rejected atomically, naming the offending entry. *)
  let resolved =
    List.mapi
      (fun i spec ->
        match Request.Spec.resolve spec with
        | Ok job -> Ok job
        | Error msg -> Error (Printf.sprintf "jobs[%d]: %s" i msg))
      specs
  in
  match
    List.find_map (function Error m -> Some m | Ok _ -> None) resolved
  with
  | Some message -> Session.send session (Response.Error { message })
  | None ->
    let jobs = List.map (function Ok j -> j | Error _ -> assert false) resolved in
    let total = List.length jobs in
    Session.send session (Response.Ack { id; jobs = total });
    if total = 0 then
      Session.send session
        (Response.Batch_done
           {
             id;
             jobs = 0;
             measured = 0;
             cached = 0;
             deduped = 0;
             failed = 0;
             wall_s = 0.;
           })
    else begin
      let batch = Session.begin_batch session ~id ~total in
      let announce_running = ref [] in
      Mutex.lock t.mutex;
      List.iteri
        (fun index job ->
          let key = Job.key job in
          t.submitted <- t.submitted + 1;
          match Hashtbl.find_opt t.inflight key with
          | Some e when e.e_state = `Queued || e.e_state = `Running ->
            let w =
              { w_session = session; w_batch = batch; w_index = index;
                w_deduped = true }
            in
            e.e_waiters <- w :: e.e_waiters;
            t.dedup_hits <- t.dedup_hits + 1;
            if e.e_state = `Running then
              announce_running := (id, index) :: !announce_running
          | _ ->
            let e =
              {
                e_key = key;
                e_job = job;
                e_cache = t.cfg.cache && cache;
                e_state = `Queued;
                e_waiters =
                  [ { w_session = session; w_batch = batch; w_index = index;
                      w_deduped = false } ];
              }
            in
            Hashtbl.replace t.inflight key e;
            Queue.push e (queue_for t session.Session.id);
            Condition.signal t.cond)
        jobs;
      Mutex.unlock t.mutex;
      (* Late joiners to an already-running execution get their Running
         notice immediately (the Started event fired before they attached). *)
      List.iter
        (fun (id, index) ->
          Session.send session (Response.Running { id; index }))
        (List.rev !announce_running)
    end

let handle_request t session ~sessions req =
  match req with
  | Request.Ping -> Session.send session Response.Pong
  | Request.Stats ->
    Session.send session (Response.Server_stats (server_stats t ~sessions))
  | Request.Query spec -> (
    match Request.Spec.resolve spec with
    | Error message -> Session.send session (Response.Error { message })
    | Ok job ->
      let run =
        if t.cfg.cache then Cache.lookup ~dir:t.cfg.cache_dir job else None
      in
      Session.send session
        (Response.Queried { hit = run <> None; run }))
  | Request.Invalidate (Some spec) -> (
    match Request.Spec.resolve spec with
    | Error message -> Session.send session (Response.Error { message })
    | Ok job ->
      let removed =
        if Cache.invalidate ~dir:t.cfg.cache_dir job then 1 else 0
      in
      Session.send session (Response.Invalidated { removed }))
  | Request.Invalidate None ->
    Session.send session
      (Response.Invalidated { removed = Cache.clear ~dir:t.cfg.cache_dir })
  | Request.Submit { id; cache; specs } ->
    if t.stopping then
      Session.send session
        (Response.Error { message = "server is shutting down" })
    else handle_submit t session ~id ~cache ~specs
  | Request.Shutdown ->
    Session.send session Response.Bye;
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex

(* A disconnecting session takes its queued jobs with it — but only its
   own: entries other sessions also wait on lose this session's waiters
   and, if they were parked in this session's queue, are re-homed onto a
   surviving waiter's queue. Running entries always finish. *)
let reap t session =
  Session.close session;
  Mutex.lock t.mutex;
  Hashtbl.iter
    (fun _ e ->
      e.e_waiters <-
        List.filter (fun w -> w.w_session != session) e.e_waiters)
    t.inflight;
  (match Hashtbl.find_opt t.queues session.Session.id with
   | None -> ()
   | Some q ->
     Queue.iter
       (fun e ->
         if e.e_state = `Queued then
           match e.e_waiters with
           | [] ->
             e.e_state <- `Cancelled;
             Hashtbl.remove t.inflight e.e_key
           | w :: _ ->
             Queue.push e (queue_for t w.w_session.Session.id))
       q;
     Hashtbl.remove t.queues session.Session.id);
  t.rr <- List.filter (fun sid -> sid <> session.Session.id) t.rr;
  Mutex.unlock t.mutex

(* --- Socket plumbing ------------------------------------------------------ *)

let bind_socket path =
  if String.length path > 100 then
    failwith
      (Printf.sprintf "socket path too long for AF_UNIX (%d chars): %s"
         (String.length path) path);
  (if Sys.file_exists path then begin
     (* A live daemon answers a connect; a stale file does not. *)
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     match Unix.connect probe (Unix.ADDR_UNIX path) with
     | () ->
       Unix.close probe;
       failwith (Printf.sprintf "a server is already listening on %s" path)
     | exception Unix.Unix_error _ ->
       Unix.close probe;
       (try Sys.remove path with Sys_error _ -> ())
   end);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  fd

let ignore_sigpipe () =
  (* A client vanishing mid-write must surface as EPIPE, not kill the
     daemon. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let run ?runner cfg =
  ignore_sigpipe ();
  let listen_fd = bind_socket cfg.socket_path in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      cfg;
      runner;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queues = Hashtbl.create 8;
      rr = [];
      inflight = Hashtbl.create 64;
      events = Queue.create ();
      wake_r;
      wake_w;
      stopping = false;
      submitted = 0;
      executed = 0;
      dedup_hits = 0;
      cache_hits = 0;
      running_count = 0;
      started_at = Unix.gettimeofday ();
    }
  in
  let workers =
    Array.init (max 1 cfg.workers) (fun _ -> Domain.spawn (worker_loop t))
  in
  let sessions : (Unix.file_descr, Session.t) Hashtbl.t = Hashtbl.create 8 in
  let next_session_id = ref 0 in
  let drain_wake () =
    let buf = Bytes.create 256 in
    let rec go () =
      match Unix.read t.wake_r buf 0 256 with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
    in
    go ()
  in
  let accept_client () =
    match Unix.accept listen_fd with
    | fd, _ ->
      let id = !next_session_id in
      incr next_session_id;
      let session = Session.create ~id fd in
      Hashtbl.replace sessions fd session;
      Mutex.lock t.mutex;
      ignore (queue_for t id);
      Mutex.unlock t.mutex
    | exception Unix.Unix_error _ -> ()
  in
  let read_client session =
    let buf = Bytes.create 65536 in
    match Unix.read session.Session.fd buf 0 65536 with
    | 0 -> reap t session
    | n ->
      let n_sessions () = Hashtbl.length sessions in
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Request.of_line line with
            | Ok req ->
              handle_request t session ~sessions:(n_sessions ()) req
            | Error message ->
              Session.send session (Response.Error { message }))
        (Session.feed session (Bytes.sub_string buf 0 n))
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> reap t session
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  while not t.stopping do
    (* Reap sessions whose sends failed since last turn. *)
    Hashtbl.iter
      (fun _ s -> if s.Session.closed then reap t s)
      (Hashtbl.copy sessions);
    Hashtbl.iter
      (fun fd s -> if s.Session.closed then Hashtbl.remove sessions fd)
      (Hashtbl.copy sessions);
    let client_fds =
      Hashtbl.fold (fun fd _ acc -> fd :: acc) sessions []
    in
    let readable, _, _ =
      try Unix.select (listen_fd :: t.wake_r :: client_fds) [] [] 0.25
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = listen_fd then accept_client ()
        else if fd = t.wake_r then drain_wake ()
        else
          match Hashtbl.find_opt sessions fd with
          | Some session -> read_client session
          | None -> ())
      readable;
    drain_events t
  done;
  (* Graceful exit: workers finish the job in hand and see [stopping]. *)
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Array.iter Domain.join workers;
  drain_events t;
  Hashtbl.iter (fun _ s -> Session.close s) sessions;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove cfg.socket_path with Sys_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

(* --- Client --------------------------------------------------------------- *)

module Client = struct
  type t = {
    fd : Unix.file_descr;
    ic : in_channel;
    oc : out_channel;
    mutable closed : bool;
  }

  let connect path =
    ignore_sigpipe ();
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       Unix.close fd;
       raise e);
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      closed = false;
    }

  let set_timeout t seconds =
    Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO seconds

  let send t req =
    output_string t.oc (Request.to_line req);
    output_char t.oc '\n';
    flush t.oc

  let recv t =
    match input_line t.ic with
    | line -> Response.of_line line
    | exception End_of_file -> Error "connection closed"
    | exception Sys_error msg -> Error ("read failed: " ^ msg)

  let close t =
    if not t.closed then begin
      t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end
end

(* --- Embedding ------------------------------------------------------------ *)

type handle = { thread : Thread.t; socket_path : string }

let start ?runner cfg =
  let thread = Thread.create (fun () -> run ?runner cfg) () in
  (* Wait for the socket to accept; the server thread re-raises its own
     failures, so a dead thread surfaces as the timeout below. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Client.connect cfg.socket_path with
    | client -> Client.close client
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then
        failwith
          (Printf.sprintf "server did not come up on %s" cfg.socket_path)
      else begin
        Thread.delay 0.02;
        wait ()
      end
  in
  wait ();
  { thread; socket_path = cfg.socket_path }

let stop handle =
  (match Client.connect handle.socket_path with
   | client ->
     (try
        Client.send client Request.Shutdown;
        ignore (Client.recv client)
      with _ -> ());
     Client.close client
   | exception Unix.Unix_error _ -> ());
  Thread.join handle.thread
