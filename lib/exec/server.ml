module W = Repro_workloads
module Log = Repro_obs.Log
module Hist = Repro_obs.Hist
module Svc = Repro_obs.Svc_metrics
module Tracer = Repro_obs.Tracer

type obs = {
  log : Log.t;
  metrics : Svc.t option;
  spans : Tracer.Ring.t option;
  slow_s : float;
}

let obs_off =
  { log = Log.null; metrics = None; spans = None; slow_s = infinity }

let obs_default ?(log = Log.null) ?(slow_s = 0.25) ?(trace_capacity = 4096) ()
    =
  {
    log;
    metrics = Some (Svc.create ());
    spans =
      (if trace_capacity > 0 then
         Some (Tracer.Ring.create ~capacity:trace_capacity)
       else None);
    slow_s;
  }

type config = {
  socket_path : string;
  workers : int;
  cache : bool;
  cache_dir : string;
  obs : obs;
}

let default_socket () =
  match Sys.getenv_opt "REPRO_SOCKET" with
  | Some s when s <> "" -> s
  | _ -> "_repro_serve.sock"

let default_config () =
  {
    socket_path = default_socket ();
    workers = Executor.default_jobs ();
    cache = true;
    cache_dir = Cache.default_dir ();
    obs = obs_off;
  }

type job_runner = Job.t -> (W.Harness.run, string) result

(* --- Scheduler state ------------------------------------------------------

   Guarded by [mutex]; workers and the event thread are the only
   parties. Waiter lists reference sessions, but workers never touch
   them — they snapshot the list under the lock and ship it to the event
   thread inside an event. *)

type waiter = {
  w_session : Session.t;
  w_batch : Session.batch;
  w_index : int;
  w_deduped : bool;
  w_attached_at : float;  (* dedup_wait span start; 0. when obs is off *)
}

type entry = {
  e_key : string;
  e_job : Job.t;
  e_cache : bool;
  e_trace : int;          (* trace id of the creating submit request *)
  e_enqueued_at : float;  (* queued span start; 0. when obs is off *)
  mutable e_state : [ `Queued | `Running | `Done | `Cancelled ];
  mutable e_waiters : waiter list;  (* newest first *)
}

type event =
  | Started of waiter list
  | Finished of waiter list * Executor.outcome

type t = {
  cfg : config;
  runner : job_runner option;
  mutex : Mutex.t;
  cond : Condition.t;
  queues : (int, entry Queue.t) Hashtbl.t;  (* session id -> pending *)
  mutable rr : int list;  (* round-robin service order of session ids *)
  inflight : (string, entry) Hashtbl.t;  (* Job.key -> entry *)
  events : event Queue.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable stopping : bool;
  mutable submitted : int;
  mutable executed : int;
  mutable dedup_hits : int;
  mutable cache_hits : int;
  mutable running_count : int;
  started_at : float;
  (* Observability. [obs_on] is precomputed so every instrumentation
     site is one load+branch when the daemon runs bare — the PR 4/5
     zero-allocation request path survives unchanged. Trace ids are
     assigned by the event thread only; [cur_trace] is the request it is
     currently servicing (attributes encode spans from Session.send). *)
  obs_on : bool;
  mutable next_trace : int;
  mutable cur_trace : int;
}

let wake t =
  (* Nonblocking: if the pipe is full the event thread is already due
     to wake up, so a dropped byte loses nothing. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let push_event t ev =
  Queue.push ev t.events;
  wake t

(* --- Observability taps ---------------------------------------------------

   Span timestamps ride the ring relative to server start. Stage
   histograms have two ownership classes: decode/dedup_wait/encode/
   request are written by the event thread only (no lock), queued/
   cache_probe/run by workers under [t.mutex] — [server_stats] snapshots
   under the same mutex from the event thread, so both classes read
   consistently. *)

let span t ~name ~track ~trace ~t0 ~dur =
  match t.cfg.obs.spans with
  | None -> ()
  | Some ring ->
    Tracer.Ring.record ring ~name ~track ~trace ~ts:(t0 -. t.started_at) ~dur

let record_stage t name dur =
  match t.cfg.obs.metrics with
  | None -> ()
  | Some m -> Hist.record (Svc.stage m name) dur

(* Close the books on one request line: the end-to-end span, the
   "request" histogram — whose count therefore equals request lines
   served — and the slow-request log. Fires at the terminal response
   only: synchronous requests at the end of [handle_request], a submit
   at its [Batch_done]. *)
let finish_request t ~trace ~t0 =
  if t.obs_on then begin
    let dur = Unix.gettimeofday () -. t0 in
    span t ~name:"request" ~track:0 ~trace ~t0 ~dur;
    record_stage t "request" dur;
    (match t.cfg.obs.metrics with
     | None -> ()
     | Some m ->
       m.Svc.requests <- m.Svc.requests + 1;
       if dur >= t.cfg.obs.slow_s then
         m.Svc.slow_requests <- m.Svc.slow_requests + 1);
    if dur >= t.cfg.obs.slow_s && Log.enabled t.cfg.obs.log Warn then
      Log.log t.cfg.obs.log Warn "request.slow"
        [ ("trace", Log.Int trace); ("dur_s", Log.Float dur) ]
  end

(* Fair pick: walk the round-robin list; the first session with a live
   queued entry wins and rotates to the back. Entries cancelled while
   queued (or whose waiters all disconnected) are discarded here. *)
let pick_next t =
  let rec pop_live q =
    if Queue.is_empty q then None
    else
      let e = Queue.pop q in
      if e.e_state = `Queued && e.e_waiters <> [] then Some e
      else begin
        if e.e_state = `Queued then begin
          e.e_state <- `Cancelled;
          Hashtbl.remove t.inflight e.e_key
        end;
        pop_live q
      end
  in
  let rec walk served = function
    | [] ->
      t.rr <- List.rev served;
      None
    | sid :: rest -> (
      match Hashtbl.find_opt t.queues sid with
      | None -> walk served rest  (* reaped session: drop from the order *)
      | Some q -> (
        match pop_live q with
        | Some e ->
          t.rr <- List.rev_append served rest @ [ sid ];
          Some e
        | None -> walk (sid :: served) rest))
  in
  walk [] t.rr

let worker_loop t widx () =
  let track = widx + 1 in  (* span track 0 is the event thread *)
  let rec next () =
    Mutex.lock t.mutex;
    let rec acquire () =
      if t.stopping then None
      else
        match pick_next t with
        | Some e -> Some e
        | None ->
          Condition.wait t.cond t.mutex;
          acquire ()
    in
    match acquire () with
    | None -> Mutex.unlock t.mutex
    | Some e ->
      e.e_state <- `Running;
      t.running_count <- t.running_count + 1;
      if t.obs_on then begin
        let d = Unix.gettimeofday () -. e.e_enqueued_at in
        span t ~name:"queued" ~track ~trace:e.e_trace ~t0:e.e_enqueued_at
          ~dur:d;
        record_stage t "queued" d  (* t.mutex held *)
      end;
      push_event t (Started e.e_waiters);
      Mutex.unlock t.mutex;
      let exec_span =
        if t.cfg.obs.spans = None && t.cfg.obs.metrics = None then None
        else
          Some
            (fun ~stage ~t0 ~dur ->
              span t ~name:stage ~track ~trace:e.e_trace ~t0 ~dur;
              match t.cfg.obs.metrics with
              | None -> ()
              | Some m ->
                Mutex.lock t.mutex;
                Hist.record (Svc.stage m stage) dur;
                Mutex.unlock t.mutex)
      in
      let m0 = if t.obs_on then Unix.gettimeofday () else 0. in
      let outcome =
        Executor.measure ?span:exec_span ?runner:t.runner ~cache:e.e_cache
          ~dir:t.cfg.cache_dir e.e_job
      in
      if Log.enabled t.cfg.obs.log Info then
        Log.log t.cfg.obs.log Info "job.done"
          [
            ("trace", Log.Int e.e_trace);
            ("job", Log.Str (Job.label e.e_job));
            ("wall_s", Log.Float outcome.Executor.wall_s);
            ("cached", Log.Bool outcome.Executor.cached);
          ];
      Mutex.lock t.mutex;
      e.e_state <- `Done;
      t.running_count <- t.running_count - 1;
      Hashtbl.remove t.inflight e.e_key;
      if outcome.Executor.cached then t.cache_hits <- t.cache_hits + 1
      else t.executed <- t.executed + 1;
      (match t.cfg.obs.metrics with
       | None -> ()
       | Some m ->
         m.Svc.worker_busy_s <-
           m.Svc.worker_busy_s +. (Unix.gettimeofday () -. m0);
         if e.e_cache && not outcome.Executor.cached then
           m.Svc.cache_misses <- m.Svc.cache_misses + 1);
      push_event t (Finished (e.e_waiters, outcome));
      Mutex.unlock t.mutex;
      next ()
  in
  next ()

(* --- Event-thread side ---------------------------------------------------- *)

let queue_for t sid =
  match Hashtbl.find_opt t.queues sid with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.queues sid q;
    t.rr <- t.rr @ [ sid ];
    q

let finish_job t (w : waiter) outcome =
  if not w.w_session.Session.closed then begin
    if t.obs_on && w.w_deduped then begin
      let d = Unix.gettimeofday () -. w.w_attached_at in
      span t ~name:"dedup_wait" ~track:0 ~trace:w.w_batch.Session.trace
        ~t0:w.w_attached_at ~dur:d;
      record_stage t "dedup_wait" d
    end;
    Session.send w.w_session
      (Response.Job_done
         { id = w.w_batch.Session.batch_id; index = w.w_index; outcome });
    if Session.record_done w.w_session w.w_batch outcome then begin
      Session.send w.w_session
        (Response.Batch_done
           {
             id = w.w_batch.Session.batch_id;
             jobs = w.w_batch.Session.total;
             measured = w.w_batch.Session.measured;
             cached = w.w_batch.Session.cached;
             deduped = w.w_batch.Session.deduped;
             failed = w.w_batch.Session.failed;
             wall_s = w.w_batch.Session.wall_s;
           });
      finish_request t ~trace:w.w_batch.Session.trace
        ~t0:w.w_batch.Session.started_at
    end
  end

let drain_events t =
  let pending = Queue.create () in
  Mutex.lock t.mutex;
  Queue.transfer t.events pending;
  Mutex.unlock t.mutex;
  Queue.iter
    (function
      | Started waiters ->
        List.iter
          (fun w ->
            if not w.w_session.Session.closed then begin
              if t.obs_on then t.cur_trace <- w.w_batch.Session.trace;
              Session.send w.w_session
                (Response.Running
                   { id = w.w_batch.Session.batch_id; index = w.w_index })
            end)
          waiters
      | Finished (waiters, exec_outcome) ->
        List.iter
          (fun w ->
            if t.obs_on then t.cur_trace <- w.w_batch.Session.trace;
            finish_job t w
              (Response.outcome_of_executor ~deduped:w.w_deduped exec_outcome))
          waiters)
    pending

let server_stats t ~sessions =
  Mutex.lock t.mutex;
  let queued =
    Hashtbl.fold
      (fun _ e n -> if e.e_state = `Queued then n + 1 else n)
      t.inflight 0
  in
  let svc, stages =
    match t.cfg.obs.metrics with
    | None -> (None, [])
    | Some m ->
      (* The scheduler's own counters stay the source of truth for the
         four job counters; mirror them into the registry at snapshot
         time instead of double-counting at every increment site. *)
      m.Svc.submitted <- t.submitted;
      m.Svc.executed <- t.executed;
      m.Svc.dedup_hits <- t.dedup_hits;
      m.Svc.cache_hits <- t.cache_hits;
      ( Some
          (Svc.snapshot m ~sessions ~queue_depth:queued
             ~inflight:(Hashtbl.length t.inflight) ~running:t.running_count),
        List.map (fun n -> (n, Hist.copy (Svc.stage m n))) Svc.stage_names )
  in
  let s =
    {
      Response.sessions;
      submitted = t.submitted;
      executed = t.executed;
      dedup_hits = t.dedup_hits;
      cache_hits = t.cache_hits;
      queued;
      running = t.running_count;
      uptime_s = Unix.gettimeofday () -. t.started_at;
      svc;
      stages;
    }
  in
  Mutex.unlock t.mutex;
  s

(* Returns [true] when the request already saw its terminal response
   (rejected or empty batch); a scheduled batch finishes at
   [Batch_done] in [finish_job]. *)
let handle_submit t session ~trace ~t0 ~id ~cache ~specs =
  (* Resolve the whole batch up front: a batch with any bad spec is
     rejected atomically, naming the offending entry. *)
  let resolved =
    List.mapi
      (fun i spec ->
        match Request.Spec.resolve spec with
        | Ok job -> Ok job
        | Error msg -> Error (Printf.sprintf "jobs[%d]: %s" i msg))
      specs
  in
  match
    List.find_map (function Error m -> Some m | Ok _ -> None) resolved
  with
  | Some message ->
    Session.send session (Response.Error { message });
    true
  | None ->
    let jobs = List.map (function Ok j -> j | Error _ -> assert false) resolved in
    let total = List.length jobs in
    Session.send session (Response.Ack { id; jobs = total });
    if total = 0 then begin
      Session.send session
        (Response.Batch_done
           {
             id;
             jobs = 0;
             measured = 0;
             cached = 0;
             deduped = 0;
             failed = 0;
             wall_s = 0.;
           });
      true
    end
    else begin
      let batch = Session.begin_batch session ~id ~total in
      batch.Session.trace <- trace;
      batch.Session.started_at <- t0;
      let enq = if t.obs_on then Unix.gettimeofday () else 0. in
      let announce_running = ref [] in
      Mutex.lock t.mutex;
      List.iteri
        (fun index job ->
          let key = Job.key job in
          t.submitted <- t.submitted + 1;
          match Hashtbl.find_opt t.inflight key with
          | Some e when e.e_state = `Queued || e.e_state = `Running ->
            let w =
              { w_session = session; w_batch = batch; w_index = index;
                w_deduped = true; w_attached_at = enq }
            in
            e.e_waiters <- w :: e.e_waiters;
            t.dedup_hits <- t.dedup_hits + 1;
            (* A dedup hit on a cache-enabled entry is exactly a
               stampede avoided: without the in-flight table this
               submission would race the cold cache. *)
            (match t.cfg.obs.metrics with
             | Some m when e.e_cache ->
               m.Svc.stampede_avoided <- m.Svc.stampede_avoided + 1
             | _ -> ());
            if e.e_state = `Running then
              announce_running := (id, index) :: !announce_running
          | _ ->
            let e =
              {
                e_key = key;
                e_job = job;
                e_cache = t.cfg.cache && cache;
                e_trace = trace;
                e_enqueued_at = enq;
                e_state = `Queued;
                e_waiters =
                  [ { w_session = session; w_batch = batch; w_index = index;
                      w_deduped = false; w_attached_at = enq } ];
              }
            in
            Hashtbl.replace t.inflight key e;
            Queue.push e (queue_for t session.Session.id);
            Condition.signal t.cond)
        jobs;
      Mutex.unlock t.mutex;
      (* Late joiners to an already-running execution get their Running
         notice immediately (the Started event fired before they attached). *)
      List.iter
        (fun (id, index) ->
          Session.send session (Response.Running { id; index }))
        (List.rev !announce_running);
      false
    end

let handle_request t session ~sessions ~trace ~t0 req =
  let finished =
    match req with
    | Request.Ping ->
      Session.send session Response.Pong;
      true
    | Request.Stats ->
      Session.send session (Response.Server_stats (server_stats t ~sessions));
      true
    | Request.Health ->
      Mutex.lock t.mutex;
      let queued =
        Hashtbl.fold
          (fun _ e n -> if e.e_state = `Queued then n + 1 else n)
          t.inflight 0
      in
      let running = t.running_count in
      Mutex.unlock t.mutex;
      Session.send session
        (Response.Health
           {
             h_uptime_s = Unix.gettimeofday () -. t.started_at;
             h_schema = Request.schema_version;
             h_workers = max 1 t.cfg.workers;
             h_sessions = sessions;
             h_queued = queued;
             h_running = running;
           });
      true
    | Request.Trace_dump ->
      (match t.cfg.obs.spans with
       | None ->
         Session.send session
           (Response.Error { message = "tracing is disabled on this server" })
       | Some ring ->
         let spans = Tracer.Ring.dump ring in
         let tracks =
           (0, "events")
           :: List.init (max 1 t.cfg.workers) (fun i ->
                  (i + 1, Printf.sprintf "worker %d" (i + 1)))
         in
         Session.send session
           (Response.Trace_dump
              {
                spans = List.length spans;
                dropped = Tracer.Ring.dropped ring;
                trace = Tracer.spans_to_json ~tracks spans;
              }));
      true
    | Request.Query spec ->
      (match Request.Spec.resolve spec with
       | Error message -> Session.send session (Response.Error { message })
       | Ok job ->
         let run =
           if t.cfg.cache then Cache.lookup ~dir:t.cfg.cache_dir job else None
         in
         Session.send session (Response.Queried { hit = run <> None; run }));
      true
    | Request.Invalidate (Some spec) ->
      (match Request.Spec.resolve spec with
       | Error message -> Session.send session (Response.Error { message })
       | Ok job ->
         let removed =
           if Cache.invalidate ~dir:t.cfg.cache_dir job then 1 else 0
         in
         Session.send session (Response.Invalidated { removed }));
      true
    | Request.Submit { id; cache; specs } ->
      if t.stopping then begin
        Session.send session
          (Response.Error { message = "server is shutting down" });
        true
      end
      else handle_submit t session ~trace ~t0 ~id ~cache ~specs
    | Request.Invalidate None ->
      Session.send session
        (Response.Invalidated { removed = Cache.clear ~dir:t.cfg.cache_dir });
      true
    | Request.Shutdown ->
      Session.send session Response.Bye;
      Mutex.lock t.mutex;
      t.stopping <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      true
  in
  if finished then finish_request t ~trace ~t0

(* A disconnecting session takes its queued jobs with it — but only its
   own: entries other sessions also wait on lose this session's waiters
   and, if they were parked in this session's queue, are re-homed onto a
   surviving waiter's queue. Running entries always finish. *)
let reap t session =
  (* Gate on [closed]: a send-failed session was already marked and the
     event loop may reap it more than once. *)
  if (not session.Session.closed) && Log.enabled t.cfg.obs.log Info then
    Log.log t.cfg.obs.log Info "session.close"
      [ ("session", Log.Int session.Session.id) ];
  Session.close session;
  Mutex.lock t.mutex;
  Hashtbl.iter
    (fun _ e ->
      e.e_waiters <-
        List.filter (fun w -> w.w_session != session) e.e_waiters)
    t.inflight;
  (match Hashtbl.find_opt t.queues session.Session.id with
   | None -> ()
   | Some q ->
     Queue.iter
       (fun e ->
         if e.e_state = `Queued then
           match e.e_waiters with
           | [] ->
             e.e_state <- `Cancelled;
             Hashtbl.remove t.inflight e.e_key
           | w :: _ ->
             Queue.push e (queue_for t w.w_session.Session.id))
       q;
     Hashtbl.remove t.queues session.Session.id);
  t.rr <- List.filter (fun sid -> sid <> session.Session.id) t.rr;
  Mutex.unlock t.mutex

(* --- Socket plumbing ------------------------------------------------------ *)

let bind_socket path =
  if String.length path > 100 then
    failwith
      (Printf.sprintf "socket path too long for AF_UNIX (%d chars): %s"
         (String.length path) path);
  (if Sys.file_exists path then begin
     (* A live daemon answers a connect; a stale file does not. *)
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     match Unix.connect probe (Unix.ADDR_UNIX path) with
     | () ->
       Unix.close probe;
       failwith (Printf.sprintf "a server is already listening on %s" path)
     | exception Unix.Unix_error _ ->
       Unix.close probe;
       (try Sys.remove path with Sys_error _ -> ())
   end);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  fd

let ignore_sigpipe () =
  (* A client vanishing mid-write must surface as EPIPE, not kill the
     daemon. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let run ?runner cfg =
  ignore_sigpipe ();
  let listen_fd = bind_socket cfg.socket_path in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      cfg;
      runner;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queues = Hashtbl.create 8;
      rr = [];
      inflight = Hashtbl.create 64;
      events = Queue.create ();
      wake_r;
      wake_w;
      stopping = false;
      submitted = 0;
      executed = 0;
      dedup_hits = 0;
      cache_hits = 0;
      running_count = 0;
      started_at = Unix.gettimeofday ();
      obs_on =
        (cfg.obs.metrics <> None || cfg.obs.spans <> None
         || Log.enabled cfg.obs.log Error);
      next_trace = 1;
      cur_trace = 0;
    }
  in
  if Log.enabled cfg.obs.log Info then
    Log.log cfg.obs.log Info "server.start"
      [
        ("socket", Log.Str cfg.socket_path);
        ("workers", Log.Int (max 1 cfg.workers));
        ("cache", Log.Bool cfg.cache);
      ];
  let workers =
    Array.init (max 1 cfg.workers) (fun i -> Domain.spawn (worker_loop t i))
  in
  (* Session.send tap: encode time, response count, bytes out. Runs on
     the event thread only, so [cur_trace] is the request (or batch)
     whose response is being written. *)
  let on_send =
    if cfg.obs.spans = None && cfg.obs.metrics = None then None
    else
      Some
        (fun ~bytes ~t0 ~dur ->
          span t ~name:"encode" ~track:0 ~trace:t.cur_trace ~t0 ~dur;
          match cfg.obs.metrics with
          | None -> ()
          | Some m ->
            m.Svc.responses <- m.Svc.responses + 1;
            m.Svc.bytes_out <- m.Svc.bytes_out + bytes;
            Hist.record (Svc.stage m "encode") dur)
  in
  let sessions : (Unix.file_descr, Session.t) Hashtbl.t = Hashtbl.create 8 in
  let next_session_id = ref 0 in
  let drain_wake () =
    let buf = Bytes.create 256 in
    let rec go () =
      match Unix.read t.wake_r buf 0 256 with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
    in
    go ()
  in
  let accept_client () =
    match Unix.accept listen_fd with
    | fd, _ ->
      let id = !next_session_id in
      incr next_session_id;
      let session = Session.create ?on_send ~id fd in
      Hashtbl.replace sessions fd session;
      if Log.enabled cfg.obs.log Info then
        Log.log cfg.obs.log Info "session.connect"
          [ ("session", Log.Int id) ];
      Mutex.lock t.mutex;
      ignore (queue_for t id);
      Mutex.unlock t.mutex
    | exception Unix.Unix_error _ -> ()
  in
  let read_client session =
    let buf = Bytes.create 65536 in
    match Unix.read session.Session.fd buf 0 65536 with
    | 0 -> reap t session
    | n ->
      (match cfg.obs.metrics with
       | Some m -> m.Svc.bytes_in <- m.Svc.bytes_in + n
       | None -> ());
      let n_sessions () = Hashtbl.length sessions in
      List.iter
        (fun line ->
          if String.trim line <> "" then
            if not t.obs_on then
              (* The historical request path, byte for byte: no clock
                 reads, no trace ids, no allocation beyond decoding. *)
              match Request.of_line line with
              | Ok req ->
                handle_request t session ~sessions:(n_sessions ()) ~trace:0
                  ~t0:0. req
              | Error message ->
                Session.send session (Response.Error { message })
            else begin
              let t0 = Unix.gettimeofday () in
              let trace = t.next_trace in
              t.next_trace <- trace + 1;
              t.cur_trace <- trace;
              match Request.of_line line with
              | Ok req ->
                let d = Unix.gettimeofday () -. t0 in
                span t ~name:"decode" ~track:0 ~trace ~t0 ~dur:d;
                record_stage t "decode" d;
                handle_request t session ~sessions:(n_sessions ()) ~trace ~t0
                  req
              | Error message ->
                let d = Unix.gettimeofday () -. t0 in
                span t ~name:"decode" ~track:0 ~trace ~t0 ~dur:d;
                record_stage t "decode" d;
                (match cfg.obs.metrics with
                 | Some m -> m.Svc.decode_errors <- m.Svc.decode_errors + 1
                 | None -> ());
                if Log.enabled cfg.obs.log Warn then
                  Log.log cfg.obs.log Warn "request.decode_error"
                    [ ("trace", Log.Int trace); ("error", Log.Str message) ];
                Session.send session (Response.Error { message });
                finish_request t ~trace ~t0
            end)
        (Session.feed session (Bytes.sub_string buf 0 n))
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> reap t session
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  while not t.stopping do
    (* Reap sessions whose sends failed since last turn. *)
    Hashtbl.iter
      (fun _ s -> if s.Session.closed then reap t s)
      (Hashtbl.copy sessions);
    Hashtbl.iter
      (fun fd s -> if s.Session.closed then Hashtbl.remove sessions fd)
      (Hashtbl.copy sessions);
    let client_fds =
      Hashtbl.fold (fun fd _ acc -> fd :: acc) sessions []
    in
    let readable, _, _ =
      try Unix.select (listen_fd :: t.wake_r :: client_fds) [] [] 0.25
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = listen_fd then accept_client ()
        else if fd = t.wake_r then drain_wake ()
        else
          match Hashtbl.find_opt sessions fd with
          | Some session -> read_client session
          | None -> ())
      readable;
    drain_events t
  done;
  (* Graceful exit: workers finish the job in hand and see [stopping]. *)
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  Array.iter Domain.join workers;
  drain_events t;
  if Log.enabled cfg.obs.log Info then
    Log.log cfg.obs.log Info "server.stop"
      [ ("uptime_s", Log.Float (Unix.gettimeofday () -. t.started_at)) ];
  Hashtbl.iter (fun _ s -> Session.close s) sessions;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Sys.remove cfg.socket_path with Sys_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

(* --- Client --------------------------------------------------------------- *)

module Client = struct
  type t = {
    fd : Unix.file_descr;
    ic : in_channel;
    oc : out_channel;
    mutable closed : bool;
  }

  let connect path =
    ignore_sigpipe ();
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       Unix.close fd;
       raise e);
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      closed = false;
    }

  let set_timeout t seconds =
    Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO seconds

  let send t req =
    output_string t.oc (Request.to_line req);
    output_char t.oc '\n';
    flush t.oc

  let recv t =
    match input_line t.ic with
    | line -> Response.of_line line
    | exception End_of_file -> Error "connection closed"
    | exception Sys_error msg -> Error ("read failed: " ^ msg)

  let close t =
    if not t.closed then begin
      t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end
end

(* --- Embedding ------------------------------------------------------------ *)

type handle = { thread : Thread.t; socket_path : string }

let start ?runner cfg =
  let thread = Thread.create (fun () -> run ?runner cfg) () in
  (* Wait for the socket to accept; the server thread re-raises its own
     failures, so a dead thread surfaces as the timeout below. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match Client.connect cfg.socket_path with
    | client -> Client.close client
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then
        failwith
          (Printf.sprintf "server did not come up on %s" cfg.socket_path)
      else begin
        Thread.delay 0.02;
        wait ()
      end
  in
  wait ();
  { thread; socket_path = cfg.socket_path }

let stop handle =
  (match Client.connect handle.socket_path with
   | client ->
     (try
        Client.send client Request.Shutdown;
        ignore (Client.recv client)
      with _ -> ());
     Client.close client
   | exception Unix.Unix_error _ -> ());
  Thread.join handle.thread
