module W = Repro_workloads

let default_dir () =
  match Sys.getenv_opt "REPRO_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_repro_cache"

let extension = ".job"

let path ~dir job = Filename.concat dir (Job.hash job ^ extension)

(* Each entry marshals the plain-data [Harness.run] record together with
   the full key string, which lookup re-checks. *)
type entry = { key : string; run : W.Harness.run }

let lookup ~dir job =
  if not (Job.cacheable job) then None
  else
    let file = path ~dir job in
    match open_in_bin file with
    | exception Sys_error _ -> None
    | ic ->
      let entry =
        try
          let (e : entry) = Marshal.from_channel ic in
          if String.equal e.key (Job.key job) then Some e.run else None
        with _ -> None
      in
      close_in_noerr ic;
      entry

let store ~dir job run =
  if Job.cacheable job then begin
    try
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let file = path ~dir job in
      let tmp = Filename.temp_file ~temp_dir:dir "entry" ".tmp" in
      let oc = open_out_bin tmp in
      Marshal.to_channel oc { key = Job.key job; run } [];
      close_out oc;
      Sys.rename tmp file
    with Sys_error _ -> ()
  end

let clear ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if Filename.check_suffix f extension then begin
          (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          n + 1
        end
        else n)
      0 files
