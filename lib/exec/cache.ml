module W = Repro_workloads

let default_dir () =
  match Sys.getenv_opt "REPRO_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_repro_cache"

let extension = ".job"

let path ~dir job = Filename.concat dir (Job.hash job ^ extension)

(* Each entry marshals the plain-data [Harness.run] record together with
   the full key string, which lookup re-checks. *)
type entry = { key : string; run : W.Harness.run }

let lookup ~dir job =
  if not (Job.cacheable job) then None
  else
    let file = path ~dir job in
    match open_in_bin file with
    | exception Sys_error _ -> None
    | ic ->
      let entry =
        try
          let (e : entry) = Marshal.from_channel ic in
          if String.equal e.key (Job.key job) then Some e.run else None
        with _ -> None
      in
      close_in_noerr ic;
      entry

(* Concurrent daemon sessions (and a daemon racing a CLI sweep) store
   through here from several domains and processes at once, so writes
   must never leave a torn entry where [lookup] can see one: the entry
   is marshalled to a fresh temp file and published with an atomic
   [rename]. Readers either see the complete old file, the complete new
   file, or nothing. A failed write removes its temp file; [mkdir] races
   (two writers creating the directory together) are benign. *)
let store ~dir job run =
  if Job.cacheable job then begin
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    match Filename.temp_file ~temp_dir:dir "entry" ".tmp" with
    | exception Sys_error _ -> ()
    | tmp -> (
      try
        let oc = open_out_bin tmp in
        (try Marshal.to_channel oc { key = Job.key job; run } []
         with e ->
           close_out_noerr oc;
           raise e);
        close_out oc;
        Sys.rename tmp (path ~dir job)
      with Sys_error _ | Out_of_memory ->
        (try Sys.remove tmp with Sys_error _ -> ()))
  end

let invalidate ~dir job =
  let file = path ~dir job in
  match Sys.remove file with
  | () -> true
  | exception Sys_error _ -> false

let clear ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if Filename.check_suffix f extension then begin
          (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          n + 1
        end
        else begin
          (* Temp files orphaned by a crashed writer. *)
          if Filename.check_suffix f ".tmp" then
            (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
          n
        end)
      0 files
