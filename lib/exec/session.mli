(** One connected serve client: line framing over its socket, response
    writes, and per-batch progress accounting.

    Sessions are owned by the daemon's event thread — every read, write
    and accounting update happens there, so the type needs no lock. The
    scheduler's worker domains never touch a session; they hand finished
    work back to the event thread ({!Server}), which fans it out. *)

type batch = {
  batch_id : string;
  total : int;
  mutable completed : int;
  mutable measured : int;
  mutable cached : int;
  mutable deduped : int;
  mutable failed : int;
  mutable wall_s : float;
  mutable trace : int;
      (** Trace id of the submit request that opened the batch (0 when
          the daemon runs without observability). *)
  mutable started_at : float;
      (** [Unix.gettimeofday] at submit decode — the end-to-end request
          span for a batch closes at [Batch_done] (0 when off). *)
}

type t = {
  id : int;             (** Dense session number (scheduler queue key). *)
  fd : Unix.file_descr;
  buf : Buffer.t;       (** Bytes received but not yet newline-framed. *)
  batches : (string, batch) Hashtbl.t;  (** In-flight batches by id. *)
  on_send : (bytes:int -> t0:float -> dur:float -> unit) option;
      (** Observability tap on {!send}: bytes written and encode time
          ([t0] start, [dur] seconds spent in [Response.to_line]). [None]
          keeps {!send} on its historical path — no clock reads. *)
  mutable closed : bool;
}

val create :
  ?on_send:(bytes:int -> t0:float -> dur:float -> unit) ->
  id:int -> Unix.file_descr -> t

val feed : t -> string -> string list
(** Append received bytes and return the complete lines they finish, in
    order, stripped of their newline (and any ['\r']). *)

val send : t -> Response.t -> unit
(** Write one response line. A write failure (client went away mid-write)
    marks the session {!closed}; the daemon reaps it on its next loop
    turn. No-op on an already-closed session. *)

val begin_batch : t -> id:string -> total:int -> batch

val record_done : t -> batch -> Response.outcome -> bool
(** Fold one finished job into the batch tally; [true] when it was the
    batch's last job (the batch is dropped from the table — the caller
    sends [Batch_done] from the returned counters before dropping its
    reference). *)

val close : t -> unit
(** Close the socket (idempotent). *)
