module W = Repro_workloads
module T = Repro_core.Technique
module San = Repro_san

let reference = T.Cuda

type divergence = {
  index : int option;
  summary : string;
  context : string option;
}

type technique_report = {
  technique : T.t;
  error : string option;
  counts : int array;
  samples : San.Violation.t list;
  dispatches : int;
  divergence : divergence option;
}

type report = {
  workload : string;
  mutation : San.Mutation.t option;
  techniques : technique_report list;
}

let technique_clean tr =
  tr.error = None
  && Array.for_all (fun c -> c = 0) tr.counts
  && tr.divergence = None

let clean r = List.for_all technique_clean r.techniques

let all_clean = List.for_all clean

let checker_for ?mutation ?capture technique =
  San.Checker.create ?mutation ?capture
    ~tags_expected:(T.tags_pointers technique) ()

let with_san (params : W.Workload.params) ~technique checker =
  { params with W.Workload.technique; san = Some checker }

(* Digest streams say only *that* dispatch [index] diverged; recovering
   the per-lane context means re-running both sides serially with the
   oracle capturing that dispatch. Check runs are small (seconds), so
   the second pass is cheaper than retaining every dispatch of every
   technique would have been. *)
let capture_context ?mutation ~params workload ~technique index =
  let cap tech =
    let checker = checker_for ?mutation ~capture:index tech in
    match W.Harness.run workload (with_san params ~technique:tech checker) with
    | _ -> San.Oracle.captured (San.Checker.oracle checker)
    | exception _ -> None
  in
  match (cap reference, cap technique) with
  | Some ref_d, Some act_d ->
    Some (San.Oracle.describe_details ~reference:ref_d act_d)
  | _ -> None

let run ?jobs ?mutation ?(techniques = T.all_paper) ~params workloads =
  let techniques =
    if List.exists (T.equal reference) techniques then techniques
    else reference :: techniques
  in
  let units =
    List.concat_map
      (fun w ->
        List.map
          (fun tech ->
            let checker = checker_for ?mutation tech in
            (w, tech, checker, Job.make w (with_san params ~technique:tech checker)))
          techniques)
      workloads
  in
  let outcomes =
    Executor.run ?jobs ~cache:false (List.map (fun (_, _, _, j) -> j) units)
  in
  let paired =
    List.map2 (fun (w, tech, checker, _) o -> (w, tech, checker, o)) units outcomes
  in
  List.map
    (fun w ->
      let mine = List.filter (fun (w', _, _, _) -> w' == w) paired in
      let ref_ok, ref_oracle =
        match List.find_opt (fun (_, t, _, _) -> T.equal t reference) mine with
        | Some (_, _, c, (o : Executor.outcome)) ->
          ( (match o.Executor.result with Ok _ -> true | Error _ -> false),
            San.Checker.oracle c )
        | None -> assert false (* the reference is always in [techniques] *)
      in
      let technique_reports =
        List.map
          (fun (_, tech, checker, (o : Executor.outcome)) ->
            let error =
              match o.Executor.result with Ok _ -> None | Error e -> Some e
            in
            let divergence =
              if T.equal tech reference || error <> None || not ref_ok then None
              else
                match
                  San.Oracle.diff ~reference:ref_oracle (San.Checker.oracle checker)
                with
                | None -> None
                | Some d ->
                  let summary = Format.asprintf "%a" San.Oracle.pp_divergence d in
                  (match d with
                   | San.Oracle.Target_mismatch { index } ->
                     Some
                       {
                         index = Some index;
                         summary;
                         context =
                           capture_context ?mutation ~params w ~technique:tech
                             index;
                       }
                   | San.Oracle.Length_mismatch _ ->
                     Some { index = None; summary; context = None })
            in
            {
              technique = tech;
              error;
              counts =
                Array.init San.Violation.kind_count (fun i ->
                    San.Checker.count checker (San.Violation.kind_of_index i));
              samples = San.Checker.samples checker;
              dispatches = San.Oracle.length (San.Checker.oracle checker);
              divergence;
            })
          mine
      in
      {
        workload = W.Registry.qualified_name w;
        mutation;
        techniques = technique_reports;
      })
    workloads

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s%s:" r.workload
    (match r.mutation with
     | None -> ""
     | Some m -> Format.asprintf " (mutation %a)" San.Mutation.pp m);
  List.iter
    (fun tr ->
      let total = Array.fold_left ( + ) 0 tr.counts in
      Format.fprintf ppf "@,  %-8s %d dispatches" (T.name tr.technique)
        tr.dispatches;
      (match tr.error with
       | Some e -> Format.fprintf ppf " ERROR: %s" e
       | None -> ());
      if total > 0 then begin
        Format.fprintf ppf " violations:";
        List.iter
          (fun k ->
            let n = tr.counts.(San.Violation.kind_index k) in
            if n > 0 then
              Format.fprintf ppf " %s=%d" (San.Violation.kind_slug k) n)
          San.Violation.kinds
      end;
      (match tr.divergence with
       | Some d ->
         Format.fprintf ppf "@,    DIVERGES from %s: %s" (T.name reference)
           d.summary;
         (match d.context with
          | Some c -> Format.fprintf ppf "@,    %s" c
          | None -> ())
       | None -> ());
      if technique_clean tr then Format.fprintf ppf " ok")
    r.techniques;
  Format.fprintf ppf "@]"
