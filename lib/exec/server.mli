(** [repro serve]: the persistent sweep daemon.

    One process owns the Domain worker pool and the on-disk result
    cache; any number of clients connect over a Unix socket and speak
    the line-delimited JSON protocol of {!Request}/{!Response} (see
    PROTOCOL.md). The interesting part is the scheduler:

    - {b Fair queueing}: each session has its own FIFO of pending jobs
      and workers pick round-robin across sessions, so a client that
      submits thousands of jobs cannot starve one that submits one.
    - {b Dedup}: an in-flight table keyed by {!Job.key} maps every job
      that is queued or running to a single execution; identical
      submissions — from the same or different clients — attach as
      waiters and all receive the result of the one run.
    - {b Cache-stampede protection}: the in-flight entry is created
      before the cache is consulted and removed only after the result
      is stored, so a cold cache plus N identical concurrent requests
      runs the job exactly once — the other N-1 wait on the entry
      rather than racing to measure.
    - {b Cancellation}: a client disconnecting cancels its queued jobs
      (running jobs finish; entries other sessions also wait on are
      re-homed, not cancelled).

    Threading model: one event thread owns every socket (reads,
    parses, writes responses); [workers] Domains only execute jobs and
    hand finished work back through an event queue + wake pipe. Session
    state is therefore lock-free; scheduler state is guarded by one
    mutex. *)

(** Observability knobs. With {!obs_off} (the default config) the daemon
    runs the historical request path: no clock reads, no trace ids, zero
    minor-heap allocation beyond decoding, and byte-identical responses
    — the PR 4/5 discipline. Any enabled piece turns on per-request
    trace ids and the six per-stage spans (decode, queued, dedup_wait,
    cache_probe, run, encode) plus the end-to-end request record. *)
type obs = {
  log : Repro_obs.Log.t;  (** {!Repro_obs.Log.null} = silent. *)
  metrics : Repro_obs.Svc_metrics.t option;
      (** Counters + stage histograms, reported by [Stats]. *)
  spans : Repro_obs.Tracer.Ring.t option;
      (** Span ring behind [Trace_dump]; bounded, drop-oldest. *)
  slow_s : float;
      (** Requests at or above this many seconds count as slow and are
          logged at [Warn]. [infinity] = never. *)
}

val obs_off : obs

val obs_default :
  ?log:Repro_obs.Log.t -> ?slow_s:float -> ?trace_capacity:int -> unit -> obs
(** Metrics on, a fresh span ring ([trace_capacity] spans, default 4096;
    [0] disables tracing), slow threshold 0.25 s — what [repro serve]
    runs unless told otherwise. *)

type config = {
  socket_path : string;
  workers : int;      (** Worker domains executing jobs. *)
  cache : bool;       (** Master switch for the on-disk result cache. *)
  cache_dir : string;
  obs : obs;
}

val default_socket : unit -> string
(** [$REPRO_SOCKET] if set, else ["_repro_serve.sock"]. *)

val default_config : unit -> config
(** Default socket, {!Executor.default_jobs} workers, cache on in
    {!Cache.default_dir}, observability off ({!obs_off}). *)

type job_runner = Job.t -> (Repro_workloads.Harness.run, string) result
(** Tests inject counting/sleeping fakes; the default runs
    {!Job.run}. *)

val run : ?runner:job_runner -> config -> unit
(** Serve until a [Shutdown] request arrives. Blocks the calling
    thread; binds the socket (replacing a stale file, refusing a live
    one), ignores [SIGPIPE]. Raises [Failure] when the socket cannot be
    bound. *)

(** {2 Embedding} — used by the tests and the load-test harness. *)

type handle

val start : ?runner:job_runner -> config -> handle
(** {!run} on a background thread; returns once the socket accepts
    connections. *)

val stop : handle -> unit
(** Request shutdown over the socket and join the server thread. *)

(** {2 Client} — the connection helper the CLI, tests and bench use. *)

module Client : sig
  type t

  val connect : string -> t
  (** Raises [Unix.Unix_error] when nothing listens on the path. *)

  val set_timeout : t -> float -> unit
  (** Receive timeout in seconds ({!recv} then fails instead of
      blocking forever — the tests' safety net). *)

  val send : t -> Request.t -> unit

  val recv : t -> (Response.t, string) result
  (** Next response line; [Error] on EOF, timeout, or a line that does
      not decode. *)

  val close : t -> unit
end
