type batch = {
  batch_id : string;
  total : int;
  mutable completed : int;
  mutable measured : int;
  mutable cached : int;
  mutable deduped : int;
  mutable failed : int;
  mutable wall_s : float;
  mutable trace : int;
  mutable started_at : float;
}

type t = {
  id : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  batches : (string, batch) Hashtbl.t;
  on_send : (bytes:int -> t0:float -> dur:float -> unit) option;
  mutable closed : bool;
}

let create ?on_send ~id fd =
  {
    id;
    fd;
    buf = Buffer.create 1024;
    batches = Hashtbl.create 4;
    on_send;
    closed = false;
  }

let feed t chunk =
  Buffer.add_string t.buf chunk;
  let data = Buffer.contents t.buf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        let len = i - !start in
        let len = if len > 0 && data.[i - 1] = '\r' then len - 1 else len in
        lines := String.sub data !start len :: !lines;
        start := i + 1
      end)
    data;
  Buffer.clear t.buf;
  Buffer.add_substring t.buf data !start (String.length data - !start);
  List.rev !lines

let send t response =
  if not t.closed then begin
    let t0 =
      match t.on_send with Some _ -> Unix.gettimeofday () | None -> 0.
    in
    let line = Response.to_line response ^ "\n" in
    let dur =
      match t.on_send with Some _ -> Unix.gettimeofday () -. t0 | None -> 0.
    in
    let bytes = Bytes.unsafe_of_string line in
    let len = Bytes.length bytes in
    let rec write_all off =
      if off < len then begin
        let n = Unix.write t.fd bytes off (len - off) in
        write_all (off + n)
      end
    in
    (try write_all 0 with Unix.Unix_error _ | Sys_error _ -> t.closed <- true);
    match t.on_send with
    | Some hook when not t.closed -> hook ~bytes:len ~t0 ~dur
    | _ -> ()
  end

let begin_batch t ~id ~total =
  let batch =
    {
      batch_id = id;
      total;
      completed = 0;
      measured = 0;
      cached = 0;
      deduped = 0;
      failed = 0;
      wall_s = 0.;
      trace = 0;
      started_at = 0.;
    }
  in
  Hashtbl.replace t.batches id batch;
  batch

let record_done t batch (outcome : Response.outcome) =
  batch.completed <- batch.completed + 1;
  (if outcome.Response.cached then batch.cached <- batch.cached + 1
   else if outcome.Response.deduped then batch.deduped <- batch.deduped + 1
   else batch.measured <- batch.measured + 1);
  (match outcome.Response.result with
   | Error _ -> batch.failed <- batch.failed + 1
   | Ok _ -> ());
  batch.wall_s <- batch.wall_s +. outcome.Response.wall_s;
  let complete = batch.completed >= batch.total in
  if complete then Hashtbl.remove t.batches batch.batch_id;
  complete

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
