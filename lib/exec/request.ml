module W = Repro_workloads
module T = Repro_core.Technique
module J = Repro_obs.Json
module D = Repro_obs.Json.Decode

let schema_version = 2

(* [T.name] is a display name and collapses the prototype-on-CUDA
   configuration; the wire uses the CLI's parseable short names and
   spells that one variant explicitly so every [T.t] round-trips. *)
let technique_to_string = function
  | T.Cuda -> "cuda"
  | T.Concord -> "con"
  | T.Shared_oa -> "shard"
  | T.Coal -> "coal"
  | T.Type_pointer { mode = T.Prototype; on_cuda_alloc = false } -> "tp"
  | T.Type_pointer { mode = T.Hw_mmu; on_cuda_alloc = false } -> "tp-hw"
  | T.Type_pointer { mode = T.Hw_mmu; on_cuda_alloc = true } -> "tp/cuda"
  | T.Type_pointer { mode = T.Prototype; on_cuda_alloc = true } ->
    "tp-proto/cuda"

let technique_names = [ "cuda"; "con"; "shard"; "coal"; "tp"; "tp-hw"; "tp/cuda" ]

let technique_of_string s =
  match String.lowercase_ascii s with
  | "tp-proto/cuda" ->
    Ok (T.Type_pointer { mode = T.Prototype; on_cuda_alloc = true })
  | _ -> (
    match T.of_string s with
    | Ok t -> Ok t
    | Error _ ->
      Error
        (Printf.sprintf "unknown technique %S; valid techniques: %s" s
           (String.concat ", " technique_names)))

module Spec = struct
  type t = {
    workload : string;
    technique : string;
    alloc : string option;
    scale : float;
    seed : int;
    iterations : int option;
    chunk_objs : int option;
    pages : string option;
    intern : bool;
    intra : bool;
    prealloc_mb : int option;
  }

  (* One constant for every surface: a bare submit and a bare sweep are
     now the same job (schema v2; v1 defaulted an absent scale to 1.0
     while `repro sweep` ran 0.25). *)
  let default_scale = W.Workload.default_scale
  let default_seed = 42

  let make ?alloc ?(scale = default_scale) ?(seed = default_seed) ?iterations
      ?chunk_objs ?pages ?(intern = true) ?(intra = false) ?prealloc_mb
      ~workload ~technique () =
    (* "none" (the CLI's explicit default) and omission are the same run;
       canonicalize so the job key and cache agree — the [alloc]
       canonicalization below plays the same trick. *)
    let pages = match pages with Some "none" -> None | p -> p in
    { workload; technique; alloc; scale; seed; iterations; chunk_objs; pages;
      intern; intra; prealloc_mb }

  let of_job (job : Job.t) =
    let p = job.Job.params in
    {
      workload = Job.workload_name job;
      technique = technique_to_string job.Job.technique;
      alloc = Option.map Repro_core.Alloc_family.name p.W.Workload.alloc;
      scale = p.W.Workload.scale;
      seed = p.W.Workload.seed;
      iterations = p.W.Workload.iterations;
      chunk_objs = p.W.Workload.chunk_objs;
      pages = Option.map Repro_vm.Policy.name p.W.Workload.pages;
      intern = p.W.Workload.intern;
      intra = p.W.Workload.intra;
      prealloc_mb = p.W.Workload.prealloc_mb;
    }

  let alloc_of_string s =
    match Repro_core.Alloc_family.of_string s with
    | Ok fam -> Ok fam
    | Error msg -> Error msg

  let to_params t =
    match technique_of_string t.technique with
    | Error _ as e -> e
    | Ok technique -> (
      let alloc =
        match t.alloc with
        | None -> Ok None
        | Some s -> Result.map Option.some (alloc_of_string s)
      in
      match alloc with
      | Error _ as e -> e
      | Ok alloc -> (
        (* Naming the technique's own family explicitly is the same run as
           leaving it out; canonicalize to [None] so the job key (and so
           the result cache) agrees. *)
        let alloc =
          match alloc with
          | Some fam when Repro_core.Alloc_family.is_default technique fam ->
            None
          | a -> a
        in
        let pages =
          match t.pages with
          | None -> Ok None
          | Some s -> Repro_vm.Policy.parse s
        in
        match pages with
        | Error _ as e -> e
        | Ok pages ->
          Ok
            {
              (W.Workload.default_params technique) with
              W.Workload.alloc;
              scale = t.scale;
              seed = t.seed;
              iterations = t.iterations;
              chunk_objs = t.chunk_objs;
              pages;
              intern = t.intern;
              intra = t.intra;
              prealloc_mb = t.prealloc_mb;
            }))

  let resolve t =
    match W.Registry.find t.workload with
    | None ->
      Error
        (Printf.sprintf "unknown workload %S; valid workloads: %s" t.workload
           (String.concat ", "
              (List.map W.Registry.qualified_name W.Registry.all)))
    | Some w -> (
      match to_params t with
      | Error _ as e -> e
      | Ok params -> Ok (Job.make w params))

  let matrix ~workloads ~techniques ~base =
    List.concat_map
      (fun workload ->
        List.map
          (fun technique -> { base with workload; technique })
          techniques)
      workloads

  let to_json t =
    J.Obj
      ([
         ("workload", J.String t.workload);
         ("technique", J.String t.technique);
       ]
      @ (match t.alloc with
         | Some a -> [ ("alloc", J.String a) ]
         | None -> [])
      @ [ ("scale", J.Float t.scale); ("seed", J.Int t.seed) ]
      @ (match t.iterations with
         | Some i -> [ ("iterations", J.Int i) ]
         | None -> [])
      @ (match t.chunk_objs with
         | Some c -> [ ("chunk_objs", J.Int c) ]
         | None -> [])
      @ (match t.pages with
         | Some p -> [ ("pages", J.String p) ]
         | None -> [])
      (* Engine fields ride the wire only off their defaults, so default
         jobs encode exactly as they did under schema v1. *)
      @ (if t.intern then [] else [ ("intern", J.Bool false) ])
      @ (if t.intra then [ ("intra", J.Bool true) ] else [])
      @
      match t.prealloc_mb with
      | Some mb -> [ ("prealloc_mb", J.Int mb) ]
      | None -> [])

  (* Validate at decode time so a bad family reports its JSON path
     ("jobs[0].alloc: expected one of ..."), not a late resolve error. *)
  let alloc_decoder j =
    let s = D.string j in
    match Repro_core.Alloc_family.of_string s with
    | Ok _ -> s
    | Error _ ->
      D.fail
        (Printf.sprintf "expected one of %s, got %S"
           (String.concat ", " Repro_core.Alloc_family.all_names)
           s)

  let pages_decoder j =
    let s = D.string j in
    match Repro_vm.Policy.parse s with
    | Ok _ -> s
    | Error _ ->
      D.fail
        (Printf.sprintf "expected one of %s, got %S"
           (String.concat ", " Repro_vm.Policy.cli_names)
           s)

  let decoder j =
    {
      workload = D.field "workload" D.string j;
      technique = D.field "technique" D.string j;
      alloc = D.field_opt "alloc" alloc_decoder j;
      scale = D.field_default "scale" D.float default_scale j;
      seed = D.field_default "seed" D.int default_seed j;
      iterations = D.field_opt "iterations" D.int j;
      chunk_objs = D.field_opt "chunk_objs" D.int j;
      pages =
        (match D.field_opt "pages" pages_decoder j with
         | Some "none" -> None
         | p -> p);
      intern = D.field_default "intern" D.bool true j;
      intra = D.field_default "intra" D.bool false j;
      prealloc_mb = D.field_opt "prealloc_mb" D.int j;
    }

  let equal a b = a = b

  let label t =
    let extras =
      (match t.alloc with Some a -> [ "alloc=" ^ a ] | None -> [])
      @ (match t.pages with Some p -> [ "pages=" ^ p ] | None -> [])
      @ (if t.intern then [] else [ "legacy-engine" ])
      @ if t.intra then [ "intra" ] else []
    in
    match extras with
    | [] -> Printf.sprintf "%s [%s]" t.workload t.technique
    | es ->
      Printf.sprintf "%s [%s %s]" t.workload t.technique (String.concat " " es)
end

type t =
  | Submit of { id : string; cache : bool; specs : Spec.t list }
  | Query of Spec.t
  | Invalidate of Spec.t option
  | Stats
  | Health
  | Trace_dump
  | Ping
  | Shutdown

let envelope typ fields = J.Obj (("v", J.Int schema_version) :: ("type", J.String typ) :: fields)

let to_json = function
  | Submit { id; cache; specs } ->
    envelope "submit"
      [
        ("id", J.String id);
        ("cache", J.Bool cache);
        ("jobs", J.List (List.map Spec.to_json specs));
      ]
  | Query spec -> envelope "query" [ ("job", Spec.to_json spec) ]
  | Invalidate (Some spec) -> envelope "invalidate" [ ("job", Spec.to_json spec) ]
  | Invalidate None -> envelope "invalidate" []
  | Stats -> envelope "stats" []
  | Health -> envelope "health" []
  | Trace_dump -> envelope "trace_dump" []
  | Ping -> envelope "ping" []
  | Shutdown -> envelope "shutdown" []

let check_version j =
  let v = D.field "v" D.int j in
  if v <> schema_version then
    D.field "v"
      (fun _ ->
        D.fail
          (Printf.sprintf "unsupported schema version %d (this server speaks %d)"
             v schema_version))
      j

let decoder j =
  check_version j;
  match D.field "type" D.string j with
  | "submit" ->
    Submit
      {
        id = D.field "id" D.string j;
        cache = D.field_default "cache" D.bool true j;
        specs = D.field "jobs" (D.list Spec.decoder) j;
      }
  | "query" -> Query (D.field "job" Spec.decoder j)
  | "invalidate" -> (
    match D.field_opt "job" Spec.decoder j with
    | Some spec -> Invalidate (Some spec)
    | None -> Invalidate None)
  | "stats" -> Stats
  | "health" -> Health
  | "trace_dump" -> Trace_dump
  | "ping" -> Ping
  | "shutdown" -> Shutdown
  | other ->
    D.field "type"
      (fun _ -> D.fail (Printf.sprintf "unknown request type %S" other))
      j

let of_json j = D.run decoder j

let to_line t = J.to_string (to_json t)

let of_line line =
  match J.of_string line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> of_json j
