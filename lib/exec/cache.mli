(** Opt-in on-disk result cache, one file per job keyed by {!Job.hash}.

    Lets [repro figure 6] followed by [repro figure 7] measure once: both
    draw from the same sweep, and the second invocation replays it from
    disk. Strictly best-effort — any I/O or decode problem reads as a
    miss and never fails the sweep.

    Invalidation rule: the file name digests the full job key (workload,
    technique variant, scale, seed, iterations, chunk size) plus
    [Job.schema_version], which is bumped whenever the stored record
    changes shape. Changing any measurement parameter therefore misses
    naturally; stale entries are only ever orphaned, never misread. The
    stored key is re-checked on lookup to guard against digest
    collisions. Jobs carrying a custom GPU config are never cached
    ({!Job.cacheable}). *)

val default_dir : unit -> string
(** [$REPRO_CACHE_DIR] if set, else ["_repro_cache"] under the current
    directory. *)

val lookup : dir:string -> Job.t -> Repro_workloads.Harness.run option
(** A torn, truncated or otherwise undecodable file reads as a miss. *)

val store : dir:string -> Job.t -> Repro_workloads.Harness.run -> unit
(** Atomic (write-to-temp then rename): a concurrent {!lookup} sees the
    whole entry or nothing, and concurrent writers of the same job are
    harmless (last rename wins). A failed write cleans up its temp
    file. *)

val invalidate : dir:string -> Job.t -> bool
(** Drop one job's entry; [true] if a file was removed. *)

val clear : dir:string -> int
(** Delete every cache entry in [dir] (plus orphaned temp files);
    returns how many entries were removed. *)
