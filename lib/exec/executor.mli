(** The sweep executor: takes a job list, answers an outcome per job in
    the same order, regardless of how jobs were scheduled or where their
    results came from.

    Decouples the measurement surface (what to run) from resource
    scheduling (how to run it), the same split DynaSOAr and Zorua apply
    between programming model and resources. Guarantees:

    - {b Deterministic ordering}: [List.nth (run jobs) i] always
      describes [List.nth jobs i].
    - {b Serial reproducibility}: [~jobs:1] executes on the calling
      domain in list order — bit-for-bit the historical serial sweep.
    - {b Failure isolation}: a raising job becomes [Error] in its own
      outcome; siblings are unaffected.
    - {b Caching}: with [~cache:true], hits are served from disk and
      fresh results written back ({!Cache}). *)

type outcome = {
  job : Job.t;
  result : (Repro_workloads.Harness.run, string) result;
      (** [Error] carries the exception text of the raising job. *)
  wall_s : float;  (** Wall-clock seconds this job took (0 on a hit). *)
  cached : bool;   (** Served from the on-disk cache. *)
}

val default_jobs : unit -> int
(** Worker count used by the CLI when [-j] is not given:
    [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int ->
  ?cache:bool ->
  ?cache_dir:string ->
  ?progress:(Job.t -> unit) ->
  Job.t list ->
  outcome list
(** [run jobs] with [?jobs] workers (default 1, i.e. serial) and the
    cache off by default. [progress] fires as each job starts measuring
    (not for cache hits); with [jobs > 1] it may be called from worker
    domains concurrently, so keep it to an atomic write such as a single
    [eprintf]. *)

val timed : Job.t -> (Repro_workloads.Harness.run, string) result * float
(** Run one job on the calling domain, catching its exception text, and
    measure its wall time — the single measurement step both {!run} and
    the serve daemon's workers ({!Server}) are built on. *)

val measure :
  ?span:(stage:string -> t0:float -> dur:float -> unit) ->
  ?runner:(Job.t -> (Repro_workloads.Harness.run, string) result) ->
  cache:bool ->
  dir:string ->
  Job.t ->
  outcome
(** One job through the full cache protocol: serve a hit if [cache],
    else measure ([runner] defaults to {!timed}'s body; tests inject
    fakes) and write the result back. This is the daemon's per-job step;
    {!run} keeps its batch shape (hits served up front, misses pooled)
    for the CLI sweep.

    [span] is the daemon's tracing hook: it fires with stage
    ["cache_probe"] (when [cache]) and ["run"] (on a miss), [t0] in
    [Unix.gettimeofday] time. When absent, no clocks are read beyond the
    historical wall-time measurement and nothing is allocated. *)

val ok_exn : outcome -> Repro_workloads.Harness.run
(** The run, or [Failure] with the job label and captured error. *)

val total_wall_s : outcome list -> float

val errors : outcome list -> (Job.t * string) list
