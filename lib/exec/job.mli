(** A first-class unit of measurement work: one workload built and run
    under one technique with fixed parameters.

    Jobs are what the {!Executor} schedules and what the {!Cache} is
    keyed by. Because the simulator threads all state explicitly
    (runtime, device, heap are built fresh by [Workload.build]), jobs are
    independent and safe to run on separate domains. *)

type t = private {
  workload : Repro_workloads.Workload.t;
  technique : Repro_core.Technique.t;
  params : Repro_workloads.Workload.params;
}

val make : Repro_workloads.Workload.t -> Repro_workloads.Workload.params -> t
(** The technique is taken from [params.technique]. *)

val matrix :
  techniques:Repro_core.Technique.t list ->
  params:Repro_workloads.Workload.params ->
  Repro_workloads.Workload.t list ->
  t list
(** Workload-major cross product: all techniques of the first workload,
    then all of the second, ... — the canonical sweep order. *)

val workload_name : t -> string
(** Qualified ["suite/name"]. *)

val column_name : t -> string
(** The measured column's display name: the technique name, or the
    combined name when [params.alloc] overrides the allocator family
    (see {!Repro_core.Alloc_family.column_name}). *)

val label : t -> string
(** ["suite/name [COLUMN]"] for progress lines. *)

val key : t -> string
(** A stable, human-readable identity: workload, technique (all tag
    modes distinguished), allocator-family override, scale, seed,
    iteration override, chunk size, and whether a custom GPU config is
    attached. Equal keys mean the measurement is reproducibly
    identical. *)

val hash : t -> string
(** Hex digest of {!key} plus the cache schema version; the on-disk
    cache file name. *)

val cacheable : t -> bool
(** False when [params.config] carries a custom GPU configuration
    (configs have no stable serialization, so such jobs are never
    cached), when a sanitizer is attached, or when telemetry is on
    (window rows and ring dumps are too large to cache usefully). *)

val run : t -> Repro_workloads.Harness.run
(** Build and measure. May raise whatever the workload raises. *)

val equal : t -> t -> bool
(** Key equality. *)
