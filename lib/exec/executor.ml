module W = Repro_workloads

type outcome = {
  job : Job.t;
  result : (W.Harness.run, string) result;
  wall_s : float;
  cached : bool;
}

let default_jobs () = Pool.available_workers ()

let timed job =
  let t0 = Unix.gettimeofday () in
  let result = try Ok (Job.run job) with e -> Error (Printexc.to_string e) in
  (result, Unix.gettimeofday () -. t0)

let measure ?span ?runner ~cache ~dir job =
  (* [span] timestamps only when present, so the un-instrumented path is
     exactly the historical one (no extra clock reads, no allocation). *)
  let hit =
    if not cache then None
    else
      match span with
      | None -> Cache.lookup ~dir job
      | Some emit ->
        let t0 = Unix.gettimeofday () in
        let hit = Cache.lookup ~dir job in
        emit ~stage:"cache_probe" ~t0 ~dur:(Unix.gettimeofday () -. t0);
        hit
  in
  match hit with
  | Some run -> { job; result = Ok run; wall_s = 0.; cached = true }
  | None ->
    let t0 = match span with Some _ -> Unix.gettimeofday () | None -> 0. in
    let result, wall_s =
      match runner with
      | None -> timed job
      | Some f ->
        let r0 = Unix.gettimeofday () in
        let result = try f job with e -> Error (Printexc.to_string e) in
        (result, Unix.gettimeofday () -. r0)
    in
    (match span with
     | None -> ()
     | Some emit -> emit ~stage:"run" ~t0 ~dur:wall_s);
    (if cache then
       match result with
       | Ok run -> Cache.store ~dir job run
       | Error _ -> ());
    { job; result; wall_s; cached = false }

let run ?(jobs = 1) ?(cache = false) ?cache_dir ?(progress = fun _ -> ())
    job_list =
  let dir =
    match cache_dir with Some d -> d | None -> Cache.default_dir ()
  in
  let all = Array.of_list job_list in
  (* Serve hits up front (cheap, serial), then pool only the misses. *)
  let hits =
    Array.map
      (fun job -> if cache then Cache.lookup ~dir job else None)
      all
  in
  let miss_idx =
    Array.to_list all
    |> List.mapi (fun i _ -> i)
    |> List.filter (fun i -> hits.(i) = None)
    |> Array.of_list
  in
  let measure i =
    let job = all.(i) in
    progress job;
    timed job
  in
  let measured = Pool.map ~jobs ~f:measure miss_idx in
  let fresh = Hashtbl.create (Array.length miss_idx) in
  Array.iteri
    (fun k i ->
      let result, wall_s =
        match measured.(k) with
        | Ok rw -> rw
        (* [measure] already catches; this arm only fires if the pool
           machinery itself failed. *)
        | Error e -> (Error (Printexc.to_string e), 0.)
      in
      Hashtbl.replace fresh i (result, wall_s))
    miss_idx;
  (* Write-back serially from the calling domain. *)
  if cache then
    Hashtbl.iter
      (fun i (result, _) ->
        match result with
        | Ok run -> Cache.store ~dir all.(i) run
        | Error _ -> ())
      fresh;
  Array.to_list
    (Array.mapi
       (fun i job ->
         match hits.(i) with
         | Some run -> { job; result = Ok run; wall_s = 0.; cached = true }
         | None ->
           let result, wall_s = Hashtbl.find fresh i in
           { job; result; wall_s; cached = false })
       all)

let ok_exn o =
  match o.result with
  | Ok run -> run
  | Error msg ->
    failwith (Printf.sprintf "job %s failed: %s" (Job.label o.job) msg)

let total_wall_s outcomes =
  List.fold_left (fun acc o -> acc +. o.wall_s) 0. outcomes

let errors outcomes =
  List.filter_map
    (fun o ->
      match o.result with Ok _ -> None | Error m -> Some (o.job, m))
    outcomes
