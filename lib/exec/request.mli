(** The versioned request surface of the serve protocol — and the single
    place job descriptions are constructed from names and numbers.

    Every way of asking this repo to measure something — the [repro]
    subcommands, the serve daemon's clients, the load-test harness —
    goes through {!Spec}: a plain-data job description (workload and
    technique by name, scale, seed, overrides) that resolves to a
    {!Job.t} with a uniform error message for unknown names. The wire
    protocol then wraps specs in an explicit envelope carrying
    {!schema_version}; decoding rejects other versions up front, and a
    malformed message reports the offending field by path (see
    {!Repro_obs.Json.Decode}).

    Wire form: one JSON object per line (LF-terminated, no newlines
    inside). Requests carry [{"v": 2, "type": ...}]; see PROTOCOL.md for
    the full message reference. (v2 added the engine fields [intern]/
    [intra]/[prealloc_mb] and aligned the absent-[scale] default with
    [repro sweep]'s 0.25 — under v1 a bare submit silently ran scale
    1.0.) *)

val schema_version : int
(** The protocol generation this build speaks. Bump on any change to the
    request or response shape that an old peer could misread. *)

(** {2 Technique names}

    The wire spells techniques with the CLI's short names ([cuda], [con],
    [shard], [coal], [tp], [tp-hw], [tp/cuda]); every constructible
    {!Repro_core.Technique.t} round-trips. *)

val technique_names : string list
(** The seven spellings above, for error messages and docs. *)

val technique_to_string : Repro_core.Technique.t -> string

val technique_of_string : string -> (Repro_core.Technique.t, string) result
(** Accepts everything {!Repro_core.Technique.of_string} does. *)

module Spec : sig
  type t = {
    workload : string;   (** Name as [Registry.find] accepts it. *)
    technique : string;  (** Short name as {!technique_of_string} accepts it. *)
    alloc : string option;
        (** Allocator-family name as {!Repro_core.Alloc_family.of_string}
            accepts it; [None] = the technique's default family. *)
    scale : float;
    seed : int;
    iterations : int option;
    chunk_objs : int option;
    pages : string option;
        (** Page-size policy name as {!Repro_vm.Policy.parse} accepts it;
            [None] = no address translation. Never the string ["none"] —
            constructors canonicalize it away so the job key and cache
            agree with the omitted form. *)
    intern : bool;
        (** Interned emission engine; [false] selects the legacy
            baseline engine. Byte-identical results either way. *)
    intra : bool;
        (** Intra-launch sharded parallel timing (a distinct,
            deterministic timing model). *)
    prealloc_mb : int option;
        (** Heap pre-sizing hint (MiB); results-neutral and excluded
            from {!Job.key}. *)
  }

  val default_scale : float
  (** = {!Repro_workloads.Workload.default_scale} (0.25) — the same
      constant [repro sweep] uses, so a bare submit and a bare sweep are
      the same run. *)

  val make :
    ?alloc:string ->
    ?scale:float ->
    ?seed:int ->
    ?iterations:int ->
    ?chunk_objs:int ->
    ?pages:string ->
    ?intern:bool ->
    ?intra:bool ->
    ?prealloc_mb:int ->
    workload:string ->
    technique:string ->
    unit ->
    t
  (** Defaults: [scale] {!default_scale}, [seed 42], [intern true],
      [intra false], no overrides. *)

  val of_job : Job.t -> t
  (** The spec that {!resolve}s back to an equal job (same {!Job.key}).
      Jobs carrying a custom GPU config, sanitizer, or telemetry lose
      those — specs describe cacheable measurement jobs only. *)

  val to_params :
    t -> (Repro_workloads.Workload.params, string) result
  (** Resolve the technique and allocator-family names and build
      measurement params (no sanitizer, no telemetry). [Error] names the
      bad field. *)

  val resolve : t -> (Job.t, string) result
  (** Resolve both names. [Error] reads like ["unknown workload \"GOLF\";
      valid workloads: ..."], matching the CLI's wording. *)

  val matrix :
    workloads:string list -> techniques:string list -> base:t -> t list
  (** Workload-major cross product, [base] supplying the numbers. *)

  val to_json : t -> Repro_obs.Json.t

  val decoder : t Repro_obs.Json.Decode.decoder
  (** Requires [workload] and [technique]; the numeric fields default as
      in {!make}. *)

  val equal : t -> t -> bool

  val label : t -> string
  (** ["workload [technique]"], for progress lines. *)
end

(** {2 Requests} *)

type t =
  | Submit of { id : string; cache : bool; specs : Spec.t list }
      (** Run a batch. [id] is the client's correlation handle, echoed on
          every response about this batch. [cache] asks the daemon to
          serve/store the shared on-disk cache for these jobs. *)
  | Query of Spec.t
      (** Probe the result cache without scheduling anything. *)
  | Invalidate of Spec.t option
      (** Drop one cached entry, or with [None] the whole cache. *)
  | Stats
      (** Scheduler counters (dedup hits, queue depth, ...) — and, when
          the daemon runs with metrics on, the {!Repro_obs.Svc_metrics}
          snapshot and per-stage latency histograms. *)
  | Health
      (** One-line liveness probe: uptime, schema version, worker count,
          queue depths. Never schedules work. *)
  | Trace_dump
      (** The daemon's span ring rendered as Chrome trace-event JSON
          (Perfetto-loadable); an [Error] when tracing is off. *)
  | Ping
  | Shutdown

val to_json : t -> Repro_obs.Json.t

val of_json : Repro_obs.Json.t -> (t, string) result
(** Checks the envelope ([v] must equal {!schema_version}, [type] must
    be known) before the payload; errors name the offending field. *)

val to_line : t -> string
(** Compact one-line JSON, newline {e not} included. *)

val of_line : string -> (t, string) result
