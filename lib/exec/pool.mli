(** Alias of {!Repro_util.Pool} (the pool moved below the gpu library so
    intra-launch timing can shard over the same Domain pool). *)

val available_workers : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> f:('a -> 'b) -> 'a array -> ('b, exn) result array
(** See {!Repro_util.Pool.map}. *)
