(** The cross-technique check driver behind [repro check].

    Runs each workload under every technique with a {!Repro_san.Checker}
    attached, through the same {!Executor} that powers measurement sweeps
    (cache off — the product is the mutable checker, not the timing).
    Per workload it then

    - aggregates the shadow-heap violation counts each technique's
      checker accumulated, and
    - diffs every technique's dispatch-oracle digest stream against the
      CUDA reference: all five techniques must resolve the identical
      per-warp, per-call-site targets over the identical objects. On the
      first mismatch the pair is re-run serially with the oracle
      capturing that dispatch, recovering warp/lane/address context.

    An optional seeded {!Repro_san.Mutation} turns the run into a
    sanitizer self-test: the corresponding detector must fire. *)

val reference : Repro_core.Technique.t
(** The dispatch oracle's ground truth: {!Repro_core.Technique.Cuda}. *)

type divergence = {
  index : int option;
      (** Index of the first diverging dispatch ([None] when the streams
          have different lengths). *)
  summary : string;
  context : string option;
      (** First diverging lane with object/address detail, recovered by
          the capture re-run; [None] if the re-run could not capture. *)
}

type technique_report = {
  technique : Repro_core.Technique.t;
  error : string option;  (** The run raised (workload failure). *)
  counts : int array;     (** By {!Repro_san.Violation.kind_index}. *)
  samples : Repro_san.Violation.t list;
  dispatches : int;       (** Warp dispatches the oracle recorded. *)
  divergence : divergence option;
}

type report = {
  workload : string;
  mutation : Repro_san.Mutation.t option;
  techniques : technique_report list;
}

val technique_clean : technique_report -> bool
(** No error, zero violations, no divergence. *)

val clean : report -> bool

val all_clean : report list -> bool

val run :
  ?jobs:int ->
  ?mutation:Repro_san.Mutation.t ->
  ?techniques:Repro_core.Technique.t list ->
  params:Repro_workloads.Workload.params ->
  Repro_workloads.Workload.t list ->
  report list
(** [run ~params workloads] checks each workload under [techniques]
    (default {!Repro_core.Technique.all_paper}; the CUDA reference is
    added if missing). [params.technique] and [params.san] are
    overridden per job. [jobs] sets the executor's worker count.
    Reports are in [workloads] order, techniques in [techniques] order. *)

val pp_report : Format.formatter -> report -> unit
