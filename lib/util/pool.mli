(** A bounded worker pool over OCaml 5 domains with deterministic result
    ordering.

    Work items are pulled from a shared atomic counter, so completion
    order is arbitrary, but every result is written back to its input
    index: the output array always lines up with the input array
    regardless of scheduling. One item raising is captured as [Error]
    in its own slot and never disturbs its siblings. *)

val available_workers : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : jobs:int -> f:('a -> 'b) -> 'a array -> ('b, exn) result array
(** [map ~jobs ~f inputs] applies [f] to every input on at most [jobs]
    domains (clamped to [1 .. length inputs]). With [jobs = 1] everything
    runs sequentially on the calling domain — bit-for-bit the behaviour
    of [Array.map f inputs], with exceptions captured per element. *)
