let available_workers () = Domain.recommended_domain_count ()

let guarded f x = try Ok (f x) with e -> Error e

let map ~jobs ~f inputs =
  let n = Array.length inputs in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.map (guarded f) inputs
  else begin
    let results = Array.make n (Error Exit) in
    let next = Atomic.make 0 in
    (* Distinct domains only ever write distinct slots, so the result
       array needs no lock; the joins publish the writes. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- guarded f inputs.(i);
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    results
  end
