module W = Repro_workloads
module T = Repro_core.Technique
module Series = Repro_report.Series

let chunk_sizes = [ 128; 512; 2048; 8192; 32768; 131072 ]

type point = {
  workload : string;
  chunk_objs : int;
  perf_vs_cuda : float;
  fragmentation : float;
}

let run ?(scale = Sweep.default_scale) ?(j = 1) ?(cache = false) ?cache_dir
    ?(workloads = W.Registry.all) () =
  (* Per workload: one CUDA reference job plus one COAL job per chunk
     size, all independent — a natural fit for the executor. *)
  let jobs =
    List.concat_map
      (fun w ->
        let params technique chunk_objs =
          { (W.Workload.default_params technique) with W.Workload.scale; chunk_objs }
        in
        Repro_exec.Job.make w (params T.Cuda None)
        :: List.map
             (fun chunk -> Repro_exec.Job.make w (params T.Coal (Some chunk)))
             chunk_sizes)
      workloads
  in
  let outcomes = Repro_exec.Executor.run ~jobs:j ~cache ?cache_dir jobs in
  let per_workload = 1 + List.length chunk_sizes in
  List.concat
    (List.mapi
       (fun wi w ->
         let result k =
           Repro_exec.Executor.ok_exn
             (List.nth outcomes ((wi * per_workload) + k))
         in
         let cuda = result 0 in
         List.mapi
           (fun ci chunk ->
             let coal = result (ci + 1) in
             if coal.W.Harness.checksum <> cuda.W.Harness.checksum then
               failwith ("Fig10: functional mismatch on " ^ coal.W.Harness.workload);
             {
               workload = Figview.short_group (W.Registry.qualified_name w);
               chunk_objs = chunk;
               perf_vs_cuda = cuda.W.Harness.cycles /. coal.W.Harness.cycles;
               fragmentation =
                 Repro_core.Allocator.external_fragmentation coal.W.Harness.alloc_stats;
             })
           chunk_sizes)
       workloads)

let chunk_label c = if c >= 1024 then Printf.sprintf "%dK" (c / 1024) else string_of_int c

let points_of select ps =
  List.map
    (fun p ->
      { Series.group = p.workload; series = chunk_label p.chunk_objs; value = select p })
    ps

let series_perf ps =
  Series.make ~name:"fig10a"
    ~title:"Figure 10a: COAL performance vs CUDA across initial chunk sizes (objects)"
    (points_of (fun p -> p.perf_vs_cuda) ps)

let series_frag ps =
  Series.make ~name:"fig10b"
    ~title:"Figure 10b: SharedOA external fragmentation across initial chunk sizes"
    ~aggregate:"AVG"
    (Series.mean_row ~label:"AVG" (points_of (fun p -> p.fragmentation) ps))

let render points =
  Figview.render_table (series_perf points)
  ^ "\n"
  ^ Figview.render_table (series_frag points)

let csv points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "workload,chunk_objs,perf_vs_cuda,fragmentation\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%f,%f\n" p.workload p.chunk_objs p.perf_vs_cuda
           p.fragmentation))
    points;
  Buffer.contents buf
