module W = Repro_workloads
module Series = Repro_report.Series
module Metric = Repro_obs.Metric

let points sweep =
  Figview.metric_points sweep (fun r ->
      Metric.to_float Metric.load_transactions r.W.Harness.stats)
  |> Series.normalize_to ~baseline:"SHARD"
  |> Series.geomean_row ~label:"GM"

let series sweep =
  Series.make ~name:"fig8"
    ~title:
      "Figure 8: global load transactions normalized to SharedOA (lower is \
       better)"
    ~aggregate:"GM" (points sweep)

let render sweep = Figview.render_table (series sweep)

let csv sweep = Series.csv (series sweep)
