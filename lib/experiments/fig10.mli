(** Figure 10: sensitivity to SharedOA's initial chunk size.

    (a) COAL performance normalized to CUDA as the initial region size
    sweeps from small to large (paper: 4 K → 4 M objects, stable except
    GEN's jump); (b) SharedOA external fragmentation over the same sweep
    (paper: 17 % → 27 %, growing with chunk size). Our sweep uses the
    same 4× steps over scaled counts. *)

val chunk_sizes : int list
(** The swept initial chunk sizes, in objects (4x steps, scaled
    counterparts of the paper's 4K–4M). *)

type point = {
  workload : string;
  chunk_objs : int;
  perf_vs_cuda : float;       (** COAL cycles⁻¹ relative to CUDA. *)
  fragmentation : float;      (** SharedOA external fragmentation, [0,1]. *)
}

val run :
  ?scale:float -> ?j:int -> ?cache:bool -> ?cache_dir:string ->
  ?workloads:Repro_workloads.Workload.t list -> unit -> point list
(** [j]/[cache] are threaded to {!Repro_exec.Executor.run}; defaults
    (serial, no cache) reproduce the historical behaviour exactly. *)

val series_perf : point list -> Repro_report.Series.t
(** 10a as a series: group = workload, series = chunk-size label. *)

val series_frag : point list -> Repro_report.Series.t
(** 10b likewise, with an "AVG" mean row appended. *)

val render : point list -> string

val csv : point list -> string
