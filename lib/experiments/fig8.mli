(** Figure 8: global load transactions normalized to SharedOA (paper GM:
    CUDA 1.00, Concord 0.82, COAL 0.86, TypePointer 0.81). *)

val points : Sweep.t -> Repro_report.Series.point list

val series : Sweep.t -> Repro_report.Series.t
(** {!points} with the figure's name/title/aggregate attached. *)

val render : Sweep.t -> string

val csv : Sweep.t -> string
