module W = Repro_workloads
module T = Repro_core.Technique
module Series = Repro_report.Series

type point = {
  variant : string;
  n_objects : int;
  n_types : int;
  cycles : float;
  norm_time : float;
}

let object_counts = [ 32_768; 65_536; 131_072; 262_144; 524_288; 1_048_576 ]

let type_counts = [ 1; 2; 4; 8; 16; 32 ]

let variants =
  [ ("BRANCH", W.Ubench.Branch);
    ("CUDA", W.Ubench.Technique T.Cuda);
    ("COAL", W.Ubench.Technique T.Coal);
    ("TP", W.Ubench.Technique T.type_pointer);
    ("DYNA", W.Ubench.Column (T.Cuda, Repro_core.Alloc_family.Dyna_soa)) ]

let scaled scale n = max 1024 (int_of_float (float_of_int n *. scale))

let sweep ?(j = 1) ~configs () =
  (* configs: (n_objects, n_types) list; normalize to the first BRANCH.
     The ubench cells don't go through Workload.params, so they use the
     generic pool directly rather than the Job layer; order is preserved
     by construction. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun (n_objects, n_types) ->
           List.map
             (fun (name, variant) -> (name, variant, n_objects, n_types))
             variants)
         configs)
  in
  let raw =
    Repro_exec.Pool.map ~jobs:j
      ~f:(fun (name, variant, n_objects, n_types) ->
        let cycles, _result = W.Ubench.run ~n_objects ~n_types variant in
        (name, n_objects, n_types, cycles))
      cells
    |> Array.to_list
    |> List.map (function Ok cell -> cell | Error e -> raise e)
  in
  let base =
    match raw with
    | ("BRANCH", _, _, cycles) :: _ -> cycles
    | _ -> invalid_arg "Fig12.sweep: BRANCH must come first"
  in
  List.map
    (fun (variant, n_objects, n_types, cycles) ->
      { variant; n_objects; n_types; cycles; norm_time = cycles /. base })
    raw

let sweep_for_test ~configs = sweep ~configs ()

let run_object_sweep ?(scale = 1.0) ?j () =
  sweep ?j ~configs:(List.map (fun n -> (scaled scale n, 4)) object_counts) ()

let run_type_sweep ?(scale = 1.0) ?j () =
  let n_objects = scaled scale 524_288 in
  sweep ?j ~configs:(List.map (fun t -> (n_objects, t)) type_counts) ()

let series_of ~name ~title ~group_label ~x_of points =
  Series.make ~name ~title ~group_label
    (List.map
       (fun p ->
         {
           Series.group = string_of_int (x_of p);
           series = p.variant;
           value = p.norm_time;
         })
       points)

let object_series points =
  series_of ~name:"fig12a"
    ~title:
      "Figure 12a: execution time normalized to BRANCH at the smallest size \
       (4 types; object scaling)"
    ~group_label:"objects" ~x_of:(fun p -> p.n_objects) points

let type_series points =
  series_of ~name:"fig12b"
    ~title:
      "Figure 12b: execution time normalized to BRANCH with 1 type (fixed \
       objects; type scaling)"
    ~group_label:"types" ~x_of:(fun p -> p.n_types) points

let render_object_sweep points = Figview.render_table (object_series points)

let render_type_sweep points = Figview.render_table (type_series points)

let csv points =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "variant,n_objects,n_types,cycles,norm_time\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%f,%f\n" p.variant p.n_objects p.n_types p.cycles
           p.norm_time))
    points;
  Buffer.contents buf
