module W = Repro_workloads
module T = Repro_core.Technique
module R = Repro_core
module Table = Repro_report.Table

type row = {
  name : string;
  baseline_cycles : float;
  variant_cycles : float;
  delta : float;
}

let make_row name baseline_cycles variant_cycles =
  { name; baseline_cycles; variant_cycles;
    delta = (variant_cycles /. baseline_cycles) -. 1. }

let tp_prototype_vs_hw ?(scale = Sweep.default_scale) ?(j = 1)
    ?(cache = false) ?cache_dir () =
  let params =
    { (W.Workload.default_params T.type_pointer_hw) with W.Workload.scale }
  in
  let jobs =
    Repro_exec.Job.matrix ~techniques:[ T.type_pointer_hw; T.type_pointer ]
      ~params W.Registry.all
  in
  let outcomes = Repro_exec.Executor.run ~jobs:j ~cache ?cache_dir jobs in
  List.mapi
    (fun i w ->
      let hw = Repro_exec.Executor.ok_exn (List.nth outcomes (2 * i)) in
      let proto = Repro_exec.Executor.ok_exn (List.nth outcomes ((2 * i) + 1)) in
      if hw.W.Harness.checksum <> proto.W.Harness.checksum then
        failwith ("Ablation: functional mismatch on " ^ hw.W.Harness.workload);
      make_row
        (Figview.short_group (W.Registry.qualified_name w))
        hw.W.Harness.cycles proto.W.Harness.cycles)
    W.Registry.all

(* The padded-index encoding costs an extra multiply at dispatch; model it
   by running the ubench runtime under each vtable-space encoding. The
   cycle difference is tiny by design (Sec. 6.2) — the point of the
   ablation is to show it stays tiny. *)
let tp_encoding ?(n_objects = 65_536) ?(n_types = 8) () =
  let run encoding =
    let rt = R.Runtime.create ~vt_encoding:encoding ~technique:T.type_pointer_hw () in
    let add_impl (env : R.Env.t) objs =
      let v = R.Env.field_load env ~objs ~field:0 in
      R.Env.compute env;
      R.Env.field_store env ~objs ~field:0 (Array.map (fun x -> x + 1) v)
    in
    let types =
      Array.init n_types (fun k ->
          let impl =
            R.Runtime.register_impl rt ~name:(Printf.sprintf "inc%d" k) add_impl
          in
          R.Runtime.define_type rt ~name:(Printf.sprintf "T%d" k) ~field_words:1
            ~slots:[| impl |] ())
    in
    let ptrs = Array.init n_objects (fun i -> R.Runtime.new_obj rt types.(i mod n_types)) in
    let table =
      R.Garray.alloc ~space:(R.Runtime.address_space rt) ~name:"ptrs" ~len:n_objects
    in
    let heap = R.Runtime.heap rt in
    Array.iteri (fun i p -> R.Garray.set table heap i p) ptrs;
    R.Runtime.reset_stats rt;
    for _ = 1 to 3 do
      R.Runtime.launch rt ~n_threads:n_objects (fun env ->
          let tids = Repro_gpu.Warp_ctx.tids env.R.Env.ctx in
          let objs = R.Garray.load table env.R.Env.ctx ~idxs:tids in
          env.R.Env.vcall env ~objs ~slot:0)
    done;
    R.Runtime.cycles rt
  in
  let byte_offset = run Repro_core.Vtable_space.Byte_offset in
  let padded = run (Repro_core.Vtable_space.Padded_index { padded_slots = 4 }) in
  make_row "byte-offset -> padded-index tags" byte_offset padded

let render ~title rows =
  let table =
    Table.create
      ~columns:
        [ ("case", Table.Left); ("baseline cycles", Table.Right);
          ("variant cycles", Table.Right); ("overhead", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.name; Table.cell_f ~digits:0 r.baseline_cycles;
          Table.cell_f ~digits:0 r.variant_cycles;
          Printf.sprintf "%+.1f%%" (100. *. r.delta) ])
    rows;
  title ^ "\n" ^ Table.render table
