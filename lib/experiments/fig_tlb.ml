module W = Repro_workloads
module Stats = Repro_gpu.Stats
module Series = Repro_report.Series
module Policy = Repro_vm.Policy

let policies = [ Policy.Flat_4k; Policy.Flat_2m; Policy.Coalesce ]

type t = (Policy.t * Sweep.t) list

let run ?scale ?iterations ?j ?cache ?cache_dir ?(progress = fun _ -> ())
    ?workloads ?columns () =
  List.map
    (fun policy ->
      ( policy,
        Sweep.exec ?scale ?iterations ?j ?cache ?cache_dir
          ~progress:(fun label ->
            progress (Printf.sprintf "%s pages=%s" label (Policy.name policy)))
          ?workloads ?columns ~pages:policy () ))
    policies

let walk_overhead_pct (r : W.Harness.run) =
  let c = Stats.cycles r.W.Harness.stats in
  if c <= 0. then 0. else 100. *. Stats.tlb_walk_cycles r.W.Harness.stats /. c

let sweep_of t policy =
  match List.assoc_opt policy t with
  | Some s -> s
  | None -> invalid_arg "Fig_tlb.sweep_of: policy was not measured"

let points t policy =
  Figview.metric_points (sweep_of t policy) walk_overhead_pct
  |> Series.mean_row ~label:"AVG"

let series_of t policy =
  Series.make
    ~name:("tlb." ^ Policy.name policy)
    ~title:
      (Printf.sprintf
         "Address translation: page-walk overhead (%% of cycles) under %s \
          pages"
         (Policy.name policy))
    ~aggregate:"AVG" (points t policy)

let series t = List.map (fun (policy, _) -> series_of t policy) t

let render t =
  String.concat "\n"
    (List.map (fun (policy, _) -> Figview.render_table (series_of t policy)) t)

let csv t =
  String.concat "\n" (List.map (fun s -> Series.csv s) (series t))
