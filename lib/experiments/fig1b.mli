(** Figure 1b: breakdown of the direct virtual-function-call latency
    under contemporary CUDA, averaged over the object-oriented apps.

    The paper measures it with NVProf PC sampling on a V100; we use the
    timing engine's per-label stall attribution, restricted to the three
    dispatch steps of Fig. 1a: the vTable* load (A), the vFunc* load
    including the constant indirection (B), and the indirect call (C).
    Paper: ≈87 % of the added latency is A. *)

type breakdown = {
  vtable_share : float;   (** A *)
  vfunc_share : float;    (** B + constant indirection *)
  call_share : float;     (** C *)
}

val of_run : Repro_workloads.Harness.run -> breakdown
(** Shares of one CUDA-technique run (sum to 1 when any dispatch stall
    was recorded). *)

val average : Sweep.t -> breakdown
(** Mean share over every workload's CUDA run. *)

val series : Sweep.t -> Repro_report.Series.t
(** {!average} as points (group = operation, series ["share"], values in
    [0,1]) — what {!render} charts and the sinks export. *)

val render : Sweep.t -> string
