(** Figure 9: L1 cache hit rate per workload and technique (paper
    averages: CUDA 31 %, Concord 31 %, SharedOA 44 %, COAL 47 %,
    TypePointer 45 %). *)

val points : Sweep.t -> Repro_report.Series.point list
(** Hit rates in [0,1], plus an "AVG" arithmetic-mean row. *)

val series : Sweep.t -> Repro_report.Series.t
(** {!points} with the figure's name/title/aggregate attached. *)

val render : Sweep.t -> string

val csv : Sweep.t -> string
