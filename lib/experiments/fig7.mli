(** Figure 7: dynamic warp instruction breakdown (MEM / COMPUTE / CTRL)
    normalized to SharedOA (paper: Concord +28 %, COAL +83 %, TP +19 %
    total instructions). *)

val points : Sweep.t -> Repro_report.Series.point list
(** Total normalized instructions per (workload, technique) + "AVG". *)

val series : Sweep.t -> Repro_report.Series.t
(** {!points} as the named total-instructions series. *)

val breakdown_series : Sweep.t -> Repro_report.Series.t
(** {!breakdown} flattened to points: group = workload, series =
    ["TECH:CLASS"] — the figure's full data for the export sinks. *)

val breakdown :
  Sweep.t ->
  (string * (string * (float * float * float)) list) list
(** Per workload, per technique: (mem, compute, ctrl), each normalized to
    that workload's SharedOA total. *)

val render : Sweep.t -> string

val csv : Sweep.t -> string
(** Long-form rows "workload,technique:class,value". *)
