(** The shared measurement sweep behind Figures 6–9: every workload under
    every silicon technique, run once and reused by all four figure
    renderers (they are different views of the same profile, as in the
    paper). Cross-technique functional equality is asserted after
    sweeping.

    Built on {!Repro_exec}: the sweep is a workload-major job matrix
    handed to the parallel executor. Results come back in matrix order
    whatever the schedule, so figure output is byte-identical at any
    [?j]; with the cache on, consecutive figure/table regenerations
    measure once. *)

type t

val default_scale : float
(** 0.25. *)

val exec :
  ?scale:float ->
  ?iterations:int ->
  ?j:int ->
  ?cache:bool ->
  ?cache_dir:string ->
  ?progress:(string -> unit) ->
  ?workloads:Repro_workloads.Workload.t list ->
  unit -> t
(** Defaults: scale 0.25 (fast but representative; see EXPERIMENTS.md),
    the paper's five techniques, all eleven workloads, serial ([j = 1]),
    cache off. [progress] receives each job's label as it starts
    measuring; with [j > 1] it may fire concurrently from worker
    domains. Raises [Failure] naming every failed job (after all jobs
    finished), or on a cross-technique functional mismatch. *)

val outcomes : t -> Repro_exec.Executor.outcome list
(** Per-job scheduling detail (wall time, cache hits), in matrix order —
    what [repro sweep] prints. *)

val runs : t -> Repro_workloads.Harness.run list

val workload_names : t -> string list
(** Qualified names in sweep order. *)

val techniques : t -> Repro_core.Technique.t list

val get : t -> workload:string -> technique:Repro_core.Technique.t ->
  Repro_workloads.Harness.run
(** Raises [Not_found]. *)
