(** The shared measurement sweep behind Figures 6–9: every workload under
    every measured column, run once and reused by all the figure
    renderers (they are different views of the same profile, as in the
    paper). Cross-column functional equality is asserted after sweeping.

    A column is a (technique × allocator family) pair. The default
    column set is the paper's five techniques under their paper
    allocators plus "DYNA": CUDA dispatch over the DynaSOAr-style SoA
    family, the sixth column the repo adds as a comparison platform.

    Built on {!Repro_exec}: the sweep is a workload-major job matrix
    handed to the parallel executor. Results come back in matrix order
    whatever the schedule, so figure output is byte-identical at any
    [?j]; with the cache on, consecutive figure/table regenerations
    measure once. *)

type column = {
  technique : Repro_core.Technique.t;
  alloc : Repro_core.Alloc_family.t;
}

val column :
  ?alloc:Repro_core.Alloc_family.t -> Repro_core.Technique.t -> column
(** [alloc] defaults to the technique's paper family. *)

val column_name : column -> string
(** Display name ({!Repro_core.Alloc_family.column_name}): "CUDA", ...,
    "DYNA". *)

val default_columns : column list
(** The paper's five plus DYNA (last). *)

type t

val default_scale : float
(** = {!Repro_workloads.Workload.default_scale} (0.25) — the repo-wide
    bare-sweep scale, shared with the wire protocol's absent-[scale]
    default. *)

val exec :
  ?scale:float ->
  ?iterations:int ->
  ?j:int ->
  ?cache:bool ->
  ?cache_dir:string ->
  ?progress:(string -> unit) ->
  ?workloads:Repro_workloads.Workload.t list ->
  ?columns:column list ->
  ?pages:Repro_vm.Policy.t ->
  ?intern:bool ->
  ?intra:bool ->
  ?prealloc_mb:int ->
  unit -> t
(** Defaults: scale {!default_scale} (fast but representative; see
    EXPERIMENTS.md),
    {!default_columns}, all eleven workloads, serial ([j = 1]), cache
    off, no address translation ([pages]). [progress] receives each
    job's label as it starts measuring; with [j > 1] it may fire
    concurrently from worker domains. Raises [Failure] naming every
    failed job (after all jobs finished), or on a cross-column
    functional mismatch.

    [intern] (default [true]) selects the interned emission engine;
    [false] is the legacy baseline (byte-identical results, slower —
    what [bench/scale_bench.exe] measures against). [intra] (default
    [false]) opts into the sliced intra-launch parallel timing model.
    [prealloc_mb] pre-sizes each runtime's page store (a pure capacity
    hint). *)

val outcomes : t -> Repro_exec.Executor.outcome list
(** Per-job scheduling detail (wall time, cache hits), in matrix order —
    what [repro sweep] prints. *)

val runs : t -> Repro_workloads.Harness.run list

val workload_names : t -> string list
(** Qualified names in sweep order. *)

val columns : t -> column list

val techniques : t -> Repro_core.Technique.t list
(** Distinct techniques over {!columns}, first-occurrence order. *)

val get_column :
  t -> workload:string -> column:column -> Repro_workloads.Harness.run
(** Raises [Not_found]. *)

val get : t -> workload:string -> technique:Repro_core.Technique.t ->
  Repro_workloads.Harness.run
(** The technique's default-family run. Raises [Not_found]. *)
