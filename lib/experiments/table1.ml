module W = Repro_workloads
module Metric = Repro_obs.Metric
module Label = Repro_gpu.Label
module T = Repro_core.Technique
module Table = Repro_report.Table

let analytic =
  String.concat "\n"
    [
      "Table 1: global accesses per virtual call (analytic, as in the paper)";
      "  Operation      CUDA                 COAL                TypePointer";
      "  A Get vTable*  Acc ~ NumObjects     Acc ~ NumTypes      0 Acc";
      "  B Get vFunc*   Acc ~ NumTypes       Acc ~ NumTypes      Acc ~ NumTypes";
      "  C Call vFunc*  Indirect branch      Indirect branch     Indirect branch";
      "";
    ]

type measured = {
  technique : string;
  get_vtable_per_kcall : float;
  get_vfunc_per_kcall : float;
}

let measure sweep =
  List.map
    (fun (c : Sweep.column) ->
      let runs =
        List.filter
          (fun (r : W.Harness.run) ->
            T.equal r.W.Harness.technique c.Sweep.technique
            && Repro_core.Alloc_family.equal r.W.Harness.alloc c.Sweep.alloc)
          (Sweep.runs sweep)
      in
      let per_kcall label =
        let metric = Metric.load_transactions_for label in
        let num, den =
          List.fold_left
            (fun (num, den) (r : W.Harness.run) ->
              ( num +. Metric.to_float metric r.W.Harness.stats,
                den + r.W.Harness.warp_vcalls ))
            (0., 0) runs
        in
        if den = 0 then 0. else 1000. *. num /. float_of_int den
      in
      {
        technique = Sweep.column_name c;
        get_vtable_per_kcall =
          per_kcall Label.Vtable_load
          +. per_kcall Label.Coal_lookup
          +. per_kcall Label.Concord_tag;
        get_vfunc_per_kcall = per_kcall Label.Vfunc_load;
      })
    (Sweep.columns sweep)

let render sweep =
  let table =
    Table.create
      ~columns:
        [ ("technique", Table.Left);
          ("A: get-type transactions / kcall", Table.Right);
          ("B: get-vFunc transactions / kcall", Table.Right) ]
  in
  List.iter
    (fun m ->
      Table.add_row table
        [ m.technique;
          Table.cell_f ~digits:0 m.get_vtable_per_kcall;
          Table.cell_f ~digits:0 m.get_vfunc_per_kcall ])
    (measure sweep);
  analytic ^ "Measured (per 1000 warp-level virtual calls, sweep average):\n"
  ^ Table.render table
