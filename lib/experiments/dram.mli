(** DRAM-traffic companion figure: total 32 B sectors consumed per
    (workload, technique) over the measured region — load fills plus
    write-through store misses ([dram.sectors] in the metric registry).
    Not a paper figure; tracked in the bench trajectory because sector
    counts move whenever the memory path or a technique's access
    pattern changes. *)

val points : Sweep.t -> Repro_report.Series.point list

val series : Sweep.t -> Repro_report.Series.t

val render : Sweep.t -> string

val csv : Sweep.t -> string
