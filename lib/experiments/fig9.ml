module W = Repro_workloads
module Series = Repro_report.Series
module Metric = Repro_obs.Metric

let points sweep =
  Figview.metric_points sweep (fun r ->
      Metric.to_float Metric.l1_hit_rate r.W.Harness.stats)
  |> Series.mean_row ~label:"AVG"

let series sweep =
  Series.make ~name:"fig9"
    ~title:"Figure 9: L1 cache hit rate (fraction of load sectors)"
    ~aggregate:"AVG" (points sweep)

let render sweep = Figview.render_table (series sweep)

let csv sweep = Series.csv (series sweep)
