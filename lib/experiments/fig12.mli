(** Figure 12: the Sec. 8.3 scalability study on high-PKI
    microbenchmarks, everything normalized to the BRANCH ideal.

    (a) object scaling at 4 types (paper, at 32 M objects: CUDA 5.6×,
    COAL 3.3×, TypePointer 2.0× the BRANCH time; our sweep uses scaled
    counts); (b) type scaling at a fixed object count — divergence grows,
    the techniques converge. *)

type point = {
  variant : string;       (** BRANCH / CUDA / COAL / TP. *)
  n_objects : int;
  n_types : int;
  cycles : float;
  norm_time : float;      (** Relative to BRANCH at the sweep's origin. *)
}

val object_counts : int list
(** Default object sweep (32 K → 1 M, standing in for 1 M → 32 M). *)

val type_counts : int list
(** 1 → 32, as in the paper. *)

val run_object_sweep : ?scale:float -> ?j:int -> unit -> point list
(** Fig. 12a: [n_types = 4]; norm_time is relative to BRANCH at the
    smallest object count (the paper's normalization). [j] bounds the
    worker domains ({!Repro_exec.Pool}); the point order — and so the
    normalization base — is identical at any [j]. *)

val run_type_sweep : ?scale:float -> ?j:int -> unit -> point list
(** Fig. 12b: fixed object count (half the sweep maximum), types 1–32;
    norm_time relative to BRANCH at 1 type. *)

val sweep_for_test : configs:(int * int) list -> point list
(** Arbitrary (objects, types) grid; first config's BRANCH run is the
    normalization base. Exposed for the integration tests. *)

val object_series : point list -> Repro_report.Series.t
(** 12a as a series: group = object count, series = variant, value =
    normalized time. *)

val type_series : point list -> Repro_report.Series.t
(** 12b likewise over type counts. *)

val render_object_sweep : point list -> string

val render_type_sweep : point list -> string

val csv : point list -> string
