module W = Repro_workloads
module Series = Repro_report.Series
module Metric = Repro_obs.Metric
module Table = Repro_report.Table

let points sweep =
  Figview.metric_points sweep (fun r ->
      Metric.to_float Metric.instructions_total r.W.Harness.stats)
  |> Series.normalize_to ~baseline:"SHARD"
  |> Series.mean_row ~label:"AVG"

let series sweep =
  Series.make ~name:"fig7"
    ~title:"Figure 7: total warp instructions normalized to SharedOA"
    ~aggregate:"AVG" (points sweep)

let class_metric = function
  | `Mem -> Metric.instructions_mem
  | `Compute -> Metric.instructions_compute
  | `Ctrl -> Metric.instructions_ctrl

let breakdown sweep =
  let columns = Sweep.columns sweep in
  List.map
    (fun workload ->
      let base =
        Sweep.get sweep ~workload ~technique:Repro_core.Technique.Shared_oa
      in
      let total = Metric.to_float Metric.instructions_total base.W.Harness.stats in
      ( Figview.short_group workload,
        List.map
          (fun column ->
            let r = Sweep.get_column sweep ~workload ~column in
            let part cls =
              Metric.to_float (class_metric cls) r.W.Harness.stats /. total
            in
            (Sweep.column_name column, (part `Mem, part `Compute, part `Ctrl)))
          columns ))
    (Sweep.workload_names sweep)

let breakdown_series sweep =
  Series.make ~name:"fig7.breakdown"
    ~title:"Figure 7: warp instructions normalized to SharedOA (breakdown by class)"
    (List.concat_map
       (fun (workload, rows) ->
         List.concat_map
           (fun (tech, (m, c, k)) ->
             [
               { Series.group = workload; series = tech ^ ":MEM"; value = m };
               { Series.group = workload; series = tech ^ ":COMPUTE"; value = c };
               { Series.group = workload; series = tech ^ ":CTRL"; value = k };
             ])
           rows)
       (breakdown sweep))

let render sweep =
  let table =
    Table.create
      ~columns:
        [ ("workload", Table.Left); ("technique", Table.Left); ("MEM", Table.Right);
          ("COMPUTE", Table.Right); ("CTRL", Table.Right); ("total", Table.Right) ]
  in
  List.iter
    (fun (workload, rows) ->
      List.iter
        (fun (tech, (m, c, k)) ->
          Table.add_row table
            [ workload; tech; Table.cell_f m; Table.cell_f c; Table.cell_f k;
              Table.cell_f (m +. c +. k) ])
        rows;
      Table.add_separator table)
    (breakdown sweep);
  let totals = points sweep in
  let avg =
    String.concat "  "
      (List.map
         (fun c ->
           let name = Sweep.column_name c in
           Printf.sprintf "%s=%.2f" name (Figview.geomean_of totals ~series:name))
         (Sweep.columns sweep))
  in
  "Figure 7: warp instructions normalized to SharedOA (breakdown by class)\n"
  ^ Table.render table ^ "AVG total: " ^ avg ^ "\n"

let csv sweep =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "workload,technique,class,value\n";
  List.iter
    (fun (workload, rows) ->
      List.iter
        (fun (tech, (m, c, k)) ->
          Buffer.add_string buf (Printf.sprintf "%s,%s,MEM,%f\n" workload tech m);
          Buffer.add_string buf (Printf.sprintf "%s,%s,COMPUTE,%f\n" workload tech c);
          Buffer.add_string buf (Printf.sprintf "%s,%s,CTRL,%f\n" workload tech k))
        rows)
    (breakdown sweep);
  Buffer.contents buf
