(** Figure 11: TypePointer applied to the *default CUDA allocator* in
    simulation (hardware MMU; paper GM: +18 % over CUDA without changing
    how objects are allocated). *)

val points :
  ?scale:float -> ?j:int -> ?cache:bool -> ?cache_dir:string ->
  ?workloads:Repro_workloads.Workload.t list -> unit ->
  Repro_report.Series.point list
(** Per workload: "CUDA" (1.0) and "TP/CUDA" normalized performance,
    plus the GM row. *)

val series : Repro_report.Series.point list -> Repro_report.Series.t
(** {!points} with the figure's name/title/aggregate attached. *)

val render : Repro_report.Series.point list -> string

val csv : Repro_report.Series.point list -> string
