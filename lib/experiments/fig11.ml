module W = Repro_workloads
module T = Repro_core.Technique
module A = Repro_core.Alloc_family
module Series = Repro_report.Series

(* The CUDA-allocator study: TypePointer over the default device heap
   (the paper's Fig. 11) plus the DYNA column — CUDA dispatch over
   DynaSOAr SoA blocks — the other way to restructure that heap. *)
let columns =
  [
    Sweep.column T.Cuda;
    Sweep.column T.type_pointer_on_cuda;
    Sweep.column ~alloc:A.Dyna_soa T.Cuda;
  ]

let points ?(scale = Sweep.default_scale) ?(j = 1) ?(cache = false) ?cache_dir
    ?(workloads = W.Registry.all) () =
  let params (c : Sweep.column) =
    {
      (W.Workload.default_params c.Sweep.technique) with
      W.Workload.scale;
      alloc =
        (if A.is_default c.Sweep.technique c.Sweep.alloc then None
         else Some c.Sweep.alloc);
    }
  in
  let jobs =
    List.concat_map
      (fun w ->
        List.map (fun c -> Repro_exec.Job.make w (params c)) columns)
      workloads
  in
  let outcomes = Repro_exec.Executor.run ~jobs:j ~cache ?cache_dir jobs in
  let runs = List.map Repro_exec.Executor.ok_exn outcomes in
  let n = List.length columns in
  let rec groups = function
    | [] -> []
    | rest ->
      List.filteri (fun i _ -> i < n) rest
      :: groups (List.filteri (fun i _ -> i >= n) rest)
  in
  List.concat
    (List.map2
       (fun w group ->
         W.Harness.validate_equal group;
         let gname = Figview.short_group (W.Registry.qualified_name w) in
         List.map
           (fun (r : W.Harness.run) ->
             {
               Series.group = gname;
               series = A.column_name r.W.Harness.technique r.W.Harness.alloc;
               value = r.W.Harness.cycles;
             })
           group)
       workloads (groups runs))
  |> Series.normalize_to ~baseline:"CUDA"
  |> Series.invert
  |> Series.geomean_row ~label:"GM"

let series points =
  Series.make ~name:"fig11"
    ~title:
      "Figure 11: TypePointer and DynaSOAr-SoA on the default CUDA \
       allocator (simulation), normalized to CUDA"
    ~aggregate:"GM" points

let render points = Figview.render_table (series points)

let csv points = Series.csv (series points)
