module W = Repro_workloads
module T = Repro_core.Technique
module Series = Repro_report.Series

let points ?(scale = Sweep.default_scale) ?(j = 1) ?(cache = false) ?cache_dir
    ?(workloads = W.Registry.all) () =
  let p = { (W.Workload.default_params T.Cuda) with W.Workload.scale } in
  let jobs =
    Repro_exec.Job.matrix ~techniques:[ T.Cuda; T.type_pointer_on_cuda ]
      ~params:p workloads
  in
  let outcomes = Repro_exec.Executor.run ~jobs:j ~cache ?cache_dir jobs in
  let runs = List.map Repro_exec.Executor.ok_exn outcomes in
  List.concat
    (List.map2
       (fun w (cuda, tp) ->
         W.Harness.validate_equal [ cuda; tp ];
         let group = Figview.short_group (W.Registry.qualified_name w) in
         List.map
           (fun (r : W.Harness.run) ->
             {
               Series.group;
               series = T.name r.W.Harness.technique;
               value = r.W.Harness.cycles;
             })
           [ cuda; tp ])
       workloads
       (let rec pairs = function
          | a :: b :: rest -> (a, b) :: pairs rest
          | _ -> []
        in
        pairs runs))
  |> Series.normalize_to ~baseline:"CUDA"
  |> Series.invert
  |> Series.geomean_row ~label:"GM"

let series points =
  Series.make ~name:"fig11"
    ~title:
      "Figure 11: TypePointer on the default CUDA allocator (simulation), \
       normalized to CUDA"
    ~aggregate:"GM" points

let render points = Figview.render_table (series points)

let csv points = Series.csv (series points)
