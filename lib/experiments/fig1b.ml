module W = Repro_workloads
module Label = Repro_gpu.Label
module Metric = Repro_obs.Metric
module Series = Repro_report.Series

type breakdown = {
  vtable_share : float;
  vfunc_share : float;
  call_share : float;
}

let of_run (r : W.Harness.run) =
  let stall l = Metric.to_float (Metric.stall_cycles l) r.W.Harness.stats in
  let a = stall Label.Vtable_load in
  let b = stall Label.Vfunc_load +. stall Label.Const_indirect in
  let c = stall Label.Call in
  let total = a +. b +. c in
  if total = 0. then { vtable_share = 0.; vfunc_share = 0.; call_share = 0. }
  else { vtable_share = a /. total; vfunc_share = b /. total; call_share = c /. total }

let cuda_runs sweep =
  (* Default-family CUDA only: a DYNA run is also technique=Cuda and
     would otherwise skew the baseline average. *)
  List.filter
    (fun (r : W.Harness.run) ->
      Repro_core.Technique.equal r.W.Harness.technique Repro_core.Technique.Cuda
      && Repro_core.Alloc_family.equal r.W.Harness.alloc
           Repro_core.Alloc_family.Cuda)
    (Sweep.runs sweep)

let average sweep =
  let runs = cuda_runs sweep in
  let n = float_of_int (max 1 (List.length runs)) in
  let sum f = List.fold_left (fun acc r -> acc +. f (of_run r)) 0. runs in
  {
    vtable_share = sum (fun b -> b.vtable_share) /. n;
    vfunc_share = sum (fun b -> b.vfunc_share) /. n;
    call_share = sum (fun b -> b.call_share) /. n;
  }

let series sweep =
  let avg = average sweep in
  Series.make ~name:"fig1b"
    ~title:"Figure 1b: share of virtual-call latency (CUDA, average over apps)"
    ~group_label:"operation"
    [
      { Series.group = "Load vTable* (A)"; series = "share"; value = avg.vtable_share };
      { Series.group = "Load vFunc*  (B)"; series = "share"; value = avg.vfunc_share };
      { Series.group = "Indirect call(C)"; series = "share"; value = avg.call_share };
    ]

let render sweep =
  let s = series sweep in
  let chart =
    Repro_report.Chart.bars ~unit_label:"%"
      (List.map
         (fun (p : Series.point) -> (p.Series.group, 100. *. p.Series.value))
         s.Series.points)
  in
  let measured_a =
    100. *. Series.value s.Series.points ~group:"Load vTable* (A)" ~series:"share"
  in
  s.Series.title ^ "\n" ^ chart
  ^ Printf.sprintf "(paper: A=87%% of the direct cost; measured A=%.0f%%)\n"
      measured_a
