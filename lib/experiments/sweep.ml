module W = Repro_workloads
module T = Repro_core.Technique
module A = Repro_core.Alloc_family
module X = Repro_exec

type column = { technique : T.t; alloc : A.t }

let column ?alloc technique =
  { technique; alloc = Option.value alloc ~default:(A.default_for technique) }

let column_name c = A.column_name c.technique c.alloc

(* The paper's five columns plus the DynaSOAr SoA family over CUDA
   dispatch — appended last so default-family lookups by technique keep
   finding the paper run first. *)
let default_columns =
  List.map (fun t -> column t) T.all_paper @ [ column ~alloc:A.Dyna_soa T.Cuda ]

type t = {
  outcomes : X.Executor.outcome list;
  runs : W.Harness.run list;
  workload_names : string list;
  columns : column list;
}

let default_scale = W.Workload.default_scale

let exec ?(scale = default_scale) ?iterations ?(j = 1) ?(cache = false)
    ?cache_dir ?(progress = fun _ -> ()) ?(workloads = W.Registry.all)
    ?(columns = default_columns) ?pages ?(intern = true) ?(intra = false)
    ?prealloc_mb () =
  let params c =
    {
      (W.Workload.default_params c.technique) with
      W.Workload.scale;
      iterations;
      pages;
      intern;
      intra;
      prealloc_mb;
      (* Default families stay [None] so the job key (and cache entry) is
         the same whether the run came from a technique-only or a
         column-aware surface. *)
      alloc = (if A.is_default c.technique c.alloc then None else Some c.alloc);
    }
  in
  let jobs =
    List.concat_map
      (fun w -> List.map (fun c -> X.Job.make w (params c)) columns)
      workloads
  in
  let outcomes =
    X.Executor.run ~jobs:j ~cache ?cache_dir
      ~progress:(fun job -> progress (X.Job.label job))
      jobs
  in
  (match X.Executor.errors outcomes with
   | [] -> ()
   | errs ->
     failwith
       (Printf.sprintf "Sweep: %d job(s) failed: %s" (List.length errs)
          (String.concat "; "
             (List.map
                (fun (job, msg) -> X.Job.label job ^ ": " ^ msg)
                errs))));
  let runs = List.map X.Executor.ok_exn outcomes in
  (* The paper's functional validation, per workload across columns.
     Jobs are workload-major, so each workload's runs are contiguous. *)
  let n_columns = List.length columns in
  let rec validate = function
    | [] -> ()
    | rest ->
      let group = List.filteri (fun i _ -> i < n_columns) rest in
      W.Harness.validate_equal group;
      validate (List.filteri (fun i _ -> i >= n_columns) rest)
  in
  validate runs;
  {
    outcomes;
    runs;
    workload_names = List.map W.Registry.qualified_name workloads;
    columns;
  }

let outcomes t = t.outcomes

let runs t = t.runs

let workload_names t = t.workload_names

let columns t = t.columns

let techniques t =
  List.fold_left
    (fun acc c ->
      if List.exists (T.equal c.technique) acc then acc else acc @ [ c.technique ])
    [] t.columns

let get_column t ~workload ~column =
  match
    List.find_opt
      (fun (r : W.Harness.run) ->
        r.W.Harness.workload = workload
        && T.equal r.W.Harness.technique column.technique
        && A.equal r.W.Harness.alloc column.alloc)
      t.runs
  with
  | Some r -> r
  | None -> raise Not_found

let get t ~workload ~technique =
  get_column t ~workload
    ~column:{ technique; alloc = A.default_for technique }
