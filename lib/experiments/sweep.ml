module W = Repro_workloads
module T = Repro_core.Technique
module X = Repro_exec

type t = {
  outcomes : X.Executor.outcome list;
  runs : W.Harness.run list;
  workload_names : string list;
  techniques : T.t list;
}

let default_scale = 0.25

let exec ?(scale = default_scale) ?iterations ?(j = 1) ?(cache = false)
    ?cache_dir ?(progress = fun _ -> ()) ?(workloads = W.Registry.all) () =
  let techniques = T.all_paper in
  let params =
    { (W.Workload.default_params T.Shared_oa) with W.Workload.scale; iterations }
  in
  let jobs = X.Job.matrix ~techniques ~params workloads in
  let outcomes =
    X.Executor.run ~jobs:j ~cache ?cache_dir
      ~progress:(fun job -> progress (X.Job.label job))
      jobs
  in
  (match X.Executor.errors outcomes with
   | [] -> ()
   | errs ->
     failwith
       (Printf.sprintf "Sweep: %d job(s) failed: %s" (List.length errs)
          (String.concat "; "
             (List.map
                (fun (job, msg) -> X.Job.label job ^ ": " ^ msg)
                errs))));
  let runs = List.map X.Executor.ok_exn outcomes in
  (* The paper's functional validation, per workload across techniques.
     Jobs are workload-major, so each workload's runs are contiguous. *)
  let n_techniques = List.length techniques in
  let rec validate = function
    | [] -> ()
    | rest ->
      let group = List.filteri (fun i _ -> i < n_techniques) rest in
      W.Harness.validate_equal group;
      validate (List.filteri (fun i _ -> i >= n_techniques) rest)
  in
  validate runs;
  {
    outcomes;
    runs;
    workload_names = List.map W.Registry.qualified_name workloads;
    techniques;
  }

let outcomes t = t.outcomes

let runs t = t.runs

let workload_names t = t.workload_names

let techniques t = t.techniques

let get t ~workload ~technique =
  match
    List.find_opt
      (fun (r : W.Harness.run) ->
        r.W.Harness.workload = workload && T.equal r.W.Harness.technique technique)
      t.runs
  with
  | Some r -> r
  | None -> raise Not_found
