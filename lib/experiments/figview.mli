(** Shared rendering for the figure harness: extract a metric per sweep
    run as series points, and render any {!Repro_report.Series.t} as a
    text table (the same value the JSON/CSV sinks consume). *)

val metric_points :
  Sweep.t -> (Repro_workloads.Harness.run -> float) -> Repro_report.Series.point list
(** One point per (workload, technique); the series name is the
    technique's short name. *)

val short_group : string -> string
(** Compact workload label ("Dynasoar/TRAF" → "TRAF", keeping the suite
    prefix only for the BFS/CC/PR duplicates). *)

val render_table : Repro_report.Series.t -> string
(** Title line, then rows = groups and columns = series names (both in
    first-appearance order); the aggregate row, when the series names
    one, is set off by a separator. *)

val geomean_of : Repro_report.Series.point list -> series:string -> float
(** The aggregate-row value for one technique (the row must exist). *)
