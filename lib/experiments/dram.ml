module W = Repro_workloads
module Series = Repro_report.Series
module Metric = Repro_obs.Metric

let points sweep =
  Figview.metric_points sweep (fun r ->
      Metric.to_float Metric.dram_sectors r.W.Harness.stats)
  |> Series.mean_row ~label:"AVG"

let series sweep =
  Series.make ~name:"dram"
    ~title:"DRAM traffic: 32 B sectors consumed (fills and write-through \
            store misses)"
    ~aggregate:"AVG" (points sweep)

let render sweep = Figview.render_table (series sweep)

let csv sweep = Series.csv (series sweep)
