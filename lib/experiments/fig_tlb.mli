(** TLB figure: per-workload page-walk overhead (percent of run cycles
    spent in modelled page walks) for every sweep column under each of
    the three page-size policies.

    Not a paper figure — it prices the Mosaic-style observation the
    paper's allocators enable: contiguously-placed same-type heaps
    (SharedOA chunks, DynaSOAr block chains) coalesce into large pages,
    so under the [coalesce] policy their walk overhead drops well below
    the CUDA baseline's, whose round-robin slab placement never
    promotes. [flat-4k] and [flat-2m] bound the comparison from both
    sides. *)

val policies : Repro_vm.Policy.t list
(** The three policies, in measurement order. *)

type t
(** One full sweep per policy. *)

val run :
  ?scale:float ->
  ?iterations:int ->
  ?j:int ->
  ?cache:bool ->
  ?cache_dir:string ->
  ?progress:(string -> unit) ->
  ?workloads:Repro_workloads.Workload.t list ->
  ?columns:Sweep.column list ->
  unit -> t
(** Three {!Sweep.exec} calls, one per policy; defaults are the
    sweep's. [progress] labels carry the policy. *)

val walk_overhead_pct : Repro_workloads.Harness.run -> float
(** [100 * tlb.walk_cycles / cycles] of one run. *)

val points : t -> Repro_vm.Policy.t -> Repro_report.Series.point list
(** Per-workload overhead for one policy's sweep, with an AVG row.
    Raises [Invalid_argument] for a policy not in {!policies}. *)

val series : t -> Repro_report.Series.t list
(** One series per policy, named [tlb.<policy>]. *)

val render : t -> string
(** One table per policy. *)

val csv : t -> string
