(** Ablations over the design choices the paper discusses but does not
    plot:

    - TypePointer prototype (software masks at member references) vs the
      proposed hardware MMU (Sec. 6.3: "we find [the overhead] to be
      insignificant" — at the paper's member-access densities);
    - TypePointer's byte-offset tag encoding vs the padded-index encoding
      that scales to 32 K types (Sec. 6.2: costs one extra multiply-add
      and vTable padding);
    - COAL's converged-call-site heuristic on vs off (Sec. 5: forcing
      instrumentation of converged sites should hurt RAY). *)

type row = {
  name : string;
  baseline_cycles : float;
  variant_cycles : float;
  delta : float;  (** variant/baseline - 1, positive = slower. *)
}

val tp_prototype_vs_hw :
  ?scale:float -> ?j:int -> ?cache:bool -> ?cache_dir:string -> unit -> row list
(** Per workload: TypePointer prototype vs hardware MMU on SharedOA. *)

val tp_encoding : ?n_objects:int -> ?n_types:int -> unit -> row
(** Microbenchmark: byte-offset vs padded-index tags. *)

val render : title:string -> row list -> string
