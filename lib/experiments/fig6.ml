module W = Repro_workloads
module Series = Repro_report.Series

let points sweep =
  Figview.metric_points sweep (fun r -> r.W.Harness.cycles)
  |> Series.normalize_to ~baseline:"SHARD"
  |> Series.invert
  |> Series.geomean_row ~label:"GM"

let series sweep =
  Series.make ~name:"fig6"
    ~title:"Figure 6: performance normalized to SharedOA (higher is better)"
    ~aggregate:"GM" (points sweep)

let render sweep = Figview.render_table (series sweep)

let csv sweep = Series.csv (series sweep)
