(** Figure 6: kernel performance of CUDA, Concord, COAL and TypePointer
    normalized to SharedOA, per workload plus the geometric mean
    (paper: GM 0.59 / 0.72 / 1.00 / 1.06 / 1.12). *)

val points : Sweep.t -> Repro_report.Series.point list
(** Normalized performance (higher is better), including the "GM" row. *)

val series : Sweep.t -> Repro_report.Series.t
(** {!points} with the figure's name/title/aggregate attached — the one
    value both {!render} and the JSON/CSV sinks consume. *)

val render : Sweep.t -> string

val csv : Sweep.t -> string
