module W = Repro_workloads
module Series = Repro_report.Series
module Table = Repro_report.Table

let short_group name =
  match String.split_on_char '/' name with
  | [ suite; short ] ->
    if String.length suite >= 8 && String.sub suite 0 8 = "GraphChi" then
      (* Disambiguate the vE/vEN duplicates compactly. *)
      String.sub suite 9 (String.length suite - 9) ^ "-" ^ short
    else short
  | _ -> name

let metric_points sweep metric =
  List.map
    (fun (r : W.Harness.run) ->
      {
        Series.group = short_group r.W.Harness.workload;
        series =
          Repro_core.Alloc_family.column_name r.W.Harness.technique
            r.W.Harness.alloc;
        value = metric r;
      })
    (Sweep.runs sweep)

let render_table (s : Series.t) =
  let columns = Series.series_names s.Series.points in
  let table =
    Table.create
      ~columns:
        ((s.Series.group_label, Table.Left)
         :: List.map (fun c -> (c, Table.Right)) columns)
  in
  let grouped = Series.by_group s.Series.points in
  List.iter
    (fun (group, cells) ->
      if s.Series.aggregate = Some group then Table.add_separator table;
      Table.add_row table
        (group
         :: List.map
              (fun c ->
                match List.assoc_opt c cells with
                | Some v -> Table.cell_f v
                | None -> "-")
              columns))
    grouped;
  s.Series.title ^ "\n" ^ Table.render table

let geomean_of points ~series =
  let rec last_matching acc = function
    | [] -> acc
    | (p : Series.point) :: rest ->
      last_matching (if p.Series.series = series then Some p.Series.value else acc) rest
  in
  match last_matching None points with
  | Some v -> v
  | None -> invalid_arg "Figview.geomean_of: series not present"
