(** The Sec. 8.2 initialization comparison: SharedOA performs host-side
    bump allocation into typed regions, while allocating objects with
    virtual functions on the device serializes on the CUDA heap —
    the paper measures SharedOA 80× faster (geomean) over the apps. *)

type row = {
  workload : string;
  objects : int;
  cuda_cycles : float;
  shared_oa_cycles : float;
  speedup : float;
}

val run :
  ?scale:float -> ?j:int -> ?cache:bool -> ?cache_dir:string ->
  ?workloads:Repro_workloads.Workload.t list -> unit -> row list

val geomean_speedup : row list -> float

val render : row list -> string
