(** The Sec. 8.2 initialization comparison: SharedOA performs host-side
    bump allocation into typed regions, while allocating objects with
    virtual functions on the device serializes on the CUDA heap —
    the paper measures SharedOA 80× faster (geomean) over the apps.
    The DynaSOAr-SoA family rides along as a third column: cheaper than
    the device heap but paying its bitmap scans. *)

type row = {
  workload : string;
  objects : int;
  cuda_cycles : float;
  shared_oa_cycles : float;
  dyna_cycles : float;
  speedup : float;       (** SharedOA vs device-side new. *)
  dyna_speedup : float;  (** DynaSOAr-SoA vs device-side new. *)
}

val run :
  ?scale:float -> ?j:int -> ?cache:bool -> ?cache_dir:string ->
  ?workloads:Repro_workloads.Workload.t list -> unit -> row list

val geomean_speedup : row list -> float

val geomean_dyna_speedup : row list -> float

val render : row list -> string
