module W = Repro_workloads
module T = Repro_core.Technique
module Table = Repro_report.Table

type row = {
  workload : string;
  objects : int;
  cuda_cycles : float;
  shared_oa_cycles : float;
  speedup : float;
}

let alloc_cycles (r : W.Harness.run) = r.W.Harness.alloc_stats.Repro_core.Allocator.alloc_cycles

let run ?(scale = Sweep.default_scale) ?(j = 1) ?(cache = false) ?cache_dir
    ?(workloads = W.Registry.all) () =
  let params = { (W.Workload.default_params T.Cuda) with W.Workload.scale } in
  let jobs =
    Repro_exec.Job.matrix ~techniques:[ T.Cuda; T.Shared_oa ] ~params workloads
  in
  let outcomes = Repro_exec.Executor.run ~jobs:j ~cache ?cache_dir jobs in
  List.mapi
    (fun i w ->
      let cuda = Repro_exec.Executor.ok_exn (List.nth outcomes (2 * i)) in
      let shared = Repro_exec.Executor.ok_exn (List.nth outcomes ((2 * i) + 1)) in
      {
        workload = Figview.short_group (W.Registry.qualified_name w);
        objects = shared.W.Harness.n_objects;
        cuda_cycles = alloc_cycles cuda;
        shared_oa_cycles = alloc_cycles shared;
        speedup = alloc_cycles cuda /. alloc_cycles shared;
      })
    workloads

let geomean_speedup rows = Repro_util.Mathx.geomean (List.map (fun r -> r.speedup) rows)

let render rows =
  let table =
    Table.create
      ~columns:
        [ ("workload", Table.Left); ("objects", Table.Right);
          ("device-side alloc (cycles)", Table.Right);
          ("SharedOA alloc (cycles)", Table.Right); ("speedup", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.workload; string_of_int r.objects; Table.cell_f ~digits:0 r.cuda_cycles;
          Table.cell_f ~digits:0 r.shared_oa_cycles; Table.cell_f ~digits:1 r.speedup ])
    rows;
  "Initialization (Sec. 8.2): allocation-phase cost, SharedOA vs device-side new\n"
  ^ Table.render table
  ^ Printf.sprintf "geomean speedup: %.0fx (paper: 80x)\n" (geomean_speedup rows)
