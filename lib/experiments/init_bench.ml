module W = Repro_workloads
module T = Repro_core.Technique
module A = Repro_core.Alloc_family
module Table = Repro_report.Table

type row = {
  workload : string;
  objects : int;
  cuda_cycles : float;
  shared_oa_cycles : float;
  dyna_cycles : float;
  speedup : float;       (* SharedOA vs device-side new *)
  dyna_speedup : float;  (* DynaSOAr-SoA vs device-side new *)
}

let alloc_cycles (r : W.Harness.run) = r.W.Harness.alloc_stats.Repro_core.Allocator.alloc_cycles

let run ?(scale = Sweep.default_scale) ?(j = 1) ?(cache = false) ?cache_dir
    ?(workloads = W.Registry.all) () =
  let params = { (W.Workload.default_params T.Cuda) with W.Workload.scale } in
  let jobs =
    List.concat_map
      (fun w ->
        [
          Repro_exec.Job.make w params;
          Repro_exec.Job.make w { params with W.Workload.technique = T.Shared_oa };
          Repro_exec.Job.make w { params with W.Workload.alloc = Some A.Dyna_soa };
        ])
      workloads
  in
  let outcomes = Repro_exec.Executor.run ~jobs:j ~cache ?cache_dir jobs in
  List.mapi
    (fun i w ->
      let cuda = Repro_exec.Executor.ok_exn (List.nth outcomes (3 * i)) in
      let shared = Repro_exec.Executor.ok_exn (List.nth outcomes ((3 * i) + 1)) in
      let dyna = Repro_exec.Executor.ok_exn (List.nth outcomes ((3 * i) + 2)) in
      {
        workload = Figview.short_group (W.Registry.qualified_name w);
        objects = shared.W.Harness.n_objects;
        cuda_cycles = alloc_cycles cuda;
        shared_oa_cycles = alloc_cycles shared;
        dyna_cycles = alloc_cycles dyna;
        speedup = alloc_cycles cuda /. alloc_cycles shared;
        dyna_speedup = alloc_cycles cuda /. alloc_cycles dyna;
      })
    workloads

let geomean_speedup rows = Repro_util.Mathx.geomean (List.map (fun r -> r.speedup) rows)

let geomean_dyna_speedup rows =
  Repro_util.Mathx.geomean (List.map (fun r -> r.dyna_speedup) rows)

let render rows =
  let table =
    Table.create
      ~columns:
        [ ("workload", Table.Left); ("objects", Table.Right);
          ("device-side alloc (cycles)", Table.Right);
          ("SharedOA alloc (cycles)", Table.Right);
          ("DynaSOA alloc (cycles)", Table.Right); ("speedup", Table.Right);
          ("dyna speedup", Table.Right) ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ r.workload; string_of_int r.objects; Table.cell_f ~digits:0 r.cuda_cycles;
          Table.cell_f ~digits:0 r.shared_oa_cycles;
          Table.cell_f ~digits:0 r.dyna_cycles; Table.cell_f ~digits:1 r.speedup;
          Table.cell_f ~digits:1 r.dyna_speedup ])
    rows;
  "Initialization (Sec. 8.2): allocation-phase cost, SharedOA and DynaSOA vs \
   device-side new\n"
  ^ Table.render table
  ^ Printf.sprintf "geomean speedup: %.0fx (paper: 80x); dyna: %.0fx\n"
      (geomean_speedup rows) (geomean_dyna_speedup rows)
