module Stats = Repro_gpu.Stats
module Label = Repro_gpu.Label
module Series = Repro_report.Series

type kernel = {
  index : int;
  start : float;
  windows : Stats.t array;
}

type t = {
  workload : string;
  technique : string;
  window : int;
  kernels : kernel list;
}

let kernel_cycles rows =
  Array.fold_left (fun acc row -> acc +. Stats.cycles row) 0. rows

let make ~workload ~technique ~window ~kernel_windows =
  if window <= 0 then invalid_arg "Timeline.make: window must be positive";
  let _, rev =
    List.fold_left
      (fun (start, acc) rows ->
        let k = { index = List.length acc; start; windows = rows } in
        (start +. kernel_cycles rows, k :: acc))
      (0., []) kernel_windows
  in
  { workload; technique; window; kernels = List.rev rev }

let n_windows t =
  List.fold_left (fun acc k -> acc + Array.length k.windows) 0 t.kernels

let fold_rows rows =
  let acc = Stats.create () in
  Array.iter (fun row -> Stats.add acc row) rows;
  acc

let mismatches ~what summed reference =
  List.filter_map
    (fun m ->
      let s = Metric.value m summed and r = Metric.value m reference in
      if s = r then None
      else
        Some
          (Format.asprintf "%s %s: windows sum to %a, delta is %a" what
             (Metric.name m) Metric.pp_value s Metric.pp_value r))
    Metric.counters

let consistent t ~profile =
  if List.length t.kernels <> List.length profile.Profile.kernels then
    Error
      (Printf.sprintf "timeline has %d launches, profile has %d"
         (List.length t.kernels)
         (List.length profile.Profile.kernels))
  else begin
    (* Folding each launch's windows replays the device's own
       accumulation, and folding those launch sums replays the run
       totals — both with the identical association of [Stats.add]
       calls, so every counter (floats included) must match exactly. *)
    let total = Stats.create () in
    let errors =
      List.concat_map
        (fun (k, pk) ->
          let summed = fold_rows k.windows in
          Stats.add total summed;
          mismatches
            ~what:(Printf.sprintf "kernel %d" k.index)
            summed pk.Profile.stats)
        (List.combine t.kernels profile.Profile.kernels)
    in
    let errors = errors @ mismatches ~what:"total" total profile.Profile.total in
    match errors with [] -> Ok () | es -> Error (String.concat "; " es)
  end

let windows t =
  List.concat_map
    (fun k ->
      List.mapi
        (fun j row -> (k.start +. float_of_int (j * t.window), row))
        (Array.to_list k.windows))
    t.kernels

(* {2 Derived per-window quantities} *)

let ipc row =
  let c = Stats.cycles row in
  if c <= 0. then 0. else float_of_int (Stats.total_instructions row) /. c

let dram_per_cycle row =
  let c = Stats.cycles row in
  if c <= 0. then 0. else float_of_int (Stats.dram_sectors row) /. c

let stall_share label row =
  let total = Stats.total_stall_cycles row in
  if total <= 0. then 0. else Stats.stall_cycles row label /. total

let tlb_hit_rate row =
  let lookups = Stats.tlb_lookups row in
  if lookups = 0 then 0.
  else
    float_of_int (Stats.tlb_l1_hits row + Stats.tlb_l2_hits row)
    /. float_of_int lookups

let tlb_walk_share row =
  let c = Stats.cycles row in
  if c <= 0. then 0. else Stats.tlb_walk_cycles row /. c

let group_of start = Printf.sprintf "%.0f" start

let derived_quantities t =
  let stalled_labels =
    List.filter
      (fun label ->
        List.exists
          (fun (_, row) -> Stats.stall_cycles row label > 0.)
          (windows t))
      Label.all
  in
  let tlb_rows =
    (* Like the stall shares: only runs that model translation get the
       rows, so every other timeline is unchanged. *)
    if List.exists (fun (_, row) -> Stats.tlb_lookups row > 0) (windows t)
    then
      [
        ("tlb.hit_rate", "TLB hit rate (both levels)", tlb_hit_rate);
        ("tlb.walk_share", "share of cycles walking page tables",
         tlb_walk_share);
      ]
    else []
  in
  [
    ("ipc", "warp instructions per cycle", ipc);
    ("l1.hit_rate", "L1 hit rate", Stats.l1_hit_rate);
    ("l2.hit_rate", "L2 hit rate", Stats.l2_hit_rate);
    ("dram.sectors_per_cycle", "DRAM sectors per cycle", dram_per_cycle);
  ]
  @ tlb_rows
  @ List.map
      (fun label ->
        ( "stall_share." ^ Label.slug label,
          "share of stall cycles: " ^ Label.name label,
          stall_share label ))
      stalled_labels

let series_of t ~name ~title extract =
  Series.make
    ~name:("timeline." ^ name)
    ~title:
      (Printf.sprintf "%s — %s under %s, %d-cycle windows" title t.workload
         t.technique t.window)
    ~group_label:"window_start"
    (List.map
       (fun (start, row) ->
         { Series.group = group_of start; series = name; value = extract row })
       (windows t))

let series t =
  List.map
    (fun (name, title, extract) -> series_of t ~name ~title extract)
    (derived_quantities t)

let counter_series t ~metric =
  series_of t ~name:(Metric.name metric)
    ~title:(Metric.name metric ^ " [" ^ Metric.units metric ^ "]")
    (Metric.to_float metric)

let to_json t =
  Json.Obj
    [
      ("workload", Json.String t.workload);
      ("technique", Json.String t.technique);
      ("window", Json.Int t.window);
      ( "kernels",
        Json.List
          (List.map
             (fun k ->
               Json.Obj
                 [
                   ("launch", Json.Int k.index);
                   ("start", Json.Float k.start);
                   ( "windows",
                     Json.List
                       (Array.to_list
                          (Array.mapi
                             (fun j row ->
                               Json.Obj
                                 [
                                   ( "start",
                                     Json.Float
                                       (k.start +. float_of_int (j * t.window))
                                   );
                                   ("cycles", Json.Float (Stats.cycles row));
                                   ( "metrics",
                                     Metric.to_json ~metrics:Metric.counters row
                                   );
                                 ])
                             k.windows)) );
                 ])
             t.kernels) );
    ]

(* {2 Rendering} *)

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let spark_width = 64

(* Bucket [values] down to at most [spark_width] cells (cell = mean of
   its bucket), then map linearly onto the eight block glyphs. *)
let sparkline values =
  let n = Array.length values in
  if n = 0 then ""
  else begin
    let cells =
      if n <= spark_width then values
      else
        Array.init spark_width (fun c ->
            let lo = c * n / spark_width and hi = (c + 1) * n / spark_width in
            let hi = max (lo + 1) hi in
            let sum = ref 0. in
            for i = lo to hi - 1 do
              sum := !sum +. values.(i)
            done;
            !sum /. float_of_int (hi - lo))
    in
    let vmax = Array.fold_left (fun a v -> if v > a then v else a) 0. cells in
    let buf = Buffer.create (Array.length cells * 3) in
    Array.iter
      (fun v ->
        let i =
          if vmax <= 0. then 0
          else min 7 (int_of_float (v /. vmax *. 8.))
        in
        Buffer.add_string buf blocks.(i))
      cells;
    Buffer.contents buf
  end

let render t =
  let buf = Buffer.create 1024 in
  let all = windows t in
  Buffer.add_string buf
    (Printf.sprintf
       "timeline: %s under %s — %d-cycle windows, %d windows over %d launches\n"
       t.workload t.technique t.window (List.length all)
       (List.length t.kernels));
  let rows = Array.of_list (List.map snd all) in
  let line label extract =
    let values = Array.map extract rows in
    let vmax = Array.fold_left (fun a v -> if v > a then v else a) 0. values in
    Buffer.add_string buf
      (Printf.sprintf "  %-28s %s  max %.3g\n" label (sparkline values) vmax)
  in
  List.iter
    (fun (name, _, extract) -> line name extract)
    (derived_quantities t);
  (* Per-kernel drilldown: where inside each launch the cycles went. *)
  List.iter
    (fun k ->
      if Array.length k.windows > 1 then begin
        Buffer.add_string buf
          (Printf.sprintf "  kernel %d (start %.0f, %d windows)\n" k.index
             k.start (Array.length k.windows));
        let values = Array.map ipc k.windows in
        let vmax =
          Array.fold_left (fun a v -> if v > a then v else a) 0. values
        in
        Buffer.add_string buf
          (Printf.sprintf "    %-26s %s  max %.3g\n" "ipc" (sparkline values)
             vmax)
      end)
    t.kernels;
  Buffer.contents buf
