module Series = Repro_report.Series

let series_to_json (s : Series.t) =
  Json.Obj
    [
      ("name", Json.String s.Series.name);
      ("title", Json.String s.Series.title);
      ("group_label", Json.String s.Series.group_label);
      ( "aggregate",
        match s.Series.aggregate with
        | None -> Json.Null
        | Some a -> Json.String a );
      ( "points",
        Json.List
          (List.map
             (fun (p : Series.point) ->
               Json.Obj
                 [
                   ("group", Json.String p.Series.group);
                   ("series", Json.String p.Series.series);
                   ("value", Json.Float p.Series.value);
                 ])
             s.Series.points) );
    ]

let series_of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv j =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Sink.series_of_json: bad field %S" name)
  in
  let* name = field "name" Json.string_opt json in
  let* title = field "title" Json.string_opt json in
  let* group_label = field "group_label" Json.string_opt json in
  let* aggregate =
    match Json.member "aggregate" json with
    | Some Json.Null | None -> Ok None
    | Some j -> (
      match Json.string_opt j with
      | Some a -> Ok (Some a)
      | None -> Error "Sink.series_of_json: bad field \"aggregate\"")
  in
  let* points = field "points" Json.list_opt json in
  let* points =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* group = field "group" Json.string_opt p in
        let* series = field "series" Json.string_opt p in
        let* value = field "value" Json.float_opt p in
        Ok ({ Series.group; series; value } :: acc))
      (Ok []) points
  in
  Ok (Series.make ~name ~title ~group_label ?aggregate (List.rev points))

let series_to_csv = Series.csv

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
