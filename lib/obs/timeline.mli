(** Windowed counter time series: the cycle-resolved companion of
    {!Profile}.

    Built from {!Repro_gpu.Device.window_timeline} (via the workload
    harness), a timeline holds one {!Repro_gpu.Stats.t} delta row per
    N-cycle window of every kernel launch. The rows are the very
    objects the replay loop counted into, so summing a launch's rows
    with [Stats.add] in order reproduces that launch's profile delta
    bit-for-bit — the windowed analogue of the {!Profile.consistent}
    invariant, checked by {!consistent}.

    Exactness of the time axis: sealed windows last exactly the window
    length (an integer, exact as a double) and the last window gets
    [cycles -. k*window], which is exact because the true remainder is
    representable; the in-order fold therefore reproduces the launch
    duration bit-for-bit, not merely approximately. *)

type kernel = {
  index : int;               (** Launch index. *)
  start : float;             (** Absolute start cycle (cumulative). *)
  windows : Repro_gpu.Stats.t array;  (** Per-window deltas, in order. *)
}

type t = {
  workload : string;
  technique : string;
  window : int;              (** Window length in cycles. *)
  kernels : kernel list;
}

val make :
  workload:string -> technique:string -> window:int ->
  kernel_windows:Repro_gpu.Stats.t array list -> t
(** [kernel_windows] in launch order, as the harness snapshots them.
    Raises [Invalid_argument] when [window <= 0]. *)

val n_windows : t -> int

val consistent : t -> profile:Profile.t -> (unit, string) result
(** Per kernel, fold the windows and compare every {!Metric.counters}
    value with the profile's kernel delta; then fold those kernel sums
    and compare with the profile total. All comparisons are exact
    (floats bit-for-bit). [Error] names the kernel and metrics on a
    mismatch, or reports a launch-count disagreement. *)

val windows : t -> (float * Repro_gpu.Stats.t) list
(** Every window across all kernels in time order, with its absolute
    start cycle. *)

val series : t -> Repro_report.Series.t list
(** Derived per-window rates, one series per quantity: IPC, L1/L2 hit
    rate, DRAM sectors per cycle, and the stall share of every label
    that stalled at all during the run. Points are grouped by the
    window's absolute start cycle, so the existing Sink JSON/CSV path
    exports them unchanged. *)

val counter_series : t -> metric:Metric.t -> Repro_report.Series.t
(** Raw per-window values of one registry counter. *)

val to_json : t -> Json.t
(** [{workload, technique, window, kernels: [{launch, start, windows:
    [{start, cycles, metrics}]}]}] with the additive
    {!Metric.counters} per window. *)

val render : t -> string
(** Text sparklines: one row per derived quantity over the whole run,
    then a per-kernel IPC drilldown (one sparkline per launch). *)
