(** Leveled, structured line logging for the serve daemon.

    One event per line, [key=value] pairs, machine-greppable:

    {v ts=0.001204 level=info event=job.done trace=7 wall_s=0.051 cached=false v}

    The timestamp source is injected at construction, so tests build a
    logger over a fake clock and a [Buffer] and assert exact lines. A
    logger may be written to from the event thread and worker Domains
    concurrently; lines are serialized by an internal mutex.

    The disabled logger {!null} costs one branch per call and allocates
    nothing; hot call sites guard field-list construction with
    {!enabled} so a daemon running without [--log-file]/[--log-level]
    pays nothing on the request path. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"] | ["info"] | ["warn"] | ["error"]. *)

val level_of_string : string -> (level, string) result
(** Inverse of {!level_name}; [Error] lists the valid names. *)

type field = Str of string | Int of int | Float of float | Bool of bool

type t

val null : t
(** Logs nothing; {!enabled} is always [false]. *)

val make : ?level:level -> now:(unit -> float) -> write:(string -> unit) -> unit -> t
(** [write] receives one complete line (no trailing newline) per event
    at or above [level] (default [Info]); [now] supplies the [ts=]
    value. *)

val to_channel : ?level:level -> ?now:(unit -> float) -> out_channel -> t
(** {!make} over a channel, flushing per line; [now] defaults to
    seconds since the logger was created ([Unix.gettimeofday]-based). *)

val enabled : t -> level -> bool

val log : t -> level -> string -> (string * field) list -> unit
(** [log t lvl event fields] emits [ts=... level=... event=<event>]
    followed by the fields in order. Values containing spaces, quotes,
    [=] or newlines are quoted with [%S]. No-op below the threshold. *)
