(** Fixed-bucket log-scale histograms for service latencies.

    Every histogram shares one bucket layout (so any two merge exactly):
    bucket 0 holds values below {!lo}; the last bucket holds values at or
    above the top boundary; between them, four buckets per octave (bucket
    boundaries at [lo * 2^(i/4)]) cover [1 us .. ~50 min] when values are
    seconds. Alongside the buckets the exact count, sum, min and max are
    kept, so merged totals fold without loss and quantiles can clamp
    their bucket bounds to the true extremes.

    {!record} touches only preallocated arrays — zero minor-heap
    allocation per sample, the same discipline as the telemetry ring
    (PR 5) — so a histogram can sit on the daemon's request path. *)

type t

val buckets : int
(** Number of buckets in the fixed layout. *)

val lo : float
(** Lower boundary of bucket 1 (values below land in bucket 0). *)

val create : unit -> t

val copy : t -> t
(** Snapshot; the original may keep recording. *)

val clear : t -> unit

val record : t -> float -> unit
(** Negative and NaN samples are recorded as 0. Allocation-free. *)

val count : t -> int
val sum : t -> float

val min_value : t -> float
(** Exact smallest recorded value; [0.] when empty. *)

val max_value : t -> float

val mean : t -> float
(** [sum / count]; [0.] when empty. *)

val bucket_count : t -> int -> int
(** Samples in bucket [i]. *)

val bucket_bounds : int -> float * float
(** [(lower, upper)] boundary of bucket [i]; bucket 0 starts at [0.],
    the last bucket ends at [infinity]. Every recorded value [v]
    satisfies [lower <= v < upper] for its bucket (the recorded-value-
    within-bounds property, qcheck-tested). *)

val merge : t -> t -> t
(** Exact: bucket counts and totals add, extremes combine. Commutative
    and associative on every integer component; sums are commutative
    exactly and associative up to float rounding. *)

val quantile : t -> float -> (float * float) option
(** [quantile t q] with [q] in [0, 1]: bounds [(lower, upper)] on the
    [ceil (q * count)]-th smallest sample, clamped to the exact
    min/max. [None] when empty. Monotone in [q] (both bounds). *)

val to_json : t -> Json.t
(** [{"count": n, "sum": s, "min": m, "max": M, "buckets": {"<i>":
    c, ...}}] with zero buckets omitted; round-trips exactly through
    {!decoder}. *)

val decoder : t Json.Decode.decoder

val equal : t -> t -> bool
(** Same observable state (count, sum, extremes, every bucket). *)
