(* One fixed layout for every histogram, so merge never has to
   reconcile scales: bucket 0 = [0, lo), buckets 1..n-2 log-spaced at
   four per octave, bucket n-1 = [top, inf). 128 buckets at lo = 1e-6
   reach 1e-6 * 2^(126/4) ~ 3000, i.e. microseconds to ~50 minutes when
   samples are seconds. *)

let buckets = 128
let lo = 1e-6
let per_octave = 4.

(* upper.(i) = exclusive upper boundary of bucket i, for i < buckets-1;
   a flat float array so the record path reads boundaries unboxed. *)
let upper =
  Array.init (buckets - 1) (fun i ->
      lo *. (2. ** (float_of_int i /. per_octave)))

(* Scalars live in a float array, not mutable float fields: a mixed
   record boxes every float store, and [record] must not allocate. *)
let s_sum = 0
let s_min = 1
let s_max = 2

type t = { counts : int array; mutable count : int; scalars : float array }

let create () =
  { counts = Array.make buckets 0; count = 0; scalars = Array.make 3 0. }

let copy t =
  {
    counts = Array.copy t.counts;
    count = t.count;
    scalars = Array.copy t.scalars;
  }

let clear t =
  Array.fill t.counts 0 buckets 0;
  t.count <- 0;
  Array.fill t.scalars 0 3 0.

let bucket_bounds i =
  if i <= 0 then (0., upper.(0))
  else if i >= buckets - 1 then (upper.(buckets - 2), infinity)
  else (upper.(i - 1), upper.(i))

(* The log-derived index is a guess good to sub-ulp precision, so it is
   off by at most one bucket at an exact boundary; a single correction
   step against the boundary array (allocation-free — no tuples, no
   refs) makes the within-bounds contract exact. *)
let bucket_of v =
  if v < lo then 0
  else begin
    let g = 1 + int_of_float (Float.log2 (v /. lo) *. per_octave) in
    let g = if g < 1 then 1 else if g > buckets - 1 then buckets - 1 else g in
    if v < upper.(g - 1) then g - 1
    else if g < buckets - 1 && v >= upper.(g) then g + 1
    else g
  end

let record t v =
  let v = if Float.is_nan v || v < 0. then 0. else v in
  let i = bucket_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.scalars.(s_sum) <- t.scalars.(s_sum) +. v;
  if t.count = 0 then begin
    t.scalars.(s_min) <- v;
    t.scalars.(s_max) <- v
  end
  else begin
    if v < t.scalars.(s_min) then t.scalars.(s_min) <- v;
    if v > t.scalars.(s_max) then t.scalars.(s_max) <- v
  end;
  t.count <- t.count + 1

let count t = t.count
let sum t = t.scalars.(s_sum)
let min_value t = t.scalars.(s_min)
let max_value t = t.scalars.(s_max)
let mean t = if t.count = 0 then 0. else t.scalars.(s_sum) /. float_of_int t.count
let bucket_count t i = t.counts.(i)

let merge a b =
  if a.count = 0 then copy b
  else if b.count = 0 then copy a
  else begin
    let t = copy a in
    Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
    t.count <- t.count + b.count;
    t.scalars.(s_sum) <- t.scalars.(s_sum) +. b.scalars.(s_sum);
    if b.scalars.(s_min) < t.scalars.(s_min) then
      t.scalars.(s_min) <- b.scalars.(s_min);
    if b.scalars.(s_max) > t.scalars.(s_max) then
      t.scalars.(s_max) <- b.scalars.(s_max);
    t
  end

let quantile t q =
  if t.count = 0 then None
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else r
    in
    let i = ref 0 and seen = ref t.counts.(0) in
    while !seen < rank && !i < buckets - 1 do
      incr i;
      seen := !seen + t.counts.(!i)
    done;
    let lower, upper = bucket_bounds !i in
    let lower = if t.scalars.(s_min) > lower then t.scalars.(s_min) else lower in
    let upper = if t.scalars.(s_max) < upper then t.scalars.(s_max) else upper in
    (* Clamping to the extremes can cross when all of a bucket's samples
       sit at one point; keep the interval well-formed. *)
    Some (if lower > upper then (upper, upper) else (lower, upper))
  end

let to_json t =
  let nonzero =
    Array.to_list t.counts
    |> List.mapi (fun i c -> (i, c))
    |> List.filter_map (fun (i, c) ->
        if c = 0 then None else Some (string_of_int i, Json.Int c))
  in
  Json.Obj
    ([ ("count", Json.Int t.count); ("sum", Json.Float t.scalars.(s_sum)) ]
    @ (if t.count = 0 then []
       else
         [
           ("min", Json.Float t.scalars.(s_min));
           ("max", Json.Float t.scalars.(s_max));
         ])
    @ [ ("buckets", Json.Obj nonzero) ])

let decoder j =
  let open Json.Decode in
  let t = create () in
  t.count <- field "count" int j;
  t.scalars.(s_sum) <- field "sum" float j;
  t.scalars.(s_min) <- field_default "min" float 0. j;
  t.scalars.(s_max) <- field_default "max" float 0. j;
  List.iter
    (fun (key, c) ->
      match int_of_string_opt key with
      | Some i when i >= 0 && i < buckets -> t.counts.(i) <- c
      | _ -> fail (Printf.sprintf "bad bucket index %S" key))
    (field "buckets" (obj int) j);
  t

let equal a b =
  a.count = b.count && a.scalars = b.scalars && a.counts = b.counts
