type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest decimal string that parses back to exactly [f]; always
   contains '.' or 'e' so the value round-trips as a Float, not an Int. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      (* JSON has no NaN/Infinity tokens. *)
      if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          emit (depth + 1) item)
        items;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          escape_string buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          emit (depth + 1) v)
        fields;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf '}'
  in
  emit 0 t;
  if pretty then Buffer.add_char buf '\n';
  Buffer.contents buf

(* Recursive-descent parser, sufficient for reading back our own output
   (and any standard JSON). *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let code =
             try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
           in
           (* Encode the code point as UTF-8 (surrogates left as-is). *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "bad escape");
        loop ()
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let list_opt = function List items -> Some items | _ -> None

let string_opt = function String s -> Some s | _ -> None

let int_opt = function Int i -> Some i | _ -> None

let float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

(* Decoders.

   Leaves raise [Error_at ([], msg)]; structural combinators catch and
   re-raise with their own path segment consed on, so the exception that
   reaches [run] carries the full path outermost-first and renders as
   "jobs[2].scale: expected a number, got string". *)

module Decode = struct
  type 'a decoder = t -> 'a

  exception Error_at of string list * string

  let fail msg = raise (Error_at ([], msg))

  let type_name = function
    | Null -> "null"
    | Bool _ -> "bool"
    | Int _ -> "int"
    | Float _ -> "float"
    | String _ -> "string"
    | List _ -> "list"
    | Obj _ -> "object"

  let type_error expected j =
    fail (Printf.sprintf "expected %s, got %s" expected (type_name j))

  let string = function String s -> s | j -> type_error "a string" j

  let int = function Int i -> i | j -> type_error "an int" j

  let bool = function Bool b -> b | j -> type_error "a bool" j

  let float = function
    | Float f -> f
    | Int i -> float_of_int i
    | j -> type_error "a number" j

  let nest segment f =
    try f () with Error_at (path, msg) -> raise (Error_at (segment :: path, msg))

  let field name d = function
    | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> nest name (fun () -> d v)
      | None -> nest name (fun () -> fail "missing required field"))
    | j -> type_error "an object" j

  let field_opt name d = function
    | Obj fields -> (
      match List.assoc_opt name fields with
      | None | Some Null -> None
      | Some v -> nest name (fun () -> Some (d v)))
    | j -> type_error "an object" j

  let field_default name d default j =
    match field_opt name d j with Some v -> v | None -> default

  let list d = function
    | List items ->
      List.mapi (fun i v -> nest (Printf.sprintf "[%d]" i) (fun () -> d v)) items
    | j -> type_error "a list" j

  let obj d = function
    | Obj fields ->
      List.map (fun (k, v) -> (k, nest k (fun () -> d v))) fields
    | j -> type_error "an object" j

  let map f d j = f (d j)

  let const v _ = v

  let value j = j

  let render_path = function
    | [] -> "$"
    | first :: rest ->
      List.fold_left
        (fun acc seg ->
          if String.length seg > 0 && seg.[0] = '[' then acc ^ seg
          else acc ^ "." ^ seg)
        first rest

  let run d j =
    match d j with
    | v -> Ok v
    | exception Error_at (path, msg) -> Error (render_path path ^ ": " ^ msg)
end
