(** Export sinks: turn figure {!Repro_report.Series.t} values into
    machine-readable artifacts.

    The figures build their data once as a [Series.t]; the text
    renderers ([Chart]/[Figview]) and these sinks consume the same
    value, so [--json]/[--csv] always emit exactly the numbers the text
    rendering shows. *)

val series_to_json : Repro_report.Series.t -> Json.t
(** [{name, title, group_label, aggregate, points: [{group, series,
    value}]}]; [aggregate] is [null] when the series carries no
    aggregate row. *)

val series_of_json : Json.t -> (Repro_report.Series.t, string) result
(** Inverse of {!series_to_json} (round-trip tested). *)

val series_to_csv : Repro_report.Series.t -> string
(** [group,series,value] lines with a header. *)

val write_file : path:string -> string -> unit
(** Write (truncate) a text file. *)
