type t = {
  mutable submitted : int;
  mutable executed : int;
  mutable dedup_hits : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable stampede_avoided : int;
  mutable requests : int;
  mutable slow_requests : int;
  mutable responses : int;
  mutable decode_errors : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable worker_busy_s : float;
  stages : (string * Hist.t) list;
}

let stage_names =
  [ "decode"; "queued"; "dedup_wait"; "cache_probe"; "run"; "encode";
    "request" ]

let create () =
  {
    submitted = 0;
    executed = 0;
    dedup_hits = 0;
    cache_hits = 0;
    cache_misses = 0;
    stampede_avoided = 0;
    requests = 0;
    slow_requests = 0;
    responses = 0;
    decode_errors = 0;
    bytes_in = 0;
    bytes_out = 0;
    worker_busy_s = 0.;
    stages = List.map (fun n -> (n, Hist.create ())) stage_names;
  }

let stage t name = List.assoc name t.stages

type snapshot = {
  s_submitted : int;
  s_executed : int;
  s_dedup_hits : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_stampede_avoided : int;
  s_requests : int;
  s_slow_requests : int;
  s_responses : int;
  s_decode_errors : int;
  s_bytes_in : int;
  s_bytes_out : int;
  s_worker_busy_s : float;
  s_sessions : int;
  s_queue_depth : int;
  s_inflight : int;
  s_running : int;
}

let snapshot t ~sessions ~queue_depth ~inflight ~running =
  {
    s_submitted = t.submitted;
    s_executed = t.executed;
    s_dedup_hits = t.dedup_hits;
    s_cache_hits = t.cache_hits;
    s_cache_misses = t.cache_misses;
    s_stampede_avoided = t.stampede_avoided;
    s_requests = t.requests;
    s_slow_requests = t.slow_requests;
    s_responses = t.responses;
    s_decode_errors = t.decode_errors;
    s_bytes_in = t.bytes_in;
    s_bytes_out = t.bytes_out;
    s_worker_busy_s = t.worker_busy_s;
    s_sessions = sessions;
    s_queue_depth = queue_depth;
    s_inflight = inflight;
    s_running = running;
  }

let zero =
  {
    s_submitted = 0;
    s_executed = 0;
    s_dedup_hits = 0;
    s_cache_hits = 0;
    s_cache_misses = 0;
    s_stampede_avoided = 0;
    s_requests = 0;
    s_slow_requests = 0;
    s_responses = 0;
    s_decode_errors = 0;
    s_bytes_in = 0;
    s_bytes_out = 0;
    s_worker_busy_s = 0.;
    s_sessions = 0;
    s_queue_depth = 0;
    s_inflight = 0;
    s_running = 0;
  }

type kind = Counter | Gauge
type value = Int of int | Float of float

type metric = {
  m_name : string;
  m_kind : kind;
  m_units : string;
  m_value : snapshot -> value;
}

let name m = m.m_name
let kind m = m.m_kind
let units m = m.m_units
let value m s = m.m_value s

let counter name units f =
  { m_name = name; m_kind = Counter; m_units = units; m_value = (fun s -> Int (f s)) }

let gauge name units f =
  { m_name = name; m_kind = Gauge; m_units = units; m_value = (fun s -> Int (f s)) }

(* One entry per snapshot field, in field order — the coverage test
   pins [List.length all] to the snapshot's field count. *)
let all =
  [
    counter "jobs.submitted" "jobs" (fun s -> s.s_submitted);
    counter "jobs.executed" "jobs" (fun s -> s.s_executed);
    counter "dedup.hits" "jobs" (fun s -> s.s_dedup_hits);
    counter "cache.hits" "jobs" (fun s -> s.s_cache_hits);
    counter "cache.misses" "jobs" (fun s -> s.s_cache_misses);
    counter "cache.stampede_avoided" "jobs" (fun s -> s.s_stampede_avoided);
    counter "requests.total" "requests" (fun s -> s.s_requests);
    counter "requests.slow" "requests" (fun s -> s.s_slow_requests);
    counter "responses.total" "responses" (fun s -> s.s_responses);
    counter "decode.errors" "requests" (fun s -> s.s_decode_errors);
    counter "bytes.in" "bytes" (fun s -> s.s_bytes_in);
    counter "bytes.out" "bytes" (fun s -> s.s_bytes_out);
    {
      m_name = "worker.busy_s";
      m_kind = Counter;
      m_units = "seconds";
      m_value = (fun s -> Float s.s_worker_busy_s);
    };
    gauge "sessions" "clients" (fun s -> s.s_sessions);
    gauge "queue.depth" "jobs" (fun s -> s.s_queue_depth);
    gauge "inflight.size" "jobs" (fun s -> s.s_inflight);
    gauge "jobs.running" "jobs" (fun s -> s.s_running);
  ]

let find n = List.find_opt (fun m -> m.m_name = n) all

let to_json s =
  Json.Obj
    (List.map
       (fun m ->
         ( m.m_name,
           match m.m_value s with
           | Int i -> Json.Int i
           | Float f -> Json.Float f ))
       all)

let decoder j =
  let open Json.Decode in
  let i n = field_default n int 0 j in
  {
    s_submitted = i "jobs.submitted";
    s_executed = i "jobs.executed";
    s_dedup_hits = i "dedup.hits";
    s_cache_hits = i "cache.hits";
    s_cache_misses = i "cache.misses";
    s_stampede_avoided = i "cache.stampede_avoided";
    s_requests = i "requests.total";
    s_slow_requests = i "requests.slow";
    s_responses = i "responses.total";
    s_decode_errors = i "decode.errors";
    s_bytes_in = i "bytes.in";
    s_bytes_out = i "bytes.out";
    s_worker_busy_s = field_default "worker.busy_s" float 0. j;
    s_sessions = i "sessions";
    s_queue_depth = i "queue.depth";
    s_inflight = i "inflight.size";
    s_running = i "jobs.running";
  }
