(** Chrome trace-event exporter: renders a {!Repro_gpu.Telemetry.dump}
    as JSON loadable in Perfetto or [chrome://tracing].

    Track layout (thread ids within one process): tid [0..n_sms-1] are
    the SMs (stall intervals and L1 accesses), tid [n_sms] is L2, tid
    [n_sms+1] is DRAM, tid [n_sms+2] carries the kernel launch spans.
    Thread names are emitted as ["M"] metadata events so Perfetto labels
    the tracks. When a {!Timeline.t} is supplied, its derived per-window
    rates are added as ["C"] counter tracks (IPC, hit rates, DRAM
    sectors per cycle). *)

val to_json :
  ?timeline:Timeline.t ->
  workload:string -> technique:string ->
  Repro_gpu.Telemetry.dump -> Json.t
(** [{traceEvents: [...], displayTimeUnit: "ns"}] — timestamps are in
    simulated cycles, reported through the trace format's microsecond
    field (1 cycle = 1 us) so Perfetto's zooming works unmodified. *)

val validate : Json.t -> (unit, string) result
(** Structural check of the Chrome trace-event format: a [traceEvents]
    list whose entries are objects with a string [name], a [ph] in
    {["X"; "C"; "M"]}, integer [pid]/[tid], a numeric [ts], and — for
    ["X"] phases — a numeric [dur >= 0]. Used by the round-trip tests
    and [repro trace] before writing the file. *)
