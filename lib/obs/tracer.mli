(** Chrome trace-event exporter: renders a {!Repro_gpu.Telemetry.dump}
    as JSON loadable in Perfetto or [chrome://tracing].

    Track layout (thread ids within one process): tid [0..n_sms-1] are
    the SMs (stall intervals and L1 accesses), tid [n_sms] is L2, tid
    [n_sms+1] is DRAM, tid [n_sms+2] carries the kernel launch spans.
    Thread names are emitted as ["M"] metadata events so Perfetto labels
    the tracks. When a {!Timeline.t} is supplied, its derived per-window
    rates are added as ["C"] counter tracks (IPC, hit rates, DRAM
    sectors per cycle). *)

val to_json :
  ?timeline:Timeline.t ->
  workload:string -> technique:string ->
  Repro_gpu.Telemetry.dump -> Json.t
(** [{traceEvents: [...], displayTimeUnit: "ns"}] — timestamps are in
    simulated cycles, reported through the trace format's microsecond
    field (1 cycle = 1 us) so Perfetto's zooming works unmodified. *)

val validate : Json.t -> (unit, string) result
(** Structural check of the Chrome trace-event format: a [traceEvents]
    list whose entries are objects with a string [name], a [ph] in
    {["X"; "C"; "M"]}, integer [pid]/[tid], a numeric [ts], and — for
    ["X"] phases — a numeric [dur >= 0]. Used by the round-trip tests
    and [repro trace] before writing the file. *)

(** {2 Span ring} — the serve daemon's request-stage spans.

    A bounded, drop-oldest ring of named spans, the service-side
    counterpart of {!Repro_gpu.Telemetry}'s event ring: preallocated
    flat arrays (one per span component), so {!Ring.record} allocates
    nothing on the request path; overflow overwrites the oldest span and
    is tallied, never grows. Writers from the daemon's event thread and
    worker Domains are serialized by an internal mutex. *)

module Ring : sig
  type span = {
    name : string;   (** stage, e.g. ["run"] — callers pass literals *)
    track : int;     (** 0 = event thread, 1..W = worker Domains *)
    trace : int;     (** request trace id *)
    ts : float;      (** seconds since server start *)
    dur : float;     (** seconds *)
  }

  type t

  val create : capacity:int -> t
  (** [capacity] is clamped to at least 1. *)

  val record :
    t -> name:string -> track:int -> trace:int -> ts:float -> dur:float ->
    unit
  (** Allocation-free. *)

  val recorded : t -> int
  (** Spans ever recorded (including overwritten ones). *)

  val dropped : t -> int
  (** [max 0 (recorded - capacity)]. *)

  val dump : t -> span list
  (** Surviving spans, oldest first. *)
end

val spans_to_json : ?tracks:(int * string) list -> Ring.span list -> Json.t
(** Chrome trace-event JSON (loads in Perfetto, passes {!validate}):
    one ["X"] event per span — [ts]/[dur] in microseconds, the trace id
    in [args.trace] — plus ["M"] thread-name metadata for [tracks]
    (pairs of track id and display name). *)
