(** Service-level metrics for the serve daemon, in the style of
    {!Metric}: every counter the scheduler keeps is an enumerable
    registry entry with a stable dotted id, a kind, and an extractor
    over an immutable {!snapshot} — so [ctl stats], its JSON export and
    the tests all read one surface, and a counter added to {!t} without
    a registry entry fails the coverage test.

    {!t} is the live mutable state (incremented by the daemon's event
    thread and workers under the scheduler mutex); {!snapshot} freezes
    it together with the instantaneous gauges the server derives from
    its scheduler tables. Alongside the counters, {!t} owns one
    {!Hist} per request stage ({!stage_names}), so stage latencies ride
    the same snapshot discipline. *)

type t = {
  mutable submitted : int;      (** job submissions accepted *)
  mutable executed : int;       (** jobs measured on a worker *)
  mutable dedup_hits : int;     (** submissions attached to an in-flight job *)
  mutable cache_hits : int;     (** submissions served from the result cache *)
  mutable cache_misses : int;   (** cache-enabled executions that had to run *)
  mutable stampede_avoided : int;
      (** dedup hits on cache-enabled entries: submissions that would
          have raced a cold cache without the in-flight table *)
  mutable requests : int;       (** request lines answered to completion *)
  mutable slow_requests : int;  (** requests above the slow threshold *)
  mutable responses : int;      (** response lines written *)
  mutable decode_errors : int;  (** request lines that failed to decode *)
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable worker_busy_s : float;  (** summed execution wall time *)
  stages : (string * Hist.t) list;  (** one histogram per {!stage_names} *)
}

val create : unit -> t

val stage_names : string list
(** [["decode"; "queued"; "dedup_wait"; "cache_probe"; "run"; "encode";
    "request"]] — the life of a request, decode to final response;
    ["request"] is end-to-end and counts once per request line. *)

val stage : t -> string -> Hist.t
(** The histogram for one of {!stage_names}; raises [Not_found] on any
    other name. *)

(** {2 Snapshots} *)

type snapshot = {
  s_submitted : int;
  s_executed : int;
  s_dedup_hits : int;
  s_cache_hits : int;
  s_cache_misses : int;
  s_stampede_avoided : int;
  s_requests : int;
  s_slow_requests : int;
  s_responses : int;
  s_decode_errors : int;
  s_bytes_in : int;
  s_bytes_out : int;
  s_worker_busy_s : float;
  s_sessions : int;     (** gauge: connected clients *)
  s_queue_depth : int;  (** gauge: jobs queued across all sessions *)
  s_inflight : int;     (** gauge: in-flight table size *)
  s_running : int;      (** gauge: jobs on workers *)
}

val snapshot :
  t -> sessions:int -> queue_depth:int -> inflight:int -> running:int ->
  snapshot
(** Freeze the counters; the four gauges are instantaneous scheduler
    facts only the server can derive, so it passes them in. *)

val zero : snapshot

(** {2 The registry} *)

type kind = Counter | Gauge
type value = Int of int | Float of float

type metric

val name : metric -> string
(** Stable dotted id, e.g. ["cache.stampede_avoided"]. *)

val kind : metric -> kind
val units : metric -> string
val value : metric -> snapshot -> value

val all : metric list
(** One entry per {!snapshot} field; the coverage test pins the
    length to the field count. *)

val find : string -> metric option

(** {2 Wire form} — carried inside the [server_stats] response. *)

val to_json : snapshot -> Json.t
(** Object keyed by registry id, registry order; round-trips exactly
    through {!decoder}. *)

val decoder : snapshot Json.Decode.decoder
(** Lenient to missing ids (they default to zero), so the form can grow
    without a schema bump. *)
