module Stats = Repro_gpu.Stats
module Table = Repro_report.Table

type kernel = {
  index : int;
  cycles : float;
  stats : Stats.t;
}

type t = {
  workload : string;
  technique : string;
  kernels : kernel list;
  total : Stats.t;
}

let make ~workload ~technique ~kernel_stats ~total =
  {
    workload;
    technique;
    kernels =
      List.mapi
        (fun index stats -> { index; cycles = Stats.cycles stats; stats })
        kernel_stats;
    total = Stats.copy total;
  }

let consistent t =
  (* Replay the device's own accumulation: folding the per-launch deltas
     with [Stats.add] performs the identical sequence of additions, so
     even the float counters must match bit-for-bit. *)
  let acc = Stats.create () in
  List.iter (fun k -> Stats.add acc k.stats) t.kernels;
  let mismatches =
    List.filter_map
      (fun m ->
        let summed = Metric.value m acc and total = Metric.value m t.total in
        if summed = total then None
        else
          Some
            (Format.asprintf "%s: kernels sum to %a, total is %a" (Metric.name m)
               Metric.pp_value summed Metric.pp_value total))
      Metric.counters
  in
  match mismatches with
  | [] -> Ok ()
  | ms -> Error (String.concat "; " ms)

let kernel_to_json k =
  Json.Obj
    [
      ("launch", Json.Int k.index);
      ("cycles", Json.Float k.cycles);
      ("metrics", Metric.to_json ~metrics:Metric.counters k.stats);
    ]

let to_json t =
  Json.Obj
    [
      ("workload", Json.String t.workload);
      ("technique", Json.String t.technique);
      ("kernels", Json.List (List.map kernel_to_json t.kernels));
      ("total", Metric.to_json t.total);
    ]

let csv_value = function
  | Metric.Int i -> string_of_int i
  | Metric.Float f -> Json.float_repr f

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "launch,metric,value\n";
  let row launch stats metrics =
    List.iter
      (fun m ->
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,%s\n" launch (Metric.name m)
             (csv_value (Metric.value m stats))))
      metrics
  in
  List.iter
    (fun k -> row (string_of_int k.index) k.stats Metric.counters)
    t.kernels;
  row "total" t.total Metric.all;
  Buffer.contents buf

let render t =
  let table =
    Table.create
      ~columns:
        [
          ("launch", Table.Right);
          ("cycles", Table.Right);
          ("instr", Table.Right);
          ("ld-trans", Table.Right);
          ("st-trans", Table.Right);
          ("L1%", Table.Right);
          ("dram", Table.Right);
        ]
  in
  let cell m stats = Format.asprintf "%a" Metric.pp_value (Metric.value m stats) in
  let row label stats =
    Table.add_row table
      [
        label;
        Table.cell_f ~digits:0 (Metric.to_float Metric.cycles stats);
        cell Metric.instructions_total stats;
        cell Metric.load_transactions stats;
        cell Metric.store_transactions stats;
        Table.cell_pct (Metric.to_float Metric.l1_hit_rate stats);
        cell Metric.dram_sectors stats;
      ]
  in
  List.iter (fun k -> row (string_of_int k.index) k.stats) t.kernels;
  Table.add_separator table;
  row "total" t.total;
  Printf.sprintf "profile: %s under %s — %d kernel launches\n%s" t.workload
    t.technique (List.length t.kernels) (Table.render table)
