type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | _ ->
    Error
      (Printf.sprintf "unknown log level %S; valid levels: debug, info, \
                       warn, error" s)

type field = Str of string | Int of int | Float of float | Bool of bool

type t = {
  threshold : int;  (* max_int = disabled (the null logger) *)
  now : unit -> float;
  write : string -> unit;
  mutex : Mutex.t;
}

let null =
  {
    threshold = max_int;
    now = (fun () -> 0.);
    write = ignore;
    mutex = Mutex.create ();
  }

let make ?(level = Info) ~now ~write () =
  { threshold = level_rank level; now; write; mutex = Mutex.create () }

let to_channel ?level ?now oc =
  let now =
    match now with
    | Some f -> f
    | None ->
      let t0 = Unix.gettimeofday () in
      fun () -> Unix.gettimeofday () -. t0
  in
  make ?level ~now
    ~write:(fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)
    ()

let enabled t level = level_rank level >= t.threshold

let needs_quoting s =
  s = ""
  || String.exists
       (function ' ' | '"' | '=' | '\n' | '\r' | '\t' -> true | _ -> false)
       s

let add_value buf = function
  | Str s -> if needs_quoting s then Buffer.add_string buf (Printf.sprintf "%S" s) else Buffer.add_string buf s
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (Printf.sprintf "%.6f" f)
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")

let log t level event fields =
  if enabled t level then begin
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Printf.sprintf "ts=%.6f" (t.now ()));
    Buffer.add_string buf " level=";
    Buffer.add_string buf (level_name level);
    Buffer.add_string buf " event=";
    Buffer.add_string buf event;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        add_value buf v)
      fields;
    Mutex.lock t.mutex;
    (try t.write (Buffer.contents buf)
     with e ->
       Mutex.unlock t.mutex;
       raise e);
    Mutex.unlock t.mutex
  end
