module Stats = Repro_gpu.Stats
module Label = Repro_gpu.Label
module Violation = Repro_san.Violation

type value = Int of int | Float of float

type t = {
  name : string;
  units : string;
  extract : Stats.t -> value;
}

let name m = m.name
let units m = m.units

let value m stats = m.extract stats

let to_float m stats =
  match m.extract stats with Int i -> float_of_int i | Float f -> f

(* {2 Raw counters: one metric per Stats field} *)

let cycles =
  { name = "cycles"; units = "cycles"; extract = (fun s -> Float (Stats.cycles s)) }

let instructions_mem =
  {
    name = "instructions.mem";
    units = "warp_instructions";
    extract = (fun s -> Int (Stats.instructions s `Mem));
  }

let instructions_compute =
  {
    name = "instructions.compute";
    units = "warp_instructions";
    extract = (fun s -> Int (Stats.instructions s `Compute));
  }

let instructions_ctrl =
  {
    name = "instructions.ctrl";
    units = "warp_instructions";
    extract = (fun s -> Int (Stats.instructions s `Ctrl));
  }

let load_transactions =
  {
    name = "load_transactions";
    units = "sectors";
    extract = (fun s -> Int (Stats.load_transactions s));
  }

let store_transactions =
  {
    name = "store_transactions";
    units = "sectors";
    extract = (fun s -> Int (Stats.store_transactions s));
  }

let l1_hits =
  { name = "l1.hits"; units = "accesses"; extract = (fun s -> Int (Stats.l1_hits s)) }

let l1_misses =
  {
    name = "l1.misses";
    units = "accesses";
    extract = (fun s -> Int (Stats.l1_misses s));
  }

let l2_hits =
  { name = "l2.hits"; units = "accesses"; extract = (fun s -> Int (Stats.l2_hits s)) }

let l2_misses =
  {
    name = "l2.misses";
    units = "accesses";
    extract = (fun s -> Int (Stats.l2_misses s));
  }

let dram_sectors =
  {
    name = "dram.sectors";
    units = "sectors";
    extract = (fun s -> Int (Stats.dram_sectors s));
  }

let trace_dropped =
  {
    name = "trace.dropped";
    units = "events";
    extract = (fun s -> Int (Stats.trace_dropped s));
  }

let tlb_l1_hits =
  {
    name = "tlb.l1_hits";
    units = "lookups";
    extract = (fun s -> Int (Stats.tlb_l1_hits s));
  }

let tlb_l2_hits =
  {
    name = "tlb.l2_hits";
    units = "lookups";
    extract = (fun s -> Int (Stats.tlb_l2_hits s));
  }

let tlb_walks =
  {
    name = "tlb.walks";
    units = "walks";
    extract = (fun s -> Int (Stats.tlb_walks s));
  }

let tlb_walk_cycles =
  {
    name = "tlb.walk_cycles";
    units = "cycles";
    extract = (fun s -> Float (Stats.tlb_walk_cycles s));
  }

let tlb = [ tlb_l1_hits; tlb_l2_hits; tlb_walks; tlb_walk_cycles ]

let scalars =
  [
    cycles;
    instructions_mem;
    instructions_compute;
    instructions_ctrl;
    load_transactions;
    store_transactions;
    l1_hits;
    l1_misses;
    l2_hits;
    l2_misses;
    dram_sectors;
    trace_dropped;
    tlb_l1_hits;
    tlb_l2_hits;
    tlb_walks;
    tlb_walk_cycles;
  ]

let stall_cycles label =
  {
    name = "stall_cycles." ^ Label.slug label;
    units = "cycles";
    extract = (fun s -> Float (Stats.stall_cycles s label));
  }

let load_transactions_for label =
  {
    name = "load_transactions." ^ Label.slug label;
    units = "sectors";
    extract = (fun s -> Int (Stats.load_transactions_for s label));
  }

let per_label =
  List.map stall_cycles Label.all @ List.map load_transactions_for Label.all

let san_violations_for kind =
  {
    name = "san_violations." ^ Violation.kind_slug kind;
    units = "violations";
    extract = (fun s -> Int (Stats.san_violations_for s kind));
  }

let san = List.map san_violations_for Violation.kinds

let counters = scalars @ per_label @ san

(* {2 Derived metrics} *)

let instructions_total =
  {
    name = "instructions.total";
    units = "warp_instructions";
    extract = (fun s -> Int (Stats.total_instructions s));
  }

let l1_hit_rate =
  {
    name = "l1.hit_rate";
    units = "ratio";
    extract = (fun s -> Float (Stats.l1_hit_rate s));
  }

let l2_hit_rate =
  {
    name = "l2.hit_rate";
    units = "ratio";
    extract = (fun s -> Float (Stats.l2_hit_rate s));
  }

let stall_cycles_total =
  {
    name = "stall_cycles.total";
    units = "cycles";
    extract = (fun s -> Float (Stats.total_stall_cycles s));
  }

let derived = [ instructions_total; l1_hit_rate; l2_hit_rate; stall_cycles_total ]

let all = counters @ derived

let find name = List.find_opt (fun m -> m.name = name) all

let json_value = function Int i -> Json.Int i | Float f -> Json.Float f

let to_json ?(metrics = all) stats =
  Json.Obj (List.map (fun m -> (m.name, json_value (m.extract stats))) metrics)

(* {2 Rendering} *)

let pp_value ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf ppf "%.0f" f
    else Format.fprintf ppf "%.4g" f

let pp_stats ppf stats =
  let width =
    List.fold_left (fun acc m -> max acc (String.length m.name)) 0 all
  in
  Format.pp_open_vbox ppf 0;
  let first = ref true in
  List.iter
    (fun m ->
      let v = m.extract stats in
      let skip =
        (* Per-label zeros would drown the signal: a run under one
           technique exercises only that technique's labels. Sanitizer
           and telemetry-drop counters likewise only matter when
           something fired. *)
        (match v with Int i -> i = 0 | Float f -> f = 0.)
        && List.exists
             (fun pm -> pm.name = m.name)
             ((trace_dropped :: tlb) @ per_label @ san)
      in
      if not skip then begin
        if not !first then Format.pp_print_cut ppf ();
        first := false;
        Format.fprintf ppf "%-*s  %a [%s]" width m.name pp_value v m.units
      end)
    all;
  Format.pp_close_box ppf ()
