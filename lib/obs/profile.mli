(** Per-kernel profiles: the counter timeline of one measured run.

    Built from {!Repro_workloads.Harness.run}'s [kernel_stats] (via the
    plain strings/stats so this library needn't depend on the workload
    layer), a profile is the simulator's answer to an nvprof/Nsight
    kernel timeline — one counter-delta row per kernel launch plus the
    run totals, exported as text, JSON or CSV. *)

type kernel = {
  index : int;          (** Launch index within the measured region. *)
  cycles : float;       (** This launch's duration. *)
  stats : Repro_gpu.Stats.t;  (** This launch's counter deltas. *)
}

type t = {
  workload : string;
  technique : string;
  kernels : kernel list;
  total : Repro_gpu.Stats.t;
}

val make :
  workload:string -> technique:string ->
  kernel_stats:Repro_gpu.Stats.t list -> total:Repro_gpu.Stats.t -> t
(** [kernel_stats] in launch order; [total] is copied. *)

val consistent : t -> (unit, string) result
(** Check that every counter in {!Metric.counters} summed over the
    kernels equals the total — exactly, floats included (the deltas and
    the total are produced by the same [Stats.add] fold). [Error]
    lists the mismatching metrics. *)

val to_json : t -> Json.t
(** [{workload, technique, kernels: [{launch, cycles, metrics}], total}];
    kernel metrics are the additive {!Metric.counters}, the total also
    carries the derived metrics. *)

val to_csv : t -> string
(** Long-form [launch,metric,value] rows (launch ["total"] for the run
    totals). *)

val render : t -> string
(** Text table: one row per launch and a separated totals row. *)
