(** The metric registry: every counter {!Repro_gpu.Stats} records, as an
    enumerable value with a stable name, units, and an extractor.

    This is the single read surface over the simulator's counters —
    figures, the profile subcommand, JSON/CSV exports, and the [repro
    run] breakdown all enumerate or look up metrics here instead of
    calling per-field getters, so a counter added to [Stats] becomes
    visible everywhere by registering it once (and the registry-coverage
    test fails until it is). *)

type value = Int of int | Float of float

type t
(** A named view of one counter (or derived quantity). *)

val name : t -> string
(** Stable dotted identifier, e.g. ["l1.hits"], ["stall_cycles.vtable_load"]. *)

val units : t -> string

val value : t -> Repro_gpu.Stats.t -> value

val to_float : t -> Repro_gpu.Stats.t -> float

(** {2 Raw scalar counters} — one per scalar [Stats] field. *)

val cycles : t
val instructions_mem : t
val instructions_compute : t
val instructions_ctrl : t
val load_transactions : t
val store_transactions : t
val l1_hits : t
val l1_misses : t
val l2_hits : t
val l2_misses : t
val dram_sectors : t

val trace_dropped : t
(** Telemetry events lost to the ring's drop-oldest spill policy
    (["trace.dropped"]; zero unless tracing is enabled and the ring
    overflowed). *)

val tlb_l1_hits : t
val tlb_l2_hits : t
val tlb_walks : t

val tlb_walk_cycles : t
(** Cycles spent in modelled page walks (["tlb.walk_cycles"]; all four
    [tlb.*] metrics are zero unless a run enables address translation
    with [--pages]). *)

val tlb : t list
(** The four [tlb.*] metrics above. *)

val scalars : t list
(** All of the above; the coverage test pins its length to the number of
    scalar fields in [Stats.t]. *)

(** {2 Per-label counters} — the two [Label]-indexed arrays in [Stats]. *)

val stall_cycles : Repro_gpu.Label.t -> t
(** ["stall_cycles.<slug>"]. *)

val load_transactions_for : Repro_gpu.Label.t -> t
(** ["load_transactions.<slug>"]. *)

val per_label : t list
(** Both families over {!Repro_gpu.Label.all} — [2 * Label.count] metrics. *)

(** {2 Sanitizer counters} — the violation-kind-indexed array in [Stats]. *)

val san_violations_for : Repro_san.Violation.kind -> t
(** ["san_violations.<slug>"]. *)

val san : t list
(** The family over {!Repro_san.Violation.kinds}. *)

val counters : t list
(** [scalars @ per_label @ san]: the additive counters. Summing a metric
    in this list over per-kernel deltas yields the run total (the
    {!Profile.consistent} invariant); derived metrics (rates) are not
    additive and are excluded. *)

(** {2 Derived metrics} — computed from counters, not additive. *)

val instructions_total : t

val l1_hit_rate : t
(** In [0,1]. *)

val l2_hit_rate : t
val stall_cycles_total : t

val derived : t list

val all : t list
(** [counters @ derived]. *)

val find : string -> t option
(** Look up by {!name} in {!all}. *)

val to_json : ?metrics:t list -> Repro_gpu.Stats.t -> Json.t
(** Object mapping metric name to value; [metrics] defaults to {!all}. *)

val pp_value : Format.formatter -> value -> unit

val pp_stats : Format.formatter -> Repro_gpu.Stats.t -> unit
(** Registry-driven full breakdown: one aligned [name value [units]]
    line per metric, omitting per-label entries whose value is zero
    (a run exercises only its own technique's labels). *)
