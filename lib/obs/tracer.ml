module Telemetry = Repro_gpu.Telemetry
module Label = Repro_gpu.Label
module Stats = Repro_gpu.Stats

let pid = 1

let complete ~name ~tid ~ts ~dur ?(args = []) () =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "X");
       ("ts", Json.Float ts);
       ("dur", Json.Float dur);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
     ]
    @ match args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let counter ~name ~ts ~value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Float ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("value", Json.Float value) ]);
    ]

let metadata ~name ~tid ~args =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("ts", Json.Float 0.);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let thread_names n_sms =
  let thread tid label =
    metadata ~name:"thread_name" ~tid ~args:[ ("name", Json.String label) ]
  in
  List.init n_sms (fun i -> thread i (Printf.sprintf "SM %d" i))
  @ [
      thread n_sms "L2";
      thread (n_sms + 1) "DRAM";
      thread (n_sms + 2) "kernels";
      thread (n_sms + 3) "TLB";
    ]

let event_json n_sms (e : Telemetry.event) =
  let open Telemetry in
  if e.kind = Ring.kind_stall then
    complete
      ~name:("stall." ^ Label.slug (Label.of_index e.arg_a))
      ~tid:e.track ~ts:e.ts ~dur:e.dur
      ~args:[ ("warp", Json.Int e.arg_b) ]
      ()
  else if e.kind = Ring.kind_l1 then
    complete
      ~name:(if e.arg_a = 1 then "l1.hit" else "l1.miss")
      ~tid:e.track ~ts:e.ts ~dur:e.dur
      ~args:[ ("sector", Json.Int e.arg_b) ]
      ()
  else if e.kind = Ring.kind_l2 then
    let name =
      match e.arg_a with
      | 0 -> "l2.load_miss"
      | 1 -> "l2.load_hit"
      | 2 -> "l2.store_miss"
      | _ -> "l2.store_hit"
    in
    complete ~name ~tid:n_sms ~ts:e.ts ~dur:e.dur
      ~args:[ ("sector", Json.Int e.arg_b); ("sm", Json.Int e.track) ]
      ()
  else if e.kind = Ring.kind_tlb then
    complete ~name:"tlb.walk" ~tid:(n_sms + 3) ~ts:e.ts ~dur:e.dur
      ~args:
        [
          ("levels", Json.Int e.arg_a);
          ("sector", Json.Int e.arg_b);
          ("sm", Json.Int e.track);
        ]
      ()
  else
    complete
      ~name:(if e.arg_a >= 2 then "dram.fill" else "dram.store")
      ~tid:(n_sms + 1) ~ts:e.ts ~dur:e.dur
      ~args:[ ("sectors", Json.Int e.arg_a); ("sm", Json.Int e.track) ]
      ()

let counter_events timeline =
  let quantities =
    [
      ("ipc", fun row ->
          let c = Stats.cycles row in
          if c <= 0. then 0.
          else float_of_int (Stats.total_instructions row) /. c);
      ("l1.hit_rate", Stats.l1_hit_rate);
      ("l2.hit_rate", Stats.l2_hit_rate);
      ("dram.sectors_per_cycle", fun row ->
          let c = Stats.cycles row in
          if c <= 0. then 0. else float_of_int (Stats.dram_sectors row) /. c);
    ]
  in
  List.concat_map
    (fun (start, row) ->
      List.map
        (fun (name, extract) -> counter ~name ~ts:start ~value:(extract row))
        quantities)
    (Timeline.windows timeline)

let to_json ?timeline ~workload ~technique (dump : Telemetry.dump) =
  let n_sms = dump.n_sms in
  let kernel_spans =
    List.map
      (fun (k : Telemetry.kernel_span) ->
        complete
          ~name:(Printf.sprintf "kernel %d" k.index)
          ~tid:(n_sms + 2) ~ts:k.start ~dur:k.dur
          ~args:[ ("launch", Json.Int k.index) ]
          ())
      dump.kernels
  in
  let events =
    Array.to_list (Array.map (event_json n_sms) dump.events)
  in
  let counters =
    match timeline with None -> [] | Some t -> counter_events t
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (thread_names n_sms @ kernel_spans @ events @ counters) );
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("workload", Json.String workload);
            ("technique", Json.String technique);
            ("window", Json.Int dump.window);
            ("dropped", Json.Int dump.dropped);
          ] );
    ]

(* {2 Span ring} *)

module Ring = struct
  type span = {
    name : string;
    track : int;
    trace : int;
    ts : float;
    dur : float;
  }

  (* SoA, like Telemetry.Ring: the component arrays are preallocated at
     [create] so [record] writes fields in place and allocates nothing
     (float array stores are unboxed). *)
  type t = {
    names : string array;
    tracks : int array;
    traces : int array;
    tss : float array;
    durs : float array;
    mutable head : int;  (* next write slot *)
    mutable total : int;  (* spans ever recorded *)
    mutex : Mutex.t;
  }

  let create ~capacity =
    let capacity = max 1 capacity in
    {
      names = Array.make capacity "";
      tracks = Array.make capacity 0;
      traces = Array.make capacity 0;
      tss = Array.make capacity 0.;
      durs = Array.make capacity 0.;
      head = 0;
      total = 0;
      mutex = Mutex.create ();
    }

  let record t ~name ~track ~trace ~ts ~dur =
    Mutex.lock t.mutex;
    let i = t.head in
    t.names.(i) <- name;
    t.tracks.(i) <- track;
    t.traces.(i) <- trace;
    t.tss.(i) <- ts;
    t.durs.(i) <- dur;
    t.head <- (if i + 1 = Array.length t.names then 0 else i + 1);
    t.total <- t.total + 1;
    Mutex.unlock t.mutex

  let recorded t =
    Mutex.lock t.mutex;
    let n = t.total in
    Mutex.unlock t.mutex;
    n

  let dropped t =
    Mutex.lock t.mutex;
    let n = max 0 (t.total - Array.length t.names) in
    Mutex.unlock t.mutex;
    n

  let dump t =
    Mutex.lock t.mutex;
    let cap = Array.length t.names in
    let live = min t.total cap in
    (* Oldest-first: when full, the oldest surviving span sits at
       [head]; otherwise the ring starts at slot 0. *)
    let start = if t.total >= cap then t.head else 0 in
    let spans =
      List.init live (fun k ->
          let i = (start + k) mod cap in
          {
            name = t.names.(i);
            track = t.tracks.(i);
            trace = t.traces.(i);
            ts = t.tss.(i);
            dur = t.durs.(i);
          })
    in
    Mutex.unlock t.mutex;
    spans
end

let spans_to_json ?(tracks = []) spans =
  let names =
    List.map
      (fun (tid, label) ->
        metadata ~name:"thread_name" ~tid
          ~args:[ ("name", Json.String label) ])
      tracks
  in
  let events =
    List.map
      (fun (s : Ring.span) ->
        complete ~name:s.name ~tid:s.track ~ts:(s.ts *. 1e6)
          ~dur:(s.dur *. 1e6)
          ~args:[ ("trace", Json.Int s.trace) ]
          ())
      spans
  in
  Json.Obj
    [
      ("traceEvents", Json.List (names @ events));
      ("displayTimeUnit", Json.String "ms");
    ]

(* {2 Validation} *)

let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* events =
    match Json.member "traceEvents" json with
    | Some (Json.List es) -> Ok es
    | Some _ -> Error "traceEvents is not a list"
    | None -> Error "missing traceEvents"
  in
  let check i ev =
    let fail msg = Error (Printf.sprintf "event %d: %s" i msg) in
    match ev with
    | Json.Obj _ ->
      let* ph =
        match Json.member "ph" ev with
        | Some (Json.String ph) when List.mem ph [ "X"; "C"; "M" ] -> Ok ph
        | Some (Json.String ph) -> fail ("unexpected phase " ^ ph)
        | _ -> fail "missing ph"
      in
      let* () =
        match Json.member "name" ev with
        | Some (Json.String _) -> Ok ()
        | _ -> fail "missing name"
      in
      let* () =
        match (Json.member "pid" ev, Json.member "tid" ev) with
        | Some (Json.Int _), Some (Json.Int _) -> Ok ()
        | _ -> fail "pid/tid must be integers"
      in
      let number = function
        | Some (Json.Float _) | Some (Json.Int _) -> true
        | _ -> false
      in
      let* () =
        if number (Json.member "ts" ev) then Ok () else fail "missing ts"
      in
      if ph = "X" then
        match Json.member "dur" ev with
        | Some (Json.Float d) when d >= 0. -> Ok ()
        | Some (Json.Int d) when d >= 0 -> Ok ()
        | Some _ -> fail "negative dur"
        | None -> fail "X phase without dur"
      else Ok ()
    | _ -> fail "not an object"
  in
  let rec go i = function
    | [] -> Ok ()
    | ev :: rest -> ( match check i ev with Ok () -> go (i + 1) rest | e -> e)
  in
  go 0 events
