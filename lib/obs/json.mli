(** Minimal JSON values, writer and reader.

    The toolchain has no JSON library, and the exports ({!Sink},
    {!Profile}, [repro --json]) need only this much: a value type, a
    serializer whose floats round-trip exactly (shortest representation
    that parses back to the same IEEE double), and a strict parser for
    reading our own output back in tests and post-processing scripts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float_repr : float -> string
(** Shortest decimal form that parses back to exactly the same double,
    always with a ['.'] or exponent (also used for CSV cells). *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces and ends
    with a newline. Floats always carry a ['.'] or exponent so they parse
    back as [Float]; NaN and infinities become [null]. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document. [Float]/[Int] distinction
    follows the lexical form: a number with a fraction or exponent is a
    [Float]. *)

(** {2 Accessors} — all total, [None] on a type mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]. *)

val list_opt : t -> t list option

val string_opt : t -> string option

val int_opt : t -> int option

val float_opt : t -> float option
(** Accepts [Int] too (JSON numbers without a fraction part). *)

(** {2 Decoders} — structure-directed readers with path-tracked errors.

    The wire protocol ({!Repro_exec.Request}/[Response]) decodes client
    messages with these: a failed decode reports the offending field by
    its full path (["jobs[2].scale: expected a number, got string"]),
    which the daemon echoes back verbatim, so a misbehaving client learns
    exactly which field it got wrong. *)

module Decode : sig
  type 'a decoder = t -> 'a
  (** Decoders raise internally; only {!run} exposes the error. *)

  val run : 'a decoder -> t -> ('a, string) result
  (** Apply a decoder; [Error] carries ["path: message"] where the path
      spells the offending field ([jobs[2].scale]) or [$] at the root. *)

  val fail : string -> 'a
  (** Fail the surrounding {!run} with [message] at the current path. *)

  val string : string decoder
  val int : int decoder
  val bool : bool decoder

  val float : float decoder
  (** Accepts [Int] (JSON numbers without a fraction part). *)

  val field : string -> 'a decoder -> 'a decoder
  (** Required object field; missing or mistyped fields report the
      field's name in the error path. *)

  val field_opt : string -> 'a decoder -> 'a option decoder
  (** [None] when the field is absent or [Null]. *)

  val field_default : string -> 'a decoder -> 'a -> 'a decoder
  (** Like {!field_opt} with a default for absent/[Null]. *)

  val list : 'a decoder -> 'a list decoder
  (** Element errors report their index ([...[2]...]). *)

  val obj : 'a decoder -> (string * 'a) list decoder
  (** All fields of an object through one value decoder. *)

  val map : ('a -> 'b) -> 'a decoder -> 'b decoder

  val const : 'a -> 'a decoder

  val value : t decoder
  (** The raw JSON subtree. *)
end
