(** Minimal JSON values, writer and reader.

    The toolchain has no JSON library, and the exports ({!Sink},
    {!Profile}, [repro --json]) need only this much: a value type, a
    serializer whose floats round-trip exactly (shortest representation
    that parses back to the same IEEE double), and a strict parser for
    reading our own output back in tests and post-processing scripts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float_repr : float -> string
(** Shortest decimal form that parses back to exactly the same double,
    always with a ['.'] or exponent (also used for CSV cells). *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces and ends
    with a newline. Floats always carry a ['.'] or exponent so they parse
    back as [Float]; NaN and infinities become [null]. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document. [Float]/[Int] distinction
    follows the lexical form: a number with a fraction or exponent is a
    [Float]. *)

(** {2 Accessors} — all total, [None] on a type mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]. *)

val list_opt : t -> t list option

val string_opt : t -> string option

val int_opt : t -> int option

val float_opt : t -> float option
(** Accepts [Int] too (JSON numbers without a fraction part). *)
