(** Sanitizer violations.

    One {!t} describes a single detected misuse of the simulated address
    space, with enough context (warp, lane, address) to locate the
    offending access. Kinds are a closed, densely indexed enumeration so
    that per-kind counters can live in plain arrays — the same scheme
    [Repro_gpu.Stats] uses for instruction labels. *)

type kind =
  | Out_of_bounds     (** Access inside a heap arena but outside any live
                          allocation, or past an allocation's end. *)
  | Use_after_free    (** Access to an allocation marked dead. *)
  | Misaligned_vtable (** A vTable* or vFunc* load whose address is not
                          8-byte aligned. *)
  | Non_canonical     (** A tagged address reached an MMU with no
                          TypePointer support. *)
  | Tag_mismatch      (** A TypePointer tag disagrees with the shadow
                          map's recorded type — type confusion. *)
  | Vm_unmapped       (** An access whose address falls outside every
                          page mapped by the translation model. *)
  | Vm_owner_mismatch (** An access inside a promoted (large-page) span
                          whose recorded owning type disagrees with the
                          object's shadow type — the coalescing
                          invariant was broken. *)

type t = {
  kind : kind;
  warp : int;        (** Warp id of the offending access. *)
  lane : int;        (** Global thread id of the offending lane. *)
  addr : int;        (** The raw (possibly tagged) address. *)
  access : string;   (** What the access was ("vtable_load", "body", ...). *)
  detail : string;   (** Human-readable context. *)
}

val kind_count : int
(** Number of kinds; kinds index dense arrays. *)

val kind_index : kind -> int

val kind_of_index : int -> kind
(** Raises [Invalid_argument] out of range. *)

val kinds : kind list
(** All kinds, in index order. *)

val kind_slug : kind -> string
(** Stable machine-readable identifier ([oob], [uaf], [misaligned_vtable],
    [non_canonical], [tag_mismatch], [vm_unmapped], [vm_owner]) used in
    metric names and JSON. *)

val kind_name : kind -> string
(** Display name. *)

val pp : Format.formatter -> t -> unit
