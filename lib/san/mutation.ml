type t =
  | Retag of { victim : int }
  | Truncate of { victim : int }
  | Kill of { victim : int }
  | Skew_range

let names = [ "tag"; "region"; "uaf"; "range" ]

let of_string s =
  match String.lowercase_ascii s with
  | "tag" -> Ok (Retag { victim = 0 })
  | "region" -> Ok (Truncate { victim = 0 })
  | "uaf" -> Ok (Kill { victim = 0 })
  | "range" -> Ok Skew_range
  | other ->
    Error
      (Printf.sprintf "unknown mutation %S (try one of: %s)" other
         (String.concat ", " names))

let to_string = function
  | Retag _ -> "tag"
  | Truncate _ -> "region"
  | Kill _ -> "uaf"
  | Skew_range -> "range"

let pp ppf t = Format.pp_print_string ppf (to_string t)
