(** The shadow heap: a map over the simulated address space recording
    every object allocation and every allocator arena.

    Allocators register each placement (base, size, type id) and the
    arenas they carve objects from; the runtime adds the TypePointer tag
    once it is known. Lookups classify a canonical address as inside a
    live allocation, inside a dead one, in allocator-owned space but
    outside any allocation, or outside the object heap entirely (vTable
    arena, global arrays, range table — which the sanitizer does not
    model; GPUArmor-style tag checking covers only the object heap).

    Allocations happen host-side between kernels and lookups happen
    during kernels, so the index is sorted lazily: registration appends
    and marks the map dirty, the first lookup after a change re-sorts. *)

type record = private {
  base : int;           (** Canonical base address (first part's base for
                            multi-part registrations). *)
  size : int;           (** True extent in bytes, summed over all parts. *)
  type_id : int;
  index : int;          (** Program-order allocation number — the
                            cross-technique identity of the object. *)
  mutable tag : int;    (** Recorded TypePointer tag (0 when untagged). *)
  mutable shadow_size : int;  (** Checked extent; normally [size], smaller
                                  after a [Truncate] mutation. *)
  mutable live : bool;
}

type t

val create : ?mutation:Mutation.t -> unit -> t
(** [mutation] seeds one deliberate bookkeeping bug (self-test mode);
    shadow-map mutations are applied as the victim allocation is
    registered. *)

val mutation : t -> Mutation.t option

val register : t -> base:int -> size:int -> type_id:int -> unit
(** Record one contiguous allocation. Raises [Invalid_argument] on a
    non-canonical base or non-positive size. *)

val register_parts : t -> parts:(int * int) list -> type_id:int -> unit
(** Record one allocation whose storage is scattered over several
    contiguous [(base, size)] pieces — an SoA object whose header words
    and fields live in per-block arrays. The pieces share one record
    (one program-order {!record.index}, the cross-technique identity),
    with [base] the first piece's base and [size] the summed extent.
    Raises [Invalid_argument] on an empty list, a non-canonical piece
    base or a non-positive piece size. *)

val add_heap_range : t -> base:int -> size:int -> unit
(** Declare [base, base+size) allocator-owned (an arena objects are
    placed in): addresses there that match no live allocation are
    violations rather than unmodelled memory. *)

val note_tag : t -> base:int -> tag:int -> unit
(** Attach the pointer tag the runtime issued for the allocation at
    [base]. No-op if the base is unknown (the allocation was placed
    before the shadow map was attached). *)

val n_allocations : t -> int

val find : t -> int -> record option
(** [find t addr] is the allocation whose storage (any registered piece)
    contains the canonical [addr], live or dead. *)

type classification =
  | Object of record   (** Inside a live allocation's checked extent. *)
  | Dead of record     (** Inside an allocation marked dead. *)
  | Clipped of record  (** Inside a live allocation's true extent but past
                           its checked (shadow) extent. *)
  | Heap_hole          (** Allocator-owned space outside any allocation. *)
  | Unmodelled         (** Outside every registered heap range. *)

val classify : t -> addr:int -> width:int -> classification
(** Classify the [width]-byte access at canonical [addr]. An access
    straddling a live allocation's end classifies as [Clipped]. *)

val kill : t -> base:int -> unit
(** Mark the allocation at [base] dead (test hook; the simulated
    allocators never free). *)
