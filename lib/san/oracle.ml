module Vec = Repro_util.Vec
module Vaddr = Repro_mem.Vaddr

type detail = {
  warp : int;
  tids : int array;
  objs : int array;
  alloc_idx : int array;
  targets : int array;
}

type t = {
  capture : int option;
  digests : int Vec.t;
  mutable captured : detail option;
}

let create ?capture () = { capture; digests = Vec.create (); captured = None }

(* SplitMix-style mixing, as in [Runtime.checksum]. *)
let mix h v =
  let h = h lxor (v + 0x9e3779b9 + (h lsl 6) + (h lsr 2)) in
  h land max_int

let alloc_index_of shadow ptr =
  match Shadow_heap.find shadow ptr with
  | Some r -> r.Shadow_heap.index
  | None -> -1

let record t ~shadow ~warp ~tids ~objs ~targets =
  let n = Array.length tids in
  let digest = ref (mix warp n) in
  for i = 0 to n - 1 do
    digest := mix !digest tids.(i);
    digest := mix !digest (alloc_index_of shadow objs.(i));
    digest := mix !digest targets.(i)
  done;
  let index = Vec.length t.digests in
  Vec.push t.digests !digest;
  match t.capture with
  | Some c when c = index ->
    t.captured <-
      Some
        {
          warp;
          tids = Array.copy tids;
          objs = Array.copy objs;
          alloc_idx = Array.map (alloc_index_of shadow) objs;
          targets = Array.copy targets;
        }
  | _ -> ()

let length t = Vec.length t.digests

let captured t = t.captured

type divergence =
  | Target_mismatch of { index : int }
  | Length_mismatch of { reference : int; actual : int }

let diff ~reference t =
  let nr = Vec.length reference.digests and na = Vec.length t.digests in
  let n = min nr na in
  let rec go i =
    if i >= n then
      if nr = na then None
      else Some (Length_mismatch { reference = nr; actual = na })
    else if Vec.get reference.digests i <> Vec.get t.digests i then
      Some (Target_mismatch { index = i })
    else go (i + 1)
  in
  go 0

let pp_divergence ppf = function
  | Target_mismatch { index } ->
    Format.fprintf ppf "dispatch #%d resolved different targets" index
  | Length_mismatch { reference; actual } ->
    Format.fprintf ppf "dispatch count differs: %d (reference) vs %d" reference
      actual

let describe_details ~reference actual =
  let buf = Buffer.create 128 in
  let n = min (Array.length reference.tids) (Array.length actual.tids) in
  let found = ref false in
  for i = 0 to n - 1 do
    if
      (not !found)
      && (reference.alloc_idx.(i) <> actual.alloc_idx.(i)
          || reference.targets.(i) <> actual.targets.(i)
          || reference.tids.(i) <> actual.tids.(i))
    then begin
      found := true;
      Buffer.add_string buf
        (Format.asprintf
           "warp %d lane tid %d: object #%d at %a -> impl %d, reference has \
            object #%d at %a -> impl %d"
           actual.warp actual.tids.(i) actual.alloc_idx.(i) Vaddr.pp
           actual.objs.(i) actual.targets.(i) reference.alloc_idx.(i) Vaddr.pp
           reference.objs.(i) reference.targets.(i))
    end
  done;
  if not !found then
    Buffer.add_string buf
      (Printf.sprintf "warp %d: active lane sets differ (%d vs %d lanes)"
         actual.warp (Array.length reference.tids) (Array.length actual.tids));
  Buffer.contents buf
