module Vaddr = Repro_mem.Vaddr
module Vec = Repro_util.Vec

type access = Vtable | Vfunc | Other

type t = {
  shadow : Shadow_heap.t;
  oracle : Oracle.t;
  tags_expected : bool;
  max_samples : int;
  counts : int array;         (* cumulative, per Violation.kind_index *)
  kernel_counts : int array;  (* since the last take_kernel_delta *)
  samples : Violation.t Vec.t;
  mutable page_table : Repro_vm.Page_table.t option;
}

let create ?mutation ?capture ?(max_samples = 32) ~tags_expected () =
  {
    shadow = Shadow_heap.create ?mutation ();
    oracle = Oracle.create ?capture ();
    tags_expected;
    max_samples;
    counts = Array.make Violation.kind_count 0;
    kernel_counts = Array.make Violation.kind_count 0;
    samples = Vec.create ();
    page_table = None;
  }

let shadow t = t.shadow
let oracle t = t.oracle
let set_page_table t table = t.page_table <- table
let page_table t = t.page_table
let mutation t = Shadow_heap.mutation t.shadow
let tags_expected t = t.tags_expected

let report t ~kind ~warp ~lane ~addr ~what ~detail =
  let i = Violation.kind_index kind in
  t.counts.(i) <- t.counts.(i) + 1;
  t.kernel_counts.(i) <- t.kernel_counts.(i) + 1;
  if Vec.length t.samples < t.max_samples then
    Vec.push t.samples
      { Violation.kind; warp; lane; addr; access = what; detail }

let type_detail r =
  Printf.sprintf "object #%d type %d [%d B]" r.Shadow_heap.index
    r.Shadow_heap.type_id r.Shadow_heap.size

let check_one t ~warp ~lane ~access ~what ~width a =
  let tag = Vaddr.tag_of a in
  let canonical = Vaddr.strip a in
  if tag <> 0 then begin
    if not t.tags_expected then
      report t ~kind:Violation.Non_canonical ~warp ~lane ~addr:a ~what
        ~detail:(Printf.sprintf "tag %d on an MMU without TypePointer" tag)
    else
      match Shadow_heap.find t.shadow canonical with
      | Some r when r.Shadow_heap.tag <> tag ->
        report t ~kind:Violation.Tag_mismatch ~warp ~lane ~addr:a ~what
          ~detail:
            (Printf.sprintf "tag %d but shadow records tag %d for %s" tag
               r.Shadow_heap.tag (type_detail r))
      | _ -> ()
  end;
  (match access with
   | (Vtable | Vfunc) when canonical land (Vaddr.word_bytes - 1) <> 0 ->
     report t ~kind:Violation.Misaligned_vtable ~warp ~lane ~addr:a ~what
       ~detail:""
   | _ -> ());
  let cls = Shadow_heap.classify t.shadow ~addr:canonical ~width in
  (match cls with
   | Shadow_heap.Object _ | Shadow_heap.Unmodelled -> ()
   | Shadow_heap.Dead r ->
     report t ~kind:Violation.Use_after_free ~warp ~lane ~addr:a ~what
       ~detail:(type_detail r)
   | Shadow_heap.Clipped r ->
     report t ~kind:Violation.Out_of_bounds ~warp ~lane ~addr:a ~what
       ~detail:
         (Printf.sprintf "%d B access at offset %d of %s" width
            (canonical - r.Shadow_heap.base) (type_detail r))
   | Shadow_heap.Heap_hole ->
     report t ~kind:Violation.Out_of_bounds ~warp ~lane ~addr:a ~what
       ~detail:"allocator arena, no allocation");
  match t.page_table with
  | None -> ()
  | Some table ->
    (match Repro_vm.Page_table.translate table ~addr:canonical with
     | None ->
       report t ~kind:Violation.Vm_unmapped ~warp ~lane ~addr:a ~what
         ~detail:"no page mapped by the translation model"
     | Some page ->
       let owner = page.Repro_vm.Page_table.owner in
       if owner >= 0 then
         match cls with
         | Shadow_heap.Object r when r.Shadow_heap.type_id <> owner ->
           report t ~kind:Violation.Vm_owner_mismatch ~warp ~lane ~addr:a
             ~what
             ~detail:
               (Printf.sprintf "large page owned by type %d but %s" owner
                  (type_detail r))
         | _ -> ())

let check_access t ~warp ~tids ~access ~what ~width ~addrs =
  Array.iteri
    (fun i a -> check_one t ~warp ~lane:tids.(i) ~access ~what ~width a)
    addrs

let check_tagged_ptrs t ~warp ~tids ~ptrs =
  Array.iteri
    (fun i ptr ->
      let tag = Vaddr.tag_of ptr in
      match Shadow_heap.find t.shadow (Vaddr.strip ptr) with
      | Some r when r.Shadow_heap.tag <> tag ->
        report t ~kind:Violation.Tag_mismatch ~warp ~lane:tids.(i) ~addr:ptr
          ~what:"tp_dispatch"
          ~detail:
            (Printf.sprintf "dispatch via tag %d but shadow records tag %d \
                             for %s"
               tag r.Shadow_heap.tag (type_detail r))
      | _ -> ())
    ptrs

let record_dispatch t ~warp ~tids ~objs ~targets =
  Oracle.record t.oracle ~shadow:t.shadow ~warp ~tids ~objs ~targets

let count t kind = t.counts.(Violation.kind_index kind)

let total t = Array.fold_left ( + ) 0 t.counts

let samples t = Vec.fold_left (fun acc v -> v :: acc) [] t.samples |> List.rev

let take_kernel_delta t =
  let d = Array.copy t.kernel_counts in
  Array.fill t.kernel_counts 0 Violation.kind_count 0;
  d
