(** Seeded-bug directives for sanitizer self-tests.

    A mutation deliberately corrupts one piece of bookkeeping so that the
    matching detector can be shown to fire — the sanitizer's analogue of
    mutation testing. [Retag]/[Truncate]/[Kill] distort the shadow map's
    record of the [victim]-th allocation (in program allocation order) at
    registration time; [Skew_range] corrupts a COAL range-table leaf's
    embedded vTable after every rebuild, which only the cross-technique
    dispatch oracle can catch. *)

type t =
  | Retag of { victim : int }
      (** Record wrong TypePointer tags from the [victim]-th allocation
          onward: the tag-integrity check must report
          {!Violation.Tag_mismatch} on their dispatches (applied to a
          suffix so the corruption reaches a dispatched object no matter
          which allocations a workload vcalls). *)
  | Truncate of { victim : int }
      (** Record the allocation as header-only: user-field accesses must
          report {!Violation.Out_of_bounds}. *)
  | Kill of { victim : int }
      (** Record the allocation as dead: any access must report
          {!Violation.Use_after_free}. *)
  | Skew_range
      (** Swap the embedded vTables of two range-table leaves of
          different types: COAL dispatch diverges from the CUDA
          reference. *)

val of_string : string -> (t, string) result
(** Parses ["tag"], ["region"], ["uaf"], ["range"] (victim defaults
    to 0); the CLI surface. *)

val to_string : t -> string

val names : string list
(** The accepted {!of_string} spellings. *)

val pp : Format.formatter -> t -> unit
