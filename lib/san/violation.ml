type kind =
  | Out_of_bounds
  | Use_after_free
  | Misaligned_vtable
  | Non_canonical
  | Tag_mismatch
  | Vm_unmapped
  | Vm_owner_mismatch

type t = {
  kind : kind;
  warp : int;
  lane : int;
  addr : int;
  access : string;
  detail : string;
}

let kinds =
  [ Out_of_bounds; Use_after_free; Misaligned_vtable; Non_canonical;
    Tag_mismatch; Vm_unmapped; Vm_owner_mismatch ]

let kind_count = List.length kinds

let kind_index = function
  | Out_of_bounds -> 0
  | Use_after_free -> 1
  | Misaligned_vtable -> 2
  | Non_canonical -> 3
  | Tag_mismatch -> 4
  | Vm_unmapped -> 5
  | Vm_owner_mismatch -> 6

let kind_of_index i =
  match List.nth_opt kinds i with
  | Some k -> k
  | None -> invalid_arg "Violation.kind_of_index: out of range"

let kind_slug = function
  | Out_of_bounds -> "oob"
  | Use_after_free -> "uaf"
  | Misaligned_vtable -> "misaligned_vtable"
  | Non_canonical -> "non_canonical"
  | Tag_mismatch -> "tag_mismatch"
  | Vm_unmapped -> "vm_unmapped"
  | Vm_owner_mismatch -> "vm_owner"

let kind_name = function
  | Out_of_bounds -> "out-of-bounds access"
  | Use_after_free -> "use-after-free"
  | Misaligned_vtable -> "misaligned vTable load"
  | Non_canonical -> "non-canonical address at MMU"
  | Tag_mismatch -> "pointer-tag / type mismatch"
  | Vm_unmapped -> "access to an unmapped page"
  | Vm_owner_mismatch -> "large-page owner / object type mismatch"

let pp ppf v =
  Format.fprintf ppf "%s: warp %d lane %d %s %a%s" (kind_name v.kind) v.warp
    v.lane v.access Repro_mem.Vaddr.pp v.addr
    (if v.detail = "" then "" else " (" ^ v.detail ^ ")")
