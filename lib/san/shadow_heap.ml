module Vaddr = Repro_mem.Vaddr
module Vec = Repro_util.Vec

type record = {
  base : int;
  size : int;
  type_id : int;
  index : int;
  mutable tag : int;
  mutable shadow_size : int;
  mutable live : bool;
}

(* One contiguous piece of storage owned by a record. AoS allocations
   have exactly one extent equal to the allocation; SoA allocations have
   one per header word / field array element. *)
type extent = {
  ebase : int;
  esize : int;
  mutable echecked : int; (* checked prefix of the extent *)
  owner : record;
}

type t = {
  mutation : Mutation.t option;
  records : record Vec.t;          (* in registration (program) order *)
  extents : extent Vec.t;
  by_base : (int, record) Hashtbl.t;
  mutable sorted : extent array;   (* by ebase; rebuilt lazily *)
  mutable sorted_dirty : bool;
  ranges : (int * int) Vec.t;      (* heap arenas as (base, limit) *)
  mutable ranges_sorted : (int * int) array;
  mutable ranges_dirty : bool;
}

let create ?mutation () =
  {
    mutation;
    records = Vec.create ();
    extents = Vec.create ();
    by_base = Hashtbl.create 1024;
    sorted = [||];
    sorted_dirty = false;
    ranges = Vec.create ();
    ranges_sorted = [||];
    ranges_dirty = false;
  }

let mutation t = t.mutation

let n_allocations t = Vec.length t.records

let register_parts t ~parts ~type_id =
  (match parts with
   | [] -> invalid_arg "Shadow_heap.register_parts: no parts"
   | _ -> ());
  List.iter
    (fun (base, size) ->
      if not (Vaddr.is_canonical base) then
        invalid_arg "Shadow_heap.register_parts: non-canonical base";
      if size <= 0 then
        invalid_arg "Shadow_heap.register_parts: size must be positive")
    parts;
  let base = fst (List.hd parts) in
  let size = List.fold_left (fun acc (_, s) -> acc + s) 0 parts in
  let index = Vec.length t.records in
  let r = { base; size; type_id; index; tag = 0; shadow_size = size; live = true } in
  let truncated =
    match t.mutation with
    | Some (Mutation.Truncate { victim }) when victim = index ->
      (* Shrink the checked extent to one word: the header's first word
         stays valid, everything past it is out of bounds. *)
      r.shadow_size <- Vaddr.word_bytes;
      true
    | Some (Mutation.Kill { victim }) when victim = index ->
      r.live <- false;
      false
    | _ -> false
  in
  List.iteri
    (fun i (ebase, esize) ->
      let echecked =
        if not truncated then esize
        else if i = 0 then min esize Vaddr.word_bytes
        else 0
      in
      Vec.push t.extents { ebase; esize; echecked; owner = r })
    parts;
  Vec.push t.records r;
  Hashtbl.replace t.by_base base r;
  t.sorted_dirty <- true

let register t ~base ~size ~type_id =
  register_parts t ~parts:[ (base, size) ] ~type_id

let add_heap_range t ~base ~size =
  if size <= 0 then invalid_arg "Shadow_heap.add_heap_range: size must be positive";
  Vec.push t.ranges (base, base + size);
  t.ranges_dirty <- true

let note_tag t ~base ~tag =
  match Hashtbl.find_opt t.by_base base with
  | None -> ()
  | Some r ->
    r.tag <-
      (match t.mutation with
       | Some (Mutation.Retag { victim }) when r.index >= victim ->
         (* Record a wrong tag: flipping the low bit always lands on a
            different (still in-range) tag value. Applied from the victim
            onward so the corruption reaches a dispatched object no
            matter which allocations a workload actually vcalls. *)
         tag lxor 1
       | _ -> tag)

let ensure_sorted t =
  if t.sorted_dirty then begin
    let a = Array.make (Vec.length t.extents) (Vec.get t.extents 0) in
    Vec.iteri (fun i e -> a.(i) <- e) t.extents;
    Array.sort (fun a b -> compare a.ebase b.ebase) a;
    t.sorted <- a;
    t.sorted_dirty <- false
  end

let ensure_ranges_sorted t =
  if t.ranges_dirty then begin
    let a = Array.make (Vec.length t.ranges) (0, 0) in
    Vec.iteri (fun i r -> a.(i) <- r) t.ranges;
    Array.sort compare a;
    t.ranges_sorted <- a;
    t.ranges_dirty <- false
  end

(* Greatest element with [base <= addr], by binary search. *)
let find_le sorted key_of addr =
  let n = Array.length sorted in
  let rec go lo hi best =
    if lo >= hi then best
    else begin
      let mid = (lo + hi) / 2 in
      if key_of sorted.(mid) <= addr then go (mid + 1) hi (Some sorted.(mid))
      else go lo mid best
    end
  in
  go 0 n None

let find_extent t addr =
  if Vec.is_empty t.extents then None
  else begin
    ensure_sorted t;
    let addr = Vaddr.strip addr in
    match find_le t.sorted (fun e -> e.ebase) addr with
    | Some e when addr < e.ebase + e.esize -> Some e
    | _ -> None
  end

let find t addr =
  match find_extent t addr with Some e -> Some e.owner | None -> None

let in_heap_range t addr =
  ensure_ranges_sorted t;
  match find_le t.ranges_sorted fst addr with
  | Some (_, limit) -> addr < limit
  | None -> false

type classification =
  | Object of record
  | Dead of record
  | Clipped of record
  | Heap_hole
  | Unmodelled

let classify t ~addr ~width =
  match find_extent t addr with
  | Some e ->
    if not e.owner.live then Dead e.owner
    else if addr + width <= e.ebase + e.echecked then Object e.owner
    else Clipped e.owner
  | None -> if in_heap_range t addr then Heap_hole else Unmodelled

let kill t ~base =
  match Hashtbl.find_opt t.by_base base with
  | Some r -> r.live <- false
  | None -> invalid_arg "Shadow_heap.kill: unknown base"
