(** The cross-technique dispatch oracle.

    All five techniques must resolve every dynamic virtual call to the
    same targets. The oracle records, per warp-level dispatch in
    execution order, a digest of (warp, active lanes, per-lane receiver
    identity, per-lane resolved implementation id). Receivers are
    identified by their program-order allocation index (via the shadow
    map), not their address — addresses differ across allocators, the
    allocation order does not.

    Digest streams are compact (one int per dispatch), so whole-run
    comparison is cheap; when two streams first disagree, the runs are
    repeated in capture mode for that one index to recover full
    warp/lane/address context. *)

type detail = {
  warp : int;
  tids : int array;       (** Global thread ids of the active lanes. *)
  objs : int array;       (** Raw per-lane receiver pointers. *)
  alloc_idx : int array;  (** Allocation index per lane (-1 if unknown). *)
  targets : int array;    (** Resolved implementation id per lane. *)
}

type t

val create : ?capture:int -> unit -> t
(** [capture] stores full {!detail} for that event index (0-based) in
    addition to the digests. *)

val record :
  t -> shadow:Shadow_heap.t -> warp:int -> tids:int array ->
  objs:int array -> targets:int array -> unit

val length : t -> int
(** Dispatches recorded. *)

val captured : t -> detail option

type divergence =
  | Target_mismatch of { index : int }
      (** Digest streams first differ at dispatch [index]. *)
  | Length_mismatch of { reference : int; actual : int }
      (** One run performed more dispatches than the other. *)

val diff : reference:t -> t -> divergence option
(** First divergence of [t] against [reference], if any. *)

val pp_divergence : Format.formatter -> divergence -> unit

val describe_details : reference:detail -> detail -> string
(** Lane-level explanation of a captured divergent dispatch: the first
    lane whose (receiver, target) pair differs, with addresses. *)
