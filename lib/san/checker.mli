(** The per-run sanitizer instance.

    One [Checker.t] is threaded through a single runtime: the allocators
    feed its {!Shadow_heap}, the warp contexts report every global
    memory access to {!check_access}, the dispatcher reports resolved
    dispatch targets to {!record_dispatch} and, under TypePointer,
    cross-checks pointer tags via {!check_tagged_ptrs}. Violations are
    counted per kind (the device folds per-kernel deltas into its
    [Stats] counters) and the first few are kept with full context. *)

type access = Vtable | Vfunc | Other
(** What a checked access is loading; vTable and vFunc pointer loads
    additionally carry an 8-byte alignment obligation. *)

type t

val create :
  ?mutation:Mutation.t ->
  ?capture:int ->
  ?max_samples:int ->
  tags_expected:bool ->
  unit -> t
(** [tags_expected] is true when the technique issues tagged pointers
    (TypePointer): tag bits at the MMU are then legal and cross-checked
    against the shadow map instead of being flagged as non-canonical.
    [capture] is forwarded to the {!Oracle}; [max_samples] bounds the
    retained violation contexts (default 32; counting is unbounded). *)

val shadow : t -> Shadow_heap.t

val oracle : t -> Oracle.t

val mutation : t -> Mutation.t option

val tags_expected : t -> bool

val set_page_table : t -> Repro_vm.Page_table.t option -> unit
(** Attach (or detach) the translation model's page table. When set,
    every checked access is additionally translated: an address no page
    covers reports {!Violation.Vm_unmapped}, and an access inside a
    promoted large-page span whose owning type disagrees with the
    object's shadow type reports {!Violation.Vm_owner_mismatch}. The
    runtime re-attaches the table whenever it rebuilds the model. *)

val page_table : t -> Repro_vm.Page_table.t option

(** {2 Device-side hooks} *)

val check_access :
  t -> warp:int -> tids:int array -> access:access -> what:string ->
  width:int -> addrs:int array -> unit
(** Check one warp global load/store: [addrs] are the raw, possibly
    tagged per-lane addresses; [what] names the access for reports. *)

val check_tagged_ptrs :
  t -> warp:int -> tids:int array -> ptrs:int array -> unit
(** TypePointer tag integrity at dispatch: each pointer's tag must match
    the shadow map's recorded tag for the allocation it points into. *)

val record_dispatch :
  t -> warp:int -> tids:int array -> objs:int array -> targets:int array ->
  unit

(** {2 Results} *)

val count : t -> Violation.kind -> int
(** Total violations of one kind since creation. *)

val total : t -> int

val samples : t -> Violation.t list
(** The retained violations, in detection order. *)

val take_kernel_delta : t -> int array
(** Per-kind counts since the previous call (indexed by
    {!Violation.kind_index}); the device calls this once per launch. *)
