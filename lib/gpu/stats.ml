type t = {
  mutable cycles : float;
  mutable mem_instrs : int;
  mutable compute_instrs : int;
  mutable ctrl_instrs : int;
  mutable load_transactions : int;
  mutable store_transactions : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable dram_sectors : int;
  mutable trace_dropped : int;
  (* Address translation (zero when no page policy is active). *)
  mutable tlb_l1_hits : int;
  mutable tlb_l2_hits : int;
  mutable tlb_walks : int;
  mutable tlb_walk_cycles : float;
  stalls : float array; (* indexed by Label.to_index *)
  load_transactions_by_label : int array;
  san_violations : int array; (* indexed by Repro_san.Violation.kind_index *)
}

let create () =
  {
    cycles = 0.;
    mem_instrs = 0;
    compute_instrs = 0;
    ctrl_instrs = 0;
    load_transactions = 0;
    store_transactions = 0;
    l1_hits = 0;
    l1_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    dram_sectors = 0;
    trace_dropped = 0;
    tlb_l1_hits = 0;
    tlb_l2_hits = 0;
    tlb_walks = 0;
    tlb_walk_cycles = 0.;
    stalls = Array.make Label.count 0.;
    load_transactions_by_label = Array.make Label.count 0;
    san_violations = Array.make Repro_san.Violation.kind_count 0;
  }

let reset t =
  t.cycles <- 0.;
  t.mem_instrs <- 0;
  t.compute_instrs <- 0;
  t.ctrl_instrs <- 0;
  t.load_transactions <- 0;
  t.store_transactions <- 0;
  t.l1_hits <- 0;
  t.l1_misses <- 0;
  t.l2_hits <- 0;
  t.l2_misses <- 0;
  t.dram_sectors <- 0;
  t.trace_dropped <- 0;
  t.tlb_l1_hits <- 0;
  t.tlb_l2_hits <- 0;
  t.tlb_walks <- 0;
  t.tlb_walk_cycles <- 0.;
  Array.fill t.stalls 0 Label.count 0.;
  Array.fill t.load_transactions_by_label 0 Label.count 0;
  Array.fill t.san_violations 0 Repro_san.Violation.kind_count 0

let add acc x =
  acc.cycles <- acc.cycles +. x.cycles;
  acc.mem_instrs <- acc.mem_instrs + x.mem_instrs;
  acc.compute_instrs <- acc.compute_instrs + x.compute_instrs;
  acc.ctrl_instrs <- acc.ctrl_instrs + x.ctrl_instrs;
  acc.load_transactions <- acc.load_transactions + x.load_transactions;
  acc.store_transactions <- acc.store_transactions + x.store_transactions;
  acc.l1_hits <- acc.l1_hits + x.l1_hits;
  acc.l1_misses <- acc.l1_misses + x.l1_misses;
  acc.l2_hits <- acc.l2_hits + x.l2_hits;
  acc.l2_misses <- acc.l2_misses + x.l2_misses;
  acc.dram_sectors <- acc.dram_sectors + x.dram_sectors;
  acc.trace_dropped <- acc.trace_dropped + x.trace_dropped;
  acc.tlb_l1_hits <- acc.tlb_l1_hits + x.tlb_l1_hits;
  acc.tlb_l2_hits <- acc.tlb_l2_hits + x.tlb_l2_hits;
  acc.tlb_walks <- acc.tlb_walks + x.tlb_walks;
  acc.tlb_walk_cycles <- acc.tlb_walk_cycles +. x.tlb_walk_cycles;
  Array.iteri (fun i v -> acc.stalls.(i) <- acc.stalls.(i) +. v) x.stalls;
  Array.iteri
    (fun i v ->
      acc.load_transactions_by_label.(i) <- acc.load_transactions_by_label.(i) + v)
    x.load_transactions_by_label;
  Array.iteri
    (fun i v -> acc.san_violations.(i) <- acc.san_violations.(i) + v)
    x.san_violations

let copy t =
  let c = create () in
  add c t;
  c

let count_classified t cls n =
  match cls with
  | `Mem -> t.mem_instrs <- t.mem_instrs + n
  | `Compute -> t.compute_instrs <- t.compute_instrs + n
  | `Ctrl -> t.ctrl_instrs <- t.ctrl_instrs + n

let count_instr t instr =
  count_classified t (Instr.class_of instr) (Instr.instruction_count instr)

let count_load_transactions_idx t label_index n =
  t.load_transactions <- t.load_transactions + n;
  t.load_transactions_by_label.(label_index)
  <- t.load_transactions_by_label.(label_index) + n

let count_load_transactions t label n =
  count_load_transactions_idx t (Label.to_index label) n

let count_store_transactions t n = t.store_transactions <- t.store_transactions + n

let count_l1 t ~hit =
  if hit then t.l1_hits <- t.l1_hits + 1 else t.l1_misses <- t.l1_misses + 1

let count_l2 t ~hit =
  if hit then t.l2_hits <- t.l2_hits + 1 else t.l2_misses <- t.l2_misses + 1

let count_dram_sector t = t.dram_sectors <- t.dram_sectors + 1

let count_trace_dropped t n = t.trace_dropped <- t.trace_dropped + n

let count_tlb_l1_hit t = t.tlb_l1_hits <- t.tlb_l1_hits + 1

let count_tlb_l2_hit t = t.tlb_l2_hits <- t.tlb_l2_hits + 1

let count_tlb_walk t cycles =
  t.tlb_walks <- t.tlb_walks + 1;
  t.tlb_walk_cycles <- t.tlb_walk_cycles +. cycles

let count_san_violations t deltas =
  if Array.length deltas <> Repro_san.Violation.kind_count then
    invalid_arg "Stats.count_san_violations: delta width mismatch";
  Array.iteri
    (fun i v -> t.san_violations.(i) <- t.san_violations.(i) + v)
    deltas

let san_violations_for t kind =
  t.san_violations.(Repro_san.Violation.kind_index kind)

let total_san_violations t = Array.fold_left ( + ) 0 t.san_violations

let attribute_stall t label cycles =
  let i = Label.to_index label in
  t.stalls.(i) <- t.stalls.(i) +. cycles

let stall_accumulator t = t.stalls

let load_transactions_accumulator t = t.load_transactions_by_label

(* One flush per replayed launch from the fused loop's local counters;
   integer adds, so the totals are exactly what per-instruction counting
   would have produced. *)
let bump_replay_counters t ~mem ~compute ~ctrl ~load_trans ~store_trans
    ~l1_hits ~l1_misses ~l2_hits ~l2_misses ~dram_sectors =
  t.mem_instrs <- t.mem_instrs + mem;
  t.compute_instrs <- t.compute_instrs + compute;
  t.ctrl_instrs <- t.ctrl_instrs + ctrl;
  t.load_transactions <- t.load_transactions + load_trans;
  t.store_transactions <- t.store_transactions + store_trans;
  t.l1_hits <- t.l1_hits + l1_hits;
  t.l1_misses <- t.l1_misses + l1_misses;
  t.l2_hits <- t.l2_hits + l2_hits;
  t.l2_misses <- t.l2_misses + l2_misses;
  t.dram_sectors <- t.dram_sectors + dram_sectors

let add_cycles t c = t.cycles <- t.cycles +. c

let cycles t = t.cycles

let instructions t = function
  | `Mem -> t.mem_instrs
  | `Compute -> t.compute_instrs
  | `Ctrl -> t.ctrl_instrs

let total_instructions t = t.mem_instrs + t.compute_instrs + t.ctrl_instrs

let load_transactions t = t.load_transactions

let load_transactions_for t label = t.load_transactions_by_label.(Label.to_index label)

let store_transactions t = t.store_transactions

let l1_hits t = t.l1_hits

let l1_misses t = t.l1_misses

let l2_hits t = t.l2_hits

let l2_misses t = t.l2_misses

let l1_accesses t = t.l1_hits + t.l1_misses

let hit_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

let l1_hit_rate t = hit_rate t.l1_hits t.l1_misses

let l2_hit_rate t = hit_rate t.l2_hits t.l2_misses

let dram_sectors t = t.dram_sectors

let trace_dropped t = t.trace_dropped

let tlb_l1_hits t = t.tlb_l1_hits

let tlb_l2_hits t = t.tlb_l2_hits

let tlb_walks t = t.tlb_walks

let tlb_walk_cycles t = t.tlb_walk_cycles

let tlb_lookups t = t.tlb_l1_hits + t.tlb_l2_hits + t.tlb_walks

let stall_cycles t label = t.stalls.(Label.to_index label)

let total_stall_cycles t = Array.fold_left ( +. ) 0. t.stalls

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles=%.0f instrs(mem/cmp/ctl)=%d/%d/%d ld-trans=%d st-trans=%d \
     L1=%.1f%% L2=%.1f%% dram=%d"
    t.cycles t.mem_instrs t.compute_instrs t.ctrl_instrs t.load_transactions
    t.store_transactions (100. *. l1_hit_rate t) (100. *. l2_hit_rate t)
    t.dram_sectors;
  (* Stall attribution, driven by the label enumeration rather than one
     format string per label (the registry view lives in Repro_obs.Metric). *)
  let total_stalls = total_stall_cycles t in
  if total_stalls > 0. then begin
    Format.fprintf ppf "@,stalls:";
    List.iter
      (fun l ->
        let s = stall_cycles t l in
        if s > 0. then
          Format.fprintf ppf " %s=%.1f%%" (Label.slug l) (100. *. s /. total_stalls))
      Label.all
  end;
  if tlb_lookups t > 0 then
    Format.fprintf ppf "@,tlb: l1=%d l2=%d walks=%d walk-cycles=%.0f"
      t.tlb_l1_hits t.tlb_l2_hits t.tlb_walks t.tlb_walk_cycles;
  if total_san_violations t > 0 then begin
    Format.fprintf ppf "@,san violations:";
    List.iter
      (fun k ->
        let n = san_violations_for t k in
        if n > 0 then
          Format.fprintf ppf " %s=%d" (Repro_san.Violation.kind_slug k) n)
      Repro_san.Violation.kinds
  end;
  Format.fprintf ppf "@]"

(* Wire form. [raw] mirrors [t] field-for-field; it is defined last so
   the record-label inference above keeps resolving to [t]. *)

type raw = {
  cycles : float;
  mem_instrs : int;
  compute_instrs : int;
  ctrl_instrs : int;
  load_transactions : int;
  store_transactions : int;
  l1_hits : int;
  l1_misses : int;
  l2_hits : int;
  l2_misses : int;
  dram_sectors : int;
  trace_dropped : int;
  tlb_l1_hits : int;
  tlb_l2_hits : int;
  tlb_walks : int;
  tlb_walk_cycles : float;
  stalls : float array;
  load_transactions_by_label : int array;
  san_violations : int array;
}

let to_raw (t : t) : raw =
  {
    cycles = t.cycles;
    mem_instrs = t.mem_instrs;
    compute_instrs = t.compute_instrs;
    ctrl_instrs = t.ctrl_instrs;
    load_transactions = t.load_transactions;
    store_transactions = t.store_transactions;
    l1_hits = t.l1_hits;
    l1_misses = t.l1_misses;
    l2_hits = t.l2_hits;
    l2_misses = t.l2_misses;
    dram_sectors = t.dram_sectors;
    trace_dropped = t.trace_dropped;
    tlb_l1_hits = t.tlb_l1_hits;
    tlb_l2_hits = t.tlb_l2_hits;
    tlb_walks = t.tlb_walks;
    tlb_walk_cycles = t.tlb_walk_cycles;
    stalls = Array.copy t.stalls;
    load_transactions_by_label = Array.copy t.load_transactions_by_label;
    san_violations = Array.copy t.san_violations;
  }

let of_raw (r : raw) : t =
  if Array.length r.stalls <> Label.count then
    invalid_arg "Stats.of_raw: stalls length";
  if Array.length r.load_transactions_by_label <> Label.count then
    invalid_arg "Stats.of_raw: load_transactions_by_label length";
  if Array.length r.san_violations <> Repro_san.Violation.kind_count then
    invalid_arg "Stats.of_raw: san_violations length";
  {
    cycles = r.cycles;
    mem_instrs = r.mem_instrs;
    compute_instrs = r.compute_instrs;
    ctrl_instrs = r.ctrl_instrs;
    load_transactions = r.load_transactions;
    store_transactions = r.store_transactions;
    l1_hits = r.l1_hits;
    l1_misses = r.l1_misses;
    l2_hits = r.l2_hits;
    l2_misses = r.l2_misses;
    dram_sectors = r.dram_sectors;
    trace_dropped = r.trace_dropped;
    tlb_l1_hits = r.tlb_l1_hits;
    tlb_l2_hits = r.tlb_l2_hits;
    tlb_walks = r.tlb_walks;
    tlb_walk_cycles = r.tlb_walk_cycles;
    stalls = Array.copy r.stalls;
    load_transactions_by_label = Array.copy r.load_transactions_by_label;
    san_violations = Array.copy r.san_violations;
  }
