type config = {
  window : int option;
  trace : bool;
  trace_capacity : int;
}

let default_window = 1024

let default_capacity = 65536

let off = { window = None; trace = false; trace_capacity = default_capacity }

let config_enabled c = c.window <> None || c.trace

module Sampler = struct
  type t = {
    window : int;
    fwindow : float;
    mutable all_rows : Stats.t array; (* grown by doubling, recycled *)
    mutable n : int;                  (* rows in use this launch *)
    boundary : float array;           (* one-slot mailbox: current window end *)
    mutable cur : Stats.t;
  }

  let create ~window =
    if window <= 0 then invalid_arg "Telemetry.Sampler: window must be positive";
    let all_rows = Array.init 16 (fun _ -> Stats.create ()) in
    {
      window;
      fwindow = float_of_int window;
      all_rows;
      n = 1;
      boundary = Array.make 1 (float_of_int window);
      cur = all_rows.(0);
    }

  let window t = t.window

  let boundary_cell t = t.boundary

  let current t = t.cur

  let rows t = t.n

  let begin_launch t =
    t.n <- 1;
    t.boundary.(0) <- t.fwindow;
    Stats.reset t.all_rows.(0);
    t.cur <- t.all_rows.(0)

  let grow t =
    let cap = Array.length t.all_rows in
    if t.n >= cap then begin
      let bigger = Array.init (2 * cap) (fun i ->
          if i < cap then t.all_rows.(i) else Stats.create ())
      in
      t.all_rows <- bigger
    end

  let advance t ~now =
    while now >= t.boundary.(0) do
      grow t;
      let row = t.all_rows.(t.n) in
      Stats.reset row;
      t.cur <- row;
      t.n <- t.n + 1;
      t.boundary.(0) <- t.boundary.(0) +. t.fwindow
    done

  (* Every sealed window lasted exactly [fwindow] cycles; the open one
     gets the remainder. [k *. fwindow] is an exact integer double for
     any realistic k, and [cycles -. k *. fwindow] is exact because the
     true difference is representable (it spans at most the mantissa
     width between the window magnitude and ulp(cycles)), so the
     in-order fold of the rows' cycles reproduces [cycles] bit-for-bit. *)
  let finish_launch t ~cycles =
    for i = 0 to t.n - 2 do
      Stats.add_cycles t.all_rows.(i) t.fwindow
    done;
    let consumed = float_of_int (t.n - 1) *. t.fwindow in
    Stats.add_cycles t.all_rows.(t.n - 1) (cycles -. consumed)

  let take t =
    Array.init t.n (fun i ->
        let row = t.all_rows.(i) in
        t.all_rows.(i) <- Stats.create ();
        row)
end

module Ring = struct
  let kind_stall = 0
  let kind_l1 = 1
  let kind_l2 = 2
  let kind_dram = 3
  let kind_tlb = 4

  type t = {
    cap : int;
    kind : int array;
    track : int array;
    arg_a : int array;
    arg_b : int array;
    ts : float array;
    dur : float array;
    cells : float array;
    mutable head : int;
    mutable len : int;
    mutable dropped : int;
    mutable all_dropped : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Telemetry.Ring: capacity must be positive";
    {
      cap = capacity;
      kind = Array.make capacity 0;
      track = Array.make capacity 0;
      arg_a = Array.make capacity 0;
      arg_b = Array.make capacity 0;
      ts = Array.make capacity 0.;
      dur = Array.make capacity 0.;
      cells = Array.make 2 0.;
      head = 0;
      len = 0;
      dropped = 0;
      all_dropped = 0;
    }

  let begin_launch t ~base =
    t.cells.(0) <- base;
    t.cells.(1) <- base

  (* Wrap with a compare, not [mod]: this runs once per recorded event,
     and an integer divide on the hot path is most of the tracer's cost. *)
  let bump t =
    let h = t.head + 1 in
    t.head <- (if h = t.cap then 0 else h);
    if t.len = t.cap then begin
      t.dropped <- t.dropped + 1;
      t.all_dropped <- t.all_dropped + 1
    end
    else t.len <- t.len + 1

  (* [head] is always in [0, cap): it is only written by [bump] (which
     wraps) and [clear] (0), so the unsafe stores cannot go out of
     bounds. All six arrays share length [cap]. *)
  let record t ~kind ~track ~a ~b ~ts ~dur =
    let i = t.head in
    Array.unsafe_set t.kind i kind;
    Array.unsafe_set t.track i track;
    Array.unsafe_set t.arg_a i a;
    Array.unsafe_set t.arg_b i b;
    let abs_ts = Array.unsafe_get t.cells 0 +. ts in
    Array.unsafe_set t.ts i abs_ts;
    Array.unsafe_set t.dur i dur;
    let e = abs_ts +. dur in
    if e > Array.unsafe_get t.cells 1 then Array.unsafe_set t.cells 1 e;
    bump t

  let length t = t.len

  let take_dropped t =
    let d = t.dropped in
    t.dropped <- 0;
    d

  let all_dropped t = t.all_dropped

  let max_end t = t.cells.(1)

  let clear t =
    t.head <- 0;
    t.len <- 0;
    t.dropped <- 0;
    t.all_dropped <- 0;
    t.cells.(0) <- 0.;
    t.cells.(1) <- 0.

  let to_events t =
    Array.init t.len (fun j ->
        let i = (t.head - t.len + j + (2 * t.cap)) mod t.cap in
        (t.kind.(i), t.track.(i), t.arg_a.(i), t.arg_b.(i), t.ts.(i), t.dur.(i)))
end

type t = {
  config : config;
  sampler : Sampler.t option;
  ring : Ring.t option;
}

let create config =
  {
    config;
    sampler = Option.map (fun window -> Sampler.create ~window) config.window;
    ring =
      (if config.trace then Some (Ring.create ~capacity:config.trace_capacity)
       else None);
  }

type event = {
  kind : int;
  track : int;
  arg_a : int;
  arg_b : int;
  ts : float;
  dur : float;
}

type kernel_span = {
  index : int;
  start : float;
  dur : float;
}

type dump = {
  n_sms : int;
  window : int;
  events : event array;
  kernels : kernel_span list;
  dropped : int;
}

let events_of_ring ring =
  Array.map
    (fun (kind, track, arg_a, arg_b, ts, dur) ->
      { kind; track; arg_a; arg_b; ts; dur })
    (Ring.to_events ring)
