type geometry = {
  size_bytes : int;
  line_bytes : int;
  ways : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let geometry ~size_bytes ~line_bytes ~ways =
  if line_bytes <= 0 || line_bytes mod Repro_mem.Vaddr.sector_bytes <> 0 then
    invalid_arg "Cache.geometry: line size must be a multiple of the sector size";
  if not (is_pow2 (line_bytes / Repro_mem.Vaddr.sector_bytes)) then
    invalid_arg "Cache.geometry: sectors per line must be a power of two";
  if ways <= 0 then invalid_arg "Cache.geometry: ways must be positive";
  if size_bytes mod (line_bytes * ways) <> 0 then
    invalid_arg "Cache.geometry: size must divide into sets";
  let sets = size_bytes / (line_bytes * ways) in
  if not (is_pow2 sets) then
    invalid_arg "Cache.geometry: the number of sets must be a power of two";
  { size_bytes; line_bytes; ways }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

type t = {
  geom : geometry;
  sets : int;
  (* Sector -> (line, sector-in-line) is a shift/mask pair: geometry
     validation forces the sector count per line (and the set count) to a
     power of two, so no div/mod survives on the lookup path. *)
  sector_shift : int;
  sector_mask : int;
  set_mask : int;
  (* Per (set, way): the resident line index (-1 when invalid), a valid
     bitmask over its sectors, and an LRU stamp. Flat arrays indexed by
     [set * ways + way] keep this allocation-free on the hot path. *)
  tags : int array;
  valid : int array;
  stamps : int array;
  (* A 1-cell array rather than a mutable int field so the fused replay
     loop (Sm.run_fused) can hoist it once and bump it with direct array
     stores. *)
  clock : int array;
}

let create geom =
  let sets = geom.size_bytes / (geom.line_bytes * geom.ways) in
  let slots = sets * geom.ways in
  let sectors_per_line = geom.line_bytes / Repro_mem.Vaddr.sector_bytes in
  {
    geom;
    sets;
    sector_shift = log2 sectors_per_line;
    sector_mask = sectors_per_line - 1;
    set_mask = sets - 1;
    tags = Array.make slots (-1);
    valid = Array.make slots 0;
    stamps = Array.make slots 0;
    clock = Array.make 1 0;
  }

let geometry_of t = t.geom

(* Way holding [line] in [set], as a slot index; -1 when absent. Returning
   an int rather than an option keeps the lookup allocation-free; the scan
   is a top-level recursion because a local [let rec] capturing its
   environment would allocate a closure per lookup. *)
let rec scan_ways (tags : int array) base ways line way =
  if way >= ways then -1
  else if tags.(base + way) = line then base + way
  else scan_ways tags base ways line (way + 1)

let find_slot t ~set ~line =
  scan_ways t.tags (set * t.geom.ways) t.geom.ways line 0

let lru_slot t ~set =
  let base = set * t.geom.ways in
  let best = ref base in
  for way = 1 to t.geom.ways - 1 do
    if t.stamps.(base + way) < t.stamps.(!best) then best := base + way
  done;
  !best

let access t ~sector =
  let line = sector lsr t.sector_shift in
  let set = line land t.set_mask in
  t.clock.(0) <- t.clock.(0) + 1;
  let bit = 1 lsl (sector land t.sector_mask) in
  let slot = find_slot t ~set ~line in
  if slot >= 0 then begin
    t.stamps.(slot) <- t.clock.(0);
    if t.valid.(slot) land bit <> 0 then `Hit
    else begin
      t.valid.(slot) <- t.valid.(slot) lor bit;
      `Miss
    end
  end
  else begin
    let slot = lru_slot t ~set in
    t.tags.(slot) <- line;
    t.valid.(slot) <- bit;
    t.stamps.(slot) <- t.clock.(0);
    `Miss
  end

let probe t ~sector =
  let line = sector lsr t.sector_shift in
  let set = line land t.set_mask in
  let slot = find_slot t ~set ~line in
  slot >= 0 && t.valid.(slot) land (1 lsl (sector land t.sector_mask)) <> 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.valid 0 (Array.length t.valid) 0;
  Array.fill t.stamps 0 (Array.length t.stamps) 0

(* Raw state for the fused replay loop: with these hoisted into locals,
   an [access]-equivalent lookup is pure array arithmetic with no
   cross-module call (this build has no flambda, so [Cache.access] would
   otherwise be a real call per sector). The fused loop must reproduce
   [access] exactly; it is the only sanctioned consumer. *)
module Raw = struct
  let tags t = t.tags
  let valid t = t.valid
  let stamps t = t.stamps
  let clock_cell t = t.clock
  let ways t = t.geom.ways
  let sector_shift t = t.sector_shift
  let sector_mask t = t.sector_mask
  let set_mask t = t.set_mask
end
