type t = {
  cfg : Config.t;
  engine : Engine.t;
  heap : Repro_mem.Page_store.t;
  mem_path : Mem_path.t;
  mutable shards : Mem_path.t array; (* per-SM memory slices; [||] until the
                                        first sharded launch, then persistent *)
  scratch : Trace.t; (* reusable emission trace for the interned engine *)
  stats : Stats.t;
  san : Repro_san.Checker.t option;
  tel : Telemetry.t option;
  mutable timeline : Stats.t list; (* per-launch deltas, newest first *)
  mutable windows : Stats.t array list; (* per-launch window rows, newest first *)
  mutable spans : Telemetry.kernel_span list; (* newest first *)
  mutable launches : int;
  mutable sealed_streams : int; (* interning tallies, cumulative *)
  mutable unique_streams : int;
  mutable sealed_stream_instrs : int;
  mutable unique_stream_instrs : int;
  mutable keep_traces : bool;
  mutable kept : Trace.t array list; (* retained launches, newest first *)
}

let fmax (a : float) (b : float) = if a >= b then a else b

let create ?(config = Config.default) ?(engine = Engine.default) ?san
    ?telemetry ~heap () =
  Config.validate config;
  let tel =
    match telemetry with
    | Some c when Telemetry.config_enabled c -> Some (Telemetry.create c)
    | Some _ | None -> None
  in
  let mem_path = Mem_path.create config in
  (match tel with
   | Some { Telemetry.ring = Some ring; _ } -> Mem_path.set_ring mem_path (Some ring)
   | Some _ | None -> ());
  {
    cfg = config;
    engine;
    heap;
    mem_path;
    shards = [||];
    scratch = Trace.create ~capacity:256 ();
    stats = Stats.create ();
    san;
    tel;
    timeline = [];
    windows = [];
    spans = [];
    launches = 0;
    sealed_streams = 0;
    unique_streams = 0;
    sealed_stream_instrs = 0;
    unique_stream_instrs = 0;
    keep_traces = false;
    kept = [];
  }

let engine t = t.engine

let config t = t.cfg

let heap t = t.heap

let set_vm t vm = Mem_path.set_vm t.mem_path vm

let vm t = Mem_path.vm t.mem_path

(* Phase 2 shards on demand: one sliced memory path per SM, persistent
   across launches so the L2 slices keep their tag state exactly like
   the sequential L2 does. *)
let shards t =
  if Array.length t.shards = 0 then
    t.shards <-
      Array.init t.cfg.Config.n_sms (fun _ -> Mem_path.create (Config.slice t.cfg));
  t.shards

(* The sharded engine has no telemetry instrumentation, and a translation
   model is attached to the shared [mem_path] only — both fall back to
   the sequential loop. A 1-SM config has nothing to shard. *)
let use_sharded t =
  t.engine.Engine.intra && t.cfg.Config.n_sms > 1 && t.tel = None
  && Mem_path.vm t.mem_path = None

let launch t ~n_threads kernel =
  if n_threads <= 0 then invalid_arg "Device.launch: n_threads must be positive";
  let warp_size = t.cfg.Config.warp_size in
  let n_warps = Repro_util.Mathx.ceil_div n_threads warp_size in
  let traces =
    if t.engine.Engine.intern then begin
      (* Interned emission: every warp emits into the device's scratch
         trace, then seals through a per-launch pool that hash-conses
         identical instruction streams (addresses stay per-warp). *)
      let pool = Trace.Intern.create () in
      let traces =
        Array.init n_warps (fun warp_id ->
            let first = warp_id * warp_size in
            let width = min warp_size (n_threads - first) in
            let lanes = Array.init width (fun lane -> first + lane) in
            Trace.reset t.scratch;
            let ctx =
              Warp_ctx.create ?san:t.san ~fused:(t.san = None)
                ~trace:t.scratch ~heap:t.heap ~warp_id ~lanes ()
            in
            kernel ctx;
            Trace.Intern.seal pool t.scratch)
      in
      t.sealed_streams <- t.sealed_streams + Trace.Intern.sealed pool;
      t.unique_streams <- t.unique_streams + Trace.Intern.unique pool;
      t.sealed_stream_instrs <-
        t.sealed_stream_instrs + Trace.Intern.sealed_instrs pool;
      t.unique_stream_instrs <-
        t.unique_stream_instrs + Trace.Intern.unique_instrs pool;
      traces
    end
    else
      Array.init n_warps (fun warp_id ->
          let first = warp_id * warp_size in
          let width = min warp_size (n_threads - first) in
          let lanes = Array.init width (fun lane -> first + lane) in
          let ctx = Warp_ctx.create ?san:t.san ~heap:t.heap ~warp_id ~lanes () in
          kernel ctx;
          Warp_ctx.trace ctx)
  in
  (* Each launch counts into its own [Stats.t] which is then folded into
     the cumulative totals, so the per-kernel deltas of [kernel_timeline]
     sum (bit-for-bit, including the float counters) to [stats]. *)
  let launch_stats = Stats.create () in
  let san_delta () =
    (* Sanitizer violations detected during this launch's functional
       phase belong to this launch's delta, keeping the
       timeline-sums-to-totals invariant intact. *)
    match t.san with
    | None -> ()
    | Some san ->
      Stats.count_san_violations launch_stats
        (Repro_san.Checker.take_kernel_delta san)
  in
  (match t.tel with
   | None ->
     let cycles =
       if use_sharded t then
         Sm.run_sharded t.cfg ~shards:(shards t)
           ~jobs:(Engine.resolve_jobs t.engine) ~stats:launch_stats ~traces
       else if t.engine.Engine.intern && Mem_path.plain t.mem_path then
         (* The interned engine's replay path: byte-identical to Sm.run
            (the fused loop replicates its event order and float
            sequence), so the legacy engine below stays the measurable
            A/B baseline. *)
         Sm.run_fused t.cfg t.mem_path ~stats:launch_stats ~traces
       else Sm.run t.cfg t.mem_path ~stats:launch_stats ~traces
     in
     Stats.add_cycles launch_stats cycles;
     san_delta ()
   | Some tel ->
     (* Launches concatenate on one absolute time axis whose origin is
        the cumulative cycle count so far. *)
     let base = Stats.cycles t.stats in
     (match tel.Telemetry.ring with
      | Some ring -> Telemetry.Ring.begin_launch ring ~base
      | None -> ());
     (match tel.Telemetry.sampler with
      | Some sampler -> Telemetry.Sampler.begin_launch sampler
      | None -> ());
     let cycles = Sm.run ~telemetry:tel t.cfg t.mem_path ~stats:launch_stats ~traces in
     (match tel.Telemetry.ring with
      | Some ring ->
        (* The span covers trailing write-through DRAM drain the ring
           may have recorded past the last warp's retirement. *)
        let dur = fmax cycles (Telemetry.Ring.max_end ring -. base) in
        t.spans <- { Telemetry.index = t.launches; start = base; dur } :: t.spans
      | None -> ());
     (match tel.Telemetry.sampler with
      | None ->
        (* Ring only: counters went straight into [launch_stats]. *)
        Stats.add_cycles launch_stats cycles;
        san_delta ();
        (match tel.Telemetry.ring with
         | Some ring ->
           Stats.count_trace_dropped launch_stats (Telemetry.Ring.take_dropped ring)
         | None -> ())
      | Some sampler ->
        (* Windowed: the engine counted into per-window rows. Fold them
           in order into the launch delta — the identical association a
           plain run performs, so totals (cycles included, see
           [Sampler.finish_launch]) match a telemetry-off run bit-for-bit
           on every integer counter and on cycles. Launch-scoped counts
           with no cycle of their own (sanitizer delta, ring drops) land
           in the last window. *)
        Telemetry.Sampler.finish_launch sampler ~cycles;
        let rows = Telemetry.Sampler.take sampler in
        let last = rows.(Array.length rows - 1) in
        (match t.san with
         | None -> ()
         | Some san ->
           Stats.count_san_violations last
             (Repro_san.Checker.take_kernel_delta san));
        (match tel.Telemetry.ring with
         | Some ring ->
           Stats.count_trace_dropped last (Telemetry.Ring.take_dropped ring)
         | None -> ());
        Array.iter (fun row -> Stats.add launch_stats row) rows;
        t.windows <- rows :: t.windows));
  Stats.add t.stats launch_stats;
  t.timeline <- launch_stats :: t.timeline;
  t.launches <- t.launches + 1;
  if t.keep_traces then t.kept <- traces :: t.kept

let retain_traces t keep =
  t.keep_traces <- keep;
  if not keep then t.kept <- []

let retained_traces t = List.rev t.kept

let stats t = t.stats

let kernel_timeline t = List.rev t.timeline

let window_timeline t = List.rev t.windows

let sample_window t =
  match t.tel with
  | Some { Telemetry.sampler = Some s; _ } -> Some (Telemetry.Sampler.window s)
  | Some _ | None -> None

let telemetry_dump t =
  match t.tel with
  | Some ({ Telemetry.ring = Some ring; _ } as tel) ->
    Some
      {
        Telemetry.n_sms = t.cfg.Config.n_sms;
        window =
          (match tel.Telemetry.sampler with
           | Some s -> Telemetry.Sampler.window s
           | None -> 0);
        events = Telemetry.events_of_ring ring;
        kernels = List.rev t.spans;
        dropped = Telemetry.Ring.all_dropped ring;
      }
  | Some _ | None -> None

let interning_tallies t =
  (t.sealed_streams, t.unique_streams, t.sealed_stream_instrs,
   t.unique_stream_instrs)

let dedup_ratio t =
  if t.unique_streams = 0 then 1.
  else float_of_int t.sealed_streams /. float_of_int t.unique_streams

let reset_stats t =
  Stats.reset t.stats;
  Mem_path.reset t.mem_path;
  Array.iter Mem_path.reset t.shards;
  t.sealed_streams <- 0;
  t.unique_streams <- 0;
  t.sealed_stream_instrs <- 0;
  t.unique_stream_instrs <- 0;
  t.timeline <- [];
  t.windows <- [];
  t.spans <- [];
  t.launches <- 0;
  t.kept <- [];
  match t.tel with
  | Some { Telemetry.ring = Some ring; _ } -> Telemetry.Ring.clear ring
  | Some _ | None -> ()

let launches t = t.launches
