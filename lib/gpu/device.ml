type t = {
  cfg : Config.t;
  heap : Repro_mem.Page_store.t;
  mem_path : Mem_path.t;
  stats : Stats.t;
  san : Repro_san.Checker.t option;
  mutable timeline : Stats.t list; (* per-launch deltas, newest first *)
  mutable launches : int;
  mutable keep_traces : bool;
  mutable kept : Trace.t array list; (* retained launches, newest first *)
}

let create ?(config = Config.default) ?san ~heap () =
  Config.validate config;
  {
    cfg = config;
    heap;
    mem_path = Mem_path.create config;
    stats = Stats.create ();
    san;
    timeline = [];
    launches = 0;
    keep_traces = false;
    kept = [];
  }

let config t = t.cfg

let heap t = t.heap

let launch t ~n_threads kernel =
  if n_threads <= 0 then invalid_arg "Device.launch: n_threads must be positive";
  let warp_size = t.cfg.Config.warp_size in
  let n_warps = Repro_util.Mathx.ceil_div n_threads warp_size in
  let traces =
    Array.init n_warps (fun warp_id ->
        let first = warp_id * warp_size in
        let width = min warp_size (n_threads - first) in
        let lanes = Array.init width (fun lane -> first + lane) in
        let ctx = Warp_ctx.create ?san:t.san ~heap:t.heap ~warp_id ~lanes () in
        kernel ctx;
        Warp_ctx.trace ctx)
  in
  (* Each launch counts into its own [Stats.t] which is then folded into
     the cumulative totals, so the per-kernel deltas of [kernel_timeline]
     sum (bit-for-bit, including the float counters) to [stats]. *)
  let launch_stats = Stats.create () in
  let cycles = Sm.run t.cfg t.mem_path ~stats:launch_stats ~traces in
  Stats.add_cycles launch_stats cycles;
  (* Sanitizer violations detected during this launch's functional phase
     belong to this launch's delta, keeping the timeline-sums-to-totals
     invariant intact. *)
  (match t.san with
   | None -> ()
   | Some san ->
     Stats.count_san_violations launch_stats
       (Repro_san.Checker.take_kernel_delta san));
  Stats.add t.stats launch_stats;
  t.timeline <- launch_stats :: t.timeline;
  t.launches <- t.launches + 1;
  if t.keep_traces then t.kept <- traces :: t.kept

let retain_traces t keep =
  t.keep_traces <- keep;
  if not keep then t.kept <- []

let retained_traces t = List.rev t.kept

let stats t = t.stats

let kernel_timeline t = List.rev t.timeline

let reset_stats t =
  Stats.reset t.stats;
  Mem_path.reset t.mem_path;
  t.timeline <- [];
  t.launches <- 0;
  t.kept <- []

let launches t = t.launches
